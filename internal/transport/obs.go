package transport

import (
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/types"
)

// obsSeries remembers one registered series so Close can unregister it: a
// stopped endpoint must not keep exporting frozen link counters or — worse —
// a stale stalled=1 for peers it no longer dials.
type obsSeries struct {
	name   string
	labels []obs.Label
}

// registerObs folds the endpoint's atomic link counters into the registry
// as func-backed series (one source of truth: LinkStats and /metrics read
// the same atomics) and surfaces the TLS leaf-certificate expiry.
func (n *TCPNet) registerObs() {
	reg := n.opts.Obs
	if reg == nil {
		return
	}
	node := obs.L("node", n.opts.ObsNode)
	cf := func(name, help string, fn func() uint64) {
		reg.CounterFunc(name, help, fn, node)
		n.obsSeries = append(n.obsSeries, obsSeries{name, []obs.Label{node}})
	}
	cf("saebft_link_dials_total", "outbound connection attempts", n.stats.dials.Load)
	cf("saebft_link_dial_failures_total", "connection attempts failed before any handshake", n.stats.dialFailures.Load)
	cf("saebft_link_handshakes_total", "authenticated handshakes completed (both directions)", n.stats.handshakes.Load)
	cf("saebft_link_handshake_failures_total", "TLS/hello handshake failures (both directions)", n.stats.handshakeFailures.Load)
	cf("saebft_link_auth_rejects_total", "peers whose authenticated identity contradicted the claimed sender", n.stats.authRejects.Load)
	cf("saebft_link_reconnects_total", "successful handshakes after a previous connection was lost", n.stats.reconnects.Load)
	cf("saebft_link_frames_sent_total", "frames written to peers", n.stats.framesSent.Load)
	cf("saebft_link_frames_received_total", "frames read from peers", n.stats.framesReceived.Load)
	cf("saebft_link_bytes_sent_total", "frame bytes written to peers", n.stats.bytesSent.Load)
	cf("saebft_link_bytes_received_total", "frame bytes read from peers", n.stats.bytesReceived.Load)
	cf("saebft_link_frames_dropped_total", "frames dropped by bounded queues or unreachable peers", n.stats.framesDropped.Load)
	if sec := n.opts.Security; sec != nil {
		notAfter := sec.LeafNotAfter()
		reg.GaugeFunc("saebft_tls_cert_not_after_seconds",
			"TLS leaf certificate notAfter as unix seconds",
			func() float64 { return float64(notAfter.Unix()) }, node)
		n.obsSeries = append(n.obsSeries, obsSeries{"saebft_tls_cert_not_after_seconds", []obs.Label{node}})
	}
}

// registerPeerObs registers the per-peer series when a peer link first
// forms: a queue-depth gauge reading the channel length (len on a channel
// is concurrency-safe) and the stall-detector gauge the writeLoop drives.
// Caller holds n.mu.
func (n *TCPNet) registerPeerObs(p *tcpPeer, to types.NodeID) {
	reg := n.opts.Obs
	if reg == nil {
		return
	}
	node := obs.L("node", n.opts.ObsNode)
	peer := obs.L("peer", strconv.Itoa(int(to)))
	reg.GaugeFunc("saebft_link_peer_queue_depth",
		"outbound frames queued toward the peer",
		func() float64 { return float64(len(p.out)) }, node, peer)
	p.stalled = reg.Gauge("saebft_link_peer_stalled",
		"1 while the peer link is down and backing off, 0 while connected", node, peer)
	n.obsSeries = append(n.obsSeries,
		obsSeries{"saebft_link_peer_queue_depth", []obs.Label{node, peer}},
		obsSeries{"saebft_link_peer_stalled", []obs.Label{node, peer}})
}

// warnCertExpiry logs at startup when the endpoint's TLS leaf certificate
// has less than 30 days of validity left (certs are minted ten-year today,
// so any short remainder is an operational mistake worth flagging early).
func (n *TCPNet) warnCertExpiry() {
	sec := n.opts.Security
	if sec == nil {
		return
	}
	notAfter := sec.LeafNotAfter()
	if d := time.Until(notAfter); d < 30*24*time.Hour {
		n.log("tcp %v: TLS leaf certificate expires %s (in %s); rotate it soon",
			n.self, notAfter.Format(time.RFC3339), d.Round(time.Hour))
	}
}
