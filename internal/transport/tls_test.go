package transport

import (
	"net"
	"runtime"
	"testing"
	"time"

	"repro/internal/types"
)

// mintSecurity issues an in-memory identity for id from ca, failing the test
// on error.
func mintSecurity(t *testing.T, ca *CA, id types.NodeID) *Security {
	t.Helper()
	sec, err := ca.Identity(id)
	if err != nil {
		t.Fatal(err)
	}
	return sec
}

// tlsPair starts two mutually-authenticated endpoints on loopback.
func tlsPair(t *testing.T, ca *CA) (a, b *TCPNet, recvA, recvB *safeLog) {
	t.Helper()
	recvA, recvB = &safeLog{}, &safeLog{}
	addrs := map[types.NodeID]string{1: "127.0.0.1:0", 2: "127.0.0.1:0"}
	a, err := NewTCPNetOpts(1, addrs, recvA.add, TCPOptions{Security: mintSecurity(t, ca, 1)})
	if err != nil {
		t.Fatal(err)
	}
	addrs2 := map[types.NodeID]string{1: a.Addr(), 2: "127.0.0.1:0"}
	b, err = NewTCPNetOpts(2, addrs2, recvB.add, TCPOptions{Security: mintSecurity(t, ca, 2)})
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	a.addrs[2] = b.Addr()
	a.SetLogf(func(string, ...interface{}) {})
	b.SetLogf(func(string, ...interface{}) {})
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b, recvA, recvB
}

func TestTLSSendReceive(t *testing.T) {
	ca, err := NewCA("test cluster")
	if err != nil {
		t.Fatal(err)
	}
	a, b, recvA, recvB := tlsPair(t, ca)
	a.Send(2, []byte("over mTLS"))
	waitFor(t, "delivery a→b", func() bool { return recvB.count() == 1 })
	b.Send(1, []byte("and back"))
	waitFor(t, "delivery b→a", func() bool { return recvA.count() == 1 })
	from, data := recvB.first()
	if from != 1 || string(data) != "over mTLS" {
		t.Errorf("got from=%v data=%q", from, data)
	}
	if s := a.Stats(); s.Handshakes == 0 || s.FramesSent == 0 {
		t.Errorf("sender link stats not accounted: %+v", s)
	}
	if !a.Secure() || !b.Secure() {
		t.Error("endpoints do not report Secure()")
	}
}

// TestTLSCARoundTrip exercises the PEM forms an operator actually handles:
// the CA round-trips through PEM and can mint certificates afterwards, and
// NewSecurity rejects a certificate bound to a different identity.
func TestTLSCARoundTrip(t *testing.T) {
	ca, err := NewCA("test cluster")
	if err != nil {
		t.Fatal(err)
	}
	keyPEM, err := ca.KeyPEM()
	if err != nil {
		t.Fatal(err)
	}
	ca2, err := LoadCA(ca.CertPEM(), keyPEM)
	if err != nil {
		t.Fatal(err)
	}
	certPEM, ckeyPEM, err := ca2.IssuePEM(7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSecurity(7, ca.CertPEM(), certPEM, ckeyPEM); err != nil {
		t.Fatalf("valid identity rejected: %v", err)
	}
	if _, err := NewSecurity(8, ca.CertPEM(), certPEM, ckeyPEM); err == nil {
		t.Fatal("certificate for node 7 accepted as identity of node 8")
	}
}

// TestTLSRejectsImpostor runs a node that presents a valid cluster
// certificate for identity 3 while claiming to be node 2. Both directions
// must refuse it: the honest dialer rejects the misbound server certificate,
// and the honest listener rejects the hello/certificate mismatch — before
// any payload frame is parsed.
func TestTLSRejectsImpostor(t *testing.T) {
	ca, err := NewCA("test cluster")
	if err != nil {
		t.Fatal(err)
	}
	recvA := &safeLog{}
	addrs := map[types.NodeID]string{1: "127.0.0.1:0", 2: "127.0.0.1:0"}
	a, err := NewTCPNetOpts(1, addrs, recvA.add, TCPOptions{
		Security:   mintSecurity(t, ca, 1),
		BackoffMin: 5 * time.Millisecond, BackoffMax: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.SetLogf(func(string, ...interface{}) {})

	// The impostor holds a *valid* certificate — for node 3 — but occupies
	// node 2's slot in the mesh.
	recvImp := &safeLog{}
	addrsImp := map[types.NodeID]string{1: a.Addr(), 2: "127.0.0.1:0"}
	imp, err := NewTCPNetOpts(2, addrsImp, recvImp.add, TCPOptions{
		Security:   mintSecurity(t, ca, 3),
		BackoffMin: 5 * time.Millisecond, BackoffMax: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer imp.Close()
	imp.SetLogf(func(string, ...interface{}) {})
	a.addrs[2] = imp.Addr()

	// Impostor dials the honest node: TLS completes (its certificate is
	// valid), but the identity binding fails at the hello.
	imp.Send(1, []byte("forged"))
	waitFor(t, "honest listener rejecting the impostor", func() bool {
		return a.Stats().AuthRejects > 0
	})

	// Honest node dials what it believes is node 2: the pinned identity
	// check inside the TLS handshake refuses the misbound certificate.
	a.Send(2, []byte("hello node 2"))
	waitFor(t, "honest dialer rejecting the impostor", func() bool {
		return a.Stats().HandshakeFailures > 0
	})

	if recvA.count() != 0 {
		t.Fatalf("impostor payload reached the handler: %d messages", recvA.count())
	}
}

// TestTLSRejectsForeignCA verifies a peer from a different cluster CA is cut
// off during the TLS handshake itself.
func TestTLSRejectsForeignCA(t *testing.T) {
	ca1, err := NewCA("cluster one")
	if err != nil {
		t.Fatal(err)
	}
	ca2, err := NewCA("cluster two")
	if err != nil {
		t.Fatal(err)
	}
	recvA := &safeLog{}
	a, err := NewTCPNetOpts(1, map[types.NodeID]string{1: "127.0.0.1:0", 2: "127.0.0.1:0"}, recvA.add,
		TCPOptions{Security: mintSecurity(t, ca1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.SetLogf(func(string, ...interface{}) {})

	recvB := &safeLog{}
	b, err := NewTCPNetOpts(2, map[types.NodeID]string{1: a.Addr(), 2: "127.0.0.1:0"}, recvB.add,
		TCPOptions{Security: mintSecurity(t, ca2, 2), BackoffMin: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.SetLogf(func(string, ...interface{}) {})

	b.Send(1, []byte("wrong cluster"))
	waitFor(t, "handshake rejection", func() bool { return a.Stats().HandshakeFailures > 0 })
	if recvA.count() != 0 {
		t.Fatal("message from a foreign-CA peer was delivered")
	}
}

// TestPlaintextRejectsGarbageConnection: a connection that does not speak
// the hello preamble (port scanner, misdirected client) is dropped without
// any frame reaching the handler.
func TestPlaintextRejectsGarbageConnection(t *testing.T) {
	recv := &safeLog{}
	n, err := NewTCPNetOpts(1, map[types.NodeID]string{1: "127.0.0.1:0"}, recv.add,
		TCPOptions{HandshakeTimeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	n.SetLogf(func(string, ...interface{}) {})

	conn, err := net.Dial("tcp", n.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n"))
	waitFor(t, "garbage rejection", func() bool { return n.Stats().HandshakeFailures > 0 })
	if recv.count() != 0 {
		t.Fatal("garbage bytes were parsed into a frame")
	}
}

// TestQueueBoundOldestDrop: with the peer down, the outbound queue must stay
// bounded and keep the *newest* frames for delivery on reconnect.
func TestQueueBoundOldestDrop(t *testing.T) {
	// Reserve a port for the future peer without a listener on it yet.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	peerAddr := ln.Addr().String()
	ln.Close()

	const queueLen = 8
	recvA := &safeLog{}
	a, err := NewTCPNetOpts(1, map[types.NodeID]string{1: "127.0.0.1:0", 2: peerAddr}, recvA.add,
		TCPOptions{QueueLen: queueLen, BackoffMin: 20 * time.Millisecond, BackoffMax: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.SetLogf(func(string, ...interface{}) {})

	const total = 100
	for i := 0; i < total; i++ {
		a.Send(2, []byte{byte(i)})
	}
	if got := a.Stats().FramesDropped; got == 0 {
		t.Fatal("no frames dropped despite a full queue and a dead peer")
	}

	// Bring the peer up on the reserved port; the queued tail must flow.
	recvB := &safeLog{}
	b, err := NewTCPNetOpts(2, map[types.NodeID]string{1: "127.0.0.1:0", 2: peerAddr}, recvB.add, TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.SetLogf(func(string, ...interface{}) {})

	waitFor(t, "queued tail delivery", func() bool {
		recvB.mu.Lock()
		defer recvB.mu.Unlock()
		for _, m := range recvB.msgs {
			if m.data[0] == byte(total-1) {
				return true
			}
		}
		return false
	})
	recvB.mu.Lock()
	defer recvB.mu.Unlock()
	if len(recvB.msgs) > queueLen {
		t.Fatalf("peer received %d frames; queue bound is %d", len(recvB.msgs), queueLen)
	}
	for _, m := range recvB.msgs {
		if int(m.data[0]) < total-3*queueLen {
			t.Fatalf("stale frame %d survived; oldest-drop should have evicted it", m.data[0])
		}
	}
}

// TestReconnectBackoffBounds: while a peer is unreachable, dial attempts
// must follow the jittered exponential schedule — bounded well below a tight
// retry loop but still retrying.
func TestReconnectBackoffBounds(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()

	a, err := NewTCPNetOpts(1, map[types.NodeID]string{1: "127.0.0.1:0", 2: deadAddr}, (&safeLog{}).add,
		TCPOptions{BackoffMin: 20 * time.Millisecond, BackoffMax: 160 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.SetLogf(func(string, ...interface{}) {})

	deadline := time.Now().Add(700 * time.Millisecond)
	for time.Now().Before(deadline) {
		a.Send(2, []byte("x"))
		time.Sleep(2 * time.Millisecond)
	}
	s := a.Stats()
	if s.Dials < 2 {
		t.Fatalf("only %d dial attempts in 700ms; reconnect seems stuck", s.Dials)
	}
	// Minimum-jitter schedule: 10+20+40+80+80+... ⇒ at most ~10 attempts in
	// 700ms. 20 leaves slack for scheduling; a tight loop would be hundreds.
	if s.Dials > 20 {
		t.Fatalf("%d dial attempts in 700ms; backoff is not being applied", s.Dials)
	}
	if s.DialFailures != s.Dials {
		t.Fatalf("dials=%d failures=%d against a dead address", s.Dials, s.DialFailures)
	}
}

// TestReconnectChurn kills and restarts a TCP peer repeatedly while the
// sender keeps transmitting: each incarnation must receive fresh traffic
// (backoff reset after each authenticated reconnect), the Reconnects counter
// must track the churn, and tearing everything down must not leak
// goroutines.
func TestReconnectChurn(t *testing.T) {
	baseline := runtime.NumGoroutine()
	ca, err := NewCA("churn cluster")
	if err != nil {
		t.Fatal(err)
	}
	secA, secB := mintSecurity(t, ca, 1), mintSecurity(t, ca, 2)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	peerAddr := ln.Addr().String()
	ln.Close()

	recvA := &safeLog{}
	a, err := NewTCPNetOpts(1, map[types.NodeID]string{1: "127.0.0.1:0", 2: peerAddr}, recvA.add,
		TCPOptions{Security: secA, BackoffMin: 5 * time.Millisecond, BackoffMax: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	a.SetLogf(func(string, ...interface{}) {})

	stopSender := make(chan struct{})
	senderDone := make(chan struct{})
	go func() {
		defer close(senderDone)
		for i := 0; ; i++ {
			select {
			case <-stopSender:
				return
			case <-time.After(2 * time.Millisecond):
				a.Send(2, []byte{byte(i)})
			}
		}
	}()

	const incarnations = 4
	for i := 0; i < incarnations; i++ {
		recvB := &safeLog{}
		b, err := NewTCPNetOpts(2, map[types.NodeID]string{1: "127.0.0.1:0", 2: peerAddr}, recvB.add,
			TCPOptions{Security: secB})
		if err != nil {
			t.Fatalf("incarnation %d: %v", i, err)
		}
		b.SetLogf(func(string, ...interface{}) {})
		waitFor(t, "delivery to restarted peer", func() bool { return recvB.count() > 0 })
		b.Close()
	}
	close(stopSender)
	<-senderDone

	if rc := a.Stats().Reconnects; rc < incarnations-1 {
		t.Errorf("Reconnects = %d after %d peer restarts", rc, incarnations)
	}
	a.Close()

	// Goroutine-leak check: everything the transport spawned must be gone.
	waitFor(t, "goroutines to drain", func() bool {
		return runtime.NumGoroutine() <= baseline+2
	})
}
