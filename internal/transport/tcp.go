package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"repro/internal/types"
)

// Frame layout: [u32 payload length][u32 sender id][payload].
const (
	frameHeader  = 8
	maxFrameSize = 64 << 20 // refuse absurd frames from broken/byzantine peers
)

// TCPNet is a mesh of persistent TCP connections between nodes. Each node
// listens on its configured address; senders dial lazily and reconnect with
// backoff. Delivery is best-effort: messages queued while a peer is
// unreachable are dropped, matching the unreliable network model the
// protocols are designed for.
type TCPNet struct {
	self  types.NodeID
	addrs map[types.NodeID]string
	ln    net.Listener
	logf  func(string, ...interface{})

	mu      sync.Mutex
	peers   map[types.NodeID]*tcpPeer
	inbound map[net.Conn]bool
	closed  bool
	handler func(from types.NodeID, data []byte)
	wg      sync.WaitGroup
	start   time.Time
}

type tcpPeer struct {
	mu   sync.Mutex
	conn net.Conn
	out  chan []byte
	stop chan struct{}
}

// NewTCPNet creates a node endpoint. addrs maps every node (including self)
// to "host:port". The handler is invoked from receiving goroutines; it must
// be safe for concurrent use (Runtime serializes into the protocol core).
func NewTCPNet(self types.NodeID, addrs map[types.NodeID]string, handler func(from types.NodeID, data []byte)) (*TCPNet, error) {
	addr, ok := addrs[self]
	if !ok {
		return nil, fmt.Errorf("tcp: no address configured for self %v", self)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcp: listen %s: %w", addr, err)
	}
	n := &TCPNet{
		self:    self,
		addrs:   addrs,
		ln:      ln,
		logf:    log.Printf,
		peers:   make(map[types.NodeID]*tcpPeer),
		inbound: make(map[net.Conn]bool),
		handler: handler,
		start:   time.Now(),
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the bound listen address (useful with ":0" configs in tests).
func (n *TCPNet) Addr() string { return n.ln.Addr().String() }

// Now returns monotonic time since the endpoint started.
func (n *TCPNet) Now() types.Time { return types.Time(time.Since(n.start).Nanoseconds()) }

// SetLogf replaces the error logger (tests silence it).
func (n *TCPNet) SetLogf(f func(string, ...interface{})) { n.logf = f }

func (n *TCPNet) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			conn.Close()
			return
		}
		n.inbound[conn] = true
		n.mu.Unlock()
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.readLoop(conn)
		}()
	}
}

func (n *TCPNet) readLoop(conn net.Conn) {
	defer func() {
		conn.Close()
		n.mu.Lock()
		delete(n.inbound, conn)
		n.mu.Unlock()
	}()
	hdr := make([]byte, frameHeader)
	for {
		if _, err := io.ReadFull(conn, hdr); err != nil {
			return
		}
		size := binary.BigEndian.Uint32(hdr[0:4])
		from := types.NodeID(int32(binary.BigEndian.Uint32(hdr[4:8])))
		if size > maxFrameSize {
			n.logf("tcp %v: oversized frame (%d bytes) from %v", n.self, size, from)
			return
		}
		payload := make([]byte, size)
		if _, err := io.ReadFull(conn, payload); err != nil {
			return
		}
		n.mu.Lock()
		h, closed := n.handler, n.closed
		n.mu.Unlock()
		if closed {
			return
		}
		h(from, payload)
	}
}

// Send transmits asynchronously; it never blocks the caller. Messages to
// unknown or unreachable peers are dropped.
func (n *TCPNet) Send(to types.NodeID, data []byte) {
	if to == n.self {
		n.handler(n.self, data)
		return
	}
	addr, ok := n.addrs[to]
	if !ok {
		return
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	p := n.peers[to]
	if p == nil {
		p = &tcpPeer{out: make(chan []byte, 4096), stop: make(chan struct{})}
		n.peers[to] = p
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.writeLoop(p, addr)
		}()
	}
	n.mu.Unlock()

	frame := make([]byte, frameHeader+len(data))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(data)))
	binary.BigEndian.PutUint32(frame[4:8], uint32(int32(n.self)))
	copy(frame[frameHeader:], data)
	select {
	case p.out <- frame:
	default:
		// Peer queue full: drop, the protocols retransmit.
	}
}

func (n *TCPNet) writeLoop(p *tcpPeer, addr string) {
	var conn net.Conn
	backoff := 10 * time.Millisecond
	for {
		select {
		case <-p.stop:
			if conn != nil {
				conn.Close()
			}
			return
		case frame := <-p.out:
			for conn == nil {
				var err error
				conn, err = net.DialTimeout("tcp", addr, time.Second)
				if err != nil {
					conn = nil
					select {
					case <-p.stop:
						return
					case <-time.After(backoff):
					}
					if backoff < time.Second {
						backoff *= 2
					}
					// Connection attempts failed; drop the pending
					// frame rather than buffering unboundedly.
					frame = nil
					break
				}
				backoff = 10 * time.Millisecond
			}
			if conn == nil || frame == nil {
				continue
			}
			conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
			if _, err := conn.Write(frame); err != nil {
				conn.Close()
				conn = nil
			}
		}
	}
}

// Close shuts the endpoint down and waits for its goroutines.
func (n *TCPNet) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return errors.New("tcp: already closed")
	}
	n.closed = true
	peers := n.peers
	n.peers = make(map[types.NodeID]*tcpPeer)
	inbound := make([]net.Conn, 0, len(n.inbound))
	for c := range n.inbound {
		inbound = append(inbound, c)
	}
	n.mu.Unlock()

	n.ln.Close()
	for _, c := range inbound {
		c.Close() // unblocks readLoops parked in ReadFull
	}
	for _, p := range peers {
		close(p.stop)
	}
	n.wg.Wait()
	return nil
}

// Runtime drives a deterministic protocol Node over a concurrent transport:
// it serializes inbound messages and periodic ticks into the node through a
// single goroutine, preserving the node's single-threaded discipline.
type Runtime struct {
	node  Node
	now   func() types.Time
	inbox chan inboundMsg
	calls chan runtimeCall
	quit  chan struct{}
	done  chan struct{}
}

type inboundMsg struct {
	from types.NodeID
	data []byte
}

type runtimeCall struct {
	fn   func(now types.Time)
	done chan struct{}
}

// NewRuntime starts the runtime's event loop. The returned handler function
// is what should be registered as the TCPNet receive handler.
func NewRuntime(node Node, now func() types.Time, tickEvery time.Duration) (*Runtime, func(from types.NodeID, data []byte)) {
	r := &Runtime{
		node:  node,
		now:   now,
		inbox: make(chan inboundMsg, 4096),
		calls: make(chan runtimeCall),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go r.loop(tickEvery)
	return r, r.enqueue
}

func (r *Runtime) enqueue(from types.NodeID, data []byte) {
	select {
	case r.inbox <- inboundMsg{from, data}:
	case <-r.quit:
	}
}

func (r *Runtime) loop(tickEvery time.Duration) {
	defer close(r.done)
	ticker := time.NewTicker(tickEvery)
	defer ticker.Stop()
	for {
		select {
		case <-r.quit:
			return
		case m := <-r.inbox:
			r.node.Deliver(m.from, m.data, r.now())
		case c := <-r.calls:
			c.fn(r.now())
			close(c.done)
		case <-ticker.C:
			r.node.Tick(r.now())
		}
	}
}

// Do runs fn on the runtime goroutine, serialized against Deliver and Tick,
// and waits for it to complete. External callers (e.g. a synchronous client
// API) use it to touch node state without violating the single-threaded
// protocol-core discipline.
func (r *Runtime) Do(fn func(now types.Time)) {
	c := runtimeCall{fn: fn, done: make(chan struct{})}
	select {
	case r.calls <- c:
		<-c.done
	case <-r.quit:
	}
}

// Close stops the event loop and waits for it to exit.
func (r *Runtime) Close() {
	close(r.quit)
	<-r.done
}
