package transport

import (
	"crypto/tls"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/types"
)

// Wire format. Every connection opens with a fixed-size hello that names the
// protocol and the sender's identity; the listener answers with a one-byte
// ack only after the hello is accepted (and, under TLS, bound to the peer's
// authenticated certificate identity). The ack matters: TLS 1.3 completes
// the client-side handshake before the server has judged the client
// certificate, so without an explicit accept signal a rejected dialer would
// think its handshake succeeded and reset its backoff. Frame layout after
// the hello/ack: [u32 payload length][u32 sender id][payload].
const (
	frameHeader  = 8
	maxFrameSize = 64 << 20 // refuse absurd frames from broken/byzantine peers

	helloMagic   = 0x53414542 // "SAEB"
	helloVersion = 2
	helloSize    = 12   // [u32 magic][u32 version][u32 sender id]
	helloAck     = 0x06 // listener's accept byte (ASCII ACK)
)

// TCPOptions tunes a TCPNet endpoint. The zero value gives plaintext links
// with the defaults below — loopback-friendly; WAN deployments should set
// Security and raise the timeouts to match their RTTs.
type TCPOptions struct {
	// Security enables mutual TLS with identity binding on every link.
	// Nil means plaintext (simulator parity and loopback tests).
	Security *Security

	// DialTimeout bounds one connection attempt (default 1s).
	DialTimeout time.Duration

	// HandshakeTimeout bounds the TLS handshake plus hello exchange on a
	// new connection, in both directions (default 5s). It is what evicts
	// port scanners and half-open peers.
	HandshakeTimeout time.Duration

	// WriteTimeout bounds each frame write (default 5s); a peer that
	// stalls longer has its connection torn down and redialed.
	WriteTimeout time.Duration

	// BackoffMin and BackoffMax bound the jittered exponential reconnect
	// backoff (defaults 10ms and 2s). Backoff resets to BackoffMin only
	// after a fully authenticated handshake, so a listener that accepts
	// and then rejects us cannot hold the dialer in a tight retry loop.
	BackoffMin, BackoffMax time.Duration

	// QueueLen bounds each peer's outbound frame queue (default 4096).
	// When the queue is full the oldest frame is dropped first: during an
	// outage the queue holds the newest window of traffic, which is what
	// the retransmitting protocols want on reconnect.
	QueueLen int

	// Obs, when non-nil, receives the endpoint's link metrics: the
	// LinkStats counters as func-backed series, per-peer queue-depth and
	// stall-detector gauges, and the TLS certificate expiry. ObsNode is
	// the "node" label value for every series. Close unregisters them.
	Obs     *obs.Registry
	ObsNode string
}

func (o *TCPOptions) fillDefaults() {
	if o.DialTimeout <= 0 {
		o.DialTimeout = time.Second
	}
	if o.HandshakeTimeout <= 0 {
		o.HandshakeTimeout = 5 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 5 * time.Second
	}
	if o.BackoffMin <= 0 {
		o.BackoffMin = 10 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 2 * time.Second
	}
	if o.BackoffMax < o.BackoffMin {
		o.BackoffMax = o.BackoffMin
	}
	if o.QueueLen <= 0 {
		o.QueueLen = 4096
	}
}

// LinkStats snapshots an endpoint's link-state counters. All counters are
// cumulative since the endpoint started; self-sends bypass the links and are
// not counted.
type LinkStats struct {
	Dials             uint64 // outbound connection attempts
	DialFailures      uint64 // attempts that failed before any handshake
	Handshakes        uint64 // authenticated handshakes completed (both directions)
	HandshakeFailures uint64 // TLS/hello failures (both directions)
	AuthRejects       uint64 // authenticated identity contradicted the claimed sender
	Reconnects        uint64 // successful handshakes after a previous connection was lost
	FramesSent        uint64
	FramesReceived    uint64
	BytesSent         uint64
	BytesReceived     uint64
	FramesDropped     uint64 // bounded-queue oldest-drops + frames abandoned while a peer was unreachable
}

// linkCounters is the atomic backing store for LinkStats.
type linkCounters struct {
	dials, dialFailures, handshakes, handshakeFailures, authRejects,
	reconnects, framesSent, framesReceived, bytesSent, bytesReceived,
	framesDropped atomic.Uint64
}

func (c *linkCounters) snapshot() LinkStats {
	return LinkStats{
		Dials:             c.dials.Load(),
		DialFailures:      c.dialFailures.Load(),
		Handshakes:        c.handshakes.Load(),
		HandshakeFailures: c.handshakeFailures.Load(),
		AuthRejects:       c.authRejects.Load(),
		Reconnects:        c.reconnects.Load(),
		FramesSent:        c.framesSent.Load(),
		FramesReceived:    c.framesReceived.Load(),
		BytesSent:         c.bytesSent.Load(),
		BytesReceived:     c.bytesReceived.Load(),
		FramesDropped:     c.framesDropped.Load(),
	}
}

// TCPNet is a mesh of persistent TCP connections between nodes. Each node
// listens on its configured address; senders dial lazily and reconnect with
// jittered exponential backoff. With TCPOptions.Security set, every link is
// mutual TLS and every peer's claimed identity is bound to its certificate
// before any frame is parsed. Delivery is best-effort: messages queued while
// a peer is unreachable are bounded and dropped oldest-first, matching the
// unreliable network model the protocols are designed for.
type TCPNet struct {
	self  types.NodeID
	addrs map[types.NodeID]string
	opts  TCPOptions
	ln    net.Listener
	logf  atomic.Pointer[func(string, ...interface{})]
	stats linkCounters

	mu        sync.Mutex
	peers     map[types.NodeID]*tcpPeer
	inbound   map[net.Conn]bool
	closed    bool
	handler   func(from types.NodeID, data []byte)
	wg        sync.WaitGroup
	start     time.Time
	obsSeries []obsSeries // registered series, unregistered on Close
}

type tcpPeer struct {
	out           chan []byte
	stop          chan struct{}
	everConnected bool       // writeLoop-only; reconnect accounting
	stalled       *obs.Gauge // 1 while down and backing off; nil without a registry
}

// NewTCPNet creates a plaintext node endpoint with default tuning. addrs
// maps every node (including self) to "host:port". The handler is invoked
// from receiving goroutines; it must be safe for concurrent use (Runtime
// serializes into the protocol core).
func NewTCPNet(self types.NodeID, addrs map[types.NodeID]string, handler func(from types.NodeID, data []byte)) (*TCPNet, error) {
	return NewTCPNetOpts(self, addrs, handler, TCPOptions{})
}

// NewTCPNetOpts is NewTCPNet with explicit link tuning and (optionally)
// mutual-TLS security.
func NewTCPNetOpts(self types.NodeID, addrs map[types.NodeID]string, handler func(from types.NodeID, data []byte), opts TCPOptions) (*TCPNet, error) {
	addr, ok := addrs[self]
	if !ok {
		return nil, fmt.Errorf("tcp: no address configured for self %v", self)
	}
	opts.fillDefaults()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcp: listen %s: %w", addr, err)
	}
	n := &TCPNet{
		self:    self,
		addrs:   addrs,
		opts:    opts,
		ln:      ln,
		peers:   make(map[types.NodeID]*tcpPeer),
		inbound: make(map[net.Conn]bool),
		handler: handler,
		start:   time.Now(),
	}
	n.SetLogf(log.Printf)
	n.registerObs()
	n.warnCertExpiry()
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the bound listen address (useful with ":0" configs in tests).
func (n *TCPNet) Addr() string { return n.ln.Addr().String() }

// Now returns monotonic time since the endpoint started.
func (n *TCPNet) Now() types.Time { return types.Time(time.Since(n.start).Nanoseconds()) }

// SetLogf replaces the error logger (tests silence it). Safe to call while
// the endpoint is live — connection goroutines may be logging concurrently.
func (n *TCPNet) SetLogf(f func(string, ...interface{})) { n.logf.Store(&f) }

// log emits through the current logger.
func (n *TCPNet) log(format string, args ...interface{}) {
	if f := n.logf.Load(); f != nil {
		(*f)(format, args...)
	}
}

// Stats snapshots the endpoint's cumulative link-state counters.
func (n *TCPNet) Stats() LinkStats { return n.stats.snapshot() }

// Secure reports whether the endpoint's links run over mutual TLS.
func (n *TCPNet) Secure() bool { return n.opts.Security != nil }

func (n *TCPNet) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			conn.Close()
			return
		}
		n.inbound[conn] = true
		n.mu.Unlock()
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.serveConn(conn)
		}()
	}
}

// serveConn authenticates one inbound connection and then reads frames from
// it until it breaks. No frame reaches the handler before the hello (and,
// under TLS, the certificate identity) has been verified.
func (n *TCPNet) serveConn(raw net.Conn) {
	conn := raw
	defer func() {
		conn.Close()
		n.mu.Lock()
		delete(n.inbound, raw)
		n.mu.Unlock()
	}()

	conn.SetDeadline(time.Now().Add(n.opts.HandshakeTimeout))
	var certID types.NodeID = types.NoNode
	if sec := n.opts.Security; sec != nil {
		tconn := tls.Server(conn, sec.serverConfig())
		if err := tconn.Handshake(); err != nil {
			n.stats.handshakeFailures.Add(1)
			n.log("tcp %v: inbound TLS handshake from %s: %v", n.self, raw.RemoteAddr(), err)
			tconn.Close()
			return
		}
		id, err := peerCertID(tconn)
		if err != nil {
			n.stats.handshakeFailures.Add(1)
			n.log("tcp %v: inbound peer certificate from %s: %v", n.self, raw.RemoteAddr(), err)
			tconn.Close()
			return
		}
		certID = id
		conn = tconn
		// Track the TLS wrapper from here on so Close unblocks reads on it.
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			tconn.Close()
			return
		}
		delete(n.inbound, raw)
		n.inbound[tconn] = true
		n.mu.Unlock()
		defer func() {
			n.mu.Lock()
			delete(n.inbound, tconn)
			n.mu.Unlock()
		}()
	}

	from, err := readHello(conn)
	if err != nil {
		n.stats.handshakeFailures.Add(1)
		n.log("tcp %v: inbound hello from %s: %v", n.self, raw.RemoteAddr(), err)
		return
	}
	if certID != types.NoNode && certID != from {
		n.stats.authRejects.Add(1)
		n.log("tcp %v: peer %s presented certificate for node %v but claims to be node %v; closing",
			n.self, raw.RemoteAddr(), certID, from)
		return
	}
	if _, err := conn.Write([]byte{helloAck}); err != nil {
		n.stats.handshakeFailures.Add(1)
		return
	}
	conn.SetDeadline(time.Time{})
	n.stats.handshakes.Add(1)

	hdr := make([]byte, frameHeader)
	for {
		if _, err := io.ReadFull(conn, hdr); err != nil {
			return
		}
		size := binary.BigEndian.Uint32(hdr[0:4])
		sender := types.NodeID(int32(binary.BigEndian.Uint32(hdr[4:8])))
		if sender != from {
			// One connection speaks for exactly one authenticated identity.
			n.stats.authRejects.Add(1)
			n.log("tcp %v: connection authenticated as %v framed a message as %v; closing", n.self, from, sender)
			return
		}
		if size > maxFrameSize {
			n.log("tcp %v: oversized frame (%d bytes) from %v", n.self, size, from)
			return
		}
		payload := make([]byte, size)
		if _, err := io.ReadFull(conn, payload); err != nil {
			return
		}
		n.stats.framesReceived.Add(1)
		n.stats.bytesReceived.Add(uint64(frameHeader + len(payload)))
		n.mu.Lock()
		h, closed := n.handler, n.closed
		n.mu.Unlock()
		if closed {
			return
		}
		h(from, payload)
	}
}

// writeHello sends the connection preamble naming this endpoint.
func writeHello(conn net.Conn, self types.NodeID) error {
	var hello [helloSize]byte
	binary.BigEndian.PutUint32(hello[0:4], helloMagic)
	binary.BigEndian.PutUint32(hello[4:8], helloVersion)
	binary.BigEndian.PutUint32(hello[8:12], uint32(int32(self)))
	_, err := conn.Write(hello[:])
	return err
}

// readHello validates the connection preamble and returns the claimed
// sender identity.
func readHello(conn net.Conn) (types.NodeID, error) {
	var hello [helloSize]byte
	if _, err := io.ReadFull(conn, hello[:]); err != nil {
		return types.NoNode, fmt.Errorf("reading hello: %w", err)
	}
	if m := binary.BigEndian.Uint32(hello[0:4]); m != helloMagic {
		return types.NoNode, fmt.Errorf("bad magic %#x", m)
	}
	if v := binary.BigEndian.Uint32(hello[4:8]); v != helloVersion {
		return types.NoNode, fmt.Errorf("unsupported protocol version %d", v)
	}
	return types.NodeID(int32(binary.BigEndian.Uint32(hello[8:12]))), nil
}

// Send transmits asynchronously; it never blocks the caller. Messages to
// unknown peers are dropped; messages to unreachable peers are queued up to
// QueueLen frames, oldest dropped first.
func (n *TCPNet) Send(to types.NodeID, data []byte) {
	if to == n.self {
		n.handler(n.self, data)
		return
	}
	addr, ok := n.addrs[to]
	if !ok {
		n.stats.framesDropped.Add(1)
		return
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	p := n.peers[to]
	if p == nil {
		p = &tcpPeer{out: make(chan []byte, n.opts.QueueLen), stop: make(chan struct{})}
		n.peers[to] = p
		n.registerPeerObs(p, to)
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.writeLoop(p, to, addr)
		}()
	}
	n.mu.Unlock()

	// The queue carries the payload as handed in — the 8-byte frame header
	// is prepended by the writeLoop via a vectored write, so Send never
	// copies the body. Callers hand over ownership of data (the encoders
	// produce a fresh slice per message), and broadcasts fanning one slice
	// out to several peers are safe because every reader is read-only.
	frame := data
	select {
	case p.out <- frame:
	default:
		// Queue full: drop the oldest frame so the queue holds the newest
		// window of traffic, then retry once (the writeLoop may have
		// drained concurrently; losing that race just drops this frame,
		// which the protocols tolerate).
		select {
		case <-p.out:
			n.stats.framesDropped.Add(1)
		default:
		}
		select {
		case p.out <- frame:
		default:
			n.stats.framesDropped.Add(1)
		}
	}
}

// dialPeer establishes and fully authenticates one outbound connection:
// TCP dial, then (with Security) the mutual-TLS handshake pinned to the
// target's identity, then the hello. Only a connection that passed all of
// that is returned — the caller resets its backoff on success.
func (n *TCPNet) dialPeer(to types.NodeID, addr string) (net.Conn, error) {
	n.stats.dials.Add(1)
	conn, err := net.DialTimeout("tcp", addr, n.opts.DialTimeout)
	if err != nil {
		n.stats.dialFailures.Add(1)
		return nil, err
	}
	conn.SetDeadline(time.Now().Add(n.opts.HandshakeTimeout))
	if sec := n.opts.Security; sec != nil {
		tconn := tls.Client(conn, sec.clientConfig(to))
		if err := tconn.Handshake(); err != nil {
			n.stats.handshakeFailures.Add(1)
			tconn.Close()
			return nil, fmt.Errorf("TLS handshake with node %v: %w", to, err)
		}
		conn = tconn
	}
	if err := writeHello(conn, n.self); err != nil {
		n.stats.handshakeFailures.Add(1)
		conn.Close()
		return nil, fmt.Errorf("hello to node %v: %w", to, err)
	}
	// Wait for the listener's accept byte: under TLS 1.3 our handshake
	// "succeeds" locally before the server has judged our certificate, and
	// in plaintext the hello is fire-and-forget — only the ack proves the
	// peer actually accepted us, which is what gates the backoff reset.
	var ack [1]byte
	if _, err := io.ReadFull(conn, ack[:]); err != nil || ack[0] != helloAck {
		n.stats.handshakeFailures.Add(1)
		conn.Close()
		if err == nil {
			err = fmt.Errorf("unexpected ack byte %#x", ack[0])
		}
		return nil, fmt.Errorf("hello ack from node %v: %w", to, err)
	}
	conn.SetDeadline(time.Time{})
	n.stats.handshakes.Add(1)
	return conn, nil
}

// jitter spreads a backoff uniformly over [b/2, b], so a mesh of dialers
// whose peer died together does not thunder back in lockstep.
func jitter(b time.Duration) time.Duration {
	if b <= 1 {
		return b
	}
	half := b / 2
	return half + rand.N(half+1)
}

func (n *TCPNet) writeLoop(p *tcpPeer, to types.NodeID, addr string) {
	var conn net.Conn
	var hdr [frameHeader]byte
	backoff := n.opts.BackoffMin
	for {
		select {
		case <-p.stop:
			if conn != nil {
				conn.Close()
			}
			return
		case frame := <-p.out:
			for conn == nil {
				c, err := n.dialPeer(to, addr)
				if err != nil {
					p.stalled.Set(1)
					n.log("tcp %v: connecting to node %v (%s): %v", n.self, to, addr, err)
					// Connection attempt failed; drop the pending frame
					// rather than buffering unboundedly, and back off with
					// jitter before the next attempt.
					n.stats.framesDropped.Add(1)
					frame = nil
					select {
					case <-p.stop:
						return
					case <-time.After(jitter(backoff)):
					}
					if backoff < n.opts.BackoffMax {
						backoff *= 2
						if backoff > n.opts.BackoffMax {
							backoff = n.opts.BackoffMax
						}
					}
					break
				}
				conn = c
				// Reset only here: the handshake authenticated the peer. A
				// listener that accepts TCP but fails auth keeps backing off.
				backoff = n.opts.BackoffMin
				p.stalled.Set(0)
				if p.everConnected {
					n.stats.reconnects.Add(1)
				}
				p.everConnected = true
			}
			if conn == nil || frame == nil {
				continue
			}
			// Vectored write: the header lives in a per-loop scratch array
			// and the payload is written in place, so the frame path does
			// zero copies between the encoder and the socket.
			binary.BigEndian.PutUint32(hdr[0:4], uint32(len(frame)))
			binary.BigEndian.PutUint32(hdr[4:8], uint32(int32(n.self)))
			bufs := net.Buffers{hdr[:], frame}
			conn.SetWriteDeadline(time.Now().Add(n.opts.WriteTimeout))
			if _, err := bufs.WriteTo(conn); err != nil {
				n.stats.framesDropped.Add(1)
				p.stalled.Set(1)
				conn.Close()
				conn = nil
				continue
			}
			n.stats.framesSent.Add(1)
			n.stats.bytesSent.Add(uint64(frameHeader + len(frame)))
		}
	}
}

// Close shuts the endpoint down and waits for its goroutines. Every metric
// series the endpoint registered — the link counters and the per-peer
// queue-depth/stall gauges — is unregistered, so a stopped endpoint's
// backoff bookkeeping cannot linger in the registry as a permanently
// stalled peer.
func (n *TCPNet) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return errors.New("tcp: already closed")
	}
	n.closed = true
	peers := n.peers
	n.peers = make(map[types.NodeID]*tcpPeer)
	series := n.obsSeries
	n.obsSeries = nil
	inbound := make([]net.Conn, 0, len(n.inbound))
	for c := range n.inbound {
		inbound = append(inbound, c)
	}
	n.mu.Unlock()

	n.ln.Close()
	for _, c := range inbound {
		c.Close() // unblocks serveConns parked in ReadFull
	}
	for _, p := range peers {
		close(p.stop)
	}
	n.wg.Wait()
	for _, s := range series {
		n.opts.Obs.Unregister(s.name, s.labels...)
	}
	return nil
}

// Runtime drives a deterministic protocol Node over a concurrent transport:
// it serializes inbound messages and periodic ticks into the node through a
// single goroutine, preserving the node's single-threaded discipline.
type Runtime struct {
	node  Node
	now   func() types.Time
	inbox chan inboundMsg
	calls chan runtimeCall
	quit  chan struct{}
	done  chan struct{}
}

type inboundMsg struct {
	from types.NodeID
	data []byte
}

type runtimeCall struct {
	fn   func(now types.Time)
	done chan struct{}
}

// NewRuntime starts the runtime's event loop. The returned handler function
// is what should be registered as the TCPNet receive handler.
func NewRuntime(node Node, now func() types.Time, tickEvery time.Duration) (*Runtime, func(from types.NodeID, data []byte)) {
	r := &Runtime{
		node:  node,
		now:   now,
		inbox: make(chan inboundMsg, 4096),
		calls: make(chan runtimeCall),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go r.loop(tickEvery)
	return r, r.enqueue
}

func (r *Runtime) enqueue(from types.NodeID, data []byte) {
	select {
	case r.inbox <- inboundMsg{from, data}:
	case <-r.quit:
	}
}

func (r *Runtime) loop(tickEvery time.Duration) {
	defer close(r.done)
	ticker := time.NewTicker(tickEvery)
	defer ticker.Stop()
	for {
		select {
		case <-r.quit:
			return
		case m := <-r.inbox:
			r.node.Deliver(m.from, m.data, r.now())
		case c := <-r.calls:
			c.fn(r.now())
			close(c.done)
		case <-ticker.C:
			r.node.Tick(r.now())
		}
	}
}

// Do runs fn on the runtime goroutine, serialized against Deliver and Tick,
// and waits for it to complete. External callers (e.g. a synchronous client
// API) use it to touch node state without violating the single-threaded
// protocol-core discipline.
func (r *Runtime) Do(fn func(now types.Time)) {
	c := runtimeCall{fn: fn, done: make(chan struct{})}
	select {
	case r.calls <- c:
		<-c.done
	case <-r.quit:
	}
}

// Close stops the event loop and waits for it to exit.
func (r *Runtime) Close() {
	close(r.quit)
	<-r.done
}
