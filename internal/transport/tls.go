package transport

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"errors"
	"fmt"
	"math/big"
	"net/url"
	"os"
	"strconv"
	"time"

	"repro/internal/types"
)

// Link security: mutual TLS with the peer's node identity bound into its
// certificate. A deployment has one cluster CA; every identity (replica,
// filter, client) holds a leaf certificate whose URI SAN names its NodeID.
// Both directions of every connection verify the peer's chain against the
// cluster CA and then bind the TLS-authenticated identity to the node ID the
// peer claims — an impostor is rejected before a single wire byte is parsed.

// nodeURIScheme is the SAN URI scheme binding a certificate to a node
// identity: saebft://node/<id>.
const nodeURIScheme = "saebft"

// NodeURI returns the SAN URI that binds a certificate to node id.
func NodeURI(id types.NodeID) *url.URL {
	return &url.URL{Scheme: nodeURIScheme, Host: "node", Path: "/" + strconv.Itoa(int(id))}
}

// CertNodeID extracts the node identity bound into a certificate's SAN URIs.
func CertNodeID(cert *x509.Certificate) (types.NodeID, error) {
	for _, u := range cert.URIs {
		if u.Scheme != nodeURIScheme || u.Host != "node" || len(u.Path) < 2 {
			continue
		}
		n, err := strconv.Atoi(u.Path[1:])
		if err != nil {
			continue
		}
		return types.NodeID(n), nil
	}
	return types.NoNode, errors.New("tls: certificate carries no saebft node identity")
}

// CA is a cluster certificate authority: it signs one leaf certificate per
// node identity. The CA key is dealer-side secret — nodes only ever need
// the CA *certificate* (to verify peers) and their own leaf pair.
type CA struct {
	cert *x509.Certificate
	key  *ecdsa.PrivateKey
}

// NewCA mints a fresh cluster CA with the given common name.
func NewCA(commonName string) (*CA, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("tls: generating CA key: %w", err)
	}
	serial, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), 128))
	if err != nil {
		return nil, err
	}
	tmpl := &x509.Certificate{
		SerialNumber:          serial,
		Subject:               pkix.Name{CommonName: commonName, Organization: []string{"saebft"}},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().AddDate(10, 0, 0),
		IsCA:                  true,
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
		MaxPathLen:            0,
		MaxPathLenZero:        true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, fmt.Errorf("tls: self-signing CA: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	return &CA{cert: cert, key: key}, nil
}

// CertPEM returns the CA certificate in PEM form (safe to distribute).
func (ca *CA) CertPEM() []byte {
	return pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: ca.cert.Raw})
}

// KeyPEM returns the CA private key in PEM form (dealer secret).
func (ca *CA) KeyPEM() ([]byte, error) {
	der, err := x509.MarshalECPrivateKey(ca.key)
	if err != nil {
		return nil, err
	}
	return pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: der}), nil
}

// LoadCA reconstructs a CA from its PEM certificate and key, so an operator
// can mint certificates for nodes added after the initial keygen.
func LoadCA(certPEM, keyPEM []byte) (*CA, error) {
	block, _ := pem.Decode(certPEM)
	if block == nil || block.Type != "CERTIFICATE" {
		return nil, errors.New("tls: CA cert is not PEM CERTIFICATE")
	}
	cert, err := x509.ParseCertificate(block.Bytes)
	if err != nil {
		return nil, fmt.Errorf("tls: parsing CA cert: %w", err)
	}
	kb, _ := pem.Decode(keyPEM)
	if kb == nil {
		return nil, errors.New("tls: CA key is not PEM")
	}
	key, err := x509.ParseECPrivateKey(kb.Bytes)
	if err != nil {
		return nil, fmt.Errorf("tls: parsing CA key: %w", err)
	}
	return &CA{cert: cert, key: key}, nil
}

// IssuePEM mints a leaf certificate pair for one node identity, signed by
// the cluster CA, with the identity bound as a SAN URI.
func (ca *CA) IssuePEM(id types.NodeID) (certPEM, keyPEM []byte, err error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, nil, err
	}
	serial, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), 128))
	if err != nil {
		return nil, nil, err
	}
	tmpl := &x509.Certificate{
		SerialNumber: serial,
		Subject:      pkix.Name{CommonName: fmt.Sprintf("saebft node %d", id)},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().AddDate(10, 0, 0),
		KeyUsage:     x509.KeyUsageDigitalSignature,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth, x509.ExtKeyUsageClientAuth},
		URIs:         []*url.URL{NodeURI(id)},
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, ca.cert, &key.PublicKey, ca.key)
	if err != nil {
		return nil, nil, fmt.Errorf("tls: issuing cert for node %d: %w", id, err)
	}
	certPEM = pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: der})
	kder, err := x509.MarshalECPrivateKey(key)
	if err != nil {
		return nil, nil, err
	}
	keyPEM = pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: kder})
	return certPEM, keyPEM, nil
}

// Identity issues an in-memory Security for one node — the ephemeral path
// used by in-process clusters and tests, where nothing touches disk.
func (ca *CA) Identity(id types.NodeID) (*Security, error) {
	certPEM, keyPEM, err := ca.IssuePEM(id)
	if err != nil {
		return nil, err
	}
	return NewSecurity(id, ca.CertPEM(), certPEM, keyPEM)
}

// Security is one endpoint's TLS material: its leaf certificate pair plus
// the cluster CA pool that every peer must chain to. A nil *Security on
// TCPOptions means plaintext links.
type Security struct {
	self types.NodeID
	cert tls.Certificate
	pool *x509.CertPool
}

// NewSecurity builds the endpoint security state from PEM material,
// verifying that the leaf certificate is actually bound to self.
func NewSecurity(self types.NodeID, caPEM, certPEM, keyPEM []byte) (*Security, error) {
	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(caPEM) {
		return nil, errors.New("tls: no CA certificate found in PEM")
	}
	cert, err := tls.X509KeyPair(certPEM, keyPEM)
	if err != nil {
		return nil, fmt.Errorf("tls: loading identity keypair: %w", err)
	}
	leaf, err := x509.ParseCertificate(cert.Certificate[0])
	if err != nil {
		return nil, err
	}
	cert.Leaf = leaf
	id, err := CertNodeID(leaf)
	if err != nil {
		return nil, err
	}
	if id != self {
		return nil, fmt.Errorf("tls: certificate is bound to node %d, not this node (%d)", id, self)
	}
	return &Security{self: self, cert: cert, pool: pool}, nil
}

// LeafNotAfter reports the leaf certificate's expiry time. The transport
// exposes it as a gauge and warns at startup when under 30 days remain.
// Zero on a nil receiver.
func (s *Security) LeafNotAfter() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.cert.Leaf.NotAfter
}

// LoadSecurity reads the endpoint security state from PEM files.
func LoadSecurity(self types.NodeID, caFile, certFile, keyFile string) (*Security, error) {
	caPEM, err := os.ReadFile(caFile)
	if err != nil {
		return nil, fmt.Errorf("tls: reading CA: %w", err)
	}
	certPEM, err := os.ReadFile(certFile)
	if err != nil {
		return nil, fmt.Errorf("tls: reading certificate: %w", err)
	}
	keyPEM, err := os.ReadFile(keyFile)
	if err != nil {
		return nil, fmt.Errorf("tls: reading key: %w", err)
	}
	return NewSecurity(self, caPEM, certPEM, keyPEM)
}

// serverConfig accepts any peer holding a cluster-CA-signed certificate;
// the accept path then binds the authenticated identity to the hello frame.
func (s *Security) serverConfig() *tls.Config {
	return &tls.Config{
		MinVersion:   tls.VersionTLS13,
		Certificates: []tls.Certificate{s.cert},
		ClientCAs:    s.pool,
		ClientAuth:   tls.RequireAndVerifyClientCert,
	}
}

// clientConfig verifies the dialed server chains to the cluster CA and is
// bound to exactly the node identity we meant to dial. Host names play no
// role (deployments move, identities do not), so standard host verification
// is replaced by chain + identity pinning.
func (s *Security) clientConfig(want types.NodeID) *tls.Config {
	pool := s.pool
	return &tls.Config{
		MinVersion:         tls.VersionTLS13,
		Certificates:       []tls.Certificate{s.cert},
		InsecureSkipVerify: true, // replaced by VerifyPeerCertificate below
		VerifyPeerCertificate: func(rawCerts [][]byte, _ [][]*x509.Certificate) error {
			if len(rawCerts) == 0 {
				return errors.New("tls: server presented no certificate")
			}
			leaf, err := x509.ParseCertificate(rawCerts[0])
			if err != nil {
				return err
			}
			inter := x509.NewCertPool()
			for _, raw := range rawCerts[1:] {
				c, err := x509.ParseCertificate(raw)
				if err != nil {
					return err
				}
				inter.AddCert(c)
			}
			if _, err := leaf.Verify(x509.VerifyOptions{
				Roots:         pool,
				Intermediates: inter,
				KeyUsages:     []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
			}); err != nil {
				return fmt.Errorf("tls: server not signed by cluster CA: %w", err)
			}
			id, err := CertNodeID(leaf)
			if err != nil {
				return err
			}
			if id != want {
				return fmt.Errorf("tls: dialed node %d but peer certificate is bound to node %d", want, id)
			}
			return nil
		},
	}
}

// peerCertID extracts the authenticated node identity from a completed TLS
// connection's verified peer certificate.
func peerCertID(conn *tls.Conn) (types.NodeID, error) {
	state := conn.ConnectionState()
	if len(state.PeerCertificates) == 0 {
		return types.NoNode, errors.New("tls: peer presented no certificate")
	}
	return CertNodeID(state.PeerCertificates[0])
}
