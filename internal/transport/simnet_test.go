package transport

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/types"
)

// collector records deliveries for assertions.
type collector struct {
	got   []string
	ticks int
}

func (c *collector) node() Node {
	return NodeFunc{
		OnDeliver: func(from types.NodeID, data []byte, now types.Time) {
			c.got = append(c.got, fmt.Sprintf("%v:%s@%d", from, data, now))
		},
		OnTick: func(now types.Time) { c.ticks++ },
	}
}

func TestSimNetDelivers(t *testing.T) {
	net := NewSimNet(SimNetConfig{Seed: 1})
	var c collector
	net.Register(1, NodeFunc{})
	net.Register(2, c.node())
	send := net.Bind(1)
	send(2, []byte("hello"))
	net.Run(types.Millisecond(10))
	if len(c.got) != 1 {
		t.Fatalf("delivered %d messages, want 1", len(c.got))
	}
	if c.ticks == 0 {
		t.Error("node never ticked")
	}
	if net.Stats.Delivered != 1 || net.Stats.Sent != 1 {
		t.Errorf("stats = %+v", net.Stats)
	}
}

func TestSimNetDeterministic(t *testing.T) {
	run := func() []string {
		net := NewSimNet(SimNetConfig{
			Seed:        42,
			DefaultLink: LinkOpts{Drop: 0.2, Dup: 0.2, MinDelay: 1000, MaxDelay: 500_000},
		})
		var c collector
		net.Register(1, NodeFunc{})
		net.Register(2, c.node())
		send := net.Bind(1)
		for i := 0; i < 50; i++ {
			send(2, []byte(fmt.Sprintf("m%d", i)))
		}
		net.Run(types.Millisecond(50))
		return c.got
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestSimNetDropAll(t *testing.T) {
	net := NewSimNet(SimNetConfig{Seed: 1})
	var c collector
	net.Register(1, NodeFunc{})
	net.Register(2, c.node())
	net.SetLink(1, 2, LinkOpts{Drop: 1.0, MinDelay: 1, MaxDelay: 1})
	send := net.Bind(1)
	for i := 0; i < 20; i++ {
		send(2, []byte("x"))
	}
	net.Run(types.Millisecond(5))
	if len(c.got) != 0 {
		t.Errorf("delivered %d messages over a fully lossy link", len(c.got))
	}
	if net.Stats.Dropped != 20 {
		t.Errorf("dropped = %d, want 20", net.Stats.Dropped)
	}
}

func TestSimNetDuplication(t *testing.T) {
	net := NewSimNet(SimNetConfig{Seed: 7})
	var c collector
	net.Register(1, NodeFunc{})
	net.Register(2, c.node())
	net.SetLink(1, 2, LinkOpts{Dup: 1.0, MinDelay: 1, MaxDelay: 1})
	net.Bind(1)(2, []byte("x"))
	net.Run(types.Millisecond(5))
	if len(c.got) != 2 {
		t.Errorf("delivered %d copies, want 2", len(c.got))
	}
}

func TestSimNetCrashAndRevive(t *testing.T) {
	net := NewSimNet(SimNetConfig{Seed: 1})
	var c collector
	net.Register(1, NodeFunc{})
	net.Register(2, c.node())
	send := net.Bind(1)

	net.Crash(2)
	send(2, []byte("lost"))
	net.Run(types.Millisecond(5))
	if len(c.got) != 0 {
		t.Fatal("crashed node received a message")
	}
	ticksWhileCrashed := c.ticks
	if ticksWhileCrashed != 0 {
		t.Fatal("crashed node ticked")
	}

	net.Revive(2)
	send(2, []byte("back"))
	net.Run(types.Millisecond(10))
	if len(c.got) != 1 {
		t.Fatal("revived node did not receive")
	}
	if c.ticks == 0 {
		t.Error("revived node does not tick")
	}
}

func TestSimNetPartitionAndHeal(t *testing.T) {
	net := NewSimNet(SimNetConfig{Seed: 1})
	var c collector
	net.Register(1, NodeFunc{})
	net.Register(2, c.node())
	net.Partition([]types.NodeID{1}, []types.NodeID{2})
	send := net.Bind(1)
	send(2, []byte("blocked"))
	net.Run(types.Millisecond(5))
	if len(c.got) != 0 {
		t.Fatal("partitioned message delivered")
	}
	net.Heal()
	send(2, []byte("open"))
	net.Run(types.Millisecond(10))
	if len(c.got) != 1 {
		t.Fatal("message after heal not delivered")
	}
}

func TestSimNetRestrictTopology(t *testing.T) {
	net := NewSimNet(SimNetConfig{Seed: 1})
	var c2, c3 collector
	net.Register(1, NodeFunc{})
	net.Register(2, c2.node())
	net.Register(3, c3.node())
	// Physical wiring: 1 may talk to 2 only.
	net.Restrict(func(from, to types.NodeID) bool {
		return from == 1 && to == 2
	})
	send := net.Bind(1)
	send(2, []byte("ok"))
	send(3, []byte("forbidden"))
	net.Run(types.Millisecond(10))
	if len(c2.got) != 1 {
		t.Error("allowed link did not deliver")
	}
	if len(c3.got) != 0 {
		t.Error("restricted link delivered — firewall wiring violated")
	}
}

func TestSimNetRunUntil(t *testing.T) {
	net := NewSimNet(SimNetConfig{Seed: 1})
	var c collector
	net.Register(1, NodeFunc{})
	net.Register(2, c.node())
	net.Bind(1)(2, []byte("x"))
	ok := net.RunUntil(func() bool { return len(c.got) == 1 }, types.Millisecond(100))
	if !ok {
		t.Fatal("RunUntil did not observe delivery")
	}
	ok = net.RunUntil(func() bool { return len(c.got) == 2 }, net.Now()+types.Millisecond(5))
	if ok {
		t.Fatal("RunUntil reported an impossible condition")
	}
}

func TestSimNetReordering(t *testing.T) {
	// With a wide delay window, FIFO order should not survive.
	net := NewSimNet(SimNetConfig{
		Seed:        3,
		DefaultLink: LinkOpts{MinDelay: 1000, MaxDelay: 10_000_000},
	})
	var c collector
	net.Register(1, NodeFunc{})
	net.Register(2, c.node())
	send := net.Bind(1)
	for i := 0; i < 30; i++ {
		send(2, []byte(fmt.Sprintf("%02d", i)))
	}
	net.Run(types.Millisecond(100))
	if len(c.got) != 30 {
		t.Fatalf("delivered %d, want 30", len(c.got))
	}
	inOrder := true
	for i := 1; i < len(c.got); i++ {
		if c.got[i-1] > c.got[i] {
			inOrder = false
			break
		}
	}
	if inOrder {
		t.Error("30 messages over a jittery link arrived in FIFO order; reordering is not modeled")
	}
}

func TestSimNetSelfSend(t *testing.T) {
	net := NewSimNet(SimNetConfig{Seed: 1})
	var c collector
	net.Register(1, c.node())
	net.Bind(1)(1, []byte("self"))
	net.Run(types.Millisecond(5))
	if len(c.got) != 1 {
		t.Error("self-send not delivered")
	}
}

func TestSimNetRegisterTwicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	net := NewSimNet(SimNetConfig{Seed: 1})
	net.Register(1, NodeFunc{})
	net.Register(1, NodeFunc{})
}

func TestColocateSharesBusyHorizon(t *testing.T) {
	// Two nodes on one machine with MeasureCompute: while one is busy,
	// deliveries to the other are deferred.
	net := NewSimNet(SimNetConfig{Seed: 1, MeasureCompute: true})
	var aDone, bDone types.Time
	burn := func() {
		deadline := time.Now().Add(3 * time.Millisecond)
		for time.Now().Before(deadline) {
		}
	}
	net.Register(1, NodeFunc{OnDeliver: func(_ types.NodeID, _ []byte, now types.Time) {
		burn()
		aDone = now
	}})
	net.Register(2, NodeFunc{OnDeliver: func(_ types.NodeID, _ []byte, now types.Time) {
		bDone = now
	}})
	net.Register(3, NodeFunc{})
	net.Colocate(2, 1) // node 2 shares node 1's machine
	// Deterministic delays so node 1's work lands first.
	net.SetLink(3, 1, LinkOpts{MinDelay: 1000, MaxDelay: 1000})
	net.SetLink(3, 2, LinkOpts{MinDelay: 2000, MaxDelay: 2000})

	send := net.Bind(3)
	send(1, []byte("work"))
	send(2, []byte("quick"))
	net.Run(types.Millisecond(100))
	if aDone == 0 || bDone == 0 {
		t.Fatal("deliveries did not happen")
	}
	// Node 2's delivery must start after node 1's ~3ms of compute.
	if bDone < aDone+types.Millisecond(2) {
		t.Errorf("co-located node ran during its machine's busy window: a=%d b=%d", aDone, bDone)
	}
}

func TestSetComputeScaleShrinksBusyTime(t *testing.T) {
	run := func(scale float64) types.Time {
		net := NewSimNet(SimNetConfig{Seed: 1, MeasureCompute: true})
		var second types.Time
		burn := func() {
			deadline := time.Now().Add(2 * time.Millisecond)
			for time.Now().Before(deadline) {
			}
		}
		count := 0
		net.Register(1, NodeFunc{OnDeliver: func(_ types.NodeID, _ []byte, now types.Time) {
			count++
			if count == 2 {
				second = now
			} else {
				burn()
			}
		}})
		net.Register(2, NodeFunc{})
		if scale > 0 {
			net.SetComputeScale(1, scale)
		}
		send := net.Bind(2)
		send(1, []byte("burn"))
		send(1, []byte("after"))
		net.Run(types.Millisecond(100))
		return second
	}
	full := run(0)            // unscaled
	assisted := run(1.0 / 10) // hardware-assist model
	if full == 0 || assisted == 0 {
		t.Fatal("deliveries missing")
	}
	if assisted >= full {
		t.Errorf("compute scaling did not shrink the busy window: full=%d assisted=%d", full, assisted)
	}
}
