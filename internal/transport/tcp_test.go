package transport

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"repro/internal/types"
)

// tcpPair starts two endpoints on loopback with dynamic ports and returns
// them wired to each other.
func tcpPair(t *testing.T) (a, b *TCPNet, recvA, recvB *safeLog) {
	t.Helper()
	recvA, recvB = &safeLog{}, &safeLog{}

	// Bootstrap: bind with :0 first, then exchange real addresses.
	addrs := map[types.NodeID]string{1: "127.0.0.1:0", 2: "127.0.0.1:0"}
	var err error
	a, err = NewTCPNet(1, addrs, recvA.add)
	if err != nil {
		t.Fatal(err)
	}
	addrs2 := map[types.NodeID]string{1: a.Addr(), 2: "127.0.0.1:0"}
	b, err = NewTCPNet(2, addrs2, recvB.add)
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	a.addrs[2] = b.Addr()
	a.SetLogf(func(string, ...interface{}) {})
	b.SetLogf(func(string, ...interface{}) {})
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b, recvA, recvB
}

type safeLog struct {
	mu   sync.Mutex
	msgs []struct {
		from types.NodeID
		data []byte
	}
}

func (l *safeLog) add(from types.NodeID, data []byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.msgs = append(l.msgs, struct {
		from types.NodeID
		data []byte
	}{from, data})
}

func (l *safeLog) count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.msgs)
}

func (l *safeLog) first() (types.NodeID, []byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.msgs) == 0 {
		return types.NoNode, nil
	}
	return l.msgs[0].from, l.msgs[0].data
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestTCPSendReceive(t *testing.T) {
	a, _, _, recvB := tcpPair(t)
	a.Send(2, []byte("over tcp"))
	waitFor(t, "delivery", func() bool { return recvB.count() == 1 })
	from, data := recvB.first()
	if from != 1 || !bytes.Equal(data, []byte("over tcp")) {
		t.Errorf("got from=%v data=%q", from, data)
	}
}

func TestTCPBidirectional(t *testing.T) {
	a, b, recvA, recvB := tcpPair(t)
	a.Send(2, []byte("ping"))
	waitFor(t, "ping", func() bool { return recvB.count() == 1 })
	b.Send(1, []byte("pong"))
	waitFor(t, "pong", func() bool { return recvA.count() == 1 })
}

func TestTCPLargeMessage(t *testing.T) {
	a, _, _, recvB := tcpPair(t)
	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i)
	}
	a.Send(2, big)
	waitFor(t, "large frame", func() bool { return recvB.count() == 1 })
	_, data := recvB.first()
	if !bytes.Equal(data, big) {
		t.Error("large frame corrupted")
	}
}

func TestTCPManyMessagesInOrder(t *testing.T) {
	// A single TCP connection preserves order; the protocols don't rely on
	// it, but the transport shouldn't corrupt framing under load.
	a, _, _, recvB := tcpPair(t)
	const n = 500
	for i := 0; i < n; i++ {
		a.Send(2, []byte{byte(i), byte(i >> 8)})
	}
	waitFor(t, "all frames", func() bool { return recvB.count() == n })
	recvB.mu.Lock()
	defer recvB.mu.Unlock()
	for i, m := range recvB.msgs {
		if m.data[0] != byte(i) || m.data[1] != byte(i>>8) {
			t.Fatalf("frame %d corrupted: %v", i, m.data)
		}
	}
}

func TestTCPSelfSend(t *testing.T) {
	a, _, recvA, _ := tcpPair(t)
	a.Send(1, []byte("loop"))
	waitFor(t, "self delivery", func() bool { return recvA.count() == 1 })
}

func TestTCPUnknownPeerDropped(t *testing.T) {
	a, _, _, _ := tcpPair(t)
	a.Send(99, []byte("nowhere")) // must not panic or block
}

func TestTCPCloseIdempotent(t *testing.T) {
	addrs := map[types.NodeID]string{1: "127.0.0.1:0"}
	n, err := NewTCPNet(1, addrs, func(types.NodeID, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err == nil {
		t.Error("second Close did not error")
	}
}

func TestRuntimeSerializesIntoNode(t *testing.T) {
	var mu sync.Mutex
	var events []string
	inHandler := false
	node := NodeFunc{
		OnDeliver: func(from types.NodeID, data []byte, now types.Time) {
			mu.Lock()
			if inHandler {
				t.Error("concurrent Deliver")
			}
			inHandler = true
			events = append(events, string(data))
			inHandler = false
			mu.Unlock()
		},
		OnTick: func(now types.Time) {
			mu.Lock()
			if inHandler {
				t.Error("Tick during Deliver")
			}
			events = append(events, "tick")
			mu.Unlock()
		},
	}
	start := time.Now()
	rt, handler := NewRuntime(node, func() types.Time {
		return types.Time(time.Since(start).Nanoseconds())
	}, time.Millisecond)
	defer rt.Close()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				handler(types.NodeID(i), []byte{byte(j)})
			}
		}(i)
	}
	wg.Wait()
	waitFor(t, "all deliveries", func() bool {
		mu.Lock()
		defer mu.Unlock()
		n := 0
		for _, e := range events {
			if e != "tick" {
				n++
			}
		}
		return n == 8*50
	})
	waitFor(t, "a tick", func() bool {
		mu.Lock()
		defer mu.Unlock()
		for _, e := range events {
			if e == "tick" {
				return true
			}
		}
		return false
	})
}
