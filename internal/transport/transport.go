// Package transport moves protocol messages between nodes.
//
// Protocol cores in this repository are deterministic, single-threaded state
// machines ("sans I/O"): they implement Node and emit messages through a
// Sender they were constructed with. This package supplies the I/O behind
// that seam:
//
//   - SimNet: an in-process simulated network with a virtual clock,
//     per-link loss/duplication/delay/reordering, partitions, crashes, and
//     optional real-compute-time accounting. Runs are deterministic for a
//     given seed, which is what makes protocol-level tests (view changes
//     under loss, state transfer, firewall filtering) reproducible.
//   - TCPNet: a real TCP mesh with length-prefixed frames and reconnecting
//     peers, used by the cmd/ tools to run each node as its own OS process.
//
// The asynchronous, unreliable network model of the paper (§2) — messages
// may be discarded, delayed, replicated, and reordered — is the default
// SimNet behavior; "bounded fair links" holds because loss probabilities are
// below one.
package transport

import (
	"repro/internal/types"
)

// Sender transmits an encoded message to a peer. Implementations are
// best-effort and non-blocking; delivery may fail silently (the protocols
// handle retransmission).
type Sender func(to types.NodeID, data []byte)

// Node is a deterministic protocol core driven by the transport.
//
// Deliver hands the node one message; Tick fires periodically so the node
// can run its timers. Both receive the current time (virtual under SimNet,
// monotonic wall time under TCP) and must not block.
type Node interface {
	Deliver(from types.NodeID, data []byte, now types.Time)
	Tick(now types.Time)
}

// NodeFunc adapts plain functions to the Node interface (handy in tests).
type NodeFunc struct {
	OnDeliver func(from types.NodeID, data []byte, now types.Time)
	OnTick    func(now types.Time)
}

// Deliver implements Node.
func (f NodeFunc) Deliver(from types.NodeID, data []byte, now types.Time) {
	if f.OnDeliver != nil {
		f.OnDeliver(from, data, now)
	}
}

// Tick implements Node.
func (f NodeFunc) Tick(now types.Time) {
	if f.OnTick != nil {
		f.OnTick(now)
	}
}
