package transport

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/types"
)

// LinkOpts describes the fault model of one directed link.
type LinkOpts struct {
	Drop     float64    // probability a message is discarded
	Dup      float64    // probability a message is delivered twice
	MinDelay types.Time // uniform delivery delay range; reordering falls
	MaxDelay types.Time // out of overlapping delay windows
}

// DefaultLinkOpts models a fast LAN: no loss, 50–200µs delivery.
func DefaultLinkOpts() LinkOpts {
	return LinkOpts{MinDelay: 50_000, MaxDelay: 200_000}
}

// SimNetConfig configures a simulated network.
type SimNetConfig struct {
	Seed         int64
	DefaultLink  LinkOpts
	TickInterval types.Time // how often nodes' Tick runs; default 1ms

	// MeasureCompute, when set, measures the wall-clock time each node
	// spends inside Deliver/Tick and advances that node's virtual busy
	// horizon accordingly. This is how real cryptographic costs (e.g.
	// 1–15ms threshold signatures) surface in virtual-time latency and
	// throughput measurements without a real cluster. It trades strict
	// run-to-run determinism of timings for fidelity, so correctness
	// tests leave it off.
	MeasureCompute bool
}

type simEvent struct {
	at   types.Time
	seq  uint64 // FIFO tie-break for determinism
	from types.NodeID
	to   types.NodeID
	data []byte
	tick bool
}

type eventHeap []*simEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*simEvent)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

type linkKey struct{ from, to types.NodeID }

// SimNet is a deterministic discrete-event network simulator.
//
// All methods must be called from a single goroutine: register nodes, then
// drive the simulation with Run or RunUntil. Nodes' Sender is Bind(id).
type SimNet struct {
	cfg     SimNetConfig
	rng     *rand.Rand
	auxRng  *rand.Rand // lazily created; see BindAux
	now     types.Time
	seq     uint64
	events  eventHeap
	nodes   map[types.NodeID]Node
	links   map[linkKey]LinkOpts
	blocked map[linkKey]bool
	crashed map[types.NodeID]bool
	busy    map[types.NodeID]types.Time
	machine map[types.NodeID]types.NodeID // co-location: node → machine
	scale   map[types.NodeID]float64      // compute-time scaling (hardware models)
	allowed func(from, to types.NodeID) bool
	tap     func(from, to types.NodeID, data []byte)

	// Stats counts traffic for benchmarks and assertions.
	Stats SimStats
}

// SimStats aggregates traffic counters.
type SimStats struct {
	Sent      uint64
	Delivered uint64
	Dropped   uint64
	Bytes     uint64
}

// NewSimNet creates a simulator with the given configuration.
func NewSimNet(cfg SimNetConfig) *SimNet {
	if cfg.TickInterval == 0 {
		cfg.TickInterval = types.Millisecond(1)
	}
	if cfg.DefaultLink == (LinkOpts{}) {
		cfg.DefaultLink = DefaultLinkOpts()
	}
	return &SimNet{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		nodes:   make(map[types.NodeID]Node),
		links:   make(map[linkKey]LinkOpts),
		blocked: make(map[linkKey]bool),
		crashed: make(map[types.NodeID]bool),
		busy:    make(map[types.NodeID]types.Time),
		machine: make(map[types.NodeID]types.NodeID),
		scale:   make(map[types.NodeID]float64),
	}
}

// Register attaches a node to the network. The first tick is scheduled one
// interval after registration.
func (n *SimNet) Register(id types.NodeID, node Node) {
	if _, dup := n.nodes[id]; dup {
		panic(fmt.Sprintf("simnet: node %v registered twice", id))
	}
	n.nodes[id] = node
	n.push(&simEvent{at: n.now + n.cfg.TickInterval, to: id, tick: true})
}

// Bind returns the Sender a node with the given identity should use.
func (n *SimNet) Bind(from types.NodeID) Sender {
	return func(to types.NodeID, data []byte) { n.sendVia(n.rng, from, to, data) }
}

// BindAux returns a Sender on the auxiliary randomness plane: its loss,
// duplication, and delay draws come from a dedicated generator, so traffic
// sent through it (the certified read path) consumes no draws from the
// primary generator and therefore cannot perturb the bit-for-bit
// deterministic delivery schedule of agreement traffic. Aux messages share
// the event queue and virtual clock — they still take simulated time to
// arrive — but a run with reads interleaved delivers every primary-plane
// message at exactly the times it would without them.
func (n *SimNet) BindAux(from types.NodeID) Sender {
	if n.auxRng == nil {
		// Derived deterministically from the configured seed so read-path
		// schedules are themselves reproducible run to run.
		n.auxRng = rand.New(rand.NewSource(n.cfg.Seed ^ 0x5aeb_f7a0_0dd5))
	}
	return func(to types.NodeID, data []byte) { n.sendVia(n.auxRng, from, to, data) }
}

// Swap replaces the handler behind an existing node identity. Tests use it
// to substitute a Byzantine implementation that holds the node's keys.
func (n *SimNet) Swap(id types.NodeID, node Node) {
	if _, ok := n.nodes[id]; !ok {
		panic(fmt.Sprintf("simnet: swap of unregistered node %v", id))
	}
	n.nodes[id] = node
}

// Now returns the current virtual time.
func (n *SimNet) Now() types.Time { return n.now }

// SetLink overrides the fault model of the directed link from→to.
func (n *SimNet) SetLink(from, to types.NodeID, opts LinkOpts) {
	n.links[linkKey{from, to}] = opts
}

// SetLinkBoth overrides both directions between a and b.
func (n *SimNet) SetLinkBoth(a, b types.NodeID, opts LinkOpts) {
	n.SetLink(a, b, opts)
	n.SetLink(b, a, opts)
}

// Restrict installs a physical-topology predicate: sends for which allowed
// returns false are silently discarded, modeling the privacy firewall's
// requirement that filters are wired only to adjacent rows (§4.2.3).
func (n *SimNet) Restrict(allowed func(from, to types.NodeID) bool) {
	n.allowed = allowed
}

// Crash stops delivering to and from the node. It models a silent (crash)
// fault; Byzantine faults are modeled by registering a malicious Node.
func (n *SimNet) Crash(id types.NodeID) { n.crashed[id] = true }

// Revive undoes Crash (the node keeps its in-memory state, modeling a
// process that stalled rather than lost state).
func (n *SimNet) Revive(id types.NodeID) { delete(n.crashed, id) }

// Partition blocks all traffic between the two groups until Heal is called.
func (n *SimNet) Partition(a, b []types.NodeID) {
	for _, x := range a {
		for _, y := range b {
			n.blocked[linkKey{x, y}] = true
			n.blocked[linkKey{y, x}] = true
		}
	}
}

// Heal removes all partitions.
func (n *SimNet) Heal() { n.blocked = make(map[linkKey]bool) }

func (n *SimNet) push(ev *simEvent) {
	ev.seq = n.seq
	n.seq++
	heap.Push(&n.events, ev)
}

func (n *SimNet) linkOpts(from, to types.NodeID) LinkOpts {
	if o, ok := n.links[linkKey{from, to}]; ok {
		return o
	}
	return n.cfg.DefaultLink
}

// Colocate places a node on the same physical machine as another node: with
// MeasureCompute enabled they share one busy horizon, modeling the paper's
// "Separate/Same" configuration where agreement and execution replicas run
// on the same hosts (§5.2). Co-located nodes also reach each other with
// loopback latency.
func (n *SimNet) Colocate(node, machine types.NodeID) {
	n.machine[node] = machine
	n.SetLinkBoth(node, machine, LinkOpts{MinDelay: 1_000, MaxDelay: 2_000})
}

// SetComputeScale multiplies the node's measured compute time before it is
// charged to the virtual clock. Values below 1 model faster hardware — e.g.
// the cryptographic accelerators §5.4 assumes for threshold signatures.
func (n *SimNet) SetComputeScale(id types.NodeID, factor float64) {
	n.scale[id] = factor
}

func (n *SimNet) machineOf(id types.NodeID) types.NodeID {
	if m, ok := n.machine[id]; ok {
		return m
	}
	return id
}

// Tap observes every attempted send (including ones later dropped by loss,
// partitions, or topology restriction). Confidentiality tests use it to
// assert that secret bytes never appear on particular links.
func (n *SimNet) Tap(f func(from, to types.NodeID, data []byte)) { n.tap = f }

func (n *SimNet) sendVia(rng *rand.Rand, from, to types.NodeID, data []byte) {
	if n.tap != nil {
		n.tap(from, to, data)
	}
	n.Stats.Sent++
	n.Stats.Bytes += uint64(len(data))
	if n.crashed[from] || n.crashed[to] || n.blocked[linkKey{from, to}] {
		n.Stats.Dropped++
		return
	}
	if n.allowed != nil && !n.allowed(from, to) {
		n.Stats.Dropped++
		return
	}
	opts := n.linkOpts(from, to)
	if opts.Drop > 0 && rng.Float64() < opts.Drop {
		n.Stats.Dropped++
		return
	}
	n.deliverAfter(rng, from, to, data, opts)
	if opts.Dup > 0 && rng.Float64() < opts.Dup {
		n.deliverAfter(rng, from, to, data, opts)
	}
}

func (n *SimNet) deliverAfter(rng *rand.Rand, from, to types.NodeID, data []byte, opts LinkOpts) {
	delay := opts.MinDelay
	if opts.MaxDelay > opts.MinDelay {
		delay += types.Time(rng.Int63n(int64(opts.MaxDelay - opts.MinDelay + 1)))
	}
	n.push(&simEvent{at: n.now + delay, from: from, to: to, data: data})
}

// Step processes the next event. It reports false when no events remain.
func (n *SimNet) Step() bool {
	if len(n.events) == 0 {
		return false
	}
	ev := heap.Pop(&n.events).(*simEvent)
	if ev.at > n.now {
		n.now = ev.at
	}
	node, ok := n.nodes[ev.to]
	if !ok || n.crashed[ev.to] {
		if ev.tick && ok {
			// Keep ticking crashed nodes' schedule so Revive resumes.
			n.push(&simEvent{at: n.now + n.cfg.TickInterval, to: ev.to, tick: true})
		}
		if !ev.tick {
			n.Stats.Dropped++
		}
		return true
	}

	// If the node's machine is still busy processing earlier work, requeue
	// the event for when it frees up (single-threaded server model; co-
	// located nodes contend for the same machine).
	mach := n.machineOf(ev.to)
	if n.cfg.MeasureCompute {
		if until := n.busy[mach]; until > n.now {
			ev.at = until
			n.push(ev)
			return true
		}
	}

	start := time.Now()
	if ev.tick {
		node.Tick(n.now)
		n.push(&simEvent{at: n.now + n.cfg.TickInterval, to: ev.to, tick: true})
	} else {
		n.Stats.Delivered++
		node.Deliver(ev.from, ev.data, n.now)
	}
	if n.cfg.MeasureCompute {
		elapsed := float64(time.Since(start).Nanoseconds())
		if f, ok := n.scale[ev.to]; ok {
			elapsed *= f
		}
		n.busy[mach] = n.now + types.Time(elapsed)
	}
	return true
}

// Run processes events until the virtual clock reaches the deadline.
func (n *SimNet) Run(until types.Time) {
	for len(n.events) > 0 && n.events[0].at <= until {
		n.Step()
	}
	if n.now < until {
		n.now = until
	}
}

// RunUntil processes events until cond holds or the virtual deadline passes,
// reporting whether cond was met. cond is evaluated after every event.
func (n *SimNet) RunUntil(cond func() bool, deadline types.Time) bool {
	if cond() {
		return true
	}
	for len(n.events) > 0 && n.events[0].at <= deadline {
		n.Step()
		if cond() {
			return true
		}
	}
	return false
}
