package core

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/apps/counter"
	"repro/internal/replycert"
	"repro/internal/sm"
	"repro/internal/transport"
	"repro/internal/types"
	"repro/internal/wire"
)

const invokeTimeout = types.Time(5e9) // generous virtual-time budget

func counterOpts(mutate func(*Options)) Options {
	o := Options{
		Mode:               ModeSeparate,
		App:                func() sm.StateMachine { return counter.New() },
		CheckpointInterval: 8,
		WindowSize:         32,
		BatchSize:          4,
		ClientRetransmit:   types.Millisecond(80),
		RequestTimeout:     types.Millisecond(120),
	}
	if mutate != nil {
		mutate(&o)
	}
	return o
}

func build(t *testing.T, o Options) *Cluster {
	t.Helper()
	c, err := BuildSim(o)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func mustInvoke(t *testing.T, c *Cluster, client int, op string) string {
	t.Helper()
	r, err := c.Invoke(client, []byte(op), invokeTimeout)
	if err != nil {
		t.Fatalf("Invoke(%q): %v", op, err)
	}
	return string(r)
}

// endToEnd exercises a configuration with a few counter operations.
func endToEnd(t *testing.T, o Options) *Cluster {
	t.Helper()
	c := build(t, o)
	if got := mustInvoke(t, c, 0, "inc"); got != "1" {
		t.Fatalf("inc = %q, want 1", got)
	}
	if got := mustInvoke(t, c, 0, "add 41"); got != "42" {
		t.Fatalf("add 41 = %q, want 42", got)
	}
	if got := mustInvoke(t, c, 0, "get"); got != "42" {
		t.Fatalf("get = %q, want 42", got)
	}
	return c
}

func TestSeparateMACQuorum(t *testing.T) {
	endToEnd(t, counterOpts(func(o *Options) {
		o.MACRequests = true
		o.MACOrders = true
		o.ReplyMode = replycert.ModeQuorum
	}))
}

func TestSeparateSignatures(t *testing.T) {
	endToEnd(t, counterOpts(func(o *Options) {
		o.ReplyMode = replycert.ModeQuorum
	}))
}

func TestSeparateThreshold(t *testing.T) {
	endToEnd(t, counterOpts(func(o *Options) {
		o.ReplyMode = replycert.ModeThreshold
	}))
}

func TestSeparateDirectReply(t *testing.T) {
	endToEnd(t, counterOpts(func(o *Options) {
		o.ReplyMode = replycert.ModeQuorum
		o.DirectReply = true
	}))
}

func TestBASEBaseline(t *testing.T) {
	c := endToEnd(t, counterOpts(func(o *Options) {
		o.Mode = ModeBASE
	}))
	if len(c.Execs) != 0 {
		t.Error("BASE mode built execution replicas")
	}
}

func TestFirewallEndToEnd(t *testing.T) {
	c := endToEnd(t, counterOpts(func(o *Options) {
		o.Mode = ModeFirewall
	}))
	if len(c.Filters) != 4 {
		t.Fatalf("expected a 2x2 filter grid, got %d filters", len(c.Filters))
	}
	// Replies must have flowed through filters, not around them.
	forwarded := uint64(0)
	for _, f := range c.Filters {
		forwarded += f.Metrics.ForwardedDown
	}
	if forwarded == 0 {
		t.Error("no filter ever forwarded a reply; wiring is broken")
	}
}

func TestMultipleClientsInterleaved(t *testing.T) {
	c := build(t, counterOpts(func(o *Options) {
		o.Clients = 3
	}))
	// Interleave increments from three clients; final count must be 9.
	for round := 0; round < 3; round++ {
		for cl := 0; cl < 3; cl++ {
			mustInvoke(t, c, cl, "inc")
		}
	}
	if got := mustInvoke(t, c, 0, "get"); got != "9" {
		t.Errorf("final count = %q, want 9", got)
	}
	// All executor replicas converged on the same state.
	for id, app := range c.ExecApps {
		if v := app.(*counter.Counter).Value(); v != 9 {
			t.Errorf("executor %v state = %d, want 9", id, v)
		}
	}
}

func TestExactlyOnceUnderReplyLoss(t *testing.T) {
	c := build(t, counterOpts(func(o *Options) {
		o.ReplyMode = replycert.ModeQuorum
		o.ClientRetransmit = types.Millisecond(40)
	}))
	// Drop most replies on their way to the client: the client must
	// retransmit, and the increments must still apply exactly once.
	for _, a := range c.Top.Agreement {
		c.Net.SetLink(a, c.Top.Clients[0], transport.LinkOpts{Drop: 0.85, MinDelay: 50_000, MaxDelay: 200_000})
	}
	for _, e := range c.Top.Execution {
		for _, a := range c.Top.Agreement {
			c.Net.SetLink(e, a, transport.LinkOpts{Drop: 0.5, MinDelay: 50_000, MaxDelay: 200_000})
		}
	}
	for i := 1; i <= 5; i++ {
		if got := mustInvoke(t, c, 0, "inc"); got != fmt.Sprint(i) {
			t.Fatalf("inc #%d = %q", i, got)
		}
	}
	if c.Clients[0].Metrics.Retransmits == 0 {
		t.Error("loss never forced a client retransmission; test is vacuous")
	}
	for id, app := range c.ExecApps {
		if v := app.(*counter.Counter).Value(); v != 5 {
			t.Errorf("executor %v counted %d increments, want exactly 5", id, v)
		}
	}
}

func TestToleratesCrashedExecutor(t *testing.T) {
	c := build(t, counterOpts(nil))
	c.CrashExec(2)
	if got := mustInvoke(t, c, 0, "inc"); got != "1" {
		t.Fatalf("inc with g crashed executors = %q", got)
	}
	// Crash one more: g+1 faults exceed the threshold — no certificate
	// can form.
	c.CrashExec(1)
	cl := c.Clients[0]
	if err := cl.Submit([]byte("inc"), c.Net.Now()); err != nil {
		t.Fatal(err)
	}
	if c.Net.RunUntil(cl.HasResult, c.Net.Now()+types.Time(1e9)) {
		t.Fatal("reply certificate formed with g+1 crashed executors")
	}
	// Revive: the pipeline drains and the client completes.
	c.Net.Revive(c.Top.Execution[1])
	if !c.Net.RunUntil(cl.HasResult, c.Net.Now()+invokeTimeout) {
		t.Fatal("no progress after executor revival")
	}
	r, _ := cl.Result()
	if string(r) != "2" {
		t.Errorf("post-revival result = %q, want 2", r)
	}
}

func TestToleratesCrashedAgreementBackup(t *testing.T) {
	c := build(t, counterOpts(nil))
	c.CrashAgreement(3)
	if got := mustInvoke(t, c, 0, "inc"); got != "1" {
		t.Errorf("inc with a crashed backup = %q", got)
	}
}

func TestToleratesCrashedAgreementPrimary(t *testing.T) {
	c := build(t, counterOpts(nil))
	c.CrashAgreement(0) // view-0 primary
	if got := mustInvoke(t, c, 0, "inc"); got != "1" {
		t.Errorf("inc after primary crash = %q", got)
	}
	// The cluster moved to a new view.
	advanced := false
	for _, id := range c.Top.Agreement[1:] {
		if c.Engines[id].View() > 0 {
			advanced = true
		}
	}
	if !advanced {
		t.Error("no replica advanced past view 0")
	}
}

func TestToleratesCrashedFilter(t *testing.T) {
	c := build(t, counterOpts(func(o *Options) {
		o.Mode = ModeFirewall
	}))
	c.CrashFilter(0, 1) // one fault: within h=1 tolerance
	if got := mustInvoke(t, c, 0, "inc"); got != "1" {
		t.Errorf("inc with a crashed filter = %q", got)
	}
	// A second, diagonal fault exceeds the h=1 tolerance: no all-correct
	// column remains, so no request can reach the executors (this is the
	// paper's exact bound — (h+1)² filters tolerate h faults).
	c.CrashFilter(1, 0)
	cl := c.Clients[0]
	if err := cl.Submit([]byte("inc"), c.Net.Now()); err != nil {
		t.Fatal(err)
	}
	if c.Net.RunUntil(cl.HasResult, c.Net.Now()+types.Time(1e9)) {
		t.Fatal("progress with h+1 filter faults: the grid bound is not being exercised")
	}
	// Reviving one filter restores a correct path.
	c.Net.Revive(c.Top.Filters[1][0])
	if !c.Net.RunUntil(cl.HasResult, c.Net.Now()+invokeTimeout) {
		t.Fatal("no recovery after filter revival")
	}
	if r, _ := cl.Result(); string(r) != "2" {
		t.Errorf("post-revival result = %q, want 2", r)
	}
}

// lyingExec wraps a real execution replica identity but fabricates reply
// bodies, modeling a compromised executor trying to corrupt results.
type lyingExec struct {
	inner transport.Node
	c     *Cluster
	id    types.NodeID
}

func (l *lyingExec) Deliver(from types.NodeID, data []byte, now types.Time) {
	msg, err := wire.Unmarshal(data)
	if err != nil {
		return
	}
	if _, ok := msg.(*wire.Order); ok {
		// Let the real replica track state, but corrupt its outbound
		// replies by delivering and then sending a forged bundle.
		l.inner.Deliver(from, data, now)
		return
	}
	l.inner.Deliver(from, data, now)
}

func (l *lyingExec) Tick(now types.Time) { l.inner.Tick(now) }

func TestByzantineExecutorOutvoted(t *testing.T) {
	// A crashed-then-lying executor cannot corrupt results: with 2g+1=3
	// executors and quorum g+1=2, the two honest executors' matching
	// replies form the certificate. Here the Byzantine executor simply
	// stays silent on some requests and fabricates garbage shares on
	// others (garbage shares fail verification and are dropped).
	c := build(t, counterOpts(func(o *Options) {
		o.ReplyMode = replycert.ModeThreshold
		o.Mode = ModeFirewall
	}))
	evil := c.Top.Execution[0]
	// Simplest Byzantine behavior: arbitrary garbage to the top filter row.
	c.Net.Swap(evil, transport.NodeFunc{
		OnDeliver: func(from types.NodeID, data []byte, now types.Time) {
			send := c.Net.Bind(evil)
			for _, f := range c.Top.Filters[c.Top.H()] {
				send(f, []byte("garbage that is not even a message"))
				forged := &wire.ExecReply{
					Entries:  []wire.Reply{{View: 0, Seq: 1, Client: c.Top.Clients[0], Timestamp: 1, Body: []byte("WRONG")}},
					Executor: evil,
					Share:    []byte("not a share"),
				}
				send(f, wire.Marshal(forged))
			}
		},
	})
	if got := mustInvoke(t, c, 0, "inc"); got != "1" {
		t.Fatalf("result corrupted by Byzantine executor: %q", got)
	}
	rejected := uint64(0)
	for _, f := range c.Filters {
		rejected += f.Metrics.SharesRejected
	}
	if rejected == 0 {
		t.Error("no filter rejected the forged shares; test is vacuous")
	}
}

func TestConfidentialityBodiesSealedEverywhere(t *testing.T) {
	secretOp := []byte("add 123456789")
	secretReply := []byte("123456789")
	c := build(t, counterOpts(func(o *Options) {
		o.Mode = ModeFirewall
	}))
	// Tap every link: plaintext bodies must never appear on the wire —
	// agreement nodes and filters relay ciphertext only (§4.2.3). (Links
	// into/out of executors carry sealed bodies too; only process-local
	// state sees plaintext.)
	var leaks []string
	c.Net.Tap(func(from, to types.NodeID, data []byte) {
		if bytes.Contains(data, secretOp) || bytes.Contains(data, secretReply) {
			leaks = append(leaks, fmt.Sprintf("%v→%v", from, to))
		}
	})
	got, err := c.Invoke(0, secretOp, invokeTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "123456789" {
		t.Fatalf("reply = %q", got)
	}
	if len(leaks) > 0 {
		t.Errorf("plaintext appeared on links: %v", leaks)
	}
}

func TestFirewallWiringPredicate(t *testing.T) {
	top := BuildTopology(1, 1, 1, 1, ModeFirewall)
	allowed := FirewallWiring(top)
	client := top.Clients[0]
	agree := top.Agreement[0]
	exec := top.Execution[0]
	row0 := top.Filters[0][0]
	row1 := top.Filters[1][0]

	cases := []struct {
		from, to types.NodeID
		want     bool
		desc     string
	}{
		{client, agree, true, "client→agreement"},
		{agree, client, true, "agreement→client"},
		{client, exec, false, "client→exec forbidden"},
		{exec, client, false, "exec→client forbidden"},
		{agree, row0, true, "agreement→row0"},
		{row0, agree, true, "row0→agreement"},
		{agree, row1, false, "agreement→row1 skips a row"},
		{row0, row1, true, "row0→row1"},
		{row1, row0, true, "row1→row0"},
		{row1, exec, true, "top row→exec"},
		{exec, row1, true, "exec→top row"},
		{exec, row0, false, "exec→row0 skips a row"},
		{exec, agree, false, "exec→agreement forbidden"},
		{agree, exec, false, "agreement→exec forbidden"},
		{top.Filters[0][0], top.Filters[0][1], false, "same-row filters not wired"},
		{exec, top.Execution[1], true, "exec↔exec"},
	}
	for _, tc := range cases {
		if got := allowed(tc.from, tc.to); got != tc.want {
			t.Errorf("%s: allowed=%v, want %v", tc.desc, got, tc.want)
		}
	}
}

func TestBuildRejectsMissingApp(t *testing.T) {
	if _, err := BuildSim(Options{}); err == nil {
		t.Error("BuildSim accepted options without an App factory")
	}
}

func TestSequentialLoadThroughCheckpoints(t *testing.T) {
	c := build(t, counterOpts(func(o *Options) {
		o.CheckpointInterval = 4
		o.WindowSize = 16
		o.BatchSize = 1
		o.Pipeline = 8
	}))
	const n = 30
	for i := 1; i <= n; i++ {
		if got := mustInvoke(t, c, 0, "inc"); got != fmt.Sprint(i) {
			t.Fatalf("inc #%d = %q", i, got)
		}
	}
	// Both clusters advanced their stable checkpoints and GCed.
	for id, e := range c.Execs {
		if e.StableSeq() == 0 {
			t.Errorf("executor %v never stabilized a checkpoint", id)
		}
	}
	for id, eng := range c.Engines {
		if eng.LastStable() == 0 {
			t.Errorf("agreement replica %v never stabilized a checkpoint", id)
		}
	}
}

func TestLaggingExecutorStateTransfer(t *testing.T) {
	c := build(t, counterOpts(func(o *Options) {
		o.CheckpointInterval = 4
		o.BatchSize = 1
		o.Pipeline = 8
		o.WindowSize = 16
	}))
	lagging := c.Top.Execution[2]
	c.Net.Crash(lagging)
	for i := 1; i <= 20; i++ {
		mustInvoke(t, c, 0, "inc")
	}
	c.Net.Revive(lagging)
	// The revived replica rejoins lazily: the next orders reveal the gap,
	// triggering a checkpoint transfer for the garbage-collected prefix
	// and certificate fetches for the live tail (§3.3.1).
	for i := 21; i <= 26; i++ {
		if got := mustInvoke(t, c, 0, "inc"); got != fmt.Sprint(i) {
			t.Fatalf("inc #%d = %q", i, got)
		}
	}
	ok := c.Net.RunUntil(func() bool {
		return c.ExecApps[lagging].(*counter.Counter).Value() == 26
	}, c.Net.Now()+types.Time(10e9))
	if !ok {
		t.Fatalf("revived executor state = %d, want 26 (maxN=%d stable=%d, transfers=%d)",
			c.ExecApps[lagging].(*counter.Counter).Value(), c.Execs[lagging].MaxN(),
			c.Execs[lagging].StableSeq(), c.Execs[lagging].Metrics.StateTransfer)
	}
	if c.Execs[lagging].Metrics.StateTransfer == 0 {
		t.Error("no state transfer occurred; test is vacuous")
	}
}

func TestEqualOpsHelper(t *testing.T) {
	if !equalOps([]byte("a"), []byte("a")) || equalOps([]byte("a"), []byte("b")) {
		t.Error("equalOps misbehaves")
	}
}

func TestFirewallOrderedRelease(t *testing.T) {
	// The §4.3 restriction must not cost liveness: a full workload runs
	// through filters that release replies in sequence order.
	c := build(t, counterOpts(func(o *Options) {
		o.Mode = ModeFirewall
		o.OrderedRelease = true
	}))
	for i := 1; i <= 10; i++ {
		if got := mustInvoke(t, c, 0, "inc"); got != fmt.Sprint(i) {
			t.Fatalf("inc #%d = %q", i, got)
		}
	}
	held := uint64(0)
	for _, f := range c.Filters {
		held += f.Metrics.HeldForOrder
	}
	if held == 0 {
		t.Log("no reply was ever held (in-order arrival); restriction exercised only structurally")
	}
}
