package core

import (
	"testing"

	"repro/internal/apps/counter"
	"repro/internal/replycert"
	"repro/internal/sm"
	"repro/internal/types"
	"repro/internal/wire"
)

// clientWorld builds a standalone client over a captured sender, with the
// key material of a real deployment so certificates can be forged or made
// valid at will.
type clientWorld struct {
	t    *testing.T
	b    *Builder
	sent []struct {
		to  types.NodeID
		msg wire.Message
	}
	cl *Client
}

func newClientWorld(t *testing.T, mutate func(*Options)) *clientWorld {
	t.Helper()
	opts := counterOpts(mutate)
	b, err := NewBuilder(opts)
	if err != nil {
		t.Fatal(err)
	}
	w := &clientWorld{t: t, b: b}
	cl, err := b.ClientNode(b.Top.Clients[0], func(to types.NodeID, data []byte) {
		m, err := wire.Unmarshal(data)
		if err != nil {
			t.Fatalf("client sent undecodable bytes: %v", err)
		}
		w.sent = append(w.sent, struct {
			to  types.NodeID
			msg wire.Message
		}{to, m})
	})
	if err != nil {
		t.Fatal(err)
	}
	w.cl = cl
	return w
}

func (w *clientWorld) requestsTo(to types.NodeID) []*wire.Request {
	var out []*wire.Request
	for _, s := range w.sent {
		if r, ok := s.msg.(*wire.Request); ok && s.to == to {
			out = append(out, r)
		}
	}
	return out
}

func TestClientFirstSendGoesToPrimaryOnly(t *testing.T) {
	w := newClientWorld(t, func(o *Options) { o.ReplyMode = replycert.ModeQuorum })
	if err := w.cl.Submit([]byte("inc"), 0); err != nil {
		t.Fatal(err)
	}
	if len(w.requestsTo(w.b.Top.Agreement[0])) != 1 {
		t.Error("first transmission did not go to the believed primary")
	}
	for _, a := range w.b.Top.Agreement[1:] {
		if len(w.requestsTo(a)) != 0 {
			t.Errorf("first transmission leaked to backup %v", a)
		}
	}
}

func TestClientRetransmitsToAllWithBackoff(t *testing.T) {
	w := newClientWorld(t, func(o *Options) {
		o.ReplyMode = replycert.ModeQuorum
		o.ClientRetransmit = types.Millisecond(10)
	})
	if err := w.cl.Submit([]byte("inc"), 0); err != nil {
		t.Fatal(err)
	}
	w.cl.Tick(types.Millisecond(5)) // before deadline: nothing
	if len(w.requestsTo(w.b.Top.Agreement[1])) != 0 {
		t.Fatal("retransmitted before the deadline")
	}
	w.cl.Tick(types.Millisecond(11))
	for _, a := range w.b.Top.Agreement {
		reqs := w.requestsTo(a)
		last := reqs[len(reqs)-1]
		if !last.ReplyToAll {
			t.Errorf("retransmission to %v does not designate ALL", a)
		}
	}
	// Backoff doubles: next at +20ms after the first retransmission.
	count := len(w.requestsTo(w.b.Top.Agreement[1]))
	w.cl.Tick(types.Millisecond(15))
	if len(w.requestsTo(w.b.Top.Agreement[1])) != count {
		t.Error("retransmitted before the doubled deadline")
	}
	w.cl.Tick(types.Millisecond(31))
	if len(w.requestsTo(w.b.Top.Agreement[1])) != count+1 {
		t.Error("second retransmission missing")
	}
	if w.cl.Metrics.Retransmits != 2 {
		t.Errorf("retransmits = %d", w.cl.Metrics.Retransmits)
	}
}

func TestClientIgnoresWrongTimestampAndForgedCerts(t *testing.T) {
	w := newClientWorld(t, func(o *Options) { o.ReplyMode = replycert.ModeQuorum })
	if err := w.cl.Submit([]byte("inc"), 0); err != nil {
		t.Fatal(err)
	}
	// Forged cert (junk attestations).
	es := []wire.Reply{{Seq: 1, Client: w.b.Top.Clients[0], Timestamp: 1, Body: []byte("forged")}}
	forged := &wire.ReplyCert{Entries: es, Atts: nil}
	w.cl.Deliver(0, wire.Marshal(forged), 0)
	if w.cl.HasResult() {
		t.Fatal("client accepted an uncertified reply")
	}
	if w.cl.Metrics.BadReplies == 0 {
		t.Error("bad reply not counted")
	}
}

func TestClientSubmitWhileOutstandingPanics(t *testing.T) {
	w := newClientWorld(t, nil)
	if err := w.cl.Submit([]byte("a"), 0); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("second Submit did not panic")
		}
	}()
	w.cl.Submit([]byte("b"), 0) //nolint:errcheck // expected to panic
}

func TestClientTracksPrimaryFromReplies(t *testing.T) {
	// End-to-end via the simulated cluster: after a view change, the next
	// request's first transmission goes to the new primary.
	c := build(t, counterOpts(nil))
	if got := mustInvoke(t, c, 0, "inc"); got != "1" {
		t.Fatal("setup failed")
	}
	c.CrashAgreement(0)
	if got := mustInvoke(t, c, 0, "inc"); got != "2" {
		t.Fatal("view change recovery failed")
	}
	// The client should now aim at the current primary, not replica 0.
	view := types.View(0)
	for _, id := range c.Top.Agreement[1:] {
		if v := c.Engines[id].View(); v > view {
			view = v
		}
	}
	if view == 0 {
		t.Fatal("no view change happened")
	}
	if c.Clients[0].firstTo == c.Top.Agreement[0] {
		t.Error("client still targets the crashed primary for first transmissions")
	}
}

func TestLargerClusterF2G2(t *testing.T) {
	// f=2, g=2: 7 agreement + 5 execution replicas; quorum sizes scale.
	c := build(t, counterOpts(func(o *Options) {
		o.F = 2
		o.G = 2
	}))
	if len(c.Top.Agreement) != 7 || len(c.Top.Execution) != 5 {
		t.Fatalf("cluster sizes: %d/%d", len(c.Top.Agreement), len(c.Top.Execution))
	}
	for i := 1; i <= 3; i++ {
		if got := mustInvoke(t, c, 0, "inc"); got != fmtInt(i) {
			t.Fatalf("inc #%d = %q", i, got)
		}
	}
	// Tolerates g=2 executor crashes and f=2 agreement crashes (backups).
	c.CrashExec(0)
	c.CrashExec(1)
	c.CrashAgreement(5)
	c.CrashAgreement(6)
	if got := mustInvoke(t, c, 0, "inc"); got != "4" {
		t.Errorf("inc under maximum tolerated faults = %q", got)
	}
}

func fmtInt(i int) string { return string(rune('0' + i)) }

func TestCounterFactoryIsolation(t *testing.T) {
	// Each replica must get its own state machine instance; sharing one
	// would hide divergence bugs.
	opts := counterOpts(nil)
	seen := map[sm.StateMachine]bool{}
	orig := opts.App
	opts.App = func() sm.StateMachine {
		app := orig()
		if seen[app] {
			t.Fatal("App factory returned a shared instance")
		}
		seen[app] = true
		return app
	}
	if _, err := BuildSim(opts); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 {
		t.Errorf("expected 3 executor instances, got %d", len(seen))
	}
	_ = counter.New()
}
