package core

import (
	"errors"
	"testing"

	"repro/internal/replycert"
	"repro/internal/types"
)

// mustRead issues a certified read and fails the test on any non-certified
// outcome.
func mustRead(t *testing.T, c *Cluster, client int, op string, floor types.SeqNum) *replycert.ReadResult {
	t.Helper()
	res, hint, err := c.ReadCertified(client, []byte(op), floor, invokeTimeout)
	if err != nil {
		t.Fatalf("ReadCertified(%q, floor=%d): %v (hint %d)", op, floor, err, hint)
	}
	return res
}

func TestReadCertifiedReflectsAppliedWrites(t *testing.T) {
	c := build(t, counterOpts(nil))
	mustInvoke(t, c, 0, "inc")
	mustInvoke(t, c, 0, "add 41")

	res := mustRead(t, c, 0, "get", 0)
	if string(res.Body) != "42" || res.Refused {
		t.Fatalf("certified read = %q refused=%v, want 42", res.Body, res.Refused)
	}
	// Both writes are applied everywhere the matching quorum lives, so the
	// certified watermark covers them.
	if res.Seq < 2 {
		t.Fatalf("certified watermark = %d, want >= 2", res.Seq)
	}
}

func TestReadFloorAboveEveryWatermarkMismatches(t *testing.T) {
	c := build(t, counterOpts(nil))
	mustInvoke(t, c, 0, "inc")

	// No replica has applied sequence 1000; every reply is ineligible, all
	// 2g+1 answer, and the probe resolves to a definite mismatch whose hint
	// offers no progress (it never drops below the probe's floor).
	_, hint, err := c.ReadCertified(0, []byte("get"), 1000, invokeTimeout)
	if !errors.Is(err, replycert.ErrReadMismatch) {
		t.Fatalf("err = %v, want ErrReadMismatch", err)
	}
	if hint != 1000 {
		t.Fatalf("hint = %d, want the unreachable floor back (no progress)", hint)
	}
}

func TestReadRefusesNonReadOnlyOperation(t *testing.T) {
	c := build(t, counterOpts(nil))
	mustInvoke(t, c, 0, "inc")

	// "inc" mutates, so every correct replica refuses deterministically and
	// the refusals themselves certify: the caller learns, with proof, that
	// this operation must go through full agreement.
	res := mustRead(t, c, 0, "inc", 0)
	if !res.Refused {
		t.Fatalf("non-read-only op certified a result: %q", res.Body)
	}
	// The state machine is untouched by the refused probe.
	if got := mustInvoke(t, c, 0, "get"); got != "1" {
		t.Fatalf("get after refused read probe = %q, want 1", got)
	}
}

func TestReadPathUnavailableInBASEAndFirewall(t *testing.T) {
	base := build(t, counterOpts(func(o *Options) { o.Mode = ModeBASE }))
	if err := base.Clients[0].SubmitRead([]byte("get"), 0, base.Net.Now()); !errors.Is(err, ErrNoReadPath) {
		t.Fatalf("BASE SubmitRead err = %v, want ErrNoReadPath", err)
	}

	fw := build(t, counterOpts(func(o *Options) {
		o.Mode = ModeFirewall
		o.ThresholdBits = 512
	}))
	if err := fw.Clients[0].SubmitRead([]byte("get"), 0, fw.Net.Now()); !errors.Is(err, ErrNoReadPath) {
		t.Fatalf("firewall SubmitRead err = %v, want ErrNoReadPath", err)
	}
}

func TestReadsDoNotPerturbAgreementSchedule(t *testing.T) {
	// Reads ride the auxiliary network plane with their own rng, so a
	// workload that interleaves certified reads with writes must replay
	// bit-identically from the same seed: every step completes with the
	// same body, the same certified watermark, and at the same virtual
	// instant across two independently built clusters. Any leak of read
	// traffic into the primary plane's rng (or a stray map-iteration
	// dependence in the read path) would skew the second run's schedule.
	type step struct {
		body string
		seq  types.SeqNum
		now  types.Time
	}
	run := func() []step {
		c := build(t, counterOpts(nil))
		var trace []step
		for _, op := range []string{"inc", "add 9", "inc", "add 31"} {
			body := mustInvoke(t, c, 0, op)
			trace = append(trace, step{body: body, now: c.Net.Now()})
			res := mustRead(t, c, 0, "get", 0)
			trace = append(trace, step{body: string(res.Body), seq: res.Seq, now: c.Net.Now()})
		}
		return trace
	}
	first, second := run(), run()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("step %d diverged across identically seeded runs: %+v vs %+v", i, first[i], second[i])
		}
	}
	if got := first[len(first)-1].body; got != "42" {
		t.Fatalf("final certified read = %q, want 42", got)
	}
}

func TestReadWatermarkMonotonicAcrossProbes(t *testing.T) {
	c := build(t, counterOpts(nil))
	var floor types.SeqNum
	for i := 1; i <= 5; i++ {
		mustInvoke(t, c, 0, "inc")
		res := mustRead(t, c, 0, "get", floor)
		if res.Seq < floor {
			t.Fatalf("probe %d certified below its floor: %d < %d", i, res.Seq, floor)
		}
		floor = res.Seq
	}
}
