package core

import (
	"fmt"
	"path/filepath"

	"repro/internal/auth"
	"repro/internal/execnode"
	"repro/internal/firewall"
	"repro/internal/mqueue"
	"repro/internal/pbft"
	"repro/internal/replycert"
	"repro/internal/seal"
	"repro/internal/sm"
	"repro/internal/storage"
	"repro/internal/threshold"
	"repro/internal/transport"
	"repro/internal/types"
)

// Builder constructs individual nodes of a deployment. BuildSim uses it to
// assemble a simulated cluster; the deploy package uses it to run each node
// as its own OS process over TCP, with identical key material derived from
// the shared seed.
type Builder struct {
	Opts Options
	Top  *types.Topology
	Mat  *Material
}

// NewBuilder validates options and derives topology plus key material.
func NewBuilder(opts Options) (*Builder, error) {
	opts.fillDefaults()
	if opts.App == nil {
		return nil, fmt.Errorf("core: Options.App factory is required")
	}
	top := BuildTopology(opts.F, opts.G, opts.H, opts.Clients, opts.Mode)
	if err := top.Validate(); err != nil {
		return nil, err
	}
	bits := 0
	if opts.ReplyMode == replycert.ModeThreshold || opts.Mode == ModeFirewall {
		bits = opts.ThresholdBits
	}
	mat, err := NewMaterial(opts.Seed, top, bits)
	if err != nil {
		return nil, err
	}
	return &Builder{Opts: opts, Top: top, Mat: mat}, nil
}

func (b *Builder) clientAuth(id types.NodeID) auth.Scheme {
	if b.Opts.MACRequests {
		return b.Mat.MACScheme(id, b.Top.AllNodes())
	}
	return b.Mat.SigScheme(id)
}

func (b *Builder) orderAuth(id types.NodeID) auth.Scheme {
	if b.Opts.MACOrders {
		return b.Mat.MACScheme(id, b.Top.AllNodes())
	}
	return b.Mat.SigScheme(id)
}

func (b *Builder) replyAuth(id types.NodeID) auth.Scheme {
	if b.Opts.ReplyMode == replycert.ModeQuorum {
		return b.Mat.MACScheme(id, b.Top.AllNodes())
	}
	return nil
}

// replicaAuth selects the scheme backing the three-phase agreement votes:
// pairwise MAC vectors under MACAgreement (the hot-path fast mode), Ed25519
// otherwise. Either way the scheme is instrumented with per-scheme
// sign/verify latency histograms when a registry is configured.
func (b *Builder) replicaAuth(id types.NodeID) auth.Scheme {
	if b.Opts.MACAgreement {
		return auth.Instrument(b.Mat.MACScheme(id, b.Top.Agreement), b.Opts.Obs, "mac", id)
	}
	return auth.Instrument(b.Mat.SigScheme(id), b.Opts.Obs, "ed25519", id)
}

// transferAuth is always a signature scheme: it backs the certificates that
// are shown beyond their original destinations (view changes, new views,
// checkpoint proofs), which MAC vectors cannot authenticate.
func (b *Builder) transferAuth(id types.NodeID) auth.TransferScheme {
	return auth.InstrumentTransfer(b.Mat.SigScheme(id), b.Opts.Obs, "ed25519", id)
}

// verifyPool builds the node's bounded verification worker pool (nil — i.e.
// inline verification — unless VerifyWorkers >= 2).
func (b *Builder) verifyPool() *auth.VerifyPool {
	return auth.NewVerifyPool(b.Opts.VerifyWorkers)
}

// nodeStore opens (or builds via the injected factory) the durable store
// for one node identity; (nil, nil) when persistence is not configured.
func (b *Builder) nodeStore(id types.NodeID) (storage.Store, error) {
	if b.Opts.Storage != nil {
		return b.Opts.Storage(id)
	}
	if b.Opts.DataDir == "" {
		return nil, nil
	}
	dir := filepath.Join(b.Opts.DataDir, fmt.Sprintf("node-%d", id))
	sopts := b.Opts.StorageOptions
	if sopts.Obs == nil {
		sopts.Obs = b.Opts.Obs
		sopts.ObsNode = fmt.Sprintf("%d", id)
	}
	return storage.Open(dir, sopts)
}

func (b *Builder) verifier(id types.NodeID) *replycert.Verifier {
	if b.Opts.Mode == ModeBASE {
		return replycert.NewVerifierFor(replycert.ModeQuorum, b.Top.F()+1, b.Top.Agreement, b.replyAuth(id), nil)
	}
	return replycert.NewVerifier(b.Opts.ReplyMode, b.Top, b.replyAuth(id), b.Mat.ThresholdPub)
}

// AgreementNode builds one agreement replica (engine + queue, or engine +
// direct application in BASE mode). The returned transport.Node is what the
// network must drive; engine and queue expose introspection (queue is nil in
// BASE mode).
func (b *Builder) AgreementNode(id types.NodeID, send transport.Sender) (transport.Node, *pbft.Replica, *mqueue.Queue, error) {
	store, err := b.nodeStore(id)
	if err != nil {
		return nil, nil, nil, err
	}
	engineCfg := pbft.Config{
		ID:                 id,
		Topology:           b.Top,
		ReplicaAuth:        b.replicaAuth(id),
		TransferAuth:       b.transferAuth(id),
		ClientAuth:         b.clientAuth(id),
		Verify:             b.verifyPool(),
		BatchSize:          b.Opts.BatchSize,
		BatchBytes:         b.Opts.BatchBytes,
		BatchWait:          b.Opts.BatchWait,
		CheckpointInterval: b.Opts.CheckpointInterval,
		WindowSize:         b.Opts.WindowSize,
		RequestTimeout:     b.Opts.RequestTimeout,
		Store:              store,
		VolatileVotes:      b.Opts.VolatileVotes,
		Obs:                b.Opts.Obs,
		Trace:              b.Opts.Trace,
	}
	closeStore := func() {
		if store != nil {
			store.Close()
		}
	}
	if b.Opts.Mode == ModeBASE {
		app := newDirectApp(id, b.Top, b.Opts.App(), b.replyAuth(id), send)
		engine, err := pbft.New(engineCfg, app, send)
		if err != nil {
			closeStore()
			return nil, nil, nil, err
		}
		if err := engine.Recover(0); err != nil {
			closeStore()
			return nil, nil, nil, fmt.Errorf("core: recovering agreement replica %v: %w", id, err)
		}
		return engine, engine, nil, nil
	}
	dests := b.Top.Execution
	if b.Opts.Mode == ModeFirewall {
		dests = b.Top.Filters[0]
	}
	queue, err := mqueue.New(mqueue.Config{
		ID:           id,
		Topology:     b.Top,
		OrderAuth:    b.orderAuth(id),
		Verifier:     b.verifier(id),
		Dests:        dests,
		Pipeline:     b.Opts.Pipeline,
		CacheReplies: true,
	}, send)
	if err != nil {
		closeStore()
		return nil, nil, nil, err
	}
	engine, err := pbft.New(engineCfg, queue, send)
	if err != nil {
		closeStore()
		return nil, nil, nil, err
	}
	if err := engine.Recover(0); err != nil {
		closeStore()
		return nil, nil, nil, fmt.Errorf("core: recovering agreement replica %v: %w", id, err)
	}
	node := &AgreementNode{ID: id, Engine: engine, Queue: queue}
	return node, engine, queue, nil
}

// ExecNode builds one execution replica hosting a fresh application
// instance.
func (b *Builder) ExecNode(id types.NodeID, send transport.Sender) (*execnode.Replica, sm.StateMachine, error) {
	if b.Opts.Mode == ModeBASE {
		return nil, nil, fmt.Errorf("core: BASE mode has no execution replicas")
	}
	var seals map[types.NodeID]*seal.Sealer
	if b.Opts.Mode == ModeFirewall {
		seals = make(map[types.NodeID]*seal.Sealer, len(b.Top.Clients))
		for _, cid := range b.Top.Clients {
			s, err := b.Mat.Sealer(cid)
			if err != nil {
				return nil, nil, err
			}
			seals[cid] = s
		}
	}
	replyDests := b.Top.Agreement
	if b.Opts.Mode == ModeFirewall {
		replyDests = b.Top.Filters[b.Top.H()]
	}
	store, err := b.nodeStore(id)
	if err != nil {
		return nil, nil, err
	}
	closeStore := func() {
		if store != nil {
			store.Close()
		}
	}
	app := b.Opts.App()
	ex, err := execnode.New(execnode.Config{
		ID:                   id,
		Topology:             b.Top,
		OrderAuth:            b.orderAuth(id),
		ReplyAuth:            b.replyAuth(id),
		ExecAuth:             b.Mat.SigScheme(id),
		ClientAuth:           b.clientAuth(id),
		Verify:               b.verifyPool(),
		ReplyMode:            b.Opts.ReplyMode,
		ThresholdShare:       b.Mat.ThresholdShare(id),
		ShareRand:            threshold.NewSeededReader(fmt.Sprintf("%s-share-%d", b.Opts.Seed, id)),
		ReplyDests:           replyDests,
		DirectReplyToClients: b.Opts.DirectReply && b.Opts.Mode != ModeFirewall,
		Seals:                seals,
		Pipeline:             b.Opts.Pipeline,
		CheckpointInterval:   b.Opts.CheckpointInterval,
		Store:                store,
		Obs:                  b.Opts.Obs,
		Trace:                b.Opts.Trace,
	}, app, send)
	if err != nil {
		closeStore()
		return nil, nil, err
	}
	if err := ex.Recover(0); err != nil {
		closeStore()
		return nil, nil, fmt.Errorf("core: recovering execution replica %v: %w", id, err)
	}
	return ex, app, nil
}

// FilterNode builds one privacy-firewall filter.
func (b *Builder) FilterNode(id types.NodeID, send transport.Sender) (*firewall.Filter, error) {
	if b.Opts.Mode != ModeFirewall {
		return nil, fmt.Errorf("core: filters exist only in firewall mode")
	}
	row := b.Top.FilterRowOf(id)
	if row < 0 {
		return nil, fmt.Errorf("core: %v is not a filter", id)
	}
	h := b.Top.H()
	col := -1
	for i, f := range b.Top.Filters[row] {
		if f == id {
			col = i
		}
	}
	var up, down []types.NodeID
	if row == h {
		up = b.Top.Execution
	} else {
		up = []types.NodeID{b.Top.Filters[row+1][col]}
	}
	if row == 0 {
		down = b.Top.Agreement
	} else {
		down = b.Top.Filters[row-1]
	}
	return firewall.New(firewall.Config{
		ID:             id,
		Topology:       b.Top,
		Row:            row,
		UpTargets:      up,
		DownTargets:    down,
		Verifier:       replycert.NewVerifier(replycert.ModeThreshold, b.Top, nil, b.Mat.ThresholdPub),
		TopRow:         row == h,
		Pipeline:       b.Opts.Pipeline,
		OrderedRelease: b.Opts.OrderedRelease,
	}, send)
}

// ClientNode builds one client.
func (b *Builder) ClientNode(id types.NodeID, send transport.Sender) (*Client, error) {
	var sl *seal.Sealer
	if b.Opts.Mode == ModeFirewall {
		var err error
		sl, err = b.Mat.Sealer(id)
		if err != nil {
			return nil, err
		}
	}
	// The certified read path needs execution replicas to probe and
	// plaintext bodies to match on: BASE mode has neither replicas nor a
	// separate execution cluster, and firewall mode seals bodies and severs
	// the client↔exec channel. Both fall back to full agreement for reads.
	var rv *replycert.ReadVerifier
	if b.Opts.Mode != ModeBASE && b.Opts.Mode != ModeFirewall {
		rv = replycert.NewReadVerifier(b.Top, b.Mat.SigScheme(id))
	}
	return NewClient(ClientConfig{
		ID:              id,
		Topology:        b.Top,
		Scheme:          b.clientAuth(id),
		Verifier:        b.verifier(id),
		Sealer:          sl,
		RetransmitAfter: b.Opts.ClientRetransmit,
		ReadVerifier:    rv,
	}, send), nil
}
