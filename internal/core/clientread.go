package core

// The client half of the certified fast read path: fan a signed probe to
// every execution replica, assemble g+1 matching signed answers at or above
// the session floor, and report a definite mismatch (with a retry floor)
// when all 2g+1 executors have answered without such a quorum. Reads run
// beside the write path: a client may have one request AND one read
// outstanding at once, drawing their nonces from the same monotonic
// timestamp counter.

import (
	"errors"
	"fmt"

	"repro/internal/auth"
	"repro/internal/replycert"
	"repro/internal/transport"
	"repro/internal/types"
	"repro/internal/wire"
)

// ErrNoReadPath reports that this client was built without a read verifier
// (privacy-firewall or BASE deployments).
var ErrNoReadPath = errors.New("core: certified reads unavailable in this configuration")

// ReadOutcome is the completion of one certified-read probe: either Result
// is non-nil (the read certified), or Err is replycert.ErrReadMismatch and
// Hint suggests the floor to retry at. Timeouts are the caller's concern
// (CancelRead), not an outcome.
type ReadOutcome struct {
	Result *replycert.ReadResult
	Hint   types.SeqNum
	Err    error
}

// SetReadSender routes read probes (and their retransmissions) through an
// alternate sender. The simulated transport binds reads to an auxiliary
// randomness plane so probing cannot perturb the deterministic delivery
// schedule of agreement traffic; TCP uses the normal sender.
func (c *Client) SetReadSender(send transport.Sender) { c.readSend = send }

// SetOnReadDone installs a read-completion callback, the read-path analogue
// of SetOnResult. When set, outcomes are delivered to fn instead of being
// parked for the ReadDone/TakeReadOutcome polling pair.
func (c *Client) SetOnReadDone(fn func(ReadOutcome)) { c.onReadDone = fn }

// SubmitRead issues a certified-read probe for op to every execution
// replica, demanding answers computed at or above floor. It panics if a
// read is already outstanding (one read at a time per client, mirroring the
// paper's one-outstanding-request model).
func (c *Client) SubmitRead(op []byte, floor types.SeqNum, now types.Time) error {
	if c.read != nil {
		panic("client: read already outstanding")
	}
	if c.readVerifier == nil {
		return ErrNoReadPath
	}
	if c.sealer != nil {
		return ErrNoReadPath // sealed bodies cannot be queried in plaintext
	}
	c.ts++
	probe := &wire.ReadRequest{Client: c.id, Nonce: c.ts, Op: op, Floor: floor}
	att, err := c.scheme.Attest(auth.KindReadRequest, probe.Digest(), c.top.Execution)
	if err != nil {
		return fmt.Errorf("client: attesting read: %w", err)
	}
	probe.Att = att
	c.read = probe
	c.readAsm = replycert.NewReadAssembler(c.readVerifier, c.id, probe.Nonce, floor)
	c.readOutcome = nil
	c.readInterval = c.initialWait
	c.readDeadline = now + c.readInterval
	c.Metrics.Reads++
	data := wire.Marshal(probe)
	for _, id := range c.top.Execution {
		c.sendRead(id, data)
	}
	return nil
}

func (c *Client) sendRead(to types.NodeID, data []byte) {
	if c.readSend != nil {
		c.readSend(to, data)
		return
	}
	c.send(to, data)
}

// CancelRead abandons the outstanding read, if any: retransmission stops
// and late replies to it are ignored. The caller may SubmitRead again
// immediately.
func (c *Client) CancelRead() {
	c.read = nil
	c.readAsm = nil
	c.readOutcome = nil
}

// ReadDone reports whether the outstanding read completed (certified or
// definitely mismatched).
func (c *Client) ReadDone() bool { return c.readOutcome != nil }

// TakeReadOutcome returns the completed read's outcome, consuming it.
func (c *Client) TakeReadOutcome() (ReadOutcome, bool) {
	if c.readOutcome == nil {
		return ReadOutcome{}, false
	}
	out := *c.readOutcome
	c.readOutcome = nil
	return out, true
}

// onReadReply feeds one executor's answer into the assembler.
func (c *Client) onReadReply(m *wire.ReadReply) {
	if c.read == nil || c.readAsm == nil {
		return // no probe outstanding (late or unsolicited reply)
	}
	if m.Client != c.id || m.Nonce != c.read.Nonce {
		c.Metrics.BadReadReplies++
		return
	}
	res, err := c.readAsm.Add(m)
	switch {
	case res != nil:
		c.Metrics.ReadsCertified++
		c.completeRead(ReadOutcome{Result: res})
	case errors.Is(err, replycert.ErrReadMismatch):
		c.Metrics.ReadMismatches++
		c.completeRead(ReadOutcome{Hint: c.readAsm.Hint(), Err: err})
	case err != nil:
		c.Metrics.BadReadReplies++
	}
}

func (c *Client) completeRead(out ReadOutcome) {
	c.read = nil
	c.readAsm = nil
	if c.onReadDone != nil {
		c.onReadDone(out)
		return
	}
	c.readOutcome = &out
}

// tickRead retransmits the outstanding probe to every execution replica
// with exponential backoff (replies are idempotent: executors answer each
// probe copy statelessly and the assembler drops duplicates).
func (c *Client) tickRead(now types.Time) {
	if c.read == nil || now < c.readDeadline {
		return
	}
	c.Metrics.ReadRetransmits++
	data := wire.Marshal(c.read)
	for _, id := range c.top.Execution {
		c.sendRead(id, data)
	}
	c.readInterval *= 2
	c.readDeadline = now + c.readInterval
}
