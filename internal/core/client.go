package core

import (
	"bytes"
	"crypto/rand"
	"fmt"

	"repro/internal/auth"
	"repro/internal/replycert"
	"repro/internal/seal"
	"repro/internal/transport"
	"repro/internal/types"
	"repro/internal/wire"
)

// Client issues authenticated requests and validates reply certificates
// (§3.1.1). It keeps one request outstanding (the paper's client model),
// sends the first copy to the agreement replica it believes is primary, and
// retransmits to all replicas with exponential backoff.
type Client struct {
	id       types.NodeID
	top      *types.Topology
	scheme   auth.Scheme         // request attestations
	verifier *replycert.Verifier // reply certificates
	sealer   *seal.Sealer        // non-nil when bodies are sealed
	send     transport.Sender
	firstTo  types.NodeID // believed primary

	ts          types.Timestamp
	outstanding *wire.Request
	plainOp     []byte
	deadline    types.Time
	interval    types.Time
	initialWait types.Time
	assembler   *replycert.Assembler
	result      []byte
	resultSeq   types.SeqNum
	haveResult  bool
	onResult    func(body []byte, seq types.SeqNum)

	// Certified fast reads (nil readVerifier disables the path).
	readVerifier *replycert.ReadVerifier
	readSend     transport.Sender // probe/retransmit sender; nil uses send
	read         *wire.ReadRequest
	readAsm      *replycert.ReadAssembler
	readDeadline types.Time
	readInterval types.Time
	readOutcome  *ReadOutcome
	onReadDone   func(ReadOutcome)

	// Metrics counts externally observable client activity.
	Metrics ClientMetrics
}

// ClientMetrics aggregates counters exposed for tests and benchmarks.
type ClientMetrics struct {
	Requests    uint64
	Retransmits uint64
	Replies     uint64
	BadReplies  uint64

	Reads           uint64 // certified-read probes issued
	ReadRetransmits uint64
	ReadsCertified  uint64 // probes that reached a g+1 quorum
	ReadMismatches  uint64 // probes where all executors answered without a quorum
	BadReadReplies  uint64 // read replies rejected (signature, membership, wrong probe)
}

// ClientConfig parameterizes a Client.
type ClientConfig struct {
	ID              types.NodeID
	Topology        *types.Topology
	Scheme          auth.Scheme
	Verifier        *replycert.Verifier
	Sealer          *seal.Sealer // optional
	RetransmitAfter types.Time

	// ReadVerifier enables the certified fast read path (SubmitRead). Nil
	// disables it — the natural state for privacy-firewall deployments,
	// whose wiring severs the client↔exec channel, and for BASE mode,
	// which has no execution replicas to probe.
	ReadVerifier *replycert.ReadVerifier
}

// NewClient constructs a client bound to a Sender.
func NewClient(cfg ClientConfig, send transport.Sender) *Client {
	wait := cfg.RetransmitAfter
	if wait == 0 {
		wait = types.Millisecond(100)
	}
	return &Client{
		id:           cfg.ID,
		top:          cfg.Topology,
		scheme:       cfg.Scheme,
		verifier:     cfg.Verifier,
		sealer:       cfg.Sealer,
		send:         send,
		firstTo:      cfg.Topology.Agreement[0],
		initialWait:  wait,
		assembler:    replycert.NewAssembler(cfg.Verifier),
		readVerifier: cfg.ReadVerifier,
	}
}

// Submit issues a new request. It panics if one is already outstanding: the
// paper's client sends a request, waits for the reply, and only then sends
// its next request (§2).
func (c *Client) Submit(op []byte, now types.Time) error {
	if c.outstanding != nil {
		panic("client: request already outstanding")
	}
	c.ts++
	body := op
	if c.sealer != nil {
		sealed, err := c.sealer.SealRequest(rand.Reader, op)
		if err != nil {
			return fmt.Errorf("client: sealing request: %w", err)
		}
		body = sealed
	}
	req := &wire.Request{Client: c.id, Timestamp: c.ts, Op: body, ReplyTo: c.firstTo}
	att, err := c.scheme.Attest(auth.KindRequest, req.Digest(), c.top.Agreement)
	if err != nil {
		return fmt.Errorf("client: attesting request: %w", err)
	}
	req.Att = att
	c.outstanding = req
	c.plainOp = op
	c.haveResult = false
	c.result = nil
	c.interval = c.initialWait
	c.deadline = now + c.interval
	c.assembler = replycert.NewAssembler(c.verifier)
	c.Metrics.Requests++
	// First transmission goes to the believed primary only (§3.1.1).
	c.send(c.firstTo, wire.Marshal(req))
	return nil
}

// SetTimestamp advances the client's request-timestamp counter. A process
// that reuses a client identity (a CLI tool run twice against the same
// deployment) must start above the identity's previous timestamps or the
// executors' exactly-once reply table will answer its first request from
// cache; wall-clock nanoseconds are the conventional choice (§2's
// monotonically-increasing timestamp assumption). Must be called before
// Submit and never between Submit and the reply.
func (c *Client) SetTimestamp(ts types.Timestamp) {
	if c.outstanding != nil {
		panic("client: SetTimestamp with a request outstanding")
	}
	if ts > c.ts {
		c.ts = ts
	}
}

// Cancel abandons the outstanding request, if any: retransmission stops and
// a late certificate for it is ignored. The caller may Submit again
// immediately. Used by timeout/cancellation paths of asynchronous callers;
// the replicated service may still execute the abandoned operation.
func (c *Client) Cancel() {
	c.outstanding = nil
	c.result = nil
	c.haveResult = false
}

// SetOnResult installs a completion callback: when set, each certified
// reply body (and the sequence number that certified it — the session
// watermark a read-your-writes read can demand) is handed to fn (from
// within Deliver, i.e. on whatever goroutine drives the client) instead of
// being parked for the HasResult/Result polling pair. Event-driven callers
// — the public saebft client over TCP — use this to wake a waiter without
// polling.
func (c *Client) SetOnResult(fn func(body []byte, seq types.SeqNum)) { c.onResult = fn }

// HasResult reports whether the outstanding request completed.
func (c *Client) HasResult() bool { return c.haveResult }

// Result returns the reply body once HasResult is true, consuming it.
func (c *Client) Result() ([]byte, bool) {
	body, _, ok := c.ResultSeq()
	return body, ok
}

// ResultSeq is Result plus the sequence number the reply certified at (the
// watermark a session adopts for read-your-writes reads).
func (c *Client) ResultSeq() ([]byte, types.SeqNum, bool) {
	if !c.haveResult {
		return nil, 0, false
	}
	r, seq := c.result, c.resultSeq
	c.result = nil
	c.resultSeq = 0
	c.haveResult = false
	return r, seq, true
}

// Deliver implements transport.Node.
func (c *Client) Deliver(from types.NodeID, data []byte, now types.Time) {
	msg, err := wire.Unmarshal(data)
	if err != nil {
		return
	}
	switch m := msg.(type) {
	case *wire.ExecReply:
		cert, err := c.assembler.Add(m)
		if err != nil {
			c.Metrics.BadReplies++
			return
		}
		if cert != nil {
			c.acceptCert(cert)
		}
	case *wire.ReplyCert:
		if c.verifier.VerifyCert(m) != nil {
			c.Metrics.BadReplies++
			return
		}
		c.acceptCert(m)
	case *wire.ReadReply:
		c.onReadReply(m)
	}
}

// acceptCert completes the outstanding request if the certificate vouches
// for a reply to it.
func (c *Client) acceptCert(cert *wire.ReplyCert) {
	if c.outstanding == nil {
		return
	}
	for i := range cert.Entries {
		e := &cert.Entries[i]
		if e.Client != c.id || e.Timestamp != c.outstanding.Timestamp {
			continue
		}
		body := e.Body
		if c.sealer != nil {
			plain, err := c.sealer.OpenReply(body)
			if err != nil {
				c.Metrics.BadReplies++
				return
			}
			body = plain
		}
		// Track the primary for the next request's first transmission.
		c.firstTo = c.top.Primary(e.View)
		c.outstanding = nil
		c.Metrics.Replies++
		if c.onResult != nil {
			c.onResult(body, e.Seq)
			return
		}
		c.result = body
		c.resultSeq = e.Seq
		c.haveResult = true
		return
	}
}

// Tick implements transport.Node: retransmit to all agreement replicas with
// exponential backoff (§3.1.1: retransmissions designate ALL).
func (c *Client) Tick(now types.Time) {
	c.tickRead(now)
	if c.outstanding == nil || now < c.deadline {
		return
	}
	c.Metrics.Retransmits++
	req := *c.outstanding
	req.ReplyToAll = true
	data := wire.Marshal(&req)
	for _, id := range c.top.Agreement {
		c.send(id, data)
	}
	c.interval *= 2
	c.deadline = now + c.interval
}

// equalOps reports whether two operation payloads match (test helper).
func equalOps(a, b []byte) bool { return bytes.Equal(a, b) }
