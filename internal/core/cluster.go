package core

import (
	"fmt"

	"repro/internal/execnode"
	"repro/internal/firewall"
	"repro/internal/mqueue"
	"repro/internal/obs"
	"repro/internal/pbft"
	"repro/internal/replycert"
	"repro/internal/sm"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/types"
)

// Options selects a deployment configuration. The zero value plus an App
// factory yields the paper's default small deployment: f=g=h=1, separate
// architecture, MAC-quorum replies.
type Options struct {
	F, G, H int // fault thresholds per cluster
	Clients int

	Mode      Mode
	ReplyMode replycert.Mode

	// MACRequests authenticates client requests with MAC vectors instead
	// of signatures; MACOrders does the same for agreement-certificate
	// pieces sent to executors.
	MACRequests bool
	MACOrders   bool
	// MACAgreement authenticates the three-phase agreement votes
	// (pre-prepare, prepare, commit) with MAC vectors — the Castro-Liskov
	// fast path for the traffic that dominates the hot loop. View changes,
	// new views, and checkpoint-stability proofs always stay transferably
	// signed regardless of this knob: the pbft.Config.TransferAuth type
	// forbids MAC vectors there.
	MACAgreement bool

	// VerifyWorkers sizes the bounded pool that batch attestation checks
	// (client request certificates, order/commit certificates) fan out
	// over. 0 or 1 verifies inline; the pool always joins before protocol
	// state advances, so parallelism never perturbs determinism.
	VerifyWorkers int

	// DirectReply lets executors send reply shares straight to clients
	// (§3.1.3 optimization; ignored — forced off — behind the firewall).
	DirectReply bool

	BatchSize          int
	BatchBytes         int
	Pipeline           int
	CheckpointInterval types.SeqNum
	WindowSize         types.SeqNum
	RequestTimeout     types.Time
	BatchWait          types.Time
	ClientRetransmit   types.Time

	// ThresholdBits sizes the threshold RSA modulus (512 keeps tests
	// fast; benchmarks use 1024+).
	ThresholdBits int

	// OrderedRelease enables the §4.3 covert-channel restriction at every
	// filter: replies flow down in sequence-number order (held replies
	// time out after 50ms to preserve liveness across null-batch gaps).
	OrderedRelease bool

	Seed    string // key-material seed
	NetSeed int64
	Net     transport.SimNetConfig // optional overrides (Seed wins from NetSeed)

	// DataDir, when set, makes every node built by this process durable:
	// each gets a write-ahead log and checkpoint store rooted at
	// <DataDir>/node-<id>, and recovery runs during construction, so a
	// cluster restarted from the same directory resumes from its newest
	// stable checkpoint plus WAL tail. Empty keeps nodes in-memory.
	DataDir string

	// Storage overrides DataDir with a custom per-node store factory
	// (tests inject failing or observing stores through it). A factory
	// returning (nil, nil) leaves that node in-memory.
	Storage storage.Factory

	// StorageOptions tunes segment size, checkpoint retention, and the
	// fsync policy of DataDir-opened stores.
	StorageOptions storage.Options

	// VolatileVotes disables agreement-side vote/view durability (the
	// per-slot vote markers, prepared certificates, and view transitions
	// pbft logs and syncs before externalizing the corresponding
	// messages), reverting to committed-state-only persistence: cheaper,
	// but a replica recovering under a simultaneously-Byzantine primary
	// must again be counted against f until rejoined. Benchmark use. No
	// effect without DataDir/Storage.
	VolatileVotes bool

	// Obs, when non-nil, receives metrics from every node this builder
	// constructs (each series carries a node="<id>" label, so one shared
	// registry serves a whole in-process cluster). Trace, when non-nil,
	// receives per-operation lifecycle spans from the protocol cores.
	// Both are write-only inside the deterministic packages; see
	// internal/obs.
	Obs   *obs.Registry
	Trace *obs.Tracer

	// App builds one state machine instance per hosting replica.
	App func() sm.StateMachine
}

func (o *Options) fillDefaults() {
	if o.F == 0 {
		o.F = 1
	}
	if o.G == 0 {
		o.G = 1
	}
	if o.H == 0 {
		o.H = 1
	}
	if o.Clients == 0 {
		o.Clients = 1
	}
	if o.BatchSize == 0 {
		o.BatchSize = 16
	}
	if o.Pipeline == 0 {
		o.Pipeline = 32
	}
	if o.CheckpointInterval == 0 {
		o.CheckpointInterval = 64
	}
	if o.WindowSize == 0 {
		o.WindowSize = 2 * o.CheckpointInterval
	}
	if o.ThresholdBits == 0 {
		o.ThresholdBits = 512
	}
	if o.Seed == "" {
		o.Seed = "saebft"
	}
	if o.Mode == ModeFirewall {
		// The firewall's covert-channel elimination requires
		// deterministic, membership-free certificates and sealed bodies.
		o.ReplyMode = replycert.ModeThreshold
		o.DirectReply = false
	}
	if o.Mode == ModeBASE {
		o.ReplyMode = replycert.ModeQuorum
	}
}

// Cluster is a fully wired simulated deployment.
type Cluster struct {
	Opts      Options
	Top       *types.Topology
	Net       *transport.SimNet
	Material  *Material
	Agreement map[types.NodeID]*AgreementNode
	Engines   map[types.NodeID]*pbft.Replica
	Queues    map[types.NodeID]*mqueue.Queue
	Execs     map[types.NodeID]*execnode.Replica
	Filters   map[types.NodeID]*firewall.Filter
	Clients   []*Client
	ExecApps  map[types.NodeID]sm.StateMachine
}

// BuildSim constructs a simulated cluster in the requested configuration.
func BuildSim(opts Options) (*Cluster, error) {
	b, err := NewBuilder(opts)
	if err != nil {
		return nil, err
	}
	return BuildSimFrom(b)
}

// BuildSimFrom constructs a simulated cluster from an already-prepared
// builder, reusing its derived topology and key material (deriving
// threshold keys is the expensive part of construction).
func BuildSimFrom(b *Builder) (*Cluster, error) {
	netCfg := b.Opts.Net
	if netCfg.Seed == 0 {
		netCfg.Seed = b.Opts.NetSeed
	}
	net := transport.NewSimNet(netCfg)
	c := &Cluster{
		Opts:      b.Opts,
		Top:       b.Top,
		Net:       net,
		Material:  b.Mat,
		Agreement: make(map[types.NodeID]*AgreementNode),
		Engines:   make(map[types.NodeID]*pbft.Replica),
		Queues:    make(map[types.NodeID]*mqueue.Queue),
		Execs:     make(map[types.NodeID]*execnode.Replica),
		Filters:   make(map[types.NodeID]*firewall.Filter),
		ExecApps:  make(map[types.NodeID]sm.StateMachine),
	}
	if b.Opts.Mode == ModeFirewall {
		net.Restrict(FirewallWiring(b.Top))
	}
	for _, id := range b.Top.Agreement {
		node, engine, queue, err := b.AgreementNode(id, net.Bind(id))
		if err != nil {
			return nil, err
		}
		c.Engines[id] = engine
		if queue != nil {
			c.Queues[id] = queue
			c.Agreement[id] = node.(*AgreementNode)
		}
		net.Register(id, node)
	}
	if b.Opts.Mode != ModeBASE {
		for _, id := range b.Top.Execution {
			ex, app, err := b.ExecNode(id, net.Bind(id))
			if err != nil {
				return nil, err
			}
			// Read replies ride the auxiliary randomness plane: serving a
			// read must not consume primary-plane randomness draws, or the
			// mere presence of read traffic would reshuffle the delivery
			// schedule of agreement traffic between otherwise-identical runs.
			ex.SetReadSender(net.BindAux(id))
			c.Execs[id] = ex
			c.ExecApps[id] = app
			net.Register(id, ex)
		}
	}
	if b.Opts.Mode == ModeFirewall {
		for _, row := range b.Top.Filters {
			for _, id := range row {
				fl, err := b.FilterNode(id, net.Bind(id))
				if err != nil {
					return nil, err
				}
				c.Filters[id] = fl
				net.Register(id, fl)
			}
		}
	}
	for _, cid := range b.Top.Clients {
		cl, err := b.ClientNode(cid, net.Bind(cid))
		if err != nil {
			return nil, err
		}
		// Read probes, like read replies, stay on the auxiliary plane.
		cl.SetReadSender(net.BindAux(cid))
		c.Clients = append(c.Clients, cl)
		net.Register(cid, cl)
	}
	return c, nil
}

// FirewallWiring returns the physical-topology predicate of Figure 2(c):
// clients reach only the agreement cluster; filters connect only to adjacent
// rows; executors talk only to the top row and each other. Confidential
// state cannot reach a client except through every filter row.
func FirewallWiring(top *types.Topology) func(from, to types.NodeID) bool {
	h := top.H()
	return func(from, to types.NodeID) bool {
		fr, _, ok1 := top.RoleOf(from)
		tr, _, ok2 := top.RoleOf(to)
		if !ok1 || !ok2 {
			return false
		}
		switch {
		case fr == types.RoleClient && tr == types.RoleAgreement,
			fr == types.RoleAgreement && tr == types.RoleClient:
			return true
		case fr == types.RoleAgreement && tr == types.RoleAgreement:
			return true
		case fr == types.RoleExecution && tr == types.RoleExecution:
			return true
		case fr == types.RoleAgreement && tr == types.RoleFilter:
			return top.FilterRowOf(to) == 0
		case fr == types.RoleFilter && tr == types.RoleAgreement:
			return top.FilterRowOf(from) == 0
		case fr == types.RoleFilter && tr == types.RoleFilter:
			ra, rb := top.FilterRowOf(from), top.FilterRowOf(to)
			return ra-rb == 1 || rb-ra == 1
		case fr == types.RoleFilter && tr == types.RoleExecution:
			return top.FilterRowOf(from) == h
		case fr == types.RoleExecution && tr == types.RoleFilter:
			return top.FilterRowOf(to) == h
		default:
			return false
		}
	}
}

// Invoke submits op from the given client and runs the simulation until the
// reply certificate arrives or the timeout elapses.
func (c *Cluster) Invoke(client int, op []byte, timeout types.Time) ([]byte, error) {
	cl := c.Clients[client]
	if err := cl.Submit(op, c.Net.Now()); err != nil {
		return nil, err
	}
	if !c.Net.RunUntil(cl.HasResult, c.Net.Now()+timeout) {
		return nil, fmt.Errorf("core: request timed out after %d ns", timeout)
	}
	r, _ := cl.Result()
	return r, nil
}

// ReadCertified issues a certified-read probe from the given client and runs
// the simulation until it completes or the timeout elapses. On a quorum
// mismatch the returned error wraps replycert.ErrReadMismatch and the hint
// reports the floor to retry at.
func (c *Cluster) ReadCertified(client int, op []byte, floor types.SeqNum, timeout types.Time) (*replycert.ReadResult, types.SeqNum, error) {
	cl := c.Clients[client]
	if err := cl.SubmitRead(op, floor, c.Net.Now()); err != nil {
		return nil, 0, err
	}
	if !c.Net.RunUntil(cl.ReadDone, c.Net.Now()+timeout) {
		cl.CancelRead()
		return nil, 0, fmt.Errorf("core: read timed out after %d ns", timeout)
	}
	out, _ := cl.TakeReadOutcome()
	return out.Result, out.Hint, out.Err
}

// Shutdown flushes and closes every node's durable store (graceful-exit
// path). No-op for in-memory clusters. The caller must have quiesced the
// simulation: nodes are not driven afterwards.
func (c *Cluster) Shutdown() {
	for _, e := range c.Engines {
		e.Shutdown()
	}
	for _, ex := range c.Execs {
		ex.Shutdown()
	}
}

// Kill abandons every node's durable store without flushing, releasing
// file handles and directory locks the way process death would (crash
// tests). No-op for in-memory clusters.
func (c *Cluster) Kill() {
	for _, e := range c.Engines {
		e.CrashStop()
	}
	for _, ex := range c.Execs {
		ex.CrashStop()
	}
}

// CrashAgreement crashes agreement replica i.
func (c *Cluster) CrashAgreement(i int) { c.Net.Crash(c.Top.Agreement[i]) }

// CrashExec crashes execution replica i.
func (c *Cluster) CrashExec(i int) { c.Net.Crash(c.Top.Execution[i]) }

// CrashFilter crashes the filter at (row, col).
func (c *Cluster) CrashFilter(row, col int) { c.Net.Crash(c.Top.Filters[row][col]) }
