package core

import (
	"testing"

	"repro/internal/auth"
	"repro/internal/transport"
	"repro/internal/types"
)

func TestBuildTopologyShapes(t *testing.T) {
	top := BuildTopology(2, 2, 0, 3, ModeSeparate)
	if len(top.Agreement) != 7 || len(top.Execution) != 5 || len(top.Filters) != 0 || len(top.Clients) != 3 {
		t.Errorf("shape: %d/%d/%d/%d", len(top.Agreement), len(top.Execution), len(top.Filters), len(top.Clients))
	}
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	fw := BuildTopology(1, 1, 2, 1, ModeFirewall)
	if len(fw.Filters) != 3 || len(fw.Filters[0]) != 3 {
		t.Errorf("firewall grid: %dx%d, want 3x3", len(fw.Filters), len(fw.Filters[0]))
	}
	if err := fw.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMaterialDeterministicAcrossProcesses(t *testing.T) {
	top := BuildTopology(1, 1, 1, 1, ModeFirewall)
	m1, err := NewMaterial("same-seed", top, 512)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := NewMaterial("same-seed", top, 512)
	if err != nil {
		t.Fatal(err)
	}
	// Signature made by one material verifies under the other: every
	// process of a deployment derives matching keys.
	d := types.DigestBytes([]byte("x"))
	att, err := m1.SigScheme(0).Attest(auth.KindCommit, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.SigScheme(1).Verify(auth.KindCommit, d, att); err != nil {
		t.Fatalf("cross-material signature verification: %v", err)
	}
	// Threshold keys match.
	if m1.ThresholdPub.N.Cmp(m2.ThresholdPub.N) != 0 {
		t.Fatal("threshold public keys differ for the same seed")
	}
	sh, err := m1.ThresholdShare(top.Execution[0]).Sign(nil2reader(), d)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.ThresholdPub.VerifyShare(d, sh); err != nil {
		t.Fatalf("cross-material share verification: %v", err)
	}
	// MAC pairs agree.
	mac, err := m1.MACScheme(0, top.AllNodes()).Attest(auth.KindOrder, d, []types.NodeID{100})
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.MACScheme(100, top.AllNodes()).Verify(auth.KindOrder, d, mac); err != nil {
		t.Fatalf("cross-material MAC verification: %v", err)
	}
	// Sealers agree per client and differ across seeds.
	s1, _ := m1.Sealer(top.Clients[0])
	s2, _ := m2.Sealer(top.Clients[0])
	ct := s1.SealReply(top.Clients[0], 1, []byte("p"))
	if _, err := s2.OpenReply(ct); err != nil {
		t.Fatalf("cross-material sealing: %v", err)
	}
	m3, _ := NewMaterial("other-seed", top, 0)
	if err := m3.SigScheme(1).Verify(auth.KindCommit, d, att); err == nil {
		t.Error("different seeds produced compatible signature keys")
	}
}

// nil2reader returns a deterministic reader for share-proof blinding.
func nil2reader() *seededReaderShim { return &seededReaderShim{} }

type seededReaderShim struct{ n byte }

func (s *seededReaderShim) Read(p []byte) (int, error) {
	for i := range p {
		s.n++
		p[i] = s.n
	}
	return len(p), nil
}

func TestBuilderRoleErrors(t *testing.T) {
	b, err := NewBuilder(counterOpts(func(o *Options) { o.Mode = ModeBASE }))
	if err != nil {
		t.Fatal(err)
	}
	send := transport.Sender(func(types.NodeID, []byte) {})
	if _, _, err := b.ExecNode(b.Top.Execution[0], send); err == nil {
		t.Error("BASE builder produced an execution node")
	}
	if _, err := b.FilterNode(200, send); err == nil {
		t.Error("non-firewall builder produced a filter")
	}

	fb, err := NewBuilder(counterOpts(func(o *Options) { o.Mode = ModeFirewall }))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fb.FilterNode(fb.Top.Agreement[0], send); err == nil {
		t.Error("builder accepted a non-filter identity for FilterNode")
	}
}

func TestModeStrings(t *testing.T) {
	for m, want := range map[Mode]string{ModeBASE: "BASE", ModeSeparate: "Separate", ModeFirewall: "Firewall"} {
		if m.String() != want {
			t.Errorf("%d.String() = %q", m, m.String())
		}
	}
}

func TestOptionsDefaultsForceFirewallInvariants(t *testing.T) {
	o := counterOpts(func(o *Options) {
		o.Mode = ModeFirewall
		o.DirectReply = true // must be forced off
	})
	b, err := NewBuilder(o)
	if err != nil {
		t.Fatal(err)
	}
	if b.Opts.DirectReply {
		t.Error("DirectReply not forced off behind the firewall")
	}
	if b.Opts.ReplyMode.String() != "threshold" {
		t.Error("firewall mode did not force threshold certificates")
	}
}
