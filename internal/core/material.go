// Package core composes the paper's full architecture out of the substrate
// packages: agreement replicas (pbft engine + message queue), execution
// replicas, privacy-firewall filters, and clients — in every configuration
// the evaluation compares (§5.2):
//
//	BASE       — traditional coupled agreement+execution (Figure 1a)
//	Separate   — 3f+1 agreement + 2g+1 execution (Figure 1b)
//	Firewall   — Separate plus the (h+1)² privacy firewall (Figure 2c)
//
// with MAC-quorum or threshold-signature reply certificates.
package core

import (
	"crypto/ed25519"
	"encoding/binary"
	"fmt"

	"repro/internal/auth"
	"repro/internal/seal"
	"repro/internal/threshold"
	"repro/internal/types"
)

// Mode selects the replication architecture.
type Mode uint8

// Architectures under comparison.
const (
	// ModeBASE is the traditional coupled architecture: 3f+1 replicas
	// agree and execute; clients accept f+1 matching replies.
	ModeBASE Mode = iota
	// ModeSeparate splits agreement (3f+1) from execution (2g+1).
	ModeSeparate
	// ModeFirewall is ModeSeparate plus the privacy firewall grid and
	// body sealing.
	ModeFirewall
)

func (m Mode) String() string {
	switch m {
	case ModeBASE:
		return "BASE"
	case ModeSeparate:
		return "Separate"
	case ModeFirewall:
		return "Firewall"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Material holds all cryptographic key material for one deployment, derived
// deterministically from a seed so that multi-process deployments and tests
// can reconstruct matching keys. Production deployments would provision this
// via a trusted dealer; the derivation stands in for that dealer.
type Material struct {
	Seed         string
	MasterSecret []byte
	Dir          *auth.Directory
	privs        map[types.NodeID]ed25519.PrivateKey
	ThresholdPub *threshold.PublicKey
	thresholdSh  map[types.NodeID]*threshold.KeyShare
}

// NewMaterial derives key material for the topology. If thresholdBits > 0, a
// (g+1)-of-(2g+1) threshold signing key is dealt to the execution cluster.
func NewMaterial(seed string, top *types.Topology, thresholdBits int) (*Material, error) {
	m := &Material{
		Seed:         seed,
		MasterSecret: []byte("saebft-master:" + seed),
		Dir:          auth.NewDirectory(nil),
		privs:        make(map[types.NodeID]ed25519.PrivateKey),
		thresholdSh:  make(map[types.NodeID]*threshold.KeyShare),
	}
	for _, id := range top.AllNodes() {
		var edSeed [ed25519.SeedSize]byte
		copy(edSeed[:], seed)
		binary.BigEndian.PutUint32(edSeed[28:32], uint32(int32(id)))
		priv := ed25519.NewKeyFromSeed(edSeed[:])
		m.privs[id] = priv
		m.Dir.Add(id, priv.Public().(ed25519.PublicKey))
	}
	if thresholdBits > 0 && len(top.Execution) > 0 {
		pub, shares, err := threshold.Deal(
			threshold.NewSeededReader("saebft-threshold:"+seed),
			thresholdBits, top.ExecutionQuorum(), len(top.Execution))
		if err != nil {
			return nil, fmt.Errorf("core: dealing threshold key: %w", err)
		}
		m.ThresholdPub = pub
		for i, id := range top.Execution {
			m.thresholdSh[id] = shares[i]
		}
	}
	return m, nil
}

// SigScheme returns a signature scheme for the node.
func (m *Material) SigScheme(id types.NodeID) *auth.SigScheme {
	return auth.NewSigScheme(id, m.privs[id], m.Dir)
}

// MACScheme returns a MAC-vector scheme for the node over all peers.
func (m *Material) MACScheme(id types.NodeID, peers []types.NodeID) *auth.MACScheme {
	return auth.NewMACScheme(auth.NewKeyRing(m.MasterSecret, id, peers))
}

// ThresholdShare returns the node's threshold signing share (nil if none).
func (m *Material) ThresholdShare(id types.NodeID) *threshold.KeyShare {
	return m.thresholdSh[id]
}

// Sealer returns the body sealer shared by a client and the executors.
func (m *Material) Sealer(client types.NodeID) (*seal.Sealer, error) {
	return seal.New(seal.DeriveKey(m.MasterSecret, client))
}

// BuildTopology lays out node identities for the requested cluster sizes:
// agreement replicas at 0.., executors at 100.., filters at 200.. (row-major),
// clients at 1000...
func BuildTopology(f, g, h, clients int, mode Mode) *types.Topology {
	top := &types.Topology{}
	for i := 0; i < 3*f+1; i++ {
		top.Agreement = append(top.Agreement, types.NodeID(i))
	}
	for i := 0; i < 2*g+1; i++ {
		top.Execution = append(top.Execution, types.NodeID(100+i))
	}
	if mode == ModeFirewall {
		for row := 0; row <= h; row++ {
			var r []types.NodeID
			for col := 0; col <= h; col++ {
				r = append(r, types.NodeID(200+row*32+col))
			}
			top.Filters = append(top.Filters, r)
		}
	}
	for i := 0; i < clients; i++ {
		top.Clients = append(top.Clients, types.NodeID(1000+i))
	}
	return top
}
