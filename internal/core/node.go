package core

import (
	"sort"

	"repro/internal/auth"
	"repro/internal/mqueue"
	"repro/internal/pbft"
	"repro/internal/sm"
	"repro/internal/transport"
	"repro/internal/types"
	"repro/internal/wire"
)

// AgreementNode composes the agreement engine with its local message queue
// into one network node: protocol traffic drives the engine, reply traffic
// drives the queue, and ticks drive both.
type AgreementNode struct {
	ID     types.NodeID
	Engine *pbft.Replica
	Queue  *mqueue.Queue
}

// Deliver implements transport.Node.
func (n *AgreementNode) Deliver(from types.NodeID, data []byte, now types.Time) {
	msg, err := wire.Unmarshal(data)
	if err != nil {
		return
	}
	switch m := msg.(type) {
	case *wire.ExecReply:
		n.Queue.OnExecReply(m, now)
	case *wire.ReplyCert:
		n.Queue.OnReplyCert(m, now)
	default:
		n.Engine.Receive(from, msg, now)
	}
}

// Tick implements transport.Node.
func (n *AgreementNode) Tick(now types.Time) {
	n.Queue.Tick(now)
	n.Engine.Tick(now)
}

// Shutdown flushes and closes the engine's durable store (graceful-exit
// path); the deploy layer invokes it before tearing the runtime down.
func (n *AgreementNode) Shutdown() { n.Engine.Shutdown() }

// CrashStop abandons the engine's store without flushing (crash tests).
func (n *AgreementNode) CrashStop() { n.Engine.CrashStop() }

// StorageErr surfaces the engine's first storage failure (fail-stop cause).
func (n *AgreementNode) StorageErr() error { return n.Engine.StorageErr() }

// directApp is the coupled-baseline application adapter: the agreement
// engine executes the state machine in place (Figure 1a) and every replica
// sends its reply share straight to the client, which collects f+1 matching
// shares. It reproduces the execution replica's exactly-once reply table so
// the two architectures answer retransmissions identically.
type directApp struct {
	id        types.NodeID
	top       *types.Topology
	app       sm.StateMachine
	replyAuth auth.Scheme
	send      transport.Sender
	replies   map[types.NodeID]*directReply
	lastOut   map[types.NodeID]*wire.ExecReply
}

type directReply struct {
	timestamp types.Timestamp
	body      []byte
}

func newDirectApp(id types.NodeID, top *types.Topology, app sm.StateMachine, replyAuth auth.Scheme, send transport.Sender) *directApp {
	return &directApp{
		id: id, top: top, app: app, replyAuth: replyAuth, send: send,
		replies: make(map[types.NodeID]*directReply),
		lastOut: make(map[types.NodeID]*wire.ExecReply),
	}
}

// executeOps applies one request body to the state machine. A multi-op
// envelope (client-side batching) is unpacked and each operation executed
// in envelope order, their replies packed into one matching reply envelope;
// any other body is a single opaque operation. This mirrors
// execnode.(*Replica).executeOps so the coupled baseline answers batched
// clients identically to the separated architecture.
func executeOps(app sm.StateMachine, body []byte, nd types.NonDet) []byte {
	ops, ok := wire.UnpackOps(body)
	if !ok {
		return app.Execute(body, nd)
	}
	bodies := make([][]byte, len(ops))
	for i, op := range ops {
		bodies[i] = app.Execute(op, nd)
	}
	return wire.PackOpReplies(bodies)
}

// Execute implements pbft.App.
func (a *directApp) Execute(v types.View, n types.SeqNum, nd types.NonDet, reqs []wire.Request, now types.Time) {
	entries := make([]wire.Reply, 0, len(reqs))
	for i := range reqs {
		req := &reqs[i]
		rs := a.replies[req.Client]
		if rs == nil {
			rs = &directReply{}
			a.replies[req.Client] = rs
		}
		if req.Timestamp > rs.timestamp {
			rs.body = executeOps(a.app, req.Op, nd)
			rs.timestamp = req.Timestamp
		}
		entries = append(entries, wire.Reply{
			View: v, Seq: n, Client: req.Client, Timestamp: rs.timestamp, Body: rs.body,
		})
	}
	if len(entries) == 0 {
		return
	}
	digest := wire.BundleDigest(entries)
	dests := make([]types.NodeID, 0, len(entries))
	for i := range entries {
		dests = append(dests, entries[i].Client)
	}
	att, err := a.replyAuth.Attest(auth.KindReply, digest, dests)
	if err != nil {
		return
	}
	out := &wire.ExecReply{Entries: entries, Executor: a.id, Att: att}
	data := wire.Marshal(out)
	sent := make(map[types.NodeID]bool)
	for i := range entries {
		c := entries[i].Client
		a.lastOut[c] = out
		if !sent[c] {
			sent[c] = true
			a.send(c, data)
		}
	}
}

// ResendReply implements pbft.App: answer retransmissions from the reply
// table.
func (a *directApp) ResendReply(req *wire.Request, now types.Time) bool {
	out := a.lastOut[req.Client]
	if out == nil {
		return false
	}
	for i := range out.Entries {
		e := &out.Entries[i]
		if e.Client == req.Client && e.Timestamp >= req.Timestamp {
			a.send(req.Client, wire.Marshal(out))
			return true
		}
	}
	return false
}

// Sync implements pbft.App: the state machine can checkpoint immediately.
func (a *directApp) Sync(n types.SeqNum, done func(types.Digest, []byte)) {
	payload := a.marshal()
	done(types.DigestBytes(payload), payload)
}

func (a *directApp) marshal() []byte {
	var w wire.Writer
	w.Bytes(a.app.Checkpoint())
	ids := make([]types.NodeID, 0, len(a.replies))
	for id := range a.replies {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	w.Len(len(ids))
	for _, id := range ids {
		rs := a.replies[id]
		w.Node(id)
		w.TS(rs.timestamp)
		w.Bytes(rs.body)
	}
	return w.B
}

// Restore implements pbft.App.
func (a *directApp) Restore(n types.SeqNum, digest types.Digest, payload []byte) error {
	rd := wire.NewReader(payload)
	appState := rd.Bytes()
	k := rd.SliceLen()
	replies := make(map[types.NodeID]*directReply, k)
	for i := 0; i < k; i++ {
		id := rd.Node()
		replies[id] = &directReply{timestamp: rd.TS(), body: rd.Bytes()}
	}
	if rd.Err() != nil {
		return rd.Err()
	}
	if err := a.app.Restore(appState); err != nil {
		return err
	}
	a.replies = replies
	return nil
}

// Busy implements pbft.App: direct execution has no pipeline to fill.
func (a *directApp) Busy(now types.Time) bool { return false }
