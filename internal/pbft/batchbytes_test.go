package pbft

import (
	"strings"
	"testing"

	"repro/internal/types"
)

// TestBatchBytesCutsLargeBatches proves the primary cuts a proposal at the
// byte budget: large request bodies (multi-op envelopes from batching
// clients) must not pile into one giant pre-prepare even when BatchSize
// would allow it.
func TestBatchBytesCutsLargeBatches(t *testing.T) {
	c := newCluster(t, 9, func(cfg *Config) {
		cfg.BatchSize = 16
		cfg.BatchBytes = 2048
	})
	big := strings.Repeat("x", 1000)
	total := 0
	for i := 0; i < 2; i++ {
		for _, client := range c.top.Clients {
			c.sendTo(0, c.request(client, big))
			total++
		}
	}
	if !c.net.RunUntil(c.allExecuted(total), types.Millisecond(2000)) {
		t.Fatalf("only %d/%d executed", len(c.apps[0].flatOps()), total)
	}
	c.assertConsistentLogs()
	for _, e := range c.apps[0].log {
		bytes := 0
		for _, op := range e.ops {
			bytes += len(op)
		}
		// Each logged op string carries a small "client:ts:" prefix; with
		// 1000-byte bodies a batch within budget holds at most 2 of them.
		if len(e.ops) > 2 {
			t.Fatalf("seq %d packed %d 1000-byte requests (%d bytes) despite a 2048-byte budget", e.seq, len(e.ops), bytes)
		}
	}
	if got := c.replicas[0].Metrics.Batches; got < 3 {
		t.Fatalf("Batches = %d for %d oversized requests, want >= 3", got, total)
	}
}

// TestSingleOversizedRequestStillShips proves one request larger than
// BatchBytes is proposed alone rather than starved.
func TestSingleOversizedRequestStillShips(t *testing.T) {
	c := newCluster(t, 10, func(cfg *Config) {
		cfg.BatchBytes = 512
	})
	c.sendTo(0, c.request(100, strings.Repeat("y", 4096)))
	if !c.net.RunUntil(c.allExecuted(1), types.Millisecond(1000)) {
		t.Fatal("oversized request never executed")
	}
	c.assertConsistentLogs()
}
