package pbft

import (
	"sort"

	"repro/internal/auth"
	"repro/internal/obs"
	"repro/internal/types"
	"repro/internal/wire"
)

// This file implements the PBFT view-change sub-protocol: replicas that
// suspect the primary broadcast signed VIEW-CHANGE messages carrying their
// stable-checkpoint proof and prepared-batch evidence; the new primary
// assembles 2f+1 of them into a NEW-VIEW that re-proposes every batch that
// may have committed, and every replica independently re-derives and checks
// that computation. The paper delegates this machinery to BASE (§3.2); it is
// reproduced here in full because liveness under a faulty primary depends on
// it.

// startViewChange abandons the current view and campaigns for target.
func (r *Replica) startViewChange(target types.View, now types.Time) {
	if target <= r.view {
		return
	}
	if !r.inViewChange {
		r.vcBegan = now // an escalating campaign keeps its original start
	}
	r.view = target
	r.inViewChange = true
	r.vcAttempts = 0
	r.Metrics.ViewChanges++
	r.om.viewChanges.Inc()
	r.om.view.Set(int64(target))
	r.om.queueDepth.Set(0)
	r.span(now, obs.StageViewChange, 0, "")
	r.queue = nil
	r.queued = make(map[types.Digest]bool)
	r.queueBytes = 0
	r.batchDeadline = 0

	vc := r.buildViewChange(target)
	r.sentVC = vc
	r.vcDeadline = now + r.cfg.ViewChangeResend
	r.storeViewChange(vc)
	// The campaign start must be durable before the VIEW-CHANGE leaves:
	// a replica that crashes mid-campaign recovers into the campaign
	// instead of regressing to voting in the view it already abandoned.
	if !r.logView(target, true) || !r.syncVotes() {
		return
	}
	r.broadcast(wire.Marshal(vc))
	r.maybeBuildNewView(now)
}

// buildViewChange assembles this replica's evidence for the new view.
func (r *Replica) buildViewChange(target types.View) *wire.ViewChange {
	var entries []wire.PreparedEntry
	seqs := make([]types.SeqNum, 0, len(r.insts))
	for n := range r.insts {
		seqs = append(seqs, n)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, n := range seqs {
		in := r.insts[n]
		if !in.prepared || in.pp == nil || n <= r.lastStable {
			continue
		}
		ent := r.preparedEntry(in)
		if ent == nil {
			continue
		}
		entries = append(entries, *ent)
	}
	vc := &wire.ViewChange{
		NewView:    target,
		LastStable: r.lastStable,
		CkptState:  r.stableState(),
		CkptProof:  r.stableProof,
		Prepared:   entries,
		Replica:    r.cfg.ID,
	}
	// View changes are forwarded between replicas inside NEW-VIEW messages,
	// i.e. shown to parties that were not their destination: they must be
	// transferably signed, never MAC vectors, whatever ReplicaAuth is.
	att, err := r.cfg.TransferAuth.Attest(auth.KindViewChange, vc.SigningDigest(), r.top.Agreement)
	if err == nil {
		vc.Att = att
	}
	return vc
}

// stableState returns the digest of the latest stable checkpoint (zero at
// genesis).
func (r *Replica) stableState() types.Digest {
	if len(r.stableProof) > 0 {
		return r.stableProof[0].State
	}
	return types.ZeroDigest
}

// validateViewChange checks a VIEW-CHANGE end to end: signature, checkpoint
// proof, and every prepared entry's transferable evidence.
func (r *Replica) validateViewChange(m *wire.ViewChange) bool {
	role, _, ok := r.top.RoleOf(m.Replica)
	if !ok || role != types.RoleAgreement || m.Att.Node != m.Replica {
		return false
	}
	if r.cfg.TransferAuth.Verify(auth.KindViewChange, m.SigningDigest(), m.Att) != nil {
		return false
	}
	allowed := make(map[types.NodeID]bool, r.n)
	for _, id := range r.top.Agreement {
		allowed[id] = true
	}
	if m.LastStable > 0 {
		cd := wire.CheckpointDigest(m.LastStable, m.CkptState)
		atts := make([]auth.Attestation, 0, len(m.CkptProof))
		for i := range m.CkptProof {
			c := &m.CkptProof[i]
			if c.Seq != m.LastStable || c.State != m.CkptState || c.Att.Node != c.Replica {
				return false
			}
			atts = append(atts, c.Att)
		}
		if auth.CountDistinctPar(r.cfg.Verify, r.cfg.TransferAuth, auth.KindAgreeCheckpoint, cd, atts, allowed) < 2*r.f+1 {
			return false
		}
	}
	for i := range m.Prepared {
		e := &m.Prepared[i]
		if e.Seq <= m.LastStable || e.View >= m.NewView {
			return false
		}
		if !r.verifyPreparedEvidence(e) {
			return false
		}
	}
	return true
}

// verifyPreparedEvidence checks a PreparedEntry's transferable proof that a
// batch prepared somewhere: the view primary's pre-prepare attestation, 2f
// distinct valid backup prepares over the same order digest, and canonical
// nondeterminism. Shared by view-change validation (entries arriving from
// peers) and WAL recovery (entries from the replica's own untrusted disk).
func (r *Replica) verifyPreparedEvidence(e *wire.PreparedEntry) bool {
	od := e.OrderDigest()
	primary := r.top.Primary(e.View)
	if e.PrimaryAtt.Node != primary {
		return false
	}
	if r.certAuth.Verify(auth.KindPrePrepare, od, e.PrimaryAtt) != nil {
		return false
	}
	// 2f distinct valid prepares from backups of that view.
	backups := make(map[types.NodeID]bool, r.n)
	for _, id := range r.top.Agreement {
		if id != primary {
			backups[id] = true
		}
	}
	if auth.CountDistinctPar(r.cfg.Verify, r.certAuth, auth.KindPrepare, od, e.Prepares, backups) < 2*r.f {
		return false
	}
	// The nondeterminism must be the canonical function of (seq, time);
	// it was checked when first prepared, but re-verifying keeps a
	// colluding quorum (or a tampered WAL) from smuggling steered
	// randomness forward.
	return e.ND.Rand == types.ComputeNonDetRand(e.Seq, e.ND.Time)
}

func (r *Replica) storeViewChange(m *wire.ViewChange) {
	byNode := r.vcs[m.NewView]
	if byNode == nil {
		byNode = make(map[types.NodeID]*wire.ViewChange)
		r.vcs[m.NewView] = byNode
	}
	if _, dup := byNode[m.Replica]; !dup {
		byNode[m.Replica] = m
	}
}

func (r *Replica) onViewChange(m *wire.ViewChange, now types.Time) {
	if m.NewView < r.view {
		// Straggler: if we already hold the proof that its target view
		// started, forward it.
		if r.lastNewView != nil && r.lastNewView.View >= m.NewView {
			r.send(m.Replica, wire.Marshal(r.lastNewView))
		}
		return
	}
	if !r.validateViewChange(m) {
		return
	}
	r.storeViewChange(m)

	// A campaign for the view we already completed means the sender missed
	// the NEW-VIEW: resend the proof.
	if m.NewView == r.view && !r.inViewChange && r.lastNewView != nil && r.lastNewView.View == r.view {
		r.send(m.Replica, wire.Marshal(r.lastNewView))
		return
	}

	// Liveness joining rule: once f+1 distinct replicas campaign for views
	// beyond ours, join the smallest such view (at least one correct
	// replica is ahead of us, so waiting cannot help).
	campaigners := make(map[types.NodeID]bool)
	minTarget := types.View(0)
	for v, byNode := range r.vcs {
		if v <= r.view {
			continue
		}
		for id := range byNode {
			campaigners[id] = true
		}
		if minTarget == 0 || v < minTarget {
			minTarget = v
		}
	}
	if len(campaigners) >= r.f+1 && minTarget > r.view {
		r.startViewChange(minTarget, now)
	}
	r.maybeBuildNewView(now)
}

// maybeBuildNewView runs on the would-be primary once 2f+1 view changes for
// the current target view have been collected.
func (r *Replica) maybeBuildNewView(now types.Time) {
	if !r.inViewChange || !r.isPrimary() {
		return
	}
	byNode := r.vcs[r.view]
	if len(byNode) < 2*r.f+1 {
		return
	}
	// Deterministically select 2f+1 view changes (ascending replica id,
	// own first if present).
	ids := make([]types.NodeID, 0, len(byNode))
	for id := range byNode {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	selected := make([]wire.ViewChange, 0, 2*r.f+1)
	for _, id := range ids {
		if len(selected) == 2*r.f+1 {
			break
		}
		selected = append(selected, *byNode[id])
	}

	pps, minS, maxS := r.computeNewViewPrePrepares(r.view, selected)
	nv := &wire.NewView{View: r.view, ViewChanges: selected, PrePrepares: pps, Primary: r.cfg.ID}
	// The NEW-VIEW is retransmitted to stragglers in arbitrary later
	// views — transferable signature, like the view changes it carries.
	att, err := r.cfg.TransferAuth.Attest(auth.KindNewView, nv.SigningDigest(), r.top.Agreement)
	if err != nil {
		return
	}
	nv.Att = att
	// The NEW-VIEW externalizes the install and the primary's re-proposal
	// votes for the whole O set: make all of it durable first, under one
	// sync.
	if !r.logView(r.view, false) {
		return
	}
	for i := range pps {
		if !r.logVote(pps[i].View, pps[i].Seq, pps[i].OrderDigest(), wire.VotePrePrepare) {
			return
		}
	}
	if !r.syncVotes() {
		return
	}
	r.broadcast(wire.Marshal(nv))
	r.installNewView(nv, minS, maxS, now)
}

// computeNewViewPrePrepares derives the O set: for every sequence number
// between the highest stable checkpoint (min-s) and the highest prepared
// sequence (max-s), re-propose the prepared batch of the highest view, or a
// null batch if none prepared.
func (r *Replica) computeNewViewPrePrepares(v types.View, vcs []wire.ViewChange) (pps []wire.PrePrepare, minS, maxS types.SeqNum) {
	for i := range vcs {
		if vcs[i].LastStable > minS {
			minS = vcs[i].LastStable
		}
	}
	maxS = minS
	best := make(map[types.SeqNum]*wire.PreparedEntry)
	for i := range vcs {
		for j := range vcs[i].Prepared {
			e := &vcs[i].Prepared[j]
			if e.Seq <= minS {
				continue
			}
			if e.Seq > maxS {
				maxS = e.Seq
			}
			if cur, ok := best[e.Seq]; !ok || e.View > cur.View {
				best[e.Seq] = e
			}
		}
	}
	for n := minS + 1; n <= maxS; n++ {
		pp := wire.PrePrepare{View: v, Seq: n, Primary: r.top.Primary(v)}
		if e, ok := best[n]; ok {
			pp.ND = e.ND
			pp.Requests = e.Requests
		} else {
			// Null batch filler; executors skip empty batches.
			pp.ND = types.NonDet{Time: 0, Rand: types.ComputeNonDetRand(n, 0)}
		}
		pps = append(pps, pp)
	}
	// The (would-be) primary attests each re-proposal so backups can
	// treat them as ordinary pre-prepares in the new view.
	if r.top.Primary(v) == r.cfg.ID {
		for i := range pps {
			att, err := r.cfg.ReplicaAuth.Attest(auth.KindPrePrepare, pps[i].OrderDigest(), r.top.Agreement)
			if err == nil {
				pps[i].Att = att
			}
		}
	}
	return pps, minS, maxS
}

// validateNewView checks a NEW-VIEW end to end: primary attribution and
// transferable signature, the embedded 2f+1 distinct valid VIEW-CHANGEs,
// and digest-for-digest equality of the carried re-proposals against an
// independent recomputation of the O set. Shared by live delivery
// (onNewView) and WAL recovery, where the stored message is untrusted
// input. Returns the O-set sequence bounds on success.
func (r *Replica) validateNewView(m *wire.NewView) (minS, maxS types.SeqNum, ok bool) {
	if m.Primary != r.top.Primary(m.View) || m.Att.Node != m.Primary {
		return 0, 0, false
	}
	if r.cfg.TransferAuth.Verify(auth.KindNewView, m.SigningDigest(), m.Att) != nil {
		return 0, 0, false
	}
	// Validate the 2f+1 view changes.
	seen := make(map[types.NodeID]bool)
	for i := range m.ViewChanges {
		vc := &m.ViewChanges[i]
		if vc.NewView != m.View || seen[vc.Replica] || !r.validateViewChange(vc) {
			return 0, 0, false
		}
		seen[vc.Replica] = true
	}
	if len(seen) < 2*r.f+1 {
		return 0, 0, false
	}
	// Independently recompute O and require digest-for-digest equality.
	var want []wire.PrePrepare
	want, minS, maxS = r.computeNewViewPrePrepares(m.View, m.ViewChanges)
	if len(want) != len(m.PrePrepares) {
		return 0, 0, false
	}
	for i := range want {
		got := &m.PrePrepares[i]
		if got.View != m.View || got.Seq != want[i].Seq || got.Primary != m.Primary {
			return 0, 0, false
		}
		if got.OrderDigest() != want[i].OrderDigest() {
			return 0, 0, false
		}
		if r.certAuth.Verify(auth.KindPrePrepare, got.OrderDigest(), got.Att) != nil || got.Att.Node != m.Primary {
			return 0, 0, false
		}
	}
	return minS, maxS, true
}

func (r *Replica) onNewView(m *wire.NewView, now types.Time) {
	if m.View < r.view || (m.View == r.view && !r.inViewChange) {
		return
	}
	minS, maxS, ok := r.validateNewView(m)
	if !ok {
		return
	}
	// Adopt the new-view checkpoint if it is ahead of ours.
	if minS > r.lastStable {
		for i := range m.ViewChanges {
			vc := &m.ViewChanges[i]
			if vc.LastStable == minS {
				votes := make(map[types.NodeID]wire.AgreeCheckpoint)
				for _, c := range vc.CkptProof {
					votes[c.Replica] = c
				}
				r.makeStable(minS, vc.CkptState, votes)
				break
			}
		}
	}
	r.view = m.View
	r.installNewView(m, minS, maxS, now)
}

// installNewView finalizes the transition for both the new primary and the
// backups: instances are re-created from the O set and backups re-prepare
// them.
func (r *Replica) installNewView(m *wire.NewView, minS, maxS types.SeqNum, now types.Time) {
	r.inViewChange = false
	observeSince(r.om.vcSeconds, r.vcBegan, now)
	r.vcBegan = 0
	r.om.view.Set(int64(r.view))
	r.span(now, obs.StageNewView, 0, "")
	r.lastNewView = m
	r.sentVC = nil
	if maxS > r.nextSeq {
		r.nextSeq = maxS
	}
	if r.lastStable > r.nextSeq {
		r.nextSeq = r.lastStable
	}
	for v := range r.vcs {
		if v <= r.view {
			delete(r.vcs, v)
		}
	}
	// Make the install durable before this replica's first message in the
	// new view (for the new primary maybeBuildNewView already logged it;
	// logView dedups). The NEW-VIEW message itself is logged too, so a
	// post-crash incarnation can still re-serve the proof that the view
	// advanced to peers stuck behind. The backups' re-prepares for the O
	// set are all logged under one sync and broadcast only afterwards. A
	// storage failure fail-stops the install like every other vote path.
	if !r.logView(r.view, false) || !r.logNewView(m) {
		return
	}
	isPrimary := r.isPrimary()
	var preps [][]byte
	for i := range m.PrePrepares {
		pp := m.PrePrepares[i]
		if pp.Seq <= r.lastExec || pp.Seq <= r.lastStable {
			continue
		}
		od := pp.OrderDigest()
		if voteOK, _ := r.mayVote(pp.View, pp.Seq, od); !voteOK {
			continue // already voted in an even newer view for this slot
		}
		r.acceptPrePrepare(&pp, od, now)
		if !isPrimary {
			att, err := r.cfg.ReplicaAuth.Attest(auth.KindPrepare, od, r.top.Agreement)
			if err != nil {
				continue
			}
			if !r.logVote(pp.View, pp.Seq, od, wire.VotePrepare) {
				continue
			}
			in := r.inst(pp.View, pp.Seq)
			in.prepares[r.cfg.ID] = vote{od: od, att: att}
			preps = append(preps, wire.Marshal(&wire.Prepare{View: pp.View, Seq: pp.Seq, OD: od, Replica: r.cfg.ID, Att: att}))
		}
	}
	if r.syncVotes() {
		for _, p := range preps {
			r.broadcast(p)
		}
	}
	// Give the new primary a fresh chance at the buffered client work —
	// but not at requests the new view already covers, which would be
	// double-ordered. "Covered" means executed locally or re-proposed in
	// the O set; lastOrdered alone is not evidence (an equivocating old
	// primary advances it with pre-prepares that never commit).
	covered := make(map[types.NodeID]types.Timestamp)
	for i := range m.PrePrepares {
		for j := range m.PrePrepares[i].Requests {
			req := &m.PrePrepares[i].Requests[j]
			if req.Timestamp > covered[req.Client] {
				covered[req.Client] = req.Timestamp
			}
		}
	}
	// Resubmit in client-ID order: the relay/enqueue order reaches the
	// wire (and the new primary's proposal order), so it must not vary
	// with map iteration across otherwise-identical replicas.
	cids := make([]types.NodeID, 0, len(r.clients))
	for id := range r.clients {
		cids = append(cids, id)
	}
	sort.Slice(cids, func(i, j int) bool { return cids[i] < cids[j] })
	for _, id := range cids {
		cs := r.clients[id]
		if cs.pending == nil {
			continue
		}
		if cs.pending.Timestamp <= cs.lastExecuted || cs.pending.Timestamp <= covered[id] {
			cs.pending = nil
			continue
		}
		cs.pendingSince = now
		if isPrimary {
			r.enqueue(cs.pending, now)
		} else {
			r.send(r.primaryID(), wire.Marshal(cs.pending))
		}
	}
	r.maybePropose(now)
	r.executeReady(now)
}

// tickViewChange retransmits campaign messages and escalates to the next
// view if the campaign stalls (doubling timeout, §3.1.2-style backoff).
func (r *Replica) tickViewChange(now types.Time) {
	if !r.inViewChange || r.sentVC == nil {
		return
	}
	if now >= r.vcDeadline {
		r.broadcast(wire.Marshal(r.sentVC))
		r.vcDeadline = now + r.cfg.ViewChangeResend
		r.vcAttempts++
		// If several resends went unanswered, assume the would-be primary
		// is also faulty and campaign for the next view.
		if r.vcAttempts >= 4 {
			r.vcAttempts = 0
			r.startViewChange(r.view+1, now)
		}
	}
}
