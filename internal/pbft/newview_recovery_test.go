package pbft

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/types"
)

// A primary (or backup) that installed a NEW-VIEW, crashed, and restarted
// must still be able to re-serve that NEW-VIEW to a lagging peer. Before
// the RecNewView WAL record, the retransmission cache lived only in memory:
// a restarted cluster would leave a straggler stuck in the old view until
// yet another view change, stalling it for a full campaign (or forever, if
// timers aligned badly). This test wipes every in-memory copy of the
// NEW-VIEW and checks the straggler is caught up purely from the WALs.
func TestRestartedReplicasReserveNewView(t *testing.T) {
	forEachCryptoMode(t, testRestartedReplicasReserveNewView)
}

func testRestartedReplicasReserveNewView(t *testing.T, crypto func(*Config)) {
	dir := recoveryDir(t, "reserve")
	c := durableCluster(t, 83, dir, func(cfg *Config) {
		cfg.BatchSize = 1
		cfg.CheckpointInterval = 4
		cfg.WindowSize = 16
		crypto(cfg)
	})

	if !c.pumpSequential(100, 3, "pre", types.Millisecond(10_000)) {
		t.Fatal("prefix never executed")
	}

	// The view-0 primary goes dark (network only — it keeps its view-0
	// state and never learns of the campaign). The survivors complete a
	// view change and execute one request in the new view.
	c.net.Crash(0)
	survive := c.request(100, "survive")
	deadline := c.net.Now() + types.Millisecond(20_000)
	for !c.allExecuted(4, 0)() {
		if c.net.Now() > deadline {
			t.Fatal("view change among the survivors never completed")
		}
		c.sendToAll(survive)
		c.net.RunUntil(c.allExecuted(4, 0), c.net.Now()+types.Millisecond(50))
	}
	view := c.replicas[1].View()
	if view == 0 {
		t.Fatal("view did not advance")
	}

	// Crash and restart every replica that installed the new view. After
	// this, the only copies of the NEW-VIEW certificate anywhere are the
	// RecNewView records in the three WALs.
	for _, id := range []types.NodeID{1, 2, 3} {
		c.crashReplica(id)
	}
	for _, id := range []types.NodeID{1, 2, 3} {
		r := c.restartReplica(t, id, dir)
		if r.View() != view || r.InViewChange() {
			t.Fatalf("replica %v recovered into view %d (inViewChange=%v), want settled view %d",
				id, r.View(), r.InViewChange(), view)
		}
		if r.lastNewView == nil || r.lastNewView.View != view {
			t.Fatalf("replica %v did not restore the view-%d NEW-VIEW from its WAL", id, view)
		}
	}

	// Revive the straggler. It still believes it leads view 0; the
	// restarted replicas must re-serve the recovered NEW-VIEW (via the
	// status or straggler view-change paths) and then feed it the missed
	// batches, without the cluster paying for another view change.
	c.net.Revive(0)
	post := c.request(101, "post")
	caughtUp := func() bool {
		r0 := c.replicas[0]
		return r0.View() == view && !r0.InViewChange() && c.allExecuted(5)()
	}
	deadline = c.net.Now() + types.Millisecond(30_000)
	for !caughtUp() {
		if c.net.Now() > deadline {
			r0 := c.replicas[0]
			t.Fatalf("straggler stuck: view=%d inViewChange=%v executed=%d, want view %d with 5 ops",
				r0.View(), r0.InViewChange(), len(c.apps[0].flatOps()), view)
		}
		c.sendToAll(post)
		c.net.RunUntil(caughtUp, c.net.Now()+types.Millisecond(50))
	}
	for id, r := range c.replicas {
		if got := r.View(); got != view {
			t.Fatalf("replica %v ended in view %d, want %d (catch-up must not cost another view change)", id, got, view)
		}
	}
	c.assertConsistentLogs()
}

// Group commit must actually absorb vote fsyncs: under delivery bursts, a
// handler that logs several votes (prepare, commit, commit-certificate)
// pays one Store.Sync at burst end instead of one per record. The saving
// is pinned through the obs counter the burst accounting feeds.
func TestGroupCommitSavesVoteFsyncs(t *testing.T) {
	reg := obs.NewRegistry()
	dir := recoveryDir(t, "fsyncs")
	c := durableCluster(t, 84, dir, func(cfg *Config) {
		cfg.BatchSize = 1
		cfg.Obs = reg
	})

	if !c.pumpSequential(100, 8, "op", types.Millisecond(20_000)) {
		t.Fatal("workload never executed")
	}

	var saved float64
	for _, s := range reg.Snapshot() {
		if s.Name == "saebft_pbft_vote_fsyncs_saved_total" {
			saved += s.Value
		}
	}
	if saved <= 0 {
		t.Fatalf("saebft_pbft_vote_fsyncs_saved_total = %v after 8 durable ops, want > 0 (group commit absorbed nothing)", saved)
	}
}
