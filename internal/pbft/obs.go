package pbft

import (
	"strconv"

	"repro/internal/obs"
	"repro/internal/types"
)

// metrics holds the replica's registered instruments. Every instrument is
// nil when the replica was built without a registry and every method
// no-ops on nil, so the instrumentation sites below stay unconditional.
// This package only ever writes to the observability plane — Inc, Add,
// Set, Observe, Record — never reads it; the simdeterminism analyzer
// rejects any read-side call, keeping metrics out of digests, encoders,
// and WAL records.
//
// Latencies are measured on the protocol clock (types.Time): virtual time
// under the simulator — so instrumented runs stay deterministic — and
// monotonic time under TCP.
type metrics struct {
	batches       *obs.Counter
	requests      *obs.Counter
	viewChanges   *obs.Counter
	checkpoints   *obs.Counter
	equivocations *obs.Counter
	fsyncsSaved   *obs.Counter

	batchSize  *obs.Histogram
	prepareLat *obs.Histogram // pre-prepare accepted -> prepared
	commitLat  *obs.Histogram // prepared -> committed
	executeLat *obs.Histogram // committed -> executed
	vcSeconds  *obs.Histogram // view abandoned -> new view installed
	ckptSecs   *obs.Histogram // checkpoint sync requested -> digest ready

	view       *obs.Gauge
	lastExec   *obs.Gauge
	lastStable *obs.Gauge
	queueDepth *obs.Gauge
}

func newPBFTMetrics(reg *obs.Registry, id types.NodeID) metrics {
	node := obs.L("node", strconv.Itoa(int(id)))
	phase := func(p string) *obs.Histogram {
		return reg.Histogram("saebft_pbft_phase_seconds",
			"agreement phase latency on the protocol clock, by phase",
			obs.LatencyBuckets, node, obs.L("phase", p))
	}
	return metrics{
		batches: reg.Counter("saebft_pbft_batches_total",
			"batches executed in total order", node),
		requests: reg.Counter("saebft_pbft_requests_total",
			"client requests executed inside ordered batches", node),
		viewChanges: reg.Counter("saebft_pbft_view_changes_total",
			"view-change campaigns started", node),
		checkpoints: reg.Counter("saebft_pbft_checkpoints_total",
			"local checkpoints completed", node),
		equivocations: reg.Counter("saebft_pbft_equivocations_total",
			"primary equivocation evidence observed (conflicting pre-prepares)", node),
		fsyncsSaved: reg.Counter("saebft_pbft_vote_fsyncs_saved_total",
			"vote fsyncs absorbed by a delivery burst's group commit", node),
		batchSize: reg.Histogram("saebft_pbft_batch_size",
			"requests per proposed batch", obs.CountBuckets, node),
		prepareLat: phase("prepare"),
		commitLat:  phase("commit"),
		executeLat: phase("execute"),
		vcSeconds: reg.Histogram("saebft_pbft_view_change_seconds",
			"view-change duration, campaign start to new-view install", obs.LatencyBuckets, node),
		ckptSecs: reg.Histogram("saebft_pbft_checkpoint_seconds",
			"checkpoint duration, sync start to digest completion", obs.LatencyBuckets, node),
		view: reg.Gauge("saebft_pbft_view",
			"current view number", node),
		lastExec: reg.Gauge("saebft_pbft_last_executed",
			"highest executed sequence number", node),
		lastStable: reg.Gauge("saebft_pbft_last_stable",
			"latest stable checkpoint sequence number", node),
		queueDepth: reg.Gauge("saebft_pbft_queue_depth",
			"requests queued at the primary awaiting proposal", node),
	}
}

// observeSince records now-from on h, skipping instances whose start stamp
// was lost (view migration recreates them with zero timestamps).
func observeSince(h *obs.Histogram, from, now types.Time) {
	if from != 0 && now >= from {
		h.Observe(obs.Seconds(int64(now - from)))
	}
}

// span records one lifecycle span on the trace ring (no-op without a
// tracer). Timestamps are the protocol clock's, so simulated traces are
// deterministic.
func (r *Replica) span(now types.Time, stage string, seq types.SeqNum, note string) {
	r.trace.Record(obs.Span{
		At:    int64(now),
		Node:  int(r.cfg.ID),
		Stage: stage,
		Seq:   uint64(seq),
		View:  uint64(r.view),
		Note:  note,
	})
}
