// Package pbft implements the Byzantine agreement substrate the paper builds
// on: a PBFT/BASE-style replicated state machine engine with request
// batching, the three-phase pre-prepare/prepare/commit protocol, stable
// checkpoints with garbage collection, view changes with transferable
// proofs, status-gossip catch-up, and oblivious nondeterminism agreement
// (§3.1.4, §3.2).
//
// The paper treats the BASE library as an opaque agreement module whose
// local "state machine" is a message queue (internal/mqueue); this package
// is that module, built from scratch. It can equally run an application
// state machine directly, which is how the traditional coupled
// agreement+execution baseline (Figure 1a) is reproduced for comparison.
//
// A Replica is a deterministic, single-threaded core: it is driven only by
// Receive and Tick, emits messages through the Sender it was built with, and
// never blocks or spawns goroutines. All timers are deadline fields checked
// in Tick.
package pbft

import (
	"fmt"
	"sort"

	"repro/internal/auth"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/types"
	"repro/internal/wire"
)

// App consumes the total order the agreement cluster produces. In the
// paper's architecture the App is the replicated message queue; in the
// coupled baseline it executes requests directly.
type App interface {
	// Execute delivers the batch bound to sequence number n. It is called
	// exactly once per n, in order.
	Execute(v types.View, n types.SeqNum, nd types.NonDet, reqs []wire.Request, now types.Time)

	// ResendReply handles a client retransmission of an already-ordered
	// request (the paper's retryHint). It reports false if the app has no
	// cached reply and no pending work for the request, in which case the
	// engine re-proposes the request under a fresh sequence number.
	ResendReply(req *wire.Request, now types.Time) bool

	// Sync asks the app to quiesce into a checkpointable state for
	// sequence n (the paper's msgQueue.sync()). The app invokes done —
	// possibly later, after its pipeline drains — with a digest and
	// serialized copy of its state. The engine does not execute past n
	// until done fires.
	Sync(n types.SeqNum, done func(digest types.Digest, payload []byte))

	// Restore replaces the app state with a checkpoint produced by Sync
	// on another replica (used during state transfer).
	Restore(n types.SeqNum, digest types.Digest, payload []byte) error

	// Busy reports whether the app wants backpressure (pipeline full).
	// While busy, the engine neither proposes nor executes new batches.
	Busy(now types.Time) bool
}

// Config parameterizes a Replica.
type Config struct {
	ID       types.NodeID
	Topology *types.Topology

	// ReplicaAuth signs/verifies the three-phase agreement votes
	// (pre-prepare, prepare, commit). These certificates never leave the
	// agreement cluster's destination set, so MAC authenticator vectors —
	// the paper's fast path — are as safe as signatures here, and a MAC
	// scheme may be wired in (core's MACAgreement mode does).
	ReplicaAuth auth.Scheme
	// TransferAuth signs/verifies the certificates that are shown to
	// parties beyond their original destinations: view changes, new views,
	// and checkpoint proofs of stability. The type requires a transferable
	// (signature) scheme, so MAC vectors cannot be wired here even by
	// mistake. Nil defaults to ReplicaAuth when — and only when —
	// ReplicaAuth is itself transferable.
	TransferAuth auth.TransferScheme
	// ClientAuth verifies client request certificates (MAC or signature).
	ClientAuth auth.Scheme
	// Verify, when non-nil, fans batch attestation checks (client request
	// certificates in pre-prepares, commit-proof vote sets) out across a
	// bounded worker pool. Results join before any handler proceeds, so
	// protocol state stays a pure function of inputs. Nil verifies inline.
	Verify *auth.VerifyPool

	BatchSize          int        // max requests per batch (paper's bundle size)
	BatchBytes         int        // max request-body bytes per batch (multi-op requests can be large)
	BatchWait          types.Time // propose a partial batch after this delay
	CheckpointInterval types.SeqNum
	WindowSize         types.SeqNum // high-watermark distance (must be > CheckpointInterval)
	RequestTimeout     types.Time   // backup's suspicion timeout triggering view change
	ViewChangeResend   types.Time   // retransmission interval for view-change messages
	StatusInterval     types.Time   // progress-gossip period
	MaxTimeSkew        types.Timestamp

	// OnCommitted, if set, is invoked whenever a batch commits locally
	// (before execution). Tests use it to observe protocol progress.
	OnCommitted func(v types.View, n types.SeqNum)

	// Store, when non-nil, makes the replica durable: committed batches
	// are appended to its WAL as transferable commit certificates (and
	// synced before execution externalizes them), stable checkpoints are
	// persisted with their 2f+1 votes, and Recover restores both after a
	// restart. Nil keeps the seed's in-memory behavior.
	//
	// Voting state is durable too (unless VolatileVotes): every
	// pre-prepare proposal/acceptance, sent prepare, sent commit, prepared
	// certificate, and view transition is appended and synced before the
	// corresponding message leaves the node. A replica that crashes
	// mid-agreement therefore restarts remembering every vote it may have
	// sent: it refuses to send a conflicting vote for any slot it already
	// voted on (so a simultaneously-Byzantine primary cannot induce it to
	// equivocate), recovers into the view it was in — mid-campaign
	// included — and its prepared evidence still feeds view changes. A
	// recovered replica rejoins through the ordinary catch-up protocol
	// without counting against f.
	Store storage.Store

	// Obs, when non-nil, receives this replica's metrics (see
	// internal/obs). The replica only writes instruments — the
	// simdeterminism analyzer forbids read-side calls — so observability
	// never feeds back into protocol state. Trace, when non-nil, receives
	// lifecycle spans stamped with the protocol clock.
	Obs   *obs.Registry
	Trace *obs.Tracer

	// VolatileVotes reverts to committed-state-only durability: per-slot
	// votes, prepared certificates, and view transitions are not logged
	// (saving one WAL sync per vote message). A replica recovering under
	// a simultaneously-Byzantine primary must then be counted against f
	// until it has rejoined; full-cluster restarts remain safe. Benchmark
	// use. No effect without Store.
	VolatileVotes bool
}

func (c *Config) fillDefaults() {
	if c.BatchSize == 0 {
		c.BatchSize = 16
	}
	if c.BatchBytes == 0 {
		c.BatchBytes = 256 << 10
	}
	if c.BatchWait == 0 {
		c.BatchWait = types.Millisecond(2)
	}
	if c.CheckpointInterval == 0 {
		c.CheckpointInterval = 64
	}
	if c.WindowSize == 0 {
		c.WindowSize = 2 * c.CheckpointInterval
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = types.Millisecond(500)
	}
	if c.ViewChangeResend == 0 {
		c.ViewChangeResend = types.Millisecond(300)
	}
	if c.StatusInterval == 0 {
		c.StatusInterval = types.Millisecond(50)
	}
	if c.MaxTimeSkew == 0 {
		c.MaxTimeSkew = types.Timestamp(10_000_000_000) // 10s in ns
	}
}

// vote is one replica's prepare or commit attestation together with the
// order digest it covers; votes can arrive before the pre-prepare, so the
// digest must be remembered and matched later.
type vote struct {
	od  types.Digest
	att auth.Attestation
}

// instance tracks one sequence number's progress through the three phases.
type instance struct {
	view      types.View
	seq       types.SeqNum
	od        types.Digest
	pp        *wire.PrePrepare
	prepares  map[types.NodeID]vote // backups' prepare votes
	commits   map[types.NodeID]vote
	prepared  bool
	committed bool
	executed  bool

	// Phase timestamps (protocol clock) for latency histograms; zero when
	// the instance was recreated across a view migration.
	acceptedAt  types.Time
	preparedAt  types.Time
	committedAt types.Time
}

// commitAtts collects the attestations that vouch for this instance's
// ordered digest in replica-ID order, so a commit certificate serializes
// to the same bytes on every replica that holds the same votes.
func (in *instance) commitAtts() []auth.Attestation {
	ids := make([]types.NodeID, 0, len(in.commits))
	for id, v := range in.commits {
		if v.od == in.od {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	atts := make([]auth.Attestation, 0, len(ids))
	for _, id := range ids {
		atts = append(atts, in.commits[id].att)
	}
	return atts
}

// savedCheckpoint is a locally-produced checkpoint kept for serving peers.
type savedCheckpoint struct {
	digest  types.Digest
	payload []byte
}

// votedSlot remembers the strongest vote this replica has sent for one
// sequence number across all views — and, via the WAL, across crashes. It
// is the re-vote guard: the replica never sends a vote for the same slot
// and view with a different digest, and never votes in an older view.
type votedSlot struct {
	view  types.View
	od    types.Digest
	phase wire.VotePhase
}

// clientState tracks per-client dedup and retry bookkeeping.
//
// lastOrdered is the fast dedup gate: it advances as soon as a pre-prepare
// covering the request is accepted (even in a view that later fails — over-
// advancing only routes duplicates through the retryHint path, which falls
// back to re-proposal). lastExecuted advances only when the request
// executes; being a deterministic function of the executed log, it is what
// checkpoints carry and state transfer restores.
type clientState struct {
	lastOrdered  types.Timestamp
	lastExecuted types.Timestamp
	pending      *wire.Request // buffered request not yet ordered
	pendingSince types.Time    // for the backup suspicion timer
}

// outMsg is one transmission deferred until the current delivery burst's
// group commit (see beginBurst/endBurst).
type outMsg struct {
	to    types.NodeID
	bcast bool
	data  []byte
}

// Replica is one agreement-cluster member.
type Replica struct {
	cfg  Config
	xmit transport.Sender // raw transmitter; all sends funnel through send/broadcast
	app  App
	top  *types.Topology
	f    int
	n    int
	idx  int // own index in the agreement cluster

	// certAuth is ReplicaAuth with this replica's own attestations trusted
	// unconditionally. Relayed certificates (commit proofs, prepared
	// evidence, re-proposed pre-prepares in a NEW-VIEW) legitimately carry
	// the validator's own vote, and MAC vectors hold no self slot — see
	// auth.SelfTrust. Live vote handlers keep the raw scheme.
	certAuth auth.Scheme

	view         types.View
	inViewChange bool
	nextSeq      types.SeqNum // primary only: next sequence number to assign
	lastExec     types.SeqNum
	lastStable   types.SeqNum
	stableProof  []wire.AgreeCheckpoint

	insts      map[types.SeqNum]*instance
	clients    map[types.NodeID]*clientState
	queue      []*wire.Request // primary: requests awaiting proposal
	queued     map[types.Digest]bool
	queueBytes int             // sum of queued request-body sizes
	ndClock    types.Timestamp // last nondeterministic timestamp accepted/proposed

	// checkpointing
	syncing       bool
	syncSeq       types.SeqNum
	ckptVotes     map[types.SeqNum]map[types.NodeID]wire.AgreeCheckpoint
	ckptLocal     map[types.SeqNum]savedCheckpoint
	fetchingSeq   types.SeqNum
	fetchDeadline types.Time
	executing     bool       // reentrancy guard for executeReady
	now           types.Time // last observed time, for async callbacks

	// durability
	recovering bool  // suppresses re-logging while replaying the WAL
	storeErr   error // first storage failure; halts execution (fail-stop)
	voted      map[types.SeqNum]votedSlot
	loggedView types.View // last view transition written to the WAL
	loggedVC   bool       // ... and whether it was a campaign start

	// group commit: while a delivery burst is open, syncVotes defers the
	// real fsync and sends queue in the outbox; endBurst performs one sync
	// for the whole burst before releasing any queued transmission, so the
	// durability-before-externalization contract holds with fewer fsyncs.
	burstDepth    int
	outbox        []outMsg
	walDirty      bool // appended records not yet covered by a Store.Sync
	deferredSyncs int  // syncVotes calls absorbed by the burst's group commit

	// view change state (viewchange.go)
	vcs           map[types.View]map[types.NodeID]*wire.ViewChange
	sentVC        *wire.ViewChange
	vcDeadline    types.Time
	vcAttempts    int
	lastNewView   *wire.NewView
	batchDeadline types.Time

	statusDeadline types.Time

	// observability (write-only from this package; see obs.go)
	om        metrics
	trace     *obs.Tracer
	ckptBegan types.Time // when the in-flight checkpoint sync started
	vcBegan   types.Time // when the current view-change campaign started

	// Metrics counts externally observable progress for tests/benches.
	Metrics Metrics
}

// Metrics aggregates counters exposed for tests and benchmarks.
type Metrics struct {
	Batches     uint64
	Requests    uint64
	ViewChanges uint64
	Checkpoints uint64
}

// New constructs a replica. send transmits to agreement-cluster peers and is
// also used to answer catch-up requests; app receives the total order.
func New(cfg Config, app App, send transport.Sender) (*Replica, error) {
	cfg.fillDefaults()
	top := cfg.Topology
	if top == nil {
		return nil, fmt.Errorf("pbft: nil topology")
	}
	role, idx, ok := top.RoleOf(cfg.ID)
	if !ok || role != types.RoleAgreement {
		return nil, fmt.Errorf("pbft: %v is not an agreement replica", cfg.ID)
	}
	if cfg.WindowSize <= cfg.CheckpointInterval {
		return nil, fmt.Errorf("pbft: window %d must exceed checkpoint interval %d", cfg.WindowSize, cfg.CheckpointInterval)
	}
	if cfg.TransferAuth == nil {
		ts, ok := cfg.ReplicaAuth.(auth.TransferScheme)
		if !ok {
			return nil, fmt.Errorf("pbft: Config.TransferAuth is required when ReplicaAuth is not transferable (MACs cannot back view-change or checkpoint certificates)")
		}
		cfg.TransferAuth = ts
	}
	r := &Replica{
		cfg:       cfg,
		xmit:      send,
		app:       app,
		certAuth:  auth.SelfTrust(cfg.ReplicaAuth, cfg.ID),
		top:       top,
		f:         top.F(),
		n:         len(top.Agreement),
		idx:       idx,
		insts:     make(map[types.SeqNum]*instance),
		clients:   make(map[types.NodeID]*clientState),
		voted:     make(map[types.SeqNum]votedSlot),
		queued:    make(map[types.Digest]bool),
		ckptVotes: make(map[types.SeqNum]map[types.NodeID]wire.AgreeCheckpoint),
		ckptLocal: make(map[types.SeqNum]savedCheckpoint),
		vcs:       make(map[types.View]map[types.NodeID]*wire.ViewChange),
		om:        newPBFTMetrics(cfg.Obs, cfg.ID),
		trace:     cfg.Trace,
	}
	return r, nil
}

// View returns the current view.
func (r *Replica) View() types.View { return r.view }

// LastExecuted returns the highest executed sequence number.
func (r *Replica) LastExecuted() types.SeqNum { return r.lastExec }

// LastStable returns the latest stable checkpoint sequence number.
func (r *Replica) LastStable() types.SeqNum { return r.lastStable }

// InViewChange reports whether the replica is between views.
func (r *Replica) InViewChange() bool { return r.inViewChange }

// StorageErr reports the first storage failure, if any. A replica whose
// store fails stops executing (fail-stop) rather than acting on undurable
// commits; the cluster masks it like any other fault.
func (r *Replica) StorageErr() error { return r.storeErr }

// isPrimary reports whether this replica leads the current view.
func (r *Replica) isPrimary() bool { return r.top.PrimaryIndex(r.view) == r.idx }

func (r *Replica) primaryID() types.NodeID { return r.top.Primary(r.view) }

func (r *Replica) inWindow(n types.SeqNum) bool {
	return n > r.lastStable && n <= r.lastStable+r.cfg.WindowSize
}

// send transmits to one peer, or queues the transmission until the burst's
// group commit when a delivery burst is open.
func (r *Replica) send(to types.NodeID, data []byte) {
	if r.burstDepth > 0 {
		r.outbox = append(r.outbox, outMsg{to: to, data: data})
		return
	}
	r.xmit(to, data)
}

// broadcast sends to every other agreement replica (or queues the fan-out,
// as one outbox entry, until the burst's group commit).
func (r *Replica) broadcast(data []byte) {
	if r.burstDepth > 0 {
		r.outbox = append(r.outbox, outMsg{bcast: true, data: data})
		return
	}
	for _, id := range r.top.Agreement {
		if id != r.cfg.ID {
			r.xmit(id, data)
		}
	}
}

// beginBurst opens a delivery burst: until the matching endBurst, syncVotes
// calls defer to one group-commit fsync and sends queue in the outbox.
func (r *Replica) beginBurst() { r.burstDepth++ }

// endBurst closes a delivery burst. When the outermost burst closes, any
// deferred vote/view records are made durable with a single Store.Sync and
// only then are the queued transmissions released, in FIFO order. If the
// sync fails the replica fail-stops and every queued send is dropped — no
// message externalizing undurable state ever leaves the node.
func (r *Replica) endBurst() {
	r.burstDepth--
	if r.burstDepth > 0 {
		return
	}
	saved := r.deferredSyncs
	r.deferredSyncs = 0
	if r.walDirty {
		saved-- // the group commit below is a real sync
		if !r.syncNow() {
			r.outbox = r.outbox[:0]
			r.om.fsyncsSaved.Add(uint64(max(saved, 0)))
			return
		}
	}
	if saved > 0 {
		r.om.fsyncsSaved.Add(uint64(saved))
	}
	out := r.outbox
	r.outbox = r.outbox[:0]
	for i := range out {
		m := &out[i]
		if m.bcast {
			for _, id := range r.top.Agreement {
				if id != r.cfg.ID {
					r.xmit(id, m.data)
				}
			}
		} else {
			r.xmit(m.to, m.data)
		}
		m.data = nil // release the payload; the backing array is reused
	}
}

func (r *Replica) inst(v types.View, n types.SeqNum) *instance {
	in := r.insts[n]
	if in == nil || in.view != v {
		in = &instance{
			view:     v,
			seq:      n,
			prepares: make(map[types.NodeID]vote),
			commits:  make(map[types.NodeID]vote),
		}
		r.insts[n] = in
	}
	return in
}

// --- durable voting state -----------------------------------------------------

// voteWAL reports whether voting state must be written through the WAL.
func (r *Replica) voteWAL() bool {
	return r.cfg.Store != nil && !r.recovering && !r.cfg.VolatileVotes
}

// mayVote reports whether sending a vote for od at (v, n) is consistent
// with every vote this replica has ever sent for n — including votes from
// pre-crash incarnations restored from the WAL. conflict reports a
// same-view digest mismatch, which is proof the view's primary equivocated
// (possibly across this replica's crash).
func (r *Replica) mayVote(v types.View, n types.SeqNum, od types.Digest) (ok, conflict bool) {
	prev, voted := r.voted[n]
	if !voted {
		return true, false
	}
	if v < prev.view {
		return false, false // never regress to voting in an older view
	}
	if v == prev.view && prev.od != od {
		return false, true
	}
	return true, false
}

// logVote records a vote in the in-memory table and, when durable voting is
// on, appends it to the WAL. It reports whether the caller may proceed to
// externalize the vote; a storage failure halts the replica (fail-stop)
// rather than letting it send promises it cannot remember.
func (r *Replica) logVote(v types.View, n types.SeqNum, od types.Digest, phase wire.VotePhase) bool {
	prev, ok := r.voted[n]
	if !ok || v > prev.view || (v == prev.view && phase > prev.phase) {
		r.voted[n] = votedSlot{view: v, od: od, phase: phase}
	}
	if !r.voteWAL() {
		return true
	}
	if r.storeErr != nil {
		return false
	}
	rec := wire.EncodeVoteRecord(wire.VoteRecord{View: v, Seq: n, OD: od, Phase: phase})
	if err := r.cfg.Store.Append(storage.RecVote, n, rec); err != nil {
		r.storeErr = err
		return false
	}
	r.walDirty = true
	return true
}

// logPrepared appends the slot's prepared certificate so a post-crash
// VIEW-CHANGE still carries the evidence that the batch prepared here.
func (r *Replica) logPrepared(in *instance) bool {
	if !r.voteWAL() {
		return true
	}
	if r.storeErr != nil {
		return false
	}
	ent := r.preparedEntry(in)
	if ent == nil {
		return false // cannot happen for a slot that just prepared
	}
	if err := r.cfg.Store.Append(storage.RecPrepared, in.seq, wire.EncodePreparedRecord(ent)); err != nil {
		r.storeErr = err
		return false
	}
	r.walDirty = true
	return true
}

// logView appends a view transition. Transitions are logged with
// seq = stable watermark + 1 so the replay cursor (seq > stable) keeps
// them; persistStable re-logs the current state above each new stable
// checkpoint before pruning can discard the old record.
func (r *Replica) logView(v types.View, inChange bool) bool {
	if !r.voteWAL() {
		return true
	}
	if r.storeErr != nil {
		return false
	}
	if v == r.loggedView && inChange == r.loggedVC {
		return true // already durable; avoid duplicate records
	}
	rec := wire.EncodeViewRecord(wire.ViewRecord{View: v, InChange: inChange})
	if err := r.cfg.Store.Append(storage.RecView, r.lastStable+1, rec); err != nil {
		r.storeErr = err
		return false
	}
	r.walDirty = true
	r.loggedView, r.loggedVC = v, inChange
	return true
}

// logNewView appends the installed NEW-VIEW message so a restarted replica
// keeps re-serving it to lagging peers: without the record, a primary that
// crashed after installing view v could never retransmit NEW-VIEW(v), and a
// straggler stuck in an older view would stall until yet another view
// change. Like view records it is logged at stable watermark + 1 so the
// replay cursor keeps it, and persistStable re-logs it above each new
// watermark before pruning. Nil or stale messages are a no-op.
func (r *Replica) logNewView(m *wire.NewView) bool {
	if m == nil || m.View != r.view || !r.voteWAL() {
		return true
	}
	if r.storeErr != nil {
		return false
	}
	if err := r.cfg.Store.Append(storage.RecNewView, r.lastStable+1, wire.Marshal(m)); err != nil {
		r.storeErr = err
		return false
	}
	r.walDirty = true
	return true
}

// syncVotes makes pending vote/view records durable before the message
// they cover is externalized. One call covers every append since the last
// sync, so a handler that logs several votes pays one sync. Inside a
// delivery burst the fsync is deferred: the matching sends are queued in
// the outbox too, and endBurst's single group commit syncs before any of
// them leave the node, so deferring never weakens the durability contract.
func (r *Replica) syncVotes() bool {
	if !r.voteWAL() {
		return true
	}
	if r.storeErr != nil {
		return false
	}
	if r.burstDepth > 0 {
		if r.walDirty {
			r.deferredSyncs++
		}
		return true
	}
	return r.syncNow()
}

// syncNow performs the real fsync, unconditionally.
func (r *Replica) syncNow() bool {
	if err := r.cfg.Store.Sync(); err != nil {
		r.storeErr = err
		return false
	}
	r.walDirty = false
	return true
}

// preparedEntry assembles the transferable prepared certificate for an
// instance: its pre-prepare evidence plus 2f matching backup prepares
// (deterministically the lowest replica ids). Nil if the instance does not
// hold enough evidence.
func (r *Replica) preparedEntry(in *instance) *wire.PreparedEntry {
	if in.pp == nil {
		return nil
	}
	primary := r.top.Primary(in.view)
	ids := make([]types.NodeID, 0, len(in.prepares))
	for id, v := range in.prepares {
		if id != primary && v.od == in.od {
			ids = append(ids, id)
		}
	}
	if len(ids) < 2*r.f {
		return nil
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	prepares := make([]auth.Attestation, 0, 2*r.f)
	for _, id := range ids[:2*r.f] {
		prepares = append(prepares, in.prepares[id].att)
	}
	return &wire.PreparedEntry{
		View:       in.view,
		Seq:        in.seq,
		ND:         in.pp.ND,
		Requests:   in.pp.Requests,
		PrimaryAtt: in.pp.Att,
		Prepares:   prepares,
	}
}

// Deliver implements transport.Node.
func (r *Replica) Deliver(from types.NodeID, data []byte, now types.Time) {
	msg, err := wire.Unmarshal(data)
	if err != nil {
		return
	}
	r.Receive(from, msg, now)
}

// Receive dispatches one decoded message. Each delivery is one burst: every
// vote the handler logs rides a single group-commit fsync, performed before
// any message the handler produced is released to the network.
func (r *Replica) Receive(from types.NodeID, msg wire.Message, now types.Time) {
	if now > r.now {
		r.now = now
	}
	r.beginBurst()
	defer r.endBurst()
	switch m := msg.(type) {
	case *wire.Request:
		r.onRequest(m, now)
	case *wire.PrePrepare:
		r.onPrePrepare(m, now)
	case *wire.Prepare:
		r.onPrepare(m, now)
	case *wire.Commit:
		r.onCommit(m, now)
	case *wire.AgreeCheckpoint:
		r.onCheckpoint(m, now)
	case *wire.ViewChange:
		r.onViewChange(m, now)
	case *wire.NewView:
		r.onNewView(m, now)
	case *wire.Status:
		r.onStatus(m, now)
	case *wire.CommitProof:
		r.onCommitProof(m, now)
	case *wire.CheckpointFetch:
		r.onCheckpointFetch(m, from, now)
	case *wire.CheckpointData:
		r.onCheckpointData(m, now)
	case *wire.ExecReply, *wire.ReplyCert:
		// Reply traffic belongs to the message queue (core wires it
		// there); the engine ignores it.
	}
}

// --- client requests --------------------------------------------------------

func (r *Replica) client(id types.NodeID) *clientState {
	cs := r.clients[id]
	if cs == nil {
		cs = &clientState{}
		r.clients[id] = cs
	}
	return cs
}

func (r *Replica) onRequest(m *wire.Request, now types.Time) {
	if role, _, ok := r.top.RoleOf(m.Client); !ok || role != types.RoleClient {
		return
	}
	if err := r.cfg.ClientAuth.Verify(auth.KindRequest, m.Digest(), m.Att); err != nil {
		return
	}
	cs := r.client(m.Client)
	if m.Timestamp <= cs.lastOrdered {
		// Already ordered: hand to the app's retry path; if the app can
		// neither answer nor retry it, re-propose under a new sequence
		// number (§3.2.1 retryHint).
		if !r.app.ResendReply(m, now) {
			r.enqueue(m, now)
			r.maybePropose(now)
		}
		return
	}
	r.enqueue(m, now)
	r.maybePropose(now)
}

func (r *Replica) enqueue(m *wire.Request, now types.Time) {
	cs := r.client(m.Client)
	if cs.pending == nil || m.Timestamp > cs.pending.Timestamp {
		cs.pending = m
		cs.pendingSince = now
	}
	if r.isPrimary() {
		d := m.Digest()
		if !r.queued[d] {
			r.queued[d] = true
			r.queue = append(r.queue, m)
			r.queueBytes += len(m.Op)
			if r.batchDeadline == 0 {
				r.batchDeadline = now + r.cfg.BatchWait
			}
			r.om.queueDepth.Set(int64(len(r.queue)))
			r.span(now, obs.StageSubmit, 0, fmt.Sprintf("client=%d ts=%d", m.Client, m.Timestamp))
		}
		return
	}
	// Backup: relay to the primary and let the suspicion timer run; if
	// the primary never orders it, a view change follows.
	r.send(r.primaryID(), wire.Marshal(m))
}

// maybePropose drains the request queue into pre-prepares while capacity
// allows.
func (r *Replica) maybePropose(now types.Time) {
	if !r.isPrimary() || r.inViewChange {
		return
	}
	for len(r.queue) > 0 {
		if r.app.Busy(now) || r.syncing {
			return
		}
		next := r.nextSeq + 1
		if !r.inWindow(next) {
			return
		}
		full := len(r.queue) >= r.cfg.BatchSize || r.queueBytes >= r.cfg.BatchBytes
		waited := r.batchDeadline != 0 && now >= r.batchDeadline
		if !full && !waited {
			return
		}
		// Cut the batch at BatchSize requests or BatchBytes of bodies,
		// whichever comes first — multi-op requests from batching clients
		// can be large, and an unbounded pre-prepare would stall the
		// three-phase exchange behind one giant proposal. A single
		// oversized request still ships alone.
		k, kbytes := 0, 0
		for k < len(r.queue) && k < r.cfg.BatchSize {
			sz := len(r.queue[k].Op)
			if k > 0 && kbytes+sz > r.cfg.BatchBytes {
				break
			}
			kbytes += sz
			k++
		}
		batch := make([]wire.Request, 0, k)
		for _, q := range r.queue[:k] {
			batch = append(batch, *q)
			delete(r.queued, q.Digest())
		}
		r.queue = append(r.queue[:0], r.queue[k:]...)
		r.queueBytes -= kbytes
		r.om.queueDepth.Set(int64(len(r.queue)))
		if len(r.queue) == 0 {
			r.batchDeadline = 0
		} else {
			r.batchDeadline = now + r.cfg.BatchWait
		}
		r.nextSeq = next
		r.propose(next, batch, now)
	}
}

// propose issues the pre-prepare for a batch at sequence n.
func (r *Replica) propose(n types.SeqNum, batch []wire.Request, now types.Time) {
	// Oblivious nondeterminism (§3.1.4): monotone primary-proposed time
	// and recomputable pseudo-random bits.
	t := types.Timestamp(now)
	if t <= r.ndClock {
		t = r.ndClock + 1
	}
	nd := types.NonDet{Time: t, Rand: types.ComputeNonDetRand(n, t)}
	r.om.batchSize.Observe(float64(len(batch)))
	r.span(now, obs.StageBatchCut, n, fmt.Sprintf("reqs=%d", len(batch)))
	pp := &wire.PrePrepare{View: r.view, Seq: n, ND: nd, Requests: batch, Primary: r.cfg.ID}
	od := pp.OrderDigest()
	att, err := r.cfg.ReplicaAuth.Attest(auth.KindPrePrepare, od, r.top.Agreement)
	if err != nil {
		return
	}
	pp.Att = att
	// The proposal is the primary's vote for this slot: make it durable
	// before any backup can see it, so a recovered primary never proposes
	// a different batch at a sequence number it already used.
	if !r.logVote(r.view, n, od, wire.VotePrePrepare) || !r.syncVotes() {
		return
	}
	r.acceptPrePrepare(pp, od, now)
	r.broadcast(wire.Marshal(pp))
}

// --- three-phase protocol -----------------------------------------------------

// validatePrePrepare checks everything a backup must verify before accepting
// a proposal, including the oblivious-nondeterminism sanity checks.
func (r *Replica) validatePrePrepare(m *wire.PrePrepare, now types.Time) (types.Digest, bool) {
	if m.View != r.view || r.inViewChange {
		return types.ZeroDigest, false
	}
	if m.Primary != r.primaryID() || !r.inWindow(m.Seq) {
		return types.ZeroDigest, false
	}
	od := m.OrderDigest()
	if r.cfg.ReplicaAuth.Verify(auth.KindPrePrepare, od, m.Att) != nil || m.Att.Node != m.Primary {
		return types.ZeroDigest, false
	}
	// Nondeterminism sanity checks: Rand must be the canonical PRF output;
	// Time must be monotone and within skew of the local clock. A null
	// batch (view-change filler) uses Time 0 and is exempt from the clock
	// checks.
	if m.ND.Rand != types.ComputeNonDetRand(m.Seq, m.ND.Time) {
		return types.ZeroDigest, false
	}
	if len(m.Requests) > 0 {
		local := types.Timestamp(now)
		if m.ND.Time+r.cfg.MaxTimeSkew < local || m.ND.Time > local+r.cfg.MaxTimeSkew {
			return types.ZeroDigest, false
		}
	}
	// Request certificates must be valid: the agreement cluster only
	// orders authentic client requests (§3.4 safety (a)). Role checks stay
	// inline; the certificate checks — the expensive part of a full batch —
	// fan out across the verify pool and join before the verdict, so the
	// handler remains a pure function of its inputs.
	for i := range m.Requests {
		if role, _, ok := r.top.RoleOf(m.Requests[i].Client); !ok || role != types.RoleClient {
			return types.ZeroDigest, false
		}
	}
	err := r.cfg.Verify.Run(len(m.Requests), func(i int) error {
		req := &m.Requests[i]
		return r.cfg.ClientAuth.Verify(auth.KindRequest, req.Digest(), req.Att)
	})
	if err != nil {
		return types.ZeroDigest, false
	}
	return od, true
}

func (r *Replica) onPrePrepare(m *wire.PrePrepare, now types.Time) {
	od, ok := r.validatePrePrepare(m, now)
	if !ok {
		return
	}
	in := r.inst(m.View, m.Seq)
	if in.pp != nil {
		if in.od != od {
			// Equivocating primary: demand a view change.
			r.om.equivocations.Inc()
			r.startViewChange(r.view+1, now)
		}
		return
	}
	// Re-vote guard: a proposal that contradicts a vote this replica sent
	// for the slot — in this incarnation or, via the WAL, before a crash —
	// is refused. A same-view digest conflict is equivocation evidence
	// even when the earlier pre-prepare itself died with the old process.
	if voteOK, conflict := r.mayVote(m.View, m.Seq, od); !voteOK {
		if conflict {
			r.om.equivocations.Inc()
			r.startViewChange(r.view+1, now)
		}
		return
	}
	r.acceptPrePrepare(m, od, now)
	if !r.isPrimary() {
		prep := &wire.Prepare{View: m.View, Seq: m.Seq, OD: od, Replica: r.cfg.ID}
		att, err := r.cfg.ReplicaAuth.Attest(auth.KindPrepare, od, r.top.Agreement)
		if err != nil {
			return
		}
		prep.Att = att
		// The prepare must be durable before it is sent: once a backup's
		// vote is on the wire it can never be retracted, crash or not.
		if !r.logVote(m.View, m.Seq, od, wire.VotePrepare) || !r.syncVotes() {
			return
		}
		in.prepares[r.cfg.ID] = vote{od: od, att: att}
		r.broadcast(wire.Marshal(prep))
		r.checkPrepared(in, now)
	}
}

// acceptPrePrepare records a valid proposal locally.
func (r *Replica) acceptPrePrepare(pp *wire.PrePrepare, od types.Digest, now types.Time) {
	in := r.inst(pp.View, pp.Seq)
	in.pp = pp
	in.od = od
	in.acceptedAt = now
	r.span(now, obs.StagePrePrepare, pp.Seq, "")
	if pp.ND.Time > r.ndClock {
		r.ndClock = pp.ND.Time
	}
	// Advance the ordering-time dedup gate. The suspicion timer
	// (cs.pending) deliberately keeps running until the request executes:
	// clearing it here would let an equivocating primary pacify backups
	// with pre-prepares that can never commit.
	for i := range pp.Requests {
		req := &pp.Requests[i]
		cs := r.client(req.Client)
		if req.Timestamp > cs.lastOrdered {
			cs.lastOrdered = req.Timestamp
		}
	}
	r.checkPrepared(in, now)
}

func (r *Replica) onPrepare(m *wire.Prepare, now types.Time) {
	if m.View != r.view || r.inViewChange || !r.inWindow(m.Seq) {
		return
	}
	if role, _, ok := r.top.RoleOf(m.Replica); !ok || role != types.RoleAgreement {
		return
	}
	if m.Replica == r.top.Primary(m.View) || m.Replica != m.Att.Node {
		return // the primary never sends prepares
	}
	if r.cfg.ReplicaAuth.Verify(auth.KindPrepare, m.OD, m.Att) != nil {
		return
	}
	in := r.inst(m.View, m.Seq)
	in.prepares[m.Replica] = vote{od: m.OD, att: m.Att}
	r.checkPrepared(in, now)
}

// checkPrepared advances an instance to the prepared state once it holds the
// pre-prepare and 2f matching prepares from distinct backups, then emits the
// commit.
func (r *Replica) checkPrepared(in *instance, now types.Time) {
	if in.prepared || in.pp == nil {
		return
	}
	need := 2 * r.f
	count := 0
	for id, v := range in.prepares {
		if id != r.top.Primary(in.view) && v.od == in.od {
			count++
		}
	}
	if count < need {
		return
	}
	if voteOK, _ := r.mayVote(in.view, in.seq, in.od); !voteOK {
		return // stale instance; a stronger vote for this slot exists
	}
	att, err := r.cfg.ReplicaAuth.Attest(auth.KindCommit, in.od, r.top.Agreement)
	if err != nil {
		return
	}
	// Durability before the commit claim is externalized: the prepared
	// certificate (so a post-crash view change still carries the
	// evidence) and the commit vote itself, under one sync.
	if !r.logPrepared(in) || !r.logVote(in.view, in.seq, in.od, wire.VoteCommit) || !r.syncVotes() {
		return
	}
	in.prepared = true
	in.preparedAt = now
	observeSince(r.om.prepareLat, in.acceptedAt, now)
	r.span(now, obs.StagePrepared, in.seq, "")
	in.commits[r.cfg.ID] = vote{od: in.od, att: att}
	cm := &wire.Commit{View: in.view, Seq: in.seq, OD: in.od, Replica: r.cfg.ID, Att: att}
	r.broadcast(wire.Marshal(cm))
	r.checkCommitted(in, now)
}

func (r *Replica) onCommit(m *wire.Commit, now types.Time) {
	if m.View != r.view || r.inViewChange || !r.inWindow(m.Seq) {
		return
	}
	if role, _, ok := r.top.RoleOf(m.Replica); !ok || role != types.RoleAgreement || m.Replica != m.Att.Node {
		return
	}
	if r.cfg.ReplicaAuth.Verify(auth.KindCommit, m.OD, m.Att) != nil {
		return
	}
	in := r.inst(m.View, m.Seq)
	in.commits[m.Replica] = vote{od: m.OD, att: m.Att}
	r.checkCommitted(in, now)
}

// checkCommitted marks an instance committed once it is prepared locally and
// holds 2f+1 commit attestations, then tries to execute in order.
func (r *Replica) checkCommitted(in *instance, now types.Time) {
	if in.committed || !in.prepared || in.pp == nil {
		return
	}
	count := 0
	for _, v := range in.commits {
		if v.od == in.od {
			count++
		}
	}
	if count < 2*r.f+1 {
		return
	}
	in.committed = true
	in.committedAt = now
	observeSince(r.om.commitLat, in.preparedAt, now)
	r.span(now, obs.StageCommitted, in.seq, "")
	// Durability: log the commit as a self-proving transferable
	// certificate (the same form peers exchange during catch-up), so
	// replay after a restart re-verifies 2f+1 signatures rather than
	// trusting the disk.
	if r.cfg.Store != nil && !r.recovering && r.storeErr == nil {
		rec := wire.Marshal(&wire.CommitProof{PP: *in.pp, Commits: in.commitAtts()})
		if err := r.cfg.Store.Append(storage.RecCommit, in.seq, rec); err != nil {
			r.storeErr = err
		} else {
			r.walDirty = true
		}
	}
	if r.cfg.OnCommitted != nil {
		r.cfg.OnCommitted(in.view, in.seq)
	}
	r.executeReady(now)
}

// executeReady executes committed instances in sequence order, respecting
// app backpressure and checkpoint synchronization. It is reentrancy-safe:
// a synchronous Sync completion inside the loop defers to the outer call.
func (r *Replica) executeReady(now types.Time) {
	if r.executing {
		return
	}
	r.executing = true
	defer func() { r.executing = false }()
	if now < r.now {
		now = r.now
	}
	// With a store configured, make every logged commit durable before its
	// execution can externalize effects (the message queue sending order
	// certificates to executors). One fsync covers the whole burst — and,
	// since it clears walDirty, it doubles as the group commit for any vote
	// records deferred earlier in the same delivery burst.
	if r.cfg.Store != nil && !r.recovering {
		if r.storeErr != nil {
			return
		}
		if r.walDirty && !r.syncNow() {
			return
		}
	}
	for {
		if r.syncing {
			return
		}
		next := r.lastExec + 1
		in := r.insts[next]
		if in == nil || !in.committed || in.executed {
			return
		}
		if r.app.Busy(now) {
			return
		}
		in.executed = true
		r.lastExec = next
		r.Metrics.Batches++
		r.Metrics.Requests += uint64(len(in.pp.Requests))
		r.om.batches.Inc()
		r.om.requests.Add(uint64(len(in.pp.Requests)))
		r.om.lastExec.Set(int64(next))
		observeSince(r.om.executeLat, in.committedAt, now)
		r.span(now, obs.StageExecuted, next, "")
		// Clear suspicion timers and advance both dedup values; the
		// execution-derived one feeds the checkpoint.
		for i := range in.pp.Requests {
			req := &in.pp.Requests[i]
			cs := r.client(req.Client)
			if cs.pending != nil && cs.pending.Timestamp <= req.Timestamp {
				cs.pending = nil
			}
			if req.Timestamp > cs.lastOrdered {
				cs.lastOrdered = req.Timestamp
			}
			if req.Timestamp > cs.lastExecuted {
				cs.lastExecuted = req.Timestamp
			}
		}
		r.app.Execute(in.view, next, in.pp.ND, in.pp.Requests, now)
		if next%r.cfg.CheckpointInterval == 0 {
			r.beginCheckpoint(next)
		}
	}
}

// --- checkpoints ----------------------------------------------------------------

// beginCheckpoint starts the sync-then-checkpoint sequence of §3.2: the app
// (message queue) quiesces, then the replica signs and shares the digest.
func (r *Replica) beginCheckpoint(n types.SeqNum) {
	r.syncing = true
	r.syncSeq = n
	r.ckptBegan = r.now
	r.app.Sync(n, func(digest types.Digest, payload []byte) {
		r.completeCheckpoint(n, digest, payload)
	})
}

func (r *Replica) completeCheckpoint(n types.SeqNum, digest types.Digest, payload []byte) {
	if !r.syncing || r.syncSeq != n {
		return
	}
	// The app's Sync callback may fire asynchronously, outside any delivery
	// burst; open one so the checkpoint broadcast rides a group commit too.
	r.beginBurst()
	defer r.endBurst()
	r.syncing = false
	// The replica's own dedup table rides along with the app state: it is
	// a deterministic function of the executed log, and a state-
	// transferred replica needs it to avoid re-ordering old requests.
	payload = r.wrapCheckpoint(payload)
	digest = types.DigestBytes(payload)
	r.ckptLocal[n] = savedCheckpoint{digest: digest, payload: payload}
	r.Metrics.Checkpoints++
	r.om.checkpoints.Inc()
	observeSince(r.om.ckptSecs, r.ckptBegan, r.now)
	// If stability raced ahead of the local sync (2f+1 peers finished
	// first), the deferred persist from makeStable can complete now.
	if n == r.lastStable {
		r.persistStable(n)
	}
	// Checkpoint-stability proofs are persisted, served to state-
	// transferring peers, and embedded in view changes — transferable by
	// construction, hence TransferAuth even when agreement votes are MACs.
	att, err := r.cfg.TransferAuth.Attest(auth.KindAgreeCheckpoint, wire.CheckpointDigest(n, digest), r.top.Agreement)
	if err != nil {
		return
	}
	cm := wire.AgreeCheckpoint{Seq: n, State: digest, Replica: r.cfg.ID, Att: att}
	r.recordCheckpointVote(cm)
	r.broadcast(wire.Marshal(&cm))
	// Execution resumed: catch up on anything committed meanwhile.
	r.executeReady(r.now)
	r.maybePropose(r.now)
}

func (r *Replica) onCheckpoint(m *wire.AgreeCheckpoint, now types.Time) {
	if m.Seq <= r.lastStable || m.Replica != m.Att.Node {
		return
	}
	if role, _, ok := r.top.RoleOf(m.Replica); !ok || role != types.RoleAgreement {
		return
	}
	if r.cfg.TransferAuth.Verify(auth.KindAgreeCheckpoint, wire.CheckpointDigest(m.Seq, m.State), m.Att) != nil {
		return
	}
	r.recordCheckpointVote(*m)
}

func (r *Replica) recordCheckpointVote(m wire.AgreeCheckpoint) {
	votes := r.ckptVotes[m.Seq]
	if votes == nil {
		votes = make(map[types.NodeID]wire.AgreeCheckpoint)
		r.ckptVotes[m.Seq] = votes
	}
	votes[m.Replica] = m
	// Count matching digests.
	count := 0
	for _, v := range votes {
		if v.State == m.State {
			count++
		}
	}
	if count >= 2*r.f+1 {
		r.makeStable(m.Seq, m.State, votes)
	}
}

// makeStable installs a stable checkpoint and garbage-collects the log.
func (r *Replica) makeStable(n types.SeqNum, digest types.Digest, votes map[types.NodeID]wire.AgreeCheckpoint) {
	if n <= r.lastStable {
		return
	}
	proof := make([]wire.AgreeCheckpoint, 0, 2*r.f+1)
	for _, v := range votes {
		if v.State == digest {
			proof = append(proof, v)
		}
	}
	// Canonical proof order: the set is persisted and served to lagging
	// peers, so its bytes must not depend on map iteration order.
	sort.Slice(proof, func(i, j int) bool { return proof[i].Replica < proof[j].Replica })
	r.lastStable = n
	r.stableProof = proof
	r.om.lastStable.Set(int64(n))
	r.span(r.now, obs.StageCheckpoint, n, "stable")
	// Durability: persist the stable checkpoint with its vote set, then
	// let the WAL shed segments it supersedes.
	r.persistStable(n)
	// If we fell behind (stable point ahead of execution), state-transfer.
	if r.lastExec < n {
		if _, ok := r.ckptLocal[n]; !ok {
			r.requestStateTransfer(n, digest)
		}
	}
	for seq := range r.insts {
		if seq <= n {
			delete(r.insts, seq)
		}
	}
	// The re-vote guard only matters inside the window: pre-prepares at or
	// below the stable watermark are rejected by inWindow regardless, so
	// vote bookkeeping for them can go (mirroring the WAL's segment GC of
	// RecVote/RecPrepared records below the watermark).
	for seq := range r.voted {
		if seq <= n {
			delete(r.voted, seq)
		}
	}
	for seq := range r.ckptVotes {
		if seq <= n {
			delete(r.ckptVotes, seq)
		}
	}
	for seq := range r.ckptLocal {
		if seq < n { // keep the latest for serving peers
			delete(r.ckptLocal, seq)
		}
	}
}

// persistStable writes the stable checkpoint (wrapped payload + 2f+1 vote
// proof) to the store, if the payload is locally available, and prunes WAL
// segments it supersedes. Safe to call repeatedly; the store dedups by
// sequence number.
func (r *Replica) persistStable(n types.SeqNum) {
	if r.cfg.Store == nil || r.storeErr != nil || n != r.lastStable {
		return
	}
	saved, ok := r.ckptLocal[n]
	if !ok {
		return // payload still syncing or state-transferring; persisted later
	}
	// Re-log the current view state above the new watermark and make it
	// durable BEFORE the checkpoint lands: the checkpoint is what advances
	// recovery's replay cursor past the old view record, so it must never
	// reach disk first — a crash between the two would strand the view
	// below the cursor and restart the replica in view 0. The re-logged
	// record at n+1 is harmless if the checkpoint never lands, and pruning
	// (which could delete the segment holding the old record) comes last.
	r.loggedView, r.loggedVC = 0, false // force a fresh record
	if !r.logView(r.view, r.inViewChange) || !r.logNewView(r.lastNewView) {
		return
	}
	// This sync must not defer to a burst's group commit: SaveCheckpoint
	// advances the replay cursor the moment it hits disk, so the re-logged
	// records have to be durable first, not merely queued.
	if r.voteWAL() && !r.syncNow() {
		return
	}
	err := r.cfg.Store.SaveCheckpoint(storage.Checkpoint{
		Seq: n, Digest: saved.digest,
		Proof:   wire.EncodeAgreeProof(r.stableProof),
		Payload: saved.payload,
	})
	if err != nil {
		r.storeErr = err
		return
	}
	if err := r.cfg.Store.Prune(n); err != nil {
		r.storeErr = err
	}
}

// wrapCheckpoint prepends the canonical per-client dedup table to the app's
// checkpoint payload.
func (r *Replica) wrapCheckpoint(appPayload []byte) []byte {
	ids := make([]types.NodeID, 0, len(r.clients))
	for id, cs := range r.clients {
		if cs.lastExecuted > 0 {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var w wire.Writer
	w.Len(len(ids))
	for _, id := range ids {
		w.Node(id)
		w.TS(r.clients[id].lastExecuted)
	}
	w.Bytes(appPayload)
	return w.B
}

// unwrapCheckpoint splits a wrapped payload back into dedup table and app
// state.
func (r *Replica) unwrapCheckpoint(payload []byte) (map[types.NodeID]types.Timestamp, []byte, error) {
	rd := wire.NewReader(payload)
	n := rd.SliceLen()
	dedup := make(map[types.NodeID]types.Timestamp, n)
	for i := 0; i < n; i++ {
		id := rd.Node()
		dedup[id] = rd.TS()
	}
	appPayload := rd.Bytes()
	if rd.Err() != nil || rd.Remaining() != 0 {
		return nil, nil, fmt.Errorf("pbft: malformed checkpoint payload")
	}
	return dedup, appPayload, nil
}

// --- state transfer and catch-up ----------------------------------------------

func (r *Replica) requestStateTransfer(n types.SeqNum, digest types.Digest) {
	if r.fetchingSeq >= n {
		return
	}
	r.fetchingSeq = n
	r.fetchDeadline = r.now + r.cfg.ViewChangeResend
	// Ask everyone; first valid payload wins.
	r.broadcast(wire.Marshal(&wire.CheckpointFetch{Seq: n, Executor: r.cfg.ID}))
}

func (r *Replica) onCheckpointFetch(m *wire.CheckpointFetch, from types.NodeID, now types.Time) {
	if saved, ok := r.ckptLocal[m.Seq]; ok {
		r.send(from, wire.Marshal(&wire.CheckpointData{Seq: m.Seq, State: saved.digest, Payload: saved.payload}))
	}
}

func (r *Replica) onCheckpointData(m *wire.CheckpointData, now types.Time) {
	if m.Seq <= r.lastExec || m.Seq != r.fetchingSeq {
		return
	}
	// Validate against the stability proof gathered in makeStable.
	if m.Seq != r.lastStable {
		return
	}
	want := r.stableProof
	if len(want) == 0 || want[0].State != m.State {
		return
	}
	if types.DigestBytes(m.Payload) != m.State {
		return
	}
	dedup, appPayload, err := r.unwrapCheckpoint(m.Payload)
	if err != nil {
		return
	}
	if err := r.app.Restore(m.Seq, m.State, appPayload); err != nil {
		return
	}
	for id, ts := range dedup {
		cs := r.client(id)
		if ts > cs.lastOrdered {
			cs.lastOrdered = ts
		}
		if ts > cs.lastExecuted {
			cs.lastExecuted = ts
		}
		cs.pending = nil
	}
	r.ckptLocal[m.Seq] = savedCheckpoint{digest: m.State, payload: m.Payload}
	r.lastExec = m.Seq
	r.fetchingSeq = 0
	r.syncing = false
	// A state transfer that filled in the stable payload completes the
	// deferred persist from makeStable.
	r.persistStable(m.Seq)
	r.executeReady(now)
}

func (r *Replica) onStatus(m *wire.Status, now types.Time) {
	if role, _, ok := r.top.RoleOf(m.Replica); !ok || role != types.RoleAgreement || m.Replica == r.cfg.ID {
		return
	}
	// Peer lags behind our stable checkpoint: send the proof so it can
	// state-transfer.
	if m.LastStable < r.lastStable {
		for _, c := range r.stableProof {
			cp := c
			r.send(m.Replica, wire.Marshal(&cp))
		}
	}
	// Peer is missing committed batches within our window: replay them as
	// transferable commit proofs.
	if m.LastExec < r.lastExec {
		const maxReplay = 16
		sent := 0
		for n := m.LastExec + 1; n <= r.lastExec && sent < maxReplay; n++ {
			in := r.insts[n]
			if in == nil || !in.committed || in.pp == nil {
				continue
			}
			r.send(m.Replica, wire.Marshal(&wire.CommitProof{PP: *in.pp, Commits: in.commitAtts()}))
			sent++
		}
	}
	// Peer is in an older view: resend the proof that the view advanced.
	if m.View < r.view && r.lastNewView != nil && r.lastNewView.View == r.view {
		r.send(m.Replica, wire.Marshal(r.lastNewView))
	}
}

// onCommitProof applies a transferable commit certificate from a peer (or,
// during recovery, from the replica's own WAL — replay is bounded by the
// log tail, so the live window bound does not apply there).
func (r *Replica) onCommitProof(m *wire.CommitProof, now types.Time) {
	n := m.PP.Seq
	if n <= r.lastExec {
		return
	}
	if !r.recovering && !r.inWindow(n) {
		return
	}
	od := m.PP.OrderDigest()
	// The pre-prepare must come from the primary of its view, and the
	// commit certificate must hold 2f+1 distinct valid signatures.
	if m.PP.Att.Node != r.top.Primary(m.PP.View) {
		return
	}
	if r.certAuth.Verify(auth.KindPrePrepare, od, m.PP.Att) != nil {
		return
	}
	allowed := make(map[types.NodeID]bool, r.n)
	for _, id := range r.top.Agreement {
		allowed[id] = true
	}
	if auth.CountDistinctPar(r.cfg.Verify, r.certAuth, auth.KindCommit, od, m.Commits, allowed) < 2*r.f+1 {
		return
	}
	in := r.inst(m.PP.View, n)
	if in.executed {
		return
	}
	// A commit learned via catch-up must hit the WAL like one assembled
	// from live votes (checkCommitted), or recovery would have a hole at
	// this slot despite the proof having driven execution.
	if r.cfg.Store != nil && !r.recovering && !in.committed && r.storeErr == nil {
		if err := r.cfg.Store.Append(storage.RecCommit, n, wire.Marshal(m)); err != nil {
			r.storeErr = err
		} else {
			r.walDirty = true
		}
	}
	pp := m.PP
	in.pp = &pp
	in.od = od
	in.prepared = true
	in.committed = true
	for _, a := range m.Commits {
		in.commits[a.Node] = vote{od: od, att: a}
	}
	if pp.ND.Time > r.ndClock {
		r.ndClock = pp.ND.Time
	}
	r.executeReady(now)
}

// --- durable recovery ---------------------------------------------------------

// Recover restores the replica from its store after a restart: the newest
// checkpoint whose 2f+1 votes and digest verify, then the WAL tail replayed
// through the normal verify-and-execute path (onCommitProof). Execution of
// replayed batches re-drives the message queue, whose retransmissions bring
// the execution cluster back in step; anything newer than the log arrives
// via the existing status-gossip catch-up. Unverifiable checkpoints and
// records are skipped, never fatal.
func (r *Replica) Recover(now types.Time) error {
	st := r.cfg.Store
	if st == nil {
		return nil
	}
	r.recovering = true
	defer func() { r.recovering = false }()
	cks, err := st.Checkpoints()
	if err != nil {
		return err
	}
	allowed := make(map[types.NodeID]bool, r.n)
	for _, id := range r.top.Agreement {
		allowed[id] = true
	}
	for _, ck := range cks { // newest first; take the first that verifies
		if types.DigestBytes(ck.Payload) != ck.Digest {
			continue
		}
		votes, err := wire.DecodeAgreeProof(ck.Proof)
		if err != nil {
			continue
		}
		atts := make([]auth.Attestation, 0, len(votes))
		for i := range votes {
			if votes[i].Seq == ck.Seq && votes[i].State == ck.Digest {
				atts = append(atts, votes[i].Att)
			}
		}
		cd := wire.CheckpointDigest(ck.Seq, ck.Digest)
		if auth.CountDistinctPar(r.cfg.Verify, r.cfg.TransferAuth, auth.KindAgreeCheckpoint, cd, atts, allowed) < 2*r.f+1 {
			continue
		}
		dedup, appPayload, err := r.unwrapCheckpoint(ck.Payload)
		if err != nil {
			continue
		}
		if err := r.app.Restore(ck.Seq, ck.Digest, appPayload); err != nil {
			continue
		}
		for id, ts := range dedup {
			cs := r.client(id)
			cs.lastOrdered = ts
			cs.lastExecuted = ts
		}
		r.ckptLocal[ck.Seq] = savedCheckpoint{digest: ck.Digest, payload: ck.Payload}
		r.lastExec = ck.Seq
		r.lastStable = ck.Seq
		r.stableProof = votes
		r.nextSeq = ck.Seq
		break
	}
	// Replay the tail: commits, votes, prepared certificates, and view
	// transitions interleaved in append order. CommitProofs and prepared
	// certificates are self-proving and go through untrusted verify paths,
	// so a tampered WAL can stall recovery but never forge an order. Vote
	// and view records are this replica's own promises: restoring a forged
	// one can only make the replica refuse votes or campaign spuriously
	// (liveness, absorbed by the cluster), never break agreement safety.
	maxSeen := r.lastExec
	var viewRec *wire.ViewRecord
	var nvRec *wire.NewView
	err = st.Replay(r.lastStable, func(kind storage.RecordKind, seq types.SeqNum, payload []byte) error {
		switch kind {
		case storage.RecCommit:
			if seq <= r.lastStable {
				return nil
			}
			msg, err := wire.Unmarshal(payload)
			if err != nil {
				return nil // CRC-clean but unparsable: skip, catch up instead
			}
			if proof, ok := msg.(*wire.CommitProof); ok {
				r.onCommitProof(proof, now)
				// Advance the proposal floor only for proofs the verify path
				// actually accepted (instance exists and committed) — a
				// tampered-but-CRC-valid record with a huge PP.Seq must not
				// poison nextSeq and wedge this replica's future primariate.
				n := proof.PP.Seq
				if in := r.insts[n]; in != nil && in.committed && n > maxSeen {
					maxSeen = n
				}
			}
		case storage.RecVote:
			v, err := wire.DecodeVoteRecord(payload)
			if err != nil || v.Seq != seq || v.Seq <= r.lastStable {
				return nil
			}
			prev, ok := r.voted[v.Seq]
			if !ok || v.View > prev.view || (v.View == prev.view && v.Phase > prev.phase) {
				r.voted[v.Seq] = votedSlot{view: v.View, od: v.OD, phase: v.Phase}
			}
		case storage.RecPrepared:
			ent, err := wire.DecodePreparedRecord(payload)
			if err == nil && ent.Seq == seq {
				r.restorePrepared(ent)
			}
		case storage.RecView:
			v, err := wire.DecodeViewRecord(payload)
			if err == nil {
				viewRec = &v // append order: the last one is current
			}
		case storage.RecNewView:
			if msg, err := wire.Unmarshal(payload); err == nil {
				if nv, ok := msg.(*wire.NewView); ok {
					nvRec = nv // append order: the last one is current
				}
			}
		}
		return nil
	})
	// A recovered primary must never reuse a sequence number it may have
	// proposed (or voted) in a previous life.
	for n := range r.voted {
		if n > maxSeen {
			maxSeen = n
		}
	}
	if maxSeen > r.nextSeq {
		r.nextSeq = maxSeen
	}
	// Re-enter the recorded view. A replica that crashed mid-campaign
	// resumes campaigning: its rebuilt VIEW-CHANGE (carrying the restored
	// prepared evidence) goes out on the first Tick, so the cluster's
	// pending view change can complete with this replica counted in.
	if viewRec != nil && viewRec.View > r.view {
		r.view = viewRec.View
		r.loggedView, r.loggedVC = viewRec.View, viewRec.InChange
		if viewRec.InChange {
			r.inViewChange = true
			vc := r.buildViewChange(r.view)
			r.sentVC = vc
			r.storeViewChange(vc)
			r.vcDeadline = 0 // rebroadcast immediately
		}
	}
	// Restore the NEW-VIEW this replica installed before the crash, re-
	// validating it end to end — the WAL is untrusted input, and a forged
	// record must not be re-served to peers. Only the retransmission cache
	// is restored here (the view itself came from the view record above);
	// it re-arms the onStatus/onViewChange straggler catch-up paths.
	if nvRec != nil && nvRec.View == r.view && !r.inViewChange {
		if _, _, ok := r.validateNewView(nvRec); ok {
			r.lastNewView = nvRec
		}
	}
	return err
}

// restorePrepared re-installs a prepared slot from its logged certificate,
// re-verifying the primary's pre-prepare attestation, the 2f backup
// prepares, and the canonical nondeterminism — the WAL is untrusted input.
// Invalid or superseded entries are skipped, never fatal.
func (r *Replica) restorePrepared(e *wire.PreparedEntry) {
	if e.Seq <= r.lastStable || e.Seq <= r.lastExec {
		return
	}
	if in := r.insts[e.Seq]; in != nil && (in.committed || in.view >= e.View) {
		return
	}
	if !r.verifyPreparedEvidence(e) {
		return
	}
	od := e.OrderDigest()
	primary := r.top.Primary(e.View)
	in := &instance{
		view: e.View,
		seq:  e.Seq,
		od:   od,
		pp: &wire.PrePrepare{
			View: e.View, Seq: e.Seq, ND: e.ND,
			Requests: e.Requests, Primary: primary, Att: e.PrimaryAtt,
		},
		prepares: make(map[types.NodeID]vote, len(e.Prepares)),
		commits:  make(map[types.NodeID]vote),
		prepared: true,
	}
	for _, att := range e.Prepares {
		in.prepares[att.Node] = vote{od: od, att: att}
	}
	r.insts[e.Seq] = in
	if e.ND.Time > r.ndClock {
		r.ndClock = e.ND.Time
	}
}

// Shutdown flushes and closes the store (graceful-exit path). The replica
// must not be driven afterwards.
func (r *Replica) Shutdown() {
	if r.cfg.Store == nil {
		return
	}
	_ = r.cfg.Store.Sync()
	_ = r.cfg.Store.Close()
}

// CrashStop abandons the store without flushing — the in-process stand-in
// for kill -9 that recovery tests exercise. Graceful paths use Shutdown.
func (r *Replica) CrashStop() {
	if ab, ok := r.cfg.Store.(interface{ Abandon() }); ok {
		ab.Abandon()
	}
}

// --- timers ------------------------------------------------------------------

// Tick implements transport.Node: it drives batching, suspicion timers,
// view-change retransmission, state-transfer retries, and status gossip.
func (r *Replica) Tick(now types.Time) {
	if now > r.now {
		r.now = now
	}
	r.beginBurst()
	defer r.endBurst()
	r.maybePropose(now)
	r.executeReady(now)

	// Retry a stalled state transfer.
	if r.fetchingSeq != 0 && r.lastExec < r.fetchingSeq && now >= r.fetchDeadline {
		r.fetchDeadline = now + r.cfg.ViewChangeResend
		r.broadcast(wire.Marshal(&wire.CheckpointFetch{Seq: r.fetchingSeq, Executor: r.cfg.ID}))
	}

	// Backup suspicion: a buffered client request the primary has not
	// ordered within the timeout triggers a view change.
	if !r.inViewChange && !r.isPrimary() {
		for _, cs := range r.clients {
			if cs.pending != nil && now-cs.pendingSince > r.cfg.RequestTimeout {
				r.startViewChange(r.view+1, now)
				break
			}
		}
	}
	r.tickViewChange(now)

	if r.statusDeadline == 0 || now >= r.statusDeadline {
		r.statusDeadline = now + r.cfg.StatusInterval
		st := &wire.Status{View: r.view, LastExec: r.lastExec, LastStable: r.lastStable, Replica: r.cfg.ID}
		r.broadcast(wire.Marshal(st))
	}
}
