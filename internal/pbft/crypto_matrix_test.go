package pbft

import (
	"testing"

	"repro/internal/auth"
)

// The crypto-mode test matrix: the Byzantine-recovery and view-change crash
// suites run once with the default Ed25519 vote scheme and once with
// pairwise MAC authenticator vectors backing the three-phase votes — the
// hot-path fast mode. Under either mode the view-change and checkpoint
// certificates stay transferably signed (Config.TransferAuth), so every
// scenario must reach the same safety verdicts; only the vote attestation
// bytes differ.

// macMatrixMaster seeds the pairwise secrets of the MAC-mode clusters.
var macMatrixMaster = []byte("pbft-mac-matrix-master")

// macAgreement converts a cluster Config from the test default (Ed25519
// everywhere) to MAC agreement mode: the signature scheme remains as the
// transferable scheme for view changes and checkpoint proofs, and the vote
// scheme becomes a MAC vector over the agreement cluster.
func macAgreement(cfg *Config) {
	ts, ok := cfg.ReplicaAuth.(auth.TransferScheme)
	if !ok {
		panic("macAgreement: cluster default ReplicaAuth is not transferable")
	}
	cfg.TransferAuth = ts
	cfg.ReplicaAuth = auth.NewMACScheme(auth.NewKeyRing(macMatrixMaster, cfg.ID, cfg.Topology.Agreement))
}

// forEachCryptoMode runs the scenario once per agreement-vote scheme.
func forEachCryptoMode(t *testing.T, run func(t *testing.T, crypto func(*Config))) {
	t.Run("ed25519", func(t *testing.T) { run(t, func(*Config) {}) })
	t.Run("mac", func(t *testing.T) { run(t, macAgreement) })
}
