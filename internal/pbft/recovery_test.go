package pbft

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/auth"
	"repro/internal/storage"
	"repro/internal/types"
	"repro/internal/wire"
)

// This file is the Byzantine-recovery scenario suite for the agreement
// engine's durable voting state: a single replica is killed mid-protocol
// (its store abandoned unflushed, like kill -9), restarted over the same
// data directory, and driven by adversarial peers. All scenarios run on the
// deterministic simulated network with fixed seeds.

// recoveryDir places data under SAEBFT_RECOVERY_DIR when set (CI uploads it
// as a debugging artifact on failure), else under the test temp dir.
func recoveryDir(t *testing.T, name string) string {
	t.Helper()
	if root := os.Getenv("SAEBFT_RECOVERY_DIR"); root != "" {
		dir := filepath.Join(root, t.Name(), name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	return filepath.Join(t.TempDir(), name)
}

// durableCluster builds a four-replica cluster whose agreement replicas
// persist under dir/node-<id>.
func durableCluster(t *testing.T, seed int64, dir string, mutate func(*Config)) *cluster {
	t.Helper()
	c := newCluster(t, seed, func(cfg *Config) {
		st, err := storage.Open(filepath.Join(dir, fmt.Sprintf("node-%d", cfg.ID)), storage.Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { st.Close() })
		cfg.Store = st
		if mutate != nil {
			mutate(cfg)
		}
	})
	// The suite's pump loops retransmit requests past execution; answer
	// them from "cache" (as the real message queue does) instead of
	// re-proposing, which the bare fakeApp cannot dedup.
	for _, app := range c.apps {
		app.resendOK = true
	}
	return c
}

// crashReplica kills a replica abruptly: network silence plus store
// abandonment — unflushed WAL buffers die with it.
func (c *cluster) crashReplica(id types.NodeID) {
	c.net.Crash(id)
	c.replicas[id].CrashStop()
}

// restartReplica rebuilds a crashed replica over its data directory,
// recovers it, and swaps it back into the network.
func (c *cluster) restartReplica(t *testing.T, id types.NodeID, dir string) *Replica {
	t.Helper()
	st, err := storage.Open(filepath.Join(dir, fmt.Sprintf("node-%d", id)), storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	cfg := c.cfgs[id]
	cfg.Store = st
	app := &fakeApp{resendOK: true}
	r, err := New(cfg, app, c.net.Bind(id))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Recover(c.net.Now()); err != nil {
		t.Fatal(err)
	}
	c.replicas[id] = r
	c.apps[id] = app
	c.cfgs[id] = cfg
	c.net.Swap(id, r)
	c.net.Revive(id)
	return r
}

// voteKey identifies one (sender, view, slot) vote.
type voteKey struct {
	from types.NodeID
	view types.View
	seq  types.SeqNum
}

// voteEvent is one observed prepare/commit send.
type voteEvent struct {
	k  voteKey
	od types.Digest
}

// voteLog taps the network and records every prepare and commit each node
// sends — across crashes and restarts — so tests can assert a replica never
// contradicts a vote from a previous incarnation.
type voteLog struct {
	ods    map[voteKey]map[types.Digest]bool
	events []voteEvent
}

func newVoteLog() *voteLog {
	return &voteLog{ods: make(map[voteKey]map[types.Digest]bool)}
}

func (l *voteLog) observe(from, to types.NodeID, data []byte) {
	msg, err := wire.Unmarshal(data)
	if err != nil {
		return
	}
	var k voteKey
	var od types.Digest
	switch m := msg.(type) {
	case *wire.Prepare:
		k, od = voteKey{from, m.View, m.Seq}, m.OD
	case *wire.Commit:
		k, od = voteKey{from, m.View, m.Seq}, m.OD
	default:
		return
	}
	set := l.ods[k]
	if set == nil {
		set = make(map[types.Digest]bool)
		l.ods[k] = set
	}
	if !set[od] {
		set[od] = true
		l.events = append(l.events, voteEvent{k: k, od: od})
	}
}

// conflicts returns every (view, slot) for which from voted two digests.
func (l *voteLog) conflicts(from types.NodeID) []voteKey {
	var out []voteKey
	for k, set := range l.ods {
		if k.from == from && len(set) > 1 {
			out = append(out, k)
		}
	}
	return out
}

// votedAtOrAbove reports whether from sent any vote in view >= v.
func (l *voteLog) votedAtOrAbove(from types.NodeID, v types.View) bool {
	for k := range l.ods {
		if k.from == from && k.view >= v {
			return true
		}
	}
	return false
}

// mark snapshots the event stream; eventsSince replays what came after.
func (l *voteLog) mark() int { return len(l.events) }

func (l *voteLog) eventsSince(i int) []voteEvent { return l.events[i:] }

// equivocator impersonates agreement replica 0 with its real keys: silent
// toward the cluster (so suspicion timers run against it) while bombarding
// the victim with a signed pre-prepare that conflicts with the vote the
// victim logged before its crash — the exact attack durable voting state
// exists to defeat.
type equivocator struct {
	c      *cluster
	victim types.NodeID
	pp     *wire.PrePrepare
	sent   int
}

func newEquivocator(c *cluster, victim types.NodeID, orig *wire.PrePrepare) *equivocator {
	c.t.Helper()
	t2 := orig.ND.Time + 1 // different agreed time => different order digest
	pp := &wire.PrePrepare{
		View: orig.View, Seq: orig.Seq,
		ND:       types.NonDet{Time: t2, Rand: types.ComputeNonDetRand(orig.Seq, t2)},
		Requests: orig.Requests,
		Primary:  0,
	}
	att, err := c.schemes[0].Attest(auth.KindPrePrepare, pp.OrderDigest(), c.top.Agreement)
	if err != nil {
		c.t.Fatal(err)
	}
	pp.Att = att
	return &equivocator{c: c, victim: victim, pp: pp}
}

func (e *equivocator) Deliver(from types.NodeID, data []byte, now types.Time) {}

func (e *equivocator) Tick(now types.Time) {
	e.sent++
	e.c.net.Bind(0)(e.victim, wire.Marshal(e.pp))
}

// TestByzantineRecoverySingleBackup is the acceptance scenario: backup 2 is
// killed mid-slot — its prepare for a batch signed, written to the WAL, and
// on the wire, but the batch not yet committed — and the view's primary
// turns Byzantine, feeding the restarted backup a conflicting pre-prepare
// for the very slot it voted on. The suite proves (a) the recovered backup
// sends no vote conflicting with one it sent before the crash, (b) the
// cluster commits no conflicting batches, and (c) the backup rejoins and
// contributes to quorums in the new view.
func TestByzantineRecoverySingleBackup(t *testing.T) {
	forEachCryptoMode(t, testByzantineRecoverySingleBackup)
}

func testByzantineRecoverySingleBackup(t *testing.T, crypto func(*Config)) {
	dir := recoveryDir(t, "byz-backup")
	c := durableCluster(t, 77, dir, func(cfg *Config) {
		cfg.BatchSize = 1
		crypto(cfg)
	})
	votes := newVoteLog()
	c.net.Tap(votes.observe)

	// Commit a prefix so the victim's WAL holds commits, votes, and
	// prepared certificates worth recovering.
	if !c.pumpSequential(100, 5, "pre", types.Millisecond(10000)) {
		t.Fatal("prefix never executed")
	}

	// Stop the world at the exact event where backup 2 has voted on a
	// fresh slot that has not committed, then kill it.
	const victimID = types.NodeID(2)
	c.sendTo(0, c.request(100, "victim"))
	var victimPP *wire.PrePrepare
	var votedOD types.Digest
	midSlot := func() bool {
		for _, in := range c.replicas[victimID].insts {
			if in.pp == nil || in.committed {
				continue
			}
			if _, ok := in.prepares[victimID]; ok {
				victimPP, votedOD = in.pp, in.od
				return true
			}
		}
		return false
	}
	if !c.net.RunUntil(midSlot, c.net.Now()+types.Millisecond(3000)) {
		t.Fatal("backup never voted on the victim slot")
	}
	c.crashReplica(victimID)

	// Replace the primary with the equivocator (same keys, silent toward
	// the cluster, conflicting proposal toward the victim).
	evil := newEquivocator(c, victimID, victimPP)
	conflictOD := evil.pp.OrderDigest()
	if conflictOD == votedOD {
		t.Fatal("test bug: conflicting proposal has the voted digest")
	}
	delete(c.apps, 0)
	delete(c.replicas, 0)
	c.net.Swap(0, evil)

	r2 := c.restartReplica(t, victimID, dir)
	if got := r2.LastExecuted(); got < 5 {
		t.Fatalf("recovered backup replayed only %d slots, want >= 5", got)
	}

	// Deliver the conflicting proposal synchronously: the recovered
	// backup must refuse to re-vote and instead demand a view change —
	// the same-view digest conflict with its logged vote is equivocation
	// evidence.
	r2.Deliver(0, wire.Marshal(evil.pp), c.net.Now())
	if !r2.InViewChange() || r2.View() != 1 {
		t.Fatalf("conflicting proposal not refused with a view change (view=%d inVC=%v)",
			r2.View(), r2.InViewChange())
	}
	if in := r2.insts[victimPP.Seq]; in != nil && in.od == conflictOD {
		t.Fatal("recovered backup adopted the conflicting proposal")
	}

	// Pump one more request until the cluster (minus the Byzantine
	// primary) converges in the new view: 5 prefix + victim + post = 7.
	post := c.request(101, "post")
	deadline := c.net.Now() + types.Millisecond(20000)
	for !c.allExecuted(7, 0)() {
		if c.net.Now() > deadline {
			for id, app := range c.apps {
				t.Logf("replica %v: view=%d execs=%d", id, c.replicas[id].View(), len(app.flatOps()))
			}
			t.Fatal("cluster never converged in the new view")
		}
		c.sendToAll(post)
		c.net.RunUntil(c.allExecuted(7, 0), c.net.Now()+types.Millisecond(50))
	}

	// (a) Across both incarnations, node 2 never voted two digests for
	// the same (view, slot) — the equivocator's bombardment included.
	if evil.sent == 0 {
		t.Fatal("test bug: equivocator never sent its conflicting proposal")
	}
	if bad := votes.conflicts(victimID); len(bad) != 0 {
		t.Fatalf("recovered backup sent conflicting votes at %v", bad)
	}
	// (b) No conflicting batches committed: all logs agree and every
	// operation executed exactly once.
	c.assertConsistentLogs()
	for id, app := range c.apps {
		seen := make(map[string]bool)
		for _, op := range app.flatOps() {
			if seen[op] {
				t.Fatalf("replica %v executed %q twice", id, op)
			}
			seen[op] = true
		}
	}
	// (c) The recovered backup rejoined and contributed: the new view's
	// commit quorum (2f+1 of the three correct replicas) is impossible
	// without its votes, and the tap must show them.
	if got := r2.View(); got < 1 {
		t.Fatalf("recovered backup still in view %d", got)
	}
	if !votes.votedAtOrAbove(victimID, 1) {
		t.Fatal("recovered backup never voted in the new view")
	}
}

// TestViewChangeDurabilityMidCampaign crashes a backup after it has
// broadcast a VIEW-CHANGE but before the new view installs. The restarted
// replica must recover into the campaign (correct target view, still
// changing), refuse any vote in the abandoned view, and then complete the
// view change with the others.
func TestViewChangeDurabilityMidCampaign(t *testing.T) {
	forEachCryptoMode(t, testViewChangeDurabilityMidCampaign)
}

func testViewChangeDurabilityMidCampaign(t *testing.T, crypto func(*Config)) {
	dir := recoveryDir(t, "vc-campaign")
	c := durableCluster(t, 78, dir, crypto)
	votes := newVoteLog()
	c.net.Tap(votes.observe)

	if !c.pumpSequential(100, 3, "pre", types.Millisecond(10000)) {
		t.Fatal("prefix never executed")
	}

	// Kill the primary; a pending request drives the backups into a
	// campaign. Stop at the event where backup 2 enters it.
	c.net.Crash(0)
	survive := c.request(100, "survive")
	c.sendToAll(survive)
	const victimID = types.NodeID(2)
	midCampaign := func() bool {
		r := c.replicas[victimID]
		return r.InViewChange() && r.View() >= 1
	}
	if !c.net.RunUntil(midCampaign, c.net.Now()+types.Millisecond(3000)) {
		t.Fatal("backup never campaigned")
	}
	target := c.replicas[victimID].View()
	c.crashReplica(victimID)

	r2 := c.restartReplica(t, victimID, dir)
	if r2.View() != target || !r2.InViewChange() {
		t.Fatalf("recovered into view %d (inVC=%v), want mid-campaign for view %d",
			r2.View(), r2.InViewChange(), target)
	}

	// Never regress: a fresh, correctly-signed pre-prepare from the
	// abandoned view must be ignored outright.
	mark := votes.mark()
	staleSeq := r2.LastExecuted() + 5
	staleReq := c.request(102, "stale")
	tNow := types.Timestamp(c.net.Now())
	stale := &wire.PrePrepare{
		View: 0, Seq: staleSeq,
		ND:       types.NonDet{Time: tNow, Rand: types.ComputeNonDetRand(staleSeq, tNow)},
		Requests: []wire.Request{*staleReq},
		Primary:  0,
	}
	att, err := c.schemes[0].Attest(auth.KindPrePrepare, stale.OrderDigest(), c.top.Agreement)
	if err != nil {
		t.Fatal(err)
	}
	stale.Att = att
	r2.Deliver(0, wire.Marshal(stale), c.net.Now())
	if in := r2.insts[staleSeq]; in != nil && in.pp != nil {
		t.Fatal("recovered replica accepted a pre-prepare from the abandoned view")
	}

	// The campaign completes (possibly escalating past the original
	// target) and the pending request executes on every live replica.
	deadline := c.net.Now() + types.Millisecond(20000)
	for !c.allExecuted(4, 0)() {
		if c.net.Now() > deadline {
			t.Fatal("view change never completed after the restart")
		}
		c.sendToAll(survive)
		c.net.RunUntil(c.allExecuted(4, 0), c.net.Now()+types.Millisecond(50))
	}
	c.assertConsistentLogs()
	if got := r2.View(); got < target {
		t.Fatalf("recovered replica regressed to view %d < %d", got, target)
	}
	for _, ev := range votes.eventsSince(mark) {
		if ev.k.from == victimID && ev.k.view < target {
			t.Fatalf("post-restart vote in abandoned view %d at slot %d", ev.k.view, ev.k.seq)
		}
	}
	if bad := votes.conflicts(victimID); len(bad) != 0 {
		t.Fatalf("conflicting votes at %v", bad)
	}
}

// TestViewChangeDurabilityDuringInstall crashes a backup immediately after
// it installs a new view (the NEW-VIEW is accepted, the install logged, its
// re-prepares broadcast). The restart must land in the installed view — not
// the campaign, not the old view — and keep contributing there.
func TestViewChangeDurabilityDuringInstall(t *testing.T) {
	forEachCryptoMode(t, testViewChangeDurabilityDuringInstall)
}

func testViewChangeDurabilityDuringInstall(t *testing.T, crypto func(*Config)) {
	dir := recoveryDir(t, "vc-install")
	c := durableCluster(t, 79, dir, crypto)
	votes := newVoteLog()
	c.net.Tap(votes.observe)

	if !c.pumpSequential(100, 3, "pre", types.Millisecond(10000)) {
		t.Fatal("prefix never executed")
	}

	c.net.Crash(0)
	survive := c.request(100, "survive")
	c.sendToAll(survive)
	const victimID = types.NodeID(3)
	installed := func() bool {
		r := c.replicas[victimID]
		return r.View() >= 1 && !r.InViewChange()
	}
	if !c.net.RunUntil(installed, c.net.Now()+types.Millisecond(5000)) {
		t.Fatal("backup never installed the new view")
	}
	installedView := c.replicas[victimID].View()
	c.crashReplica(victimID)

	r2 := c.restartReplica(t, victimID, dir)
	if r2.View() != installedView || r2.InViewChange() {
		t.Fatalf("recovered into view %d (inVC=%v), want installed view %d",
			r2.View(), r2.InViewChange(), installedView)
	}

	deadline := c.net.Now() + types.Millisecond(20000)
	for !c.allExecuted(4, 0)() {
		if c.net.Now() > deadline {
			t.Fatal("cluster never converged after the install-crash restart")
		}
		c.sendToAll(survive)
		c.net.RunUntil(c.allExecuted(4, 0), c.net.Now()+types.Millisecond(50))
	}
	c.assertConsistentLogs()
	if bad := votes.conflicts(victimID); len(bad) != 0 {
		t.Fatalf("conflicting votes at %v", bad)
	}
	if !votes.votedAtOrAbove(victimID, installedView) {
		t.Fatal("recovered replica never contributed in the installed view")
	}
}

// blackholeStore wraps a Store and, once armed, silently discards every
// write after the next SaveCheckpoint completes — modeling a process that
// dies at that exact instant. It pins the write ordering inside
// persistStable: the view record must be durable BEFORE the checkpoint that
// advances recovery's replay cursor, or this crash window loses the view.
type blackholeStore struct {
	storage.Store
	armed bool
	dead  bool
}

func (s *blackholeStore) Append(kind storage.RecordKind, seq types.SeqNum, payload []byte) error {
	if s.dead {
		return nil
	}
	return s.Store.Append(kind, seq, payload)
}

func (s *blackholeStore) Sync() error {
	if s.dead {
		return nil
	}
	return s.Store.Sync()
}

func (s *blackholeStore) SaveCheckpoint(ck storage.Checkpoint) error {
	if s.dead {
		return nil
	}
	err := s.Store.SaveCheckpoint(ck)
	if s.armed {
		s.dead = true
	}
	return err
}

func (s *blackholeStore) Prune(stable types.SeqNum) error {
	if s.dead {
		return nil
	}
	return s.Store.Prune(stable)
}

func (s *blackholeStore) Abandon() {
	if d, ok := s.Store.(*storage.DiskStore); ok {
		d.Abandon()
	}
}

// TestRecoveryViewSurvivesCheckpointCrashWindow kills a replica at the
// worst possible instant: the moment a new stable checkpoint reaches disk,
// before anything after it does. The previous view record now sits below
// the checkpoint's replay cursor, so recovery must be able to rely on the
// current view having been re-logged durably BEFORE the checkpoint — or the
// replica would restart in view 0 and could be induced to vote in a view it
// already abandoned.
func TestRecoveryViewSurvivesCheckpointCrashWindow(t *testing.T) {
	dir := recoveryDir(t, "ckpt-window")
	const victimID = types.NodeID(2)
	var hole *blackholeStore
	c := durableCluster(t, 81, dir, func(cfg *Config) {
		cfg.BatchSize = 1
		cfg.CheckpointInterval = 4
		cfg.WindowSize = 16
		if cfg.ID == victimID {
			hole = &blackholeStore{Store: cfg.Store}
			cfg.Store = hole
		}
	})

	// Move to view >= 1 so there is a view to lose.
	c.net.Crash(0)
	first := c.request(100, "first")
	c.sendToAll(first)
	if !c.net.RunUntil(c.allExecuted(1, 0), types.Millisecond(5000)) {
		t.Fatal("no progress after primary crash")
	}
	view := c.replicas[victimID].View()
	if view == 0 {
		t.Fatal("view did not advance")
	}
	c.net.Revive(0)

	// Arm the trap and run until the victim's next stable checkpoint
	// lands — at which point its store goes dark, as a crash would.
	hole.armed = true
	if !c.pumpSequential(101, 8, "w", c.net.Now()+types.Millisecond(30000)) {
		t.Fatal("workload stalled")
	}
	if !hole.dead {
		t.Fatal("no checkpoint was saved after arming; test is vacuous")
	}
	c.crashReplica(victimID)

	r2 := c.restartReplica(t, victimID, dir)
	if got := r2.View(); got != view {
		t.Fatalf("crash at the checkpoint-save instant lost the view: recovered into %d, want %d", got, view)
	}
}

// TestRecoveryViewSurvivesCheckpointGC runs a view change, then enough
// traffic to cross several stable checkpoints (pruning the WAL segments
// that held the original view records), then crash-restarts a backup. The
// re-logged view state above the stable watermark must carry the recovered
// replica straight into the current view.
func TestRecoveryViewSurvivesCheckpointGC(t *testing.T) {
	dir := recoveryDir(t, "view-gc")
	c := durableCluster(t, 80, dir, func(cfg *Config) {
		cfg.BatchSize = 1
		cfg.CheckpointInterval = 4
		cfg.WindowSize = 16
	})

	// Force the cluster into view 1.
	c.net.Crash(0)
	first := c.request(100, "first")
	c.sendToAll(first)
	if !c.net.RunUntil(c.allExecuted(1, 0), types.Millisecond(5000)) {
		t.Fatal("no progress after primary crash")
	}
	view := c.replicas[1].View()
	if view == 0 {
		t.Fatal("view did not advance")
	}
	// Revive the old primary; status gossip forwards the NEW-VIEW proof
	// and it rejoins the current view.
	c.net.Revive(0)

	// Cross several checkpoint boundaries so segment GC runs.
	if !c.pumpSequential(101, 12, "gc", c.net.Now()+types.Millisecond(30000)) {
		t.Fatal("post-view-change workload stalled")
	}
	const victimID = types.NodeID(2)
	if got := c.replicas[victimID].LastStable(); got < 8 {
		t.Fatalf("stable checkpoint only at %d; GC never exercised", got)
	}

	c.crashReplica(victimID)
	r2 := c.restartReplica(t, victimID, dir)
	if got := r2.View(); got != view {
		t.Fatalf("recovered into view %d, want %d (view record lost to GC?)", got, view)
	}
	if r2.InViewChange() {
		t.Fatal("recovered replica believes a campaign is still running")
	}
	if got := r2.LastStable(); got < 8 {
		t.Fatalf("recovered stable checkpoint %d, want >= 8", got)
	}

	// And it keeps working in that view.
	if !c.pumpSequential(102, 3, "post", c.net.Now()+types.Millisecond(20000)) {
		t.Fatal("cluster stalled after the restart")
	}
	c.assertConsistentLogs()
}
