package pbft

import (
	"crypto/ed25519"
	"encoding/binary"
	"fmt"
	"testing"

	"repro/internal/auth"
	"repro/internal/threshold"
	"repro/internal/transport"
	"repro/internal/types"
	"repro/internal/wire"
)

// fakeApp is a deterministic App that records the delivered order. Its
// checkpoint payload is the serialized execution log, so state transfer can
// be verified end to end.
type fakeApp struct {
	log      []appEntry
	busy     bool
	resends  int
	resendOK bool
	syncs    int
}

type appEntry struct {
	seq types.SeqNum
	nd  types.NonDet
	ops []string
}

func (a *fakeApp) Execute(v types.View, n types.SeqNum, nd types.NonDet, reqs []wire.Request, now types.Time) {
	e := appEntry{seq: n, nd: nd}
	for i := range reqs {
		e.ops = append(e.ops, fmt.Sprintf("%v:%d:%s", reqs[i].Client, reqs[i].Timestamp, reqs[i].Op))
	}
	a.log = append(a.log, e)
}

func (a *fakeApp) ResendReply(req *wire.Request, now types.Time) bool {
	a.resends++
	return a.resendOK
}

func (a *fakeApp) Sync(n types.SeqNum, done func(types.Digest, []byte)) {
	a.syncs++
	payload := a.marshal()
	done(types.DigestBytes(payload), payload)
}

func (a *fakeApp) Restore(n types.SeqNum, digest types.Digest, payload []byte) error {
	a.log = a.unmarshal(payload)
	return nil
}

func (a *fakeApp) Busy(now types.Time) bool { return a.busy }

func (a *fakeApp) marshal() []byte {
	var w wire.Writer
	w.Len(len(a.log))
	for _, e := range a.log {
		w.Seq(e.seq)
		w.TS(e.nd.Time)
		w.Digest(e.nd.Rand)
		w.Len(len(e.ops))
		for _, op := range e.ops {
			w.Bytes([]byte(op))
		}
	}
	return w.B
}

func (a *fakeApp) unmarshal(b []byte) []appEntry {
	r := wire.NewReader(b)
	n := r.SliceLen()
	out := make([]appEntry, 0, n)
	for i := 0; i < n; i++ {
		e := appEntry{seq: r.Seq(), nd: types.NonDet{Time: r.TS(), Rand: r.Digest()}}
		k := r.SliceLen()
		for j := 0; j < k; j++ {
			e.ops = append(e.ops, string(r.Bytes()))
		}
		out = append(out, e)
	}
	return out
}

func (a *fakeApp) flatOps() []string {
	var out []string
	for _, e := range a.log {
		out = append(out, e.ops...)
	}
	return out
}

// cluster is a four-replica agreement cluster over a simulated network.
type cluster struct {
	t        *testing.T
	net      *transport.SimNet
	top      *types.Topology
	replicas map[types.NodeID]*Replica
	apps     map[types.NodeID]*fakeApp
	schemes  map[types.NodeID]auth.Scheme
	clients  map[types.NodeID]auth.Scheme
	cfgs     map[types.NodeID]Config // as built, for crash-restart tests
	nextTS   types.Timestamp
}

func newCluster(t *testing.T, seed int64, mutate func(*Config)) *cluster {
	t.Helper()
	top := &types.Topology{
		Agreement: []types.NodeID{0, 1, 2, 3},
		Execution: []types.NodeID{10, 11, 12},
		Clients:   []types.NodeID{100, 101, 102},
	}
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	dir := auth.NewDirectory(nil)
	privs := make(map[types.NodeID]ed25519.PrivateKey)
	for _, id := range top.AllNodes() {
		seedBytes := make([]byte, ed25519.SeedSize)
		binary.BigEndian.PutUint32(seedBytes, uint32(id)+uint32(seed))
		priv := ed25519.NewKeyFromSeed(seedBytes)
		privs[id] = priv
		dir.Add(id, priv.Public().(ed25519.PublicKey))
	}

	c := &cluster{
		t:        t,
		net:      transport.NewSimNet(transport.SimNetConfig{Seed: seed}),
		top:      top,
		replicas: make(map[types.NodeID]*Replica),
		apps:     make(map[types.NodeID]*fakeApp),
		schemes:  make(map[types.NodeID]auth.Scheme),
		clients:  make(map[types.NodeID]auth.Scheme),
		cfgs:     make(map[types.NodeID]Config),
	}
	for _, id := range top.Agreement {
		app := &fakeApp{}
		cfg := Config{
			ID:                 id,
			Topology:           top,
			ReplicaAuth:        auth.NewSigScheme(id, privs[id], dir),
			ClientAuth:         auth.NewSigScheme(id, privs[id], dir),
			BatchSize:          4,
			BatchWait:          types.Millisecond(1),
			CheckpointInterval: 8,
			WindowSize:         32,
			RequestTimeout:     types.Millisecond(60),
			ViewChangeResend:   types.Millisecond(30),
			StatusInterval:     types.Millisecond(15),
		}
		if mutate != nil {
			mutate(&cfg)
		}
		r, err := New(cfg, app, c.net.Bind(id))
		if err != nil {
			t.Fatal(err)
		}
		c.replicas[id] = r
		c.apps[id] = app
		c.schemes[id] = cfg.ReplicaAuth
		c.cfgs[id] = cfg
		c.net.Register(id, r)
	}
	for _, id := range top.Clients {
		c.clients[id] = auth.NewSigScheme(id, privs[id], dir)
	}
	return c
}

// request builds an authenticated client request.
func (c *cluster) request(client types.NodeID, op string) *wire.Request {
	c.nextTS++
	req := &wire.Request{Client: client, Timestamp: c.nextTS, Op: []byte(op)}
	att, err := c.clients[client].Attest(auth.KindRequest, req.Digest(), c.top.Agreement)
	if err != nil {
		c.t.Fatal(err)
	}
	req.Att = att
	return req
}

// sendToPrimary injects a request at the view-0 primary.
func (c *cluster) sendTo(id types.NodeID, req *wire.Request) {
	c.net.Bind(req.Client)(id, wire.Marshal(req))
}

func (c *cluster) sendToAll(req *wire.Request) {
	r := *req
	r.ReplyToAll = true
	for _, id := range c.top.Agreement {
		c.sendTo(id, &r)
	}
}

// executedEverywhere reports whether every live replica has executed at
// least n batches containing a total of want requests.
func (c *cluster) allExecuted(want int, skip ...types.NodeID) func() bool {
	skipSet := make(map[types.NodeID]bool)
	for _, id := range skip {
		skipSet[id] = true
	}
	return func() bool {
		for id, app := range c.apps {
			if skipSet[id] {
				continue
			}
			if len(app.flatOps()) < want {
				return false
			}
		}
		return true
	}
}

// assertConsistentLogs fails the test if any two replicas disagree on the
// executed order (ignoring suffix length differences).
func (c *cluster) assertConsistentLogs() {
	c.t.Helper()
	var ref []string
	var refID types.NodeID
	for _, id := range c.top.Agreement {
		app, ok := c.apps[id]
		if !ok {
			continue
		}
		ops := app.flatOps()
		if len(ops) > len(ref) {
			ref = ops
			refID = id
		}
	}
	for _, id := range c.top.Agreement {
		app, ok := c.apps[id]
		if !ok {
			continue
		}
		ops := app.flatOps()
		for i := range ops {
			if ops[i] != ref[i] {
				c.t.Fatalf("log divergence: replica %v has %q at %d, replica %v has %q", id, ops[i], i, refID, ref[i])
			}
		}
	}
}

func TestOrdersSingleRequest(t *testing.T) {
	c := newCluster(t, 1, nil)
	req := c.request(100, "op-a")
	c.sendTo(0, req) // replica 0 is the view-0 primary
	if !c.net.RunUntil(c.allExecuted(1), types.Millisecond(500)) {
		t.Fatal("request never executed on all replicas")
	}
	c.assertConsistentLogs()
	for id, app := range c.apps {
		ops := app.flatOps()
		if len(ops) != 1 || ops[0] != "n100:1:op-a" {
			t.Errorf("replica %v log = %v", id, ops)
		}
	}
}

func TestOrdersManyRequestsConsistently(t *testing.T) {
	c := newCluster(t, 2, nil)
	total := 0
	for i := 0; i < 10; i++ {
		for _, client := range c.top.Clients {
			c.sendTo(0, c.request(client, fmt.Sprintf("op-%d", i)))
			total++
		}
	}
	if !c.net.RunUntil(c.allExecuted(total), types.Millisecond(2000)) {
		t.Fatalf("only %d/%d executed", len(c.apps[0].flatOps()), total)
	}
	c.assertConsistentLogs()
	// Exactly-once: no duplicates.
	seen := make(map[string]bool)
	for _, op := range c.apps[0].flatOps() {
		if seen[op] {
			t.Fatalf("duplicate execution of %q", op)
		}
		seen[op] = true
	}
}

func TestBatchingAmortizesAgreement(t *testing.T) {
	c := newCluster(t, 3, nil)
	const n = 12
	for i := 0; i < n; i++ {
		c.sendTo(0, c.request(100, fmt.Sprintf("b%d", i)))
	}
	if !c.net.RunUntil(c.allExecuted(n), types.Millisecond(1000)) {
		t.Fatal("requests never executed")
	}
	batches := c.replicas[0].Metrics.Batches
	if batches >= n {
		t.Errorf("batches = %d for %d requests; batching is not effective", batches, n)
	}
}

func TestNonDetIsAgreedAndCanonical(t *testing.T) {
	c := newCluster(t, 4, nil)
	c.sendTo(0, c.request(100, "x"))
	if !c.net.RunUntil(c.allExecuted(1), types.Millisecond(500)) {
		t.Fatal("request never executed")
	}
	var nd types.NonDet
	for i, id := range c.top.Agreement {
		e := c.apps[id].log[0]
		if i == 0 {
			nd = e.nd
		} else if e.nd != nd {
			t.Fatalf("nondeterministic inputs differ across replicas: %+v vs %+v", e.nd, nd)
		}
	}
	if nd.Rand != types.ComputeNonDetRand(1, nd.Time) {
		t.Error("agreed Rand is not the canonical PRF output")
	}
	if nd.Time == 0 {
		t.Error("agreed Time is zero")
	}
}

func TestRejectsBadNonDetProposal(t *testing.T) {
	c := newCluster(t, 5, nil)
	r1 := c.replicas[1]
	req := c.request(100, "x")
	// A pre-prepare with steered randomness must fail validation.
	pp := &wire.PrePrepare{
		View: 0, Seq: 1,
		ND:       types.NonDet{Time: 1, Rand: types.DigestBytes([]byte("steered"))},
		Requests: []wire.Request{*req},
		Primary:  0,
	}
	att, _ := c.schemes[0].Attest(auth.KindPrePrepare, pp.OrderDigest(), c.top.Agreement)
	pp.Att = att
	if _, ok := r1.validatePrePrepare(pp, types.Millisecond(1)); ok {
		t.Error("backup accepted a proposal with non-canonical randomness")
	}
	// The same proposal with canonical randomness passes.
	pp.ND.Rand = types.ComputeNonDetRand(1, 1)
	att, _ = c.schemes[0].Attest(auth.KindPrePrepare, pp.OrderDigest(), c.top.Agreement)
	pp.Att = att
	if _, ok := r1.validatePrePrepare(pp, types.Millisecond(1)); !ok {
		t.Error("backup rejected a canonical proposal")
	}
	// Out-of-skew time must fail.
	pp.ND.Time = types.Timestamp(1e18)
	pp.ND.Rand = types.ComputeNonDetRand(1, pp.ND.Time)
	att, _ = c.schemes[0].Attest(auth.KindPrePrepare, pp.OrderDigest(), c.top.Agreement)
	pp.Att = att
	if _, ok := r1.validatePrePrepare(pp, types.Millisecond(1)); ok {
		t.Error("backup accepted a proposal with absurd timestamp")
	}
}

func TestRejectsUnauthenticatedRequest(t *testing.T) {
	c := newCluster(t, 6, nil)
	req := &wire.Request{Client: 100, Timestamp: 1, Op: []byte("forged")}
	req.Att = auth.Attestation{Node: 100, Proof: []byte("junk")}
	c.sendTo(0, req)
	c.net.Run(types.Millisecond(100))
	for id, app := range c.apps {
		if len(app.log) != 0 {
			t.Errorf("replica %v executed a forged request", id)
		}
	}
}

func TestDuplicateRequestNotReexecuted(t *testing.T) {
	c := newCluster(t, 7, nil)
	for _, app := range c.apps {
		app.resendOK = true // cached reply available
	}
	req := c.request(100, "once")
	c.sendTo(0, req)
	if !c.net.RunUntil(c.allExecuted(1), types.Millisecond(500)) {
		t.Fatal("first copy never executed")
	}
	// Client retransmits the same request to everyone.
	c.sendToAll(req)
	c.net.Run(c.net.Now() + types.Millisecond(200))
	for id, app := range c.apps {
		if got := len(app.flatOps()); got != 1 {
			t.Errorf("replica %v executed %d copies", id, got)
		}
	}
	if c.apps[0].resends == 0 {
		t.Error("retryHint was never invoked for the duplicate")
	}
}

// pumpSequential emulates the paper's client model: one outstanding request,
// retransmitted to all replicas until it executes everywhere.
func (c *cluster) pumpSequential(client types.NodeID, n int, prefix string, deadline types.Time) bool {
	done := 0
	for i := 0; i < n; i++ {
		req := c.request(client, fmt.Sprintf("%s%d", prefix, i))
		done++
		for !c.allExecuted(done)() {
			if c.net.Now() > deadline {
				return false
			}
			c.sendToAll(req)
			c.net.RunUntil(c.allExecuted(done), c.net.Now()+types.Millisecond(50))
		}
	}
	return true
}

func TestLossyNetworkStillMakesProgress(t *testing.T) {
	c := newCluster(t, 8, nil)
	for _, a := range c.top.Agreement {
		for _, b := range c.top.Agreement {
			if a != b {
				c.net.SetLink(a, b, transport.LinkOpts{Drop: 0.15, MinDelay: 50_000, MaxDelay: 400_000})
			}
		}
	}
	if !c.pumpSequential(100, 8, "lossy", types.Millisecond(20000)) {
		for id, app := range c.apps {
			t.Logf("replica %v executed %d", id, len(app.flatOps()))
		}
		t.Fatal("cluster stalled under 15% message loss")
	}
	c.assertConsistentLogs()
}

func TestCheckpointsAdvanceAndGC(t *testing.T) {
	c := newCluster(t, 9, func(cfg *Config) {
		cfg.CheckpointInterval = 4
		cfg.WindowSize = 16
		cfg.BatchSize = 1
	})
	const n = 20
	for i := 0; i < n; i++ {
		c.sendTo(0, c.request(100, fmt.Sprintf("c%d", i)))
	}
	if !c.net.RunUntil(c.allExecuted(n), types.Millisecond(3000)) {
		t.Fatal("requests never executed")
	}
	// Give checkpoint traffic time to settle.
	c.net.RunUntil(func() bool {
		for _, r := range c.replicas {
			if r.LastStable() < 16 {
				return false
			}
		}
		return true
	}, c.net.Now()+types.Millisecond(1000))
	for id, r := range c.replicas {
		if r.LastStable() < 16 {
			t.Errorf("replica %v stable checkpoint = %d, want >= 16", id, r.LastStable())
		}
		if len(r.insts) > int(r.cfg.WindowSize) {
			t.Errorf("replica %v retains %d instances; log not garbage collected", id, len(r.insts))
		}
		if c.apps[id].syncs == 0 {
			t.Errorf("replica %v never synced its app", id)
		}
	}
}

func TestViewChangeOnCrashedPrimary(t *testing.T) {
	c := newCluster(t, 10, nil)
	c.net.Crash(0) // view-0 primary
	req := c.request(100, "survive")
	c.sendToAll(req)
	if !c.net.RunUntil(c.allExecuted(1, 0), types.Millisecond(3000)) {
		for id, r := range c.replicas {
			t.Logf("replica %v: view=%d inVC=%v execs=%d", id, r.View(), r.InViewChange(), len(c.apps[id].flatOps()))
		}
		t.Fatal("request not executed after primary crash")
	}
	for _, id := range []types.NodeID{1, 2, 3} {
		if c.replicas[id].View() == 0 {
			t.Errorf("replica %v still in view 0 after primary crash", id)
		}
	}
	c.assertConsistentLogs()
}

func TestViewChangePreservesCommittedRequests(t *testing.T) {
	c := newCluster(t, 11, nil)
	// Commit a prefix in view 0.
	for i := 0; i < 5; i++ {
		c.sendTo(0, c.request(100, fmt.Sprintf("pre%d", i)))
	}
	if !c.net.RunUntil(c.allExecuted(5), types.Millisecond(1000)) {
		t.Fatal("prefix never executed")
	}
	// Kill the primary and push more work through the new view, one
	// outstanding request at a time with retransmission (the paper's
	// client model).
	c.net.Crash(0)
	done := 5
	for i := 0; i < 3; i++ {
		req := c.request(101, fmt.Sprintf("post%d", i))
		done++
		deadline := c.net.Now() + types.Millisecond(5000)
		for !c.allExecuted(done, 0)() {
			if c.net.Now() > deadline {
				t.Fatal("post-view-change requests never executed")
			}
			c.sendToAll(req)
			c.net.RunUntil(c.allExecuted(done, 0), c.net.Now()+types.Millisecond(50))
		}
	}
	c.assertConsistentLogs()
	// The prefix must be intact on the survivors: the first five executed
	// operations are exactly the pre-crash requests (ordering across
	// concurrent sends is the cluster's choice, not timestamp order).
	ops := c.apps[1].flatOps()
	got := make(map[string]bool, 5)
	for i := 0; i < 5; i++ {
		got[ops[i]] = true
	}
	for i := 0; i < 5; i++ {
		want := fmt.Sprintf("n100:%d:pre%d", i+1, i)
		if !got[want] {
			t.Errorf("pre-crash request %q missing from the executed prefix %v", want, ops[:5])
		}
	}
}

func TestSuccessiveViewChanges(t *testing.T) {
	c := newCluster(t, 12, nil)
	// Crash primaries of views 0 and 1: the cluster must reach view 2.
	c.net.Crash(0)
	c.net.Crash(1)
	// f=1 tolerates one fault; two crashes exceed the threshold, so weaken
	// the test to: crash view-0 primary, let view 1 install, then crash
	// the view-1 primary too after reviving 0.
	c.net.Revive(1)
	req := c.request(100, "first")
	c.sendToAll(req)
	if !c.net.RunUntil(c.allExecuted(1, 0), types.Millisecond(3000)) {
		t.Fatal("no progress after first crash")
	}
	view := c.replicas[1].View()
	if view == 0 {
		t.Fatal("view did not advance")
	}
	// Now crash the current primary and revive 0: progress must continue.
	c.net.Revive(0)
	primary := c.top.Primary(view)
	c.net.Crash(primary)
	c.sendToAll(c.request(101, "second"))
	if !c.net.RunUntil(c.allExecuted(2, primary), types.Millisecond(5000)) {
		t.Fatal("no progress after second crash")
	}
	c.assertConsistentLogs()
}

// byzantinePrimary equivocates: it proposes different batches for the same
// sequence number to different backups.
type byzantinePrimary struct {
	c      *cluster
	scheme auth.Scheme
}

func (b *byzantinePrimary) Deliver(from types.NodeID, data []byte, now types.Time) {
	msg, err := wire.Unmarshal(data)
	if err != nil {
		return
	}
	req, ok := msg.(*wire.Request)
	if !ok {
		return
	}
	send := b.c.net.Bind(0)
	t := types.Timestamp(now) + 1
	mk := func(op string) *wire.PrePrepare {
		r2 := *req
		r2.Op = []byte(op)
		// Note: forged request body invalidates the client attestation,
		// so backups reject one variant outright; the other is the
		// original. Equivocate on ND time instead, which keeps both
		// valid but distinct.
		pp := &wire.PrePrepare{View: 0, Seq: 1, ND: types.NonDet{Time: t, Rand: types.ComputeNonDetRand(1, t)}, Requests: []wire.Request{*req}, Primary: 0}
		_ = r2
		att, _ := b.scheme.Attest(auth.KindPrePrepare, pp.OrderDigest(), b.c.top.Agreement)
		pp.Att = att
		t++ // next variant differs in time → different digest
		return pp
	}
	send(1, wire.Marshal(mk("a")))
	ppB := mk("b")
	send(2, wire.Marshal(ppB))
	send(3, wire.Marshal(ppB))
}

func (b *byzantinePrimary) Tick(now types.Time) {}

func TestEquivocatingPrimaryIsReplaced(t *testing.T) {
	c := newCluster(t, 14, nil)
	// Replace replica 0 (view-0 primary) with an equivocator holding the
	// same keys.
	evil := &byzantinePrimary{c: c, scheme: c.schemes[0]}
	delete(c.apps, 0)
	delete(c.replicas, 0)
	c.replaceNode(0, evil)

	req := c.request(100, "equiv")
	c.sendToAll(req)
	ok := c.net.RunUntil(func() bool {
		for _, id := range []types.NodeID{1, 2, 3} {
			if len(c.apps[id].flatOps()) < 1 {
				return false
			}
		}
		return true
	}, types.Millisecond(5000))
	if !ok {
		t.Fatal("cluster did not recover from equivocating primary")
	}
	for _, id := range []types.NodeID{1, 2, 3} {
		if c.replicas[id].View() == 0 {
			t.Errorf("replica %v never left the equivocator's view", id)
		}
	}
	c.assertConsistentLogs()
}

func TestLaggingReplicaCatchesUpViaStateTransfer(t *testing.T) {
	c := newCluster(t, 15, func(cfg *Config) {
		cfg.CheckpointInterval = 4
		cfg.WindowSize = 16
		cfg.BatchSize = 1
	})
	// Take backup 3 offline and run past several checkpoints.
	c.net.Crash(3)
	const n = 24
	for i := 0; i < n; i++ {
		c.sendTo(0, c.request(100, fmt.Sprintf("st%d", i)))
	}
	if !c.net.RunUntil(c.allExecuted(n, 3), types.Millisecond(3000)) {
		t.Fatal("live replicas never executed the workload")
	}
	if c.replicas[0].LastStable() == 0 {
		t.Fatal("no stable checkpoint formed; test is vacuous")
	}
	// Revive 3: status gossip must drive it back to parity.
	c.net.Revive(3)
	ok := c.net.RunUntil(func() bool {
		return len(c.apps[3].flatOps()) >= n
	}, c.net.Now()+types.Millisecond(5000))
	if !ok {
		t.Fatalf("revived replica caught up only to %d/%d (lastExec=%d, lastStable=%d)",
			len(c.apps[3].flatOps()), n, c.replicas[3].LastExecuted(), c.replicas[3].LastStable())
	}
	c.assertConsistentLogs()
}

// replaceNode swaps the transport binding of an existing node for a new
// handler (test helper emulating a Byzantine takeover).
func (c *cluster) replaceNode(id types.NodeID, node transport.Node) {
	c.t.Helper()
	c.net.Revive(id)
	c.net.Swap(id, node)
}

func TestBackpressurePausesProgress(t *testing.T) {
	c := newCluster(t, 16, nil)
	for _, app := range c.apps {
		app.busy = true
	}
	c.sendTo(0, c.request(100, "stuck"))
	c.net.Run(types.Millisecond(50))
	for id, app := range c.apps {
		if len(app.log) != 0 {
			t.Errorf("replica %v executed while app was busy", id)
		}
	}
	// Releasing backpressure resumes execution. (Do it before the
	// suspicion timeout fires to avoid a spurious view change.)
	for _, app := range c.apps {
		app.busy = false
	}
	if !c.net.RunUntil(c.allExecuted(1), c.net.Now()+types.Millisecond(1000)) {
		t.Fatal("execution did not resume after backpressure release")
	}
}

func TestPrimaryIgnoresOutOfWindowProposals(t *testing.T) {
	c := newCluster(t, 17, func(cfg *Config) {
		cfg.CheckpointInterval = 4
		cfg.WindowSize = 8
		cfg.BatchSize = 1
	})
	// Saturate the window with unexecutable work by making apps busy:
	// commits stall at execution, checkpoints never form, so the primary
	// must stop proposing at the high watermark.
	for _, app := range c.apps {
		app.busy = true
	}
	for i := 0; i < 30; i++ {
		c.sendTo(0, c.request(100, fmt.Sprintf("w%d", i)))
	}
	c.net.Run(types.Millisecond(40))
	r0 := c.replicas[0]
	if r0.nextSeq > r0.lastStable+r0.cfg.WindowSize {
		t.Errorf("primary proposed seq %d beyond high watermark %d", r0.nextSeq, r0.lastStable+r0.cfg.WindowSize)
	}
}

// TestThresholdIntegrationSmoke ties the agreement engine to the threshold
// package: a committed order digest signed by shares and combined verifies.
// (Full reply-certificate flows are covered in the core package tests.)
func TestThresholdIntegrationSmoke(t *testing.T) {
	pub, shares, err := threshold.Deal(threshold.NewSeededReader("pbft-smoke"), 512, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	od := wire.OrderDigest(1, 2, types.DigestBytes([]byte("batch")), types.NonDet{})
	rng := threshold.NewSeededReader("pbft-smoke-sign")
	s1, _ := shares[0].Sign(rng, od)
	s2, _ := shares[2].Sign(rng, od)
	sig, err := pub.Combine(od, []*threshold.SigShare{s1, s2})
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Verify(od, sig); err != nil {
		t.Fatal(err)
	}
}
