package pbft

import (
	"fmt"
	"testing"

	"repro/internal/auth"
	"repro/internal/transport"
	"repro/internal/types"
	"repro/internal/wire"
)

// TestPropertyConsistencyUnderRandomSchedules replays the same workload
// through many different network schedules (loss, duplication, jitter — one
// per seed) and asserts the core safety property every time: all replicas
// execute the same operations in the same order, exactly once.
func TestPropertyConsistencyUnderRandomSchedules(t *testing.T) {
	seeds := []int64{101, 202, 303, 404, 505, 606}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			c := newCluster(t, seed, func(cfg *Config) {
				cfg.CheckpointInterval = 4
				cfg.WindowSize = 16
				cfg.BatchSize = 2
			})
			// The app answers retransmissions of ordered requests (as the
			// real message queue does from cache_c / pendingSends). With
			// resendOK=false the engine re-proposes old requests by design
			// (§3.1.2) and downstream execution dedups them — that path is
			// covered by the core integration tests.
			for _, app := range c.apps {
				app.resendOK = true
			}
			for _, a := range c.top.Agreement {
				for _, b := range c.top.Agreement {
					if a != b {
						c.net.SetLink(a, b, transport.LinkOpts{
							Drop: 0.05, Dup: 0.05, MinDelay: 20_000, MaxDelay: 900_000,
						})
					}
				}
			}
			if !c.pumpSequential(100, 6, "p", types.Millisecond(30000)) {
				t.Fatal("workload did not complete")
			}
			c.assertConsistentLogs()
			// Exactly-once: six distinct operations, no duplicates.
			for id, app := range c.apps {
				ops := app.flatOps()
				seen := make(map[string]bool)
				for _, op := range ops {
					if seen[op] {
						t.Fatalf("replica %v executed %q twice", id, op)
					}
					seen[op] = true
				}
				if len(ops) != 6 {
					t.Fatalf("replica %v executed %d ops, want 6", id, len(ops))
				}
			}
		})
	}
}

// TestStatusCatchupDeliversCommitProofs drives the catch-up path directly:
// a replica that missed a committed batch receives it as a transferable
// CommitProof in response to its status gossip.
func TestStatusCatchupDeliversCommitProofs(t *testing.T) {
	c := newCluster(t, 42, nil)
	// Partition replica 3 away, commit a request among 0-2.
	c.net.Partition([]types.NodeID{3}, []types.NodeID{0, 1, 2, 100})
	c.sendTo(0, c.request(100, "missed"))
	if !c.net.RunUntil(c.allExecuted(1, 3), types.Millisecond(2000)) {
		t.Fatal("live replicas never executed")
	}
	if len(c.apps[3].flatOps()) != 0 {
		t.Fatal("partitioned replica executed")
	}
	// Heal: status gossip reveals the lag; peers answer with CommitProofs.
	c.net.Heal()
	if !c.net.RunUntil(func() bool { return len(c.apps[3].flatOps()) == 1 }, c.net.Now()+types.Millisecond(2000)) {
		t.Fatal("healed replica never caught up via commit proofs")
	}
	c.assertConsistentLogs()
}

// TestCommitProofValidation exercises onCommitProof's checks directly.
func TestCommitProofValidation(t *testing.T) {
	c := newCluster(t, 43, nil)
	c.sendTo(0, c.request(100, "x"))
	if !c.net.RunUntil(c.allExecuted(1), types.Millisecond(1000)) {
		t.Fatal("setup failed")
	}
	// Grab the committed instance from replica 0 to forge proofs.
	r0 := c.replicas[0]
	var in *instance
	for _, i := range r0.insts {
		if i.committed {
			in = i
		}
	}
	if in == nil {
		t.Fatal("no committed instance")
	}
	atts := make([]auth.Attestation, 0)
	for _, v := range in.commits {
		atts = append(atts, v.att)
	}

	fresh := newCluster(t, 43, nil) // same seed → same keys
	r := fresh.replicas[1]
	// Too few commits.
	r.onCommitProof(&wire.CommitProof{PP: *in.pp, Commits: atts[:2]}, 0)
	if r.LastExecuted() != 0 {
		t.Fatal("accepted sub-quorum commit proof")
	}
	// Tampered batch (digest no longer matches attestations).
	bad := *in.pp
	bad.Requests = []wire.Request{{Client: 100, Timestamp: 9, Op: []byte("evil")}}
	r.onCommitProof(&wire.CommitProof{PP: bad, Commits: atts}, 0)
	if r.LastExecuted() != 0 {
		t.Fatal("accepted commit proof over a tampered batch")
	}
	// Pre-prepare not from the view's primary.
	bad2 := *in.pp
	bad2.Att.Node = 1
	r.onCommitProof(&wire.CommitProof{PP: bad2, Commits: atts}, 0)
	if r.LastExecuted() != 0 {
		t.Fatal("accepted commit proof with a non-primary pre-prepare")
	}
	// The genuine proof applies.
	r.onCommitProof(&wire.CommitProof{PP: *in.pp, Commits: atts}, 0)
	if r.LastExecuted() != 1 {
		t.Fatal("rejected a valid commit proof")
	}
	if len(fresh.apps[1].flatOps()) != 1 {
		t.Fatal("commit proof did not reach the app")
	}
}

// TestWindowBoundsRejectOldAndFarFuture checks watermark enforcement on the
// message handlers.
func TestWindowBoundsRejectOldAndFarFuture(t *testing.T) {
	c := newCluster(t, 44, func(cfg *Config) {
		cfg.CheckpointInterval = 4
		cfg.WindowSize = 8
	})
	r := c.replicas[1]
	// A pre-prepare far beyond the high watermark must be ignored.
	req := c.request(100, "w")
	tNow := types.Timestamp(types.Millisecond(1))
	pp := &wire.PrePrepare{
		View: 0, Seq: 100,
		ND:       types.NonDet{Time: tNow, Rand: types.ComputeNonDetRand(100, tNow)},
		Requests: []wire.Request{*req},
		Primary:  0,
	}
	att, _ := c.schemes[0].Attest(auth.KindPrePrepare, pp.OrderDigest(), c.top.Agreement)
	pp.Att = att
	if _, ok := r.validatePrePrepare(pp, types.Millisecond(1)); ok {
		t.Error("accepted pre-prepare beyond the high watermark")
	}
	// Sequence number zero (below low watermark) is equally invalid.
	pp.Seq = 0
	pp.ND.Rand = types.ComputeNonDetRand(0, tNow)
	att, _ = c.schemes[0].Attest(auth.KindPrePrepare, pp.OrderDigest(), c.top.Agreement)
	pp.Att = att
	if _, ok := r.validatePrePrepare(pp, types.Millisecond(1)); ok {
		t.Error("accepted pre-prepare at sequence zero")
	}
}

// TestViewChangeCarriesPreparedBatch ensures a batch that prepared (but did
// not commit) before the primary died is re-proposed, not lost or forked.
func TestViewChangeCarriesPreparedBatch(t *testing.T) {
	c := newCluster(t, 45, nil)
	req := c.request(100, "carried")
	c.sendTo(0, req)
	// Let the batch prepare everywhere, then cut the primary off before
	// commits can gather. With default links this is timing-dependent, so
	// instead: crash the primary immediately after it proposes by running
	// only until any backup has prepared.
	prepared := func() bool {
		for _, id := range []types.NodeID{1, 2, 3} {
			r := c.replicas[id]
			for _, in := range r.insts {
				if in.prepared {
					return true
				}
			}
		}
		return false
	}
	if !c.net.RunUntil(prepared, types.Millisecond(1000)) {
		t.Fatal("batch never prepared")
	}
	c.net.Crash(0)
	// The request must still execute exactly once in the new view.
	if !c.net.RunUntil(c.allExecuted(1, 0), types.Millisecond(5000)) {
		// Not necessarily an error if it committed pre-crash; check logs.
		t.Fatal("prepared request lost across the view change")
	}
	c.assertConsistentLogs()
	for _, id := range []types.NodeID{1, 2, 3} {
		ops := c.apps[id].flatOps()
		count := 0
		for _, op := range ops {
			if op == "n100:1:carried" {
				count++
			}
		}
		if count != 1 {
			t.Errorf("replica %v executed the carried request %d times", id, count)
		}
	}
}
