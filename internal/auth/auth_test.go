package auth

import (
	"crypto/ed25519"
	"testing"
	"testing/quick"

	"repro/internal/types"
)

var master = []byte("test-master-secret")

func macSchemes(t *testing.T, ids ...types.NodeID) map[types.NodeID]*MACScheme {
	t.Helper()
	out := make(map[types.NodeID]*MACScheme, len(ids))
	for _, id := range ids {
		out[id] = NewMACScheme(NewKeyRing(master, id, ids))
	}
	return out
}

func TestPairSecretSymmetric(t *testing.T) {
	if string(PairSecret(master, 1, 2)) != string(PairSecret(master, 2, 1)) {
		t.Error("PairSecret is not symmetric")
	}
	if string(PairSecret(master, 1, 2)) == string(PairSecret(master, 1, 3)) {
		t.Error("PairSecret collides across pairs")
	}
}

func TestMACAttestVerify(t *testing.T) {
	s := macSchemes(t, 1, 2, 3, 4)
	d := types.DigestBytes([]byte("payload"))
	att, err := s[1].Attest(KindCommit, d, []types.NodeID{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if att.Node != 1 {
		t.Errorf("attestation node = %v, want 1", att.Node)
	}
	if err := s[2].Verify(KindCommit, d, att); err != nil {
		t.Errorf("node 2 verify: %v", err)
	}
	if err := s[3].Verify(KindCommit, d, att); err != nil {
		t.Errorf("node 3 verify: %v", err)
	}
	// Node 4 was not a destination: no slot.
	if err := s[4].Verify(KindCommit, d, att); err != ErrNoSlot {
		t.Errorf("node 4 verify = %v, want ErrNoSlot", err)
	}
}

func TestMACVerifyRejectsWrongDigestAndKind(t *testing.T) {
	s := macSchemes(t, 1, 2)
	d := types.DigestBytes([]byte("payload"))
	att, _ := s[1].Attest(KindCommit, d, []types.NodeID{2})
	if err := s[2].Verify(KindCommit, types.DigestBytes([]byte("other")), att); err != ErrBadMAC {
		t.Errorf("wrong digest: got %v, want ErrBadMAC", err)
	}
	if err := s[2].Verify(KindPrepare, d, att); err != ErrBadMAC {
		t.Errorf("wrong kind (domain separation): got %v, want ErrBadMAC", err)
	}
}

func TestMACVerifyRejectsForgedSender(t *testing.T) {
	s := macSchemes(t, 1, 2, 3)
	d := types.DigestBytes([]byte("payload"))
	att, _ := s[1].Attest(KindCommit, d, []types.NodeID{2})
	att.Node = 3 // node 1 pretends to be node 3
	if err := s[2].Verify(KindCommit, d, att); err == nil {
		t.Error("verify accepted attestation with forged sender")
	}
}

func TestMACVectorDeduplicatesAndSkipsSelf(t *testing.T) {
	s := macSchemes(t, 1, 2)
	d := types.DigestBytes([]byte("x"))
	att, err := s[1].Attest(KindReply, d, []types.NodeID{2, 2, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s[2].Verify(KindReply, d, att); err != nil {
		t.Error(err)
	}
	// vector header(4) + one slot (4 + 16)
	if len(att.Proof) != 4+4+16 {
		t.Errorf("proof len = %d, want one deduplicated slot", len(att.Proof))
	}
}

func TestMACVerifyMalformedProof(t *testing.T) {
	s := macSchemes(t, 1, 2)
	d := types.DigestBytes([]byte("x"))
	for _, proof := range [][]byte{nil, {1}, {0, 0, 0, 5, 1, 2, 3}} {
		if err := s[2].Verify(KindReply, d, Attestation{Node: 1, Proof: proof}); err == nil {
			t.Errorf("verify accepted malformed proof %v", proof)
		}
	}
}

func sigSchemes(t *testing.T, ids ...types.NodeID) map[types.NodeID]*SigScheme {
	t.Helper()
	dir := NewDirectory(nil)
	privs := make(map[types.NodeID]ed25519.PrivateKey, len(ids))
	for _, id := range ids {
		pub, priv, err := ed25519.GenerateKey(nil)
		if err != nil {
			t.Fatal(err)
		}
		dir.Add(id, pub)
		privs[id] = priv
	}
	out := make(map[types.NodeID]*SigScheme, len(ids))
	for _, id := range ids {
		out[id] = NewSigScheme(id, privs[id], dir)
	}
	return out
}

func TestSigAttestVerify(t *testing.T) {
	s := sigSchemes(t, 1, 2, 3)
	d := types.DigestBytes([]byte("vc"))
	att, err := s[1].Attest(KindViewChange, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Signatures are universally verifiable and transferable.
	for _, v := range []types.NodeID{1, 2, 3} {
		if err := s[v].Verify(KindViewChange, d, att); err != nil {
			t.Errorf("node %v verify: %v", v, err)
		}
	}
	if err := s[2].Verify(KindNewView, d, att); err != ErrBadSignature {
		t.Errorf("kind confusion: got %v, want ErrBadSignature", err)
	}
	att.Node = 2
	if err := s[3].Verify(KindViewChange, d, att); err != ErrBadSignature {
		t.Errorf("forged sender: got %v, want ErrBadSignature", err)
	}
}

func TestSigVerifyUnknownNode(t *testing.T) {
	s := sigSchemes(t, 1)
	d := types.DigestBytes([]byte("z"))
	att, _ := s[1].Attest(KindRequest, d, nil)
	att.Node = 42
	if err := s[1].Verify(KindRequest, d, att); err == nil {
		t.Error("verify accepted attestation from unknown node")
	}
}

func TestQuorum(t *testing.T) {
	q := NewQuorum(3)
	if q.Add(Attestation{Node: 1}) {
		t.Error("quorum complete after 1")
	}
	if q.Add(Attestation{Node: 1}) {
		t.Error("duplicate node counted twice")
	}
	q.Add(Attestation{Node: 2})
	if !q.Add(Attestation{Node: 3}) {
		t.Error("quorum not complete after 3 distinct")
	}
	atts := q.Attestations()
	if len(atts) != 3 {
		t.Fatalf("attestations = %d, want 3", len(atts))
	}
	for i := 1; i < len(atts); i++ {
		if atts[i-1].Node >= atts[i].Node {
			t.Error("attestations not sorted by node")
		}
	}
}

func TestCountDistinct(t *testing.T) {
	s := sigSchemes(t, 1, 2, 3, 4)
	d := types.DigestBytes([]byte("cert"))
	var atts []Attestation
	for _, id := range []types.NodeID{1, 2, 3, 1} { // 1 appears twice
		a, _ := s[id].Attest(KindCommit, d, nil)
		atts = append(atts, a)
	}
	// One bogus attestation.
	atts = append(atts, Attestation{Node: 4, Proof: []byte("junk")})
	if got := CountDistinct(s[1], KindCommit, d, atts, nil); got != 3 {
		t.Errorf("CountDistinct = %d, want 3", got)
	}
	allowed := map[types.NodeID]bool{1: true, 2: true}
	if got := CountDistinct(s[1], KindCommit, d, atts, allowed); got != 2 {
		t.Errorf("CountDistinct with allowed set = %d, want 2", got)
	}
}

func TestBindDomainSeparation(t *testing.T) {
	d := types.DigestBytes([]byte("m"))
	f := func(a, b uint8) bool {
		if a == b {
			return true
		}
		return Bind(Kind(a), d) != Bind(Kind(b), d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMACQuickDigests(t *testing.T) {
	s := macSchemes(t, 1, 2)
	f := func(payload []byte) bool {
		d := types.DigestBytes(payload)
		att, err := s[1].Attest(KindOrder, d, []types.NodeID{2})
		if err != nil {
			return false
		}
		return s[2].Verify(KindOrder, d, att) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
