package auth

import (
	"encoding/binary"
	"testing"

	"repro/internal/types"
)

// FuzzMACVectorDecode throws arbitrary bytes at the MAC-vector parser in
// Verify and pins its acceptance condition: the only proofs that pass are
// canonically encoded vectors (exact length for the declared slot count)
// whose first slot for this verifier carries the genuine pairwise MAC.
// Everything else — truncated vectors, padded vectors, inflated counts,
// slots for other nodes, flipped MAC bits — must be rejected, and nothing
// may panic or read out of bounds.
func FuzzMACVectorDecode(f *testing.F) {
	ids := []types.NodeID{1, 2, 3, 4}
	attester := NewMACScheme(NewKeyRing(master, 1, ids))
	verifier := NewMACScheme(NewKeyRing(master, 2, ids))
	d := types.DigestBytes([]byte("fuzz-vector"))

	good, err := attester.Attest(KindCommit, d, ids)
	if err != nil {
		f.Fatal(err)
	}
	// The reference MAC node 1 computes toward node 2, extracted from a
	// single-slot vector: header(4) + id(4) + mac.
	ref, err := attester.Attest(KindCommit, d, []types.NodeID{2})
	if err != nil {
		f.Fatal(err)
	}
	refMAC := ref.Proof[8 : 8+macSize]

	f.Add(good.Proof)                     // valid three-slot vector
	f.Add(ref.Proof)                      // valid single-slot vector
	f.Add([]byte{})                       // no header
	f.Add([]byte{0, 0, 0, 0})             // empty vector
	f.Add(good.Proof[:len(good.Proof)-1]) // truncated final MAC
	f.Add(append(good.Proof, 0))          // trailing padding
	wrongSlot := append([]byte(nil), ref.Proof...)
	binary.BigEndian.PutUint32(wrongSlot[4:8], 3) // node 3's id over node 2's MAC
	f.Add(wrongSlot)
	inflated := append([]byte(nil), ref.Proof...)
	binary.BigEndian.PutUint32(inflated[:4], 2) // claims two slots, carries one
	f.Add(inflated)

	f.Fuzz(func(t *testing.T, proof []byte) {
		err := verifier.Verify(KindCommit, d, Attestation{Node: 1, Proof: proof})
		if err != nil {
			return // rejection is always a safe outcome
		}
		// Accepted: re-derive what acceptance requires and fail on any gap.
		if len(proof) < 4 {
			t.Fatalf("accepted %d-byte proof with no header", len(proof))
		}
		n := int(binary.BigEndian.Uint32(proof[:4]))
		if len(proof)-4 != n*(4+macSize) {
			t.Fatalf("accepted non-canonical vector: %d slots declared, %d payload bytes", n, len(proof)-4)
		}
		for i := 0; i < n; i++ {
			slot := proof[4+i*(4+macSize) : 4+(i+1)*(4+macSize)]
			if types.NodeID(int32(binary.BigEndian.Uint32(slot[:4]))) != 2 {
				continue
			}
			// Verify checks the first slot addressed to this node.
			if string(slot[4:]) != string(refMAC) {
				t.Fatalf("accepted vector whose first slot for the verifier holds a wrong MAC")
			}
			return
		}
		t.Fatalf("accepted vector with no slot for the verifier")
	})
}

// The deterministic companions to the fuzz target: the specific rejection
// classes the issue calls out, pinned with named cases so a regression is
// attributable without a fuzz corpus.
func TestMACVectorRejectionClasses(t *testing.T) {
	ids := []types.NodeID{1, 2, 3}
	attester := NewMACScheme(NewKeyRing(master, 1, ids))
	verifier := NewMACScheme(NewKeyRing(master, 2, ids))
	d := types.DigestBytes([]byte("classes"))
	good, err := attester.Attest(KindCommit, d, ids)
	if err != nil {
		t.Fatal(err)
	}
	if err := verifier.Verify(KindCommit, d, good); err != nil {
		t.Fatalf("control: %v", err)
	}

	mutate := func(fn func(p []byte) []byte) Attestation {
		p := fn(append([]byte(nil), good.Proof...))
		return Attestation{Node: 1, Proof: p}
	}
	cases := []struct {
		name string
		att  Attestation
	}{
		{"truncated header", mutate(func(p []byte) []byte { return p[:3] })},
		{"truncated mid-slot", mutate(func(p []byte) []byte { return p[:len(p)-macSize/2] })},
		{"trailing garbage", mutate(func(p []byte) []byte { return append(p, 0xFF) })},
		{"count overstates slots", mutate(func(p []byte) []byte {
			binary.BigEndian.PutUint32(p[:4], binary.BigEndian.Uint32(p[:4])+1)
			return p
		})},
		{"count understates slots", mutate(func(p []byte) []byte {
			binary.BigEndian.PutUint32(p[:4], binary.BigEndian.Uint32(p[:4])-1)
			return p
		})},
		{"wrong slot id", mutate(func(p []byte) []byte {
			// Retarget node 2's slot (first in sorted order) to node 3.
			binary.BigEndian.PutUint32(p[4:8], 3)
			return p
		})},
		{"flipped MAC bit", mutate(func(p []byte) []byte {
			p[8] ^= 1 // first byte of node 2's MAC
			return p
		})},
	}
	for _, tc := range cases {
		if err := verifier.Verify(KindCommit, d, tc.att); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
