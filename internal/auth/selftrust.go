package auth

import "repro/internal/types"

// selfTrust wraps a Scheme so that attestations claiming to come from the
// wrapping node itself verify unconditionally.
//
// MAC authenticator vectors carry no slot for their own author — a node
// cannot (and need not) check a MAC it would have computed itself. That is
// fine on the live vote paths, where a replica never receives its own votes
// back, but relayed certificates legitimately contain the validator's own
// attestation: a commit proof served to a lagging replica includes its own
// commit, view-change evidence includes its own prepare or pre-prepare, and
// a recovering primary re-validates the NEW-VIEW it built. Under a
// signature scheme those entries verify like any other; under MACs they are
// structurally unverifiable and would sink the whole certificate.
//
// SelfTrust is therefore sound ONLY on certificate-validation paths, where
// the digest being attested is recomputed from the certificate's own
// contents and the quorum rule still demands the usual complement of
// verifiable third-party attestations. It must never guard a live vote
// handler: there, accepting a spoofed "own" attestation would let a peer
// inject votes under the victim's identity. A forged self-entry in a
// certificate inflates its count by at most one and is accepted only by the
// node it impersonates, which the 2f/2f+1 quorum margins absorb — the same
// bound Castro–Liskov's MAC-authenticated PBFT accepts.
type selfTrust struct {
	inner Scheme
	self  types.NodeID
}

// SelfTrust returns s with self-attestations short-circuited to valid, for
// certificate validation. See the selfTrust doc comment for the safety
// argument and the paths where this is (and is not) sound.
func SelfTrust(s Scheme, self types.NodeID) Scheme {
	return selfTrust{inner: s, self: self}
}

func (s selfTrust) Attest(kind Kind, d types.Digest, dests []types.NodeID) (Attestation, error) {
	return s.inner.Attest(kind, d, dests)
}

func (s selfTrust) Verify(kind Kind, d types.Digest, att Attestation) error {
	if att.Node == s.self {
		return nil
	}
	return s.inner.Verify(kind, d, att)
}
