package auth

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/types"
)

func TestNewVerifyPoolInlineBelowTwo(t *testing.T) {
	for _, w := range []int{-1, 0, 1} {
		if p := NewVerifyPool(w); p != nil {
			t.Errorf("NewVerifyPool(%d) = %v, want nil (inline)", w, p)
		}
	}
	if NewVerifyPool(4).Workers() != 4 {
		t.Error("Workers() lost the bound")
	}
	var nilPool *VerifyPool
	if nilPool.Workers() != 0 {
		t.Error("nil pool Workers() != 0")
	}
}

// Run must visit every index exactly once, pooled or inline.
func TestVerifyPoolRunCoversAllIndexes(t *testing.T) {
	for _, pool := range []*VerifyPool{nil, NewVerifyPool(2), NewVerifyPool(7)} {
		for _, n := range []int{0, 1, 2, 3, 5, 64} {
			hits := make([]atomic.Int32, n)
			if err := pool.Run(n, func(i int) error {
				hits[i].Add(1)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("pool=%d n=%d: index %d visited %d times", pool.Workers(), n, i, got)
				}
			}
		}
	}
}

// The reported error must be the lowest-index failure regardless of
// scheduling — the property that keeps the replica cores deterministic when
// verification fans out.
func TestVerifyPoolRunLowestIndexError(t *testing.T) {
	pool := NewVerifyPool(8)
	errAt := func(bad ...int) func(int) error {
		set := make(map[int]bool, len(bad))
		for _, i := range bad {
			set[i] = true
		}
		return func(i int) error {
			if set[i] {
				return fmt.Errorf("fail@%d", i)
			}
			return nil
		}
	}
	for trial := 0; trial < 50; trial++ {
		err := pool.Run(64, errAt(3, 17, 60))
		if err == nil || err.Error() != "fail@3" {
			t.Fatalf("trial %d: err = %v, want fail@3", trial, err)
		}
	}
	if err := pool.Run(64, errAt()); err != nil {
		t.Fatalf("all-ok run: %v", err)
	}
}

// Inline short-circuit (n < parallelMin or nil pool) stops at the first
// error; the pooled barrier still joins everything but reports the same
// error. Either way the observable result matches a serial loop.
func TestVerifyPoolInlineStopsEarly(t *testing.T) {
	var calls atomic.Int32
	err := (*VerifyPool)(nil).Run(10, func(i int) error {
		calls.Add(1)
		if i == 2 {
			return errors.New("stop")
		}
		return nil
	})
	if err == nil || err.Error() != "stop" {
		t.Fatalf("err = %v", err)
	}
	if calls.Load() != 3 {
		t.Errorf("inline run made %d calls after error at index 2, want 3", calls.Load())
	}
}

// CountDistinctPar must agree with the serial CountDistinct on every mix of
// valid, forged, duplicate, and non-member attestations.
func TestCountDistinctParMatchesSerial(t *testing.T) {
	s := macSchemes(t, 1, 2, 3, 4, 5)
	d := types.DigestBytes([]byte("count"))
	attest := func(from types.NodeID) Attestation {
		att, err := s[from].Attest(KindCommit, d, []types.NodeID{1, 2, 3, 4, 5})
		if err != nil {
			t.Fatal(err)
		}
		return att
	}
	forged := attest(3)
	forged.Proof = append([]byte(nil), forged.Proof...)
	forged.Proof[len(forged.Proof)-1] ^= 1
	atts := []Attestation{
		attest(2), attest(2), // duplicate node
		attest(3), forged, // valid beats nothing: dedup keeps first
		attest(4),
		attest(5), // filtered out by allowed set
	}
	allowed := map[types.NodeID]bool{2: true, 3: true, 4: true}
	want := CountDistinct(s[1], KindCommit, d, atts, allowed)
	if want != 3 {
		t.Fatalf("serial count = %d, want 3", want)
	}
	for _, workers := range []int{2, 3, 8} {
		if got := CountDistinctPar(NewVerifyPool(workers), s[1], KindCommit, d, atts, allowed); got != want {
			t.Errorf("workers=%d: count = %d, want %d", workers, got, want)
		}
	}
	if got := CountDistinctPar(NewVerifyPool(4), s[1], KindCommit, d, atts, nil); got != 4 {
		t.Errorf("nil allowed set: count = %d, want 4", got)
	}
}
