package auth

import (
	"errors"
	"testing"

	"repro/internal/obs"
	"repro/internal/types"
)

// The transferability split is the safety boundary of the MAC fast path:
// certificates that are replayed beyond their original destination set
// (view changes, new views, checkpoint-stability proofs) must be backed by
// signatures a third party can check. These tests pin both halves of the
// enforcement — the compile-time interface split and the runtime refusal.

// Compile-time: SigScheme is a TransferScheme; the pbft/execnode configs
// type their view-change and checkpoint scheme fields as TransferScheme, so
// a MACScheme can never be wired there.
var _ TransferScheme = (*SigScheme)(nil)

// Runtime pin of the negative half: if *MACScheme ever grows a Transferable
// method, the compile-time split silently widens to admit MAC vectors into
// view-change certificates. An interface type-assertion catches that the
// moment it happens.
func TestMACSchemeIsNotTransferable(t *testing.T) {
	var s Scheme = NewMACScheme(NewKeyRing(master, 1, []types.NodeID{1, 2}))
	if _, ok := s.(TransferScheme); ok {
		t.Fatal("*MACScheme implements TransferScheme; MAC vectors must never back transferable certificates")
	}
}

func TestMACSchemeRefusesTransferableKinds(t *testing.T) {
	s := macSchemes(t, 1, 2, 3, 4)
	d := types.DigestBytes([]byte("transferable"))
	dests := []types.NodeID{2, 3, 4}
	transferable := []Kind{KindViewChange, KindNewView, KindAgreeCheckpoint, KindExecCheckpoint}
	for _, kind := range transferable {
		if _, err := s[1].Attest(kind, d, dests); !errors.Is(err, ErrNonTransferable) {
			t.Errorf("Attest(kind %d) = %v, want ErrNonTransferable", kind, err)
		}
	}
	// Even a hand-built vector is refused at the verifier: a Byzantine
	// replica that bypasses its own Attest guard gains nothing.
	att, err := s[1].Attest(KindCommit, d, dests)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range transferable {
		if err := s[2].Verify(kind, d, att); !errors.Is(err, ErrNonTransferable) {
			t.Errorf("Verify(kind %d) = %v, want ErrNonTransferable", kind, err)
		}
	}
}

// The agreement-vote and order kinds stay MAC-able: the fast path the mode
// exists for, plus the legacy MACOrders option.
func TestMACSchemeAllowsAgreementKinds(t *testing.T) {
	s := macSchemes(t, 1, 2)
	d := types.DigestBytes([]byte("vote"))
	for _, kind := range []Kind{KindRequest, KindPrePrepare, KindPrepare, KindCommit, KindOrder, KindReply} {
		att, err := s[1].Attest(kind, d, []types.NodeID{2})
		if err != nil {
			t.Fatalf("Attest(kind %d): %v", kind, err)
		}
		if err := s[2].Verify(kind, d, att); err != nil {
			t.Errorf("Verify(kind %d): %v", kind, err)
		}
	}
}

// Signatures back transferable certificates, and stay verifiable by a node
// outside the original destination set — the property view changes rely on.
func TestSigSchemeTransferableKinds(t *testing.T) {
	s := sigSchemes(t, 1, 2, 3)
	d := types.DigestBytes([]byte("view-change"))
	for _, kind := range []Kind{KindViewChange, KindNewView, KindAgreeCheckpoint, KindExecCheckpoint} {
		att, err := s[1].Attest(kind, d, []types.NodeID{2})
		if err != nil {
			t.Fatalf("Attest(kind %d): %v", kind, err)
		}
		// Node 3 was not a destination; a transferable proof verifies anyway.
		if err := s[3].Verify(kind, d, att); err != nil {
			t.Errorf("third-party Verify(kind %d): %v", kind, err)
		}
	}
	if !s[1].Transferable() {
		t.Error("SigScheme.Transferable() = false")
	}
}

// Instrumentation wrappers must not change the transferability split:
// Instrument always returns a plain Scheme (even around a SigScheme), and
// InstrumentTransfer preserves the TransferScheme marker.
func TestInstrumentPreservesTransferSplit(t *testing.T) {
	reg := obs.NewRegistry()
	sig := sigSchemes(t, 1, 2)[1]
	mac := NewMACScheme(NewKeyRing(master, 1, []types.NodeID{1, 2}))

	if _, ok := Instrument(mac, reg, "mac", 1).(TransferScheme); ok {
		t.Error("Instrument(MACScheme) implements TransferScheme")
	}
	// Instrument deliberately erases the marker even around a SigScheme:
	// transferable-typed fields must be fed through InstrumentTransfer.
	if _, ok := Instrument(sig, reg, "ed25519", 1).(TransferScheme); ok {
		t.Error("Instrument(SigScheme) leaks the TransferScheme marker")
	}
	ts := InstrumentTransfer(sig, reg, "ed25519", 1)
	if !ts.Transferable() {
		t.Error("InstrumentTransfer lost the Transferable marker")
	}
	d := types.DigestBytes([]byte("wrapped"))
	att, err := ts.Attest(KindViewChange, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.Verify(KindViewChange, d, att); err != nil {
		t.Error(err)
	}
}
