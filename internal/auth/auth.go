// Package auth implements the paper's authentication certificates
// ⟨X⟩_{S,D,k}: proofs that k distinct nodes in a source set S vouched for a
// value X toward a destination set D (§2).
//
// Two of the paper's three certificate implementations live here:
//
//   - MAC authenticators (à la Castro & Liskov): an attestation is a vector
//     of HMAC-SHA256 values, one per destination, computed with pairwise
//     shared secrets. Cheap, but only each destination can verify its slot,
//     and proofs are not transferable to third parties outside D.
//   - Public-key signatures (Ed25519): universally verifiable and
//     transferable; used where certificates must convince third parties
//     (view changes, checkpoint proofs of stability).
//
// The third implementation, threshold signatures, has enough moving parts to
// warrant its own package (internal/threshold).
package auth

import (
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"sort"
	"sync"

	"repro/internal/types"
)

// Kind is a domain-separation label mixed into every attested digest so a
// proof for one protocol step can never be replayed as another.
type Kind uint8

// Attestation domains.
const (
	KindRequest Kind = iota + 1
	KindPrePrepare
	KindPrepare
	KindCommit
	KindAgreeCheckpoint
	KindViewChange
	KindNewView
	KindOrder // agreement replica's commit-certificate piece sent to executors
	KindReply
	KindExecCheckpoint
	KindReadRequest // client's certified-read probe to the execution replicas
	KindReadReply   // one executor's signed answer + applied watermark
)

// Bind mixes the domain label into a digest. All attestations are computed
// over Bind(kind, digest), never over raw digests.
func Bind(kind Kind, d types.Digest) types.Digest {
	var buf [1 + types.DigestSize]byte
	buf[0] = byte(kind)
	copy(buf[1:], d[:])
	return types.DigestBytes(buf[:])
}

// Attestation is one node's proof over a bound digest. For MAC schemes the
// proof is a vector of per-destination MACs; for signature schemes it is an
// Ed25519 signature.
type Attestation struct {
	Node  types.NodeID
	Proof []byte
}

// Scheme produces and verifies attestations on behalf of one node.
//
// Attest creates this node's attestation over digest for the destination set
// dests (ignored by signature schemes). Verify checks an attestation received
// by this node.
type Scheme interface {
	Attest(kind Kind, digest types.Digest, dests []types.NodeID) (Attestation, error)
	Verify(kind Kind, digest types.Digest, att Attestation) error
}

// TransferScheme marks a Scheme whose attestations are transferable: any
// third party holding the public material can verify them, so they may sit
// inside certificates that travel beyond their original destination set
// (view changes, new views, checkpoint proofs of stability). MAC vectors
// are deliberately NOT transferable — only each destination can check its
// own slot — so MACScheme does not implement this interface, and any config
// field typed TransferScheme is a compile-time guarantee that MAC
// authenticators can never be wired into a transferable certificate.
type TransferScheme interface {
	Scheme
	// Transferable is a marker; implementations with third-party-verifiable
	// proofs return true.
	Transferable() bool
}

// Errors returned by Verify.
var (
	ErrBadMAC       = errors.New("auth: MAC verification failed")
	ErrNoSlot       = errors.New("auth: MAC vector has no slot for this verifier")
	ErrBadSignature = errors.New("auth: signature verification failed")
	ErrUnknownNode  = errors.New("auth: no key material for node")
	// ErrNonTransferable rejects an attempt to use MAC vectors for a
	// certificate kind that must convince third parties.
	ErrNonTransferable = errors.New("auth: certificate kind requires a transferable (signature) scheme, not MACs")
)

// transferableOnly lists the attestation domains whose certificates leave
// their destination set: view-change and new-view certificates are replayed
// to replicas that join a view later, and checkpoint-stability proofs ride
// inside view changes and state transfer. A MAC vector presented to a node
// that was not among the original destinations is unverifiable, so MACScheme
// refuses these kinds outright (defense in depth behind the TransferScheme
// type split).
func transferableOnly(kind Kind) bool {
	switch kind {
	case KindViewChange, KindNewView, KindAgreeCheckpoint, KindExecCheckpoint:
		return true
	}
	return false
}

// --- MAC authenticators ---------------------------------------------------

// KeyRing holds the pairwise secrets one node shares with every other node.
// Secrets are derived from a deployment master secret as
// HMAC(master, min(a,b) || max(a,b)); a real deployment would provision them
// out of band, but the derivation keeps key management out of the protocol's
// way without changing any message format.
type KeyRing struct {
	self    types.NodeID
	secrets map[types.NodeID][]byte
	// states pools initialized HMAC instances per peer: hmac.New runs the
	// two-block key schedule on every call, which dominates MAC cost for
	// 33-byte bound digests. The pools are populated lazily and are safe
	// for the concurrent verification workers.
	states map[types.NodeID]*sync.Pool
}

// NewKeyRing derives the pairwise secrets between self and each peer.
func NewKeyRing(master []byte, self types.NodeID, peers []types.NodeID) *KeyRing {
	kr := &KeyRing{
		self:    self,
		secrets: make(map[types.NodeID][]byte, len(peers)),
		states:  make(map[types.NodeID]*sync.Pool, len(peers)),
	}
	for _, p := range peers {
		if p == self {
			continue
		}
		secret := PairSecret(master, self, p)
		kr.secrets[p] = secret
		kr.states[p] = &sync.Pool{New: func() any { return hmac.New(sha256.New, secret) }}
	}
	return kr
}

// mac computes the truncated pairwise MAC toward peer, reusing a pooled
// HMAC state. ok is false when no secret is shared with peer.
func (kr *KeyRing) mac(peer types.NodeID, kind Kind, digest types.Digest, out []byte) (sum []byte, ok bool) {
	pool := kr.states[peer]
	if pool == nil {
		return nil, false
	}
	h := pool.Get().(hash.Hash)
	h.Reset()
	bound := Bind(kind, digest)
	h.Write(bound[:])
	sum = h.Sum(out[:0])[:macSize]
	pool.Put(h)
	return sum, true
}

// PairSecret derives the shared secret between nodes a and b.
func PairSecret(master []byte, a, b types.NodeID) []byte {
	if b < a {
		a, b = b, a
	}
	mac := hmac.New(sha256.New, master)
	var buf [8]byte
	binary.BigEndian.PutUint32(buf[0:4], uint32(int32(a)))
	binary.BigEndian.PutUint32(buf[4:8], uint32(int32(b)))
	mac.Write(buf[:])
	return mac.Sum(nil)
}

// macSize is the truncated per-destination MAC length. Castro & Liskov use
// 10-byte MACs; we keep 16 for a comfortable security margin while staying
// far smaller than signatures.
const macSize = 16

// MACScheme implements Scheme with per-destination HMAC vectors.
type MACScheme struct {
	ring *KeyRing
}

// NewMACScheme returns a MAC-vector scheme over the given key ring.
func NewMACScheme(ring *KeyRing) *MACScheme { return &MACScheme{ring: ring} }

// Attest builds a MAC vector with one slot per destination, sorted by
// NodeID for determinism. The self-destination, if present, is skipped.
// Kinds whose certificates must be transferable are refused.
func (s *MACScheme) Attest(kind Kind, digest types.Digest, dests []types.NodeID) (Attestation, error) {
	if transferableOnly(kind) {
		return Attestation{}, fmt.Errorf("%w: kind %d", ErrNonTransferable, kind)
	}
	sorted := make([]types.NodeID, 0, len(dests))
	seen := make(map[types.NodeID]bool, len(dests))
	for _, d := range dests {
		if d == s.ring.self || seen[d] {
			continue
		}
		seen[d] = true
		sorted = append(sorted, d)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	var scratch [sha256.Size]byte
	proof := make([]byte, 0, 4+len(sorted)*(4+macSize))
	proof = binary.BigEndian.AppendUint32(proof, uint32(len(sorted)))
	for _, d := range sorted {
		sum, ok := s.ring.mac(d, kind, digest, scratch[:])
		if !ok {
			return Attestation{}, fmt.Errorf("%w: %v", ErrUnknownNode, d)
		}
		proof = binary.BigEndian.AppendUint32(proof, uint32(int32(d)))
		proof = append(proof, sum...)
	}
	return Attestation{Node: s.ring.self, Proof: proof}, nil
}

// Verify locates this node's slot in the MAC vector and checks it.
func (s *MACScheme) Verify(kind Kind, digest types.Digest, att Attestation) error {
	if transferableOnly(kind) {
		return fmt.Errorf("%w: kind %d", ErrNonTransferable, kind)
	}
	if _, ok := s.ring.secrets[att.Node]; !ok {
		return fmt.Errorf("%w: %v", ErrUnknownNode, att.Node)
	}
	p := att.Proof
	if len(p) < 4 {
		return ErrNoSlot
	}
	n := int(binary.BigEndian.Uint32(p[:4]))
	p = p[4:]
	if len(p) != n*(4+macSize) {
		return ErrNoSlot
	}
	var scratch [sha256.Size]byte
	want, _ := s.ring.mac(att.Node, kind, digest, scratch[:])
	for i := 0; i < n; i++ {
		slot := p[i*(4+macSize) : (i+1)*(4+macSize)]
		if types.NodeID(int32(binary.BigEndian.Uint32(slot[:4]))) != s.ring.self {
			continue
		}
		if hmac.Equal(slot[4:], want) {
			return nil
		}
		return ErrBadMAC
	}
	return ErrNoSlot
}

// --- Ed25519 signatures -----------------------------------------------------

// Directory maps every node to its Ed25519 public key.
type Directory struct {
	keys map[types.NodeID]ed25519.PublicKey
}

// NewDirectory builds a directory from a key table.
func NewDirectory(keys map[types.NodeID]ed25519.PublicKey) *Directory {
	cp := make(map[types.NodeID]ed25519.PublicKey, len(keys))
	for id, k := range keys {
		cp[id] = k
	}
	return &Directory{keys: cp}
}

// Add registers (or replaces) a node's public key.
func (d *Directory) Add(id types.NodeID, key ed25519.PublicKey) {
	if d.keys == nil {
		d.keys = make(map[types.NodeID]ed25519.PublicKey)
	}
	d.keys[id] = key
}

// SigScheme implements Scheme with Ed25519 signatures. Signatures are
// universally verifiable, so dests is ignored and proofs are transferable
// (required for view-change and checkpoint-stability certificates).
type SigScheme struct {
	self types.NodeID
	priv ed25519.PrivateKey
	dir  *Directory
}

// NewSigScheme returns a signature scheme for self.
func NewSigScheme(self types.NodeID, priv ed25519.PrivateKey, dir *Directory) *SigScheme {
	return &SigScheme{self: self, priv: priv, dir: dir}
}

// Attest signs the bound digest.
func (s *SigScheme) Attest(kind Kind, digest types.Digest, dests []types.NodeID) (Attestation, error) {
	bound := Bind(kind, digest)
	return Attestation{Node: s.self, Proof: ed25519.Sign(s.priv, bound[:])}, nil
}

// Verify checks the attestation against the signer's directory entry.
func (s *SigScheme) Verify(kind Kind, digest types.Digest, att Attestation) error {
	pub, ok := s.dir.keys[att.Node]
	if !ok {
		return fmt.Errorf("%w: %v", ErrUnknownNode, att.Node)
	}
	bound := Bind(kind, digest)
	if !ed25519.Verify(pub, bound[:], att.Proof) {
		return ErrBadSignature
	}
	return nil
}

// Transferable marks Ed25519 proofs as third-party verifiable.
func (s *SigScheme) Transferable() bool { return true }

// SigScheme proofs may back transferable certificates; MAC vectors may not.
// The second assertion is load-bearing documentation: if MACScheme ever
// gained a Transferable method, the transferability split would silently
// widen, so auth_test.go pins *MACScheme's non-conformance at runtime too.
var _ TransferScheme = (*SigScheme)(nil)

// --- Quorum certificates -----------------------------------------------------

// Quorum accumulates attestations from distinct nodes over one (kind, digest)
// pair until a threshold is reached. The caller verifies attestations before
// adding them; Quorum only enforces distinctness and the count.
type Quorum struct {
	need int
	atts map[types.NodeID]Attestation
}

// NewQuorum returns an accumulator that completes after need distinct nodes.
func NewQuorum(need int) *Quorum {
	return &Quorum{need: need, atts: make(map[types.NodeID]Attestation, need)}
}

// Add records an attestation; duplicates from the same node are ignored.
// It reports whether the quorum is now complete.
func (q *Quorum) Add(att Attestation) bool {
	if _, dup := q.atts[att.Node]; !dup {
		q.atts[att.Node] = att
	}
	return q.Done()
}

// Done reports whether the quorum is complete.
func (q *Quorum) Done() bool { return len(q.atts) >= q.need }

// Count returns the number of distinct attestations collected.
func (q *Quorum) Count() int { return len(q.atts) }

// Attestations returns the collected attestations sorted by node, forming a
// canonical certificate.
func (q *Quorum) Attestations() []Attestation {
	out := make([]Attestation, 0, len(q.atts))
	for _, a := range q.atts {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// CountDistinct reports how many distinct valid attestations over
// (kind, digest) appear in atts, verifying each with the scheme and
// requiring membership in the allowed set when allowed is non-nil.
func CountDistinct(s Scheme, kind Kind, digest types.Digest, atts []Attestation, allowed map[types.NodeID]bool) int {
	return CountDistinctPar(nil, s, kind, digest, atts, allowed)
}
