package auth

// This file is the crypto hot path's instrumentation: per-scheme
// sign/verify latency histograms. It is the one place in the
// authentication stack that reads a clock, and it deliberately lives
// outside the deterministic protocol packages (pbft, execnode, wire, ...)
// that the simdeterminism analyzer scans: the measured durations flow only
// into the write-only observability plane, never into a digest, message,
// or WAL record.

import (
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/types"
)

// instrumented wraps a Scheme, timing Attest/Verify into histograms.
type instrumented struct {
	inner          Scheme
	attest, verify *obs.Histogram
}

// instrumentedTransfer preserves the TransferScheme marker through the
// wrapper so an instrumented SigScheme still satisfies transferable-typed
// configuration fields.
type instrumentedTransfer struct {
	instrumented
}

func (instrumentedTransfer) Transferable() bool { return true }

func cryptoHists(reg *obs.Registry, scheme string, node types.NodeID) (attest, verify *obs.Histogram) {
	labels := []obs.Label{obs.L("node", strconv.Itoa(int(node))), obs.L("scheme", scheme)}
	attest = reg.Histogram("saebft_auth_sign_seconds",
		"wall-clock latency of one Attest (sign / MAC-vector build), by scheme",
		obs.LatencyBuckets, labels...)
	verify = reg.Histogram("saebft_auth_verify_seconds",
		"wall-clock latency of one attestation Verify, by scheme",
		obs.LatencyBuckets, labels...)
	return attest, verify
}

// Instrument wraps s so every Attest/Verify records its wall-clock latency
// into reg under the given scheme label. A nil registry returns s
// unchanged, keeping the uninstrumented hot path wrapper-free.
func Instrument(s Scheme, reg *obs.Registry, scheme string, node types.NodeID) Scheme {
	if reg == nil || s == nil {
		return s
	}
	a, v := cryptoHists(reg, scheme, node)
	return &instrumented{inner: s, attest: a, verify: v}
}

// InstrumentTransfer is Instrument for transferable schemes, preserving the
// TransferScheme marker.
func InstrumentTransfer(s TransferScheme, reg *obs.Registry, scheme string, node types.NodeID) TransferScheme {
	if reg == nil || s == nil {
		return s
	}
	a, v := cryptoHists(reg, scheme, node)
	return &instrumentedTransfer{instrumented{inner: s, attest: a, verify: v}}
}

func (w *instrumented) Attest(kind Kind, digest types.Digest, dests []types.NodeID) (Attestation, error) {
	start := time.Now()
	att, err := w.inner.Attest(kind, digest, dests)
	w.attest.Observe(time.Since(start).Seconds())
	return att, err
}

func (w *instrumented) Verify(kind Kind, digest types.Digest, att Attestation) error {
	start := time.Now()
	err := w.inner.Verify(kind, digest, att)
	w.verify.Observe(time.Since(start).Seconds())
	return err
}
