package auth

import (
	"sync"

	"repro/internal/types"
)

// VerifyPool fans expensive attestation checks out across a bounded set of
// workers while keeping the caller's semantics strictly sequential: Run is
// a barrier — it returns only after every index has been processed, and the
// reported error is always the one at the lowest index, independent of
// goroutine scheduling. That makes the pool safe inside the deterministic
// replica cores: the observable outcome of a batch of verifications is a
// pure function of its inputs, exactly as if the loop had run serially.
//
// A nil *VerifyPool runs everything inline, so callers plumb the pool
// unconditionally and configuration decides.
type VerifyPool struct {
	workers int
}

// parallelMin is the batch size below which fan-out costs more than it
// saves: an Ed25519 verify is ~50µs, a goroutine handoff ~1µs, so two
// items already win, but tiny batches of cheap MAC checks should not pay
// for scheduling at all.
const parallelMin = 3

// NewVerifyPool returns a pool bounded to the given number of concurrent
// workers. Values below 2 yield a nil pool (inline verification).
func NewVerifyPool(workers int) *VerifyPool {
	if workers < 2 {
		return nil
	}
	return &VerifyPool{workers: workers}
}

// Workers reports the concurrency bound (0 for inline pools).
func (p *VerifyPool) Workers() int {
	if p == nil {
		return 0
	}
	return p.workers
}

// Run invokes fn for every index in [0, n) and returns the error of the
// lowest failing index, or nil. fn must be safe for concurrent invocation
// with distinct indexes; results are joined before Run returns, so fn may
// close over caller state it only reads.
func (p *VerifyPool) Run(n int, fn func(i int) error) error {
	if p == nil || n < parallelMin {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	w := p.workers
	if w > n {
		w = n
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func(g int) {
			defer wg.Done()
			for i := g; i < n; i += w {
				errs[i] = fn(i)
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// CountDistinctPar is CountDistinct with the verification fan-out on pool:
// attestations are deduplicated and membership-filtered serially (cheap),
// then verified concurrently. The count is order-independent, so the result
// is identical to the serial scan.
func CountDistinctPar(pool *VerifyPool, s Scheme, kind Kind, digest types.Digest, atts []Attestation, allowed map[types.NodeID]bool) int {
	seen := make(map[types.NodeID]bool, len(atts))
	cands := make([]Attestation, 0, len(atts))
	for _, a := range atts {
		if seen[a.Node] {
			continue
		}
		if allowed != nil && !allowed[a.Node] {
			continue
		}
		seen[a.Node] = true
		cands = append(cands, a)
	}
	if pool == nil || len(cands) < parallelMin {
		count := 0
		for _, a := range cands {
			if s.Verify(kind, digest, a) == nil {
				count++
			}
		}
		return count
	}
	ok := make([]bool, len(cands))
	pool.Run(len(cands), func(i int) error {
		ok[i] = s.Verify(kind, digest, cands[i]) == nil
		return nil
	})
	count := 0
	for _, v := range ok {
		if v {
			count++
		}
	}
	return count
}
