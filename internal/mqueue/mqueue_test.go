package mqueue

import (
	"testing"

	"repro/internal/auth"
	"repro/internal/replycert"
	"repro/internal/types"
	"repro/internal/wire"
)

var top = &types.Topology{
	Agreement: []types.NodeID{0, 1, 2, 3},
	Execution: []types.NodeID{100, 101, 102},
	Clients:   []types.NodeID{1000},
}

// sentMsg records one captured send.
type sentMsg struct {
	to  types.NodeID
	msg wire.Message
}

type capture struct {
	sent []sentMsg
}

func (c *capture) sender() func(types.NodeID, []byte) {
	return func(to types.NodeID, data []byte) {
		m, err := wire.Unmarshal(data)
		if err != nil {
			panic(err)
		}
		c.sent = append(c.sent, sentMsg{to, m})
	}
}

func (c *capture) ordersTo(to types.NodeID) []*wire.Order {
	var out []*wire.Order
	for _, s := range c.sent {
		if o, ok := s.msg.(*wire.Order); ok && s.to == to {
			out = append(out, o)
		}
	}
	return out
}

func (c *capture) certsTo(to types.NodeID) []*wire.ReplyCert {
	var out []*wire.ReplyCert
	for _, s := range c.sent {
		if m, ok := s.msg.(*wire.ReplyCert); ok && s.to == to {
			out = append(out, m)
		}
	}
	return out
}

type world struct {
	schemes map[types.NodeID]*auth.MACScheme
	cap     *capture
	q       *Queue
}

func newWorld(t *testing.T, mutate func(*Config)) *world {
	t.Helper()
	all := top.AllNodes()
	schemes := make(map[types.NodeID]*auth.MACScheme, len(all))
	for _, id := range all {
		schemes[id] = auth.NewMACScheme(auth.NewKeyRing([]byte("mq"), id, all))
	}
	cap := &capture{}
	cfg := Config{
		ID:                0,
		Topology:          top,
		OrderAuth:         schemes[0],
		Verifier:          replycert.NewVerifier(replycert.ModeQuorum, top, schemes[0], nil),
		Dests:             top.Execution,
		Pipeline:          4,
		RetransmitInitial: types.Millisecond(10),
		CacheReplies:      true,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	q, err := New(cfg, cap.sender())
	if err != nil {
		t.Fatal(err)
	}
	return &world{schemes: schemes, cap: cap, q: q}
}

func req(ts types.Timestamp) wire.Request {
	return wire.Request{Client: 1000, Timestamp: ts, Op: []byte("op")}
}

// reply builds an executor's quorum share for the queue under test.
func (w *world) reply(t *testing.T, exec types.NodeID, seq types.SeqNum, ts types.Timestamp) *wire.ExecReply {
	t.Helper()
	es := []wire.Reply{{View: 0, Seq: seq, Client: 1000, Timestamp: ts, Body: []byte("res")}}
	att, err := w.schemes[exec].Attest(auth.KindReply, wire.BundleDigest(es), append([]types.NodeID{1000}, top.Agreement...))
	if err != nil {
		t.Fatal(err)
	}
	return &wire.ExecReply{Entries: es, Executor: exec, Att: att}
}

func TestInsertSendsOrdersToExecutors(t *testing.T) {
	w := newWorld(t, nil)
	w.q.Execute(0, 1, types.NonDet{Time: 5}, []wire.Request{req(1)}, 0)
	for _, e := range top.Execution {
		orders := w.cap.ordersTo(e)
		if len(orders) != 1 {
			t.Fatalf("executor %v received %d orders, want 1", e, len(orders))
		}
		o := orders[0]
		if o.Seq != 1 || o.Replica != 0 || len(o.Requests) != 1 {
			t.Errorf("order fields: %+v", o)
		}
		// The attestation must verify at the executor.
		exScheme := w.schemes[e]
		if err := exScheme.Verify(auth.KindOrder, o.OrderDigest(), o.Att); err != nil {
			t.Errorf("executor %v cannot verify order: %v", e, err)
		}
	}
	if w.q.MaxN() != 1 || w.q.PendingLen() != 1 {
		t.Errorf("maxN=%d pending=%d", w.q.MaxN(), w.q.PendingLen())
	}
	// Duplicate insert of the same sequence number is ignored.
	w.q.Execute(0, 1, types.NonDet{Time: 5}, []wire.Request{req(1)}, 0)
	if w.q.PendingLen() != 1 {
		t.Error("duplicate insert buffered twice")
	}
}

func TestReplyCompletesAndForwardsToClient(t *testing.T) {
	w := newWorld(t, nil)
	w.q.Execute(0, 1, types.NonDet{}, []wire.Request{req(1)}, 0)
	w.q.OnExecReply(w.reply(t, 100, 1, 1), 0)
	if len(w.cap.certsTo(1000)) != 0 {
		t.Fatal("certificate forwarded before quorum")
	}
	w.q.OnExecReply(w.reply(t, 101, 1, 1), 0)
	certs := w.cap.certsTo(1000)
	if len(certs) != 1 {
		t.Fatalf("client received %d certificates, want 1", len(certs))
	}
	if w.q.PendingLen() != 0 || w.q.LastReplied() != 1 {
		t.Errorf("pending=%d lastReplied=%d", w.q.PendingLen(), w.q.LastReplied())
	}
}

func TestCumulativeAcknowledgement(t *testing.T) {
	w := newWorld(t, nil)
	for n := types.SeqNum(1); n <= 3; n++ {
		w.q.Execute(0, n, types.NonDet{}, []wire.Request{req(types.Timestamp(n))}, 0)
	}
	if w.q.PendingLen() != 3 {
		t.Fatalf("pending = %d", w.q.PendingLen())
	}
	// A reply for sequence 3 acknowledges 1 and 2 as well (§3.2.1).
	w.q.OnExecReply(w.reply(t, 100, 3, 3), 0)
	w.q.OnExecReply(w.reply(t, 101, 3, 3), 0)
	if w.q.PendingLen() != 0 {
		t.Errorf("pending after cumulative ack = %d, want 0", w.q.PendingLen())
	}
}

func TestBusyAtPipelineDepth(t *testing.T) {
	w := newWorld(t, nil) // Pipeline = 4
	for n := types.SeqNum(1); n <= 4; n++ {
		if w.q.Busy(0) {
			t.Fatalf("busy before pipeline full at n=%d", n)
		}
		w.q.Execute(0, n, types.NonDet{}, []wire.Request{req(types.Timestamp(n))}, 0)
	}
	if !w.q.Busy(0) {
		t.Fatal("not busy with P outstanding inserts")
	}
	// A reply frees the pipeline.
	w.q.OnExecReply(w.reply(t, 100, 4, 4), 0)
	w.q.OnExecReply(w.reply(t, 101, 4, 4), 0)
	if w.q.Busy(0) {
		t.Error("still busy after replies drained the pipeline")
	}
}

func TestResendReplyFromCache(t *testing.T) {
	w := newWorld(t, nil)
	w.q.Execute(0, 1, types.NonDet{}, []wire.Request{req(1)}, 0)
	w.q.OnExecReply(w.reply(t, 100, 1, 1), 0)
	w.q.OnExecReply(w.reply(t, 101, 1, 1), 0)
	before := len(w.cap.certsTo(1000))

	r := req(1)
	if !w.q.ResendReply(&r, 0) {
		t.Fatal("retryHint missed the cached reply")
	}
	if len(w.cap.certsTo(1000)) != before+1 {
		t.Error("cached certificate not resent to the client")
	}
	if w.q.Metrics.CacheHits != 1 {
		t.Errorf("cache hits = %d", w.q.Metrics.CacheHits)
	}
}

func TestResendReplyRetransmitsPending(t *testing.T) {
	w := newWorld(t, nil)
	w.q.Execute(0, 1, types.NonDet{}, []wire.Request{req(1)}, 0)
	before := len(w.cap.ordersTo(100))
	r := req(1)
	if !w.q.ResendReply(&r, 0) {
		t.Fatal("retryHint missed the pending request")
	}
	if len(w.cap.ordersTo(100)) != before+1 {
		t.Error("pending order not retransmitted")
	}
}

func TestResendReplyMissReturnsFalse(t *testing.T) {
	w := newWorld(t, nil)
	r := req(9)
	if w.q.ResendReply(&r, 0) {
		t.Error("retryHint claimed success with nothing cached or pending")
	}
}

func TestSyncWaitsForDrain(t *testing.T) {
	w := newWorld(t, nil)
	w.q.Execute(0, 1, types.NonDet{}, []wire.Request{req(1)}, 0)
	synced := false
	var digest types.Digest
	var payload []byte
	w.q.Sync(1, func(d types.Digest, p []byte) {
		synced = true
		digest, payload = d, p
	})
	if synced {
		t.Fatal("sync completed with a pending send outstanding")
	}
	if !w.q.Busy(0) {
		t.Error("queue not busy while awaiting sync")
	}
	w.q.OnExecReply(w.reply(t, 100, 1, 1), 0)
	w.q.OnExecReply(w.reply(t, 101, 1, 1), 0)
	if !synced {
		t.Fatal("sync did not complete after the pipeline drained")
	}
	if digest != types.DigestBytes(payload) {
		t.Error("sync digest does not cover the payload")
	}
	// Two replicas at the same point produce identical checkpoints.
	w2 := newWorld(t, func(c *Config) { c.ID = 1 })
	w2.q.Execute(0, 1, types.NonDet{}, []wire.Request{req(1)}, 0)
	w2.q.OnExecReply(w2.reply(t, 100, 1, 1), 0)
	w2.q.OnExecReply(w2.reply(t, 101, 1, 1), 0)
	var digest2 types.Digest
	w2.q.Sync(1, func(d types.Digest, p []byte) { digest2 = d })
	if digest2 != digest {
		t.Error("queue checkpoints diverge across replicas")
	}
}

func TestRestore(t *testing.T) {
	w := newWorld(t, nil)
	w.q.Execute(0, 1, types.NonDet{}, []wire.Request{req(1)}, 0)
	w.q.OnExecReply(w.reply(t, 100, 1, 1), 0)
	w.q.OnExecReply(w.reply(t, 101, 1, 1), 0)
	var payload []byte
	var digest types.Digest
	w.q.Sync(1, func(d types.Digest, p []byte) { digest, payload = d, p })

	w2 := newWorld(t, func(c *Config) { c.ID = 2 })
	if err := w2.q.Restore(1, digest, payload); err != nil {
		t.Fatal(err)
	}
	if w2.q.MaxN() != 1 || w2.q.LastReplied() != 1 || w2.q.PendingLen() != 0 {
		t.Errorf("restored state: maxN=%d lastReplied=%d pending=%d", w2.q.MaxN(), w2.q.LastReplied(), w2.q.PendingLen())
	}
	if err := w2.q.Restore(1, digest, []byte{1}); err == nil {
		t.Error("Restore accepted malformed payload")
	}
}

func TestTickRetransmitsWithBackoff(t *testing.T) {
	w := newWorld(t, nil)
	w.q.Execute(0, 1, types.NonDet{}, []wire.Request{req(1)}, 0)
	base := len(w.cap.ordersTo(100)) // 1 initial send

	w.q.Tick(types.Millisecond(5)) // before deadline
	if got := len(w.cap.ordersTo(100)); got != base {
		t.Fatalf("retransmitted before deadline: %d", got)
	}
	w.q.Tick(types.Millisecond(11)) // first retransmission
	if got := len(w.cap.ordersTo(100)); got != base+1 {
		t.Fatalf("first retransmission missing: %d", got)
	}
	// Interval doubled to 20ms: nothing at +15, fires by +35.
	w.q.Tick(types.Millisecond(15))
	if got := len(w.cap.ordersTo(100)); got != base+1 {
		t.Fatal("retransmitted before doubled deadline")
	}
	w.q.Tick(types.Millisecond(35))
	if got := len(w.cap.ordersTo(100)); got != base+2 {
		t.Fatal("second retransmission missing")
	}
	if w.q.Metrics.Retransmits != 2 {
		t.Errorf("retransmit metric = %d", w.q.Metrics.Retransmits)
	}
}

func TestPrimaryOnlyDefersInitialSend(t *testing.T) {
	// Replica 1 is not the view-0 primary: with PrimaryOnly it must not
	// send until the retransmission timer fires (§3.2.1 optimization).
	w := newWorld(t, func(c *Config) {
		c.ID = 1
		c.OrderAuth = nil // set below
		c.PrimaryOnly = true
	})
	w.q.cfg.OrderAuth = w.schemes[1]
	w.q.Execute(0, 1, types.NonDet{}, []wire.Request{req(1)}, 0)
	if got := len(w.cap.ordersTo(100)); got != 0 {
		t.Fatalf("non-primary sent immediately under PrimaryOnly: %d", got)
	}
	w.q.Tick(types.Millisecond(11))
	if got := len(w.cap.ordersTo(100)); got != 1 {
		t.Fatalf("timeout did not trigger the deferred send: %d", got)
	}

	// The primary itself still sends immediately.
	wp := newWorld(t, func(c *Config) { c.PrimaryOnly = true })
	wp.q.Execute(0, 1, types.NonDet{}, []wire.Request{req(1)}, 0)
	if got := len(wp.cap.ordersTo(100)); got != 1 {
		t.Fatalf("primary did not send immediately under PrimaryOnly: %d", got)
	}
}

func TestInvalidCertIgnored(t *testing.T) {
	w := newWorld(t, nil)
	w.q.Execute(0, 1, types.NonDet{}, []wire.Request{req(1)}, 0)
	// A certificate with bogus attestations must not clear the pipeline.
	es := []wire.Reply{{Seq: 1, Client: 1000, Timestamp: 1, Body: []byte("forged")}}
	w.q.OnReplyCert(&wire.ReplyCert{
		Entries: es,
		Atts:    []auth.Attestation{{Node: 100, Proof: []byte("junk")}, {Node: 101, Proof: []byte("junk")}},
	}, 0)
	if w.q.PendingLen() != 1 || w.q.LastReplied() != 0 {
		t.Error("forged certificate affected queue state")
	}
	if len(w.cap.certsTo(1000)) != 0 {
		t.Error("forged certificate forwarded to the client")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Topology: top}, func(types.NodeID, []byte) {}); err == nil {
		t.Error("accepted config without destinations")
	}
	if _, err := New(Config{Dests: top.Execution}, func(types.NodeID, []byte) {}); err == nil {
		t.Error("accepted config without topology")
	}
}
