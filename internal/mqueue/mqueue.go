// Package mqueue implements the replicated message queue of §3.2.1 — the
// local "state machine" each agreement replica installs into the agreement
// engine in place of the application.
//
// When the engine "executes" a batch, the queue stores the request and
// agreement certificates in pendingSends, forwards them toward the execution
// cluster (directly, or into the privacy firewall), and retransmits with
// exponential backoff until a valid reply certificate for an equal-or-higher
// sequence number arrives. Replies are relayed to clients and optionally
// cached per client for retransmission handling (cache_c). A pipeline depth
// P bounds outstanding work: insert(n) is refused until a reply ≥ n−P has
// been seen, which the engine observes as backpressure.
package mqueue

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/auth"
	"repro/internal/replycert"
	"repro/internal/transport"
	"repro/internal/types"
	"repro/internal/wire"
)

// Config parameterizes a queue instance.
type Config struct {
	ID       types.NodeID
	Topology *types.Topology

	// OrderAuth attests this replica's piece of the agreement certificate
	// toward the execution cluster (MAC vector or signature).
	OrderAuth auth.Scheme
	// Verifier validates reply certificates and executor shares.
	Verifier *replycert.Verifier

	// Dests receives order messages: the execution cluster, or the
	// bottom firewall row when the privacy firewall is deployed.
	Dests []types.NodeID

	Pipeline          int        // P: max outstanding sequence numbers
	RetransmitInitial types.Time // first retransmission timeout (then doubles)

	// PrimaryOnly defers this replica's initial send to the retransmission
	// timeout unless it is the current primary (the paper's optimization:
	// "only the current primary needs to send it; all nodes retransmit if
	// the timeout expires").
	PrimaryOnly bool

	// CacheReplies enables cache_c, the per-client reply certificate cache
	// (an optimization required for neither safety nor liveness, §3.1.2).
	CacheReplies bool
}

func (c *Config) fillDefaults() {
	if c.Pipeline == 0 {
		c.Pipeline = 32
	}
	if c.RetransmitInitial == 0 {
		c.RetransmitInitial = types.Millisecond(40)
	}
}

// pendingSend is one inserted batch awaiting its reply certificate.
type pendingSend struct {
	order    *wire.Order
	deadline types.Time
	interval types.Time
	isPrim   bool // this replica was primary when inserting
	sent     bool
}

// Queue is one agreement replica's message queue instance. It implements
// pbft.App; reply traffic is fed in through OnExecReply/OnReplyCert and
// timers through Tick.
type Queue struct {
	cfg         Config
	send        transport.Sender
	top         *types.Topology
	maxN        types.SeqNum // highest sequence number inserted
	lastReplied types.SeqNum // highest sequence number with a valid reply
	pending     map[types.SeqNum]*pendingSend
	assembler   *replycert.Assembler
	cache       map[types.NodeID]*wire.ReplyCert // cache_c, newest per client

	syncWaiting bool
	syncSeq     types.SeqNum
	syncDone    func(types.Digest, []byte)

	// Metrics counts externally observable queue activity.
	Metrics Metrics
}

// Metrics aggregates counters exposed for tests and benchmarks.
type Metrics struct {
	Inserted      uint64
	Retransmits   uint64
	RepliesSent   uint64
	CacheHits     uint64
	CertsAccepted uint64
}

// New constructs a queue instance.
func New(cfg Config, send transport.Sender) (*Queue, error) {
	cfg.fillDefaults()
	if cfg.Topology == nil {
		return nil, fmt.Errorf("mqueue: nil topology")
	}
	if len(cfg.Dests) == 0 {
		return nil, fmt.Errorf("mqueue: no destinations configured")
	}
	return &Queue{
		cfg:       cfg,
		send:      send,
		top:       cfg.Topology,
		pending:   make(map[types.SeqNum]*pendingSend),
		assembler: replycert.NewAssembler(cfg.Verifier),
		cache:     make(map[types.NodeID]*wire.ReplyCert),
	}, nil
}

// MaxN returns the highest inserted sequence number.
func (q *Queue) MaxN() types.SeqNum { return q.maxN }

// LastReplied returns the highest replied sequence number.
func (q *Queue) LastReplied() types.SeqNum { return q.lastReplied }

// PendingLen returns the number of batches awaiting replies.
func (q *Queue) PendingLen() int { return len(q.pending) }

// --- pbft.App ----------------------------------------------------------------

// Execute is msgQueue.insert: store certificates, forward toward execution,
// arm the retransmission timer.
func (q *Queue) Execute(v types.View, n types.SeqNum, nd types.NonDet, reqs []wire.Request, now types.Time) {
	if n <= q.maxN {
		return
	}
	q.maxN = n
	q.Metrics.Inserted++
	od := wire.OrderDigest(v, n, wire.BatchDigest(reqs), nd)
	att, err := q.cfg.OrderAuth.Attest(auth.KindOrder, od, q.top.Execution)
	if err != nil {
		return
	}
	order := &wire.Order{View: v, Seq: n, ND: nd, Requests: reqs, Replica: q.cfg.ID, Att: att}
	ps := &pendingSend{
		order:    order,
		interval: q.cfg.RetransmitInitial,
		isPrim:   q.top.Primary(v) == q.cfg.ID,
	}
	ps.deadline = now + ps.interval
	q.pending[n] = ps
	if !q.cfg.PrimaryOnly || ps.isPrim {
		q.sendOrder(ps)
	}
}

func (q *Queue) sendOrder(ps *pendingSend) {
	data := wire.Marshal(ps.order)
	for _, d := range q.cfg.Dests {
		q.send(d, data)
	}
	ps.sent = true
}

// ResendReply is msgQueue.retryHint: answer a client retransmission from
// cache_c, or retransmit the in-flight certificates, or report false so the
// engine re-proposes the request (§3.2.1).
func (q *Queue) ResendReply(req *wire.Request, now types.Time) bool {
	if cert, ok := q.cache[req.Client]; ok {
		for i := range cert.Entries {
			e := &cert.Entries[i]
			if e.Client == req.Client && e.Timestamp >= req.Timestamp {
				q.send(req.Client, wire.Marshal(cert))
				q.Metrics.CacheHits++
				return true
			}
		}
	}
	for _, ps := range q.pending {
		for i := range ps.order.Requests {
			r := &ps.order.Requests[i]
			if r.Client == req.Client && r.Timestamp == req.Timestamp {
				q.sendOrder(ps)
				q.Metrics.Retransmits++
				return true
			}
		}
	}
	return false
}

// Sync is msgQueue.sync(): hold the done callback until every inserted batch
// has been acknowledged by a reply certificate, then emit the queue state.
// cache_c deliberately stays out of the checkpoint (it may differ across
// replicas, §3.2.1).
func (q *Queue) Sync(n types.SeqNum, done func(types.Digest, []byte)) {
	q.syncWaiting = true
	q.syncSeq = n
	q.syncDone = done
	q.maybeFinishSync()
}

func (q *Queue) maybeFinishSync() {
	if !q.syncWaiting || len(q.pending) != 0 || q.lastReplied < q.syncSeq {
		return
	}
	q.syncWaiting = false
	done := q.syncDone
	q.syncDone = nil
	payload := q.marshalState()
	done(types.DigestBytes(payload), payload)
}

func (q *Queue) marshalState() []byte {
	var b [16]byte
	binary.BigEndian.PutUint64(b[0:8], uint64(q.maxN))
	binary.BigEndian.PutUint64(b[8:16], uint64(q.lastReplied))
	return b[:]
}

// Restore adopts a checkpointed queue state during state transfer.
func (q *Queue) Restore(n types.SeqNum, digest types.Digest, payload []byte) error {
	if len(payload) != 16 {
		return fmt.Errorf("mqueue: malformed checkpoint payload (%d bytes)", len(payload))
	}
	q.maxN = types.SeqNum(binary.BigEndian.Uint64(payload[0:8]))
	q.lastReplied = types.SeqNum(binary.BigEndian.Uint64(payload[8:16]))
	q.pending = make(map[types.SeqNum]*pendingSend)
	q.assembler.GC(q.lastReplied)
	q.syncWaiting = false
	q.syncDone = nil
	return nil
}

// Busy reports pipeline backpressure: insert(n) must wait until a reply with
// sequence number at least n−P arrived (§3.1.2).
func (q *Queue) Busy(now types.Time) bool {
	if q.syncWaiting {
		return true
	}
	return q.maxN >= q.lastReplied+types.SeqNum(q.cfg.Pipeline)
}

// --- reply handling -------------------------------------------------------------

// OnExecReply accumulates one executor's share; when g+1 distinct executors
// vouch for a bundle, the certificate completes.
func (q *Queue) OnExecReply(m *wire.ExecReply, now types.Time) {
	cert, err := q.assembler.Add(m)
	if err != nil || cert == nil {
		return
	}
	q.acceptCert(cert, now)
}

// OnReplyCert validates and applies a complete certificate (threshold
// certificates arriving from the firewall, or quorum certificates relayed by
// peers).
func (q *Queue) OnReplyCert(m *wire.ReplyCert, now types.Time) {
	if err := q.cfg.Verifier.VerifyCert(m); err != nil {
		return
	}
	q.acceptCert(m, now)
}

// acceptCert clears acknowledged work, relays replies to their clients, and
// refreshes cache_c.
func (q *Queue) acceptCert(cert *wire.ReplyCert, now types.Time) {
	q.Metrics.CertsAccepted++
	maxSeq := cert.MaxSeq()
	if maxSeq > q.lastReplied {
		q.lastReplied = maxSeq
	}
	// A reply for sequence n acknowledges everything at or below n
	// (§3.2.1: "for that request and for all requests with lower sequence
	// numbers").
	for n := range q.pending {
		if n <= maxSeq {
			delete(q.pending, n)
		}
	}
	q.assembler.GC(maxSeq)

	data := wire.Marshal(cert)
	clients := make(map[types.NodeID]bool)
	for i := range cert.Entries {
		clients[cert.Entries[i].Client] = true
	}
	ids := make([]types.NodeID, 0, len(clients))
	for id := range clients {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		q.send(id, data)
		q.Metrics.RepliesSent++
		if q.cfg.CacheReplies {
			q.cache[id] = cert
		}
	}
	q.maybeFinishSync()
}

// Tick drives retransmission with exponential backoff.
func (q *Queue) Tick(now types.Time) {
	for _, ps := range q.pending {
		if now < ps.deadline {
			continue
		}
		q.sendOrder(ps)
		q.Metrics.Retransmits++
		ps.interval *= 2
		ps.deadline = now + ps.interval
	}
}
