package execnode

import (
	"strconv"

	"repro/internal/obs"
	"repro/internal/types"
)

// metrics holds the replica's registered instruments. Instruments are nil
// without a registry and no-op on nil, so instrumentation sites stay
// unconditional. The package only writes the observability plane (Inc,
// Add, Set, Observe, Record) — the simdeterminism analyzer rejects
// read-side calls, keeping metrics out of checkpoint digests and replies.
type metrics struct {
	batches        *obs.Counter
	requests       *obs.Counter
	retransmits    *obs.Counter
	checkpoints    *obs.Counter
	stateTransfers *obs.Counter
	readsServed    *obs.Counter
	readsRefused   *obs.Counter

	applyLag  *obs.Histogram // first order share seen -> batch applied
	ckptBytes *obs.Histogram

	appliedSeq *obs.Gauge
	stableSeq  *obs.Gauge
	queueDepth *obs.Gauge // pending out-of-order certificates
	replyCache *obs.Gauge // exactly-once reply table entries
}

func newExecMetrics(reg *obs.Registry, id types.NodeID) metrics {
	node := obs.L("node", strconv.Itoa(int(id)))
	return metrics{
		batches: reg.Counter("saebft_exec_batches_total",
			"ordered batches applied to the state machine", node),
		requests: reg.Counter("saebft_exec_requests_total",
			"fresh requests executed (retransmissions excluded)", node),
		retransmits: reg.Counter("saebft_exec_retransmits_total",
			"retransmission acknowledgements answered from the reply table", node),
		checkpoints: reg.Counter("saebft_exec_checkpoints_total",
			"local execution checkpoints taken", node),
		stateTransfers: reg.Counter("saebft_exec_state_transfers_total",
			"checkpoint state transfers requested", node),
		readsServed: reg.Counter("saebft_exec_reads_served_total",
			"certified-read probes answered from applied state", node),
		readsRefused: reg.Counter("saebft_exec_reads_refused_total",
			"certified-read probes answered with a signed refusal", node),
		applyLag: reg.Histogram("saebft_exec_apply_seconds",
			"latency from first agreement-certificate share seen to batch applied, protocol clock",
			obs.LatencyBuckets, node),
		ckptBytes: reg.Histogram("saebft_exec_checkpoint_bytes",
			"serialized checkpoint payload size", obs.ByteBuckets, node),
		appliedSeq: reg.Gauge("saebft_exec_applied_seq",
			"highest executed sequence number", node),
		stableSeq: reg.Gauge("saebft_exec_stable_seq",
			"latest stable checkpoint sequence number", node),
		queueDepth: reg.Gauge("saebft_exec_queue_depth",
			"ordered-but-not-executed batches buffered (pending list)", node),
		replyCache: reg.Gauge("saebft_exec_reply_cache_size",
			"entries in the exactly-once reply table", node),
	}
}

// observeSince records now-from on h, skipping zero start stamps.
func observeSince(h *obs.Histogram, from, now types.Time) {
	if from != 0 && now >= from {
		h.Observe(obs.Seconds(int64(now - from)))
	}
}

// span records one lifecycle span on the trace ring (no-op without a
// tracer), stamped with the protocol clock.
func (r *Replica) span(now types.Time, stage string, seq types.SeqNum, note string) {
	r.trace.Record(obs.Span{
		At:    int64(now),
		Node:  int(r.cfg.ID),
		Stage: stage,
		Seq:   uint64(seq),
		Note:  note,
	})
}
