package execnode

// Certified fast reads: the execution replicas answer read-only operations
// directly from applied state — no agreement round, no reply table, no
// checkpoint traffic. The client certifies the answer itself with g+1
// matching replies at or above its session floor (see internal/replycert's
// ReadAssembler). Serving a read is stateless for the replica: nothing here
// touches the protocol state driven by Receive's ordered-traffic handlers,
// which is what lets reads interleave with agreement traffic without
// perturbing it.

import (
	"repro/internal/auth"
	"repro/internal/obs"
	"repro/internal/sm"
	"repro/internal/transport"
	"repro/internal/types"
	"repro/internal/wire"
)

// Deterministic refusal bodies: replicas that refuse for the same reason
// produce byte-identical replies, so g+1 matching refusals certify that the
// operation must go through full agreement instead.
var (
	refusalNotReadOnly = []byte("read refused: operation is not read-only")
	refusalNoQuerier   = []byte("read refused: application cannot answer queries")
	refusalSealed      = []byte("read refused: sealed deployment")
	// refusalBehindFloor is per-replica (the watermark in the signed digest
	// differs), never certified: a reply below the requested floor does not
	// count toward the read quorum regardless of its body.
	refusalBehindFloor = []byte("read refused: applied state below requested floor")
)

// SetReadSender routes read replies through an alternate sender. The
// simulated transport uses it to keep read traffic on its auxiliary
// randomness plane, so serving reads cannot perturb the deterministic
// delivery schedule of agreement traffic. Defaults to the replica's normal
// sender.
func (r *Replica) SetReadSender(send transport.Sender) { r.readSend = send }

// onReadRequest answers one certified-read probe from applied state.
func (r *Replica) onReadRequest(m *wire.ReadRequest, now types.Time) {
	if r.storeErr != nil {
		return // fail-stop: an undurable replica serves nothing
	}
	role, _, ok := r.top.RoleOf(m.Client)
	if !ok || role != types.RoleClient || m.Att.Node != m.Client {
		return
	}
	if r.cfg.ClientAuth == nil || r.cfg.ClientAuth.Verify(auth.KindReadRequest, m.Digest(), m.Att) != nil {
		return
	}
	reply := &wire.ReadReply{
		Client:     m.Client,
		Nonce:      m.Nonce,
		AppliedSeq: r.maxN,
		Executor:   r.cfg.ID,
	}
	switch {
	case r.cfg.Seals != nil:
		// Sealed request bodies cannot be queried in plaintext (and the
		// privacy firewall severs the client↔exec channel anyway).
		reply.Refused = true
		reply.Body = refusalSealed
	case r.maxN < m.Floor:
		reply.Refused = true
		reply.Body = refusalBehindFloor
	default:
		body, ok := r.queryOps(m.Op)
		if !ok {
			reply.Refused = true
			reply.Body = refusalNotReadOnly
			if _, isQuerier := r.app.(sm.Querier); !isQuerier {
				reply.Body = refusalNoQuerier
			}
		} else {
			reply.Body = body
		}
	}
	// Read replies are signed with the replica's identity key (ExecAuth)
	// in every reply mode: threshold shares cannot combine across replies
	// that differ in their watermark, and a MAC vector would not transfer.
	att, err := r.cfg.ExecAuth.Attest(auth.KindReadReply, reply.Digest(), []types.NodeID{m.Client})
	if err != nil {
		return
	}
	reply.Att = att
	if reply.Refused {
		r.Metrics.ReadsRefused++
		r.om.readsRefused.Inc()
		r.span(now, obs.StageReadServe, r.maxN, "refused")
	} else {
		r.Metrics.ReadsServed++
		r.om.readsServed.Inc()
		r.span(now, obs.StageReadServe, r.maxN, "ok")
	}
	send := r.readSend
	if send == nil {
		send = r.send
	}
	send(m.Client, wire.Marshal(reply))
}

// queryOps evaluates one read-only request body against the application.
// Multi-op envelopes are unpacked and each operation queried, mirroring
// executeOps, so a batched body reads exactly like it would execute.
func (r *Replica) queryOps(body []byte) ([]byte, bool) {
	q, ok := r.app.(sm.Querier)
	if !ok {
		return nil, false
	}
	ops, isEnvelope := wire.UnpackOps(body)
	if !isEnvelope {
		return q.Query(body)
	}
	bodies := make([][]byte, len(ops))
	for i, op := range ops {
		b, ok := q.Query(op)
		if !ok {
			return nil, false
		}
		bodies[i] = b
	}
	return wire.PackOpReplies(bodies), true
}
