package execnode

import (
	"testing"

	"repro/internal/auth"
	"repro/internal/types"
	"repro/internal/wire"
)

// reqFrom builds a request from an arbitrary client with its own timestamp
// stream (the shared world helper drives only client 1000).
func reqFrom(client types.NodeID, ts types.Timestamp, op string) wire.Request {
	return wire.Request{Client: client, Timestamp: ts, Op: []byte(op)}
}

// vote sends replica from's checkpoint attestation over the given digest.
func (w *world) vote(from types.NodeID, n types.SeqNum, digest types.Digest) {
	w.t.Helper()
	att, err := w.schemes[from].Attest(auth.KindExecCheckpoint, wire.CheckpointDigest(n, digest), top.Execution)
	if err != nil {
		w.t.Fatal(err)
	}
	w.r.Receive(from, &wire.ExecCheckpoint{Seq: n, State: digest, Executor: from, Att: att}, 0)
}

// TestMakeStablePrunesBelowWatermark is the memory-bound regression test:
// once a checkpoint is stable, everything strictly below the watermark —
// checkpoint vote maps, order certificates, pending accumulators, and the
// per-client last-reply-share cache — must be released.
func TestMakeStablePrunesBelowWatermark(t *testing.T) {
	w := newWorld(t, nil) // CheckpointInterval 4
	// Three clients execute in early batches; client 1000 stays active.
	w.commit(1, []wire.Request{reqFrom(1001, 1, "inc"), reqFrom(1002, 1, "inc")})
	w.commit(2, []wire.Request{w.req("inc")})
	w.commit(3, []wire.Request{w.req("inc")})
	w.commit(4, []wire.Request{w.req("inc")})
	if w.r.MaxN() != 4 {
		t.Fatalf("maxN=%d, want 4", w.r.MaxN())
	}
	if len(w.r.lastOut) != 3 {
		t.Fatalf("lastOut has %d entries before stability, want 3", len(w.r.lastOut))
	}
	if len(w.r.ckptVotes) == 0 {
		t.Fatal("no checkpoint votes recorded for seq 4")
	}
	// Two peers agree with the local digest: the checkpoint becomes stable.
	digest := types.DigestBytes(w.r.ckptLocal[4])
	w.vote(101, 4, digest)
	w.vote(102, 4, digest)
	if w.r.StableSeq() != 4 {
		t.Fatalf("stableSeq=%d, want 4", w.r.StableSeq())
	}
	// Bundles from batches 1–3 (clients 1001, 1002) are strictly below the
	// watermark and must be gone; client 1000's batch-4 bundle survives.
	if len(w.r.lastOut) != 1 {
		t.Fatalf("lastOut has %d entries after stability, want 1", len(w.r.lastOut))
	}
	if _, ok := w.r.lastOut[1000]; !ok {
		t.Fatal("client 1000's at-watermark bundle was pruned")
	}
	for seq := range w.r.ckptVotes {
		if seq <= 4 {
			t.Fatalf("checkpoint votes for seq %d survived stability", seq)
		}
	}
	for seq := range w.r.proofs {
		if seq <= 4 {
			t.Fatalf("order proof for seq %d survived stability", seq)
		}
	}
	// The reply table is untouched by stability (it must stay identical
	// across replicas regardless of when each one observes stability).
	if len(w.r.replies) != 3 {
		t.Fatalf("reply table has %d entries, want 3", len(w.r.replies))
	}
}

// TestCheckpointPrunesIdleReplyEntries: the exactly-once reply table is
// bounded by ReplyRetention, pruned at checkpoint creation — a point that
// is a deterministic function of the executed log — so every correct
// replica prunes identically and checkpoint digests keep matching.
func TestCheckpointPrunesIdleReplyEntries(t *testing.T) {
	w := newWorld(t, func(c *Config) { c.ReplyRetention = 8 })
	w.commit(1, []wire.Request{reqFrom(1001, 1, "inc")})
	for n := types.SeqNum(2); n <= 8; n++ {
		w.commit(n, []wire.Request{w.req("inc")})
	}
	if len(w.r.replies) != 2 {
		t.Fatalf("reply table has %d entries mid-run, want 2", len(w.r.replies))
	}
	// Checkpoint at 12: client 1001's entry (last touched at seq 1,
	// 1+8 < 12) has aged out; active client 1000 is retained.
	for n := types.SeqNum(9); n <= 12; n++ {
		w.commit(n, []wire.Request{w.req("inc")})
	}
	if len(w.r.replies) != 1 {
		t.Fatalf("reply table has %d entries after retention checkpoint, want 1", len(w.r.replies))
	}
	if _, ok := w.r.replies[1000]; !ok {
		t.Fatal("active client's reply entry was pruned")
	}
	if _, ok := w.r.lastOut[1001]; ok {
		t.Fatal("idle client's bundle cache entry survived retention pruning")
	}
	// The pruned client's next request is fresh by definition now: it
	// re-executes rather than crashing or answering from a ghost entry.
	w.commit(13, []wire.Request{reqFrom(1001, 2, "inc")})
	if w.app.Value() != 13 {
		t.Fatalf("counter=%d after pruned client's fresh request, want 13", w.app.Value())
	}
}
