package execnode

import (
	"crypto/ed25519"
	"encoding/binary"
	"fmt"
	"testing"

	"repro/internal/apps/counter"
	"repro/internal/auth"
	"repro/internal/replycert"
	"repro/internal/seal"
	"repro/internal/threshold"
	"repro/internal/types"
	"repro/internal/wire"
)

var top = &types.Topology{
	Agreement: []types.NodeID{0, 1, 2, 3},
	Execution: []types.NodeID{100, 101, 102},
	Clients:   []types.NodeID{1000, 1001, 1002},
}

type sentMsg struct {
	to  types.NodeID
	msg wire.Message
}

type capture struct{ sent []sentMsg }

func (c *capture) sender() func(types.NodeID, []byte) {
	return func(to types.NodeID, data []byte) {
		m, err := wire.Unmarshal(data)
		if err != nil {
			panic(err)
		}
		c.sent = append(c.sent, sentMsg{to, m})
	}
}

func (c *capture) repliesTo(to types.NodeID) []*wire.ExecReply {
	var out []*wire.ExecReply
	for _, s := range c.sent {
		if m, ok := s.msg.(*wire.ExecReply); ok && s.to == to {
			out = append(out, m)
		}
	}
	return out
}

func (c *capture) byType(mt wire.MsgType) []wire.Message {
	var out []wire.Message
	for _, s := range c.sent {
		if s.msg.Type() == mt {
			out = append(out, s.msg)
		}
	}
	return out
}

// world wires one execution replica with signature schemes for everyone.
type world struct {
	t       *testing.T
	schemes map[types.NodeID]auth.Scheme
	cap     *capture
	r       *Replica
	app     *counter.Counter
	ts      types.Timestamp
}

func newWorld(t *testing.T, mutate func(*Config)) *world {
	t.Helper()
	dir := auth.NewDirectory(nil)
	schemes := make(map[types.NodeID]auth.Scheme)
	privs := make(map[types.NodeID]ed25519.PrivateKey)
	for _, id := range top.AllNodes() {
		var seedB [ed25519.SeedSize]byte
		binary.BigEndian.PutUint32(seedB[:4], uint32(id))
		priv := ed25519.NewKeyFromSeed(seedB[:])
		privs[id] = priv
		dir.Add(id, priv.Public().(ed25519.PublicKey))
	}
	for _, id := range top.AllNodes() {
		schemes[id] = auth.NewSigScheme(id, privs[id], dir)
	}
	cap := &capture{}
	app := counter.New()
	cfg := Config{
		ID:                 100,
		Topology:           top,
		OrderAuth:          schemes[100],
		ReplyAuth:          schemes[100],
		ExecAuth:           schemes[100],
		ReplyMode:          replycert.ModeQuorum,
		ReplyDests:         top.Agreement,
		Pipeline:           8,
		CheckpointInterval: 4,
		FetchRetry:         types.Millisecond(10),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	r, err := New(cfg, app, cap.sender())
	if err != nil {
		t.Fatal(err)
	}
	return &world{t: t, schemes: schemes, cap: cap, r: r, app: app}
}

// order builds agreement replica `from`'s order piece for seq n.
func (w *world) order(from types.NodeID, n types.SeqNum, reqs []wire.Request) *wire.Order {
	w.t.Helper()
	t := types.Timestamp(n * 1000)
	nd := types.NonDet{Time: t, Rand: types.ComputeNonDetRand(n, t)}
	o := &wire.Order{View: 0, Seq: n, ND: nd, Requests: reqs, Replica: from}
	att, err := w.schemes[from].Attest(auth.KindOrder, o.OrderDigest(), top.Execution)
	if err != nil {
		w.t.Fatal(err)
	}
	o.Att = att
	return o
}

// commit feeds 2f+1 order pieces for one batch.
func (w *world) commit(n types.SeqNum, reqs []wire.Request) {
	w.t.Helper()
	for _, a := range top.Agreement[:3] {
		w.r.Receive(a, w.order(a, n, reqs), 0)
	}
}

func (w *world) req(op string) wire.Request {
	w.ts++
	return wire.Request{Client: 1000, Timestamp: w.ts, Op: []byte(op)}
}

func TestExecutesWithQuorumOfOrders(t *testing.T) {
	w := newWorld(t, nil)
	r1 := w.req("inc")
	// One piece is not enough.
	w.r.Receive(0, w.order(0, 1, []wire.Request{r1}), 0)
	if w.r.MaxN() != 0 {
		t.Fatal("executed with a single order piece")
	}
	// Duplicate pieces from the same replica don't count.
	w.r.Receive(0, w.order(0, 1, []wire.Request{r1}), 0)
	if w.r.MaxN() != 0 {
		t.Fatal("duplicate pieces formed a certificate")
	}
	w.r.Receive(1, w.order(1, 1, []wire.Request{r1}), 0)
	w.r.Receive(2, w.order(2, 1, []wire.Request{r1}), 0)
	if w.r.MaxN() != 1 || w.app.Value() != 1 {
		t.Fatalf("maxN=%d counter=%d", w.r.MaxN(), w.app.Value())
	}
	// A bundle share went to every agreement node.
	for _, a := range top.Agreement {
		if len(w.cap.repliesTo(a)) != 1 {
			t.Errorf("agreement %v received %d reply shares", a, len(w.cap.repliesTo(a)))
		}
	}
}

func TestRejectsForgedOrderPieces(t *testing.T) {
	w := newWorld(t, nil)
	r1 := w.req("inc")
	good := w.order(0, 1, []wire.Request{r1})
	// Tamper with the batch after attestation.
	bad := *good
	bad.Requests = []wire.Request{{Client: 1000, Timestamp: 99, Op: []byte("evil")}}
	w.r.Receive(0, &bad, 0)
	// Forged replica id.
	bad2 := *good
	bad2.Replica = 1
	w.r.Receive(1, &bad2, 0)
	// Non-agreement sender.
	bad3 := *w.order(0, 1, []wire.Request{r1})
	bad3.Replica = 100
	w.r.Receive(100, &bad3, 0)
	if w.r.MaxN() != 0 || w.app.Value() != 0 {
		t.Error("forged order pieces led to execution")
	}
}

func TestOutOfOrderBuffering(t *testing.T) {
	w := newWorld(t, nil)
	r1, r2 := w.req("inc"), w.req("inc")
	w.commit(2, []wire.Request{r2})
	if w.r.MaxN() != 0 {
		t.Fatal("executed seq 2 before seq 1")
	}
	// The gap triggered a fetch.
	if len(w.cap.byType(wire.TFetchMissing)) == 0 {
		t.Error("gap did not trigger FetchMissing")
	}
	w.commit(1, []wire.Request{r1})
	if w.r.MaxN() != 2 || w.app.Value() != 2 {
		t.Fatalf("maxN=%d value=%d after filling the gap", w.r.MaxN(), w.app.Value())
	}
}

func TestExactlyOnceSemantics(t *testing.T) {
	w := newWorld(t, nil)
	r1 := w.req("inc")
	w.commit(1, []wire.Request{r1})
	if w.app.Value() != 1 {
		t.Fatal("setup failed")
	}
	// Case 2: same timestamp re-ordered under a new sequence number — the
	// cached reply is re-sent, the operation is NOT re-executed.
	w.commit(2, []wire.Request{r1})
	if w.app.Value() != 1 {
		t.Fatalf("retransmission re-executed: %d", w.app.Value())
	}
	if w.r.MaxN() != 2 {
		t.Fatal("retransmission did not advance the sequence number")
	}
	replies := w.cap.repliesTo(0)
	last := replies[len(replies)-1]
	if last.Entries[0].Seq != 2 || last.Entries[0].Timestamp != r1.Timestamp {
		t.Errorf("ack entry: %+v", last.Entries[0])
	}
	// Case 3: an older timestamp after a newer one — acknowledged with the
	// cached (newer) reply, not executed.
	r2 := w.req("inc")
	w.commit(3, []wire.Request{r2})
	if w.app.Value() != 2 {
		t.Fatal("fresh request did not execute")
	}
	w.commit(4, []wire.Request{r1}) // stale timestamp
	if w.app.Value() != 2 {
		t.Fatalf("stale request re-executed: %d", w.app.Value())
	}
	if w.r.Metrics.Retransmits != 2 {
		t.Errorf("retransmit acks = %d, want 2", w.r.Metrics.Retransmits)
	}
}

func TestOldSequenceResendsCachedReply(t *testing.T) {
	w := newWorld(t, nil)
	r1 := w.req("inc")
	w.commit(1, []wire.Request{r1})
	before := len(w.cap.repliesTo(0))
	// The agreement cluster retransmits order 1 (it missed the replies).
	w.r.Receive(0, w.order(0, 1, []wire.Request{r1}), 0)
	after := len(w.cap.repliesTo(0))
	if after != before+1 {
		t.Errorf("old order did not trigger a cached-reply resend (%d → %d)", before, after)
	}
	if w.app.Value() != 1 {
		t.Error("old order re-executed")
	}
}

func TestCheckpointStabilityAndGC(t *testing.T) {
	w := newWorld(t, nil) // CheckpointInterval = 4
	for n := types.SeqNum(1); n <= 4; n++ {
		w.commit(n, []wire.Request{w.req("inc")})
	}
	// The replica produced its own checkpoint share for seq 4.
	cks := w.cap.byType(wire.TExecCheckpoint)
	if len(cks) == 0 {
		t.Fatal("no checkpoint shares emitted")
	}
	own := cks[0].(*wire.ExecCheckpoint)
	if own.Seq != 4 {
		t.Fatalf("checkpoint at seq %d, want 4", own.Seq)
	}
	// Peer votes with the same digest make it stable.
	for _, peer := range []types.NodeID{101, 102} {
		att, err := w.schemes[peer].Attest(auth.KindExecCheckpoint, wire.CheckpointDigest(4, own.State), top.Execution)
		if err != nil {
			t.Fatal(err)
		}
		w.r.Receive(peer, &wire.ExecCheckpoint{Seq: 4, State: own.State, Executor: peer, Att: att}, 0)
	}
	if w.r.StableSeq() != 4 {
		t.Fatalf("stable = %d, want 4", w.r.StableSeq())
	}
	if len(w.r.proofs) != 0 {
		t.Errorf("order proofs not garbage collected: %d", len(w.r.proofs))
	}
	// Mismatching digests never stabilize.
	w2 := newWorld(t, nil)
	for n := types.SeqNum(1); n <= 4; n++ {
		w2.commit(n, []wire.Request{w2.req("inc")})
	}
	for _, peer := range []types.NodeID{101, 102} {
		forged := types.DigestBytes([]byte(fmt.Sprintf("forged-%d", peer)))
		att, _ := w2.schemes[peer].Attest(auth.KindExecCheckpoint, wire.CheckpointDigest(4, forged), top.Execution)
		w2.r.Receive(peer, &wire.ExecCheckpoint{Seq: 4, State: forged, Executor: peer, Att: att}, 0)
	}
	if w2.r.StableSeq() != 0 {
		t.Error("divergent checkpoint digests stabilized")
	}
}

func TestFetchMissingServesProofThenStableProof(t *testing.T) {
	w := newWorld(t, nil)
	w.commit(1, []wire.Request{w.req("inc")})
	// Peer asks for seq 1: served from the proof log.
	w.r.Receive(101, &wire.FetchMissing{Seq: 1, Executor: 101}, 0)
	found := false
	for _, s := range w.cap.sent {
		if p, ok := s.msg.(*wire.OrderProof); ok && s.to == 101 && p.Seq == 1 {
			found = true
			// The proof must carry a full certificate.
			if len(p.Atts) < 3 {
				t.Errorf("served proof has %d attestations", len(p.Atts))
			}
		}
	}
	if !found {
		t.Fatal("FetchMissing not served with an OrderProof")
	}
}

func TestOrderProofApplication(t *testing.T) {
	// A lagging replica catches up directly from a peer's OrderProof.
	w := newWorld(t, nil)
	w2 := newWorld(t, func(c *Config) { c.ID = 101; c.OrderAuth = nil })
	w2.r.cfg.OrderAuth = w2.schemes[101]

	r1 := wire.Request{Client: 1000, Timestamp: 1, Op: []byte("inc")}
	w.commit(1, []wire.Request{r1})
	proof := w.r.proofs[1]
	if proof == nil {
		t.Fatal("no stored proof")
	}
	w2.r.Receive(100, proof, 0)
	if w2.r.MaxN() != 1 || w2.app.Value() != 1 {
		t.Fatalf("proof application failed: maxN=%d value=%d", w2.r.MaxN(), w2.app.Value())
	}
	// A truncated proof (below quorum) must not apply.
	w3 := newWorld(t, func(c *Config) { c.ID = 102; c.OrderAuth = nil })
	w3.r.cfg.OrderAuth = w3.schemes[102]
	short := *proof
	short.Atts = proof.Atts[:2]
	w3.r.Receive(100, &short, 0)
	if w3.r.MaxN() != 0 {
		t.Error("sub-quorum proof applied")
	}
}

func TestStateTransferViaCheckpoint(t *testing.T) {
	// Replica A runs ahead and stabilizes; replica B restores from A's
	// checkpoint payload after seeing the stability proof.
	a := newWorld(t, nil)
	for n := types.SeqNum(1); n <= 4; n++ {
		a.commit(n, []wire.Request{a.req("inc")})
	}
	cks := a.cap.byType(wire.TExecCheckpoint)
	own := cks[0].(*wire.ExecCheckpoint)
	var atts []auth.Attestation
	atts = append(atts, own.Att)
	att101, _ := a.schemes[101].Attest(auth.KindExecCheckpoint, wire.CheckpointDigest(4, own.State), top.Execution)
	atts = append(atts, att101)

	b := newWorld(t, func(c *Config) { c.ID = 101; c.OrderAuth = nil; c.ExecAuth = nil })
	b.r.cfg.OrderAuth = b.schemes[101]
	b.r.cfg.ExecAuth = b.schemes[101]

	// B learns stability, asks for the payload.
	b.r.Receive(100, &wire.StableProof{Seq: 4, State: own.State, Atts: atts}, 0)
	if len(b.cap.byType(wire.TCheckpointFetch)) == 0 {
		t.Fatal("StableProof did not trigger a checkpoint fetch")
	}
	// A serves the payload; B restores.
	a.r.Receive(101, &wire.CheckpointFetch{Seq: 4, Executor: 101}, 0)
	var data *wire.CheckpointData
	for _, s := range a.cap.sent {
		if m, ok := s.msg.(*wire.CheckpointData); ok && s.to == 101 {
			data = m
		}
	}
	if data == nil {
		t.Fatal("checkpoint payload not served")
	}
	b.r.Receive(100, data, 0)
	if b.r.MaxN() != 4 || b.app.Value() != 4 {
		t.Fatalf("restored maxN=%d value=%d", b.r.MaxN(), b.app.Value())
	}
	// Tampered payloads are rejected.
	c := newWorld(t, func(cc *Config) { cc.ID = 102; cc.OrderAuth = nil; cc.ExecAuth = nil })
	c.r.cfg.OrderAuth = c.schemes[102]
	c.r.cfg.ExecAuth = c.schemes[102]
	c.r.Receive(100, &wire.StableProof{Seq: 4, State: own.State, Atts: atts}, 0)
	bad := *data
	bad.Payload = append([]byte(nil), data.Payload...)
	bad.Payload[0] ^= 1
	c.r.Receive(100, &bad, 0)
	if c.r.MaxN() != 0 {
		t.Error("tampered checkpoint restored")
	}
}

func TestThresholdShareEmission(t *testing.T) {
	pub, shares, err := threshold.Deal(threshold.NewSeededReader("exec-test"), 512, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	w := newWorld(t, func(c *Config) {
		c.ReplyMode = replycert.ModeThreshold
		c.ThresholdShare = shares[0]
		c.ShareRand = threshold.NewSeededReader("exec-share")
	})
	w.commit(1, []wire.Request{w.req("inc")})
	replies := w.cap.repliesTo(0)
	if len(replies) != 1 {
		t.Fatalf("replies = %d", len(replies))
	}
	v := replycert.NewVerifier(replycert.ModeThreshold, top, nil, pub)
	if err := v.VerifyShare(replies[0]); err != nil {
		t.Fatalf("emitted threshold share invalid: %v", err)
	}
}

func TestSealedExecution(t *testing.T) {
	sl, err := seal.New(seal.DeriveKey([]byte("m"), 1000))
	if err != nil {
		t.Fatal(err)
	}
	w := newWorld(t, func(c *Config) {
		c.Seals = map[types.NodeID]*seal.Sealer{1000: sl}
	})
	sealed, err := sl.SealRequest(nil, []byte("inc"))
	if err != nil {
		t.Fatal(err)
	}
	w.commit(1, []wire.Request{{Client: 1000, Timestamp: 1, Op: sealed}})
	if w.app.Value() != 1 {
		t.Fatal("sealed request not executed")
	}
	reply := w.cap.repliesTo(0)[0].Entries[0]
	plain, err := sl.OpenReply(reply.Body)
	if err != nil {
		t.Fatalf("reply not sealed for the client: %v", err)
	}
	if string(plain) != "1" {
		t.Errorf("sealed reply = %q", plain)
	}
	// Undecryptable bodies yield a deterministic refusal, not divergence.
	w.commit(2, []wire.Request{{Client: 1000, Timestamp: 2, Op: []byte("not ciphertext")}})
	if w.app.Value() != 1 {
		t.Error("garbage ciphertext executed")
	}
	reply2 := w.cap.repliesTo(0)
	last := reply2[len(reply2)-1].Entries[0]
	plain2, err := sl.OpenReply(last.Body)
	if err != nil || string(plain2) != "ERR: unreadable request" {
		t.Errorf("refusal reply = %q err=%v", plain2, err)
	}
}

func TestPipelineBoundTriggersFetch(t *testing.T) {
	w := newWorld(t, nil) // Pipeline = 8
	// A far-future order is dropped but prompts gap filling.
	w.commit(100, []wire.Request{w.req("inc")})
	if w.r.MaxN() != 0 {
		t.Fatal("far-future order executed")
	}
	if len(w.r.pending) != 0 {
		t.Error("far-future order buffered past the pipeline bound")
	}
	if len(w.cap.byType(wire.TFetchMissing)) == 0 {
		t.Error("no fetch after out-of-window order")
	}
}

func TestConfigValidation(t *testing.T) {
	send := func(types.NodeID, []byte) {}
	if _, err := New(Config{Topology: top, ID: 0, ReplyDests: top.Agreement}, counter.New(), send); err == nil {
		t.Error("accepted an agreement node as executor")
	}
	if _, err := New(Config{Topology: top, ID: 100, ReplyMode: replycert.ModeThreshold, ReplyDests: top.Agreement}, counter.New(), send); err == nil {
		t.Error("accepted threshold mode without a key share")
	}
	if _, err := New(Config{Topology: top, ID: 100}, counter.New(), send); err == nil {
		t.Error("accepted config with no reply destinations")
	}
}
