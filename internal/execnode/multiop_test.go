package execnode

import (
	"bytes"
	"testing"

	"repro/internal/wire"
)

// TestMultiOpRequestExecutesPerOp proves a multi-op envelope executes each
// operation in order and answers with one reply entry whose body packs the
// per-op replies.
func TestMultiOpRequestExecutesPerOp(t *testing.T) {
	w := newWorld(t, nil)
	req := w.req("") // fresh timestamp
	req.Op = wire.PackOps([][]byte{[]byte("inc"), []byte("inc"), []byte("get")})
	w.commit(1, []wire.Request{req})
	if w.r.MaxN() != 1 {
		t.Fatalf("maxN = %d, want 1", w.r.MaxN())
	}
	if w.app.Value() != 2 {
		t.Fatalf("counter = %d after two batched incs", w.app.Value())
	}
	if w.r.Metrics.MultiOps != 3 {
		t.Fatalf("Metrics.MultiOps = %d, want 3", w.r.Metrics.MultiOps)
	}
	replies := w.cap.repliesTo(top.Agreement[0])
	if len(replies) != 1 {
		t.Fatalf("%d reply shares, want 1", len(replies))
	}
	if len(replies[0].Entries) != 1 {
		t.Fatalf("%d reply entries for one client, want 1", len(replies[0].Entries))
	}
	bodies, ok := wire.UnpackOpReplies(replies[0].Entries[0].Body)
	if !ok {
		t.Fatal("reply body is not a multi-op envelope")
	}
	want := [][]byte{[]byte("1"), []byte("2"), []byte("2")}
	if len(bodies) != len(want) {
		t.Fatalf("%d per-op replies, want %d", len(bodies), len(want))
	}
	for i := range want {
		if !bytes.Equal(bodies[i], want[i]) {
			t.Fatalf("op %d reply = %q, want %q", i, bodies[i], want[i])
		}
	}
}

// TestMultiOpRetransmissionAnswersFromCache proves the exactly-once table
// treats the whole envelope as one request: a replayed envelope is not
// re-executed and the cached packed reply is reissued.
func TestMultiOpRetransmissionAnswersFromCache(t *testing.T) {
	w := newWorld(t, nil)
	req := w.req("")
	req.Op = wire.PackOps([][]byte{[]byte("inc"), []byte("inc")})
	w.commit(1, []wire.Request{req})
	if w.app.Value() != 2 {
		t.Fatalf("counter = %d", w.app.Value())
	}
	// Same envelope ordered again under a later sequence number.
	w.commit(2, []wire.Request{req})
	if w.app.Value() != 2 {
		t.Fatalf("retransmitted envelope re-executed: counter = %d", w.app.Value())
	}
	if w.r.Metrics.Retransmits != 1 {
		t.Fatalf("Metrics.Retransmits = %d, want 1", w.r.Metrics.Retransmits)
	}
}

// TestRawBodyIsNotMisparsed proves ordinary single-op bodies — including
// ones that merely share the magic first byte — still execute verbatim.
func TestRawBodyIsNotMisparsed(t *testing.T) {
	w := newWorld(t, nil)
	r1 := w.req("inc")
	w.commit(1, []wire.Request{r1})
	if w.app.Value() != 1 {
		t.Fatalf("counter = %d", w.app.Value())
	}
	if w.r.Metrics.MultiOps != 0 {
		t.Fatalf("raw op counted as multi-op: %d", w.r.Metrics.MultiOps)
	}
}
