// Package execnode implements the execution cluster of §3.3: the 2g+1
// application-hosting replicas that process requests in the order proven by
// agreement certificates.
//
// Each replica maintains the application state machine, a bounded pending
// list of ordered-but-not-executed batches, the per-client reply table that
// provides exactly-once semantics, and periodic checkpoints whose stability
// is proven by g+1 signed attestations. Because the channel from the
// agreement cluster is unreliable, the cluster runs its own second-level
// retransmission protocol: gaps are filled by fetching agreement
// certificates from peers, or — when peers have garbage-collected them — by
// transferring a provably stable checkpoint (§3.3.1–§3.3.2).
//
// Only a simple majority of execution replicas needs to be correct: the
// ordering is already cryptographically proven, so g+1 matching replies out
// of 2g+1 replicas certify a correct result. This is the paper's central
// cost reduction over 3f+1-replica execution.
package execnode

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/auth"
	"repro/internal/obs"
	"repro/internal/replycert"
	"repro/internal/seal"
	"repro/internal/sm"
	"repro/internal/storage"
	"repro/internal/threshold"
	"repro/internal/transport"
	"repro/internal/types"
	"repro/internal/wire"
)

// Config parameterizes an execution replica.
type Config struct {
	ID       types.NodeID
	Topology *types.Topology

	// OrderAuth verifies agreement replicas' order attestations (2f+1
	// distinct pieces form an agreement certificate).
	OrderAuth auth.Scheme
	// ReplyAuth attests reply bundles in quorum mode.
	ReplyAuth auth.Scheme
	// ExecAuth signs checkpoint attestations (must be a signature scheme:
	// stability proofs are shown to peers and filters).
	ExecAuth auth.Scheme
	// Verify, when non-nil, fans order-certificate attestation checks out
	// across a bounded worker pool that joins before the handler proceeds.
	// Nil verifies inline.
	Verify *auth.VerifyPool

	// ReplyMode selects quorum (MAC/signature) or threshold certificates.
	ReplyMode replycert.Mode
	// ThresholdShare is this replica's signing share in threshold mode.
	ThresholdShare *threshold.KeyShare
	// ShareRand supplies blinding randomness for share proofs.
	ShareRand io.Reader

	// ClientAuth verifies clients' certified-read probes (KindReadRequest):
	// the same scheme construction the agreement cluster uses for request
	// certificates. Nil disables the read path — ReadRequests are dropped.
	ClientAuth auth.Scheme

	// ReplyDests receives this replica's reply shares: the agreement
	// cluster, or the top firewall row.
	ReplyDests []types.NodeID
	// DirectReplyToClients additionally sends shares straight to clients
	// (the paper's optimization; must stay off behind a privacy firewall).
	DirectReplyToClients bool

	// Seals, when non-nil, holds per-client sealers: request bodies are
	// decrypted before execution and reply bodies encrypted after, so the
	// relay path sees only ciphertext (§4.1).
	Seals map[types.NodeID]*seal.Sealer

	Pipeline           int // P: max buffered out-of-order batches
	CheckpointInterval types.SeqNum
	FetchRetry         types.Time

	// Store, when non-nil, makes the replica durable: applied agreement
	// certificates are appended to its WAL (and synced before their
	// replies are externalized), stable checkpoints are persisted with
	// their g+1 attestations, and Recover restores both after a restart.
	// Nil keeps the seed's in-memory behavior.
	Store storage.Store

	// Obs, when non-nil, receives this replica's metrics (write-only from
	// this package; see internal/obs). Trace, when non-nil, receives
	// lifecycle spans stamped with the protocol clock.
	Obs   *obs.Registry
	Trace *obs.Tracer

	// ReplyRetention bounds the exactly-once reply table: entries whose
	// client has been idle for more than this many sequence numbers are
	// pruned at the next checkpoint (a deterministic point, so all correct
	// replicas prune identically and checkpoint digests still match). A
	// client that retransmits after falling that far behind is re-executed
	// rather than answered from cache — the standard trade for a bounded
	// table. Zero takes the default (4096).
	ReplyRetention types.SeqNum
}

func (c *Config) fillDefaults() {
	if c.Pipeline == 0 {
		c.Pipeline = 32
	}
	if c.CheckpointInterval == 0 {
		c.CheckpointInterval = 64
	}
	if c.FetchRetry == 0 {
		c.FetchRetry = types.Millisecond(40)
	}
	if c.ReplyRetention == 0 {
		c.ReplyRetention = 4096
	}
}

// orderAccum accumulates agreement-certificate pieces for one sequence
// number until 2f+1 distinct replicas vouch for the same order digest.
type orderAccum struct {
	byDigest  map[types.Digest]*orderCand
	firstSeen types.Time // when the first share arrived (apply-lag metric)
}

type orderCand struct {
	order *wire.Order // first message carrying this digest (bodies)
	atts  map[types.NodeID]auth.Attestation
}

// replyState is reply_c: this node's piece of the most recent reply
// certificate sent to client c (§3.3).
type replyState struct {
	timestamp types.Timestamp
	body      []byte       // cached reply body r' (sealed if sealing is on)
	seq       types.SeqNum // batch that last touched this entry (for pruning)
}

// Replica is one execution-cluster member.
type Replica struct {
	cfg      Config
	send     transport.Sender
	readSend transport.Sender // read replies only; nil falls back to send
	top      *types.Topology
	app      sm.StateMachine
	f        int
	g        int

	maxN    types.SeqNum // highest executed sequence number
	pending map[types.SeqNum]*orderAccum
	proofs  map[types.SeqNum]*wire.OrderProof // executed, kept until stable
	replies map[types.NodeID]*replyState
	lastOut map[types.NodeID]*wire.ExecReply // last bundle share per client

	// checkpoints
	ckptVotes  map[types.SeqNum]map[types.NodeID]wire.ExecCheckpoint
	ckptLocal  map[types.SeqNum][]byte // payloads of local checkpoints
	stableSeq  types.SeqNum
	stableDig  types.Digest
	stableAtts []auth.Attestation

	// gap filling
	fetchDeadline types.Time

	// durability
	recovering bool  // suppresses re-logging while replaying the WAL
	storeErr   error // first storage failure; halts execution (fail-stop)

	// observability (write-only from this package; see obs.go)
	om    metrics
	trace *obs.Tracer

	// Metrics counts externally observable activity.
	Metrics Metrics
}

// Metrics aggregates counters exposed for tests and benchmarks.
type Metrics struct {
	Executed      uint64 // batches executed
	Requests      uint64 // requests executed (fresh, not retransmissions)
	MultiOps      uint64 // operations executed out of multi-op envelopes
	Retransmits   uint64 // retransmission acknowledgements produced
	Checkpoints   uint64
	StateTransfer uint64
	Fetches       uint64
	ReadsServed   uint64 // certified-read probes answered from applied state
	ReadsRefused  uint64 // probes answered with a signed refusal
}

// New constructs an execution replica hosting the given state machine.
func New(cfg Config, app sm.StateMachine, send transport.Sender) (*Replica, error) {
	cfg.fillDefaults()
	top := cfg.Topology
	if top == nil {
		return nil, fmt.Errorf("execnode: nil topology")
	}
	role, _, ok := top.RoleOf(cfg.ID)
	if !ok || role != types.RoleExecution {
		return nil, fmt.Errorf("execnode: %v is not an execution replica", cfg.ID)
	}
	if cfg.ReplyMode == replycert.ModeThreshold && cfg.ThresholdShare == nil {
		return nil, fmt.Errorf("execnode: threshold mode requires a key share")
	}
	if len(cfg.ReplyDests) == 0 && !cfg.DirectReplyToClients {
		return nil, fmt.Errorf("execnode: no reply destinations configured")
	}
	return &Replica{
		cfg:       cfg,
		send:      send,
		top:       top,
		app:       app,
		f:         top.F(),
		g:         top.G(),
		pending:   make(map[types.SeqNum]*orderAccum),
		proofs:    make(map[types.SeqNum]*wire.OrderProof),
		replies:   make(map[types.NodeID]*replyState),
		lastOut:   make(map[types.NodeID]*wire.ExecReply),
		ckptVotes: make(map[types.SeqNum]map[types.NodeID]wire.ExecCheckpoint),
		ckptLocal: make(map[types.SeqNum][]byte),
		om:        newExecMetrics(cfg.Obs, cfg.ID),
		trace:     cfg.Trace,
	}, nil
}

// MaxN returns the highest executed sequence number.
func (r *Replica) MaxN() types.SeqNum { return r.maxN }

// StorageErr reports the first storage failure, if any. A replica whose
// store fails stops executing (fail-stop) rather than serving undurable
// results; the cluster masks it like any other fault.
func (r *Replica) StorageErr() error { return r.storeErr }

// StableSeq returns the latest stable checkpoint sequence number.
func (r *Replica) StableSeq() types.SeqNum { return r.stableSeq }

// Deliver implements transport.Node.
func (r *Replica) Deliver(from types.NodeID, data []byte, now types.Time) {
	msg, err := wire.Unmarshal(data)
	if err != nil {
		return
	}
	r.Receive(from, msg, now)
}

// Receive dispatches one decoded message.
func (r *Replica) Receive(from types.NodeID, msg wire.Message, now types.Time) {
	switch m := msg.(type) {
	case *wire.Order:
		r.onOrder(m, now)
	case *wire.OrderProof:
		r.onOrderProof(m, now)
	case *wire.ExecCheckpoint:
		r.onCheckpoint(m, now)
	case *wire.FetchMissing:
		r.onFetchMissing(m, now)
	case *wire.StableProof:
		r.onStableProof(m, now)
	case *wire.CheckpointFetch:
		r.onCheckpointFetch(m, now)
	case *wire.CheckpointData:
		r.onCheckpointData(m, now)
	case *wire.ReadRequest:
		r.onReadRequest(m, now)
	}
}

// --- agreement certificates ------------------------------------------------------

func (r *Replica) onOrder(m *wire.Order, now types.Time) {
	if m.Seq <= r.maxN {
		// Retransmission from the agreement cluster: resend the cached
		// partial reply certificates for the batch's clients (§3.3).
		r.resendCached(m)
		return
	}
	if m.Seq > r.maxN+types.SeqNum(r.cfg.Pipeline) {
		// Beyond the pending-list bound P: we are far behind. Don't
		// buffer, but do start gap-filling so we can rejoin.
		r.requestMissing(now)
		return
	}
	role, _, ok := r.top.RoleOf(m.Replica)
	if !ok || role != types.RoleAgreement || m.Att.Node != m.Replica {
		return
	}
	od := m.OrderDigest()
	if r.cfg.OrderAuth.Verify(auth.KindOrder, od, m.Att) != nil {
		return
	}
	acc := r.pending[m.Seq]
	if acc == nil {
		acc = &orderAccum{byDigest: make(map[types.Digest]*orderCand), firstSeen: now}
		r.pending[m.Seq] = acc
		r.om.queueDepth.Set(int64(len(r.pending)))
	}
	cand := acc.byDigest[od]
	if cand == nil {
		cand = &orderCand{order: m, atts: make(map[types.NodeID]auth.Attestation)}
		acc.byDigest[od] = cand
	}
	cand.atts[m.Replica] = m.Att
	if len(cand.atts) >= 2*r.f+1 {
		r.completeOrder(m.Seq, cand, now)
	}
	// A gap below this sequence number means we missed traffic: ask peers.
	if m.Seq > r.maxN+1 {
		r.requestMissing(now)
	}
}

// onOrderProof applies a complete agreement certificate from a peer (or,
// during recovery, from the replica's own WAL — replay is bounded by the
// log tail, so the live pipeline cap does not apply there).
func (r *Replica) onOrderProof(m *wire.OrderProof, now types.Time) {
	if m.Seq <= r.maxN {
		return
	}
	if !r.recovering && m.Seq > r.maxN+types.SeqNum(r.cfg.Pipeline) {
		return
	}
	od := m.OrderDigest()
	allowed := make(map[types.NodeID]bool)
	for _, id := range r.top.Agreement {
		allowed[id] = true
	}
	if auth.CountDistinctPar(r.cfg.Verify, r.cfg.OrderAuth, auth.KindOrder, od, m.Atts, allowed) < 2*r.f+1 {
		return
	}
	acc := r.pending[m.Seq]
	if acc == nil {
		acc = &orderAccum{byDigest: make(map[types.Digest]*orderCand), firstSeen: now}
		r.pending[m.Seq] = acc
		r.om.queueDepth.Set(int64(len(r.pending)))
	}
	cand := acc.byDigest[od]
	if cand == nil {
		cand = &orderCand{
			order: &wire.Order{View: m.View, Seq: m.Seq, ND: m.ND, Requests: m.Requests},
			atts:  make(map[types.NodeID]auth.Attestation),
		}
		acc.byDigest[od] = cand
	}
	for _, a := range m.Atts {
		cand.atts[a.Node] = a
	}
	r.completeOrder(m.Seq, cand, now)
}

// completeOrder stores the proven certificate and executes in order.
func (r *Replica) completeOrder(n types.SeqNum, cand *orderCand, now types.Time) {
	if _, done := r.proofs[n]; done || n <= r.maxN {
		return
	}
	atts := make([]auth.Attestation, 0, len(cand.atts))
	ids := make([]types.NodeID, 0, len(cand.atts))
	for id := range cand.atts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		atts = append(atts, cand.atts[id])
	}
	r.proofs[n] = &wire.OrderProof{
		View: cand.order.View, Seq: n, ND: cand.order.ND,
		Requests: cand.order.Requests, Atts: atts,
	}
	// Durability: log the self-proving certificate before execution can
	// externalize its effects. Replay feeds it back through onOrderProof.
	if r.cfg.Store != nil && !r.recovering && r.storeErr == nil {
		if err := r.cfg.Store.Append(storage.RecOrder, n, wire.Marshal(r.proofs[n])); err != nil {
			r.storeErr = err
		}
	}
	r.executeReady(now)
}

// executeReady runs proven batches in sequence order. With a store
// configured it first makes every logged certificate durable — one fsync
// covers the whole delivery burst (group commit), and no reply leaves this
// replica for a batch that could vanish in a crash.
func (r *Replica) executeReady(now types.Time) {
	if r.cfg.Store != nil && !r.recovering {
		if r.storeErr != nil {
			return
		}
		if err := r.cfg.Store.Sync(); err != nil {
			r.storeErr = err
			return
		}
	}
	for {
		next := r.maxN + 1
		proof, ok := r.proofs[next]
		if !ok {
			return
		}
		if acc := r.pending[next]; acc != nil {
			observeSince(r.om.applyLag, acc.firstSeen, now)
		}
		delete(r.pending, next)
		r.maxN = next
		r.om.queueDepth.Set(int64(len(r.pending)))
		r.om.appliedSeq.Set(int64(next))
		r.executeBatch(proof, now)
		if next%r.cfg.CheckpointInterval == 0 {
			r.makeCheckpoint(next)
			r.span(now, obs.StageCheckpoint, next, "local")
		}
	}
}

// executeBatch applies the paper's three exactly-once cases per request and
// emits one bundled reply share for the whole batch.
func (r *Replica) executeBatch(proof *wire.OrderProof, now types.Time) {
	r.Metrics.Executed++
	r.om.batches.Inc()
	r.span(now, obs.StageApply, proof.Seq, fmt.Sprintf("reqs=%d", len(proof.Requests)))
	entries := make([]wire.Reply, 0, len(proof.Requests))
	for i := range proof.Requests {
		req := &proof.Requests[i]
		rs := r.replies[req.Client]
		if rs == nil {
			rs = &replyState{}
			r.replies[req.Client] = rs
		}
		rs.seq = proof.Seq
		var entry wire.Reply
		if req.Timestamp > rs.timestamp {
			// Case 1: fresh request — execute it.
			body := r.execute(req, proof.ND)
			rs.timestamp = req.Timestamp
			rs.body = body
			entry = wire.Reply{View: proof.View, Seq: proof.Seq, Client: req.Client, Timestamp: req.Timestamp, Body: body}
			r.Metrics.Requests++
			r.om.requests.Inc()
		} else {
			// Cases 2 and 3: a retransmission (t == t') or a stale
			// request (t < t') — acknowledge the new sequence number
			// with the cached timestamp and reply body.
			entry = wire.Reply{View: proof.View, Seq: proof.Seq, Client: req.Client, Timestamp: rs.timestamp, Body: rs.body}
			r.Metrics.Retransmits++
			r.om.retransmits.Inc()
		}
		entries = append(entries, entry)
	}
	r.om.replyCache.Set(int64(len(r.replies)))
	if len(entries) == 0 {
		return // null batch (view-change filler)
	}
	r.emitBundle(entries, now)
}

// execute runs one request through sealing and the state machine.
func (r *Replica) execute(req *wire.Request, nd types.NonDet) []byte {
	op := req.Op
	if r.cfg.Seals != nil {
		s := r.cfg.Seals[req.Client]
		if s == nil {
			return nil
		}
		plain, err := s.OpenRequest(op)
		if err != nil {
			// Deterministically reject: every correct replica sees the
			// same ciphertext and produces the same refusal.
			return s.SealReply(req.Client, req.Timestamp, []byte("ERR: unreadable request"))
		}
		body := r.executeOps(plain, nd)
		return s.SealReply(req.Client, req.Timestamp, body)
	}
	return r.executeOps(op, nd)
}

// executeOps applies one request body to the state machine. A multi-op
// envelope (client-side batching) is unpacked and each operation executed
// in envelope order, their replies packed into one matching reply envelope
// so the whole batch travels inside a single certified reply entry; any
// other body is a single opaque operation.
func (r *Replica) executeOps(body []byte, nd types.NonDet) []byte {
	ops, ok := wire.UnpackOps(body)
	if !ok {
		return r.app.Execute(body, nd)
	}
	bodies := make([][]byte, len(ops))
	for i, op := range ops {
		bodies[i] = r.app.Execute(op, nd)
	}
	r.Metrics.MultiOps += uint64(len(ops))
	return wire.PackOpReplies(bodies)
}

// emitBundle signs (or attests) the reply bundle and sends the share.
func (r *Replica) emitBundle(entries []wire.Reply, now types.Time) {
	digest := wire.BundleDigest(entries)
	out := &wire.ExecReply{Entries: entries, Executor: r.cfg.ID}
	if r.cfg.ReplyMode == replycert.ModeThreshold {
		sh, err := r.cfg.ThresholdShare.Sign(r.cfg.ShareRand, digest)
		if err != nil {
			return
		}
		out.Share = sh.Marshal()
	} else {
		dests := append([]types.NodeID(nil), r.top.Agreement...)
		for i := range entries {
			dests = append(dests, entries[i].Client)
		}
		att, err := r.cfg.ReplyAuth.Attest(auth.KindReply, digest, dests)
		if err != nil {
			return
		}
		out.Att = att
	}
	for i := range entries {
		r.lastOut[entries[i].Client] = out
	}
	if r.recovering {
		// WAL replay rebuilds the share cache only: these replies were
		// already sent in a previous life, and the agreement cluster's
		// retransmissions (its queue re-drives replayed batches as Order
		// resends) will pull them from lastOut via resendCached.
		return
	}
	r.span(now, obs.StageReply, entries[0].Seq, fmt.Sprintf("entries=%d", len(entries)))
	data := wire.Marshal(out)
	for _, d := range r.cfg.ReplyDests {
		r.send(d, data)
	}
	if r.cfg.DirectReplyToClients {
		sent := make(map[types.NodeID]bool)
		for i := range entries {
			c := entries[i].Client
			if !sent[c] {
				sent[c] = true
				r.send(c, data)
			}
		}
	}
}

// resendCached retransmits the last reply shares for an old order's clients.
func (r *Replica) resendCached(m *wire.Order) {
	sent := make(map[*wire.ExecReply]bool)
	for i := range m.Requests {
		out := r.lastOut[m.Requests[i].Client]
		if out == nil || sent[out] {
			continue
		}
		sent[out] = true
		data := wire.Marshal(out)
		for _, d := range r.cfg.ReplyDests {
			r.send(d, data)
		}
		if r.cfg.DirectReplyToClients {
			r.send(m.Requests[i].Client, data)
		}
	}
}

// --- checkpoints -----------------------------------------------------------------

// makeCheckpoint snapshots application state plus the reply table and shares
// a signed digest with the cluster (§3.3.2).
func (r *Replica) makeCheckpoint(n types.SeqNum) {
	// Bound the reply table before snapshotting it. Checkpoint creation is
	// a deterministic function of the executed log — unlike stability,
	// which depends on message timing — so every correct replica prunes
	// the same entries and digests still match.
	if ret := r.cfg.ReplyRetention; ret > 0 {
		for id, rs := range r.replies {
			if rs.seq+ret < n {
				delete(r.replies, id)
				delete(r.lastOut, id)
			}
		}
	}
	payload := r.marshalCheckpoint()
	digest := types.DigestBytes(payload)
	r.ckptLocal[n] = payload
	r.Metrics.Checkpoints++
	r.om.checkpoints.Inc()
	r.om.ckptBytes.Observe(float64(len(payload)))
	r.om.replyCache.Set(int64(len(r.replies)))
	att, err := r.cfg.ExecAuth.Attest(auth.KindExecCheckpoint, wire.CheckpointDigest(n, digest), r.top.Execution)
	if err != nil {
		return
	}
	cm := wire.ExecCheckpoint{Seq: n, State: digest, Executor: r.cfg.ID, Att: att}
	r.recordCheckpointVote(cm)
	data := wire.Marshal(&cm)
	for _, id := range r.top.Execution {
		if id != r.cfg.ID {
			r.send(id, data)
		}
	}
}

func (r *Replica) onCheckpoint(m *wire.ExecCheckpoint, now types.Time) {
	if m.Seq <= r.stableSeq || m.Executor != m.Att.Node {
		return
	}
	role, _, ok := r.top.RoleOf(m.Executor)
	if !ok || role != types.RoleExecution {
		return
	}
	if r.cfg.ExecAuth.Verify(auth.KindExecCheckpoint, wire.CheckpointDigest(m.Seq, m.State), m.Att) != nil {
		return
	}
	r.recordCheckpointVote(*m)
}

func (r *Replica) recordCheckpointVote(m wire.ExecCheckpoint) {
	votes := r.ckptVotes[m.Seq]
	if votes == nil {
		votes = make(map[types.NodeID]wire.ExecCheckpoint)
		r.ckptVotes[m.Seq] = votes
	}
	votes[m.Executor] = m
	count := 0
	for _, v := range votes {
		if v.State == m.State {
			count++
		}
	}
	// g+1 matching digests prove stability: at least one is from a
	// correct replica, and correct replicas agree.
	if count >= r.g+1 {
		r.makeStable(m.Seq, m.State, votes)
	}
}

func (r *Replica) makeStable(n types.SeqNum, digest types.Digest, votes map[types.NodeID]wire.ExecCheckpoint) {
	if n <= r.stableSeq {
		return
	}
	atts := make([]auth.Attestation, 0, r.g+1)
	ids := make([]types.NodeID, 0, len(votes))
	for id, v := range votes {
		if v.State == digest {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		atts = append(atts, votes[id].Att)
	}
	r.stableSeq = n
	r.stableDig = digest
	r.stableAtts = atts
	r.om.stableSeq.Set(int64(n))
	// Garbage collection (§3.3.2): older certificates, checkpoints, votes.
	for seq := range r.proofs {
		if seq <= n {
			delete(r.proofs, seq)
		}
	}
	for seq := range r.pending {
		if seq <= n {
			delete(r.pending, seq)
		}
	}
	r.om.queueDepth.Set(int64(len(r.pending)))
	for seq := range r.ckptVotes {
		if seq <= n {
			delete(r.ckptVotes, seq)
		}
	}
	for seq := range r.ckptLocal {
		if seq < n {
			delete(r.ckptLocal, seq)
		}
	}
	// Last-reply-share cache entries strictly below the watermark can no
	// longer be demanded by agreement-cluster retransmissions that matter:
	// a client still waiting on one would drive a fresh proposal, which
	// re-answers from the reply table. Dropping them bounds the cache.
	for c, out := range r.lastOut {
		if len(out.Entries) > 0 && out.Entries[0].Seq < n {
			delete(r.lastOut, c)
		}
	}
	// Durability: persist the now-stable checkpoint with its proof, then
	// let the WAL shed segments the checkpoint supersedes.
	r.persistStable(n)
	// If stability ran ahead of local execution we must state-transfer.
	if r.maxN < n {
		if _, ok := r.ckptLocal[n]; !ok {
			r.Metrics.StateTransfer++
			r.om.stateTransfers.Inc()
			r.broadcastExec(wire.Marshal(&wire.CheckpointFetch{Seq: n, Executor: r.cfg.ID}))
		}
	}
}

// persistStable writes the stable checkpoint (payload + g+1 attestation
// proof) to the store, if the payload is locally available, and prunes WAL
// segments it supersedes. Safe to call repeatedly; the store dedups by
// sequence number.
func (r *Replica) persistStable(n types.SeqNum) {
	if r.cfg.Store == nil || r.storeErr != nil || n != r.stableSeq {
		return
	}
	payload, ok := r.ckptLocal[n]
	if !ok {
		return // state ran ahead; onCheckpointData persists once fetched
	}
	proof := wire.Marshal(&wire.StableProof{Seq: n, State: r.stableDig, Atts: r.stableAtts})
	err := r.cfg.Store.SaveCheckpoint(storage.Checkpoint{
		Seq: n, Digest: r.stableDig, Proof: proof, Payload: payload,
	})
	if err == nil {
		err = r.cfg.Store.Prune(n)
	}
	if err != nil {
		r.storeErr = err
	}
}

// marshalCheckpoint serializes app state + reply table, canonically.
func (r *Replica) marshalCheckpoint() []byte {
	var w wire.Writer
	w.Bytes(r.app.Checkpoint())
	ids := make([]types.NodeID, 0, len(r.replies))
	for id := range r.replies {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	w.Len(len(ids))
	for _, id := range ids {
		rs := r.replies[id]
		w.Node(id)
		w.TS(rs.timestamp)
		w.Seq(rs.seq)
		w.Bytes(rs.body)
	}
	return w.B
}

func (r *Replica) restoreCheckpoint(payload []byte) error {
	rd := wire.NewReader(payload)
	appState := rd.Bytes()
	n := rd.SliceLen()
	replies := make(map[types.NodeID]*replyState, n)
	for i := 0; i < n; i++ {
		id := rd.Node()
		replies[id] = &replyState{timestamp: rd.TS(), seq: rd.Seq(), body: rd.Bytes()}
	}
	if rd.Err() != nil || rd.Remaining() != 0 {
		return fmt.Errorf("execnode: malformed checkpoint payload")
	}
	if err := r.app.Restore(appState); err != nil {
		return err
	}
	r.replies = replies
	return nil
}

// --- gap filling and state transfer -----------------------------------------------

func (r *Replica) broadcastExec(data []byte) {
	for _, id := range r.top.Execution {
		if id != r.cfg.ID {
			r.send(id, data)
		}
	}
}

// requestMissing asks peers for the first missing sequence number.
func (r *Replica) requestMissing(now types.Time) {
	if now < r.fetchDeadline {
		return
	}
	r.fetchDeadline = now + r.cfg.FetchRetry
	r.Metrics.Fetches++
	r.broadcastExec(wire.Marshal(&wire.FetchMissing{Seq: r.maxN + 1, Executor: r.cfg.ID}))
}

func (r *Replica) onFetchMissing(m *wire.FetchMissing, now types.Time) {
	role, _, ok := r.top.RoleOf(m.Executor)
	if !ok || role != types.RoleExecution {
		return
	}
	if proof, ok := r.proofs[m.Seq]; ok {
		r.send(m.Executor, wire.Marshal(proof))
		return
	}
	// The certificate is gone; if a newer checkpoint is provably stable,
	// point the peer at it (§3.3.1).
	if r.stableSeq >= m.Seq && len(r.stableAtts) > 0 {
		sp := &wire.StableProof{Seq: r.stableSeq, State: r.stableDig, Atts: r.stableAtts}
		r.send(m.Executor, wire.Marshal(sp))
	}
}

func (r *Replica) onStableProof(m *wire.StableProof, now types.Time) {
	if m.Seq <= r.maxN {
		return
	}
	allowed := make(map[types.NodeID]bool)
	for _, id := range r.top.Execution {
		allowed[id] = true
	}
	cd := wire.CheckpointDigest(m.Seq, m.State)
	if auth.CountDistinctPar(r.cfg.Verify, r.cfg.ExecAuth, auth.KindExecCheckpoint, cd, m.Atts, allowed) < r.g+1 {
		return
	}
	// Adopt the proof and fetch the payload.
	if m.Seq > r.stableSeq {
		r.stableSeq = m.Seq
		r.stableDig = m.State
		r.stableAtts = m.Atts
	}
	r.Metrics.StateTransfer++
	r.broadcastExec(wire.Marshal(&wire.CheckpointFetch{Seq: m.Seq, Executor: r.cfg.ID}))
}

func (r *Replica) onCheckpointFetch(m *wire.CheckpointFetch, now types.Time) {
	role, _, ok := r.top.RoleOf(m.Executor)
	if !ok || role != types.RoleExecution {
		return
	}
	if payload, ok := r.ckptLocal[m.Seq]; ok {
		r.send(m.Executor, wire.Marshal(&wire.CheckpointData{
			Seq: m.Seq, State: types.DigestBytes(payload), Payload: payload,
		}))
	}
}

func (r *Replica) onCheckpointData(m *wire.CheckpointData, now types.Time) {
	if m.Seq <= r.maxN || m.Seq != r.stableSeq || m.State != r.stableDig {
		return
	}
	if types.DigestBytes(m.Payload) != m.State {
		return
	}
	if err := r.restoreCheckpoint(m.Payload); err != nil {
		return
	}
	r.ckptLocal[m.Seq] = m.Payload
	r.maxN = m.Seq
	// Drop anything the checkpoint supersedes, then resume.
	for seq := range r.proofs {
		if seq <= m.Seq {
			delete(r.proofs, seq)
		}
	}
	for seq := range r.pending {
		if seq <= m.Seq {
			delete(r.pending, seq)
		}
	}
	// A state transfer that filled in the stable payload completes the
	// deferred persist from makeStable.
	r.persistStable(m.Seq)
	r.executeReady(now)
}

// --- durable recovery --------------------------------------------------------------

// Recover restores the replica from its store after a restart: the newest
// checkpoint whose g+1 attestations and digest verify, then the WAL tail
// replayed through the normal verify-and-execute path (onOrderProof).
// Anything newer than the log is fetched from peers by the existing
// catch-up protocol once the replica is back online. Unverifiable
// checkpoints and records are skipped, never fatal: a replica with a
// damaged disk restarts empty and state-transfers.
func (r *Replica) Recover(now types.Time) error {
	st := r.cfg.Store
	if st == nil {
		return nil
	}
	r.recovering = true
	defer func() { r.recovering = false }()
	cks, err := st.Checkpoints()
	if err != nil {
		return err
	}
	allowed := make(map[types.NodeID]bool, len(r.top.Execution))
	for _, id := range r.top.Execution {
		allowed[id] = true
	}
	for _, ck := range cks { // newest first; take the first that verifies
		if types.DigestBytes(ck.Payload) != ck.Digest {
			continue
		}
		msg, err := wire.Unmarshal(ck.Proof)
		if err != nil {
			continue
		}
		sp, ok := msg.(*wire.StableProof)
		if !ok || sp.Seq != ck.Seq || sp.State != ck.Digest {
			continue
		}
		cd := wire.CheckpointDigest(ck.Seq, ck.Digest)
		if auth.CountDistinctPar(r.cfg.Verify, r.cfg.ExecAuth, auth.KindExecCheckpoint, cd, sp.Atts, allowed) < r.g+1 {
			continue
		}
		if err := r.restoreCheckpoint(ck.Payload); err != nil {
			continue
		}
		r.maxN = ck.Seq
		r.stableSeq, r.stableDig, r.stableAtts = ck.Seq, ck.Digest, sp.Atts
		r.ckptLocal[ck.Seq] = ck.Payload
		break
	}
	// Replay the tail. Records are self-proving OrderProofs; feeding them
	// through the untrusted receive path re-verifies every attestation, so
	// a tampered WAL can stall recovery but never corrupt state. The
	// pipeline bound is bypassed while recovering (r.recovering) because
	// replay is bounded by the log tail, not by live traffic.
	return st.Replay(r.maxN, func(kind storage.RecordKind, seq types.SeqNum, payload []byte) error {
		if kind != storage.RecOrder || seq <= r.maxN {
			return nil
		}
		msg, err := wire.Unmarshal(payload)
		if err != nil {
			return nil // CRC-clean but unparsable: skip, catch up instead
		}
		if proof, ok := msg.(*wire.OrderProof); ok {
			r.onOrderProof(proof, now)
		}
		return nil
	})
}

// Shutdown flushes and closes the store (graceful-exit path). The replica
// must not be driven afterwards.
func (r *Replica) Shutdown() {
	if r.cfg.Store == nil {
		return
	}
	_ = r.cfg.Store.Sync()
	_ = r.cfg.Store.Close()
}

// CrashStop abandons the store without flushing — the in-process stand-in
// for kill -9 that recovery tests exercise. Graceful paths use Shutdown.
func (r *Replica) CrashStop() {
	if ab, ok := r.cfg.Store.(interface{ Abandon() }); ok {
		ab.Abandon()
	}
}

// Tick retries gap-filling while a gap persists.
func (r *Replica) Tick(now types.Time) {
	gap := false
	for seq := range r.pending {
		if seq > r.maxN+1 {
			gap = true
			break
		}
	}
	if _, haveNext := r.proofs[r.maxN+1]; haveNext {
		gap = false
	}
	if gap || (r.stableSeq > r.maxN) {
		r.requestMissing(now)
	}
}
