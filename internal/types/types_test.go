package types

import (
	"testing"
	"testing/quick"
)

func grid(ids ...NodeID) [][]NodeID {
	// builds a 2x2 grid from 4 ids
	return [][]NodeID{{ids[0], ids[1]}, {ids[2], ids[3]}}
}

func testTopology() *Topology {
	return &Topology{
		Agreement: []NodeID{0, 1, 2, 3},
		Execution: []NodeID{10, 11, 12},
		Filters:   grid(20, 21, 22, 23),
		Clients:   []NodeID{100, 101},
	}
}

func TestTopologyQuorums(t *testing.T) {
	top := testTopology()
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := top.F(); got != 1 {
		t.Errorf("F = %d, want 1", got)
	}
	if got := top.G(); got != 1 {
		t.Errorf("G = %d, want 1", got)
	}
	if got := top.H(); got != 1 {
		t.Errorf("H = %d, want 1", got)
	}
	if got := top.AgreementQuorum(); got != 3 {
		t.Errorf("AgreementQuorum = %d, want 3", got)
	}
	if got := top.ExecutionQuorum(); got != 2 {
		t.Errorf("ExecutionQuorum = %d, want 2", got)
	}
	if !top.HasFirewall() {
		t.Error("HasFirewall = false, want true")
	}
}

func TestTopologyLargerClusters(t *testing.T) {
	top := &Topology{
		Agreement: []NodeID{0, 1, 2, 3, 4, 5, 6}, // f=2
		Execution: []NodeID{10, 11, 12, 13, 14},  // g=2
	}
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	if top.F() != 2 || top.G() != 2 {
		t.Errorf("F,G = %d,%d want 2,2", top.F(), top.G())
	}
	if top.H() != 0 || top.HasFirewall() {
		t.Error("expected no firewall")
	}
}

func TestTopologyValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		top  Topology
	}{
		{"too few agreement", Topology{Agreement: []NodeID{0, 1, 2}, Execution: []NodeID{10, 11, 12}}},
		{"not 3f+1", Topology{Agreement: []NodeID{0, 1, 2, 3, 4}, Execution: []NodeID{10, 11, 12}}},
		{"too few execution", Topology{Agreement: []NodeID{0, 1, 2, 3}, Execution: []NodeID{10, 11}}},
		{"even execution", Topology{Agreement: []NodeID{0, 1, 2, 3}, Execution: []NodeID{10, 11, 12, 13}}},
		{"duplicate id", Topology{Agreement: []NodeID{0, 1, 2, 3}, Execution: []NodeID{3, 11, 12}}},
		{"ragged grid", Topology{Agreement: []NodeID{0, 1, 2, 3}, Execution: []NodeID{10, 11, 12}, Filters: [][]NodeID{{20, 21}, {22}}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.top.Validate(); err == nil {
				t.Error("Validate accepted invalid topology")
			}
		})
	}
}

func TestRoleOf(t *testing.T) {
	top := testTopology()
	cases := []struct {
		id   NodeID
		role Role
		idx  int
	}{
		{0, RoleAgreement, 0},
		{3, RoleAgreement, 3},
		{11, RoleExecution, 1},
		{21, RoleFilter, 1},
		{23, RoleFilter, 3},
		{101, RoleClient, 1},
	}
	for _, c := range cases {
		role, idx, ok := top.RoleOf(c.id)
		if !ok || role != c.role || idx != c.idx {
			t.Errorf("RoleOf(%v) = %v,%d,%v; want %v,%d,true", c.id, role, idx, ok, c.role, c.idx)
		}
	}
	if _, _, ok := top.RoleOf(999); ok {
		t.Error("RoleOf(999) found a role for an unknown node")
	}
}

func TestFilterRowOf(t *testing.T) {
	top := testTopology()
	if r := top.FilterRowOf(20); r != 0 {
		t.Errorf("FilterRowOf(20) = %d, want 0", r)
	}
	if r := top.FilterRowOf(23); r != 1 {
		t.Errorf("FilterRowOf(23) = %d, want 1", r)
	}
	if r := top.FilterRowOf(0); r != -1 {
		t.Errorf("FilterRowOf(0) = %d, want -1", r)
	}
}

func TestPrimaryRotation(t *testing.T) {
	top := testTopology()
	for v := View(0); v < 12; v++ {
		want := top.Agreement[int(v)%4]
		if got := top.Primary(v); got != want {
			t.Errorf("Primary(%d) = %v, want %v", v, got, want)
		}
	}
}

func TestDigestConcatFraming(t *testing.T) {
	// Length framing must distinguish ("ab","c") from ("a","bc").
	if DigestConcat([]byte("ab"), []byte("c")) == DigestConcat([]byte("a"), []byte("bc")) {
		t.Error("DigestConcat does not frame lengths")
	}
	if DigestConcat([]byte("ab")) == DigestConcat([]byte("ab"), nil) {
		t.Error("DigestConcat ignores empty trailing parts")
	}
}

func TestDigestConcatDeterministic(t *testing.T) {
	f := func(a, b []byte) bool {
		return DigestConcat(a, b) == DigestConcat(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestComputeNonDetRand(t *testing.T) {
	r1 := ComputeNonDetRand(2, 3)
	r2 := ComputeNonDetRand(2, 3)
	if r1 != r2 {
		t.Error("ComputeNonDetRand is not deterministic")
	}
	if r1 == ComputeNonDetRand(2, 4) || r1 == ComputeNonDetRand(3, 3) {
		t.Error("ComputeNonDetRand collides across distinct inputs")
	}
}

func TestAllNodesSorted(t *testing.T) {
	top := testTopology()
	all := top.AllNodes()
	if len(all) != 4+3+4+2 {
		t.Fatalf("AllNodes returned %d nodes, want 13", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1] >= all[i] {
			t.Fatalf("AllNodes not sorted or has duplicates at %d: %v", i, all)
		}
	}
}

func TestDigestString(t *testing.T) {
	d := DigestBytes([]byte("x"))
	if len(d.String()) != 12 {
		t.Errorf("Digest.String() = %q, want 12 hex chars", d.String())
	}
	if ZeroDigest.IsZero() != true || d.IsZero() {
		t.Error("IsZero misclassifies digests")
	}
}
