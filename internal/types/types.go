// Package types defines the primitive identifiers and values shared by every
// layer of the system: node identities, protocol views and sequence numbers,
// logical timestamps, and message digests.
//
// The package is intentionally tiny and dependency-free; every other package
// in the repository imports it.
package types

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
)

// NodeID uniquely identifies a node (client, agreement replica, execution
// replica, or firewall filter) across the whole deployment.
type NodeID int32

// NoNode is the zero NodeID, used when a field is unset.
const NoNode NodeID = -1

func (n NodeID) String() string { return fmt.Sprintf("n%d", int32(n)) }

// Role classifies a node by the cluster it belongs to.
type Role uint8

// Node roles.
const (
	RoleClient Role = iota
	RoleAgreement
	RoleExecution
	RoleFilter
)

func (r Role) String() string {
	switch r {
	case RoleClient:
		return "client"
	case RoleAgreement:
		return "agreement"
	case RoleExecution:
		return "execution"
	case RoleFilter:
		return "filter"
	default:
		return fmt.Sprintf("role(%d)", uint8(r))
	}
}

// View numbers agreement-protocol views; view v is led by primary
// replica index v mod n within the agreement cluster.
type View uint64

// SeqNum is the position a request (batch) is bound to in the total order.
type SeqNum uint64

// Timestamp is a client-chosen logical timestamp. Correct clients issue
// monotonically increasing timestamps; the protocol uses them only for
// exactly-once filtering, never for ordering.
type Timestamp uint64

// Time is a monotonic instant in nanoseconds. In simulation it is virtual;
// with real transports it is time.Since(start).
type Time int64

// Millisecond expresses n milliseconds as a Time duration.
func Millisecond(n int64) Time { return Time(n * 1e6) }

// DigestSize is the byte length of a Digest (SHA-256).
const DigestSize = 32

// Digest is a SHA-256 hash used to name requests, batches, checkpoints, and
// replies throughout the protocol.
type Digest [DigestSize]byte

// ZeroDigest is the all-zero digest, used for null requests and unset fields.
var ZeroDigest Digest

// DigestBytes hashes a byte slice.
func DigestBytes(b []byte) Digest { return Digest(sha256.Sum256(b)) }

// DigestConcat hashes the concatenation of several byte slices with
// unambiguous length framing, so DigestConcat(a, b) != DigestConcat(a+b).
func DigestConcat(parts ...[]byte) Digest {
	h := sha256.New()
	var lenBuf [8]byte
	for _, p := range parts {
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(p)))
		h.Write(lenBuf[:])
		h.Write(p)
	}
	var d Digest
	h.Sum(d[:0])
	return d
}

func (d Digest) String() string { return hex.EncodeToString(d[:6]) }

// IsZero reports whether d is the zero digest.
func (d Digest) IsZero() bool { return d == ZeroDigest }

// NonDet carries the nondeterministic inputs the agreement cluster binds to a
// batch: a wall-clock-ish timestamp and pseudo-random bits. The execution
// cluster's abstraction layer deterministically maps these to any
// application-specific values (file handles, mtimes) it needs, so replicas
// never diverge (paper §3.1.4).
type NonDet struct {
	Time Timestamp // primary-proposed time, sanity-checked by backups
	Rand Digest    // SHA256(view||seq||time): verifiable, oblivious randomness
}

// ComputeNonDetRand derives the canonical pseudo-random bits for a batch.
// Backups recompute it to validate the primary's proposal, so a faulty
// primary cannot steer application nondeterminism. It is deliberately
// view-independent: a batch re-proposed after a view change must carry the
// same nondeterministic inputs it originally prepared with.
func ComputeNonDetRand(n SeqNum, t Timestamp) Digest {
	var b [16]byte
	binary.BigEndian.PutUint64(b[0:8], uint64(n))
	binary.BigEndian.PutUint64(b[8:16], uint64(t))
	return DigestBytes(b[:])
}

// Topology describes the node membership of one deployment: which NodeIDs
// form the agreement cluster, the execution cluster, the firewall grid, and
// the client population. It is static for the lifetime of a deployment.
type Topology struct {
	Agreement []NodeID   // 3f+1 agreement replicas, index = replica id
	Execution []NodeID   // 2g+1 execution replicas
	Filters   [][]NodeID // (h+1) rows x (h+1) cols; row 0 adjacent to agreement
	Clients   []NodeID
}

// F returns the number of agreement faults tolerated: (len(A)-1)/3.
func (t *Topology) F() int { return (len(t.Agreement) - 1) / 3 }

// G returns the number of execution faults tolerated: (len(E)-1)/2.
func (t *Topology) G() int { return (len(t.Execution) - 1) / 2 }

// H returns the number of firewall faults tolerated: rows-1 (0 if no grid).
func (t *Topology) H() int {
	if len(t.Filters) == 0 {
		return 0
	}
	return len(t.Filters) - 1
}

// HasFirewall reports whether a privacy firewall grid is deployed.
func (t *Topology) HasFirewall() bool { return len(t.Filters) > 0 }

// AgreementQuorum is the certificate size for agreement attestations: 2f+1.
func (t *Topology) AgreementQuorum() int { return 2*t.F() + 1 }

// ExecutionQuorum is the certificate size for reply/checkpoint certificates:
// g+1 (a simple majority of 2g+1 suffices because ordering is already proven).
func (t *Topology) ExecutionQuorum() int { return t.G() + 1 }

// RoleOf reports the role and cluster index of id, or ok=false if unknown.
func (t *Topology) RoleOf(id NodeID) (role Role, index int, ok bool) {
	for i, a := range t.Agreement {
		if a == id {
			return RoleAgreement, i, true
		}
	}
	for i, e := range t.Execution {
		if e == id {
			return RoleExecution, i, true
		}
	}
	for r, row := range t.Filters {
		for c, f := range row {
			if f == id {
				return RoleFilter, r*len(row) + c, true
			}
		}
	}
	for i, c := range t.Clients {
		if c == id {
			return RoleClient, i, true
		}
	}
	return 0, 0, false
}

// FilterRowOf returns the grid row of filter id, or -1 if id is not a filter.
func (t *Topology) FilterRowOf(id NodeID) int {
	for r, row := range t.Filters {
		for _, f := range row {
			if f == id {
				return r
			}
		}
	}
	return -1
}

// AllNodes returns every node in the topology, sorted by NodeID.
func (t *Topology) AllNodes() []NodeID {
	var all []NodeID
	all = append(all, t.Agreement...)
	all = append(all, t.Execution...)
	for _, row := range t.Filters {
		all = append(all, row...)
	}
	all = append(all, t.Clients...)
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return all
}

// Primary returns the agreement replica that leads view v.
func (t *Topology) Primary(v View) NodeID {
	return t.Agreement[int(uint64(v)%uint64(len(t.Agreement)))]
}

// PrimaryIndex returns the agreement-cluster index of the view-v primary.
func (t *Topology) PrimaryIndex(v View) int {
	return int(uint64(v) % uint64(len(t.Agreement)))
}

// Validate checks structural invariants: non-empty clusters, 3f+1 and 2g+1
// sizing, square filter grid, and globally unique NodeIDs.
func (t *Topology) Validate() error {
	if len(t.Agreement) < 4 || (len(t.Agreement)-1)%3 != 0 {
		return fmt.Errorf("topology: agreement cluster must have 3f+1 >= 4 members, got %d", len(t.Agreement))
	}
	if len(t.Execution) < 3 || (len(t.Execution)-1)%2 != 0 {
		return fmt.Errorf("topology: execution cluster must have 2g+1 >= 3 members, got %d", len(t.Execution))
	}
	for i, row := range t.Filters {
		if len(row) != len(t.Filters) {
			return fmt.Errorf("topology: filter grid must be square, row %d has %d cols for %d rows", i, len(row), len(t.Filters))
		}
	}
	seen := make(map[NodeID]bool)
	for _, id := range t.AllNodes() {
		if seen[id] {
			return fmt.Errorf("topology: duplicate node id %v", id)
		}
		seen[id] = true
	}
	return nil
}
