// Package seal encrypts request and reply bodies between clients and the
// execution cluster so that agreement nodes and privacy-firewall filters
// relay only ciphertext (§4.1: "request and reply bodies are encrypted so
// that the client and execution nodes can read them but agreement nodes and
// firewall nodes cannot").
//
// AES-256-GCM with explicit nonces. Requests use random nonces. Replies must
// be byte-identical across all execution replicas — otherwise reply
// certificates could never assemble — so reply nonces are derived
// deterministically from (client, timestamp, direction): each (key, nonce)
// pair is still used at most once because correct clients issue strictly
// increasing timestamps.
package seal

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/types"
)

// KeySize is the AES-256 key length.
const KeySize = 32

// NonceSize is the GCM nonce length.
const NonceSize = 12

// Sealer encrypts and decrypts bodies under one client⇄execution key.
type Sealer struct {
	aead cipher.AEAD
}

// New returns a Sealer for a 32-byte key.
func New(key []byte) (*Sealer, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("seal: key must be %d bytes, got %d", KeySize, len(key))
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	return &Sealer{aead: aead}, nil
}

// DeriveKey derives the per-client sealing key from a deployment master
// secret. In a real deployment clients and executors would provision these
// out of band; the derivation stands in for that channel.
func DeriveKey(master []byte, client types.NodeID) []byte {
	h := sha256.New()
	h.Write([]byte("saebft-seal"))
	h.Write(master)
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(int32(client)))
	h.Write(b[:])
	return h.Sum(nil)
}

// SealRequest encrypts a request body with a random nonce.
func (s *Sealer) SealRequest(rng io.Reader, plaintext []byte) ([]byte, error) {
	nonce := make([]byte, NonceSize)
	if rng == nil {
		rng = rand.Reader
	}
	if _, err := io.ReadFull(rng, nonce); err != nil {
		return nil, err
	}
	return s.aead.Seal(nonce, nonce, plaintext, []byte("req")), nil
}

// replyNonce derives the deterministic reply nonce for (client, timestamp).
func replyNonce(client types.NodeID, t types.Timestamp) []byte {
	var b [12]byte
	binary.BigEndian.PutUint32(b[0:4], uint32(int32(client)))
	binary.BigEndian.PutUint64(b[4:12], uint64(t))
	h := sha256.Sum256(b[:])
	return h[:NonceSize]
}

// SealReply encrypts a reply body deterministically: every correct executor
// produces the same ciphertext for the same (client, timestamp, body).
func (s *Sealer) SealReply(client types.NodeID, t types.Timestamp, plaintext []byte) []byte {
	nonce := replyNonce(client, t)
	return s.aead.Seal(append([]byte(nil), nonce...), nonce, plaintext, []byte("rep"))
}

// ErrMalformed reports a ciphertext too short to contain a nonce.
var ErrMalformed = errors.New("seal: malformed ciphertext")

// OpenRequest decrypts a request body.
func (s *Sealer) OpenRequest(ciphertext []byte) ([]byte, error) {
	if len(ciphertext) < NonceSize {
		return nil, ErrMalformed
	}
	return s.aead.Open(nil, ciphertext[:NonceSize], ciphertext[NonceSize:], []byte("req"))
}

// OpenReply decrypts a reply body.
func (s *Sealer) OpenReply(ciphertext []byte) ([]byte, error) {
	if len(ciphertext) < NonceSize {
		return nil, ErrMalformed
	}
	return s.aead.Open(nil, ciphertext[:NonceSize], ciphertext[NonceSize:], []byte("rep"))
}
