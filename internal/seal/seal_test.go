package seal

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/types"
)

func newSealer(t *testing.T) *Sealer {
	t.Helper()
	s, err := New(DeriveKey([]byte("master"), 100))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewRejectsBadKey(t *testing.T) {
	if _, err := New([]byte("short")); err == nil {
		t.Error("New accepted a short key")
	}
}

func TestDeriveKeyPerClient(t *testing.T) {
	a := DeriveKey([]byte("m"), 100)
	b := DeriveKey([]byte("m"), 101)
	if bytes.Equal(a, b) {
		t.Error("per-client keys collide")
	}
	if len(a) != KeySize {
		t.Errorf("key size = %d, want %d", len(a), KeySize)
	}
	if bytes.Equal(DeriveKey([]byte("m1"), 100), DeriveKey([]byte("m2"), 100)) {
		t.Error("keys ignore the master secret")
	}
}

func TestRequestRoundTrip(t *testing.T) {
	s := newSealer(t)
	ct, err := s.SealRequest(nil, []byte("secret op"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(ct, []byte("secret op")) {
		t.Error("ciphertext contains plaintext")
	}
	pt, err := s.OpenRequest(ct)
	if err != nil {
		t.Fatal(err)
	}
	if string(pt) != "secret op" {
		t.Errorf("got %q", pt)
	}
}

func TestReplyDeterministicAcrossReplicas(t *testing.T) {
	// Two sealers with the same key (two correct executors) must produce
	// identical ciphertext, or reply certificates could never assemble.
	s1 := newSealer(t)
	s2 := newSealer(t)
	c1 := s1.SealReply(100, 7, []byte("result"))
	c2 := s2.SealReply(100, 7, []byte("result"))
	if !bytes.Equal(c1, c2) {
		t.Error("reply sealing is not deterministic across replicas")
	}
	// But distinct (client, timestamp) pairs get distinct nonces.
	c3 := s1.SealReply(100, 8, []byte("result"))
	if bytes.Equal(c1, c3) {
		t.Error("different timestamps produced identical ciphertext")
	}
	pt, err := s1.OpenReply(c1)
	if err != nil {
		t.Fatal(err)
	}
	if string(pt) != "result" {
		t.Errorf("got %q", pt)
	}
}

func TestTamperDetected(t *testing.T) {
	s := newSealer(t)
	ct := s.SealReply(100, 1, []byte("x"))
	ct[len(ct)-1] ^= 1
	if _, err := s.OpenReply(ct); err == nil {
		t.Error("tampered reply decrypted")
	}
	rq, _ := s.SealRequest(nil, []byte("y"))
	rq[NonceSize] ^= 1
	if _, err := s.OpenRequest(rq); err == nil {
		t.Error("tampered request decrypted")
	}
}

func TestDomainSeparationReqVsReply(t *testing.T) {
	s := newSealer(t)
	ct := s.SealReply(100, 1, []byte("x"))
	if _, err := s.OpenRequest(ct); err == nil {
		t.Error("reply ciphertext opened as request")
	}
}

func TestOpenMalformed(t *testing.T) {
	s := newSealer(t)
	for _, b := range [][]byte{nil, {1, 2, 3}, make([]byte, NonceSize)} {
		if _, err := s.OpenRequest(b); err == nil {
			t.Errorf("OpenRequest accepted %v", b)
		}
		if _, err := s.OpenReply(b); err == nil {
			t.Errorf("OpenReply accepted %v", b)
		}
	}
}

func TestWrongKeyFails(t *testing.T) {
	s1 := newSealer(t)
	s2, err := New(DeriveKey([]byte("master"), 101))
	if err != nil {
		t.Fatal(err)
	}
	ct, _ := s1.SealRequest(nil, []byte("op"))
	if _, err := s2.OpenRequest(ct); err == nil {
		t.Error("another client's key decrypted the request")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	s := newSealer(t)
	f := func(body []byte, ts uint64) bool {
		ct := s.SealReply(100, types.Timestamp(ts), body)
		pt, err := s.OpenReply(ct)
		if err != nil {
			return false
		}
		return bytes.Equal(pt, body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
