// Package sm defines the deterministic state machine abstraction that
// execution replicas host (§2): given the same sequence of operations and
// the same agreed nondeterministic inputs, all correct replicas transition
// identically and produce identical replies.
package sm

import "repro/internal/types"

// StateMachine is a deterministic application.
//
// Execute applies one operation and returns the reply body. nd carries the
// agreement cluster's oblivious nondeterministic inputs (timestamp and
// pseudo-random bits); the application's abstraction layer deterministically
// maps them to any application-specific values it needs (file handles,
// mtimes — §3.1.4). Execute must be deterministic: no clocks, no randomness,
// no iteration over unordered maps.
//
// Checkpoint serializes the current state; Restore replaces the state with a
// previously checkpointed one, such that Checkpoint-then-Restore on another
// replica converges (§2: restore(checkpoint(C)) = C).
type StateMachine interface {
	Execute(op []byte, nd types.NonDet) []byte
	Checkpoint() []byte
	Restore(data []byte) error
}

// Querier is optionally implemented by state machines that can answer
// read-only operations without mutating state. Query evaluates op against
// the current state and returns the reply body, or ok=false when op is not
// read-only (or the machine cannot tell) — such operations must go through
// full agreement and Execute.
//
// Query must be deterministic and side-effect free: two replicas whose
// states have applied the same operation prefix must return identical
// bodies, and interleaving Query calls between Execute calls must not
// change any subsequent reply or checkpoint. The certified read path
// (execution replicas answering clients directly, bypassing agreement)
// depends on both properties.
type Querier interface {
	Query(op []byte) ([]byte, bool)
}

// Func adapts a stateless function to the StateMachine interface. Useful for
// echo-style benchmark servers with no state to checkpoint.
type Func func(op []byte, nd types.NonDet) []byte

// Execute implements StateMachine.
func (f Func) Execute(op []byte, nd types.NonDet) []byte { return f(op, nd) }

// Checkpoint implements StateMachine: stateless machines have empty state.
func (f Func) Checkpoint() []byte { return nil }

// Restore implements StateMachine.
func (f Func) Restore(data []byte) error { return nil }
