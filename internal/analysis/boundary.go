package analysis

import (
	"strconv"
	"strings"
)

// Boundary is the typed replacement for the CI shell boundary lint: cmd/
// and examples/ packages are consumers of the public repro/saebft embedding
// API, and reaching into internal/ (internal/core especially) bypasses the
// supported surface. Unlike the retired grep, it resolves real import
// declarations — string matches in comments or test fixtures cannot trip
// it — and exemptions are explicit //lint:allow annotations with written
// reasons instead of silent pattern gaps.
var Boundary = &Analyzer{
	Name: "boundary",
	Doc:  "cmd/ and examples/ must import only the public saebft package, never internal/",
	Run:  runBoundary,
}

func runBoundary(p *Pass) {
	if p.Module == "" || !hasPathSegment(p.Path, "cmd") && !hasPathSegment(p.Path, "examples") {
		return
	}
	forbidden := p.Module + "/internal"
	for _, file := range p.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == forbidden || strings.HasPrefix(path, forbidden+"/") {
				p.Reportf(imp.Pos(), "%s imports %s; cmd/ and examples/ must stay on the public %s/saebft surface",
					p.Path, path, p.Module)
			}
		}
	}
}

func hasPathSegment(path, seg string) bool {
	for _, s := range strings.Split(path, "/") {
		if s == seg {
			return true
		}
	}
	return false
}
