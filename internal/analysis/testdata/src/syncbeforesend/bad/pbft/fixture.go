// Package pbft is the violating fixture for the syncbeforesend check: its
// import-path base puts it in the analyzer's scope, and each function
// externalizes a message while logged voting state is still unsynced.
package pbft

import (
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/types"
)

type replica struct {
	out   transport.Sender
	store storage.Store
}

func (r *replica) logVote() bool             { return true }
func (r *replica) syncVotes() bool           { return true }
func (r *replica) broadcast([]byte)          {}
func (r *replica) send(types.NodeID, []byte) {}

func (r *replica) voteThenBroadcast(msg []byte) {
	r.logVote()
	r.broadcast(msg) // want syncbeforesend
}

func (r *replica) appendThenSend(seq types.SeqNum, rec, msg []byte) {
	_ = r.store.Append(storage.RecCommit, seq, rec)
	r.out(1, msg) // want syncbeforesend
}

func (r *replica) syncTooLate(msg []byte) {
	r.logVote()
	r.broadcast(msg) // want syncbeforesend
	r.syncVotes()
}

// The burst-outbox helper is a method, not a Sender-typed field; the
// analyzer must still treat it as externalization.
func (r *replica) voteThenUnicast(msg []byte) {
	r.logVote()
	r.send(1, msg) // want syncbeforesend
}
