// Package pbft is the clean fixture for the syncbeforesend check: every
// path that logs voting state reaches a sync before anything is sent.
package pbft

import (
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/types"
)

type replica struct {
	out   transport.Sender
	store storage.Store
}

func (r *replica) logVote() bool             { return true }
func (r *replica) syncVotes() bool           { return true }
func (r *replica) broadcast([]byte)          {}
func (r *replica) send(types.NodeID, []byte) {}

// The codebase's canonical pattern: log, sync, then externalize.
func (r *replica) voteSyncBroadcast(msg []byte) {
	if !r.logVote() || !r.syncVotes() {
		return
	}
	r.broadcast(msg)
}

func (r *replica) appendSyncSend(seq types.SeqNum, rec, msg []byte) {
	if err := r.store.Append(storage.RecCommit, seq, rec); err != nil {
		return
	}
	if err := r.store.Sync(); err != nil {
		return
	}
	r.out(1, msg)
}

// A send with no pending log event is fine.
func (r *replica) plainSend(msg []byte) {
	r.broadcast(msg)
}

// Group commit: the sync happens in a later handler, and nothing is sent
// in this one, so no promise externalizes early.
func (r *replica) deferredSync(seq types.SeqNum, rec []byte) {
	_ = r.store.Append(storage.RecCommit, seq, rec)
}

// The burst-outbox unicast helper after log + sync is the canonical
// pattern, same as broadcast.
func (r *replica) voteSyncUnicast(msg []byte) {
	if !r.logVote() || !r.syncVotes() {
		return
	}
	r.send(1, msg)
}
