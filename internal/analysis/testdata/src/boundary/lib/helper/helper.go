// Package helper sits outside cmd/ and examples/, so the boundary check
// does not apply to its internal imports.
package helper

import "repro/internal/storage"

func Kind() storage.RecordKind { return storage.RecCommit }
