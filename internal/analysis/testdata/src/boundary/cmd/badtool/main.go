// Command badtool violates the public-API boundary: a cmd/ package
// reaching into internal/.
package main

import (
	"repro/internal/storage" // want boundary
)

func main() {
	var s storage.Store
	_ = s
}
