// Command goodtool stays on the public surface; nothing to flag.
package main

import "fmt"

func main() {
	fmt.Println("stays on the public surface")
}
