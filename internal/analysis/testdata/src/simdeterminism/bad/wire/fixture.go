// Package wire is the violating fixture for the simdeterminism check: its
// import-path base puts it in the deterministic scope, and each function
// leaks a wall clock, shared randomness, or map iteration order.
package wire

import (
	"crypto/sha256"
	"math/rand"
	"time"

	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/types"
)

type conn struct {
	out   transport.Sender
	store storage.Store
}

// Marshal stands in for the canonical encoders: it lives in a repro/
// package, which makes it an order sink.
func Marshal(parts [][]byte) []byte {
	var out []byte
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

func wallClock() int64 {
	return time.Now().UnixNano() // want simdeterminism
}

func sharedRand() int {
	return rand.Intn(4) // want simdeterminism
}

func unsortedCollect(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want simdeterminism
	}
	return keys
}

func sendInOrder(c *conn, peers map[types.NodeID][]byte) {
	for id, payload := range peers {
		c.out(id, payload) // want simdeterminism
	}
}

func encodeInOrder(m map[string][]byte) [][]byte {
	var parts [][]byte
	for _, v := range m {
		enc := Marshal([][]byte{v}) // want simdeterminism
		parts = append(parts, enc)  // want simdeterminism
	}
	return parts
}

func digestInOrder(m map[string][]byte) []byte {
	h := sha256.New()
	for k := range m {
		h.Write([]byte(k)) // want simdeterminism
	}
	return h.Sum(nil)
}

func appendWAL(c *conn, m map[types.SeqNum][]byte) {
	for seq, payload := range m {
		_ = c.store.Append(storage.RecCommit, seq, payload) // want simdeterminism
	}
}

// The metrics/trace plane is write-only inside the deterministic scope:
// reading an instrument back (or snapshotting, dumping, serving) would let
// observability feed protocol decisions, digests, or encodings.

func readCounterBack(c *obs.Counter) uint64 {
	return c.Value() // want simdeterminism
}

func gateOnGauge(g *obs.Gauge, payload []byte) []byte {
	if g.Value() > 0 { // want simdeterminism
		return payload
	}
	return nil
}

func histogramIntoDigest(h *obs.Histogram) float64 {
	return h.Sum() // want simdeterminism
}

func snapshotRegistry(r *obs.Registry) int {
	return len(r.Snapshot()) // want simdeterminism
}

func replayTrace(tr *obs.Tracer) int {
	return len(tr.Dump()) // want simdeterminism
}

func serveFromReplica(r *obs.Registry, tr *obs.Tracer) {
	_, _ = obs.ServeOps("127.0.0.1:0", r, tr) // want simdeterminism
}
