// Package wire is the violating fixture for the simdeterminism check: its
// import-path base puts it in the deterministic scope, and each function
// leaks a wall clock, shared randomness, or map iteration order.
package wire

import (
	"crypto/sha256"
	"math/rand"
	"time"

	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/types"
)

type conn struct {
	out   transport.Sender
	store storage.Store
}

// Marshal stands in for the canonical encoders: it lives in a repro/
// package, which makes it an order sink.
func Marshal(parts [][]byte) []byte {
	var out []byte
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

func wallClock() int64 {
	return time.Now().UnixNano() // want simdeterminism
}

func sharedRand() int {
	return rand.Intn(4) // want simdeterminism
}

func unsortedCollect(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want simdeterminism
	}
	return keys
}

func sendInOrder(c *conn, peers map[types.NodeID][]byte) {
	for id, payload := range peers {
		c.out(id, payload) // want simdeterminism
	}
}

func encodeInOrder(m map[string][]byte) [][]byte {
	var parts [][]byte
	for _, v := range m {
		enc := Marshal([][]byte{v}) // want simdeterminism
		parts = append(parts, enc)  // want simdeterminism
	}
	return parts
}

func digestInOrder(m map[string][]byte) []byte {
	h := sha256.New()
	for k := range m {
		h.Write([]byte(k)) // want simdeterminism
	}
	return h.Sum(nil)
}

func appendWAL(c *conn, m map[types.SeqNum][]byte) {
	for seq, payload := range m {
		_ = c.store.Append(storage.RecCommit, seq, payload) // want simdeterminism
	}
}
