// Package wire is the clean fixture for the simdeterminism check: map
// iteration feeding only order-insensitive work, the collect-then-sort
// idiom, and explicitly seeded local randomness.
package wire

import (
	"math/rand"
	"slices"
	"sort"

	"repro/internal/obs"
	"repro/internal/types"
)

func sortedCollect(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedIDs(m map[types.NodeID]struct{}) []types.NodeID {
	ids := make([]types.NodeID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func slicesSorted(m map[int]bool) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}

func countMatching(m map[string]int, want int) int {
	n := 0
	for _, v := range m {
		if v == want {
			n++
		}
	}
	return n
}

func highestSeq(m map[types.SeqNum]bool) types.SeqNum {
	var top types.SeqNum
	for s := range m {
		if s > top {
			top = s
		}
	}
	return top
}

func seededDraw() int {
	r := rand.New(rand.NewSource(42))
	return r.Intn(6)
}

// The write-only obs surface is legal in the deterministic scope: series
// registration, the instrument write methods, trace recording, and the
// label / unit helpers.

func registerSeries(r *obs.Registry, node string) (*obs.Counter, *obs.Gauge, *obs.Histogram) {
	l := obs.L("node", node)
	c := r.Counter("saebft_fixture_events_total", "events", l)
	g := r.Gauge("saebft_fixture_depth", "depth", l)
	h := r.Histogram("saebft_fixture_seconds", "latency", obs.LatencyBuckets, l)
	r.Unregister("saebft_fixture_depth", l)
	return c, g, h
}

func recordOnly(c *obs.Counter, g *obs.Gauge, h *obs.Histogram, tr *obs.Tracer, elapsedNs int64) {
	c.Inc()
	c.Add(3)
	g.Set(7)
	g.Add(-1)
	h.Observe(obs.Seconds(elapsedNs))
	tr.Record(obs.Span{At: elapsedNs, Stage: obs.StageExecuted})
}
