// Package wire is the clean fixture for the simdeterminism check: map
// iteration feeding only order-insensitive work, the collect-then-sort
// idiom, and explicitly seeded local randomness.
package wire

import (
	"math/rand"
	"slices"
	"sort"

	"repro/internal/types"
)

func sortedCollect(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedIDs(m map[types.NodeID]struct{}) []types.NodeID {
	ids := make([]types.NodeID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func slicesSorted(m map[int]bool) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}

func countMatching(m map[string]int, want int) int {
	n := 0
	for _, v := range m {
		if v == want {
			n++
		}
	}
	return n
}

func highestSeq(m map[types.SeqNum]bool) types.SeqNum {
	var top types.SeqNum
	for s := range m {
		if s > top {
			top = s
		}
	}
	return top
}

func seededDraw() int {
	r := rand.New(rand.NewSource(42))
	return r.Intn(6)
}
