// Package gate is the clean fixture for the verifygate check: every
// verdict is branched on, returned, or handed to another function.
package gate

import "errors"

var errInvalid = errors.New("invalid")

func VerifyAtt(sig []byte) bool { return len(sig) > 0 }

func VerifyPair(a, b []byte) (bool, error) { return len(a) == len(b), nil }

func record(bool) {}

func gated(sig []byte) bool {
	if !VerifyAtt(sig) {
		return false
	}
	return true
}

func branched(a, b []byte) error {
	ok, err := VerifyPair(a, b)
	if err != nil {
		return err
	}
	if !ok {
		return errInvalid
	}
	return nil
}

func returned(sig []byte) bool {
	return VerifyAtt(sig)
}

func passedAlong(sig []byte) {
	record(VerifyAtt(sig))
}

// Reassignment after a read is fine; the first verdict did its job.
func reassignedAfterRead(a, b []byte) bool {
	ok := VerifyAtt(a)
	if !ok {
		return false
	}
	ok = VerifyAtt(b)
	return ok
}
