// Package gate is the violating fixture for the verifygate check: each
// function drops a verification verdict in one of the flagged ways.
package gate

func VerifyAtt(sig []byte) bool { return len(sig) > 0 }

func VerifyPair(a, b []byte) (bool, error) { return len(a) == len(b), nil }

func discarded(sig []byte) {
	VerifyAtt(sig) // want verifygate
}

func blankAssigned(sig []byte) {
	_ = VerifyAtt(sig) // want verifygate
}

func blankTuple(a, b []byte) {
	_, _ = VerifyPair(a, b) // want verifygate
}

func goDiscard(sig []byte) {
	go VerifyAtt(sig) // want verifygate
}

func deferDiscard(sig []byte) {
	defer VerifyAtt(sig) // want verifygate
}

// The classic shadowing bug: the first verdict is overwritten before
// anything reads it, so only the second check ever gates the path.
func clobbered(a, b []byte) bool {
	ok := VerifyAtt(a) // want verifygate
	ok = VerifyAtt(b)
	return ok
}
