// Package wire exercises the //lint:allow annotation machinery: one valid
// suppression plus the three hygiene failures (unknown check name, missing
// reason, and a directive that suppresses nothing).
package wire

import "time"

// Uptime is operator telemetry; the annotation documents why the
// determinism check does not apply to this wall-clock read.
func Uptime(start time.Time) time.Duration {
	//lint:allow simdeterminism wall-clock telemetry for operators; the result never reaches protocol state or message bytes
	return time.Now().Sub(start)
}

func bogusDirective() {
	//lint:allow nosuchcheck this check name does not exist
}

// The reasonless directive is itself a finding, and it suppresses
// nothing: the wall-clock read below must still surface.
func missingReason(start time.Time) time.Duration {
	//lint:allow simdeterminism
	return time.Now().Sub(start)
}

func unusedDirective() {
	//lint:allow verifygate nothing on this line needs suppressing
}
