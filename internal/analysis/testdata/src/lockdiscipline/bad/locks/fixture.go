// Package locks is the violating fixture for the lockdiscipline check:
// blocking calls inside mutex critical sections, including the branch
// cases the lexical interpreter must model.
package locks

import (
	"net"
	"sync"
	"time"

	"repro/internal/transport"
)

type guarded struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	wg  sync.WaitGroup
	snd transport.Sender
}

func (g *guarded) sleepUnderLock() {
	g.mu.Lock()
	time.Sleep(time.Millisecond) // want lockdiscipline
	g.mu.Unlock()
}

func (g *guarded) sleepUnderDeferredUnlock() {
	g.mu.Lock()
	defer g.mu.Unlock()
	time.Sleep(time.Millisecond) // want lockdiscipline
}

// The early-exit unlock releases only its own branch; the fallthrough
// path still holds the lock.
func (g *guarded) earlyExitStillHeld(cond bool) {
	g.mu.Lock()
	if cond {
		g.mu.Unlock()
		return
	}
	time.Sleep(time.Millisecond) // want lockdiscipline
	g.mu.Unlock()
}

// A lock taken in one branch is conservatively held afterwards.
func (g *guarded) branchLock(cond bool) {
	if cond {
		g.mu.Lock()
	}
	time.Sleep(time.Millisecond) // want lockdiscipline
	g.mu.Unlock()
}

func (g *guarded) sendUnderLock(msg []byte) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.snd(1, msg) // want lockdiscipline
}

func (g *guarded) waitUnderLock() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.wg.Wait() // want lockdiscipline
}

func (g *guarded) readUnderRLock(c net.Conn, buf []byte) {
	g.rw.RLock()
	defer g.rw.RUnlock()
	c.Read(buf) // want lockdiscipline
}
