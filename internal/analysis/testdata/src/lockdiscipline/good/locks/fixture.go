// Package locks is the clean fixture for the lockdiscipline check:
// blocking work kept outside critical sections, goroutines as independent
// contexts, and the legal sync.Cond.Wait-under-lock pattern.
package locks

import (
	"sync"
	"time"
)

type guarded struct {
	mu    sync.Mutex
	cond  *sync.Cond
	ready bool
	n     int
}

func (g *guarded) unlockBeforeSleep(d time.Duration) int {
	g.mu.Lock()
	n := g.n
	g.mu.Unlock()
	time.Sleep(d)
	return n
}

// A goroutine body does not inherit the spawner's critical section.
func (g *guarded) spawnUnderLock() {
	g.mu.Lock()
	defer g.mu.Unlock()
	go func() {
		time.Sleep(time.Millisecond)
	}()
}

// Cond.Wait requires holding L and releases it while blocked; this is the
// one wait that belongs inside a critical section.
func (g *guarded) condWait() {
	g.mu.Lock()
	for !g.ready {
		g.cond.Wait()
	}
	g.mu.Unlock()
}

// Sleeping after the branch's own unlock is fine on that path.
func (g *guarded) earlyExitReleased(cond bool) {
	g.mu.Lock()
	if cond {
		g.mu.Unlock()
		time.Sleep(time.Millisecond)
		return
	}
	g.mu.Unlock()
	time.Sleep(time.Millisecond)
}
