package analysis

import "encoding/json"

// The machine-readable report schema, versioned so CI consumers of the
// findings artifact can detect incompatible changes.
type jsonReport struct {
	Version    int           `json:"version"`
	Findings   []jsonFinding `json:"findings"`
	Suppressed []jsonFinding `json:"suppressed"`
}

type jsonFinding struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
	Reason  string `json:"reason,omitempty"`
}

// JSONVersion identifies the current report schema.
const JSONVersion = 1

// EncodeJSON renders a result as the versioned findings report. Findings
// and suppressed entries encode as empty arrays, never null, so consumers
// can index unconditionally.
func EncodeJSON(res *Result) ([]byte, error) {
	rep := jsonReport{
		Version:    JSONVersion,
		Findings:   make([]jsonFinding, 0, len(res.Findings)),
		Suppressed: make([]jsonFinding, 0, len(res.Suppressed)),
	}
	for _, f := range res.Findings {
		rep.Findings = append(rep.Findings, toJSON(f))
	}
	for _, f := range res.Suppressed {
		rep.Suppressed = append(rep.Suppressed, toJSON(f))
	}
	return json.MarshalIndent(rep, "", "  ")
}

func toJSON(f Finding) jsonFinding {
	return jsonFinding{
		Check:   f.Check,
		File:    f.Pos.Filename,
		Line:    f.Pos.Line,
		Col:     f.Pos.Column,
		Message: f.Message,
		Reason:  f.Reason,
	}
}
