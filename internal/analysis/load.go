package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// A Package is one fully parsed and type-checked unit of analysis.
type Package struct {
	Path   string // import path
	Name   string
	Dir    string
	Module string // owning module path ("repro")
	Fset   *token.FileSet
	Files  []*ast.File // non-test files, with comments
	Types  *types.Package
	Info   *types.Info
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Load resolves patterns with `go list -json -export -deps` (run in dir, ""
// meaning the current directory) and type-checks every matched package from
// source, importing dependencies through their compiled export data. This
// is the stdlib-only equivalent of a go/packages load: the go tool supplies
// build-system facts, go/parser + go/types supply the syntax and types.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-json", "-export", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	exports := map[string]string{}
	var targets []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue // test-only or empty package
		}
		var files []*ast.File
		for _, g := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, g), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", t.ImportPath, err)
		}
		mod := ""
		if t.Module != nil {
			mod = t.Module.Path
		}
		pkgs = append(pkgs, &Package{
			Path:   t.ImportPath,
			Name:   t.Name,
			Dir:    t.Dir,
			Module: mod,
			Fset:   fset,
			Files:  files,
			Types:  tpkg,
			Info:   info,
		})
	}
	return pkgs, nil
}
