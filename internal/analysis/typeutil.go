package analysis

import (
	"go/ast"
	"go/types"
)

// namedType reports whether t (after unwrapping pointers and aliases) is
// the named type path.name.
func namedType(t types.Type, path, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Name() != name {
		return false
	}
	if obj.Pkg() == nil {
		return path == "" // universe scope (e.g. error)
	}
	return obj.Pkg().Path() == path
}

// funcObj resolves a call's callee to its *types.Func, nil for calls of
// function values, builtins, and conversions.
func funcObj(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	f, _ := info.Uses[id].(*types.Func)
	return f
}

// isPkgFunc reports whether call invokes the package-level function
// path.name (e.g. time.Now).
func isPkgFunc(info *types.Info, call *ast.CallExpr, path, name string) bool {
	f := funcObj(info, call)
	if f == nil || f.Name() != name || f.Pkg() == nil || f.Pkg().Path() != path {
		return false
	}
	return f.Signature().Recv() == nil
}

// recvOf returns the declared type of a method call's receiver expression,
// nil for non-selector calls.
func recvOf(info *types.Info, call *ast.CallExpr) types.Type {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return info.TypeOf(sel.X)
}

// methodPkg returns the defining package path of a call's method, "" when
// the callee is not a method or is unresolved.
func methodPkg(info *types.Info, call *ast.CallExpr) string {
	f := funcObj(info, call)
	if f == nil || f.Signature().Recv() == nil || f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path()
}

// isSenderCall reports whether call invokes a transport.Sender value (the
// replicas' injected send function) or a Send method defined by the
// transport package — the two primitives through which anything leaves a
// node.
func isSenderCall(info *types.Info, call *ast.CallExpr) bool {
	if namedType(info.TypeOf(call.Fun), "repro/internal/transport", "Sender") {
		return true
	}
	f := funcObj(info, call)
	return f != nil && f.Name() == "Send" && methodPkg(info, call) == "repro/internal/transport"
}

// isStoreCall reports whether call invokes the named method on the
// storage.Store interface (the durable WAL + checkpoint store).
func isStoreCall(info *types.Info, call *ast.CallExpr, names ...string) bool {
	f := funcObj(info, call)
	if f == nil {
		return false
	}
	for _, n := range names {
		if f.Name() == n {
			return namedType(recvOf(info, call), "repro/internal/storage", "Store")
		}
	}
	return false
}

// exprKey renders a chain of identifiers and selectors ("n.mu") for use as
// a map key; non-trivial expressions collapse to "".
func exprKey(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if base := exprKey(e.X); base != "" {
			return base + "." + e.Sel.Name
		}
	}
	return ""
}

// funcBodies yields every function body in the file along with its name:
// declared functions and methods, with nested function literals visited as
// part of the enclosing body.
func funcBodies(file *ast.File, fn func(name string, body *ast.BlockStmt)) {
	for _, decl := range file.Decls {
		d, ok := decl.(*ast.FuncDecl)
		if !ok || d.Body == nil {
			continue
		}
		fn(d.Name.Name, d.Body)
	}
}
