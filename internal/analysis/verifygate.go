package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// VerifyGate ensures cryptographic verification actually gates the
// untrusted receive paths: the result of any Verify*/verify* call (auth
// attestation checks, threshold share and certificate checks, prepared-
// evidence checks) must flow into a branch or a caller. Three ways of
// dropping a verdict are flagged:
//
//   - the call as a bare statement (result discarded outright),
//   - the result assigned to the blank identifier,
//   - the result assigned to a variable that is overwritten before any
//     read — the classic shadowing bug where a second check clobbers the
//     first and only the last one is ever branched on.
//
// Passing the result to another function or returning it counts as use;
// where the verdict goes from there is that function's problem, and this
// analyzer will meet it there too.
var VerifyGate = &Analyzer{
	Name: "verifygate",
	Doc:  "results of Verify* calls must be branched on, never discarded or overwritten unread",
	Run:  runVerifyGate,
}

func runVerifyGate(p *Pass) {
	for _, file := range p.Files {
		funcBodies(file, func(name string, body *ast.BlockStmt) {
			ast.Inspect(body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.BlockStmt:
					scanVerifyList(p, n.List)
				case *ast.CaseClause:
					scanVerifyList(p, n.Body)
				case *ast.CommClause:
					scanVerifyList(p, n.Body)
				}
				return true
			})
		})
	}
}

// isVerifyCall reports calls to Verify-shaped functions that produce a
// verdict (at least one result).
func isVerifyCall(p *Pass, call *ast.CallExpr) bool {
	f := funcObj(p.Info, call)
	if f == nil {
		return false
	}
	name := f.Name()
	if !strings.HasPrefix(name, "Verify") && !strings.HasPrefix(name, "verify") {
		return false
	}
	return f.Signature().Results().Len() > 0
}

// scanVerifyList checks one statement list (one lexical scope) for
// discarded or clobbered verification verdicts.
func scanVerifyList(p *Pass, stmts []ast.Stmt) {
	for i, st := range stmts {
		switch s := st.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && isVerifyCall(p, call) {
				p.Reportf(call.Pos(), "%s result discarded; the verdict must gate this path", calleeName(call))
			}
		case *ast.GoStmt:
			if isVerifyCall(p, s.Call) {
				p.Reportf(s.Call.Pos(), "%s result discarded by go statement", calleeName(s.Call))
			}
		case *ast.DeferStmt:
			if isVerifyCall(p, s.Call) {
				p.Reportf(s.Call.Pos(), "%s result discarded by defer statement", calleeName(s.Call))
			}
		case *ast.AssignStmt:
			checkVerifyAssign(p, s, stmts[i+1:])
		}
	}
}

// checkVerifyAssign flags verify results assigned to blanks, and results
// assigned to a variable whose next touch in the same scope is another
// write — the verdict is clobbered before anyone reads it.
func checkVerifyAssign(p *Pass, s *ast.AssignStmt, rest []ast.Stmt) {
	for ri, rhs := range s.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !isVerifyCall(p, call) {
			continue
		}
		// The LHS identifiers this call's results land in: 1:1 for
		// parallel assignment, all of them for a tuple assignment.
		lhs := s.Lhs
		if len(s.Rhs) == len(s.Lhs) {
			lhs = s.Lhs[ri : ri+1]
		}
		allBlank := true
		for _, l := range lhs {
			id, ok := ast.Unparen(l).(*ast.Ident)
			if !ok || id.Name != "_" {
				allBlank = false
			}
		}
		if allBlank {
			p.Reportf(call.Pos(), "%s result assigned to _; the verdict must gate this path", calleeName(call))
			continue
		}
		for _, l := range lhs {
			id, ok := ast.Unparen(l).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := p.Info.Defs[id]
			if obj == nil {
				obj = p.Info.Uses[id]
			}
			if obj == nil {
				continue
			}
			if clobberedBeforeRead(p, obj, rest) {
				p.Reportf(call.Pos(), "%s result in %q is overwritten before it is read; the verdict is never checked",
					calleeName(call), id.Name)
			}
		}
	}
}

// clobberedBeforeRead scans the statements following an assignment: true
// when the first statement touching obj writes it without reading it.
func clobberedBeforeRead(p *Pass, obj types.Object, rest []ast.Stmt) bool {
	for _, st := range rest {
		reads, writes := objTouches(p, obj, st)
		if reads {
			return false
		}
		if writes {
			return true
		}
	}
	return false
}

// objTouches reports whether stmt reads and/or writes obj. An assignment
// like v = v+1 both writes and reads, which counts as a read of the
// verdict.
func objTouches(p *Pass, obj types.Object, stmt ast.Stmt) (reads, writes bool) {
	lhsIdents := map[*ast.Ident]bool{}
	ast.Inspect(stmt, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, l := range as.Lhs {
				if id, ok := ast.Unparen(l).(*ast.Ident); ok {
					lhsIdents[id] = true
				}
			}
		}
		return true
	})
	ast.Inspect(stmt, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if p.Info.Uses[id] != obj && p.Info.Defs[id] != obj {
			return true
		}
		if lhsIdents[id] {
			writes = true
		} else {
			reads = true
		}
		return true
	})
	return reads, writes
}
