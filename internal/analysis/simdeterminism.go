package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// SimDeterminism polices the replica-determinism contract in the consensus
// packages (pbft, execnode, sm, wire, replycert, threshold): agreement needs
// 2f+1 — and execution g+1 — independently computed digests to match
// bit-for-bit, so nothing on those paths may read a wall clock, draw from a
// shared random source, or serialize map contents in Go's randomized
// iteration order. Three patterns are flagged:
//
//   - time.Now: replicas act on the protocol clock (types.Time handed to
//     Receive/Tick) and on the primary's agreed nondeterminism, never on
//     their own wall clock.
//   - the global math/rand / math/rand/v2 functions: any randomness must be
//     the agreed PRF output (types.ComputeNonDetRand) or an explicitly
//     seeded local source.
//   - ranging over a map while feeding an order-sensitive sink — message
//     construction or encoding, digests, hash writes, WAL appends, sends,
//     or a slice append that no later sort canonicalizes.
//   - reading the metrics/trace plane: inside the deterministic packages
//     the repro/internal/obs surface is write-only (registration plus
//     Inc/Add/Set/Observe/Record, and the obs.L / obs.Seconds helpers), so
//     observability can never feed digests, encoders, or WAL appends. A
//     replica whose behavior depends on its own counters diverges from one
//     whose operator scraped at a different moment.
//
// Order-insensitive map loops (counting, max-tracking, set inserts,
// deletes) are not flagged, and the codebase's standard collect-then-sort
// idiom is recognized: an append inside a map range is fine when the
// enclosing function sorts afterwards.
var SimDeterminism = &Analyzer{
	Name: "simdeterminism",
	Doc:  "no wall clock, global randomness, or map-iteration-order dependence in the deterministic consensus packages",
	Run:  runSimDeterminism,
}

func runSimDeterminism(p *Pass) {
	if !baseIn(p.Path, "pbft", "execnode", "sm", "wire", "replycert", "threshold") {
		return
	}
	for _, file := range p.Files {
		funcBodies(file, func(name string, body *ast.BlockStmt) {
			ast.Inspect(body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if isPkgFunc(p.Info, n, "time", "Now") {
						p.Reportf(n.Pos(), "time.Now in a deterministic package; use the protocol clock or agreed nondeterminism")
					}
					if f := funcObj(p.Info, n); f != nil && isGlobalRand(f) {
						p.Reportf(n.Pos(), "global %s.%s in a deterministic package; use the agreed PRF or a seeded local source",
							f.Pkg().Path(), f.Name())
					}
					if f := funcObj(p.Info, n); f != nil && f.Pkg() != nil &&
						f.Pkg().Path() == "repro/internal/obs" && !obsWriteOnly(f) {
						p.Reportf(n.Pos(), "obs.%s in a deterministic package; the metrics/trace plane is write-only here (registration, Inc/Add/Set/Observe/Record, obs.L, obs.Seconds)",
							f.Name())
					}
				case *ast.RangeStmt:
					if t := p.Info.TypeOf(n.X); t != nil {
						if _, isMap := t.Underlying().(*types.Map); isMap {
							checkMapRange(p, body, n)
						}
					}
				}
				return true
			})
		})
	}
}

// isGlobalRand reports package-level draws from the shared math/rand
// sources. Constructors for local, explicitly seeded generators stay legal.
func isGlobalRand(f *types.Func) bool {
	if f.Pkg() == nil || f.Signature().Recv() != nil {
		return false
	}
	switch f.Pkg().Path() {
	case "math/rand", "math/rand/v2":
	default:
		return false
	}
	return !strings.HasPrefix(f.Name(), "New")
}

// obsWriteOnly reports whether an obs-package callee is on the write-only
// allowlist for deterministic packages: series registration on the
// Registry, the instrument write methods, trace recording, and the label /
// unit helpers. Everything else — Value, Sum, Snapshot, WritePrometheus,
// Dump, Total, ServeOps, constructors — is a read of (or a door into) the
// observability plane and has no business on a consensus path.
func obsWriteOnly(f *types.Func) bool {
	recv := f.Signature().Recv()
	if recv == nil {
		switch f.Name() {
		case "L", "Seconds":
			return true
		}
		return false
	}
	t := recv.Type()
	switch {
	case namedType(t, "repro/internal/obs", "Registry"):
		switch f.Name() {
		case "Counter", "Gauge", "Histogram", "CounterFunc", "GaugeFunc", "Unregister":
			return true
		}
	case namedType(t, "repro/internal/obs", "Counter"),
		namedType(t, "repro/internal/obs", "Gauge"):
		switch f.Name() {
		case "Inc", "Add", "Set":
			return true
		}
	case namedType(t, "repro/internal/obs", "Histogram"):
		return f.Name() == "Observe"
	case namedType(t, "repro/internal/obs", "Tracer"):
		return f.Name() == "Record"
	}
	return false
}

// checkMapRange flags order-sensitive sinks inside a map-range body.
func checkMapRange(p *Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
			if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin && !sortsAfter(p, fnBody, rng) {
				p.Reportf(call.Pos(), "append inside map iteration with no later sort; iteration order leaks into an ordered sequence")
			}
			return true
		}
		if sink, ok := orderSink(p, call); ok {
			p.Reportf(call.Pos(), "%s inside map iteration; iteration order leaks into %s", calleeName(call), sink)
		}
		return true
	})
}

// orderSink classifies calls whose argument order becomes externally
// visible bytes: encoders, digests, hash writes, WAL appends, and sends.
func orderSink(p *Pass, call *ast.CallExpr) (string, bool) {
	if isSenderCall(p.Info, call) {
		return "the send order", true
	}
	switch name := calleeName(call); {
	case name == "broadcast" || name == "broadcastExec":
		return "the send order", true
	case name == "Marshal" || strings.HasPrefix(name, "Encode"):
		if f := funcObj(p.Info, call); f != nil && strings.HasPrefix(f.Pkg().Path(), "repro/") {
			return "the encoded message", true
		}
	case strings.HasPrefix(name, "Digest") || strings.HasPrefix(name, "Sum"):
		if f := funcObj(p.Info, call); f != nil {
			return "a digest", true
		}
	case name == "Write":
		// Hash or canonical-encoder writes; ordinary io is not on the
		// deterministic paths.
		if rt := recvOf(p.Info, call); namedType(rt, "hash", "Hash") || namedType(rt, "repro/internal/wire", "Writer") {
			return "a digest or canonical encoding", true
		}
	case name == "Append":
		if isStoreCall(p.Info, call, "Append") {
			return "the WAL record order", true
		}
	}
	return "", false
}

// sortsAfter reports whether the enclosing function canonicalizes order
// after the loop: any sort.* / slices.Sort* call lexically following the
// range statement.
func sortsAfter(p *Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		if f := funcObj(p.Info, call); f != nil && f.Pkg() != nil {
			switch f.Pkg().Path() {
			case "sort":
				found = true
			case "slices":
				if strings.Contains(f.Name(), "Sort") {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
