package analysis

import (
	"go/ast"
	"go/token"
)

// SyncBeforeSend enforces the durability ordering the recovery design
// depends on (PR 3/PR 4): inside the agreement and execution replicas, any
// handler path that logs externalization-gating WAL state — a vote, a
// prepared certificate, a view transition, or a raw Store.Append — must
// reach a storage sync (syncVotes or Store.Sync) before anything is handed
// to the transport. A send that slips in between externalizes a promise the
// replica may not remember after a crash: the exact equivocation window the
// durable-voting work closed.
//
// The check is intraprocedural and follows statement order, which matches
// how the replicas are written: log, sync, then send, all in the same
// handler. A log whose sync happens in a later handler (e.g. the group
// commit in executeReady) is fine as long as no send appears in between in
// the same function.
var SyncBeforeSend = &Analyzer{
	Name: "syncbeforesend",
	Doc:  "WAL-logged voting state must be synced before any transport send in the same handler",
	Run:  runSyncBeforeSend,
}

func runSyncBeforeSend(p *Pass) {
	if !baseIn(p.Path, "pbft", "execnode") {
		return
	}
	for _, file := range p.Files {
		funcBodies(file, func(name string, body *ast.BlockStmt) {
			var pending token.Pos // first unsynced log event, NoPos if none
			var what string
			ast.Inspect(body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch {
				case isLogEvent(p, call):
					if pending == token.NoPos {
						pending = call.Pos()
						what = calleeName(call)
					}
				case isSyncEvent(p, call):
					pending = token.NoPos
				case isSendEvent(p, call):
					if pending != token.NoPos {
						p.Reportf(call.Pos(), "send reachable before the %s at %s is synced; call syncVotes/Store.Sync first",
							what, p.Fset.Position(pending))
					}
				}
				return true
			})
		})
	}
}

// isLogEvent: an append of externalization-gating durable state.
func isLogEvent(p *Pass, call *ast.CallExpr) bool {
	switch calleeName(call) {
	case "logVote", "logPrepared", "logView":
		return true
	}
	return isStoreCall(p.Info, call, "Append")
}

// isSyncEvent: the fsync that makes pending appends durable.
func isSyncEvent(p *Pass, call *ast.CallExpr) bool {
	if calleeName(call) == "syncVotes" {
		return true
	}
	return isStoreCall(p.Info, call, "Sync")
}

// isSendEvent: a message leaving the node — the replicas' broadcast/send
// helpers or a direct transport.Sender invocation. "send" is a name match
// because pbft routes it through the burst outbox (a method, not a
// Sender-typed field): queuing for the post-sync flush still externalizes
// the message from this handler's point of view.
func isSendEvent(p *Pass, call *ast.CallExpr) bool {
	switch calleeName(call) {
	case "broadcast", "broadcastExec", "send":
		return true
	}
	return isSenderCall(p.Info, call)
}
