package analysis

import (
	"encoding/json"
	"fmt"
	"io/fs"
	"path/filepath"
	"slices"
	"sort"
	"strings"
	"sync"
	"testing"
)

// The fixture packages under testdata/src are loaded once for the whole
// test binary: Load shells out to `go list -export`, which is the
// expensive part.
var (
	fixOnce sync.Once
	fixPkgs []*Package
	fixErr  error
)

func loadFixtures(t *testing.T) []*Package {
	t.Helper()
	fixOnce.Do(func() {
		dirSet := map[string]bool{}
		fixErr = filepath.WalkDir("testdata/src", func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(path, ".go") {
				dirSet["./"+filepath.ToSlash(filepath.Dir(path))] = true
			}
			return nil
		})
		if fixErr != nil {
			return
		}
		dirs := make([]string, 0, len(dirSet))
		for d := range dirSet {
			dirs = append(dirs, d)
		}
		sort.Strings(dirs)
		fixPkgs, fixErr = Load("", dirs...)
	})
	if fixErr != nil {
		t.Fatalf("loading fixtures: %v", fixErr)
	}
	return fixPkgs
}

// fixturesFor selects the loaded packages under testdata/src/<subtree>/.
func fixturesFor(t *testing.T, subtree string) []*Package {
	t.Helper()
	var out []*Package
	for _, p := range loadFixtures(t) {
		if strings.Contains(p.Path, "/testdata/src/"+subtree+"/") {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		t.Fatalf("no fixture packages under testdata/src/%s", subtree)
	}
	return out
}

// wantedFindings collects the `// want <check> [<check> ...]` markers from
// fixture sources, keyed file:line:check with a count per key.
func wantedFindings(pkgs []*Package) map[string]int {
	want := map[string]int{}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "// want ")
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, check := range strings.Fields(text) {
						want[fmt.Sprintf("%s:%d:%s", pos.Filename, pos.Line, check)]++
					}
				}
			}
		}
	}
	return want
}

// runFixtureTest proves one analyzer against its violating and clean
// fixtures: findings must match the want markers exactly, position by
// position, so removing the analyzer (or breaking its detection) fails
// the test.
func runFixtureTest(t *testing.T, a *Analyzer) {
	pkgs := fixturesFor(t, a.Name)
	res, err := RunPackages(pkgs, []*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Suppressed) != 0 {
		t.Errorf("unexpected suppressions in %s fixtures: %v", a.Name, res.Suppressed)
	}
	want := wantedFindings(pkgs)
	if len(want) == 0 {
		t.Fatalf("%s fixtures declare no expected findings; the test proves nothing", a.Name)
	}
	got := map[string]int{}
	for _, f := range res.Findings {
		got[fmt.Sprintf("%s:%d:%s", f.Pos.Filename, f.Pos.Line, f.Check)]++
	}
	for k, n := range want {
		if got[k] != n {
			t.Errorf("want %d finding(s) at %s, got %d", n, k, got[k])
		}
	}
	for k, n := range got {
		if want[k] == 0 {
			t.Errorf("unexpected finding(s) at %s (x%d)", k, n)
		}
	}
}

func TestSyncBeforeSendFixtures(t *testing.T) { runFixtureTest(t, SyncBeforeSend) }
func TestSimDeterminismFixtures(t *testing.T) { runFixtureTest(t, SimDeterminism) }
func TestVerifyGateFixtures(t *testing.T)     { runFixtureTest(t, VerifyGate) }
func TestLockDisciplineFixtures(t *testing.T) { runFixtureTest(t, LockDiscipline) }
func TestBoundaryFixtures(t *testing.T)       { runFixtureTest(t, Boundary) }

// TestSuiteRegistration pins the driver's analyzer set: dropping one from
// Analyzers() is a test failure, not a silent coverage loss.
func TestSuiteRegistration(t *testing.T) {
	want := []string{"syncbeforesend", "simdeterminism", "verifygate", "lockdiscipline", "boundary"}
	var got []string
	for _, a := range Analyzers() {
		got = append(got, a.Name)
	}
	if !slices.Equal(got, want) {
		t.Fatalf("Analyzers() = %v, want %v", got, want)
	}
}

func TestAllowDirectives(t *testing.T) {
	res, err := RunPackages(fixturesFor(t, "allow"), Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Suppressed) != 1 {
		t.Fatalf("suppressed = %v, want exactly one", res.Suppressed)
	}
	sup := res.Suppressed[0]
	if sup.Check != "simdeterminism" || !strings.Contains(sup.Reason, "wall-clock telemetry") {
		t.Errorf("suppressed finding = %+v, want a simdeterminism finding carrying the annotation's reason", sup)
	}
	// The three hygiene failures surface as check "lint".
	for _, wantMsg := range []string{
		`unknown check "nosuchcheck"`,
		"has no reason",
		"suppresses nothing",
	} {
		found := false
		for _, f := range res.Findings {
			if f.Check == "lint" && strings.Contains(f.Message, wantMsg) {
				found = true
			}
		}
		if !found {
			t.Errorf("no lint hygiene finding containing %q in %v", wantMsg, res.Findings)
		}
	}
	// The reasonless directive must not suppress: the wall-clock read it
	// sat above still surfaces.
	simd := 0
	for _, f := range res.Findings {
		if f.Check == "simdeterminism" {
			simd++
		}
	}
	if simd != 1 {
		t.Errorf("want 1 unsuppressed simdeterminism finding, got %d", simd)
	}
	if len(res.Findings) != 4 {
		t.Errorf("findings = %v, want exactly 4", res.Findings)
	}
}

func TestJSONReport(t *testing.T) {
	res, err := RunPackages(fixturesFor(t, "allow"), Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	out, err := EncodeJSON(res)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Version  int `json:"version"`
		Findings []struct {
			Check   string `json:"check"`
			File    string `json:"file"`
			Line    int    `json:"line"`
			Col     int    `json:"col"`
			Message string `json:"message"`
		} `json:"findings"`
		Suppressed []struct {
			Check  string `json:"check"`
			Reason string `json:"reason"`
		} `json:"suppressed"`
	}
	if err := json.Unmarshal(out, &rep); err != nil {
		t.Fatalf("report does not parse: %v\n%s", err, out)
	}
	if rep.Version != JSONVersion {
		t.Errorf("version = %d, want %d", rep.Version, JSONVersion)
	}
	if len(rep.Findings) == 0 {
		t.Fatal("report has no findings; the allow fixture should produce some")
	}
	for _, f := range rep.Findings {
		if f.Check == "" || f.File == "" || f.Line <= 0 || f.Col <= 0 || f.Message == "" {
			t.Errorf("finding with missing fields: %+v", f)
		}
	}
	if len(rep.Suppressed) != 1 || rep.Suppressed[0].Reason == "" {
		t.Errorf("suppressed = %+v, want one entry with its reason", rep.Suppressed)
	}
	// An empty result must encode as arrays, never null, so consumers can
	// index unconditionally.
	empty, err := EncodeJSON(&Result{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(empty), "null") {
		t.Errorf("empty report contains null arrays:\n%s", empty)
	}
}
