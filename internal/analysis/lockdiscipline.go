package analysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// LockDiscipline keeps slow, blocking work out of mutex critical sections.
// The replica cores are single-threaded by construction, but the concurrent
// shells around them — cluster and node lifecycles, the client batcher, the
// TCP endpoint — serialize shared state with mutexes, and an fsync, a
// transport send, or a sleep inside such a section stalls every goroutine
// behind the lock (the delivery loop included, which turns a disk hiccup
// into protocol timeouts and spurious view changes).
//
// The analyzer tracks Lock/RLock .. Unlock/RUnlock regions lexically within
// each function, models early-exit unlock branches, treats a deferred
// unlock as holding to function end, and flags these calls while any lock
// is held: file or WAL fsyncs (os.File.Sync, the storage.Store write/sync
// surface, lowercase sync helpers), transport sends (transport.Sender
// values, transport Send methods, net.Conn reads/writes), time.Sleep, and
// WaitGroup/Cond waits. Function literals are analyzed as independent
// functions: a goroutine body does not inherit its parent's critical
// section.
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "no fsync, transport send, sleep, or wait while holding a mutex",
	Run:  runLockDiscipline,
}

func runLockDiscipline(p *Pass) {
	for _, file := range p.Files {
		funcBodies(file, func(name string, body *ast.BlockStmt) {
			walkLockStmts(p, body.List, lockSet{})
			// Every function literal is its own execution context.
			ast.Inspect(body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					walkLockStmts(p, lit.Body.List, lockSet{})
				}
				return true
			})
		})
	}
}

// lockSet maps a lock expression ("n.mu") to the position where it was
// taken.
type lockSet map[string]token.Pos

func (ls lockSet) clone() lockSet {
	c := make(lockSet, len(ls))
	for k, v := range ls {
		c[k] = v
	}
	return c
}

func (ls lockSet) adopt(src lockSet) {
	for k := range ls {
		delete(ls, k)
	}
	for k, v := range src {
		ls[k] = v
	}
}

func (ls lockSet) union(src lockSet) {
	for k, v := range src {
		if _, ok := ls[k]; !ok {
			ls[k] = v
		}
	}
}

// heldNames renders the held set for diagnostics, deterministically.
func (ls lockSet) heldNames() string {
	names := make([]string, 0, len(ls))
	for k := range ls {
		names = append(names, k)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// walkLockStmts interprets a statement list, updating held across mutex
// operations and reporting blocking calls made inside a critical section.
// Branches are handled conservatively: an early-exit unlock (unlock, then
// return) does not release the fallthrough path, and a lock taken in only
// one branch is assumed held afterwards.
func walkLockStmts(p *Pass, stmts []ast.Stmt, held lockSet) {
	for _, st := range stmts {
		switch s := st.(type) {
		case *ast.IfStmt:
			if s.Init != nil {
				scanLockExprs(p, s.Init, held)
			}
			scanLockExprs(p, &ast.ExprStmt{X: s.Cond}, held)
			body := held.clone()
			walkLockStmts(p, s.Body.List, body)
			if !terminates(s.Body.List) {
				held.union(body)
			}
			if s.Else != nil {
				els := held.clone()
				switch e := s.Else.(type) {
				case *ast.BlockStmt:
					walkLockStmts(p, e.List, els)
					if !terminates(e.List) {
						held.union(els)
					}
				case *ast.IfStmt:
					walkLockStmts(p, []ast.Stmt{e}, els)
					held.union(els)
				}
			}
		case *ast.ForStmt:
			if s.Init != nil {
				scanLockExprs(p, s.Init, held)
			}
			body := held.clone()
			walkLockStmts(p, s.Body.List, body)
			held.union(body)
		case *ast.RangeStmt:
			scanLockExprs(p, &ast.ExprStmt{X: s.X}, held)
			body := held.clone()
			walkLockStmts(p, s.Body.List, body)
			held.union(body)
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			for _, cl := range stmtClauses(s) {
				body := held.clone()
				walkLockStmts(p, cl, body)
				if !terminates(cl) {
					held.union(body)
				}
			}
		case *ast.BlockStmt:
			walkLockStmts(p, s.List, held)
		case *ast.DeferStmt:
			// A deferred unlock holds the lock to function end: leave held
			// untouched. Other deferred work runs outside this walk; only
			// its argument expressions evaluate here.
			if kind, _ := mutexOp(p, s.Call); kind == lockOpUnlock {
				continue
			}
			for _, a := range s.Call.Args {
				scanLockExprs(p, &ast.ExprStmt{X: a}, held)
			}
		case *ast.GoStmt:
			// The spawned goroutine does not hold this goroutine's locks;
			// only the call's arguments evaluate in this critical section.
			for _, a := range s.Call.Args {
				scanLockExprs(p, &ast.ExprStmt{X: a}, held)
			}
		default:
			scanLockExprs(p, st, held)
		}
	}
}

// stmtClauses extracts the per-case statement lists of a switch or select.
func stmtClauses(s ast.Stmt) [][]ast.Stmt {
	var body *ast.BlockStmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		body = s.Body
	case *ast.TypeSwitchStmt:
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	var out [][]ast.Stmt
	for _, c := range body.List {
		switch c := c.(type) {
		case *ast.CaseClause:
			out = append(out, c.Body)
		case *ast.CommClause:
			out = append(out, c.Body)
		}
	}
	return out
}

// terminates reports whether a statement list always leaves the enclosing
// scope (return, branch, or panic as its last statement).
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

type lockOp int

const (
	lockOpNone lockOp = iota
	lockOpLock
	lockOpUnlock
)

// mutexOp classifies a call as taking or releasing a sync.Mutex /
// sync.RWMutex, returning the lock's expression key.
func mutexOp(p *Pass, call *ast.CallExpr) (lockOp, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockOpNone, ""
	}
	var op lockOp
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = lockOpLock
	case "Unlock", "RUnlock":
		op = lockOpUnlock
	default:
		return lockOpNone, ""
	}
	rt := p.Info.TypeOf(sel.X)
	if !namedType(rt, "sync", "Mutex") && !namedType(rt, "sync", "RWMutex") {
		return lockOpNone, ""
	}
	key := exprKey(sel.X)
	if key == "" {
		key = "mutex"
	}
	return op, key
}

// scanLockExprs processes the calls inside one simple statement in source
// order, skipping nested function literals (they are walked independently).
func scanLockExprs(p *Pass, stmt ast.Stmt, held lockSet) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch op, key := mutexOp(p, call); op {
		case lockOpLock:
			held[key] = call.Pos()
			return true
		case lockOpUnlock:
			delete(held, key)
			return true
		}
		if len(held) == 0 {
			return true
		}
		if what, ok := blockingCall(p, call); ok {
			p.Reportf(call.Pos(), "%s while holding %s; move blocking work outside the critical section", what, held.heldNames())
		}
		return true
	})
}

// blockingCall classifies calls that can stall the calling goroutine for
// I/O- or scheduler-scale time.
func blockingCall(p *Pass, call *ast.CallExpr) (string, bool) {
	if isPkgFunc(p.Info, call, "time", "Sleep") {
		return "time.Sleep", true
	}
	if isSenderCall(p.Info, call) {
		return "transport send", true
	}
	f := funcObj(p.Info, call)
	if f == nil {
		return "", false
	}
	rt := recvOf(p.Info, call)
	switch f.Name() {
	case "Sync":
		if namedType(rt, "os", "File") {
			return "file fsync", true
		}
		if namedType(rt, "repro/internal/storage", "Store") {
			return "WAL fsync", true
		}
	case "sync", "fsync":
		// Lowercase storage-internal sync helpers (wal.sync and friends).
		if f.Signature().Recv() != nil {
			return "fsync helper", true
		}
	case "SaveCheckpoint", "Prune", "Replay":
		if namedType(rt, "repro/internal/storage", "Store") {
			return "storage " + f.Name(), true
		}
	case "Write", "Read":
		if namedType(rt, "net", "Conn") {
			return "net.Conn " + f.Name(), true
		}
	case "Wait":
		// sync.Cond.Wait is exempt: its contract requires holding L, and it
		// releases the lock while blocked.
		if namedType(rt, "sync", "WaitGroup") {
			return "WaitGroup wait", true
		}
	}
	return "", false
}
