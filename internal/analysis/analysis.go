// Package analysis is a pure-stdlib static-analysis driver that
// machine-checks the BFT safety invariants this codebase otherwise enforces
// by convention: votes and prepared certificates must be durable before the
// message they cover externalizes, the deterministic consensus packages must
// actually be deterministic (2f+1/g+1 digest quorums depend on it), crypto
// verification results must gate the untrusted receive paths, and blocking
// I/O must not run under a replica mutex. SplitBFT makes the structural
// point these checks encode: BFT safety hinges on a small trusted core that
// can be audited — here, audited mechanically on every CI run.
//
// The driver deliberately uses only go/parser, go/types, and go/importer
// over `go list -json -export` output — no golang.org/x/tools — because CI
// allows no network dependencies. Findings are suppressible only with an
// explicit, reasoned annotation:
//
//	//lint:allow <check> <reason>
//
// placed on the offending line or the line directly above it. Annotations
// without a reason, naming an unknown check, or suppressing nothing are
// themselves findings, so the annotation inventory cannot rot.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// An Analyzer is one invariant checker. Run inspects a single type-checked
// package and reports findings through the Pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Analyzers is the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		SyncBeforeSend,
		SimDeterminism,
		VerifyGate,
		LockDiscipline,
		Boundary,
	}
}

// A Finding is one diagnostic at an exact source position.
type Finding struct {
	Check   string
	Pos     token.Position
	Message string
	// Reason carries the //lint:allow justification on suppressed findings.
	Reason string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Check, f.Message)
}

// A Pass couples one analyzer run to one package.
type Pass struct {
	*Package
	check    string
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Check:   p.check,
		Pos:     p.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

// A Result splits the findings of a run into the ones that fail the build
// and the ones an annotation explicitly allows.
type Result struct {
	Findings   []Finding
	Suppressed []Finding
}

// Run loads the packages matching patterns (resolved relative to dir, ""
// meaning the current directory) and applies every analyzer, returning
// findings with //lint:allow suppression already applied. A load or
// type-check failure is an error, not a finding: the suite only vouches for
// code it fully resolved.
func Run(dir string, patterns []string, analyzers []*Analyzer) (*Result, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	return RunPackages(pkgs, analyzers)
}

// RunPackages applies analyzers to already-loaded packages.
func RunPackages(pkgs []*Package, analyzers []*Analyzer) (*Result, error) {
	var all []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Package: pkg, check: a.Name, findings: &all}
			a.Run(pass)
		}
	}
	res := applyAllows(pkgs, analyzers, all)
	sortFindings(res.Findings)
	sortFindings(res.Suppressed)
	return res, nil
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
}

// --- //lint:allow annotations -------------------------------------------------

const allowPrefix = "lint:allow "

type allowDirective struct {
	check  string
	reason string
	pos    token.Position
	used   bool
}

// applyAllows partitions findings by the allow annotations in pkgs and
// appends hygiene findings (check "lint") for malformed or unused ones.
func applyAllows(pkgs []*Package, analyzers []*Analyzer, all []Finding) *Result {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	// file -> line -> directives on that line.
	directives := map[string]map[int][]*allowDirective{}
	res := &Result{}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//"+allowPrefix)
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					check, reason, _ := strings.Cut(strings.TrimSpace(text), " ")
					reason = strings.TrimSpace(reason)
					switch {
					case !known[check]:
						res.Findings = append(res.Findings, Finding{
							Check: "lint", Pos: pos,
							Message: fmt.Sprintf("//lint:allow names unknown check %q", check),
						})
						continue
					case reason == "":
						res.Findings = append(res.Findings, Finding{
							Check: "lint", Pos: pos,
							Message: fmt.Sprintf("//lint:allow %s has no reason; a justification is required", check),
						})
						continue
					}
					byLine := directives[pos.Filename]
					if byLine == nil {
						byLine = map[int][]*allowDirective{}
						directives[pos.Filename] = byLine
					}
					byLine[pos.Line] = append(byLine[pos.Line], &allowDirective{check: check, reason: reason, pos: pos})
				}
			}
		}
	}
	for _, f := range all {
		if d := matchAllow(directives, f); d != nil {
			d.used = true
			f.Reason = d.reason
			res.Suppressed = append(res.Suppressed, f)
			continue
		}
		res.Findings = append(res.Findings, f)
	}
	// Unused annotations are stale claims about the code; surface them.
	for _, byLine := range directives {
		for _, ds := range byLine {
			for _, d := range ds {
				if !d.used {
					res.Findings = append(res.Findings, Finding{
						Check: "lint", Pos: d.pos,
						Message: fmt.Sprintf("//lint:allow %s suppresses nothing; remove it", d.check),
					})
				}
			}
		}
	}
	return res
}

// matchAllow finds a directive covering f: same file and check, on the
// finding's line or the line directly above it.
func matchAllow(directives map[string]map[int][]*allowDirective, f Finding) *allowDirective {
	byLine := directives[f.Pos.Filename]
	if byLine == nil {
		return nil
	}
	for _, line := range []int{f.Pos.Line, f.Pos.Line - 1} {
		for _, d := range byLine[line] {
			if d.check == f.Check {
				return d
			}
		}
	}
	return nil
}

// --- shared AST/type helpers ---------------------------------------------------

// pkgBase is the final import-path segment; scoped analyzers match on it so
// the fixture packages under testdata exercise the same code paths as the
// real tree.
func pkgBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

func baseIn(path string, names ...string) bool {
	b := pkgBase(path)
	for _, n := range names {
		if b == n {
			return true
		}
	}
	return false
}

// calleeName is the bare name of a call's function: the selector name for
// method calls and qualified calls, the identifier for direct calls.
func calleeName(call *ast.CallExpr) string {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}
