package replycert

import (
	"sync"
	"testing"

	"repro/internal/auth"
	"repro/internal/threshold"
	"repro/internal/types"
	"repro/internal/wire"
)

var testTop = &types.Topology{
	Agreement: []types.NodeID{0, 1, 2, 3},
	Execution: []types.NodeID{100, 101, 102},
	Clients:   []types.NodeID{1000},
}

// macWorld builds MAC schemes for every node over pairwise secrets.
func macWorld() map[types.NodeID]*auth.MACScheme {
	all := testTop.AllNodes()
	out := make(map[types.NodeID]*auth.MACScheme, len(all))
	for _, id := range all {
		out[id] = auth.NewMACScheme(auth.NewKeyRing([]byte("rc-test"), id, all))
	}
	return out
}

func entries(seq types.SeqNum) []wire.Reply {
	return []wire.Reply{{View: 0, Seq: seq, Client: 1000, Timestamp: 1, Body: []byte("r")}}
}

// execReply builds one executor's quorum-mode share addressed to client and
// agreement nodes.
func execReply(t *testing.T, schemes map[types.NodeID]*auth.MACScheme, exec types.NodeID, es []wire.Reply) *wire.ExecReply {
	t.Helper()
	dests := append([]types.NodeID{1000}, testTop.Agreement...)
	att, err := schemes[exec].Attest(auth.KindReply, wire.BundleDigest(es), dests)
	if err != nil {
		t.Fatal(err)
	}
	return &wire.ExecReply{Entries: es, Executor: exec, Att: att}
}

func TestQuorumAssembly(t *testing.T) {
	schemes := macWorld()
	v := NewVerifier(ModeQuorum, testTop, schemes[1000], nil)
	a := NewAssembler(v)
	es := entries(1)

	cert, err := a.Add(execReply(t, schemes, 100, es))
	if err != nil || cert != nil {
		t.Fatalf("first share: cert=%v err=%v", cert, err)
	}
	// Duplicate share from the same executor must not complete the quorum.
	cert, err = a.Add(execReply(t, schemes, 100, es))
	if err != nil || cert != nil {
		t.Fatalf("duplicate share: cert=%v err=%v", cert, err)
	}
	cert, err = a.Add(execReply(t, schemes, 101, es))
	if err != nil {
		t.Fatal(err)
	}
	if cert == nil {
		t.Fatal("g+1 distinct shares did not complete the certificate")
	}
	if err := v.VerifyCert(cert); err != nil {
		t.Fatalf("assembled certificate invalid: %v", err)
	}
	// Completion happens exactly once.
	cert, err = a.Add(execReply(t, schemes, 102, es))
	if err != nil || cert != nil {
		t.Error("third share re-completed the certificate")
	}
}

func TestQuorumRejectsBadShares(t *testing.T) {
	schemes := macWorld()
	v := NewVerifier(ModeQuorum, testTop, schemes[1000], nil)
	a := NewAssembler(v)
	es := entries(1)

	// Not an executor.
	bad := execReply(t, schemes, 100, es)
	bad.Executor = 0
	if _, err := a.Add(bad); err == nil {
		t.Error("accepted share from non-executor")
	}
	// Attestation/executor mismatch.
	bad = execReply(t, schemes, 100, es)
	bad.Executor = 101
	if _, err := a.Add(bad); err == nil {
		t.Error("accepted share whose attestation names another node")
	}
	// Tampered entries.
	bad = execReply(t, schemes, 100, es)
	bad.Entries[0].Body = []byte("tampered")
	if _, err := a.Add(bad); err == nil {
		t.Error("accepted share over tampered bundle")
	}
	// Empty bundle.
	if _, err := a.Add(&wire.ExecReply{Executor: 100}); err == nil {
		t.Error("accepted empty bundle")
	}
}

func TestVerifyCertQuorum(t *testing.T) {
	schemes := macWorld()
	v := NewVerifier(ModeQuorum, testTop, schemes[1000], nil)
	es := entries(2)
	digest := wire.BundleDigest(es)

	att100, _ := schemes[100].Attest(auth.KindReply, digest, []types.NodeID{1000})
	att101, _ := schemes[101].Attest(auth.KindReply, digest, []types.NodeID{1000})

	cert := &wire.ReplyCert{Entries: es, Atts: []auth.Attestation{att100, att101}}
	if err := v.VerifyCert(cert); err != nil {
		t.Fatal(err)
	}
	// One attestation short.
	cert.Atts = cert.Atts[:1]
	if err := v.VerifyCert(cert); err == nil {
		t.Error("accepted certificate below quorum")
	}
	// Duplicated attestations do not reach quorum.
	cert.Atts = []auth.Attestation{att100, att100}
	if err := v.VerifyCert(cert); err == nil {
		t.Error("accepted duplicated attestations as a quorum")
	}
	// Attestation from a non-executor does not count.
	attAgree, _ := schemes[0].Attest(auth.KindReply, digest, []types.NodeID{1000})
	cert.Atts = []auth.Attestation{att100, attAgree}
	if err := v.VerifyCert(cert); err == nil {
		t.Error("counted an agreement node toward the execution quorum")
	}
	if err := v.VerifyCert(&wire.ReplyCert{}); err == nil {
		t.Error("accepted empty certificate")
	}
}

// Threshold-mode fixtures (dealt once; dealing is the slow part).
var (
	thOnce   sync.Once
	thPub    *threshold.PublicKey
	thShares []*threshold.KeyShare
)

func thresholdWorld(t *testing.T) (*threshold.PublicKey, []*threshold.KeyShare) {
	t.Helper()
	thOnce.Do(func() {
		var err error
		thPub, thShares, err = threshold.Deal(threshold.NewSeededReader("rc"), 512, 2, 3)
		if err != nil {
			t.Fatalf("deal: %v", err)
		}
	})
	return thPub, thShares
}

func thresholdReply(t *testing.T, shares []*threshold.KeyShare, idx int, es []wire.Reply) *wire.ExecReply {
	t.Helper()
	sh, err := shares[idx].Sign(threshold.NewSeededReader("share"), wire.BundleDigest(es))
	if err != nil {
		t.Fatal(err)
	}
	return &wire.ExecReply{Entries: es, Executor: testTop.Execution[idx], Share: sh.Marshal()}
}

func TestThresholdAssembly(t *testing.T) {
	pub, shares := thresholdWorld(t)
	v := NewVerifier(ModeThreshold, testTop, nil, pub)
	a := NewAssembler(v)
	es := entries(3)

	cert, err := a.Add(thresholdReply(t, shares, 0, es))
	if err != nil || cert != nil {
		t.Fatalf("first share: %v %v", cert, err)
	}
	cert, err = a.Add(thresholdReply(t, shares, 2, es))
	if err != nil {
		t.Fatal(err)
	}
	if cert == nil || len(cert.ThresholdSig) == 0 {
		t.Fatal("threshold certificate not assembled from g+1 shares")
	}
	if err := v.VerifyCert(cert); err != nil {
		t.Fatal(err)
	}
}

func TestThresholdShareIndexMustMatchExecutor(t *testing.T) {
	pub, shares := thresholdWorld(t)
	v := NewVerifier(ModeThreshold, testTop, nil, pub)
	// Share from player 1 claiming to be executor 102 (player 3).
	m := thresholdReply(t, shares, 0, entries(4))
	m.Executor = testTop.Execution[2]
	if err := v.VerifyShare(m); err == nil {
		t.Error("accepted a share with mismatched player index")
	}
	m.Share = []byte("garbage")
	if err := v.VerifyShare(m); err == nil {
		t.Error("accepted an unparseable share")
	}
}

func TestThresholdVerifyCert(t *testing.T) {
	pub, shares := thresholdWorld(t)
	v := NewVerifier(ModeThreshold, testTop, nil, pub)
	es := entries(5)
	a := NewAssembler(v)
	a.Add(thresholdReply(t, shares, 0, es))
	cert, err := a.Add(thresholdReply(t, shares, 1, es))
	if err != nil || cert == nil {
		t.Fatalf("assembly failed: %v", err)
	}
	// Valid cert, then corrupt the signature and the entries.
	if err := v.VerifyCert(cert); err != nil {
		t.Fatal(err)
	}
	bad := *cert
	bad.ThresholdSig = append([]byte(nil), cert.ThresholdSig...)
	bad.ThresholdSig[0] ^= 1
	if err := v.VerifyCert(&bad); err == nil {
		t.Error("accepted corrupted threshold signature")
	}
	bad = *cert
	bad.Entries = entries(99)
	if err := v.VerifyCert(&bad); err == nil {
		t.Error("accepted signature over different entries")
	}
	bad = *cert
	bad.ThresholdSig = nil
	if err := v.VerifyCert(&bad); err == nil {
		t.Error("accepted certificate without a signature")
	}
}

func TestAssemblerGC(t *testing.T) {
	schemes := macWorld()
	v := NewVerifier(ModeQuorum, testTop, schemes[1000], nil)
	a := NewAssembler(v)
	for seq := types.SeqNum(1); seq <= 5; seq++ {
		if _, err := a.Add(execReply(t, schemes, 100, entries(seq))); err != nil {
			t.Fatal(err)
		}
	}
	if a.Pending() != 5 {
		t.Fatalf("pending = %d, want 5", a.Pending())
	}
	a.GC(3)
	if a.Pending() != 2 {
		t.Errorf("pending after GC(3) = %d, want 2", a.Pending())
	}
}

func TestNewVerifierForCustomMembership(t *testing.T) {
	schemes := macWorld()
	// BASE-style: agreement members certify with quorum f+1 = 2.
	v := NewVerifierFor(ModeQuorum, 2, testTop.Agreement, schemes[1000], nil)
	es := entries(1)
	digest := wire.BundleDigest(es)
	a0, _ := schemes[0].Attest(auth.KindReply, digest, []types.NodeID{1000})
	a1, _ := schemes[1].Attest(auth.KindReply, digest, []types.NodeID{1000})
	cert := &wire.ReplyCert{Entries: es, Atts: []auth.Attestation{a0, a1}}
	if err := v.VerifyCert(cert); err != nil {
		t.Fatal(err)
	}
	// Executors are not members of this certificate group.
	e0, _ := schemes[100].Attest(auth.KindReply, digest, []types.NodeID{1000})
	cert.Atts = []auth.Attestation{a0, e0}
	if err := v.VerifyCert(cert); err == nil {
		t.Error("counted an executor toward a BASE certificate")
	}
}

func TestModeString(t *testing.T) {
	if ModeQuorum.String() != "quorum" || ModeThreshold.String() != "threshold" {
		t.Error("mode strings wrong")
	}
}
