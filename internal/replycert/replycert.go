// Package replycert assembles and validates reply certificates
// ⟨REPLY,...⟩_{E,c,g+1} (§3.1.1): proofs that g+1 of the 2g+1 execution
// replicas — a correct majority — vouch for a bundle of replies.
//
// Two certificate forms exist, mirroring the paper's configurations:
//
//   - Quorum certificates: g+1 matching MAC/signature attestations over the
//     bundle digest (the Separate/MAC configurations of Figure 3).
//   - Threshold certificates: one Shoup RSA threshold signature combined
//     from g+1 shares (the Thresh and privacy-firewall configurations).
//     These are deterministic and membership-free, which the privacy
//     firewall relies on (§4.2.2).
//
// The same Assembler is used by agreement-side message queues, by clients
// receiving direct replies, and by top-row firewall filters.
package replycert

import (
	"errors"
	"fmt"

	"repro/internal/auth"
	"repro/internal/threshold"
	"repro/internal/types"
	"repro/internal/wire"
)

// Mode selects the certificate form.
type Mode uint8

// Certificate modes.
const (
	ModeQuorum Mode = iota
	ModeThreshold
)

func (m Mode) String() string {
	if m == ModeThreshold {
		return "threshold"
	}
	return "quorum"
}

// Verifier validates complete reply certificates and individual shares.
type Verifier struct {
	Mode      Mode
	Quorum    int                  // g+1
	Executors map[types.NodeID]int // executor id → 1-based threshold share index
	Scheme    auth.Scheme          // quorum mode: verifies attestations addressed to this node
	Threshold *threshold.PublicKey // threshold mode
}

// NewVerifier builds a Verifier for the given topology. scheme may be nil in
// threshold mode; pub may be nil in quorum mode.
func NewVerifier(mode Mode, top *types.Topology, scheme auth.Scheme, pub *threshold.PublicKey) *Verifier {
	return NewVerifierFor(mode, top.ExecutionQuorum(), top.Execution, scheme, pub)
}

// NewVerifierFor builds a Verifier over an explicit member set and quorum.
// The coupled-baseline configuration uses it with the agreement cluster as
// the certifying set (f+1 matching replies out of 3f+1 replicas).
func NewVerifierFor(mode Mode, quorum int, members []types.NodeID, scheme auth.Scheme, pub *threshold.PublicKey) *Verifier {
	ex := make(map[types.NodeID]int, len(members))
	for i, id := range members {
		ex[id] = i + 1
	}
	return &Verifier{Mode: mode, Quorum: quorum, Executors: ex, Scheme: scheme, Threshold: pub}
}

// Errors.
var (
	ErrIncomplete = errors.New("replycert: certificate incomplete")
	ErrInvalid    = errors.New("replycert: certificate invalid")
)

// VerifyCert checks a complete certificate against the bundle it carries.
func (v *Verifier) VerifyCert(cert *wire.ReplyCert) error {
	if len(cert.Entries) == 0 {
		return fmt.Errorf("%w: empty bundle", ErrInvalid)
	}
	digest := wire.BundleDigest(cert.Entries)
	if v.Mode == ModeThreshold {
		if len(cert.ThresholdSig) == 0 {
			return ErrIncomplete
		}
		if err := v.Threshold.Verify(digest, cert.ThresholdSig); err != nil {
			return fmt.Errorf("%w: %v", ErrInvalid, err)
		}
		return nil
	}
	count := 0
	seen := make(map[types.NodeID]bool, len(cert.Atts))
	for _, a := range cert.Atts {
		if _, isExec := v.Executors[a.Node]; !isExec || seen[a.Node] {
			continue
		}
		if v.Scheme.Verify(auth.KindReply, digest, a) == nil {
			seen[a.Node] = true
			count++
		}
	}
	if count < v.Quorum {
		return fmt.Errorf("%w: %d/%d valid attestations", ErrIncomplete, count, v.Quorum)
	}
	return nil
}

// VerifyShare checks one executor's contribution in isolation. In quorum
// mode that is its attestation; in threshold mode, its signature share and
// correctness proof (so Byzantine shares are discarded before combining).
func (v *Verifier) VerifyShare(m *wire.ExecReply) error {
	if len(m.Entries) == 0 {
		return fmt.Errorf("%w: empty bundle", ErrInvalid)
	}
	idx, isExec := v.Executors[m.Executor]
	if !isExec {
		return fmt.Errorf("%w: %v is not an executor", ErrInvalid, m.Executor)
	}
	digest := wire.BundleDigest(m.Entries)
	if v.Mode == ModeThreshold {
		sh, err := threshold.UnmarshalSigShare(m.Share)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrInvalid, err)
		}
		if sh.Index != idx {
			return fmt.Errorf("%w: share index %d does not match executor %v", ErrInvalid, sh.Index, m.Executor)
		}
		if err := v.Threshold.VerifyShare(digest, sh); err != nil {
			return fmt.Errorf("%w: %v", ErrInvalid, err)
		}
		return nil
	}
	if m.Att.Node != m.Executor {
		return fmt.Errorf("%w: attestation node mismatch", ErrInvalid)
	}
	if err := v.Scheme.Verify(auth.KindReply, digest, m.Att); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	return nil
}

// Assembler accumulates executor shares per bundle until a certificate can
// be produced. Shares are verified on Add; entries GC by sequence number.
type Assembler struct {
	v       *Verifier
	pending map[types.Digest]*pendingBundle
}

type pendingBundle struct {
	entries []wire.Reply
	maxSeq  types.SeqNum
	atts    map[types.NodeID]auth.Attestation
	shares  map[types.NodeID]*threshold.SigShare
	done    bool
}

// NewAssembler returns an Assembler over the Verifier.
func NewAssembler(v *Verifier) *Assembler {
	return &Assembler{v: v, pending: make(map[types.Digest]*pendingBundle)}
}

// Add records one executor's share. When the bundle reaches its quorum, Add
// returns the completed certificate exactly once; otherwise it returns nil.
// Invalid shares are rejected with an error.
func (a *Assembler) Add(m *wire.ExecReply) (*wire.ReplyCert, error) {
	if err := a.v.VerifyShare(m); err != nil {
		return nil, err
	}
	digest := wire.BundleDigest(m.Entries)
	pb := a.pending[digest]
	if pb == nil {
		pb = &pendingBundle{
			entries: m.Entries,
			atts:    make(map[types.NodeID]auth.Attestation),
			shares:  make(map[types.NodeID]*threshold.SigShare),
		}
		for i := range m.Entries {
			if m.Entries[i].Seq > pb.maxSeq {
				pb.maxSeq = m.Entries[i].Seq
			}
		}
		a.pending[digest] = pb
	}
	if pb.done {
		return nil, nil
	}
	if a.v.Mode == ModeThreshold {
		sh, err := threshold.UnmarshalSigShare(m.Share)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrInvalid, err)
		}
		pb.shares[m.Executor] = sh
		if len(pb.shares) < a.v.Quorum {
			return nil, nil
		}
		shares := make([]*threshold.SigShare, 0, len(pb.shares))
		for _, sh := range pb.shares {
			//lint:allow simdeterminism Combine selects and orders shares by ascending player index internally, so input order cannot reach the signature bytes (TestCombineSubsetIndependence)
			shares = append(shares, sh)
		}
		sig, err := a.v.Threshold.Combine(digest, shares)
		if err != nil {
			return nil, err
		}
		pb.done = true
		return &wire.ReplyCert{Entries: pb.entries, ThresholdSig: sig}, nil
	}
	pb.atts[m.Executor] = m.Att
	if len(pb.atts) < a.v.Quorum {
		return nil, nil
	}
	q := auth.NewQuorum(a.v.Quorum)
	for _, att := range pb.atts {
		q.Add(att)
	}
	pb.done = true
	return &wire.ReplyCert{Entries: pb.entries, Atts: q.Attestations()}, nil
}

// SplitOpReplies splits the certified reply body of a multi-op request
// (client-side batching) back into its per-op replies. The enclosing
// certificate vouches for the whole envelope, so each extracted reply
// carries the same g+1-correct-executor guarantee as a standalone one; the
// count must match the ops of the request envelope or the certificate does
// not answer the batch that was submitted.
func SplitOpReplies(body []byte, ops int) ([][]byte, error) {
	bodies, ok := wire.UnpackOpReplies(body)
	if !ok {
		return nil, fmt.Errorf("%w: certified reply is not a multi-op envelope", ErrInvalid)
	}
	if len(bodies) != ops {
		return nil, fmt.Errorf("%w: %d replies for %d batched ops", ErrInvalid, len(bodies), ops)
	}
	return bodies, nil
}

// GC drops pending bundles whose highest sequence number is at or below n.
func (a *Assembler) GC(n types.SeqNum) {
	for d, pb := range a.pending {
		if pb.maxSeq <= n {
			delete(a.pending, d)
		}
	}
}

// Pending reports how many incomplete bundles are buffered.
func (a *Assembler) Pending() int { return len(a.pending) }
