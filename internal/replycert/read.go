package replycert

// Certified-read quorums. A read answered directly by the execution
// replicas is certified by g+1 matching answers — a correct majority of the
// 2g+1-replica cluster — computed from applied state at or above the
// client's session floor. Unlike write certificates there is no single
// bundle digest to attest: each replica signs its own answer together with
// its applied watermark, and the client matches on the answer content
// (wire.ReadReply.AnswerDigest) while enforcing the floor on the signed
// watermarks individually.

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/auth"
	"repro/internal/types"
	"repro/internal/wire"
)

// ReadVerifier validates individual signed read replies.
type ReadVerifier struct {
	Quorum    int // g+1
	Executors map[types.NodeID]bool
	// Scheme verifies KindReadReply attestations. Read replies are always
	// Ed25519-signed (the executors' identity keys), so any holder of the
	// key directory can verify, regardless of the deployment's reply mode.
	Scheme auth.Scheme
}

// NewReadVerifier builds a ReadVerifier for the topology's execution
// cluster.
func NewReadVerifier(top *types.Topology, scheme auth.Scheme) *ReadVerifier {
	ex := make(map[types.NodeID]bool, len(top.Execution))
	for _, id := range top.Execution {
		ex[id] = true
	}
	return &ReadVerifier{Quorum: top.ExecutionQuorum(), Executors: ex, Scheme: scheme}
}

// VerifyReadReply checks one read reply in isolation: executor membership,
// identity binding, and the signature over the answer + watermark.
func (v *ReadVerifier) VerifyReadReply(m *wire.ReadReply) error {
	if !v.Executors[m.Executor] {
		return fmt.Errorf("%w: %v is not an executor", ErrInvalid, m.Executor)
	}
	if m.Att.Node != m.Executor {
		return fmt.Errorf("%w: attestation node mismatch", ErrInvalid)
	}
	if err := v.Scheme.Verify(auth.KindReadReply, m.Digest(), m.Att); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	return nil
}

// ErrReadMismatch reports that every execution replica answered and no g+1
// of them agree at or above the floor: the read cannot certify as asked.
// The assembler's Hint suggests a floor to retry at; a retry that still
// mismatches should fall back to full agreement (Invoke).
var ErrReadMismatch = errors.New("replycert: read quorum mismatch")

// ReadResult is a certified read: g+1 distinct executors signed this answer
// from applied state at or above the floor.
type ReadResult struct {
	Body    []byte
	Refused bool
	// Seq is the certified watermark — the smallest applied watermark among
	// the matching replies. The matching set contains at least one correct
	// replica, so Seq never exceeds a correct replica's real watermark and
	// is safe to adopt as the new session floor.
	Seq types.SeqNum
}

// ReadAssembler accumulates signed read replies for one probe (client,
// nonce, floor) until g+1 match at or above the floor, or all 2g+1
// executors have answered without such a quorum.
type ReadAssembler struct {
	v      *ReadVerifier
	client types.NodeID
	nonce  types.Timestamp
	floor  types.SeqNum

	replies map[types.NodeID]*wire.ReadReply // first valid reply per executor
	done    bool
}

// NewReadAssembler starts assembling replies to one probe.
func NewReadAssembler(v *ReadVerifier, client types.NodeID, nonce types.Timestamp, floor types.SeqNum) *ReadAssembler {
	return &ReadAssembler{
		v:       v,
		client:  client,
		nonce:   nonce,
		floor:   floor,
		replies: make(map[types.NodeID]*wire.ReadReply),
	}
}

// Add records one executor's reply.
//
//   - (result, nil): the read certified exactly once.
//   - (nil, nil): still pending.
//   - (nil, ErrReadMismatch): every executor answered; no quorum at the
//     floor exists (consult Hint, then retry or fall back).
//   - (nil, other error): the reply was invalid and has been discarded.
func (a *ReadAssembler) Add(m *wire.ReadReply) (*ReadResult, error) {
	if a.done {
		return nil, nil
	}
	if m.Client != a.client || m.Nonce != a.nonce {
		return nil, fmt.Errorf("%w: reply answers a different probe", ErrInvalid)
	}
	if err := a.v.VerifyReadReply(m); err != nil {
		return nil, err
	}
	if _, dup := a.replies[m.Executor]; dup {
		// Equivocation or retransmission: the first valid reply stands.
		return nil, nil
	}
	a.replies[m.Executor] = m

	// Group eligible replies (at or above the floor) by answer content.
	counts := make(map[types.Digest]int)
	var woken *wire.ReadReply
	for _, r := range a.replies {
		if r.AppliedSeq < a.floor {
			continue
		}
		d := r.AnswerDigest()
		counts[d]++
		if counts[d] >= a.v.Quorum {
			woken = r
		}
	}
	if woken != nil {
		a.done = true
		res := &ReadResult{Body: woken.Body, Refused: woken.Refused, Seq: a.minMatching(woken.AnswerDigest())}
		return res, nil
	}
	if len(a.replies) >= len(a.v.Executors) {
		// Everyone answered; no g+1 agree at this floor. Definite.
		return nil, ErrReadMismatch
	}
	return nil, nil
}

// minMatching returns the smallest eligible watermark among replies whose
// answer matches d.
func (a *ReadAssembler) minMatching(d types.Digest) types.SeqNum {
	var min types.SeqNum
	first := true
	for _, r := range a.replies {
		if r.AppliedSeq < a.floor || r.AnswerDigest() != d {
			continue
		}
		if first || r.AppliedSeq < min {
			min = r.AppliedSeq
			first = false
		}
	}
	return min
}

// Hint suggests a floor for retrying a mismatched read: the (g+1)'th-highest
// applied watermark among the valid replies seen. At most g replies can
// carry Byzantine-inflated watermarks, so the hint never exceeds some
// correct replica's real watermark — a retry at this floor can always
// eventually certify once g+1 correct replicas reach it. Returns the probe's
// floor when fewer than g+1 replies have been seen.
func (a *ReadAssembler) Hint() types.SeqNum {
	if len(a.replies) < a.v.Quorum {
		return a.floor
	}
	seqs := make([]types.SeqNum, 0, len(a.replies))
	for _, r := range a.replies {
		seqs = append(seqs, r.AppliedSeq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	hint := seqs[a.v.Quorum-1]
	if hint < a.floor {
		return a.floor
	}
	return hint
}

// Replies reports how many distinct valid replies have been recorded.
func (a *ReadAssembler) Replies() int { return len(a.replies) }

// Done reports whether the read has certified.
func (a *ReadAssembler) Done() bool { return a.done }
