package replycert

import (
	"crypto/ed25519"
	"crypto/sha256"
	"errors"
	"fmt"
	"testing"

	"repro/internal/auth"
	"repro/internal/types"
	"repro/internal/wire"
)

// sigWorld builds Ed25519 identity schemes for every node over a shared
// directory — the construction read replies are signed with.
func sigWorld(t *testing.T) map[types.NodeID]*auth.SigScheme {
	t.Helper()
	all := testTop.AllNodes()
	pubs := make(map[types.NodeID]ed25519.PublicKey, len(all))
	privs := make(map[types.NodeID]ed25519.PrivateKey, len(all))
	for _, id := range all {
		seed := sha256.Sum256([]byte(fmt.Sprintf("read-test-%d", id)))
		priv := ed25519.NewKeyFromSeed(seed[:])
		privs[id] = priv
		pubs[id] = priv.Public().(ed25519.PublicKey)
	}
	dir := auth.NewDirectory(pubs)
	out := make(map[types.NodeID]*auth.SigScheme, len(all))
	for _, id := range all {
		out[id] = auth.NewSigScheme(id, privs[id], dir)
	}
	return out
}

const (
	readClient = types.NodeID(1000)
	readNonce  = types.Timestamp(7)
)

// readReply builds one executor's signed answer.
func readReply(t *testing.T, schemes map[types.NodeID]*auth.SigScheme, exec types.NodeID, seq types.SeqNum, body string, refused bool) *wire.ReadReply {
	t.Helper()
	m := &wire.ReadReply{
		Client:     readClient,
		Nonce:      readNonce,
		AppliedSeq: seq,
		Refused:    refused,
		Body:       []byte(body),
		Executor:   exec,
	}
	att, err := schemes[exec].Attest(auth.KindReadReply, m.Digest(), []types.NodeID{readClient})
	if err != nil {
		t.Fatal(err)
	}
	m.Att = att
	return m
}

func newReadWorld(t *testing.T, floor types.SeqNum) (map[types.NodeID]*auth.SigScheme, *ReadAssembler) {
	t.Helper()
	schemes := sigWorld(t)
	v := NewReadVerifier(testTop, schemes[readClient])
	if v.Quorum != 2 {
		t.Fatalf("quorum = %d, want 2 (g+1 for 2g+1=3 executors)", v.Quorum)
	}
	return schemes, NewReadAssembler(v, readClient, readNonce, floor)
}

func TestReadQuorumCertifiesAtMinWatermark(t *testing.T) {
	schemes, a := newReadWorld(t, 0)

	res, err := a.Add(readReply(t, schemes, 100, 5, "v", false))
	if res != nil || err != nil {
		t.Fatalf("first reply: res=%v err=%v", res, err)
	}
	res, err = a.Add(readReply(t, schemes, 101, 3, "v", false))
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("two matching replies did not certify")
	}
	if string(res.Body) != "v" || res.Refused {
		t.Fatalf("result = %q refused=%v", res.Body, res.Refused)
	}
	// The certified watermark is the smallest matching one: the matching
	// set holds at least one correct replica, so this floor is always
	// reachable again.
	if res.Seq != 3 {
		t.Fatalf("certified watermark = %d, want 3", res.Seq)
	}
	// Completion happens exactly once.
	res, err = a.Add(readReply(t, schemes, 102, 6, "v", false))
	if res != nil || err != nil {
		t.Error("third reply re-certified the read")
	}
	if !a.Done() {
		t.Error("assembler not done after certifying")
	}
}

func TestReadFloorExcludesStaleReplies(t *testing.T) {
	schemes, a := newReadWorld(t, 5)

	// A matching answer below the floor must not count toward the quorum,
	// no matter how many replicas send it.
	if res, err := a.Add(readReply(t, schemes, 100, 4, "stale", false)); res != nil || err != nil {
		t.Fatalf("stale reply: res=%v err=%v", res, err)
	}
	if res, err := a.Add(readReply(t, schemes, 101, 6, "stale", false)); res != nil || err != nil {
		t.Fatalf("one eligible reply certified alone: res=%v err=%v", res, err)
	}
	res, err := a.Add(readReply(t, schemes, 102, 7, "stale", false))
	if err != nil || res == nil {
		t.Fatalf("two eligible matching replies did not certify: res=%v err=%v", res, err)
	}
	if res.Seq != 6 {
		t.Fatalf("certified watermark = %d, want 6 (min of the eligible matches)", res.Seq)
	}
}

func TestReadMismatchIsDefiniteOnlyWhenAllAnswered(t *testing.T) {
	schemes, a := newReadWorld(t, 0)

	if _, err := a.Add(readReply(t, schemes, 100, 5, "a", false)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Add(readReply(t, schemes, 101, 5, "b", false)); err != nil {
		t.Fatalf("two divergent replies are not yet definite: %v", err)
	}
	_, err := a.Add(readReply(t, schemes, 102, 4, "c", false))
	if !errors.Is(err, ErrReadMismatch) {
		t.Fatalf("all executors answered without quorum: err=%v, want ErrReadMismatch", err)
	}
	// Hint is the (g+1)'th-highest watermark seen: 5.
	if hint := a.Hint(); hint != 5 {
		t.Fatalf("hint = %d, want 5", hint)
	}
}

func TestReadHintResistsByzantineInflation(t *testing.T) {
	schemes, a := newReadWorld(t, 0)

	// One Byzantine executor claims an absurd watermark; the hint must
	// still be anchored at a value some correct replica actually reached.
	a.Add(readReply(t, schemes, 100, 1_000_000, "forged", false))
	a.Add(readReply(t, schemes, 101, 5, "x", false))
	if _, err := a.Add(readReply(t, schemes, 102, 4, "y", false)); !errors.Is(err, ErrReadMismatch) {
		t.Fatalf("expected mismatch, got %v", err)
	}
	if hint := a.Hint(); hint != 5 {
		t.Fatalf("hint = %d, want 5 (the (g+1)'th-highest, not the Byzantine claim)", hint)
	}
}

func TestReadHintBelowQuorumFallsBackToFloor(t *testing.T) {
	schemes, a := newReadWorld(t, 9)
	a.Add(readReply(t, schemes, 100, 12, "v", false))
	if hint := a.Hint(); hint != 9 {
		t.Fatalf("hint with <g+1 replies = %d, want the probe floor 9", hint)
	}
}

func TestReadRejectsForgedAndForeignReplies(t *testing.T) {
	schemes, a := newReadWorld(t, 0)

	// Tampered body after signing.
	m := readReply(t, schemes, 100, 5, "v", false)
	m.Body = []byte("tampered")
	if _, err := a.Add(m); err == nil {
		t.Error("tampered reply accepted")
	}
	// Tampered watermark after signing (the signed digest covers it).
	m = readReply(t, schemes, 100, 5, "v", false)
	m.AppliedSeq = 50
	if _, err := a.Add(m); err == nil {
		t.Error("watermark-tampered reply accepted")
	}
	// Executor identity outside the execution cluster.
	m = readReply(t, schemes, 0, 5, "v", false)
	if _, err := a.Add(m); err == nil {
		t.Error("reply from a non-executor accepted")
	}
	// Reply answering someone else's probe.
	m = readReply(t, schemes, 100, 5, "v", false)
	m.Nonce = readNonce + 1
	att, err := schemes[100].Attest(auth.KindReadReply, m.Digest(), []types.NodeID{readClient})
	if err != nil {
		t.Fatal(err)
	}
	m.Att = att
	if _, err := a.Add(m); err == nil {
		t.Error("reply for a different nonce accepted")
	}
	// None of the rejects may have registered a reply.
	if n := a.Replies(); n != 0 {
		t.Fatalf("rejected replies were recorded: %d", n)
	}
}

func TestReadDuplicateExecutorDoesNotCertify(t *testing.T) {
	schemes, a := newReadWorld(t, 0)
	if _, err := a.Add(readReply(t, schemes, 100, 5, "v", false)); err != nil {
		t.Fatal(err)
	}
	res, err := a.Add(readReply(t, schemes, 100, 5, "v", false))
	if res != nil || err != nil {
		t.Fatalf("duplicate from one executor: res=%v err=%v", res, err)
	}
	if a.Replies() != 1 {
		t.Fatalf("replies = %d, want 1", a.Replies())
	}
}

func TestReadRefusalsCertify(t *testing.T) {
	schemes, a := newReadWorld(t, 0)

	// Deterministic refusals are byte-identical across replicas, so g+1 of
	// them certify that the operation must fall back to full agreement.
	a.Add(readReply(t, schemes, 100, 5, "read refused: operation is not read-only", true))
	res, err := a.Add(readReply(t, schemes, 101, 6, "read refused: operation is not read-only", true))
	if err != nil || res == nil {
		t.Fatalf("matching refusals did not certify: res=%v err=%v", res, err)
	}
	if !res.Refused {
		t.Fatal("certified refusal not marked Refused")
	}
}
