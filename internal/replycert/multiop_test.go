package replycert

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/wire"
)

func TestSplitOpReplies(t *testing.T) {
	bodies := [][]byte{[]byte("a"), []byte("bb"), nil}
	packed := wire.PackOpReplies(bodies)
	got, err := SplitOpReplies(packed, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range bodies {
		if !bytes.Equal(got[i], bodies[i]) {
			t.Fatalf("reply %d = %q, want %q", i, got[i], bodies[i])
		}
	}
	// Count mismatch: the certificate does not answer the submitted batch.
	if _, err := SplitOpReplies(packed, 2); !errors.Is(err, ErrInvalid) {
		t.Fatalf("count mismatch err = %v, want ErrInvalid", err)
	}
	// A raw (non-envelope) body is not a batched reply.
	if _, err := SplitOpReplies([]byte("raw"), 1); !errors.Is(err, ErrInvalid) {
		t.Fatalf("raw body err = %v, want ErrInvalid", err)
	}
}
