// Package threshold implements Shoup-style RSA threshold signatures
// ("Practical Threshold Signatures", EUROCRYPT 2000), the third certificate
// implementation the paper relies on (§2, §4.1).
//
// A dealer splits an RSA signing key among `players` nodes so that any k of
// them can jointly produce one ordinary RSA signature, while fewer than k
// learn nothing. Each signature share carries a non-interactive
// Chaum–Pedersen-style proof of correctness, so a combiner (a privacy
// firewall top-row filter) can discard shares fabricated by Byzantine
// execution replicas without trial-and-error combination.
//
// The scheme matters for confidentiality, not just cost amortization: a
// combined threshold signature is byte-identical no matter which correct
// subset of executors contributed, which closes the covert channel that
// certificate membership sets would otherwise provide (§4.2.2).
//
// Implementation notes:
//
//   - Signing is full-domain-hash RSA: the message digest is expanded to the
//     modulus size with a SHA-256 counter MGF and signed directly.
//   - Shares are points of a degree k-1 polynomial over Z_m with m = λ(N);
//     combination uses integer Lagrange coefficients scaled by Δ = players!
//     and recovers the plain RSA signature with a Bézout step, exactly as in
//     Shoup's paper (we skip the safe-prime requirement, which the paper
//     needs only for its proof machinery, not for correctness).
//   - All arithmetic is math/big; no assembly, no external deps.
package threshold

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/big"

	"repro/internal/types"
	"repro/internal/wire"
)

var (
	one = big.NewInt(1)
	two = big.NewInt(2)
	// ErrBadShare reports a signature share whose correctness proof failed.
	ErrBadShare = errors.New("threshold: invalid signature share")
	// ErrBadSignature reports a combined signature that fails verification.
	ErrBadSignature = errors.New("threshold: invalid signature")
	// ErrNotEnoughShares reports fewer valid shares than the threshold k.
	ErrNotEnoughShares = errors.New("threshold: not enough valid shares")
)

// PublicKey is the group's public key plus per-player verification keys.
type PublicKey struct {
	N       *big.Int   // RSA modulus
	E       *big.Int   // public exponent
	K       int        // threshold: shares needed to sign
	Players int        // total shares dealt
	V       *big.Int   // verification base (a generator of the squares)
	VKs     []*big.Int // VKs[i-1] = V^{s_i} mod N, player i's verification key
}

// KeyShare is one player's secret share of the signing exponent.
type KeyShare struct {
	Pub   *PublicKey
	Index int      // 1-based player index
	S     *big.Int // share s_i = f(i) mod λ(N)
}

// SigShare is one player's contribution to a signature: x_i = x^{2Δ s_i} and
// a Fiat–Shamir proof (Z, C) that x_i was computed with the same exponent as
// the player's verification key.
type SigShare struct {
	Index int
	Xi    *big.Int
	Z     *big.Int
	C     *big.Int
}

// delta returns Δ = players!.
func (pk *PublicKey) delta() *big.Int {
	d := big.NewInt(1)
	for i := 2; i <= pk.Players; i++ {
		d.Mul(d, big.NewInt(int64(i)))
	}
	return d
}

// modBytes returns the modulus size in bytes.
func (pk *PublicKey) modBytes() int { return (pk.N.BitLen() + 7) / 8 }

// fdh expands a digest to a full-domain element of Z_N via a counter MGF.
func (pk *PublicKey) fdh(digest types.Digest) *big.Int {
	need := pk.modBytes() + 8 // oversample, then reduce mod N
	out := make([]byte, 0, need+sha256.Size)
	var ctr [4]byte
	for i := uint32(0); len(out) < need; i++ {
		binary.BigEndian.PutUint32(ctr[:], i)
		h := sha256.New()
		h.Write([]byte("saebft-fdh"))
		h.Write(digest[:])
		h.Write(ctr[:])
		out = h.Sum(out)
	}
	x := new(big.Int).SetBytes(out[:need])
	return x.Mod(x, pk.N)
}

// Deal generates a fresh RSA modulus of the given bit size and splits the
// signing exponent into `players` shares with threshold k. The randomness
// source rng may be a deterministic reader for reproducible deployments.
func Deal(rng io.Reader, bits, k, players int) (*PublicKey, []*KeyShare, error) {
	if k < 1 || players < k {
		return nil, nil, fmt.Errorf("threshold: invalid parameters k=%d players=%d", k, players)
	}
	if bits < 256 {
		return nil, nil, fmt.Errorf("threshold: modulus too small (%d bits)", bits)
	}
	e := big.NewInt(65537)
	if players >= 65537 {
		return nil, nil, errors.New("threshold: too many players for e=65537")
	}

	var n, m *big.Int
	for {
		p, err := deterministicPrime(rng, bits/2)
		if err != nil {
			return nil, nil, err
		}
		q, err := deterministicPrime(rng, bits-bits/2)
		if err != nil {
			return nil, nil, err
		}
		if p.Cmp(q) == 0 {
			continue
		}
		n = new(big.Int).Mul(p, q)
		pm1 := new(big.Int).Sub(p, one)
		qm1 := new(big.Int).Sub(q, one)
		// m = lcm(p-1, q-1) = λ(N), the exponent of (Z/N)*: exponent
		// arithmetic for every element of the group is valid mod m.
		g := new(big.Int).GCD(nil, nil, pm1, qm1)
		m = new(big.Int).Mul(pm1, qm1)
		m.Quo(m, g)
		if new(big.Int).GCD(nil, nil, e, m).Cmp(one) == 0 {
			break
		}
	}
	d := new(big.Int).ModInverse(e, m)

	// Shamir-share d with a random degree k-1 polynomial over Z_m.
	coeffs := make([]*big.Int, k)
	coeffs[0] = d
	for i := 1; i < k; i++ {
		c, err := randInt(rng, m)
		if err != nil {
			return nil, nil, err
		}
		coeffs[i] = c
	}
	evalAt := func(x int64) *big.Int {
		acc := new(big.Int)
		xb := big.NewInt(x)
		for i := len(coeffs) - 1; i >= 0; i-- {
			acc.Mul(acc, xb)
			acc.Add(acc, coeffs[i])
			acc.Mod(acc, m)
		}
		return acc
	}

	// Verification base: a random square mod N.
	r, err := randInt(rng, n)
	if err != nil {
		return nil, nil, err
	}
	v := new(big.Int).Exp(r, two, n)

	pub := &PublicKey{N: n, E: e, K: k, Players: players, V: v, VKs: make([]*big.Int, players)}
	shares := make([]*KeyShare, players)
	for i := 1; i <= players; i++ {
		s := evalAt(int64(i))
		shares[i-1] = &KeyShare{Pub: pub, Index: i, S: s}
		pub.VKs[i-1] = new(big.Int).Exp(v, s, n)
	}
	return pub, shares, nil
}

// proofChallenge computes the Fiat–Shamir challenge for a share proof.
func proofChallenge(pk *PublicKey, xt, vi, xi2, vp, xp *big.Int) *big.Int {
	d := types.DigestConcat(
		[]byte("saebft-tsig-proof"),
		pk.V.Bytes(), xt.Bytes(), vi.Bytes(), xi2.Bytes(), vp.Bytes(), xp.Bytes(),
	)
	return new(big.Int).SetBytes(d[:])
}

// Sign produces this player's signature share over digest, with its proof of
// correctness. rng supplies the proof's blinding randomness.
func (ks *KeyShare) Sign(rng io.Reader, digest types.Digest) (*SigShare, error) {
	pk := ks.Pub
	x := pk.fdh(digest)
	delta := pk.delta()

	exp := new(big.Int).Lsh(delta, 1) // 2Δ
	exp.Mul(exp, ks.S)
	xi := new(big.Int).Exp(x, exp, pk.N)

	// Proof that log_v(v_i) == log_{x^{4Δ}}(x_i^2), i.e. the share used s_i.
	xt := new(big.Int).Exp(x, new(big.Int).Lsh(delta, 2), pk.N) // x^{4Δ}
	xi2 := new(big.Int).Exp(xi, two, pk.N)

	// Blinding exponent: |N| + 2*256 bits, per Shoup's statistical hiding.
	bound := new(big.Int).Lsh(one, uint(pk.N.BitLen()+512))
	r, err := randInt(rng, bound)
	if err != nil {
		return nil, err
	}
	vp := new(big.Int).Exp(pk.V, r, pk.N)
	xp := new(big.Int).Exp(xt, r, pk.N)
	c := proofChallenge(pk, xt, pk.VKs[ks.Index-1], xi2, vp, xp)
	z := new(big.Int).Mul(ks.S, c)
	z.Add(z, r)

	return &SigShare{Index: ks.Index, Xi: xi, Z: z, C: c}, nil
}

// VerifyShare checks a signature share's correctness proof.
func (pk *PublicKey) VerifyShare(digest types.Digest, sh *SigShare) error {
	if sh.Index < 1 || sh.Index > pk.Players {
		return fmt.Errorf("%w: player index %d out of range", ErrBadShare, sh.Index)
	}
	if sh.Xi == nil || sh.Z == nil || sh.C == nil || sh.Xi.Sign() <= 0 || sh.Xi.Cmp(pk.N) >= 0 {
		return ErrBadShare
	}
	x := pk.fdh(digest)
	delta := pk.delta()
	xt := new(big.Int).Exp(x, new(big.Int).Lsh(delta, 2), pk.N)
	xi2 := new(big.Int).Exp(sh.Xi, two, pk.N)
	vi := pk.VKs[sh.Index-1]

	// vp = v^z * v_i^{-c}, xp = xt^z * (x_i^2)^{-c}
	viInv := new(big.Int).ModInverse(vi, pk.N)
	xi2Inv := new(big.Int).ModInverse(xi2, pk.N)
	if viInv == nil || xi2Inv == nil {
		return ErrBadShare
	}
	vp := new(big.Int).Exp(pk.V, sh.Z, pk.N)
	vp.Mul(vp, new(big.Int).Exp(viInv, sh.C, pk.N)).Mod(vp, pk.N)
	xp := new(big.Int).Exp(xt, sh.Z, pk.N)
	xp.Mul(xp, new(big.Int).Exp(xi2Inv, sh.C, pk.N)).Mod(xp, pk.N)

	if proofChallenge(pk, xt, vi, xi2, vp, xp).Cmp(sh.C) != 0 {
		return ErrBadShare
	}
	return nil
}

// lagrangeNumDen returns λ^S_{0,i} = Δ · Π_{j∈S\{i}} (0-j)/(i-j) as an exact
// integer (Δ = players! clears all denominators).
func (pk *PublicKey) lagrange(indices []int, i int) *big.Int {
	num := pk.delta()
	den := big.NewInt(1)
	ib := big.NewInt(int64(i))
	for _, j := range indices {
		if j == i {
			continue
		}
		num.Mul(num, big.NewInt(int64(-j)))
		den.Mul(den, new(big.Int).Sub(ib, big.NewInt(int64(j))))
	}
	q, r := new(big.Int).QuoRem(num, den, new(big.Int))
	if r.Sign() != 0 {
		// Cannot happen: Δ·l_i(0) is always integral.
		panic("threshold: non-integral Lagrange coefficient")
	}
	return q
}

// Combine verifies the provided shares and, given at least K valid shares
// from distinct players, assembles the unique RSA signature over digest.
// The result is independent of which valid subset contributed.
func (pk *PublicKey) Combine(digest types.Digest, shares []*SigShare) ([]byte, error) {
	// Keep the first valid share per player until we have K of them, in
	// ascending player order for determinism.
	valid := make(map[int]*SigShare)
	for _, sh := range shares {
		if sh == nil || valid[sh.Index] != nil {
			continue
		}
		if pk.VerifyShare(digest, sh) == nil {
			valid[sh.Index] = sh
		}
	}
	if len(valid) < pk.K {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrNotEnoughShares, len(valid), pk.K)
	}
	indices := make([]int, 0, pk.K)
	for i := 1; i <= pk.Players && len(indices) < pk.K; i++ {
		if valid[i] != nil {
			indices = append(indices, i)
		}
	}

	x := pk.fdh(digest)
	// w = Π x_i^{2λ_i} = x^{4Δ²d}
	w := big.NewInt(1)
	for _, i := range indices {
		lam := pk.lagrange(indices, i)
		lam.Lsh(lam, 1) // 2λ_i
		var term *big.Int
		if lam.Sign() < 0 {
			inv := new(big.Int).ModInverse(valid[i].Xi, pk.N)
			if inv == nil {
				return nil, ErrBadShare
			}
			term = new(big.Int).Exp(inv, lam.Neg(lam), pk.N)
		} else {
			term = new(big.Int).Exp(valid[i].Xi, lam, pk.N)
		}
		w.Mul(w, term).Mod(w, pk.N)
	}

	// w^e = x^{4Δ²}; recover y with y = w^a x^b where a·4Δ² + b·e = 1.
	delta := pk.delta()
	ePrime := new(big.Int).Mul(delta, delta)
	ePrime.Lsh(ePrime, 2) // 4Δ²
	a, b := new(big.Int), new(big.Int)
	g := new(big.Int).GCD(a, b, ePrime, pk.E)
	if g.Cmp(one) != 0 {
		return nil, errors.New("threshold: gcd(4Δ², e) != 1")
	}
	y := big.NewInt(1)
	if a.Sign() < 0 {
		wInv := new(big.Int).ModInverse(w, pk.N)
		if wInv == nil {
			return nil, ErrBadShare
		}
		y.Mul(y, new(big.Int).Exp(wInv, new(big.Int).Neg(a), pk.N))
	} else {
		y.Mul(y, new(big.Int).Exp(w, a, pk.N))
	}
	y.Mod(y, pk.N)
	var xb *big.Int
	if b.Sign() < 0 {
		xInv := new(big.Int).ModInverse(x, pk.N)
		if xInv == nil {
			return nil, ErrBadShare
		}
		xb = new(big.Int).Exp(xInv, new(big.Int).Neg(b), pk.N)
	} else {
		xb = new(big.Int).Exp(x, b, pk.N)
	}
	y.Mul(y, xb).Mod(y, pk.N)

	sig := y.FillBytes(make([]byte, pk.modBytes()))
	if err := pk.Verify(digest, sig); err != nil {
		return nil, err
	}
	return sig, nil
}

// Verify checks a combined signature: y^e mod N == FDH(digest).
func (pk *PublicKey) Verify(digest types.Digest, sig []byte) error {
	if len(sig) != pk.modBytes() {
		return ErrBadSignature
	}
	y := new(big.Int).SetBytes(sig)
	if y.Cmp(pk.N) >= 0 {
		return ErrBadSignature
	}
	if new(big.Int).Exp(y, pk.E, pk.N).Cmp(pk.fdh(digest)) != 0 {
		return ErrBadSignature
	}
	return nil
}

// --- share wire encoding ----------------------------------------------------

// Marshal encodes the share for transport inside an ExecReply.
func (sh *SigShare) Marshal() []byte {
	var w wire.Writer
	w.U32(uint32(sh.Index))
	w.Bytes(sh.Xi.Bytes())
	w.Bytes(sh.Z.Bytes())
	w.Bytes(sh.C.Bytes())
	return w.B
}

// UnmarshalSigShare decodes a share produced by Marshal.
func UnmarshalSigShare(b []byte) (*SigShare, error) {
	r := wire.NewReader(b)
	sh := &SigShare{
		Index: int(r.U32()),
		Xi:    new(big.Int).SetBytes(r.Bytes()),
		Z:     new(big.Int).SetBytes(r.Bytes()),
		C:     new(big.Int).SetBytes(r.Bytes()),
	}
	if r.Err() != nil || r.Remaining() != 0 {
		return nil, errors.New("threshold: malformed signature share")
	}
	return sh, nil
}

// deterministicPrime generates a prime of exactly the given bit length as a
// pure function of the reader's byte stream. crypto/rand.Prime deliberately
// breaks such determinism (randutil.MaybeReadByte), but this package needs
// it: every process of a deployment re-derives the same dealt key from the
// shared seed, standing in for a trusted dealer's distribution channel.
//
// math/big's ProbablyPrime(64) combines 64 Miller-Rabin rounds (bases drawn
// deterministically from the candidate) with a Baillie-PSW test, so the
// primality decision is reproducible too.
func deterministicPrime(rng io.Reader, bits int) (*big.Int, error) {
	if bits < 16 {
		return nil, errors.New("threshold: prime too small")
	}
	nbytes := (bits + 7) / 8
	buf := make([]byte, nbytes)
	for {
		if _, err := io.ReadFull(rng, buf); err != nil {
			return nil, err
		}
		// Clear excess high bits, then force the top two bits (so p·q has
		// full length) and the low bit (odd).
		excess := nbytes*8 - bits
		buf[0] &= 0xFF >> excess
		hi := 7 - excess // bit bits-1 within buf[0]
		buf[0] |= 1 << hi
		if hi > 0 {
			buf[0] |= 1 << (hi - 1) // bit bits-2
		} else {
			buf[1] |= 0x80
		}
		buf[nbytes-1] |= 1
		p := new(big.Int).SetBytes(buf)
		// Walk forward to the next prime; bail out to fresh randomness if
		// the walk would overflow the bit length.
		limit := new(big.Int).Lsh(one, uint(bits))
		step := big.NewInt(2)
		for i := 0; i < 4096; i++ {
			if p.Cmp(limit) >= 0 {
				break
			}
			if p.ProbablyPrime(64) {
				return p, nil
			}
			p.Add(p, step)
		}
	}
}

// randInt returns a uniform value in [0, max) as a pure function of the
// reader (rejection sampling; no MaybeReadByte).
func randInt(rng io.Reader, max *big.Int) (*big.Int, error) {
	if max.Sign() <= 0 {
		return nil, errors.New("threshold: non-positive randInt bound")
	}
	bitLen := max.BitLen()
	nbytes := (bitLen + 7) / 8
	excess := nbytes*8 - bitLen
	buf := make([]byte, nbytes)
	for {
		if _, err := io.ReadFull(rng, buf); err != nil {
			return nil, err
		}
		buf[0] &= 0xFF >> excess
		v := new(big.Int).SetBytes(buf)
		if v.Cmp(max) < 0 {
			return v, nil
		}
	}
}

// --- deterministic randomness ------------------------------------------------

// SeededReader is a deterministic io.Reader backed by a SHA-256 counter DRBG.
// It exists so tests and reproducible deployments can deal identical keys;
// production deployments pass crypto/rand.Reader to Deal instead.
type SeededReader struct {
	seed [32]byte
	ctr  uint64
	buf  []byte
}

// NewSeededReader returns a deterministic reader for the given seed.
func NewSeededReader(seed string) *SeededReader {
	return &SeededReader{seed: sha256.Sum256([]byte(seed))}
}

// Read implements io.Reader; the stream is SHA256(seed || counter) blocks.
func (s *SeededReader) Read(p []byte) (int, error) {
	n := 0
	for n < len(p) {
		if len(s.buf) == 0 {
			h := sha256.New()
			h.Write(s.seed[:])
			var c [8]byte
			binary.BigEndian.PutUint64(c[:], s.ctr)
			s.ctr++
			h.Write(c[:])
			s.buf = h.Sum(nil)
		}
		c := copy(p[n:], s.buf)
		s.buf = s.buf[c:]
		n += c
	}
	return n, nil
}
