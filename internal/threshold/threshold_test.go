package threshold

import (
	"bytes"
	"math/big"
	"sync"
	"testing"

	"repro/internal/types"
)

// testKey deals a small, deterministic key once and shares it across tests;
// dealing searches for primes, which is the slow part.
var (
	dealOnce   sync.Once
	testPub    *PublicKey
	testShares []*KeyShare
)

func dealTestKey(t *testing.T) (*PublicKey, []*KeyShare) {
	t.Helper()
	dealOnce.Do(func() {
		var err error
		testPub, testShares, err = Deal(NewSeededReader("threshold-test"), 512, 2, 3)
		if err != nil {
			t.Fatalf("Deal: %v", err)
		}
	})
	return testPub, testShares
}

func TestDealParametersRejected(t *testing.T) {
	rng := NewSeededReader("x")
	if _, _, err := Deal(rng, 512, 0, 3); err == nil {
		t.Error("Deal accepted k=0")
	}
	if _, _, err := Deal(rng, 512, 4, 3); err == nil {
		t.Error("Deal accepted k > players")
	}
	if _, _, err := Deal(rng, 128, 2, 3); err == nil {
		t.Error("Deal accepted 128-bit modulus")
	}
}

func TestSignCombineVerify(t *testing.T) {
	pub, shares := dealTestKey(t)
	d := types.DigestBytes([]byte("hello"))
	rng := NewSeededReader("sign")

	var sigShares []*SigShare
	for _, ks := range shares {
		sh, err := ks.Sign(rng, d)
		if err != nil {
			t.Fatal(err)
		}
		if err := pub.VerifyShare(d, sh); err != nil {
			t.Fatalf("share %d verify: %v", sh.Index, err)
		}
		sigShares = append(sigShares, sh)
	}
	sig, err := pub.Combine(d, sigShares)
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Verify(d, sig); err != nil {
		t.Fatal(err)
	}
	if err := pub.Verify(types.DigestBytes([]byte("other")), sig); err == nil {
		t.Error("signature verified for the wrong digest")
	}
}

func TestCombineSubsetIndependence(t *testing.T) {
	// The combined signature must be byte-identical regardless of which
	// valid k-subset contributed — this is what closes the certificate
	// membership covert channel (§4.2.2).
	pub, shares := dealTestKey(t)
	d := types.DigestBytes([]byte("membership"))
	rng := NewSeededReader("subset")

	sh := make([]*SigShare, 3)
	for i, ks := range shares {
		var err error
		sh[i], err = ks.Sign(rng, d)
		if err != nil {
			t.Fatal(err)
		}
	}
	subsets := [][]*SigShare{
		{sh[0], sh[1]},
		{sh[1], sh[2]},
		{sh[0], sh[2]},
		{sh[2], sh[0], sh[1]},
	}
	var first []byte
	for i, sub := range subsets {
		sig, err := pub.Combine(d, sub)
		if err != nil {
			t.Fatalf("subset %d: %v", i, err)
		}
		if first == nil {
			first = sig
		} else if !bytes.Equal(first, sig) {
			t.Fatalf("subset %d produced a different signature", i)
		}
	}
}

func TestCombineRejectsTooFewShares(t *testing.T) {
	pub, shares := dealTestKey(t)
	d := types.DigestBytes([]byte("few"))
	sh, err := shares[0].Sign(NewSeededReader("few"), d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pub.Combine(d, []*SigShare{sh}); err == nil {
		t.Error("Combine succeeded with k-1 shares")
	}
	// Duplicates of the same player must not count twice.
	if _, err := pub.Combine(d, []*SigShare{sh, sh}); err == nil {
		t.Error("Combine counted duplicate player shares")
	}
}

func TestBadShareRejected(t *testing.T) {
	pub, shares := dealTestKey(t)
	d := types.DigestBytes([]byte("bad"))
	rng := NewSeededReader("bad")

	good0, _ := shares[0].Sign(rng, d)
	good1, _ := shares[1].Sign(rng, d)

	// A fabricated share: right structure, wrong exponentiation.
	forged := &SigShare{Index: 3, Xi: big.NewInt(12345), Z: good1.Z, C: good1.C}
	if err := pub.VerifyShare(d, forged); err == nil {
		t.Fatal("VerifyShare accepted a forged share")
	}
	// Combine must succeed by filtering the forged share out when enough
	// good ones remain...
	if _, err := pub.Combine(d, []*SigShare{forged, good0, good1}); err != nil {
		t.Fatalf("Combine with one bad + k good shares: %v", err)
	}
	// ...and fail cleanly when they do not.
	if _, err := pub.Combine(d, []*SigShare{forged, good0}); err == nil {
		t.Error("Combine succeeded with a forged share standing in for a good one")
	}
}

func TestShareProofBoundToDigest(t *testing.T) {
	pub, shares := dealTestKey(t)
	d1 := types.DigestBytes([]byte("one"))
	d2 := types.DigestBytes([]byte("two"))
	sh, err := shares[0].Sign(NewSeededReader("bind"), d1)
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.VerifyShare(d2, sh); err == nil {
		t.Error("share proof verified against a different digest (replayable)")
	}
}

func TestVerifyShareRangeChecks(t *testing.T) {
	pub, shares := dealTestKey(t)
	d := types.DigestBytes([]byte("r"))
	sh, _ := shares[0].Sign(NewSeededReader("r"), d)
	bad := *sh
	bad.Index = 99
	if err := pub.VerifyShare(d, &bad); err == nil {
		t.Error("accepted out-of-range index")
	}
	bad = *sh
	bad.Xi = new(big.Int).Add(pub.N, big.NewInt(1))
	if err := pub.VerifyShare(d, &bad); err == nil {
		t.Error("accepted Xi >= N")
	}
	bad = *sh
	bad.Xi = nil
	if err := pub.VerifyShare(d, &bad); err == nil {
		t.Error("accepted nil Xi")
	}
}

func TestVerifyRejectsMalformedSignature(t *testing.T) {
	pub, _ := dealTestKey(t)
	d := types.DigestBytes([]byte("m"))
	if err := pub.Verify(d, nil); err == nil {
		t.Error("accepted nil signature")
	}
	if err := pub.Verify(d, make([]byte, pub.modBytes())); err == nil {
		t.Error("accepted zero signature")
	}
	huge := new(big.Int).Add(pub.N, big.NewInt(5)).FillBytes(make([]byte, pub.modBytes()))
	if err := pub.Verify(d, huge); err == nil {
		t.Error("accepted y >= N")
	}
}

func TestSigShareMarshalRoundTrip(t *testing.T) {
	pub, shares := dealTestKey(t)
	d := types.DigestBytes([]byte("wire"))
	sh, err := shares[2].Sign(NewSeededReader("wire"), d)
	if err != nil {
		t.Fatal(err)
	}
	out, err := UnmarshalSigShare(sh.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if out.Index != sh.Index || out.Xi.Cmp(sh.Xi) != 0 || out.Z.Cmp(sh.Z) != 0 || out.C.Cmp(sh.C) != 0 {
		t.Error("share did not round trip")
	}
	if err := pub.VerifyShare(d, out); err != nil {
		t.Errorf("round-tripped share failed verification: %v", err)
	}
	if _, err := UnmarshalSigShare([]byte{1, 2, 3}); err == nil {
		t.Error("UnmarshalSigShare accepted garbage")
	}
	if _, err := UnmarshalSigShare(append(sh.Marshal(), 0)); err == nil {
		t.Error("UnmarshalSigShare accepted trailing bytes")
	}
}

func TestLagrangeIntegrality(t *testing.T) {
	pub, _ := dealTestKey(t)
	// Every k-subset of {1..players} must produce integral coefficients
	// (the panic inside lagrange would fail the test otherwise).
	idx := [][]int{{1, 2}, {1, 3}, {2, 3}}
	for _, s := range idx {
		for _, i := range s {
			_ = pub.lagrange(s, i)
		}
	}
}

func TestSeededReaderDeterministic(t *testing.T) {
	a, b := NewSeededReader("s"), NewSeededReader("s")
	ba, bb := make([]byte, 100), make([]byte, 100)
	if _, err := a.Read(ba); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Read(bb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba, bb) {
		t.Error("SeededReader not deterministic")
	}
	c := NewSeededReader("other")
	bc := make([]byte, 100)
	if _, err := c.Read(bc); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ba, bc) {
		t.Error("different seeds produced the same stream")
	}
}

func TestFDHDifferentDigests(t *testing.T) {
	pub, _ := dealTestKey(t)
	x1 := pub.fdh(types.DigestBytes([]byte("a")))
	x2 := pub.fdh(types.DigestBytes([]byte("b")))
	if x1.Cmp(x2) == 0 {
		t.Error("fdh collided")
	}
	if x1.Cmp(pub.N) >= 0 || x1.Sign() < 0 {
		t.Error("fdh out of range")
	}
}

func TestLargerThresholds(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping larger-threshold dealing in -short mode")
	}
	// g=2: 3-of-5, matching a 5-replica execution cluster.
	pub, shares, err := Deal(NewSeededReader("3of5"), 512, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	d := types.DigestBytes([]byte("3of5"))
	rng := NewSeededReader("3of5-sign")
	var sigShares []*SigShare
	for _, ks := range []*KeyShare{shares[4], shares[1], shares[3]} {
		sh, err := ks.Sign(rng, d)
		if err != nil {
			t.Fatal(err)
		}
		sigShares = append(sigShares, sh)
	}
	sig, err := pub.Combine(d, sigShares)
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Verify(d, sig); err != nil {
		t.Fatal(err)
	}
}

func TestDealDeterministicAcrossProcesses(t *testing.T) {
	// Two independent dealings from the same seed must produce identical
	// keys and shares: multi-process deployments re-derive the dealt key
	// in every process (crypto/rand.Prime deliberately prevents this,
	// which is why the package has its own deterministic generator).
	pub1, sh1, err := Deal(NewSeededReader("cross-process"), 512, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	pub2, sh2, err := Deal(NewSeededReader("cross-process"), 512, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if pub1.N.Cmp(pub2.N) != 0 || pub1.V.Cmp(pub2.V) != 0 {
		t.Fatal("public keys differ across dealings from the same seed")
	}
	for i := range sh1 {
		if sh1[i].S.Cmp(sh2[i].S) != 0 {
			t.Fatalf("share %d differs across dealings", i+1)
		}
	}
	// And shares from dealing 1 verify against dealing 2's public key.
	d := types.DigestBytes([]byte("cross"))
	sh, err := sh1[0].Sign(NewSeededReader("s"), d)
	if err != nil {
		t.Fatal(err)
	}
	if err := pub2.VerifyShare(d, sh); err != nil {
		t.Fatalf("cross-process share verification failed: %v", err)
	}
}

func TestDeterministicPrimeProperties(t *testing.T) {
	rng := NewSeededReader("primes")
	for i := 0; i < 3; i++ {
		p, err := deterministicPrime(rng, 128)
		if err != nil {
			t.Fatal(err)
		}
		if p.BitLen() != 128 {
			t.Errorf("prime has %d bits, want 128", p.BitLen())
		}
		if !p.ProbablyPrime(64) {
			t.Error("deterministicPrime returned a composite")
		}
	}
	if _, err := deterministicPrime(rng, 8); err == nil {
		t.Error("accepted absurdly small prime size")
	}
}

func TestRandIntBounds(t *testing.T) {
	rng := NewSeededReader("randint")
	max := big.NewInt(1000)
	for i := 0; i < 200; i++ {
		v, err := randInt(rng, max)
		if err != nil {
			t.Fatal(err)
		}
		if v.Sign() < 0 || v.Cmp(max) >= 0 {
			t.Fatalf("randInt out of range: %v", v)
		}
	}
	if _, err := randInt(rng, big.NewInt(0)); err == nil {
		t.Error("randInt accepted zero bound")
	}
}
