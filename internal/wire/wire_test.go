package wire

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/auth"
	"repro/internal/types"
)

func att(n types.NodeID, proof string) auth.Attestation {
	a := auth.Attestation{Node: n}
	if proof != "" {
		a.Proof = []byte(proof)
	}
	return a
}

func sampleRequest() Request {
	return Request{
		Client:     100,
		Timestamp:  42,
		Op:         []byte("put k v"),
		ReplyTo:    2,
		ReplyToAll: true,
		Att:        att(100, "mac-vector"),
	}
}

// roundTrip marshals m, unmarshals it, and returns the decoded message.
func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	data := Marshal(m)
	out, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal(%v): %v", m.Type(), err)
	}
	if !reflect.DeepEqual(m, out) {
		t.Fatalf("%v round trip mismatch:\n in: %#v\nout: %#v", m.Type(), m, out)
	}
	return out
}

func TestRoundTripAllMessages(t *testing.T) {
	req := sampleRequest()
	nd := types.NonDet{Time: 7, Rand: types.DigestBytes([]byte("r"))}
	pp := PrePrepare{View: 1, Seq: 9, ND: nd, Requests: []Request{req}, Primary: 1, Att: att(1, "p")}
	vc := ViewChange{
		NewView:    3,
		LastStable: 128,
		CkptState:  types.DigestBytes([]byte("q")),
		CkptProof: []AgreeCheckpoint{
			{Seq: 128, State: types.DigestBytes([]byte("q")), Replica: 0, Att: att(0, "s0")},
			{Seq: 128, State: types.DigestBytes([]byte("q")), Replica: 1, Att: att(1, "s1")},
		},
		Prepared: []PreparedEntry{{
			View: 2, Seq: 130, ND: nd, Requests: []Request{req},
			PrimaryAtt: att(2, "pa"),
			Prepares:   []auth.Attestation{att(0, "x"), att(3, "y")},
		}},
		Replica: 2,
		Att:     att(2, "vc-sig"),
	}
	msgs := []Message{
		&req,
		&pp,
		&Prepare{View: 1, Seq: 9, OD: pp.OrderDigest(), Replica: 2, Att: att(2, "pr")},
		&Commit{View: 1, Seq: 9, OD: pp.OrderDigest(), Replica: 3, Att: att(3, "cm")},
		&AgreeCheckpoint{Seq: 128, State: types.DigestBytes([]byte("st")), Replica: 1, Att: att(1, "ck")},
		&vc,
		&NewView{View: 3, ViewChanges: []ViewChange{vc}, PrePrepares: []PrePrepare{pp}, Primary: 3, Att: att(3, "nv")},
		&Order{View: 1, Seq: 9, ND: nd, Requests: []Request{req}, Replica: 0, Att: att(0, "or")},
		&OrderProof{View: 1, Seq: 9, ND: nd, Requests: []Request{req}, Atts: []auth.Attestation{att(0, "a"), att(1, "b"), att(2, "c")}},
		&ExecReply{
			Entries:  []Reply{{View: 1, Seq: 9, Client: 100, Timestamp: 42, Body: []byte("ok")}},
			Executor: 10, Share: []byte("tshare"), Att: att(10, "ra"),
		},
		&ReplyCert{
			Entries:      []Reply{{View: 1, Seq: 9, Client: 100, Timestamp: 42, Body: []byte("ok")}},
			ThresholdSig: []byte("tsig"),
			Atts:         []auth.Attestation{att(10, "m1"), att(11, "m2")},
		},
		&ExecCheckpoint{Seq: 64, State: types.DigestBytes([]byte("es")), Executor: 11, Att: att(11, "ec")},
		&FetchMissing{Seq: 5, Executor: 12},
		&StableProof{Seq: 64, State: types.DigestBytes([]byte("es")), Atts: []auth.Attestation{att(10, "u"), att(11, "v")}},
		&CheckpointFetch{Seq: 64, Executor: 12},
		&CheckpointData{Seq: 64, State: types.DigestBytes([]byte("es")), Payload: []byte("snapshot-bytes")},
	}
	for _, m := range msgs {
		roundTrip(t, m)
	}
}

func TestRoundTripEmptySlices(t *testing.T) {
	roundTrip(t, &PrePrepare{View: 0, Seq: 1, Primary: 0, Att: att(0, "")})
	roundTrip(t, &ReplyCert{})
	roundTrip(t, &OrderProof{Seq: 3})
	roundTrip(t, &ViewChange{NewView: 1, Replica: 0, Att: att(0, "s")})
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Error("Unmarshal(nil) succeeded")
	}
	if _, err := Unmarshal([]byte{0xFF}); err == nil {
		t.Error("Unmarshal(unknown type) succeeded")
	}
	// Truncated at every prefix length must error, never panic.
	data := Marshal(&PrePrepare{View: 1, Seq: 2, Requests: []Request{sampleRequest()}, Att: att(0, "z")})
	for i := 0; i < len(data); i++ {
		if _, err := Unmarshal(data[:i]); err == nil {
			t.Fatalf("Unmarshal of %d-byte prefix succeeded", i)
		}
	}
}

func TestUnmarshalRejectsTrailing(t *testing.T) {
	data := Marshal(&FetchMissing{Seq: 1, Executor: 2})
	if _, err := Unmarshal(append(data, 0x00)); err == nil {
		t.Error("Unmarshal accepted trailing bytes")
	}
}

func TestUnmarshalRejectsHugeSliceLen(t *testing.T) {
	// A corrupted length prefix must not cause a giant allocation.
	var w Writer
	w.U8(uint8(TReplyCert))
	w.U32(0xFFFFFFFF) // entries length
	if _, err := Unmarshal(w.B); err == nil {
		t.Error("Unmarshal accepted absurd slice length")
	}
}

func TestRequestDigestSemantics(t *testing.T) {
	a := sampleRequest()
	b := a
	b.ReplyTo = 3
	b.ReplyToAll = false
	b.Att = att(100, "different")
	if a.Digest() != b.Digest() {
		t.Error("request digest should ignore routing and attestation")
	}
	c := a
	c.Timestamp++
	if a.Digest() == c.Digest() {
		t.Error("request digest should cover timestamp")
	}
	d := a
	d.Op = []byte("put k v2")
	if a.Digest() == d.Digest() {
		t.Error("request digest should cover op")
	}
}

func TestOrderDigestCoversNonDet(t *testing.T) {
	bd := types.DigestBytes([]byte("batch"))
	nd1 := types.NonDet{Time: 5, Rand: types.DigestBytes([]byte("a"))}
	nd2 := types.NonDet{Time: 6, Rand: types.DigestBytes([]byte("a"))}
	if OrderDigest(1, 2, bd, nd1) == OrderDigest(1, 2, bd, nd2) {
		t.Error("OrderDigest must cover the nondeterministic inputs")
	}
	if OrderDigest(1, 2, bd, nd1) == OrderDigest(2, 2, bd, nd1) {
		t.Error("OrderDigest must cover the view")
	}
}

func TestBatchDigestOrderSensitive(t *testing.T) {
	r1, r2 := sampleRequest(), sampleRequest()
	r2.Timestamp = 43
	if BatchDigest([]Request{r1, r2}) == BatchDigest([]Request{r2, r1}) {
		t.Error("BatchDigest must be order sensitive")
	}
	if BatchDigest(nil) != BatchDigest([]Request{}) {
		t.Error("BatchDigest of empty batches must agree")
	}
}

func TestBundleDigestCoversEntries(t *testing.T) {
	e1 := Reply{View: 1, Seq: 2, Client: 100, Timestamp: 3, Body: []byte("a")}
	e2 := e1
	e2.Body = []byte("b")
	if BundleDigest([]Reply{e1}) == BundleDigest([]Reply{e2}) {
		t.Error("BundleDigest must cover reply bodies")
	}
}

func TestQuickRequestRoundTrip(t *testing.T) {
	f := func(client int32, ts uint64, op []byte, proof []byte, all bool) bool {
		m := &Request{
			Client:     types.NodeID(client),
			Timestamp:  types.Timestamp(ts),
			Op:         op,
			ReplyTo:    1,
			ReplyToAll: all,
			Att:        auth.Attestation{Node: types.NodeID(client), Proof: proof},
		}
		out, err := Unmarshal(Marshal(m))
		if err != nil {
			return false
		}
		got := out.(*Request)
		return got.Client == m.Client && got.Timestamp == m.Timestamp &&
			bytes.Equal(got.Op, m.Op) && bytes.Equal(got.Att.Proof, m.Att.Proof) &&
			got.ReplyToAll == m.ReplyToAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickReaderNeverPanics(t *testing.T) {
	// Random garbage through Unmarshal: errors are fine, panics are not.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		n := rng.Intn(256)
		b := make([]byte, n)
		rng.Read(b)
		if n > 0 {
			b[0] = byte(rng.Intn(20)) // bias toward valid type tags
		}
		_, _ = Unmarshal(b) //nolint:errcheck // must not panic
	}
}

func TestWriterReaderPrimitives(t *testing.T) {
	var w Writer
	w.U8(7)
	w.Bool(true)
	w.U32(1 << 20)
	w.U64(1 << 40)
	w.Node(-1)
	w.Digest(types.DigestBytes([]byte("d")))
	w.Bytes([]byte("hello"))
	w.Bytes(nil)

	r := NewReader(w.B)
	if r.U8() != 7 || !r.Bool() || r.U32() != 1<<20 || r.U64() != 1<<40 {
		t.Fatal("primitive mismatch")
	}
	if r.Node() != types.NodeID(-1) {
		t.Fatal("negative NodeID did not round trip")
	}
	if r.Digest() != types.DigestBytes([]byte("d")) {
		t.Fatal("digest mismatch")
	}
	if string(r.Bytes()) != "hello" {
		t.Fatal("bytes mismatch")
	}
	if r.Bytes() != nil {
		t.Fatal("nil bytes should decode as nil")
	}
	if r.Err() != nil || r.Remaining() != 0 {
		t.Fatalf("err=%v remaining=%d", r.Err(), r.Remaining())
	}
	// Reading past the end sets a sticky error.
	if r.U64(); r.Err() == nil {
		t.Fatal("read past end did not error")
	}
}

func TestMsgTypeStrings(t *testing.T) {
	for mt := TRequest; mt <= TCheckpointData; mt++ {
		if s := mt.String(); s == "" || s[0] == 'M' {
			t.Errorf("MsgType(%d).String() = %q", mt, s)
		}
	}
	if MsgType(99).String() != "MSG(99)" {
		t.Error("unknown MsgType string")
	}
}

func TestRoundTripCatchupMessages(t *testing.T) {
	pp := PrePrepare{View: 2, Seq: 7, ND: types.NonDet{Time: 3, Rand: types.DigestBytes([]byte("n"))},
		Requests: []Request{sampleRequest()}, Primary: 2, Att: att(2, "pp")}
	roundTrip(t, &Status{View: 4, LastExec: 100, LastStable: 64, Replica: 3})
	roundTrip(t, &CommitProof{PP: pp, Commits: []auth.Attestation{att(0, "c0"), att(1, "c1"), att(2, "c2")}})
	roundTrip(t, &CommitProof{PP: PrePrepare{View: 1, Seq: 1, Att: att(0, "x")}})
}

func TestViewChangeSigningDigestExcludesSignature(t *testing.T) {
	vc := ViewChange{NewView: 2, LastStable: 10, Replica: 1}
	d1 := vc.SigningDigest()
	vc.Att = att(1, "signature")
	if vc.SigningDigest() != d1 {
		t.Error("signing digest covers the signature itself")
	}
	vc.LastStable = 11
	if vc.SigningDigest() == d1 {
		t.Error("signing digest ignores LastStable")
	}
}

func TestNewViewSigningDigestCoversOSet(t *testing.T) {
	nv := NewView{View: 3, Primary: 3}
	d1 := nv.SigningDigest()
	nv.PrePrepares = []PrePrepare{{View: 3, Seq: 9}}
	if nv.SigningDigest() == d1 {
		t.Error("signing digest ignores the re-proposal set")
	}
}

func TestReplyCertMaxSeq(t *testing.T) {
	rc := ReplyCert{Entries: []Reply{{Seq: 3}, {Seq: 9}, {Seq: 5}}}
	if rc.MaxSeq() != 9 {
		t.Errorf("MaxSeq = %d", rc.MaxSeq())
	}
	if (&ReplyCert{}).MaxSeq() != 0 {
		t.Error("empty cert MaxSeq != 0")
	}
}
