package wire

// Multi-op envelopes implement client-side operation batching: a client
// handle coalesces several concurrent operations into one paper-model
// request whose body is a packed envelope, and the execution cluster
// unpacks it, executes each operation in order, and answers with a packed
// reply envelope inside the single certified reply entry. The agreement
// protocol is oblivious to the packing — an envelope orders, retransmits,
// checkpoints, and seals exactly like any other opaque request body — so
// one slot of agreement (and one entry of the exactly-once reply table)
// amortizes over every operation in the envelope.
//
// Framing: a two-byte tag (magic, kind) followed by a canonical
// length-prefixed list of items. A body is treated as an envelope only if
// it parses completely with no trailing bytes; anything else is a single
// opaque operation. Callers that might legitimately submit a raw body
// beginning with the magic byte wrap it in a one-op envelope (see
// IsMultiOp), which removes the ambiguity end to end.

const (
	multiOpMagic       = 0xB7
	multiOpKindOps     = 0x01
	multiOpKindReplies = 0x02
)

func packMulti(kind uint8, items [][]byte) []byte {
	var w Writer
	w.U8(multiOpMagic)
	w.U8(kind)
	w.Len(len(items))
	for _, it := range items {
		w.Bytes(it)
	}
	return w.B
}

func unpackMulti(kind uint8, body []byte) ([][]byte, bool) {
	if len(body) < 2 || body[0] != multiOpMagic || body[1] != kind {
		return nil, false
	}
	r := NewReader(body[2:])
	n := r.SliceLen()
	if n == 0 {
		return nil, false
	}
	items := make([][]byte, n)
	for i := range items {
		items[i] = r.Bytes()
	}
	if r.Err() != nil || r.Remaining() != 0 {
		return nil, false
	}
	return items, true
}

// PackOps packs one or more operations into a multi-op request body.
func PackOps(ops [][]byte) []byte { return packMulti(multiOpKindOps, ops) }

// UnpackOps decodes a multi-op request body. It reports false for any body
// that is not a complete, well-formed envelope — such a body is a single
// opaque operation.
func UnpackOps(body []byte) ([][]byte, bool) { return unpackMulti(multiOpKindOps, body) }

// IsMultiOp reports whether body would be mistaken for a multi-op request
// envelope by its leading tag. Submitters of raw single operations use it
// to decide whether a body must be escaped into a one-op envelope.
func IsMultiOp(body []byte) bool {
	return len(body) >= 2 && body[0] == multiOpMagic && body[1] == multiOpKindOps
}

// PackOpReplies packs per-op reply bodies into a multi-op reply body, in
// the same order as the ops of the request envelope they answer.
func PackOpReplies(bodies [][]byte) []byte { return packMulti(multiOpKindReplies, bodies) }

// UnpackOpReplies decodes a multi-op reply body, reporting false for any
// body that is not a complete, well-formed reply envelope.
func UnpackOpReplies(body []byte) ([][]byte, bool) { return unpackMulti(multiOpKindReplies, body) }
