package wire

import (
	"bytes"
	"testing"
)

func TestMultiOpRoundTrip(t *testing.T) {
	cases := [][][]byte{
		{[]byte("one")},
		{[]byte("a"), []byte("bb"), []byte("ccc")},
		{nil, []byte("x"), nil}, // empty ops survive
		{bytes.Repeat([]byte{0xB7}, 64)},
	}
	for _, ops := range cases {
		body := PackOps(ops)
		if !IsMultiOp(body) {
			t.Fatalf("IsMultiOp(PackOps(%d ops)) = false", len(ops))
		}
		got, ok := UnpackOps(body)
		if !ok {
			t.Fatalf("UnpackOps failed for %d ops", len(ops))
		}
		if len(got) != len(ops) {
			t.Fatalf("unpacked %d ops, want %d", len(got), len(ops))
		}
		for i := range ops {
			if !bytes.Equal(got[i], ops[i]) {
				t.Fatalf("op %d = %q, want %q", i, got[i], ops[i])
			}
		}
	}
}

func TestReplyEnvelopeRoundTrip(t *testing.T) {
	bodies := [][]byte{[]byte("r1"), nil, []byte("r3")}
	packed := PackOpReplies(bodies)
	got, ok := UnpackOpReplies(packed)
	if !ok {
		t.Fatal("UnpackOpReplies failed")
	}
	if len(got) != 3 || !bytes.Equal(got[0], bodies[0]) || got[1] != nil || !bytes.Equal(got[2], bodies[2]) {
		t.Fatalf("unpacked %q", got)
	}
	// Reply envelopes must not be mistaken for op envelopes and vice versa.
	if _, ok := UnpackOps(packed); ok {
		t.Fatal("reply envelope decoded as op envelope")
	}
	if _, ok := UnpackOpReplies(PackOps(bodies)); ok {
		t.Fatal("op envelope decoded as reply envelope")
	}
}

func TestUnpackOpsRejectsNonEnvelopes(t *testing.T) {
	bad := [][]byte{
		nil,
		{},
		[]byte("plain operation"),
		{multiOpMagic},                 // magic alone
		{multiOpMagic, multiOpKindOps}, // no count
		{multiOpMagic, multiOpKindOps, 0, 0, 0, 0},    // zero ops
		{multiOpMagic, multiOpKindOps, 0, 0, 0, 2, 0}, // truncated items
		append(PackOps([][]byte{[]byte("x")}), 0xFF),  // trailing byte
	}
	for i, body := range bad {
		if ops, ok := UnpackOps(body); ok {
			t.Fatalf("case %d: UnpackOps accepted %v as %q", i, body, ops)
		}
	}
}

func TestSingleOpEscaping(t *testing.T) {
	// A raw op that happens to begin with the envelope tag must be wrapped
	// by submitters; the wrapped form round-trips to the original.
	raw := append([]byte{multiOpMagic, multiOpKindOps}, []byte("unlucky prefix")...)
	if !IsMultiOp(raw) {
		t.Fatal("test op should look like an envelope")
	}
	wrapped := PackOps([][]byte{raw})
	ops, ok := UnpackOps(wrapped)
	if !ok || len(ops) != 1 || !bytes.Equal(ops[0], raw) {
		t.Fatalf("escaped op round-trip failed: %q, %v", ops, ok)
	}
}
