package wire

import (
	"fmt"

	"repro/internal/types"
)

// Persisted-record encodings for the durable storage subsystem
// (internal/storage). WAL records reuse Marshal/Unmarshal framing of the
// self-proving protocol messages (CommitProof on the agreement side,
// OrderProof on the execution side), so replay feeds the normal untrusted
// message paths. Stable-checkpoint proofs need one extra envelope each:
//
//   - execution replicas persist a marshaled StableProof (already a wire
//     message carrying the g+1 checkpoint attestations);
//   - agreement replicas persist the 2f+1 AgreeCheckpoint votes that made
//     the checkpoint stable, encoded by EncodeAgreeProof below (the votes
//     are a proof set, not a network message, so they get a plain canonical
//     envelope rather than a MsgType).
//
// Agreement voting state gets three more record encodings, all local facts
// rather than network messages, so like the agree-proof they use plain
// canonical envelopes:
//
//   - VoteRecord marks one vote this replica sent (or, for a primary,
//     proposed) for one slot, written before the vote leaves the node so a
//     recovered replica can refuse to contradict itself;
//   - EncodePreparedRecord wraps the PreparedEntry certificate a slot
//     reached prepared with, so view changes after a restart still carry
//     the evidence (without it a recovered replica would count against f);
//   - ViewRecord marks a view transition (campaign start or new-view
//     install), written before the transition is announced.
//
// All three decoders are strict: trailing bytes, unknown discriminator
// values, and non-canonical booleans are rejected, so a corrupted-but-CRC-
// valid WAL record is dropped during replay instead of fabricating a
// phantom vote.

// EncodeAgreeProof canonically encodes the vote set proving an agreement
// checkpoint stable.
func EncodeAgreeProof(votes []AgreeCheckpoint) []byte {
	var w Writer
	w.Len(len(votes))
	for i := range votes {
		votes[i].marshalTo(&w)
	}
	return w.B
}

// DecodeAgreeProof decodes a vote set produced by EncodeAgreeProof. The
// caller re-verifies every attestation; decoding only restores structure.
func DecodeAgreeProof(data []byte) ([]AgreeCheckpoint, error) {
	r := NewReader(data)
	n := r.SliceLen()
	votes := make([]AgreeCheckpoint, n)
	for i := 0; i < n; i++ {
		votes[i].unmarshalFrom(r)
	}
	if err := r.finish(); err != nil {
		return nil, err
	}
	return votes, nil
}

// VotePhase orders the promises a replica makes about one slot: proposing
// or accepting a pre-prepare, sending a prepare, sending a commit. Higher
// phases imply the lower ones for the same (view, digest).
type VotePhase uint8

// Vote phases, in protocol order.
const (
	VotePrePrepare VotePhase = 1 // proposed (primary) or accepted the pre-prepare
	VotePrepare    VotePhase = 2 // sent a prepare
	VoteCommit     VotePhase = 3 // sent a commit
)

// VoteRecord is one durable vote marker: this replica attested to order
// digest OD at slot Seq in View, up to Phase. It is appended (and synced)
// before the corresponding message is externalized, so after a crash the
// replica knows every vote it may have sent and refuses to contradict one.
type VoteRecord struct {
	View  types.View
	Seq   types.SeqNum
	OD    types.Digest
	Phase VotePhase
}

// EncodeVoteRecord canonically encodes a vote marker.
func EncodeVoteRecord(v VoteRecord) []byte {
	var w Writer
	w.View(v.View)
	w.Seq(v.Seq)
	w.Digest(v.OD)
	w.U8(uint8(v.Phase))
	return w.B
}

// DecodeVoteRecord decodes a vote marker, rejecting trailing bytes and
// out-of-range phases.
func DecodeVoteRecord(data []byte) (VoteRecord, error) {
	r := NewReader(data)
	v := VoteRecord{View: r.View(), Seq: r.Seq(), OD: r.Digest(), Phase: VotePhase(r.U8())}
	if err := r.finish(); err != nil {
		return VoteRecord{}, err
	}
	if v.Phase < VotePrePrepare || v.Phase > VoteCommit {
		return VoteRecord{}, fmt.Errorf("wire: invalid vote phase %d", v.Phase)
	}
	return v, nil
}

// ViewRecord is one durable view transition: InChange true marks the start
// of a campaign for View (a VIEW-CHANGE is about to be broadcast), false
// marks View installed (a NEW-VIEW was accepted or built). The latest
// record in append order is the replica's current view state.
type ViewRecord struct {
	View     types.View
	InChange bool
}

// EncodeViewRecord canonically encodes a view transition.
func EncodeViewRecord(v ViewRecord) []byte {
	var w Writer
	w.View(v.View)
	w.Bool(v.InChange)
	return w.B
}

// DecodeViewRecord decodes a view transition, rejecting trailing bytes and
// non-canonical booleans.
func DecodeViewRecord(data []byte) (ViewRecord, error) {
	r := NewReader(data)
	v := ViewRecord{View: r.View()}
	b := r.U8()
	if err := r.finish(); err != nil {
		return ViewRecord{}, err
	}
	if b > 1 {
		return ViewRecord{}, fmt.Errorf("wire: non-canonical bool %d in view record", b)
	}
	v.InChange = b == 1
	return v, nil
}

// EncodePreparedRecord canonically encodes the prepared certificate for one
// slot: the primary's pre-prepare evidence plus 2f prepare attestations.
// Recovery re-verifies every attestation before trusting it.
func EncodePreparedRecord(e *PreparedEntry) []byte {
	var w Writer
	e.marshalTo(&w)
	return w.B
}

// DecodePreparedRecord decodes a prepared certificate, rejecting trailing
// bytes. The caller re-verifies the evidence; decoding restores structure.
func DecodePreparedRecord(data []byte) (*PreparedEntry, error) {
	r := NewReader(data)
	e := &PreparedEntry{}
	e.unmarshalFrom(r)
	if err := r.finish(); err != nil {
		return nil, err
	}
	return e, nil
}
