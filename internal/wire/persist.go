package wire

// Persisted-record encodings for the durable storage subsystem
// (internal/storage). WAL records reuse Marshal/Unmarshal framing of the
// self-proving protocol messages (CommitProof on the agreement side,
// OrderProof on the execution side), so replay feeds the normal untrusted
// message paths. Stable-checkpoint proofs need one extra envelope each:
//
//   - execution replicas persist a marshaled StableProof (already a wire
//     message carrying the g+1 checkpoint attestations);
//   - agreement replicas persist the 2f+1 AgreeCheckpoint votes that made
//     the checkpoint stable, encoded by EncodeAgreeProof below (the votes
//     are a proof set, not a network message, so they get a plain canonical
//     envelope rather than a MsgType).

// EncodeAgreeProof canonically encodes the vote set proving an agreement
// checkpoint stable.
func EncodeAgreeProof(votes []AgreeCheckpoint) []byte {
	var w Writer
	w.Len(len(votes))
	for i := range votes {
		votes[i].marshalTo(&w)
	}
	return w.B
}

// DecodeAgreeProof decodes a vote set produced by EncodeAgreeProof. The
// caller re-verifies every attestation; decoding only restores structure.
func DecodeAgreeProof(data []byte) ([]AgreeCheckpoint, error) {
	r := NewReader(data)
	n := r.SliceLen()
	votes := make([]AgreeCheckpoint, n)
	for i := 0; i < n; i++ {
		votes[i].unmarshalFrom(r)
	}
	if err := r.finish(); err != nil {
		return nil, err
	}
	return votes, nil
}
