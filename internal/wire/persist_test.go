package wire

import (
	"testing"

	"repro/internal/auth"
	"repro/internal/types"
)

func TestAgreeProofRoundTrip(t *testing.T) {
	votes := []AgreeCheckpoint{
		{Seq: 64, State: types.DigestBytes([]byte("s")), Replica: 0,
			Att: auth.Attestation{Node: 0, Proof: []byte("sig-0")}},
		{Seq: 64, State: types.DigestBytes([]byte("s")), Replica: 2,
			Att: auth.Attestation{Node: 2, Proof: []byte("sig-2")}},
		{Seq: 64, State: types.DigestBytes([]byte("s")), Replica: 3,
			Att: auth.Attestation{Node: 3, Proof: []byte("sig-3")}},
	}
	got, err := DecodeAgreeProof(EncodeAgreeProof(votes))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(votes) {
		t.Fatalf("decoded %d votes, want %d", len(got), len(votes))
	}
	for i := range votes {
		if got[i].Seq != votes[i].Seq || got[i].State != votes[i].State ||
			got[i].Replica != votes[i].Replica || got[i].Att.Node != votes[i].Att.Node ||
			string(got[i].Att.Proof) != string(votes[i].Att.Proof) {
			t.Fatalf("vote %d did not round-trip: %+v != %+v", i, got[i], votes[i])
		}
	}
	// Empty proof sets round-trip too.
	if got, err := DecodeAgreeProof(EncodeAgreeProof(nil)); err != nil || len(got) != 0 {
		t.Fatalf("empty round-trip: %v, %d votes", err, len(got))
	}
	// Truncated and trailing-byte encodings fail loudly.
	enc := EncodeAgreeProof(votes)
	if _, err := DecodeAgreeProof(enc[:len(enc)-2]); err == nil {
		t.Fatal("truncated proof decoded")
	}
	if _, err := DecodeAgreeProof(append(enc, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestVoteRecordRoundTrip(t *testing.T) {
	for _, phase := range []VotePhase{VotePrePrepare, VotePrepare, VoteCommit} {
		v := VoteRecord{View: 3, Seq: 99, OD: types.DigestBytes([]byte("od")), Phase: phase}
		got, err := DecodeVoteRecord(EncodeVoteRecord(v))
		if err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Fatalf("round trip: %+v != %+v", got, v)
		}
	}
	enc := EncodeVoteRecord(VoteRecord{View: 1, Seq: 2, Phase: VotePrepare})
	if _, err := DecodeVoteRecord(enc[:len(enc)-1]); err == nil {
		t.Fatal("truncated vote record decoded")
	}
	if _, err := DecodeVoteRecord(append(enc, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	// Out-of-range phases (0 and 4+) are rejected, not silently restored.
	for _, bad := range []byte{0, 4, 255} {
		b := append([]byte(nil), enc...)
		b[len(b)-1] = bad
		if _, err := DecodeVoteRecord(b); err == nil {
			t.Fatalf("phase %d accepted", bad)
		}
	}
}

func TestViewRecordRoundTrip(t *testing.T) {
	for _, v := range []ViewRecord{{View: 0, InChange: false}, {View: 7, InChange: true}} {
		got, err := DecodeViewRecord(EncodeViewRecord(v))
		if err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Fatalf("round trip: %+v != %+v", got, v)
		}
	}
	enc := EncodeViewRecord(ViewRecord{View: 5, InChange: true})
	if _, err := DecodeViewRecord(enc[:len(enc)-1]); err == nil {
		t.Fatal("truncated view record decoded")
	}
	if _, err := DecodeViewRecord(append(enc, 1)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	// A non-canonical boolean is corruption, not a view transition.
	bad := append([]byte(nil), enc...)
	bad[len(bad)-1] = 2
	if _, err := DecodeViewRecord(bad); err == nil {
		t.Fatal("non-canonical bool accepted")
	}
}

func TestPreparedRecordRoundTrip(t *testing.T) {
	e := &PreparedEntry{
		View: 2, Seq: 17,
		ND: types.NonDet{Time: 123, Rand: types.ComputeNonDetRand(17, 123)},
		Requests: []Request{{
			Client: 100, Timestamp: 9, Op: []byte("op"),
			Att: auth.Attestation{Node: 100, Proof: []byte("sig-c")},
		}},
		PrimaryAtt: auth.Attestation{Node: 0, Proof: []byte("sig-0")},
		Prepares: []auth.Attestation{
			{Node: 1, Proof: []byte("sig-1")},
			{Node: 2, Proof: []byte("sig-2")},
		},
	}
	enc := EncodePreparedRecord(e)
	got, err := DecodePreparedRecord(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.OrderDigest() != e.OrderDigest() {
		t.Fatal("order digest did not survive the round trip")
	}
	if len(got.Prepares) != 2 || got.Prepares[1].Node != 2 {
		t.Fatalf("prepares did not round-trip: %+v", got.Prepares)
	}
	if _, err := DecodePreparedRecord(enc[:len(enc)-3]); err == nil {
		t.Fatal("truncated prepared record decoded")
	}
	if _, err := DecodePreparedRecord(append(enc, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}
