package wire

import (
	"testing"

	"repro/internal/auth"
	"repro/internal/types"
)

func TestAgreeProofRoundTrip(t *testing.T) {
	votes := []AgreeCheckpoint{
		{Seq: 64, State: types.DigestBytes([]byte("s")), Replica: 0,
			Att: auth.Attestation{Node: 0, Proof: []byte("sig-0")}},
		{Seq: 64, State: types.DigestBytes([]byte("s")), Replica: 2,
			Att: auth.Attestation{Node: 2, Proof: []byte("sig-2")}},
		{Seq: 64, State: types.DigestBytes([]byte("s")), Replica: 3,
			Att: auth.Attestation{Node: 3, Proof: []byte("sig-3")}},
	}
	got, err := DecodeAgreeProof(EncodeAgreeProof(votes))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(votes) {
		t.Fatalf("decoded %d votes, want %d", len(got), len(votes))
	}
	for i := range votes {
		if got[i].Seq != votes[i].Seq || got[i].State != votes[i].State ||
			got[i].Replica != votes[i].Replica || got[i].Att.Node != votes[i].Att.Node ||
			string(got[i].Att.Proof) != string(votes[i].Att.Proof) {
			t.Fatalf("vote %d did not round-trip: %+v != %+v", i, got[i], votes[i])
		}
	}
	// Empty proof sets round-trip too.
	if got, err := DecodeAgreeProof(EncodeAgreeProof(nil)); err != nil || len(got) != 0 {
		t.Fatalf("empty round-trip: %v, %d votes", err, len(got))
	}
	// Truncated and trailing-byte encodings fail loudly.
	enc := EncodeAgreeProof(votes)
	if _, err := DecodeAgreeProof(enc[:len(enc)-2]); err == nil {
		t.Fatal("truncated proof decoded")
	}
	if _, err := DecodeAgreeProof(append(enc, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}
