package wire

import (
	"testing"

	"repro/internal/types"
)

func sampleReadRequest() ReadRequest {
	return ReadRequest{
		Client: 100,
		Nonce:  42,
		Op:     []byte("get k"),
		Floor:  17,
		Att:    att(100, "req-sig"),
	}
}

func sampleReadReply() ReadReply {
	return ReadReply{
		Client:     100,
		Nonce:      42,
		AppliedSeq: 19,
		Body:       []byte("v"),
		Executor:   10,
		Att:        att(10, "reply-sig"),
	}
}

func TestReadMessagesRoundTrip(t *testing.T) {
	req := sampleReadRequest()
	rep := sampleReadReply()
	refused := sampleReadReply()
	refused.Refused = true
	refused.Body = []byte("not read-only")
	empty := ReadReply{Client: 1, Executor: 10, Att: att(10, "")}
	for _, m := range []Message{&req, &rep, &refused, &empty, &ReadRequest{Att: att(0, "")}} {
		roundTrip(t, m)
	}
}

func TestReadRequestDigestSemantics(t *testing.T) {
	base := sampleReadRequest()
	variants := []ReadRequest{base, base, base, base}
	variants[1].Op = []byte("get other")
	variants[2].Floor = 18
	variants[3].Nonce = 43
	seen := map[types.Digest]bool{}
	for _, v := range variants[:1] {
		seen[v.Digest()] = true
	}
	for i, v := range variants[1:] {
		if seen[v.Digest()] {
			t.Fatalf("variant %d digest collides with base", i+1)
		}
	}
	// The attestation must not reach the digest: it is computed over it.
	signed := base
	signed.Att = att(100, "different-proof")
	if signed.Digest() != base.Digest() {
		t.Fatal("attestation reached the request digest")
	}
}

func TestReadReplyDigestSemantics(t *testing.T) {
	base := sampleReadReply()
	moved := base
	moved.AppliedSeq = 99
	if moved.Digest() == base.Digest() {
		t.Fatal("applied watermark not covered by the signed digest")
	}
	if moved.AnswerDigest() != base.AnswerDigest() {
		t.Fatal("answer digest must not depend on the watermark")
	}
	refused := base
	refused.Refused = true
	if refused.AnswerDigest() == base.AnswerDigest() {
		t.Fatal("refusal flag not covered by the answer digest")
	}
	other := base
	other.Body = []byte("forged")
	if other.AnswerDigest() == base.AnswerDigest() {
		t.Fatal("body not covered by the answer digest")
	}
}
