package wire

import (
	"bytes"
	"testing"

	"repro/internal/auth"
	"repro/internal/types"
)

// Fuzz targets for the durable voting-state encodings. The WAL's CRC
// framing catches random corruption, but a CRC-valid record can still hold
// arbitrary bytes (torn writes recomposed by later appends, hostile disks),
// so the decoders themselves must never panic and never accept an encoding
// a correct replica could not have produced — an accepted garbage record
// would become a phantom vote during recovery. CI replays the seed corpora
// under testdata/fuzz and runs short -fuzz smoke sessions.

func FuzzVoteRecordDecode(f *testing.F) {
	f.Add(EncodeVoteRecord(VoteRecord{View: 1, Seq: 42, OD: types.DigestBytes([]byte("od")), Phase: VotePrepare}))
	f.Add(EncodeVoteRecord(VoteRecord{View: 0, Seq: 1, Phase: VotePrePrepare}))
	f.Add([]byte{})
	f.Add([]byte{0xba, 0xdb, 0xad})
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := DecodeVoteRecord(data)
		if err != nil {
			return
		}
		// Anything accepted must be byte-for-byte canonical: re-encoding
		// reproduces the input exactly, so no two distinct byte strings
		// alias the same vote and no slack bytes ride along.
		if !bytes.Equal(EncodeVoteRecord(v), data) {
			t.Fatalf("accepted non-canonical vote encoding %x", data)
		}
		if v.Phase < VotePrePrepare || v.Phase > VoteCommit {
			t.Fatalf("accepted out-of-range phase %d", v.Phase)
		}
	})
}

func FuzzViewRecordDecode(f *testing.F) {
	f.Add(EncodeViewRecord(ViewRecord{View: 3, InChange: true}))
	f.Add(EncodeViewRecord(ViewRecord{View: 0, InChange: false}))
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := DecodeViewRecord(data)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeViewRecord(v), data) {
			t.Fatalf("accepted non-canonical view encoding %x", data)
		}
	})
}

func FuzzPreparedRecordDecode(f *testing.F) {
	seed := &PreparedEntry{
		View: 1, Seq: 7,
		ND: types.NonDet{Time: 11, Rand: types.ComputeNonDetRand(7, 11)},
		Requests: []Request{{
			Client: 100, Timestamp: 3, Op: []byte("x"),
			Att: auth.Attestation{Node: 100, Proof: []byte("p")},
		}},
		PrimaryAtt: auth.Attestation{Node: 0, Proof: []byte("p0")},
		Prepares: []auth.Attestation{
			{Node: 1, Proof: []byte("p1")},
			{Node: 2, Proof: []byte("p2")},
		},
	}
	f.Add(EncodePreparedRecord(seed))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := DecodePreparedRecord(data)
		if err != nil {
			return
		}
		// Variable-length contents (request bodies, attestation proofs)
		// may legitimately admit non-canonical envelope bytes, so the
		// check here is a fixed point: encode(decode(x)) must itself
		// decode to the identical structure — decoding cannot invent or
		// drop evidence.
		enc := EncodePreparedRecord(e)
		e2, err := DecodePreparedRecord(enc)
		if err != nil {
			t.Fatalf("re-decode of accepted record failed: %v", err)
		}
		if !bytes.Equal(EncodePreparedRecord(e2), enc) {
			t.Fatal("encode/decode is not a fixed point")
		}
		if e2.OrderDigest() != e.OrderDigest() {
			t.Fatal("order digest changed across round trip")
		}
	})
}
