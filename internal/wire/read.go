package wire

// Certified fast reads (ROADMAP: session-decoupled interactive read path).
//
// The paper's separation of agreement from execution means the 2g+1
// execution replicas hold the authoritative state: a client can ask them
// directly and accept any answer vouched for by g+1 of them — a correct
// majority — without an agreement round. ReadRequest/ReadReply are that
// probe and its answer. A ReadReply carries the replica's applied watermark
// (the sequence number of the last operation executed into the state the
// answer was computed from) so the client can enforce session consistency:
// replies below the session floor do not count toward the read quorum.
//
// Read traffic never enters the agreement protocol, the exactly-once reply
// tables, or the checkpoint pipeline; both messages are answered or
// discarded statelessly.

import (
	"repro/internal/auth"
	"repro/internal/types"
)

// Read-path message type tags, continuing the space after the catch-up
// messages (TStatus=17, TCommitProof=18).
const (
	TReadRequest MsgType = 19
	TReadReply   MsgType = 20
)

// ReadRequest is a client's certified-read probe ⟨READ, o, n, f, c⟩_{c,E,1},
// fanned to every execution replica. Nonce is drawn from the client's
// request-timestamp counter (shared with writes, so it is unique per
// client); Floor is the client's session watermark — the replica answers
// only from applied state at or above it.
type ReadRequest struct {
	Client types.NodeID
	Nonce  types.Timestamp
	Op     []byte
	Floor  types.SeqNum
	Att    auth.Attestation
}

// Type implements Message.
func (m *ReadRequest) Type() MsgType { return TReadRequest }

func (m *ReadRequest) marshalTo(w *Writer) {
	w.Node(m.Client)
	w.TS(m.Nonce)
	w.Bytes(m.Op)
	w.Seq(m.Floor)
	putAtt(w, m.Att)
}

func (m *ReadRequest) unmarshalFrom(r *Reader) {
	m.Client = r.Node()
	m.Nonce = r.TS()
	m.Op = r.Bytes()
	m.Floor = r.Seq()
	m.Att = getAtt(r)
}

// Digest covers the request fields the client attests (everything but the
// attestation itself).
func (m *ReadRequest) Digest() types.Digest {
	return digestOf(func(w *Writer) {
		w.Node(m.Client)
		w.TS(m.Nonce)
		w.Bytes(m.Op)
		w.Seq(m.Floor)
	})
}

// ReadReply is one execution replica's answer to a ReadRequest, computed
// from its applied state without entering agreement. AppliedSeq is the
// replica's applied watermark at answer time. Refused reports that the
// replica would not serve the read — the operation is not read-only, the
// application cannot answer queries, or the replica's watermark is still
// below the requested floor — with Body carrying a diagnostic. Refusals are
// deterministic, so g+1 matching refusals certify that the read must go
// through full agreement instead.
//
// The attestation is always an Ed25519 signature (the replica's ExecAuth
// identity key) regardless of the deployment's reply mode: threshold
// signatures cannot combine across replies that differ in their watermark,
// and MAC vectors would pin the reply to one destination.
type ReadReply struct {
	Client     types.NodeID
	Nonce      types.Timestamp
	AppliedSeq types.SeqNum
	Refused    bool
	Body       []byte
	Executor   types.NodeID
	Att        auth.Attestation
}

// Type implements Message.
func (m *ReadReply) Type() MsgType { return TReadReply }

func (m *ReadReply) marshalTo(w *Writer) {
	w.Node(m.Client)
	w.TS(m.Nonce)
	w.Seq(m.AppliedSeq)
	w.Bool(m.Refused)
	w.Bytes(m.Body)
	w.Node(m.Executor)
	putAtt(w, m.Att)
}

func (m *ReadReply) unmarshalFrom(r *Reader) {
	m.Client = r.Node()
	m.Nonce = r.TS()
	m.AppliedSeq = r.Seq()
	m.Refused = r.Bool()
	m.Body = r.Bytes()
	m.Executor = r.Node()
	m.Att = getAtt(r)
}

// Digest covers everything the executor signs: the answer and the watermark
// it was computed at, bound to the probe that asked.
func (m *ReadReply) Digest() types.Digest {
	return digestOf(func(w *Writer) {
		w.Node(m.Client)
		w.TS(m.Nonce)
		w.Seq(m.AppliedSeq)
		w.Bool(m.Refused)
		w.Bytes(m.Body)
		w.Node(m.Executor)
	})
}

// AnswerDigest covers only the answer content (refusal flag and body), the
// key replies are matched on for the g+1 read quorum: replicas at different
// watermarks still agree on the answer when the state they read is the same.
func (m *ReadReply) AnswerDigest() types.Digest {
	return digestOf(func(w *Writer) {
		w.Bool(m.Refused)
		w.Bytes(m.Body)
	})
}
