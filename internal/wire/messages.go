package wire

import (
	"fmt"

	"repro/internal/auth"
	"repro/internal/types"
)

// MsgType discriminates message encodings on the wire.
type MsgType uint8

// Message type tags.
const (
	TRequest MsgType = iota + 1
	TPrePrepare
	TPrepare
	TCommit
	TAgreeCheckpoint
	TViewChange
	TNewView
	TOrder
	TExecReply
	TReplyCert
	TExecCheckpoint
	TFetchMissing
	TOrderProof
	TStableProof
	TCheckpointFetch
	TCheckpointData
)

func (t MsgType) String() string {
	switch t {
	case TRequest:
		return "REQUEST"
	case TPrePrepare:
		return "PRE-PREPARE"
	case TPrepare:
		return "PREPARE"
	case TCommit:
		return "COMMIT"
	case TAgreeCheckpoint:
		return "A-CHECKPOINT"
	case TViewChange:
		return "VIEW-CHANGE"
	case TNewView:
		return "NEW-VIEW"
	case TOrder:
		return "ORDER"
	case TExecReply:
		return "EXEC-REPLY"
	case TReplyCert:
		return "REPLY-CERT"
	case TExecCheckpoint:
		return "E-CHECKPOINT"
	case TFetchMissing:
		return "FETCH-MISSING"
	case TOrderProof:
		return "ORDER-PROOF"
	case TStableProof:
		return "STABLE-PROOF"
	case TCheckpointFetch:
		return "CKPT-FETCH"
	case TCheckpointData:
		return "CKPT-DATA"
	case TStatus:
		return "STATUS"
	case TCommitProof:
		return "COMMIT-PROOF"
	case TReadRequest:
		return "READ-REQUEST"
	case TReadReply:
		return "READ-REPLY"
	default:
		return fmt.Sprintf("MSG(%d)", uint8(t))
	}
}

// Message is implemented by every protocol message.
type Message interface {
	Type() MsgType
	marshalTo(w *Writer)
	unmarshalFrom(r *Reader)
}

// Marshal frames m as one type byte followed by its body.
func Marshal(m Message) []byte {
	var w Writer
	w.U8(uint8(m.Type()))
	m.marshalTo(&w)
	return w.B
}

// Unmarshal decodes a framed message, rejecting trailing bytes.
func Unmarshal(data []byte) (Message, error) {
	if len(data) == 0 {
		return nil, ErrTruncated
	}
	var m Message
	switch MsgType(data[0]) {
	case TRequest:
		m = &Request{}
	case TPrePrepare:
		m = &PrePrepare{}
	case TPrepare:
		m = &Prepare{}
	case TCommit:
		m = &Commit{}
	case TAgreeCheckpoint:
		m = &AgreeCheckpoint{}
	case TViewChange:
		m = &ViewChange{}
	case TNewView:
		m = &NewView{}
	case TOrder:
		m = &Order{}
	case TExecReply:
		m = &ExecReply{}
	case TReplyCert:
		m = &ReplyCert{}
	case TExecCheckpoint:
		m = &ExecCheckpoint{}
	case TFetchMissing:
		m = &FetchMissing{}
	case TOrderProof:
		m = &OrderProof{}
	case TStableProof:
		m = &StableProof{}
	case TCheckpointFetch:
		m = &CheckpointFetch{}
	case TCheckpointData:
		m = &CheckpointData{}
	case TStatus:
		m = &Status{}
	case TCommitProof:
		m = &CommitProof{}
	case TReadRequest:
		m = &ReadRequest{}
	case TReadReply:
		m = &ReadReply{}
	default:
		return nil, fmt.Errorf("wire: unknown message type %d", data[0])
	}
	r := NewReader(data[1:])
	m.unmarshalFrom(r)
	if err := r.finish(); err != nil {
		return nil, fmt.Errorf("wire: decoding %v: %w", MsgType(data[0]), err)
	}
	return m, nil
}

// --- attestation encoding helpers ---------------------------------------

func putAtt(w *Writer, a auth.Attestation) {
	w.Node(a.Node)
	w.Bytes(a.Proof)
}

func getAtt(r *Reader) auth.Attestation {
	return auth.Attestation{Node: r.Node(), Proof: r.Bytes()}
}

func putAtts(w *Writer, as []auth.Attestation) {
	w.Len(len(as))
	for _, a := range as {
		putAtt(w, a)
	}
}

func getAtts(r *Reader) []auth.Attestation {
	n := r.SliceLen()
	if n == 0 {
		return nil
	}
	out := make([]auth.Attestation, n)
	for i := range out {
		out[i] = getAtt(r)
	}
	return out
}

// --- Request ---------------------------------------------------------------

// Request is a client's ⟨REQUEST, o, t, c⟩_{c,A,1} certificate (§3.1.1).
// Op may be an opaque sealed (encrypted) body in privacy-firewall
// deployments. ReplyTo designates the agreement node that should forward the
// reply; ReplyToAll asks all of them (used on retransmission).
type Request struct {
	Client     types.NodeID
	Timestamp  types.Timestamp
	Op         []byte
	ReplyTo    types.NodeID
	ReplyToAll bool
	Att        auth.Attestation
}

// Type implements Message.
func (m *Request) Type() MsgType { return TRequest }

// Digest names the request. It covers the semantic fields (client,
// timestamp, operation) but not reply routing, so a retransmission with a
// different ReplyTo is recognized as the same request.
func (m *Request) Digest() types.Digest {
	return digestOf(func(w *Writer) {
		w.Node(m.Client)
		w.TS(m.Timestamp)
		w.Bytes(m.Op)
	})
}

func (m *Request) marshalTo(w *Writer) {
	w.Node(m.Client)
	w.TS(m.Timestamp)
	w.Bytes(m.Op)
	w.Node(m.ReplyTo)
	w.Bool(m.ReplyToAll)
	putAtt(w, m.Att)
}

func (m *Request) unmarshalFrom(r *Reader) {
	m.Client = r.Node()
	m.Timestamp = r.TS()
	m.Op = r.Bytes()
	m.ReplyTo = r.Node()
	m.ReplyToAll = r.Bool()
	m.Att = getAtt(r)
}

func putRequests(w *Writer, reqs []Request) {
	w.Len(len(reqs))
	for i := range reqs {
		reqs[i].marshalTo(w)
	}
}

func getRequests(r *Reader) []Request {
	n := r.SliceLen()
	if n == 0 {
		return nil
	}
	out := make([]Request, n)
	for i := range out {
		out[i].unmarshalFrom(r)
	}
	return out
}

// BatchDigest names an ordered batch of requests: the digest of the
// concatenated request digests.
func BatchDigest(reqs []Request) types.Digest {
	return digestOf(func(w *Writer) {
		w.Len(len(reqs))
		for i := range reqs {
			w.Digest(reqs[i].Digest())
		}
	})
}

// OrderDigest binds a batch to its slot in the total order together with the
// agreed nondeterministic inputs. Pre-prepare, prepare, commit, and order
// attestations are all computed over this value (with distinct domain
// labels), so a primary cannot equivocate on the nondeterminism without
// breaking the certificate.
func OrderDigest(v types.View, n types.SeqNum, batch types.Digest, nd types.NonDet) types.Digest {
	return digestOf(func(w *Writer) {
		w.View(v)
		w.Seq(n)
		w.Digest(batch)
		w.TS(nd.Time)
		w.Digest(nd.Rand)
	})
}

// --- PBFT three-phase messages ----------------------------------------------

// PrePrepare is the primary's proposal binding a batch (with full request
// bodies) and nondeterministic inputs to sequence number Seq in View.
type PrePrepare struct {
	View     types.View
	Seq      types.SeqNum
	ND       types.NonDet
	Requests []Request
	Primary  types.NodeID
	Att      auth.Attestation // over OrderDigest, KindPrePrepare
}

// Type implements Message.
func (m *PrePrepare) Type() MsgType { return TPrePrepare }

// OrderDigest returns the digest this pre-prepare's attestation covers.
func (m *PrePrepare) OrderDigest() types.Digest {
	return OrderDigest(m.View, m.Seq, BatchDigest(m.Requests), m.ND)
}

func (m *PrePrepare) marshalTo(w *Writer) {
	w.View(m.View)
	w.Seq(m.Seq)
	w.TS(m.ND.Time)
	w.Digest(m.ND.Rand)
	putRequests(w, m.Requests)
	w.Node(m.Primary)
	putAtt(w, m.Att)
}

func (m *PrePrepare) unmarshalFrom(r *Reader) {
	m.View = r.View()
	m.Seq = r.Seq()
	m.ND.Time = r.TS()
	m.ND.Rand = r.Digest()
	m.Requests = getRequests(r)
	m.Primary = r.Node()
	m.Att = getAtt(r)
}

// Prepare is a backup's agreement to the primary's proposal.
type Prepare struct {
	View    types.View
	Seq     types.SeqNum
	OD      types.Digest // OrderDigest of the proposal
	Replica types.NodeID
	Att     auth.Attestation // over OD, KindPrepare
}

// Type implements Message.
func (m *Prepare) Type() MsgType { return TPrepare }

func (m *Prepare) marshalTo(w *Writer) {
	w.View(m.View)
	w.Seq(m.Seq)
	w.Digest(m.OD)
	w.Node(m.Replica)
	putAtt(w, m.Att)
}

func (m *Prepare) unmarshalFrom(r *Reader) {
	m.View = r.View()
	m.Seq = r.Seq()
	m.OD = r.Digest()
	m.Replica = r.Node()
	m.Att = getAtt(r)
}

// Commit is a replica's statement that the proposal prepared at 2f+1 nodes.
type Commit struct {
	View    types.View
	Seq     types.SeqNum
	OD      types.Digest
	Replica types.NodeID
	Att     auth.Attestation // over OD, KindCommit
}

// Type implements Message.
func (m *Commit) Type() MsgType { return TCommit }

func (m *Commit) marshalTo(w *Writer) {
	w.View(m.View)
	w.Seq(m.Seq)
	w.Digest(m.OD)
	w.Node(m.Replica)
	putAtt(w, m.Att)
}

func (m *Commit) unmarshalFrom(r *Reader) {
	m.View = r.View()
	m.Seq = r.Seq()
	m.OD = r.Digest()
	m.Replica = r.Node()
	m.Att = getAtt(r)
}

// AgreeCheckpoint is an agreement replica's signed digest of its local
// message-queue state after sequence Seq, used for log truncation and as
// evidence in view changes.
type AgreeCheckpoint struct {
	Seq     types.SeqNum
	State   types.Digest
	Replica types.NodeID
	Att     auth.Attestation // over CheckpointDigest, KindAgreeCheckpoint
}

// Type implements Message.
func (m *AgreeCheckpoint) Type() MsgType { return TAgreeCheckpoint }

// CheckpointDigest is the value checkpoint attestations cover.
func CheckpointDigest(n types.SeqNum, state types.Digest) types.Digest {
	return digestOf(func(w *Writer) {
		w.Seq(n)
		w.Digest(state)
	})
}

func (m *AgreeCheckpoint) marshalTo(w *Writer) {
	w.Seq(m.Seq)
	w.Digest(m.State)
	w.Node(m.Replica)
	putAtt(w, m.Att)
}

func (m *AgreeCheckpoint) unmarshalFrom(r *Reader) {
	m.Seq = r.Seq()
	m.State = r.Digest()
	m.Replica = r.Node()
	m.Att = getAtt(r)
}

// --- View change ------------------------------------------------------------

// PreparedEntry is one entry of a view change's P set: evidence that a batch
// prepared at this replica. It carries the primary's pre-prepare attestation
// and 2f matching prepare attestations, all signature-based and therefore
// checkable by any replica. Request bodies ride along so the new primary can
// re-propose without a separate fetch protocol.
type PreparedEntry struct {
	View       types.View
	Seq        types.SeqNum
	ND         types.NonDet
	Requests   []Request
	PrimaryAtt auth.Attestation
	Prepares   []auth.Attestation
}

// OrderDigest recomputes the digest the entry's attestations cover.
func (p *PreparedEntry) OrderDigest() types.Digest {
	return OrderDigest(p.View, p.Seq, BatchDigest(p.Requests), p.ND)
}

func (p *PreparedEntry) marshalTo(w *Writer) {
	w.View(p.View)
	w.Seq(p.Seq)
	w.TS(p.ND.Time)
	w.Digest(p.ND.Rand)
	putRequests(w, p.Requests)
	putAtt(w, p.PrimaryAtt)
	putAtts(w, p.Prepares)
}

func (p *PreparedEntry) unmarshalFrom(r *Reader) {
	p.View = r.View()
	p.Seq = r.Seq()
	p.ND.Time = r.TS()
	p.ND.Rand = r.Digest()
	p.Requests = getRequests(r)
	p.PrimaryAtt = getAtt(r)
	p.Prepares = getAtts(r)
}

// ViewChange announces that Replica wants to move to view NewView, carrying
// its latest stable checkpoint proof and its prepared-batch evidence.
type ViewChange struct {
	NewView    types.View
	LastStable types.SeqNum
	CkptState  types.Digest
	CkptProof  []AgreeCheckpoint
	Prepared   []PreparedEntry
	Replica    types.NodeID
	Att        auth.Attestation // signature over SigningDigest, KindViewChange
}

// Type implements Message.
func (m *ViewChange) Type() MsgType { return TViewChange }

func (m *ViewChange) marshalBody(w *Writer) {
	w.View(m.NewView)
	w.Seq(m.LastStable)
	w.Digest(m.CkptState)
	w.Len(len(m.CkptProof))
	for i := range m.CkptProof {
		m.CkptProof[i].marshalTo(w)
	}
	w.Len(len(m.Prepared))
	for i := range m.Prepared {
		m.Prepared[i].marshalTo(w)
	}
	w.Node(m.Replica)
}

// SigningDigest is the digest the view change's signature covers.
func (m *ViewChange) SigningDigest() types.Digest {
	return digestOf(func(w *Writer) {
		m.marshalBody(w)
	})
}

func (m *ViewChange) marshalTo(w *Writer) {
	m.marshalBody(w)
	putAtt(w, m.Att)
}

func (m *ViewChange) unmarshalFrom(r *Reader) {
	m.NewView = r.View()
	m.LastStable = r.Seq()
	m.CkptState = r.Digest()
	n := r.SliceLen()
	if n > 0 {
		m.CkptProof = make([]AgreeCheckpoint, n)
		for i := range m.CkptProof {
			m.CkptProof[i].unmarshalFrom(r)
		}
	}
	n = r.SliceLen()
	if n > 0 {
		m.Prepared = make([]PreparedEntry, n)
		for i := range m.Prepared {
			m.Prepared[i].unmarshalFrom(r)
		}
	}
	m.Replica = r.Node()
	m.Att = getAtt(r)
}

// NewView is the new primary's proof that view View may start: 2f+1 view
// changes and the pre-prepares re-issued for every sequence number that may
// have committed in earlier views.
type NewView struct {
	View        types.View
	ViewChanges []ViewChange
	PrePrepares []PrePrepare
	Primary     types.NodeID
	Att         auth.Attestation // signature over SigningDigest, KindNewView
}

// Type implements Message.
func (m *NewView) Type() MsgType { return TNewView }

func (m *NewView) marshalBody(w *Writer) {
	w.View(m.View)
	w.Len(len(m.ViewChanges))
	for i := range m.ViewChanges {
		m.ViewChanges[i].marshalTo(w)
	}
	w.Len(len(m.PrePrepares))
	for i := range m.PrePrepares {
		m.PrePrepares[i].marshalTo(w)
	}
	w.Node(m.Primary)
}

// SigningDigest is the digest the new-view signature covers.
func (m *NewView) SigningDigest() types.Digest {
	return digestOf(func(w *Writer) {
		m.marshalBody(w)
	})
}

func (m *NewView) marshalTo(w *Writer) {
	m.marshalBody(w)
	putAtt(w, m.Att)
}

func (m *NewView) unmarshalFrom(r *Reader) {
	m.View = r.View()
	n := r.SliceLen()
	if n > 0 {
		m.ViewChanges = make([]ViewChange, n)
		for i := range m.ViewChanges {
			m.ViewChanges[i].unmarshalFrom(r)
		}
	}
	n = r.SliceLen()
	if n > 0 {
		m.PrePrepares = make([]PrePrepare, n)
		for i := range m.PrePrepares {
			m.PrePrepares[i].unmarshalFrom(r)
		}
	}
	m.Primary = r.Node()
	m.Att = getAtt(r)
}

// --- Agreement -> execution ---------------------------------------------------

// Order carries one agreement replica's piece of the agreement certificate
// ⟨COMMIT, v, n, d, A⟩_{A,E,2f+1} plus the request bodies (§3.1.2). Executors
// and filters accumulate 2f+1 matching pieces from distinct replicas before
// acting.
type Order struct {
	View     types.View
	Seq      types.SeqNum
	ND       types.NonDet
	Requests []Request
	Replica  types.NodeID
	Att      auth.Attestation // over OrderDigest, KindOrder
}

// Type implements Message.
func (m *Order) Type() MsgType { return TOrder }

// OrderDigest returns the digest the order attestation covers.
func (m *Order) OrderDigest() types.Digest {
	return OrderDigest(m.View, m.Seq, BatchDigest(m.Requests), m.ND)
}

func (m *Order) marshalTo(w *Writer) {
	w.View(m.View)
	w.Seq(m.Seq)
	w.TS(m.ND.Time)
	w.Digest(m.ND.Rand)
	putRequests(w, m.Requests)
	w.Node(m.Replica)
	putAtt(w, m.Att)
}

func (m *Order) unmarshalFrom(r *Reader) {
	m.View = r.View()
	m.Seq = r.Seq()
	m.ND.Time = r.TS()
	m.ND.Rand = r.Digest()
	m.Requests = getRequests(r)
	m.Replica = r.Node()
	m.Att = getAtt(r)
}

// OrderProof is a complete agreement certificate for one sequence number:
// the batch plus 2f+1 attestations. Executors store these until checkpoint
// garbage collection and serve them to lagging peers (§3.3.1).
type OrderProof struct {
	View     types.View
	Seq      types.SeqNum
	ND       types.NonDet
	Requests []Request
	Atts     []auth.Attestation
}

// Type implements Message.
func (m *OrderProof) Type() MsgType { return TOrderProof }

// OrderDigest returns the digest the proof's attestations cover.
func (m *OrderProof) OrderDigest() types.Digest {
	return OrderDigest(m.View, m.Seq, BatchDigest(m.Requests), m.ND)
}

func (m *OrderProof) marshalTo(w *Writer) {
	w.View(m.View)
	w.Seq(m.Seq)
	w.TS(m.ND.Time)
	w.Digest(m.ND.Rand)
	putRequests(w, m.Requests)
	putAtts(w, m.Atts)
}

func (m *OrderProof) unmarshalFrom(r *Reader) {
	m.View = r.View()
	m.Seq = r.Seq()
	m.ND.Time = r.TS()
	m.ND.Rand = r.Digest()
	m.Requests = getRequests(r)
	m.Atts = getAtts(r)
}

// --- Replies ------------------------------------------------------------------

// Reply is a single client's reply entry ⟨REPLY, v, n, t, c, r⟩. Body may be
// sealed in privacy-firewall deployments.
type Reply struct {
	View      types.View
	Seq       types.SeqNum
	Client    types.NodeID
	Timestamp types.Timestamp
	Body      []byte
}

func (m *Reply) marshalTo(w *Writer) {
	w.View(m.View)
	w.Seq(m.Seq)
	w.Node(m.Client)
	w.TS(m.Timestamp)
	w.Bytes(m.Body)
}

func (m *Reply) unmarshalFrom(r *Reader) {
	m.View = r.View()
	m.Seq = r.Seq()
	m.Client = r.Node()
	m.Timestamp = r.TS()
	m.Body = r.Bytes()
}

// BundleDigest names a reply bundle: the digest of the canonical encoding of
// its entries. Threshold signatures and MAC/signature attestations over
// replies all cover this value, amortizing one expensive operation over the
// whole bundle (§5.3).
func BundleDigest(entries []Reply) types.Digest {
	return digestOf(func(w *Writer) {
		w.Len(len(entries))
		for i := range entries {
			entries[i].marshalTo(w)
		}
	})
}

// ExecReply is one executor's share of a reply certificate for a bundle of
// replies: either a threshold-signature share (Share) or a MAC/signature
// attestation (Att), depending on deployment mode.
type ExecReply struct {
	Entries  []Reply
	Executor types.NodeID
	Share    []byte           // threshold mode: marshaled signature share
	Att      auth.Attestation // MAC/sig mode: attestation over BundleDigest
}

// Type implements Message.
func (m *ExecReply) Type() MsgType { return TExecReply }

func (m *ExecReply) marshalTo(w *Writer) {
	w.Len(len(m.Entries))
	for i := range m.Entries {
		m.Entries[i].marshalTo(w)
	}
	w.Node(m.Executor)
	w.Bytes(m.Share)
	putAtt(w, m.Att)
}

func (m *ExecReply) unmarshalFrom(r *Reader) {
	n := r.SliceLen()
	if n > 0 {
		m.Entries = make([]Reply, n)
		for i := range m.Entries {
			m.Entries[i].unmarshalFrom(r)
		}
	}
	m.Executor = r.Node()
	m.Share = r.Bytes()
	m.Att = getAtt(r)
}

// ReplyCert is a complete reply certificate ⟨REPLY,...⟩_{E,c,g+1}: the bundle
// plus either one threshold signature over the bundle digest or g+1
// MAC/signature attestations.
type ReplyCert struct {
	Entries      []Reply
	ThresholdSig []byte
	Atts         []auth.Attestation
}

// Type implements Message.
func (m *ReplyCert) Type() MsgType { return TReplyCert }

// MaxSeq returns the highest sequence number in the bundle (0 if empty).
func (m *ReplyCert) MaxSeq() types.SeqNum {
	var max types.SeqNum
	for i := range m.Entries {
		if m.Entries[i].Seq > max {
			max = m.Entries[i].Seq
		}
	}
	return max
}

func (m *ReplyCert) marshalTo(w *Writer) {
	w.Len(len(m.Entries))
	for i := range m.Entries {
		m.Entries[i].marshalTo(w)
	}
	w.Bytes(m.ThresholdSig)
	putAtts(w, m.Atts)
}

func (m *ReplyCert) unmarshalFrom(r *Reader) {
	n := r.SliceLen()
	if n > 0 {
		m.Entries = make([]Reply, n)
		for i := range m.Entries {
			m.Entries[i].unmarshalFrom(r)
		}
	}
	m.ThresholdSig = r.Bytes()
	m.Atts = getAtts(r)
}

// --- Execution-cluster internal messages ---------------------------------------

// ExecCheckpoint is one executor's signed digest of its checkpoint at Seq
// (application state + reply table). g+1 of these form a proof of stability
// (§3.3.2).
type ExecCheckpoint struct {
	Seq      types.SeqNum
	State    types.Digest
	Executor types.NodeID
	Att      auth.Attestation // over CheckpointDigest, KindExecCheckpoint
}

// Type implements Message.
func (m *ExecCheckpoint) Type() MsgType { return TExecCheckpoint }

func (m *ExecCheckpoint) marshalTo(w *Writer) {
	w.Seq(m.Seq)
	w.Digest(m.State)
	w.Node(m.Executor)
	putAtt(w, m.Att)
}

func (m *ExecCheckpoint) unmarshalFrom(r *Reader) {
	m.Seq = r.Seq()
	m.State = r.Digest()
	m.Executor = r.Node()
	m.Att = getAtt(r)
}

// FetchMissing asks execution-cluster peers for the agreement certificate of
// a missing sequence number (§3.3.1).
type FetchMissing struct {
	Seq      types.SeqNum
	Executor types.NodeID
}

// Type implements Message.
func (m *FetchMissing) Type() MsgType { return TFetchMissing }

func (m *FetchMissing) marshalTo(w *Writer) {
	w.Seq(m.Seq)
	w.Node(m.Executor)
}

func (m *FetchMissing) unmarshalFrom(r *Reader) {
	m.Seq = r.Seq()
	m.Executor = r.Node()
}

// StableProof tells a lagging peer that a checkpoint newer than its missing
// sequence number is stable, carrying the g+1 attestations that prove it.
type StableProof struct {
	Seq   types.SeqNum
	State types.Digest
	Atts  []auth.Attestation
}

// Type implements Message.
func (m *StableProof) Type() MsgType { return TStableProof }

func (m *StableProof) marshalTo(w *Writer) {
	w.Seq(m.Seq)
	w.Digest(m.State)
	putAtts(w, m.Atts)
}

func (m *StableProof) unmarshalFrom(r *Reader) {
	m.Seq = r.Seq()
	m.State = r.Digest()
	m.Atts = getAtts(r)
}

// CheckpointFetch requests the full checkpoint payload for Seq.
type CheckpointFetch struct {
	Seq      types.SeqNum
	Executor types.NodeID
}

// Type implements Message.
func (m *CheckpointFetch) Type() MsgType { return TCheckpointFetch }

func (m *CheckpointFetch) marshalTo(w *Writer) {
	w.Seq(m.Seq)
	w.Node(m.Executor)
}

func (m *CheckpointFetch) unmarshalFrom(r *Reader) {
	m.Seq = r.Seq()
	m.Executor = r.Node()
}

// CheckpointData delivers a checkpoint payload. The receiver validates
// Payload against the digest in a stability proof before restoring.
type CheckpointData struct {
	Seq     types.SeqNum
	State   types.Digest
	Payload []byte
}

// Type implements Message.
func (m *CheckpointData) Type() MsgType { return TCheckpointData }

func (m *CheckpointData) marshalTo(w *Writer) {
	w.Seq(m.Seq)
	w.Digest(m.State)
	w.Bytes(m.Payload)
}

func (m *CheckpointData) unmarshalFrom(r *Reader) {
	m.Seq = r.Seq()
	m.State = r.Digest()
	m.Payload = r.Bytes()
}
