// Package wire defines every protocol message exchanged in the system and a
// canonical, deterministic binary encoding for them.
//
// Determinism matters: attestations and threshold signatures are computed
// over digests of these encodings, and execution replicas must produce
// byte-identical reply bundles so that certificate assembly (and the privacy
// firewall's covert-channel elimination) works. Hand-rolled encoding also
// keeps the hot path allocation-light compared to reflection-based codecs.
//
// Layout conventions: fixed-width integers are big-endian; byte slices are
// length-prefixed with uint32; slices of structs are length-prefixed with
// uint32. A message on the network is framed as one type byte followed by
// the message body (see Marshal/Unmarshal).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/types"
)

// Writer appends canonically-encoded primitives to a buffer. The zero value
// is ready to use.
type Writer struct {
	B []byte
}

// scratch pools Writers for encodings whose buffer dies inside the
// function that built it — digest computations hash the bytes and discard
// them, so the hot path (every Request digest, order digest, and signing
// digest of every message handled) need not allocate at all once the pool
// is warm. Buffers keep their grown capacity across uses; the contents are
// never observable, so pooling cannot perturb the deterministic encoding.
var scratch = sync.Pool{New: func() any { return &Writer{B: make([]byte, 0, 1024)} }}

// digestOf hashes the encoding produced by fill using a pooled scratch
// buffer.
func digestOf(fill func(w *Writer)) types.Digest {
	w := scratch.Get().(*Writer)
	w.B = w.B[:0]
	fill(w)
	d := types.DigestBytes(w.B)
	scratch.Put(w)
	return d
}

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.B = append(w.B, v) }

// Bool appends a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// U32 appends a big-endian uint32.
func (w *Writer) U32(v uint32) {
	w.B = binary.BigEndian.AppendUint32(w.B, v)
}

// U64 appends a big-endian uint64.
func (w *Writer) U64(v uint64) {
	w.B = binary.BigEndian.AppendUint64(w.B, v)
}

// Node appends a NodeID.
func (w *Writer) Node(v types.NodeID) { w.U32(uint32(int32(v))) }

// View appends a View.
func (w *Writer) View(v types.View) { w.U64(uint64(v)) }

// Seq appends a SeqNum.
func (w *Writer) Seq(v types.SeqNum) { w.U64(uint64(v)) }

// TS appends a Timestamp.
func (w *Writer) TS(v types.Timestamp) { w.U64(uint64(v)) }

// Digest appends a fixed 32-byte digest.
func (w *Writer) Digest(d types.Digest) { w.B = append(w.B, d[:]...) }

// Bytes appends a uint32 length prefix and the slice contents.
func (w *Writer) Bytes(b []byte) {
	if len(b) > math.MaxUint32 {
		panic("wire: byte slice too large")
	}
	w.U32(uint32(len(b)))
	w.B = append(w.B, b...)
}

// Len appends a slice-length prefix.
func (w *Writer) Len(n int) {
	if n < 0 || n > math.MaxUint32 {
		panic("wire: invalid slice length")
	}
	w.U32(uint32(n))
}

// ErrTruncated reports an encoding shorter than its declared contents.
var ErrTruncated = errors.New("wire: truncated message")

// maxSliceLen bounds decoded slice lengths to keep a malformed or malicious
// length prefix from causing huge allocations.
const maxSliceLen = 1 << 20

// Reader consumes canonically-encoded primitives from a buffer. Errors are
// sticky: after the first failure all reads return zero values, and Err
// reports the failure. This keeps message decoders free of per-field checks.
type Reader struct {
	b   []byte
	err error
}

// NewReader returns a Reader over b.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining reports how many bytes have not been consumed.
func (r *Reader) Remaining() int { return len(r.b) }

func (r *Reader) fail() {
	if r.err == nil {
		r.err = ErrTruncated
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.b) < n {
		r.fail()
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a boolean.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// U32 reads a big-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// U64 reads a big-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// Node reads a NodeID.
func (r *Reader) Node() types.NodeID { return types.NodeID(int32(r.U32())) }

// View reads a View.
func (r *Reader) View() types.View { return types.View(r.U64()) }

// Seq reads a SeqNum.
func (r *Reader) Seq() types.SeqNum { return types.SeqNum(r.U64()) }

// TS reads a Timestamp.
func (r *Reader) TS() types.Timestamp { return types.Timestamp(r.U64()) }

// Digest reads a fixed 32-byte digest.
func (r *Reader) Digest() types.Digest {
	var d types.Digest
	b := r.take(types.DigestSize)
	if b != nil {
		copy(d[:], b)
	}
	return d
}

// Bytes reads a length-prefixed byte slice. The result is a copy, safe to
// retain after the input buffer is reused.
func (r *Reader) Bytes() []byte {
	n := int(r.U32())
	if r.err != nil {
		return nil
	}
	if n > len(r.b) {
		r.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, r.take(n))
	return out
}

// SliceLen reads a slice-length prefix, bounds-checking it against both the
// sanity cap and the bytes remaining (each element needs at least one byte).
func (r *Reader) SliceLen() int {
	n := int(r.U32())
	if r.err != nil {
		return 0
	}
	if n > maxSliceLen || n > len(r.b) {
		r.fail()
		return 0
	}
	return n
}

func (r *Reader) finish() error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return fmt.Errorf("wire: %d trailing bytes", len(r.b))
	}
	return nil
}
