package wire

import (
	"repro/internal/auth"
	"repro/internal/types"
)

// Catch-up message type tags (continuing the MsgType space).
const (
	TStatus      MsgType = 17
	TCommitProof MsgType = 18
)

// Status is periodic agreement-cluster gossip advertising a replica's
// progress, driving retransmission: a peer that is ahead responds with the
// stable checkpoint proof and CommitProofs the sender is missing. It is
// deliberately unauthenticated — a forged status can only trigger bounded
// retransmission, never a state change.
type Status struct {
	View       types.View
	LastExec   types.SeqNum
	LastStable types.SeqNum
	Replica    types.NodeID
}

// Type implements Message.
func (m *Status) Type() MsgType { return TStatus }

func (m *Status) marshalTo(w *Writer) {
	w.View(m.View)
	w.Seq(m.LastExec)
	w.Seq(m.LastStable)
	w.Node(m.Replica)
}

func (m *Status) unmarshalFrom(r *Reader) {
	m.View = r.View()
	m.LastExec = r.Seq()
	m.LastStable = r.Seq()
	m.Replica = r.Node()
}

// CommitProof is a transferable proof that a batch committed at a sequence
// number: the pre-prepare (with request bodies) plus 2f+1 signed commit
// attestations over its order digest. Lagging replicas verify and execute it
// directly.
type CommitProof struct {
	PP      PrePrepare
	Commits []auth.Attestation
}

// Type implements Message.
func (m *CommitProof) Type() MsgType { return TCommitProof }

func (m *CommitProof) marshalTo(w *Writer) {
	m.PP.marshalTo(w)
	putAtts(w, m.Commits)
}

func (m *CommitProof) unmarshalFrom(r *Reader) {
	m.PP.unmarshalFrom(r)
	m.Commits = getAtts(r)
}
