package bench

import (
	"fmt"

	"repro/internal/sm"
	"repro/internal/transport"
	"repro/internal/types"
)

// The unreplicated baseline of Figures 4 and 6 ("No Replication"): a single
// server executing the application over the same simulated LAN, with no
// agreement, no certificates, and no cryptography. Comparing against it
// isolates the replication overhead the architectures add.

const (
	norepServer types.NodeID = 1
	norepClient types.NodeID = 2
)

// norepService is the single-server node.
type norepService struct {
	app  sm.StateMachine
	send transport.Sender
	seq  types.SeqNum
}

func (s *norepService) Deliver(from types.NodeID, data []byte, now types.Time) {
	s.seq++
	nd := types.NonDet{Time: types.Timestamp(now), Rand: types.ComputeNonDetRand(s.seq, types.Timestamp(now))}
	s.send(from, s.app.Execute(data, nd))
}

func (s *norepService) Tick(now types.Time) {}

// norepCaller is the matching client node.
type norepCaller struct {
	reply []byte
	done  bool
}

func (c *norepCaller) Deliver(from types.NodeID, data []byte, now types.Time) {
	c.reply = data
	c.done = true
}

func (c *norepCaller) Tick(now types.Time) {}

// NoRepInvoker runs an application unreplicated over the simulated LAN.
type NoRepInvoker struct {
	net    *transport.SimNet
	caller *norepCaller
	send   transport.Sender
}

// NewNoRepInvoker builds the single-server deployment.
func NewNoRepInvoker(app sm.StateMachine) *NoRepInvoker {
	net := transport.NewSimNet(transport.SimNetConfig{Seed: 1, MeasureCompute: true})
	srv := &norepService{app: app}
	srv.send = net.Bind(norepServer)
	caller := &norepCaller{}
	net.Register(norepServer, srv)
	net.Register(norepClient, caller)
	return &NoRepInvoker{net: net, caller: caller, send: net.Bind(norepClient)}
}

// Invoke implements Invoker.
func (n *NoRepInvoker) Invoke(op []byte) ([]byte, error) {
	n.caller.done = false
	n.caller.reply = nil
	n.send(norepServer, op)
	if !n.net.RunUntil(func() bool { return n.caller.done }, n.net.Now()+types.Time(30e9)) {
		return nil, fmt.Errorf("norep: request timed out")
	}
	return n.caller.reply, nil
}

// Now implements Invoker.
func (n *NoRepInvoker) Now() types.Time { return n.net.Now() }
