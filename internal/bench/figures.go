package bench

import (
	"fmt"
	"strings"

	"repro/internal/apps/nfs"
	"repro/internal/bench/costmodel"
	"repro/internal/core"
)

// This file renders each figure/table of the paper's evaluation as text,
// shared by cmd/saebft-bench and the repository's benchmark targets.

// Scale trades fidelity for runtime; Quick keeps CI fast, Full approaches
// the paper's sample counts.
type Scale struct {
	LatencyRequests int
	ThroughputReqs  int
	AndrewN         int
	ThresholdBits   int
}

// QuickScale is sized for CI and `go test -bench`.
func QuickScale() Scale {
	return Scale{LatencyRequests: 30, ThroughputReqs: 150, AndrewN: 1, ThresholdBits: 512}
}

// FullScale approaches the paper's run lengths (minutes of wall time).
func FullScale() Scale {
	return Scale{LatencyRequests: 200, ThroughputReqs: 1000, AndrewN: 5, ThresholdBits: 1024}
}

// Figure3 runs the latency microbenchmark for the paper's three size pairs
// and five configurations.
func Figure3(s Scale) (string, []LatencyResult, error) {
	var b strings.Builder
	var all []LatencyResult
	fmt.Fprintf(&b, "Figure 3: null-server latency (ms), %d requests per cell\n", s.LatencyRequests)
	fmt.Fprintf(&b, "%-28s %12s %12s %12s\n", "config", "40/40", "40/4096", "4096/40")
	type cell struct{ mean float64 }
	rows := map[string][3]float64{}
	order := []string{}
	sizes := [][2]int{{40, 40}, {40, 4096}, {4096, 40}}
	for col, sz := range sizes {
		for _, cfg := range Fig3Configs(sz[0], sz[1], s.LatencyRequests, s.ThresholdBits) {
			res, err := RunLatency(cfg)
			if err != nil {
				return "", nil, fmt.Errorf("figure 3 %s %d/%d: %w", cfg.Label, sz[0], sz[1], err)
			}
			res.Label = fmt.Sprintf("%s %d/%d", cfg.Label, sz[0], sz[1])
			all = append(all, res)
			r := rows[cfg.Label]
			r[col] = res.MeanMs
			if col == 0 {
				order = append(order, cfg.Label)
			}
			rows[cfg.Label] = r
		}
	}
	for _, label := range order {
		r := rows[label]
		fmt.Fprintf(&b, "%-28s %12.2f %12.2f %12.2f\n", label, r[0], r[1], r[2])
	}
	return b.String(), all, nil
}

// Figure4 renders the analytic cost model.
func Figure4() string {
	var b strings.Builder
	p := costmodel.PaperParams()
	b.WriteString("Figure 4: relative processing cost ((app+overhead)/app), paper-measured primitive costs\n")
	b.WriteString(costmodel.FormatFigure4(costmodel.Figure4Series(p)))
	x10 := costmodel.CrossoverApp(costmodel.SepPriv, costmodel.BASE, p, 10, 0.01, 1000)
	x100 := costmodel.CrossoverApp(costmodel.SepPriv, costmodel.BASE, p, 100, 0.01, 1000)
	fmt.Fprintf(&b, "crossover Sep/Priv < BASE: batch=10 at %.2f ms/request, batch=100 at %.2f ms/request\n", x10, x100)
	return b.String()
}

// Figure5 sweeps offered load for each bundle size and reports response
// times, reproducing the hockey-stick curves.
func Figure5(s Scale) (string, []ThroughputResult, error) {
	var b strings.Builder
	var all []ThroughputResult
	fmt.Fprintf(&b, "Figure 5: response time vs offered load (privacy firewall, 1KB/1KB, threshold %d bits)\n", s.ThresholdBits)
	fmt.Fprintf(&b, "%-8s %12s %14s %14s %12s\n", "bundle", "offered/s", "mean resp ms", "p99 resp ms", "achieved/s")
	rates := []float64{50, 150, 300, 600, 1200, 2400}
	for _, bundle := range []int{1, 2, 3, 5} {
		for _, rate := range rates {
			res, err := RunThroughput(ThroughputConfig{
				Bundle:        bundle,
				RatePerSec:    rate,
				ReqSize:       1024,
				RepSize:       1024,
				Requests:      s.ThroughputReqs,
				ThresholdBits: s.ThresholdBits,
			})
			if err != nil {
				return "", nil, fmt.Errorf("figure 5 bundle=%d rate=%.0f: %w", bundle, rate, err)
			}
			all = append(all, res)
			fmt.Fprintf(&b, "%-8d %12.0f %14.2f %14.2f %12.1f\n",
				res.Bundle, res.OfferedPerSec, res.MeanRespMs, res.P99RespMs, res.AchievedPerSec)
		}
	}
	return b.String(), all, nil
}

// Figure6 runs Andrew-N on the no-replication baseline, BASE, and the
// privacy firewall, reporting per-phase times.
func Figure6(s Scale) (string, []AndrewResult, error) {
	cfg := DefaultAndrew(s.AndrewN)
	var results []AndrewResult

	norep, err := RunAndrew("No Replication", NewNoRepInvoker(nfs.New()), cfg)
	if err != nil {
		return "", nil, fmt.Errorf("figure 6 norep: %w", err)
	}
	results = append(results, norep)

	base, err := RunAndrewOnCluster("BASE", AndrewClusterOptions(core.ModeBASE, s.ThresholdBits), cfg, FaultNone)
	if err != nil {
		return "", nil, fmt.Errorf("figure 6 BASE: %w", err)
	}
	results = append(results, base)

	fw, err := RunAndrewOnCluster("Firewall", AndrewClusterOptions(core.ModeFirewall, s.ThresholdBits), cfg, FaultNone)
	if err != nil {
		return "", nil, fmt.Errorf("figure 6 firewall: %w", err)
	}
	results = append(results, fw)

	return formatAndrew(fmt.Sprintf("Figure 6: Andrew-%d phase times (virtual ms)", cfg.N), results), results, nil
}

// Figure7 repeats the Andrew benchmark with one crashed execution replica
// and one crashed agreement replica.
func Figure7(s Scale) (string, []AndrewResult, error) {
	cfg := DefaultAndrew(s.AndrewN)
	var results []AndrewResult

	base, err := RunAndrewOnCluster("BASE", AndrewClusterOptions(core.ModeBASE, s.ThresholdBits), cfg, FaultNone)
	if err != nil {
		return "", nil, fmt.Errorf("figure 7 BASE: %w", err)
	}
	results = append(results, base)

	fs, err := RunAndrewOnCluster("faulty exec server", AndrewClusterOptions(core.ModeFirewall, s.ThresholdBits), cfg, FaultExecReplica)
	if err != nil {
		return "", nil, fmt.Errorf("figure 7 faulty server: %w", err)
	}
	results = append(results, fs)

	fa, err := RunAndrewOnCluster("faulty agreement node", AndrewClusterOptions(core.ModeFirewall, s.ThresholdBits), cfg, FaultAgreementReplica)
	if err != nil {
		return "", nil, fmt.Errorf("figure 7 faulty agreement: %w", err)
	}
	results = append(results, fa)

	return formatAndrew(fmt.Sprintf("Figure 7: Andrew-%d with failures (virtual ms)", cfg.N), results), results, nil
}

func formatAndrew(title string, results []AndrewResult) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	fmt.Fprintf(&b, "%-8s", "phase")
	for _, r := range results {
		fmt.Fprintf(&b, " %22s", r.Label)
	}
	b.WriteString("\n")
	for p := 0; p < 5; p++ {
		fmt.Fprintf(&b, "%-8d", p+1)
		for _, r := range results {
			fmt.Fprintf(&b, " %22s", r.FmtMs(p))
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "%-8s", "TOTAL")
	for _, r := range results {
		fmt.Fprintf(&b, " %22.1f", float64(r.Total)/1e6)
	}
	b.WriteString("\n")
	return b.String()
}
