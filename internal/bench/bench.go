// Package bench regenerates the paper's evaluation (§5): the latency
// microbenchmark of Figure 3, the relative-cost model of Figure 4 (in
// subpackage costmodel), the response-time/throughput curves of Figure 5,
// and the Andrew-N file-system benchmark of Figures 6 and 7, including the
// faulty-replica variants.
//
// Measurements run on the simulated network with compute-time accounting
// (transport.SimNetConfig.MeasureCompute): real cryptographic work — Ed25519
// signatures, HMAC vectors, Shoup threshold RSA — is executed and its
// wall-clock cost advanced on each node's virtual busy horizon, while link
// latencies come from the configured fault-free LAN model. Absolute numbers
// therefore reflect this machine's crypto speeds rather than the paper's
// 2003 testbed; the comparisons across architectures are what reproduce.
package bench

import (
	"fmt"
	"sort"

	"repro/internal/apps/nullsrv"
	"repro/internal/core"
	"repro/internal/replycert"
	"repro/internal/sm"
	"repro/internal/transport"
	"repro/internal/types"
)

// LatencyConfig describes one Figure 3 bar: an architecture configuration
// and a request/reply size pair.
type LatencyConfig struct {
	Label    string
	Opts     core.Options
	Colocate bool // run executors on the agreement machines ("Same")
	ReqSize  int
	RepSize  int
	Requests int
	Warmup   int
}

// LatencyResult summarizes one run.
type LatencyResult struct {
	Label    string
	Requests int
	MeanMs   float64
	MedianMs float64
	P99Ms    float64
	MinMs    float64
	MaxMs    float64
}

// Fig3Configs returns the paper's five latency configurations
// (algorithm/machine-configuration/authentication, §5.2) for one size pair.
// thresholdBits sizes the RSA modulus used by the threshold configurations.
func Fig3Configs(reqSize, repSize, requests, thresholdBits int) []LatencyConfig {
	mk := func(label string, colocate bool, mutate func(*core.Options)) LatencyConfig {
		o := core.Options{
			BatchSize:          1, // latency microbenchmark: no batching
			CheckpointInterval: 128,
			WindowSize:         512,
			Pipeline:           64,
			ThresholdBits:      thresholdBits,
			RequestTimeout:     types.Millisecond(2000),
			ClientRetransmit:   types.Millisecond(1000),
		}
		mutate(&o)
		return LatencyConfig{
			Label: label, Opts: o, Colocate: colocate,
			ReqSize: reqSize, RepSize: repSize, Requests: requests, Warmup: requests / 10,
		}
	}
	return []LatencyConfig{
		mk("BASE/Same/MAC", false, func(o *core.Options) {
			o.Mode = core.ModeBASE
			o.MACRequests = true
		}),
		mk("Separate/Same/MAC", true, func(o *core.Options) {
			o.Mode = core.ModeSeparate
			o.MACRequests = true
			o.MACOrders = true
			o.ReplyMode = replycert.ModeQuorum
		}),
		mk("Separate/Different/MAC", false, func(o *core.Options) {
			o.Mode = core.ModeSeparate
			o.MACRequests = true
			o.MACOrders = true
			o.ReplyMode = replycert.ModeQuorum
		}),
		mk("Separate/Different/Thresh", false, func(o *core.Options) {
			o.Mode = core.ModeSeparate
			o.MACRequests = true
			o.MACOrders = true
			o.ReplyMode = replycert.ModeThreshold
		}),
		mk("Priv/Different/Thresh", false, func(o *core.Options) {
			o.Mode = core.ModeFirewall
		}),
	}
}

// RunLatency executes one latency configuration: a single client issues
// sequential null-server requests and virtual-time round trips are recorded.
func RunLatency(cfg LatencyConfig) (LatencyResult, error) {
	opts := cfg.Opts
	opts.App = func() sm.StateMachine { return nullsrv.New(cfg.RepSize) }
	opts.Net.MeasureCompute = true
	c, err := core.BuildSim(opts)
	if err != nil {
		return LatencyResult{}, err
	}
	if cfg.Colocate {
		// "Same" configuration: executor i shares agreement machine i.
		for i, e := range c.Top.Execution {
			c.Net.Colocate(e, c.Top.Agreement[i%len(c.Top.Agreement)])
		}
	}
	op := nullsrv.MakeRequest(cfg.ReqSize)
	var samples []float64
	total := cfg.Requests + cfg.Warmup
	for i := 0; i < total; i++ {
		start := c.Net.Now()
		if _, err := c.Invoke(0, op, types.Time(60e9)); err != nil {
			return LatencyResult{}, fmt.Errorf("%s request %d: %w", cfg.Label, i, err)
		}
		if i >= cfg.Warmup {
			samples = append(samples, float64(c.Net.Now()-start)/1e6)
		}
	}
	return summarize(cfg.Label, samples), nil
}

func summarize(label string, samples []float64) LatencyResult {
	r := LatencyResult{Label: label, Requests: len(samples)}
	if len(samples) == 0 {
		return r
	}
	sort.Float64s(samples)
	sum := 0.0
	for _, s := range samples {
		sum += s
	}
	r.MeanMs = sum / float64(len(samples))
	r.MedianMs = samples[len(samples)/2]
	r.P99Ms = samples[(len(samples)*99)/100]
	r.MinMs = samples[0]
	r.MaxMs = samples[len(samples)-1]
	return r
}

// --- Figure 5: response time vs offered load and bundle size --------------------

// ThroughputConfig describes one Figure 5 curve point.
type ThroughputConfig struct {
	Bundle        int     // agreement batch = reply bundle size
	RatePerSec    float64 // offered load, requests/second
	Clients       int
	ReqSize       int
	RepSize       int
	Requests      int // total requests to offer
	ThresholdBits int
	Mode          core.Mode
}

// ThroughputResult summarizes one load point.
type ThroughputResult struct {
	Bundle         int
	OfferedPerSec  float64
	Completed      int
	MeanRespMs     float64
	P99RespMs      float64
	AchievedPerSec float64
}

// RunThroughput offers an open-loop load at the configured rate and measures
// response times (queueing included, as in the paper's load generator).
func RunThroughput(cfg ThroughputConfig) (ThroughputResult, error) {
	if cfg.Clients == 0 {
		cfg.Clients = 24
	}
	if cfg.Mode == 0 {
		cfg.Mode = core.ModeFirewall
	}
	opts := core.Options{
		Mode:      cfg.Mode,
		Clients:   cfg.Clients,
		BatchSize: cfg.Bundle,
		// Static bundles (as in the prototype, §5.3): a partial bundle
		// waits out this delay, which is what makes large bundles costly
		// at low load in Figure 5.
		BatchWait:          types.Millisecond(20),
		CheckpointInterval: 256,
		WindowSize:         1024,
		Pipeline:           256,
		ThresholdBits:      cfg.ThresholdBits,
		RequestTimeout:     types.Millisecond(5000),
		ClientRetransmit:   types.Millisecond(2500),
		App:                func() sm.StateMachine { return nullsrv.New(cfg.RepSize) },
		Net:                transport.SimNetConfig{MeasureCompute: true},
	}
	c, err := core.BuildSim(opts)
	if err != nil {
		return ThroughputResult{}, err
	}
	op := nullsrv.MakeRequest(cfg.ReqSize)
	interval := types.Time(1e9 / cfg.RatePerSec)

	var (
		samples   []float64
		backlog   []types.Time // intended times not yet submitted
		inFlight  = map[int]types.Time{}
		freeCls   []int
		offered   int
		completed int
	)
	for i := 0; i < cfg.Clients; i++ {
		freeCls = append(freeCls, i)
	}
	nextOffer := c.Net.Now() + interval
	start := c.Net.Now()

	submit := func(intended types.Time) bool {
		if len(freeCls) == 0 {
			return false
		}
		cl := freeCls[0]
		freeCls = freeCls[1:]
		if err := c.Clients[cl].Submit(op, c.Net.Now()); err != nil {
			return false
		}
		inFlight[cl] = intended
		return true
	}

	deadline := start + types.Time(600e9)
	for completed < cfg.Requests && c.Net.Now() < deadline {
		// Offer new work on schedule.
		for offered < cfg.Requests && nextOffer <= c.Net.Now() {
			backlog = append(backlog, nextOffer)
			nextOffer += interval
			offered++
		}
		for len(backlog) > 0 && submit(backlog[0]) {
			backlog = backlog[1:]
		}
		// Harvest completions.
		for cl, intended := range inFlight {
			if c.Clients[cl].HasResult() {
				c.Clients[cl].Result()
				samples = append(samples, float64(c.Net.Now()-intended)/1e6)
				delete(inFlight, cl)
				freeCls = append(freeCls, cl)
				completed++
			}
		}
		if !c.Net.Step() {
			break
		}
	}
	res := ThroughputResult{Bundle: cfg.Bundle, OfferedPerSec: cfg.RatePerSec, Completed: completed}
	if len(samples) > 0 {
		sort.Float64s(samples)
		sum := 0.0
		for _, s := range samples {
			sum += s
		}
		res.MeanRespMs = sum / float64(len(samples))
		res.P99RespMs = samples[(len(samples)*99)/100]
	}
	elapsed := float64(c.Net.Now()-start) / 1e9
	if elapsed > 0 {
		res.AchievedPerSec = float64(completed) / elapsed
	}
	return res, nil
}
