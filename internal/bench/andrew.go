package bench

import (
	"fmt"

	"repro/internal/apps/nfs"
	"repro/internal/core"
	"repro/internal/sm"
	"repro/internal/transport"
	"repro/internal/types"
)

// This file implements the modified Andrew benchmark of §5.4 against the
// replicated NFS service: N sequential iterations ("Andrew-N"; the paper
// runs Andrew-500), each with the benchmark's five phases:
//
//	1. recursive subdirectory creation
//	2. copying a source tree into the new directories
//	3. examining file attributes without reading contents
//	4. reading the files
//	5. "compiling": reading every source and writing objects + a binary
//
// Phase boundaries are measured in virtual time, yielding the rows of
// Figures 6 and 7.

// AndrewConfig scales the workload.
type AndrewConfig struct {
	N           int // iterations (Andrew-N)
	Dirs        int // subdirectories per iteration
	FilesPerDir int // source files per subdirectory
	FileSize    int // bytes per source file
}

// DefaultAndrew returns a laptop-scale Andrew-N configuration.
func DefaultAndrew(n int) AndrewConfig {
	return AndrewConfig{N: n, Dirs: 4, FilesPerDir: 5, FileSize: 2048}
}

// AndrewResult holds per-phase and total times.
type AndrewResult struct {
	Label  string
	Phases [5]types.Time
	Total  types.Time
}

// FmtMs renders a phase time in milliseconds.
func (r AndrewResult) FmtMs(i int) string {
	return fmt.Sprintf("%.1f", float64(r.Phases[i])/1e6)
}

// Invoker abstracts "send one NFS operation and wait for the certified
// reply" over the replicated cluster and the unreplicated baseline.
type Invoker interface {
	Invoke(op []byte) ([]byte, error)
	Now() types.Time
}

// clusterInvoker adapts core.Cluster.
type clusterInvoker struct {
	c       *core.Cluster
	timeout types.Time
}

func (ci *clusterInvoker) Invoke(op []byte) ([]byte, error) {
	return ci.c.Invoke(0, op, ci.timeout)
}

func (ci *clusterInvoker) Now() types.Time { return ci.c.Net.Now() }

// RunAndrew executes Andrew-N through the invoker.
func RunAndrew(label string, inv Invoker, cfg AndrewConfig) (AndrewResult, error) {
	res := AndrewResult{Label: label}
	start := inv.Now()

	call := func(op []byte) ([]byte, error) { return inv.Invoke(op) }
	attr := func(op []byte) (nfs.Attr, error) {
		b, err := call(op)
		if err != nil {
			return nfs.Attr{}, err
		}
		st, a, err := nfs.DecodeAttrReply(b)
		if err != nil {
			return nfs.Attr{}, err
		}
		if st != nfs.StatusOK {
			return nfs.Attr{}, fmt.Errorf("andrew: op failed: %s", nfs.StatusName(st))
		}
		return a, nil
	}

	content := make([]byte, cfg.FileSize)
	for i := range content {
		content[i] = byte('a' + i%26)
	}

	type dirState struct {
		handle nfs.Handle
		files  []nfs.Handle
	}

	for iter := 0; iter < cfg.N; iter++ {
		rootName := fmt.Sprintf("andrew%d", iter)
		top, err := attr(nfs.Mkdir(nfs.RootHandle, rootName, 0o755))
		if err != nil {
			return res, err
		}
		// Phase 1: recursive subdirectory creation.
		dirs := make([]dirState, cfg.Dirs)
		parent := top.Handle
		for d := 0; d < cfg.Dirs; d++ {
			a, err := attr(nfs.Mkdir(parent, fmt.Sprintf("sub%d", d), 0o755))
			if err != nil {
				return res, err
			}
			dirs[d].handle = a.Handle
			parent = a.Handle // nested, like mkdir -p of a path
		}
		res.Phases[0] += inv.Now() - start
		start = inv.Now()

		// Phase 2: copy the source tree.
		for d := range dirs {
			for f := 0; f < cfg.FilesPerDir; f++ {
				a, err := attr(nfs.Create(dirs[d].handle, fmt.Sprintf("src%d.c", f), 0o644))
				if err != nil {
					return res, err
				}
				if _, err := attr(nfs.Write(a.Handle, 0, content)); err != nil {
					return res, err
				}
				dirs[d].files = append(dirs[d].files, a.Handle)
			}
		}
		res.Phases[1] += inv.Now() - start
		start = inv.Now()

		// Phase 3: examine attributes without reading contents.
		for d := range dirs {
			for _, fh := range dirs[d].files {
				if _, err := attr(nfs.Getattr(fh)); err != nil {
					return res, err
				}
			}
			if _, err := call(nfs.Readdir(dirs[d].handle)); err != nil {
				return res, err
			}
		}
		res.Phases[2] += inv.Now() - start
		start = inv.Now()

		// Phase 4: read the files.
		for d := range dirs {
			for _, fh := range dirs[d].files {
				b, err := call(nfs.Read(fh, 0, uint32(cfg.FileSize)))
				if err != nil {
					return res, err
				}
				if st, data, _ := nfs.DecodeDataReply(b); st != nfs.StatusOK || len(data) != cfg.FileSize {
					return res, fmt.Errorf("andrew: phase 4 read returned %s (%d bytes)", nfs.StatusName(st), len(data))
				}
			}
		}
		res.Phases[3] += inv.Now() - start
		start = inv.Now()

		// Phase 5: compile and link — read each source, write an object,
		// then write one linked binary.
		var linked int
		for d := range dirs {
			for f, fh := range dirs[d].files {
				if _, err := call(nfs.Read(fh, 0, uint32(cfg.FileSize))); err != nil {
					return res, err
				}
				obj, err := attr(nfs.Create(dirs[d].handle, fmt.Sprintf("obj%d.o", f), 0o644))
				if err != nil {
					return res, err
				}
				if _, err := attr(nfs.Write(obj.Handle, 0, content[:cfg.FileSize/2])); err != nil {
					return res, err
				}
				linked += cfg.FileSize / 2
			}
		}
		bin, err := attr(nfs.Create(top.Handle, "a.out", 0o755))
		if err != nil {
			return res, err
		}
		binContent := make([]byte, linked/4+1)
		if _, err := attr(nfs.Write(bin.Handle, 0, binContent)); err != nil {
			return res, err
		}
		res.Phases[4] += inv.Now() - start
		start = inv.Now()
	}
	for _, p := range res.Phases {
		res.Total += p
	}
	return res, nil
}

// AndrewClusterOptions returns cluster options for a given architecture
// running the NFS service, sized for the Andrew benchmark.
func AndrewClusterOptions(mode core.Mode, thresholdBits int) core.Options {
	return core.Options{
		Mode:               mode,
		BatchSize:          1, // single sequential client
		CheckpointInterval: 256,
		WindowSize:         1024,
		Pipeline:           128,
		ThresholdBits:      thresholdBits,
		RequestTimeout:     types.Millisecond(5000),
		ClientRetransmit:   types.Millisecond(2500),
		App:                func() sm.StateMachine { return nfs.New() },
		Net:                transport.SimNetConfig{MeasureCompute: true},
	}
}

// RunAndrewOnCluster builds the cluster and runs Andrew-N on it, optionally
// crashing one replica first (Figure 7's fault rows).
type AndrewFault int

// Fault injections for Figure 7.
const (
	FaultNone AndrewFault = iota
	FaultExecReplica
	FaultAgreementReplica
)

// HardwareTSigScale models the cryptographic accelerator §5.4 assumes for
// threshold signatures (the paper cites Shand & Vuillemin's fast RSA
// hardware): compute on executors and filters is charged at 1/15 of its
// measured software cost.
const HardwareTSigScale = 1.0 / 15

// RunAndrewOnCluster executes the benchmark on a fresh cluster. When
// hwAssist is true, executor and filter compute time is scaled by
// HardwareTSigScale, matching the paper's §5.4 assumption.
func RunAndrewOnCluster(label string, opts core.Options, cfg AndrewConfig, fault AndrewFault) (AndrewResult, error) {
	return runAndrewCluster(label, opts, cfg, fault, opts.Mode == core.ModeFirewall)
}

// RunAndrewOnClusterSoftware forces pure-software threshold signing.
func RunAndrewOnClusterSoftware(label string, opts core.Options, cfg AndrewConfig, fault AndrewFault) (AndrewResult, error) {
	return runAndrewCluster(label, opts, cfg, fault, false)
}

func runAndrewCluster(label string, opts core.Options, cfg AndrewConfig, fault AndrewFault, hwAssist bool) (AndrewResult, error) {
	c, err := core.BuildSim(opts)
	if err != nil {
		return AndrewResult{}, err
	}
	if hwAssist {
		for _, id := range c.Top.Execution {
			c.Net.SetComputeScale(id, HardwareTSigScale)
		}
		for _, row := range c.Top.Filters {
			for _, id := range row {
				c.Net.SetComputeScale(id, HardwareTSigScale)
			}
		}
	}
	switch fault {
	case FaultExecReplica:
		if opts.Mode == core.ModeBASE {
			return AndrewResult{}, fmt.Errorf("bench: BASE has no separate execution replicas")
		}
		c.CrashExec(len(c.Top.Execution) - 1)
	case FaultAgreementReplica:
		c.CrashAgreement(len(c.Top.Agreement) - 1) // a backup
	}
	return RunAndrew(label, &clusterInvoker{c: c, timeout: types.Time(120e9)}, cfg)
}
