package costmodel

import (
	"math"
	"strings"
	"testing"
)

func TestSeparateBeatsBASEEverywhere(t *testing.T) {
	// §5.3: "Without the privacy firewall overhead, our separate
	// architecture has a lower cost than BASE for all request sizes
	// examined."
	p := PaperParams()
	for _, batch := range []int{1, 10, 100} {
		for app := 1.0; app <= 100; app *= 1.5 {
			sep := RelativeCost(Separate, p, app, batch)
			base := RelativeCost(BASE, p, app, batch)
			if sep >= base {
				t.Errorf("Separate (%.3f) not cheaper than BASE (%.3f) at app=%.1fms batch=%d", sep, base, app, batch)
			}
		}
	}
}

func TestAsymptoticAdvantageIsReplicaRatio(t *testing.T) {
	// As application processing dominates, BASE/Separate → 4/3 (the
	// paper's "33% advantage").
	p := PaperParams()
	ratio := RelativeCost(BASE, p, 1e6, 10) / RelativeCost(Separate, p, 1e6, 10)
	if math.Abs(ratio-4.0/3.0) > 0.001 {
		t.Errorf("asymptotic BASE/Separate = %.4f, want 4/3", ratio)
	}
}

func TestPrivacyFirewallCrossovers(t *testing.T) {
	// §5.3: with batch 10 the firewall beats BASE for apps over ~5 ms;
	// with batch 100, over ~0.2 ms.
	p := PaperParams()
	x10 := CrossoverApp(SepPriv, BASE, p, 10, 0.01, 1000)
	if x10 < 3 || x10 > 7 {
		t.Errorf("batch=10 crossover = %.2f ms, paper reports ≈5 ms", x10)
	}
	x100 := CrossoverApp(SepPriv, BASE, p, 100, 0.01, 1000)
	if x100 < 0.1 || x100 > 0.5 {
		t.Errorf("batch=100 crossover = %.2f ms, paper reports ≈0.2 ms", x100)
	}
	// At batch=1 and small requests the firewall is much more expensive
	// ("the privacy firewall does greatly increase cost").
	// (61.4 vs 12.8 relative cost: a ~4.8x penalty.)
	if RelativeCost(SepPriv, p, 1, 1)/RelativeCost(BASE, p, 1, 1) < 4 {
		t.Error("firewall at batch=1 should cost several times BASE for 1ms apps")
	}
}

func TestBatchingReducesCostMonotonically(t *testing.T) {
	p := PaperParams()
	for _, a := range Archs() {
		prev := math.Inf(1)
		for _, batch := range []int{1, 2, 5, 10, 50, 100} {
			c := RelativeCost(a, p, 2, batch)
			if c > prev {
				t.Errorf("%s: cost increased with batch size (%d → %.3f)", a.Name, batch, c)
			}
			prev = c
		}
	}
}

func TestRelativeCostFormula(t *testing.T) {
	// Hand-computed spot check: BASE at 10ms, batch 1:
	// (4·10 + 8·0.2 + 36·0.2) / 10 = (40 + 1.6 + 7.2)/10 = 4.88
	got := RelativeCost(BASE, PaperParams(), 10, 1)
	if math.Abs(got-4.88) > 1e-9 {
		t.Errorf("BASE(10ms, b=1) = %v, want 4.88", got)
	}
	// Sep/Priv at 5ms, batch 10:
	// (3·5 + 1.4 + (7.8+45+4.2)/10)/5 = (15 + 1.4 + 5.7)/5 = 4.42
	got = RelativeCost(SepPriv, PaperParams(), 5, 10)
	if math.Abs(got-4.42) > 1e-9 {
		t.Errorf("SepPriv(5ms, b=10) = %v, want 4.42", got)
	}
}

func TestRelativeCostPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for zero app time")
		}
	}()
	RelativeCost(BASE, PaperParams(), 0, 1)
}

func TestFigure4SeriesShape(t *testing.T) {
	pts := Figure4Series(PaperParams())
	if len(pts) != 3*3*13 {
		t.Fatalf("series has %d points, want %d", len(pts), 3*3*13)
	}
	// Relative cost approaches the replica count from above as app grows.
	for _, pt := range pts {
		var numExec float64
		switch pt.Arch {
		case "BASE":
			numExec = 4
		default:
			numExec = 3
		}
		if pt.RelCost < numExec {
			t.Errorf("%s batch=%d app=%.1f: relative cost %.3f below replica floor %.0f",
				pt.Arch, pt.Batch, pt.AppMs, pt.RelCost, numExec)
		}
	}
	out := FormatFigure4(pts)
	if !strings.Contains(out, "Sep/Priv") || !strings.Contains(out, "BASE") {
		t.Error("formatted table is missing architectures")
	}
}

func TestCrossoverBoundaries(t *testing.T) {
	p := PaperParams()
	// At batch=1, Separate's extra per-batch MACs (39 vs 36) make BASE
	// cheaper for sub-millisecond applications — the paper's caveat that
	// its overheads are higher "when applications do little processing
	// and when aggregate load (and therefore bundle size) is small". The
	// crossover sits below the 1–100 ms range Figure 4 examines.
	if x := CrossoverApp(Separate, BASE, p, 1, 0.01, 1000); x < 0.1 || x > 1 {
		t.Errorf("Separate vs BASE batch=1 crossover = %v, want sub-millisecond", x)
	}
	// At batch=10 the per-batch difference washes out: Separate wins from
	// the low end, so the crossover degenerates to lo.
	if x := CrossoverApp(Separate, BASE, p, 10, 1, 1000); x != 1 {
		t.Errorf("Separate vs BASE batch=10 crossover = %v, want lo bound", x)
	}
	// An architecture strictly worse everywhere returns hi.
	worse := Arch{Name: "worse", NumExec: 10, MACsPerReq: 100, MACsPerBatch: 100}
	if x := CrossoverApp(worse, BASE, p, 1, 0.01, 1000); x != 1000 {
		t.Errorf("hopeless crossover = %v, want hi bound", x)
	}
}

func TestLogspace(t *testing.T) {
	xs := logspace(1, 100, 13)
	if xs[0] != 1 || math.Abs(xs[12]-100) > 1e-9 {
		t.Errorf("logspace endpoints: %v ... %v", xs[0], xs[12])
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			t.Error("logspace not increasing")
		}
	}
}
