// Package costmodel implements the analytic relative-cost model of §5.3
// (Figure 4): the per-request processing cost of each replication
// architecture — application execution on every execution replica plus
// cryptographic overhead — relative to an unreplicated server.
//
//	relativeCost = (numExec·procApp + overhead_req + overhead_batch/batch) / procApp
//
// Per-request and per-batch operation counts are the paper's, for
// configurations tolerating one fault:
//
//	BASE      4 execution replicas, 8 MACs/request, 36 MACs/batch
//	Separate  3 execution replicas, 7 MACs/request, 39 MACs/batch
//	Sep/Priv  3 execution replicas, 7 MACs/request, 39 MACs + 3 threshold
//	          signatures + 6 threshold verifications per batch
//
// Default primitive costs are also the paper's measurements (2003 hardware):
// MAC 0.2 ms, threshold signature 15 ms, threshold verification 0.7 ms. The
// model reproduces the paper's claims: without the firewall the separated
// architecture is cheaper than BASE everywhere (asymptotically by the 4/3
// replica ratio), and with the firewall it crosses below BASE at ~5 ms of
// application processing for batch size 10 (~0.2 ms at batch 100).
package costmodel

import (
	"fmt"
	"math"
)

// Params holds cryptographic primitive costs in milliseconds.
type Params struct {
	MACMs     float64
	TSignMs   float64
	TVerifyMs float64
}

// PaperParams are the costs measured in §5.3.
func PaperParams() Params {
	return Params{MACMs: 0.2, TSignMs: 15, TVerifyMs: 0.7}
}

// Arch describes one architecture's replica count and per-request/per-batch
// cryptographic operation counts.
type Arch struct {
	Name          string
	NumExec       int
	MACsPerReq    float64
	MACsPerBatch  float64
	TSignPerBatch float64
	TVerPerBatch  float64
}

// The paper's three architectures, tolerating one fault.
var (
	BASE     = Arch{Name: "BASE", NumExec: 4, MACsPerReq: 8, MACsPerBatch: 36}
	Separate = Arch{Name: "Sep", NumExec: 3, MACsPerReq: 7, MACsPerBatch: 39}
	SepPriv  = Arch{Name: "Sep/Priv", NumExec: 3, MACsPerReq: 7, MACsPerBatch: 39, TSignPerBatch: 3, TVerPerBatch: 6}
)

// Archs lists the modeled architectures in the paper's order.
func Archs() []Arch { return []Arch{SepPriv, Separate, BASE} }

// RelativeCost evaluates the model for one architecture at a given
// (unreplicated) application processing time in ms and batch size.
func RelativeCost(a Arch, p Params, procAppMs float64, batch int) float64 {
	if procAppMs <= 0 || batch <= 0 {
		panic("costmodel: procAppMs and batch must be positive")
	}
	perReq := a.MACsPerReq * p.MACMs
	perBatch := a.MACsPerBatch*p.MACMs + a.TSignPerBatch*p.TSignMs + a.TVerPerBatch*p.TVerifyMs
	return (float64(a.NumExec)*procAppMs + perReq + perBatch/float64(batch)) / procAppMs
}

// CrossoverApp returns the application processing time (ms) above which
// architecture a is cheaper than b at the given batch size, found by
// bisection over [lo, hi]. It returns hi if a never wins, lo if a always
// wins on the interval.
func CrossoverApp(a, b Arch, p Params, batch int, lo, hi float64) float64 {
	cheaper := func(app float64) bool {
		return RelativeCost(a, p, app, batch) < RelativeCost(b, p, app, batch)
	}
	if cheaper(lo) {
		return lo
	}
	if !cheaper(hi) {
		return hi
	}
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if cheaper(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// Point is one Figure 4 sample.
type Point struct {
	Arch    string
	Batch   int
	AppMs   float64
	RelCost float64
}

// Figure4Series samples the model exactly as Figure 4 plots it: application
// processing 1–100 ms (log-spaced), batch sizes 1, 10, and 100.
func Figure4Series(p Params) []Point {
	var out []Point
	apps := logspace(1, 100, 13)
	for _, a := range Archs() {
		for _, batch := range []int{1, 10, 100} {
			for _, app := range apps {
				out = append(out, Point{
					Arch: a.Name, Batch: batch, AppMs: app,
					RelCost: RelativeCost(a, p, app, batch),
				})
			}
		}
	}
	return out
}

// logspace returns n log-spaced samples over [lo, hi].
func logspace(lo, hi float64, n int) []float64 {
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		f := float64(i) / float64(n-1)
		out[i] = lo * math.Pow(hi/lo, f)
	}
	return out
}

// FormatFigure4 renders the series as the figure's table of rows.
func FormatFigure4(points []Point) string {
	out := "arch\tbatch\tapp_ms\trelative_cost\n"
	for _, pt := range points {
		out += fmt.Sprintf("%s\t%d\t%.2f\t%.3f\n", pt.Arch, pt.Batch, pt.AppMs, pt.RelCost)
	}
	return out
}
