package bench

import (
	"testing"

	"repro/internal/apps/nfs"
	"repro/internal/core"
)

// These tests assert the *shapes* the paper reports, at small scale so the
// suite stays fast; the full sweeps live behind the root-level benchmark
// targets and cmd/saebft-bench.

func TestFig3LatencyOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("latency harness in -short mode")
	}
	// Medians, not means: MeasureCompute charges real wall time, so a GC
	// pause or CPU contention from parallel test packages can blow up a
	// single sample.
	results := make(map[string]float64)
	for _, cfg := range Fig3Configs(40, 40, 15, 512) {
		res, err := RunLatency(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Label, err)
		}
		if res.MedianMs <= 0 {
			t.Fatalf("%s: nonpositive latency", cfg.Label)
		}
		results[cfg.Label] = res.MedianMs
	}
	// The paper's ordering: MAC configurations are fast; threshold
	// signatures dominate; the firewall is in the threshold regime, above
	// the MAC configurations.
	if results["Separate/Different/Thresh"] < 2*results["Separate/Different/MAC"] {
		t.Errorf("threshold (%.2fms) should clearly dominate MAC (%.2fms)",
			results["Separate/Different/Thresh"], results["Separate/Different/MAC"])
	}
	if results["Priv/Different/Thresh"] < 2*results["Separate/Different/MAC"] {
		t.Errorf("firewall (%.2fms) should sit in the threshold regime, not the MAC regime (%.2fms)",
			results["Priv/Different/Thresh"], results["Separate/Different/MAC"])
	}
	if results["BASE/Same/MAC"] > results["Separate/Different/Thresh"] {
		t.Errorf("BASE/MAC (%.2fms) should be far below threshold configs (%.2fms)",
			results["BASE/Same/MAC"], results["Separate/Different/Thresh"])
	}
}

func TestFig5BundlingRaisesThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput harness in -short mode")
	}
	high := 800.0
	one, err := RunThroughput(ThroughputConfig{
		Bundle: 1, RatePerSec: high, ReqSize: 1024, RepSize: 1024,
		Requests: 50, ThresholdBits: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	three, err := RunThroughput(ThroughputConfig{
		Bundle: 3, RatePerSec: high, ReqSize: 1024, RepSize: 1024,
		Requests: 50, ThresholdBits: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	// §5.3/Figure 5: bundle=1 saturates at the signing rate; bundling
	// multiplies achievable throughput. The 1.5x bound (paper: ~3x) leaves
	// headroom for CPU contention when the whole suite runs in parallel —
	// MeasureCompute charges real wall time.
	if three.AchievedPerSec < 1.5*one.AchievedPerSec {
		t.Errorf("bundle=3 achieved %.1f/s, bundle=1 %.1f/s; expected clear gain from amortized signing",
			three.AchievedPerSec, one.AchievedPerSec)
	}
	if one.MeanRespMs < 5 {
		t.Errorf("bundle=1 at saturation should queue (mean %.2fms)", one.MeanRespMs)
	}
}

func TestFig5LowLoadBundlePenalty(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput harness in -short mode")
	}
	low := 100.0
	one, err := RunThroughput(ThroughputConfig{
		Bundle: 1, RatePerSec: low, ReqSize: 1024, RepSize: 1024,
		Requests: 30, ThresholdBits: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	five, err := RunThroughput(ThroughputConfig{
		Bundle: 5, RatePerSec: low, ReqSize: 1024, RepSize: 1024,
		Requests: 30, ThresholdBits: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	// "our current prototype uses a static bundle size, so increasing
	// bundle sizes increases latency at low loads" (§5.3). The structural
	// floor is the 20ms partial-bundle wait; assert the floor is present,
	// and the relative comparison only when the bundle=1 run was not
	// itself inflated by suite-level CPU contention.
	if five.MeanRespMs < 5 {
		t.Errorf("bundle=5 at low load (%.2fms) shows no partial-bundle wait floor", five.MeanRespMs)
	}
	if one.MeanRespMs < 5 && five.MeanRespMs <= one.MeanRespMs {
		t.Errorf("bundle=5 at low load (%.2fms) should be slower than bundle=1 (%.2fms)",
			five.MeanRespMs, one.MeanRespMs)
	}
}

func TestFig6AndrewOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("Andrew harness in -short mode")
	}
	cfg := AndrewConfig{N: 1, Dirs: 2, FilesPerDir: 3, FileSize: 1024}
	norep, err := RunAndrew("norep", NewNoRepInvoker(nfs.New()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, err := RunAndrewOnCluster("BASE", AndrewClusterOptions(core.ModeBASE, 512), cfg, FaultNone)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := RunAndrewOnCluster("Firewall", AndrewClusterOptions(core.ModeFirewall, 512), cfg, FaultNone)
	if err != nil {
		t.Fatal(err)
	}
	if !(norep.Total < base.Total && base.Total < fw.Total) {
		t.Errorf("ordering violated: norep=%v base=%v fw=%v", norep.Total, base.Total, fw.Total)
	}
	// Paper: BASE is ~2x no-replication; the firewall is a modest factor
	// over BASE (16% on their testbed with hardware threshold assist; we
	// allow a generous envelope for software crypto and extra hops).
	if fw.Total > 5*base.Total {
		t.Errorf("firewall (%v) more than 5x BASE (%v); amortization broken", fw.Total, base.Total)
	}
	for p := 0; p < 5; p++ {
		if fw.Phases[p] == 0 || base.Phases[p] == 0 {
			t.Errorf("phase %d has a zero time; instrumentation broken", p+1)
		}
	}
}

func TestFig7FaultsHaveMinorImpact(t *testing.T) {
	if testing.Short() {
		t.Skip("Andrew harness in -short mode")
	}
	cfg := AndrewConfig{N: 1, Dirs: 2, FilesPerDir: 3, FileSize: 1024}
	clean, err := RunAndrewOnCluster("clean", AndrewClusterOptions(core.ModeFirewall, 512), cfg, FaultNone)
	if err != nil {
		t.Fatal(err)
	}
	execFault, err := RunAndrewOnCluster("faulty server", AndrewClusterOptions(core.ModeFirewall, 512), cfg, FaultExecReplica)
	if err != nil {
		t.Fatal(err)
	}
	agFault, err := RunAndrewOnCluster("faulty agreement", AndrewClusterOptions(core.ModeFirewall, 512), cfg, FaultAgreementReplica)
	if err != nil {
		t.Fatal(err)
	}
	// "the faults only have a minor impact on the completion time" (§5.4).
	if execFault.Total > 2*clean.Total {
		t.Errorf("crashed executor doubled completion time: %v vs %v", execFault.Total, clean.Total)
	}
	if agFault.Total > 2*clean.Total {
		t.Errorf("crashed agreement replica doubled completion time: %v vs %v", agFault.Total, clean.Total)
	}
}

func TestNoRepInvoker(t *testing.T) {
	inv := NewNoRepInvoker(nfs.New())
	b, err := inv.Invoke(nfs.Mkdir(nfs.RootHandle, "d", 0o755))
	if err != nil {
		t.Fatal(err)
	}
	st, a, err := nfs.DecodeAttrReply(b)
	if err != nil || st != nfs.StatusOK || a.Type != nfs.TypeDir {
		t.Fatalf("mkdir via norep: st=%v attr=%+v err=%v", st, a, err)
	}
	if inv.Now() == 0 {
		t.Error("virtual clock did not advance")
	}
}

func TestFigure4Renders(t *testing.T) {
	out := Figure4()
	if len(out) < 100 {
		t.Errorf("Figure4 output suspiciously short: %q", out)
	}
}
