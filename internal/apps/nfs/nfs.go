// Package nfs is an in-memory network-file-service state machine modeled on
// the NFSv2-level interface the paper replicates (§5.4): LOOKUP, CREATE,
// MKDIR, READ, WRITE, GETATTR, SETATTR, REMOVE, RMDIR, RENAME, and READDIR.
//
// The interesting part is the abstraction layer of §3.1.4: a native NFS
// server picks file handles and modification times nondeterministically,
// which would make replicas diverge. Here both are deterministic functions
// of the agreement cluster's oblivious nondeterministic inputs: new file
// handles derive from the agreed pseudo-random bits (H(rand ‖ dir ‖ name)),
// and timestamps come from the agreed primary-proposed time. All directory
// iteration is over sorted names, so replicas can never diverge.
package nfs

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/types"
	"repro/internal/wire"
)

// Handle identifies a file or directory. RootHandle names the root.
type Handle uint64

// RootHandle is the preallocated root directory handle.
const RootHandle Handle = 1

// FileType distinguishes inode kinds.
type FileType uint8

// Inode kinds.
const (
	TypeFile FileType = iota + 1
	TypeDir
)

// Attr is the subset of NFS fattr the benchmarks exercise.
type Attr struct {
	Handle Handle
	Type   FileType
	Mode   uint32
	Size   uint64
	Mtime  types.Timestamp
	Ctime  types.Timestamp
}

type inode struct {
	attr     Attr
	data     []byte
	children map[string]Handle // directories only
}

// Server is the file-service state machine.
type Server struct {
	inodes map[Handle]*inode

	// Metrics counts applied operations.
	Ops uint64
}

// New returns a file service containing only the root directory.
func New() *Server {
	s := &Server{inodes: make(map[Handle]*inode)}
	s.inodes[RootHandle] = &inode{
		attr:     Attr{Handle: RootHandle, Type: TypeDir, Mode: 0o755},
		children: make(map[string]Handle),
	}
	return s
}

// NumInodes returns the inode count (for assertions).
func (s *Server) NumInodes() int { return len(s.inodes) }

// --- operation encoding --------------------------------------------------------

// Op codes.
const (
	OpLookup uint8 = iota + 1
	OpCreate
	OpMkdir
	OpRead
	OpWrite
	OpGetattr
	OpSetattr
	OpRemove
	OpRmdir
	OpRename
	OpReaddir
)

// Status codes returned in the first reply byte.
const (
	StatusOK uint8 = iota
	StatusNoEnt
	StatusExist
	StatusNotDir
	StatusIsDir
	StatusNotEmpty
	StatusStale
	StatusBad
)

// StatusName renders a status code for error messages.
func StatusName(s uint8) string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusNoEnt:
		return "ENOENT"
	case StatusExist:
		return "EEXIST"
	case StatusNotDir:
		return "ENOTDIR"
	case StatusIsDir:
		return "EISDIR"
	case StatusNotEmpty:
		return "ENOTEMPTY"
	case StatusStale:
		return "ESTALE"
	default:
		return "EBAD"
	}
}

// Lookup encodes a LOOKUP request.
func Lookup(dir Handle, name string) []byte { return encNamed(OpLookup, dir, name, 0) }

// Create encodes a CREATE request.
func Create(dir Handle, name string, mode uint32) []byte { return encNamed(OpCreate, dir, name, mode) }

// Mkdir encodes a MKDIR request.
func Mkdir(dir Handle, name string, mode uint32) []byte { return encNamed(OpMkdir, dir, name, mode) }

// Remove encodes a REMOVE request.
func Remove(dir Handle, name string) []byte { return encNamed(OpRemove, dir, name, 0) }

// Rmdir encodes a RMDIR request.
func Rmdir(dir Handle, name string) []byte { return encNamed(OpRmdir, dir, name, 0) }

// Readdir encodes a READDIR request.
func Readdir(dir Handle) []byte { return encNamed(OpReaddir, dir, "", 0) }

// Getattr encodes a GETATTR request.
func Getattr(fh Handle) []byte { return encNamed(OpGetattr, fh, "", 0) }

// Setattr encodes a SETATTR request (mode update plus truncate-to-size).
func Setattr(fh Handle, mode uint32, size uint64) []byte {
	var w wire.Writer
	w.U8(OpSetattr)
	w.U64(uint64(fh))
	w.U32(mode)
	w.U64(size)
	return w.B
}

// Read encodes a READ request.
func Read(fh Handle, offset, count uint32) []byte {
	var w wire.Writer
	w.U8(OpRead)
	w.U64(uint64(fh))
	w.U32(offset)
	w.U32(count)
	return w.B
}

// Write encodes a WRITE request.
func Write(fh Handle, offset uint32, data []byte) []byte {
	var w wire.Writer
	w.U8(OpWrite)
	w.U64(uint64(fh))
	w.U32(offset)
	w.Bytes(data)
	return w.B
}

// Rename encodes a RENAME request.
func Rename(fromDir Handle, fromName string, toDir Handle, toName string) []byte {
	var w wire.Writer
	w.U8(OpRename)
	w.U64(uint64(fromDir))
	w.Bytes([]byte(fromName))
	w.U64(uint64(toDir))
	w.Bytes([]byte(toName))
	return w.B
}

func encNamed(code uint8, h Handle, name string, mode uint32) []byte {
	var w wire.Writer
	w.U8(code)
	w.U64(uint64(h))
	w.Bytes([]byte(name))
	w.U32(mode)
	return w.B
}

// --- reply decoding ---------------------------------------------------------------

// DecodeAttrReply parses a reply carrying (status, attr).
func DecodeAttrReply(b []byte) (uint8, Attr, error) {
	r := wire.NewReader(b)
	st := r.U8()
	var a Attr
	if st == StatusOK {
		a = getAttr(r)
	}
	if r.Err() != nil {
		return StatusBad, Attr{}, fmt.Errorf("nfs: malformed reply")
	}
	return st, a, nil
}

// DecodeDataReply parses a READ reply carrying (status, data).
func DecodeDataReply(b []byte) (uint8, []byte, error) {
	r := wire.NewReader(b)
	st := r.U8()
	var data []byte
	if st == StatusOK {
		data = r.Bytes()
	}
	if r.Err() != nil {
		return StatusBad, nil, fmt.Errorf("nfs: malformed reply")
	}
	return st, data, nil
}

// DecodeDirReply parses a READDIR reply carrying (status, names).
func DecodeDirReply(b []byte) (uint8, []string, error) {
	r := wire.NewReader(b)
	st := r.U8()
	var names []string
	if st == StatusOK {
		n := r.SliceLen()
		for i := 0; i < n; i++ {
			names = append(names, string(r.Bytes()))
		}
	}
	if r.Err() != nil {
		return StatusBad, nil, fmt.Errorf("nfs: malformed reply")
	}
	return st, names, nil
}

func putAttr(w *wire.Writer, a Attr) {
	w.U64(uint64(a.Handle))
	w.U8(uint8(a.Type))
	w.U32(a.Mode)
	w.U64(a.Size)
	w.TS(a.Mtime)
	w.TS(a.Ctime)
}

func getAttr(r *wire.Reader) Attr {
	return Attr{
		Handle: Handle(r.U64()),
		Type:   FileType(r.U8()),
		Mode:   r.U32(),
		Size:   r.U64(),
		Mtime:  r.TS(),
		Ctime:  r.TS(),
	}
}

func statusReply(st uint8) []byte { return []byte{st} }

func attrReply(a Attr) []byte {
	var w wire.Writer
	w.U8(StatusOK)
	putAttr(&w, a)
	return w.B
}

// --- abstraction layer -------------------------------------------------------------

// newHandle derives a fresh deterministic handle from the agreed
// nondeterministic inputs (§3.1.4). Collisions fall back to rehashing with a
// counter, so the mapping stays deterministic across replicas.
func (s *Server) newHandle(nd types.NonDet, dir Handle, name string) Handle {
	for i := uint32(0); ; i++ {
		var buf []byte
		buf = append(buf, nd.Rand[:]...)
		buf = binary.BigEndian.AppendUint64(buf, uint64(dir))
		buf = append(buf, name...)
		buf = binary.BigEndian.AppendUint32(buf, i)
		d := types.DigestBytes(buf)
		h := Handle(binary.BigEndian.Uint64(d[:8]))
		if h <= RootHandle {
			continue // reserve 0 (invalid) and 1 (root)
		}
		if _, taken := s.inodes[h]; !taken {
			return h
		}
	}
}

// --- execution ----------------------------------------------------------------------

// Execute implements sm.StateMachine.
func (s *Server) Execute(op []byte, nd types.NonDet) []byte {
	s.Ops++
	r := wire.NewReader(op)
	code := r.U8()
	if r.Err() != nil {
		return statusReply(StatusBad)
	}
	switch code {
	case OpLookup:
		dir, name, _ := s.decNamed(r)
		return s.lookup(dir, name)
	case OpCreate:
		dir, name, mode := s.decNamed(r)
		return s.create(dir, name, mode, TypeFile, nd)
	case OpMkdir:
		dir, name, mode := s.decNamed(r)
		return s.create(dir, name, mode, TypeDir, nd)
	case OpRead:
		fh := Handle(r.U64())
		off, cnt := r.U32(), r.U32()
		return s.read(fh, off, cnt)
	case OpWrite:
		fh := Handle(r.U64())
		off := r.U32()
		data := r.Bytes()
		if r.Err() != nil {
			return statusReply(StatusBad)
		}
		return s.write(fh, off, data, nd)
	case OpGetattr:
		fh := Handle(r.U64())
		return s.getattr(fh)
	case OpSetattr:
		fh := Handle(r.U64())
		mode := r.U32()
		size := r.U64()
		return s.setattr(fh, mode, size, nd)
	case OpRemove:
		dir, name, _ := s.decNamed(r)
		return s.remove(dir, name, false)
	case OpRmdir:
		dir, name, _ := s.decNamed(r)
		return s.remove(dir, name, true)
	case OpRename:
		fd := Handle(r.U64())
		fn := string(r.Bytes())
		td := Handle(r.U64())
		tn := string(r.Bytes())
		if r.Err() != nil {
			return statusReply(StatusBad)
		}
		return s.rename(fd, fn, td, tn, nd)
	case OpReaddir:
		dir, _, _ := s.decNamed(r)
		return s.readdir(dir)
	default:
		return statusReply(StatusBad)
	}
}

func (s *Server) decNamed(r *wire.Reader) (Handle, string, uint32) {
	h := Handle(r.U64())
	name := string(r.Bytes())
	mode := r.U32()
	return h, name, mode
}

func (s *Server) dir(h Handle) (*inode, uint8) {
	in, ok := s.inodes[h]
	if !ok {
		return nil, StatusStale
	}
	if in.attr.Type != TypeDir {
		return nil, StatusNotDir
	}
	return in, StatusOK
}

func (s *Server) lookup(dir Handle, name string) []byte {
	d, st := s.dir(dir)
	if st != StatusOK {
		return statusReply(st)
	}
	h, ok := d.children[name]
	if !ok {
		return statusReply(StatusNoEnt)
	}
	return attrReply(s.inodes[h].attr)
}

func (s *Server) create(dir Handle, name string, mode uint32, ft FileType, nd types.NonDet) []byte {
	d, st := s.dir(dir)
	if st != StatusOK {
		return statusReply(st)
	}
	if name == "" {
		return statusReply(StatusBad)
	}
	if _, exists := d.children[name]; exists {
		return statusReply(StatusExist)
	}
	h := s.newHandle(nd, dir, name)
	in := &inode{attr: Attr{Handle: h, Type: ft, Mode: mode, Mtime: nd.Time, Ctime: nd.Time}}
	if ft == TypeDir {
		in.children = make(map[string]Handle)
	}
	s.inodes[h] = in
	d.children[name] = h
	d.attr.Mtime = nd.Time
	return attrReply(in.attr)
}

func (s *Server) read(fh Handle, off, cnt uint32) []byte {
	in, ok := s.inodes[fh]
	if !ok {
		return statusReply(StatusStale)
	}
	if in.attr.Type != TypeFile {
		return statusReply(StatusIsDir)
	}
	var data []byte
	if int(off) < len(in.data) {
		end := int(off) + int(cnt)
		if end > len(in.data) {
			end = len(in.data)
		}
		data = in.data[off:end]
	}
	var w wire.Writer
	w.U8(StatusOK)
	w.Bytes(data)
	return w.B
}

func (s *Server) write(fh Handle, off uint32, data []byte, nd types.NonDet) []byte {
	in, ok := s.inodes[fh]
	if !ok {
		return statusReply(StatusStale)
	}
	if in.attr.Type != TypeFile {
		return statusReply(StatusIsDir)
	}
	end := int(off) + len(data)
	if end > len(in.data) {
		grown := make([]byte, end)
		copy(grown, in.data)
		in.data = grown
	}
	copy(in.data[off:], data)
	in.attr.Size = uint64(len(in.data))
	in.attr.Mtime = nd.Time
	return attrReply(in.attr)
}

func (s *Server) getattr(fh Handle) []byte {
	in, ok := s.inodes[fh]
	if !ok {
		return statusReply(StatusStale)
	}
	return attrReply(in.attr)
}

func (s *Server) setattr(fh Handle, mode uint32, size uint64, nd types.NonDet) []byte {
	in, ok := s.inodes[fh]
	if !ok {
		return statusReply(StatusStale)
	}
	in.attr.Mode = mode
	if in.attr.Type == TypeFile && size != in.attr.Size {
		if size < uint64(len(in.data)) {
			in.data = in.data[:size]
		} else {
			grown := make([]byte, size)
			copy(grown, in.data)
			in.data = grown
		}
		in.attr.Size = size
	}
	in.attr.Ctime = nd.Time
	return attrReply(in.attr)
}

func (s *Server) remove(dir Handle, name string, wantDir bool) []byte {
	d, st := s.dir(dir)
	if st != StatusOK {
		return statusReply(st)
	}
	h, ok := d.children[name]
	if !ok {
		return statusReply(StatusNoEnt)
	}
	in := s.inodes[h]
	if wantDir {
		if in.attr.Type != TypeDir {
			return statusReply(StatusNotDir)
		}
		if len(in.children) != 0 {
			return statusReply(StatusNotEmpty)
		}
	} else if in.attr.Type == TypeDir {
		return statusReply(StatusIsDir)
	}
	delete(d.children, name)
	delete(s.inodes, h)
	return statusReply(StatusOK)
}

func (s *Server) rename(fromDir Handle, fromName string, toDir Handle, toName string, nd types.NonDet) []byte {
	fd, st := s.dir(fromDir)
	if st != StatusOK {
		return statusReply(st)
	}
	td, st := s.dir(toDir)
	if st != StatusOK {
		return statusReply(st)
	}
	h, ok := fd.children[fromName]
	if !ok {
		return statusReply(StatusNoEnt)
	}
	if toName == "" {
		return statusReply(StatusBad)
	}
	if existing, exists := td.children[toName]; exists {
		ex := s.inodes[existing]
		if ex.attr.Type == TypeDir && len(ex.children) != 0 {
			return statusReply(StatusNotEmpty)
		}
		delete(s.inodes, existing)
	}
	delete(fd.children, fromName)
	td.children[toName] = h
	fd.attr.Mtime = nd.Time
	td.attr.Mtime = nd.Time
	return statusReply(StatusOK)
}

func (s *Server) readdir(dir Handle) []byte {
	d, st := s.dir(dir)
	if st != StatusOK {
		return statusReply(st)
	}
	names := make([]string, 0, len(d.children))
	for name := range d.children {
		names = append(names, name)
	}
	sort.Strings(names)
	var w wire.Writer
	w.U8(StatusOK)
	w.Len(len(names))
	for _, n := range names {
		w.Bytes([]byte(n))
	}
	return w.B
}

// --- checkpointing ---------------------------------------------------------------------

// Checkpoint implements sm.StateMachine with a canonical (handle-sorted)
// encoding.
func (s *Server) Checkpoint() []byte {
	handles := make([]Handle, 0, len(s.inodes))
	for h := range s.inodes {
		handles = append(handles, h)
	}
	sort.Slice(handles, func(i, j int) bool { return handles[i] < handles[j] })
	var w wire.Writer
	w.Len(len(handles))
	for _, h := range handles {
		in := s.inodes[h]
		putAttr(&w, in.attr)
		w.Bytes(in.data)
		names := make([]string, 0, len(in.children))
		for n := range in.children {
			names = append(names, n)
		}
		sort.Strings(names)
		w.Len(len(names))
		for _, n := range names {
			w.Bytes([]byte(n))
			w.U64(uint64(in.children[n]))
		}
	}
	return w.B
}

// Restore implements sm.StateMachine.
func (s *Server) Restore(data []byte) error {
	r := wire.NewReader(data)
	n := r.SliceLen()
	inodes := make(map[Handle]*inode, n)
	for i := 0; i < n; i++ {
		attr := getAttr(r)
		in := &inode{attr: attr, data: r.Bytes()}
		k := r.SliceLen()
		if attr.Type == TypeDir {
			in.children = make(map[string]Handle, k)
		}
		for j := 0; j < k; j++ {
			name := string(r.Bytes())
			child := Handle(r.U64())
			if in.children != nil {
				in.children[name] = child
			}
		}
		inodes[attr.Handle] = in
	}
	if r.Err() != nil || r.Remaining() != 0 {
		return fmt.Errorf("nfs: malformed checkpoint")
	}
	s.inodes = inodes
	return nil
}
