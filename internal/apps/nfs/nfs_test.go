package nfs

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/types"
)

func nd(i int) types.NonDet {
	t := types.Timestamp(1000 + i)
	return types.NonDet{Time: t, Rand: types.ComputeNonDetRand(types.SeqNum(i), t)}
}

func mustAttr(t *testing.T, s *Server, op []byte, step int) Attr {
	t.Helper()
	st, a, err := DecodeAttrReply(s.Execute(op, nd(step)))
	if err != nil || st != StatusOK {
		t.Fatalf("op failed: status=%s err=%v", StatusName(st), err)
	}
	return a
}

func TestCreateLookupReadWrite(t *testing.T) {
	s := New()
	f := mustAttr(t, s, Create(RootHandle, "hello.txt", 0o644), 1)
	if f.Type != TypeFile || f.Handle == 0 || f.Handle == RootHandle {
		t.Fatalf("bad create attr: %+v", f)
	}
	// Lookup finds it with identical attributes.
	l := mustAttr(t, s, Lookup(RootHandle, "hello.txt"), 2)
	if l.Handle != f.Handle {
		t.Fatalf("lookup handle %d != create handle %d", l.Handle, f.Handle)
	}
	// Write then read back.
	w := mustAttr(t, s, Write(f.Handle, 0, []byte("hello world")), 3)
	if w.Size != 11 {
		t.Errorf("size after write = %d", w.Size)
	}
	if w.Mtime != nd(3).Time {
		t.Errorf("mtime = %d, want agreed time %d", w.Mtime, nd(3).Time)
	}
	st, data, err := DecodeDataReply(s.Execute(Read(f.Handle, 6, 100), nd(4)))
	if err != nil || st != StatusOK || string(data) != "world" {
		t.Errorf("read = %s %q %v", StatusName(st), data, err)
	}
	// Sparse write extends with zeros.
	mustAttr(t, s, Write(f.Handle, 20, []byte("x")), 5)
	st, data, _ = DecodeDataReply(s.Execute(Read(f.Handle, 0, 100), nd(6)))
	if st != StatusOK || len(data) != 21 || data[15] != 0 {
		t.Errorf("sparse read status=%s len=%d", StatusName(st), len(data))
	}
}

func TestMkdirReaddirRemove(t *testing.T) {
	s := New()
	d := mustAttr(t, s, Mkdir(RootHandle, "src", 0o755), 1)
	mustAttr(t, s, Create(d.Handle, "a.go", 0o644), 2)
	mustAttr(t, s, Create(d.Handle, "b.go", 0o644), 3)
	st, names, err := DecodeDirReply(s.Execute(Readdir(d.Handle), nd(4)))
	if err != nil || st != StatusOK {
		t.Fatalf("readdir: %s %v", StatusName(st), err)
	}
	if len(names) != 2 || names[0] != "a.go" || names[1] != "b.go" {
		t.Errorf("readdir = %v, want sorted [a.go b.go]", names)
	}
	// Removing a non-empty directory fails.
	if st := s.Execute(Rmdir(RootHandle, "src"), nd(5))[0]; st != StatusNotEmpty {
		t.Errorf("rmdir non-empty = %s", StatusName(st))
	}
	if st := s.Execute(Remove(d.Handle, "a.go"), nd(6))[0]; st != StatusOK {
		t.Errorf("remove = %s", StatusName(st))
	}
	if st := s.Execute(Remove(d.Handle, "b.go"), nd(7))[0]; st != StatusOK {
		t.Errorf("remove = %s", StatusName(st))
	}
	if st := s.Execute(Rmdir(RootHandle, "src"), nd(8))[0]; st != StatusOK {
		t.Errorf("rmdir empty = %s", StatusName(st))
	}
	if s.NumInodes() != 1 {
		t.Errorf("inodes = %d, want only root", s.NumInodes())
	}
}

func TestRename(t *testing.T) {
	s := New()
	f := mustAttr(t, s, Create(RootHandle, "old", 0o644), 1)
	mustAttr(t, s, Write(f.Handle, 0, []byte("content")), 2)
	if st := s.Execute(Rename(RootHandle, "old", RootHandle, "new"), nd(3))[0]; st != StatusOK {
		t.Fatalf("rename = %s", StatusName(st))
	}
	if st := s.Execute(Lookup(RootHandle, "old"), nd(4))[0]; st != StatusNoEnt {
		t.Error("old name still resolves")
	}
	l := mustAttr(t, s, Lookup(RootHandle, "new"), 5)
	if l.Handle != f.Handle {
		t.Error("rename changed the handle")
	}
	// Rename over an existing file replaces it.
	mustAttr(t, s, Create(RootHandle, "other", 0o644), 6)
	if st := s.Execute(Rename(RootHandle, "new", RootHandle, "other"), nd(7))[0]; st != StatusOK {
		t.Fatalf("rename-over = %s", StatusName(st))
	}
	l = mustAttr(t, s, Lookup(RootHandle, "other"), 8)
	if l.Handle != f.Handle {
		t.Error("rename-over lost the source inode")
	}
}

func TestSetattrTruncateAndExtend(t *testing.T) {
	s := New()
	f := mustAttr(t, s, Create(RootHandle, "t", 0o644), 1)
	mustAttr(t, s, Write(f.Handle, 0, []byte("0123456789")), 2)
	a := mustAttr(t, s, Setattr(f.Handle, 0o600, 4), 3)
	if a.Size != 4 || a.Mode != 0o600 {
		t.Errorf("attr after truncate: %+v", a)
	}
	st, data, _ := DecodeDataReply(s.Execute(Read(f.Handle, 0, 100), nd(4)))
	if st != StatusOK || string(data) != "0123" {
		t.Errorf("read after truncate = %q", data)
	}
	a = mustAttr(t, s, Setattr(f.Handle, 0o600, 8), 5)
	if a.Size != 8 {
		t.Errorf("size after extend = %d", a.Size)
	}
}

func TestErrorCases(t *testing.T) {
	s := New()
	f := mustAttr(t, s, Create(RootHandle, "f", 0o644), 1)
	cases := []struct {
		op   []byte
		want uint8
		desc string
	}{
		{Lookup(999, "x"), StatusStale, "lookup in missing dir"},
		{Lookup(f.Handle, "x"), StatusNotDir, "lookup in a file"},
		{Create(RootHandle, "f", 0o644), StatusExist, "create duplicate"},
		{Create(RootHandle, "", 0o644), StatusBad, "create empty name"},
		{Read(999, 0, 1), StatusStale, "read stale handle"},
		{Read(RootHandle, 0, 1), StatusIsDir, "read a directory"},
		{Write(RootHandle, 0, []byte("x")), StatusIsDir, "write a directory"},
		{Remove(RootHandle, "missing"), StatusNoEnt, "remove missing"},
		{Remove(RootHandle, "f"), StatusOK, "remove file"},
		{[]byte{99}, StatusBad, "unknown op"},
		{nil, StatusBad, "empty op"},
	}
	for i, c := range cases {
		if st := s.Execute(c.op, nd(10+i)); len(st) == 0 || st[0] != c.want {
			t.Errorf("%s: status = %s, want %s", c.desc, StatusName(st[0]), StatusName(c.want))
		}
	}
}

func TestHandlesDeterministicAcrossReplicas(t *testing.T) {
	// Two replicas executing the same ops with the same agreed
	// nondeterminism must assign identical handles (§3.1.4).
	s1, s2 := New(), New()
	for i := 0; i < 20; i++ {
		op := Create(RootHandle, fmt.Sprintf("f%d", i), 0o644)
		_, a1, _ := DecodeAttrReply(s1.Execute(op, nd(i)))
		_, a2, _ := DecodeAttrReply(s2.Execute(op, nd(i)))
		if a1.Handle != a2.Handle {
			t.Fatalf("replicas diverged on handle for f%d: %d vs %d", i, a1.Handle, a2.Handle)
		}
	}
	// But handles differ when the agreed randomness differs.
	s3 := New()
	_, a3, _ := DecodeAttrReply(s3.Execute(Create(RootHandle, "f0", 0o644), nd(999)))
	_, a1, _ := DecodeAttrReply(New().Execute(Create(RootHandle, "f0", 0o644), nd(0)))
	if a3.Handle == a1.Handle {
		t.Error("handles do not depend on the agreed randomness")
	}
}

func TestCheckpointRestoreRoundTrip(t *testing.T) {
	s := New()
	d := mustAttr(t, s, Mkdir(RootHandle, "dir", 0o755), 1)
	f := mustAttr(t, s, Create(d.Handle, "file", 0o644), 2)
	mustAttr(t, s, Write(f.Handle, 0, []byte("payload")), 3)

	ckpt := s.Checkpoint()
	s2 := New()
	if err := s2.Restore(ckpt); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s2.Checkpoint(), ckpt) {
		t.Fatal("restore-then-checkpoint is not idempotent")
	}
	st, data, _ := DecodeDataReply(s2.Execute(Read(f.Handle, 0, 100), nd(4)))
	if st != StatusOK || string(data) != "payload" {
		t.Errorf("restored read = %s %q", StatusName(st), data)
	}
	// Checkpoints are canonical: same logical state, same bytes.
	if !bytes.Equal(s.Checkpoint(), s2.Checkpoint()) {
		t.Error("checkpoint encoding is not canonical")
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	s := New()
	if err := s.Restore([]byte{1, 2, 3}); err == nil {
		t.Error("Restore accepted garbage")
	}
}

func TestQuickDeterminism(t *testing.T) {
	// Property: any sequence of create/write/read ops replayed on two
	// replicas yields byte-identical replies and checkpoints.
	f := func(names []string, payloads [][]byte) bool {
		s1, s2 := New(), New()
		step := 0
		for i, name := range names {
			if name == "" {
				name = "x"
			}
			step++
			op := Create(RootHandle, name, 0o644)
			r1 := s1.Execute(op, nd(step))
			r2 := s2.Execute(op, nd(step))
			if !bytes.Equal(r1, r2) {
				return false
			}
			if i < len(payloads) {
				_, a, err := DecodeAttrReply(r1)
				if err != nil || a.Handle == 0 {
					continue
				}
				step++
				w := Write(a.Handle, 0, payloads[i])
				if !bytes.Equal(s1.Execute(w, nd(step)), s2.Execute(w, nd(step))) {
					return false
				}
			}
		}
		return bytes.Equal(s1.Checkpoint(), s2.Checkpoint())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
