// Package kv is a replicated key-value store state machine with a small
// text protocol, used by examples and benchmarks that need a service with
// meaningful confidential state.
//
// Operations (length-framed binary via internal/wire):
//
//	PUT key value → "OK"
//	GET key       → value, or "ERR: no such key"
//	DEL key       → "OK", or "ERR: no such key"
//	LIST prefix   → keys joined by '\n' (sorted, deterministic)
//	CAS key old new → "OK" or "ERR: mismatch"
//
// All iteration is over sorted keys so replicas never diverge.
package kv

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/types"
	"repro/internal/wire"
)

// Op codes.
const (
	OpPut uint8 = iota + 1
	OpGet
	OpDel
	OpList
	OpCAS
)

// Store is the state machine. The zero value is not ready; use New.
type Store struct {
	data map[string][]byte

	// Metrics counts applied operations for tests and benchmarks.
	Ops uint64
}

// New returns an empty store.
func New() *Store { return &Store{data: make(map[string][]byte)} }

// Len returns the number of keys (for assertions).
func (s *Store) Len() int { return len(s.data) }

// Get reads a key directly (test helper; not part of the replicated API).
func (s *Store) Get(key string) ([]byte, bool) {
	v, ok := s.data[key]
	return v, ok
}

// --- operation encoding ------------------------------------------------------

// Put encodes a PUT operation.
func Put(key string, value []byte) []byte { return encode(OpPut, key, value, nil) }

// GetOp encodes a GET operation.
func GetOp(key string) []byte { return encode(OpGet, key, nil, nil) }

// Del encodes a DEL operation.
func Del(key string) []byte { return encode(OpDel, key, nil, nil) }

// List encodes a LIST operation.
func List(prefix string) []byte { return encode(OpList, prefix, nil, nil) }

// CAS encodes a compare-and-swap operation.
func CAS(key string, old, new []byte) []byte { return encode(OpCAS, key, old, new) }

func encode(code uint8, key string, a, b []byte) []byte {
	var w wire.Writer
	w.U8(code)
	w.Bytes([]byte(key))
	w.Bytes(a)
	w.Bytes(b)
	return w.B
}

// ErrMalformed reports an undecodable operation.
var ErrMalformed = errors.New("kv: malformed operation")

func decode(op []byte) (code uint8, key string, a, b []byte, err error) {
	r := wire.NewReader(op)
	code = r.U8()
	key = string(r.Bytes())
	a = r.Bytes()
	b = r.Bytes()
	if r.Err() != nil || r.Remaining() != 0 {
		return 0, "", nil, nil, ErrMalformed
	}
	return code, key, a, b, nil
}

// Execute implements sm.StateMachine.
func (s *Store) Execute(op []byte, nd types.NonDet) []byte {
	s.Ops++
	code, key, a, b, err := decode(op)
	if err != nil {
		return []byte("ERR: malformed")
	}
	switch code {
	case OpPut:
		s.data[key] = append([]byte(nil), a...)
		return []byte("OK")
	case OpGet:
		v, ok := s.data[key]
		if !ok {
			return []byte("ERR: no such key")
		}
		return append([]byte(nil), v...)
	case OpDel:
		if _, ok := s.data[key]; !ok {
			return []byte("ERR: no such key")
		}
		delete(s.data, key)
		return []byte("OK")
	case OpList:
		keys := make([]string, 0, len(s.data))
		for k := range s.data {
			if strings.HasPrefix(k, key) {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		return []byte(strings.Join(keys, "\n"))
	case OpCAS:
		cur, ok := s.data[key]
		if !ok || !bytes.Equal(cur, a) {
			return []byte("ERR: mismatch")
		}
		s.data[key] = append([]byte(nil), b...)
		return []byte("OK")
	default:
		return []byte("ERR: unknown op")
	}
}

// Query implements sm.Querier: GET and LIST are answered read-only (the
// applied-operation counter is untouched), every mutating or malformed
// operation reports ok=false so it goes through full agreement.
func (s *Store) Query(op []byte) ([]byte, bool) {
	code, key, _, _, err := decode(op)
	if err != nil {
		return nil, false
	}
	switch code {
	case OpGet:
		v, ok := s.data[key]
		if !ok {
			return []byte("ERR: no such key"), true
		}
		return append([]byte(nil), v...), true
	case OpList:
		keys := make([]string, 0, len(s.data))
		for k := range s.data {
			if strings.HasPrefix(k, key) {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		return []byte(strings.Join(keys, "\n")), true
	default:
		return nil, false
	}
}

// Checkpoint implements sm.StateMachine with a canonical (sorted) encoding.
func (s *Store) Checkpoint() []byte {
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var w wire.Writer
	w.Len(len(keys))
	for _, k := range keys {
		w.Bytes([]byte(k))
		w.Bytes(s.data[k])
	}
	return w.B
}

// Restore implements sm.StateMachine.
func (s *Store) Restore(data []byte) error {
	r := wire.NewReader(data)
	n := r.SliceLen()
	m := make(map[string][]byte, n)
	for i := 0; i < n; i++ {
		k := string(r.Bytes())
		m[k] = r.Bytes()
	}
	if r.Err() != nil || r.Remaining() != 0 {
		return fmt.Errorf("kv: malformed checkpoint")
	}
	s.data = m
	return nil
}
