package kv

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/types"
)

var nd = types.NonDet{Time: 1}

func TestPutGetDel(t *testing.T) {
	s := New()
	if got := string(s.Execute(Put("k", []byte("v")), nd)); got != "OK" {
		t.Fatalf("put = %q", got)
	}
	if got := string(s.Execute(GetOp("k"), nd)); got != "v" {
		t.Fatalf("get = %q", got)
	}
	if got := string(s.Execute(Del("k"), nd)); got != "OK" {
		t.Fatalf("del = %q", got)
	}
	if got := string(s.Execute(GetOp("k"), nd)); got != "ERR: no such key" {
		t.Fatalf("get after del = %q", got)
	}
	if got := string(s.Execute(Del("k"), nd)); got != "ERR: no such key" {
		t.Fatalf("del missing = %q", got)
	}
}

func TestListSortedByPrefix(t *testing.T) {
	s := New()
	for _, k := range []string{"b/2", "a/1", "b/1", "c"} {
		s.Execute(Put(k, []byte("x")), nd)
	}
	if got := string(s.Execute(List("b/"), nd)); got != "b/1\nb/2" {
		t.Errorf("list b/ = %q", got)
	}
	if got := string(s.Execute(List(""), nd)); got != "a/1\nb/1\nb/2\nc" {
		t.Errorf("list all = %q", got)
	}
}

func TestCAS(t *testing.T) {
	s := New()
	s.Execute(Put("k", []byte("old")), nd)
	if got := string(s.Execute(CAS("k", []byte("wrong"), []byte("new")), nd)); got != "ERR: mismatch" {
		t.Errorf("cas wrong old = %q", got)
	}
	if got := string(s.Execute(CAS("k", []byte("old"), []byte("new")), nd)); got != "OK" {
		t.Errorf("cas = %q", got)
	}
	if got := string(s.Execute(GetOp("k"), nd)); got != "new" {
		t.Errorf("get after cas = %q", got)
	}
	if got := string(s.Execute(CAS("missing", nil, []byte("v")), nd)); got != "ERR: mismatch" {
		t.Errorf("cas missing = %q", got)
	}
}

func TestMalformedOps(t *testing.T) {
	s := New()
	for _, op := range [][]byte{nil, {0}, {99, 0, 0, 0, 1}, {OpPut}} {
		got := string(s.Execute(op, nd))
		if got != "ERR: malformed" && got != "ERR: unknown op" {
			t.Errorf("Execute(%v) = %q, want an error", op, got)
		}
	}
}

func TestValueIsolation(t *testing.T) {
	// Stored values must be copies: mutating the op buffer afterward must
	// not corrupt the store.
	s := New()
	op := Put("k", []byte("aaa"))
	s.Execute(op, nd)
	for i := range op {
		op[i] = 0xFF
	}
	if got := string(s.Execute(GetOp("k"), nd)); got != "aaa" {
		t.Errorf("stored value aliased the op buffer: %q", got)
	}
}

func TestCheckpointRestore(t *testing.T) {
	s := New()
	s.Execute(Put("a", []byte("1")), nd)
	s.Execute(Put("b", []byte("2")), nd)
	ckpt := s.Checkpoint()

	s2 := New()
	if err := s2.Restore(ckpt); err != nil {
		t.Fatal(err)
	}
	if got := string(s2.Execute(GetOp("b"), nd)); got != "2" {
		t.Errorf("restored get = %q", got)
	}
	if !bytes.Equal(s2.Checkpoint(), ckpt) {
		t.Error("checkpoint not canonical after restore")
	}
	if err := s2.Restore([]byte{1, 2}); err == nil {
		t.Error("Restore accepted garbage")
	}
}

func TestQuickReplicaDeterminism(t *testing.T) {
	f := func(keys []string, vals [][]byte) bool {
		s1, s2 := New(), New()
		for i, k := range keys {
			var v []byte
			if i < len(vals) {
				v = vals[i]
			}
			ops := [][]byte{Put(k, v), GetOp(k), List(""), Del(k)}
			for _, op := range ops[:1+i%3] {
				if !bytes.Equal(s1.Execute(op, nd), s2.Execute(op, nd)) {
					return false
				}
			}
		}
		return bytes.Equal(s1.Checkpoint(), s2.Checkpoint())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
