package nullsrv

import (
	"bytes"
	"testing"

	"repro/internal/types"
)

func TestReplySizeAndFingerprint(t *testing.T) {
	s := New(4096)
	req := MakeRequest(40)
	reply := s.Execute(req, types.NonDet{})
	if len(reply) != 4096 {
		t.Fatalf("reply size = %d", len(reply))
	}
	want := types.DigestBytes(req)
	if !bytes.Equal(reply[:32], want[:]) {
		t.Error("reply does not fingerprint the request")
	}
	if s.Executed != 1 {
		t.Errorf("Executed = %d", s.Executed)
	}
}

func TestSmallReply(t *testing.T) {
	s := New(8)
	reply := s.Execute(MakeRequest(4096), types.NonDet{})
	if len(reply) != 8 {
		t.Fatalf("reply size = %d", len(reply))
	}
}

func TestSpinBurnsDeterministically(t *testing.T) {
	a, b := New(40), New(40)
	a.Spin, b.Spin = 1000, 1000
	ra := a.Execute(MakeRequest(40), types.NonDet{})
	rb := b.Execute(MakeRequest(40), types.NonDet{})
	if !bytes.Equal(ra, rb) {
		t.Error("spinning servers diverged")
	}
}

func TestCheckpointRestore(t *testing.T) {
	s := New(40)
	s.Execute(MakeRequest(1), types.NonDet{})
	s.Execute(MakeRequest(1), types.NonDet{})
	ckpt := s.Checkpoint()
	s2 := New(40)
	if err := s2.Restore(ckpt); err != nil {
		t.Fatal(err)
	}
	if s2.Executed != 2 {
		t.Errorf("restored Executed = %d", s2.Executed)
	}
	// Replies embed the counter, so restored replicas stay consistent.
	r1 := s.Execute(MakeRequest(2), types.NonDet{})
	r2 := s2.Execute(MakeRequest(2), types.NonDet{})
	if !bytes.Equal(r1, r2) {
		t.Error("restored replica diverged")
	}
}
