// Package nullsrv is the paper's null-server microbenchmark application
// (§5.2): it reads a request of a specified size and produces a reply of a
// specified size with no additional processing. A configurable synthetic
// processing cost supports the relative-cost experiments of Figure 4, where
// application execution time is the independent variable.
package nullsrv

import (
	"encoding/binary"
	"repro/internal/types"
)

// Server is the null state machine.
type Server struct {
	// ReplySize is the reply body size in bytes.
	ReplySize int
	// Spin, when positive, burns approximately that many iterations of
	// deterministic work per request, standing in for application
	// processing time (Figure 4's x axis).
	Spin int

	// Executed counts requests (for assertions).
	Executed uint64

	sink uint64
}

// New returns a null server producing replySize-byte replies.
func New(replySize int) *Server { return &Server{ReplySize: replySize} }

// MakeRequest builds a request body of the given size.
func MakeRequest(size int) []byte {
	b := make([]byte, size)
	for i := range b {
		b[i] = byte(i)
	}
	return b
}

// Execute implements sm.StateMachine: echo-shaped, fixed-size reply.
func (s *Server) Execute(op []byte, nd types.NonDet) []byte {
	s.Executed++
	for i := 0; i < s.Spin; i++ {
		s.sink = s.sink*1103515245 + 12345 // deterministic busy-work
	}
	reply := make([]byte, s.ReplySize)
	// Echo a fingerprint of the request so correctness is checkable.
	d := types.DigestBytes(op)
	copy(reply, d[:])
	if s.ReplySize >= 40 {
		binary.BigEndian.PutUint64(reply[32:40], s.Executed)
	}
	return reply
}

// Query implements sm.Querier: every null-server request is read-only by
// construction (the reply is a pure function of the request and the current
// state), so the certified read path can benchmark against the same
// operation mix Execute serves. The request counter is state, not a side
// effect of reading, and is left untouched.
func (s *Server) Query(op []byte) ([]byte, bool) {
	for i := 0; i < s.Spin; i++ {
		_ = i // same synthetic cost as Execute, without mutating the sink
	}
	reply := make([]byte, s.ReplySize)
	d := types.DigestBytes(op)
	copy(reply, d[:])
	if s.ReplySize >= 40 {
		binary.BigEndian.PutUint64(reply[32:40], s.Executed)
	}
	return reply, true
}

// Checkpoint implements sm.StateMachine.
func (s *Server) Checkpoint() []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], s.Executed)
	return b[:]
}

// Restore implements sm.StateMachine.
func (s *Server) Restore(data []byte) error {
	if len(data) == 8 {
		s.Executed = binary.BigEndian.Uint64(data)
	}
	return nil
}
