package registry

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/apps/kv"
	"repro/internal/sm"
	"repro/internal/types"
)

func TestBuiltinsRegistered(t *testing.T) {
	want := []string{"counter", "kv", "nfs", "null"}
	got := Names()
	for _, w := range want {
		found := false
		for _, g := range got {
			if g == w {
				found = true
			}
		}
		if !found {
			t.Fatalf("builtin %q missing from registry (have %v)", w, got)
		}
	}
}

func TestLookupDefaultsToKV(t *testing.T) {
	e, ok := Lookup("")
	if !ok || e.Name != "kv" {
		t.Fatalf("empty name should resolve to kv, got %+v ok=%v", e, ok)
	}
}

func TestFactoryBuildsFreshInstances(t *testing.T) {
	f, err := Factory("counter")
	if err != nil {
		t.Fatal(err)
	}
	a, b := f(), f()
	if a == b {
		t.Fatal("factory returned the same instance twice")
	}
	a.Execute([]byte("inc"), types.NonDet{})
	if got := b.Execute([]byte("get"), types.NonDet{}); string(got) != "0" {
		t.Fatalf("instances share state: fresh counter reads %q", got)
	}
}

func TestFactoryUnknown(t *testing.T) {
	if _, err := Factory("no-such-app"); err == nil {
		t.Fatal("expected error for unknown app")
	}
}

func TestEncodeOpKV(t *testing.T) {
	op, err := EncodeOp("kv", []string{"put", "k", "v"})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(op, kv.Put("k", []byte("v"))) {
		t.Fatal("EncodeOp(kv put) disagrees with kv.Put")
	}
	if _, err := EncodeOp("kv", []string{"frobnicate"}); err == nil {
		t.Fatal("expected error for unknown kv op")
	}
}

func TestEncodeOpNoEncoding(t *testing.T) {
	if _, err := EncodeOp("nfs", []string{"anything"}); err == nil {
		t.Fatal("nfs has no CLI encoding; expected error")
	}
}

func TestRegisterCustom(t *testing.T) {
	Register(Entry{
		Name: "test-echo",
		New: func() sm.StateMachine {
			return sm.Func(func(op []byte, nd types.NonDet) []byte { return op })
		},
	})
	f, err := Factory("test-echo")
	if err != nil {
		t.Fatal(err)
	}
	if got := f().Execute([]byte("hi"), types.NonDet{}); string(got) != "hi" {
		t.Fatalf("echo returned %q", got)
	}
	if !reflect.DeepEqual(Names(), Names()) {
		t.Fatal("Names not deterministic")
	}
}
