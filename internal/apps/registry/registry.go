// Package registry is the shared catalog of replicated applications. The
// deploy package and the public saebft API both resolve application names
// ("kv", "counter", "nfs", "null") through it, so a name in a deployment
// config and a name passed to saebft.WithApp mean the same thing, and
// embedders can register their own state machines under new names.
package registry

import (
	"fmt"
	"sort"
	"strconv"
	"sync"

	"repro/internal/apps/counter"
	"repro/internal/apps/kv"
	"repro/internal/apps/nfs"
	"repro/internal/apps/nullsrv"
	"repro/internal/sm"
)

// Entry describes one registered application.
type Entry struct {
	// Name is the identifier used in deployment configs and WithApp.
	Name string

	// New builds one fresh state machine instance per hosting replica.
	New func() sm.StateMachine

	// Encode optionally translates command-line words into an encoded
	// operation, enabling the generic CLI client. Nil when the app has no
	// sensible textual operation syntax.
	Encode func(args []string) ([]byte, error)

	// Usage is a one-line operation synopsis shown by CLI tools; empty
	// when Encode is nil.
	Usage string
}

var (
	mu      sync.RWMutex
	entries = make(map[string]Entry)
)

// Register adds or replaces an application. It panics on an empty name or
// nil factory — registration is a programming-time act, not a runtime one.
func Register(e Entry) {
	if e.Name == "" {
		panic("registry: entry has empty name")
	}
	if e.New == nil {
		panic("registry: entry " + e.Name + " has nil factory")
	}
	mu.Lock()
	defer mu.Unlock()
	entries[e.Name] = e
}

// Lookup resolves a name. The empty name resolves to "kv", the historical
// default of deployment configs.
func Lookup(name string) (Entry, bool) {
	if name == "" {
		name = "kv"
	}
	mu.RLock()
	defer mu.RUnlock()
	e, ok := entries[name]
	return e, ok
}

// Factory resolves a name straight to a state-machine factory.
func Factory(name string) (func() sm.StateMachine, error) {
	e, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("registry: unknown app %q (have %v)", name, Names())
	}
	return e.New, nil
}

// Names lists registered applications in sorted order.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, 0, len(entries))
	for n := range entries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// EncodeOp translates command-line words into an operation for the named
// application.
func EncodeOp(app string, args []string) ([]byte, error) {
	e, ok := Lookup(app)
	if !ok {
		return nil, fmt.Errorf("registry: unknown app %q (have %v)", app, Names())
	}
	if e.Encode == nil {
		return nil, fmt.Errorf("registry: app %q has no CLI encoding; drive it programmatically", e.Name)
	}
	if len(args) == 0 {
		return nil, fmt.Errorf("registry: no operation given (%s)", e.Usage)
	}
	return e.Encode(args)
}

func encodeKV(args []string) ([]byte, error) {
	switch args[0] {
	case "put":
		if len(args) != 3 {
			return nil, fmt.Errorf("usage: put KEY VALUE")
		}
		return kv.Put(args[1], []byte(args[2])), nil
	case "get":
		if len(args) != 2 {
			return nil, fmt.Errorf("usage: get KEY")
		}
		return kv.GetOp(args[1]), nil
	case "del":
		if len(args) != 2 {
			return nil, fmt.Errorf("usage: del KEY")
		}
		return kv.Del(args[1]), nil
	case "list":
		prefix := ""
		if len(args) > 1 {
			prefix = args[1]
		}
		return kv.List(prefix), nil
	case "cas":
		if len(args) != 4 {
			return nil, fmt.Errorf("usage: cas KEY OLD NEW")
		}
		return kv.CAS(args[1], []byte(args[2]), []byte(args[3])), nil
	default:
		return nil, fmt.Errorf("unknown kv operation %q", args[0])
	}
}

func encodeCounter(args []string) ([]byte, error) {
	switch args[0] {
	case "inc":
		return []byte("inc"), nil
	case "add":
		if len(args) != 2 {
			return nil, fmt.Errorf("usage: add N")
		}
		if _, err := strconv.Atoi(args[1]); err != nil {
			return nil, fmt.Errorf("add: %q is not a number", args[1])
		}
		return []byte("add " + args[1]), nil
	case "get-count", "get":
		return []byte("get"), nil
	default:
		return nil, fmt.Errorf("unknown counter operation %q", args[0])
	}
}

func init() {
	Register(Entry{
		Name:   "kv",
		New:    func() sm.StateMachine { return kv.New() },
		Encode: encodeKV,
		Usage:  "put K V | get K | del K | list [P] | cas K OLD NEW",
	})
	Register(Entry{
		Name:   "counter",
		New:    func() sm.StateMachine { return counter.New() },
		Encode: encodeCounter,
		Usage:  "inc | add N | get-count",
	})
	Register(Entry{
		Name: "nfs",
		New:  func() sm.StateMachine { return nfs.New() },
	})
	Register(Entry{
		Name: "null",
		New:  func() sm.StateMachine { return nullsrv.New(128) },
	})
}
