package counter

import (
	"testing"

	"repro/internal/types"
)

var nd types.NonDet

func TestOperations(t *testing.T) {
	c := New()
	cases := []struct {
		op, want string
	}{
		{"inc", "1"},
		{"inc", "2"},
		{"add 40", "42"},
		{"get", "42"},
		{"add -2", "40"},
		{"add x", "ERR"},
		{"bogus", "ERR"},
		{"get", "40"},
	}
	for _, tc := range cases {
		if got := string(c.Execute([]byte(tc.op), nd)); got != tc.want {
			t.Errorf("%q = %q, want %q", tc.op, got, tc.want)
		}
	}
	if c.Value() != 40 {
		t.Errorf("Value = %d", c.Value())
	}
}

func TestCheckpointRestore(t *testing.T) {
	c := New()
	c.Execute([]byte("add 7"), nd)
	ckpt := c.Checkpoint()

	c2 := New()
	if err := c2.Restore(ckpt); err != nil {
		t.Fatal(err)
	}
	if c2.Value() != 7 {
		t.Errorf("restored value = %d", c2.Value())
	}
	if err := c2.Restore([]byte{1}); err == nil {
		t.Error("Restore accepted a short checkpoint")
	}
}
