// Package counter is a minimal deterministic state machine used by the
// quickstart example and integration tests: a replicated counter with
// increment, add, and read operations.
//
// Operations (ASCII):
//
//	"inc"    → increment by one, reply with the new value
//	"add N"  → add decimal N, reply with the new value
//	"get"    → reply with the current value
//
// Replies are the decimal value. Unknown operations reply "ERR".
package counter

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/types"
)

// Counter is the state machine. The zero value is ready to use.
type Counter struct {
	value int64
}

// New returns a counter starting at zero.
func New() *Counter { return &Counter{} }

// Value returns the current count (for test assertions).
func (c *Counter) Value() int64 { return c.value }

// Execute implements sm.StateMachine.
func (c *Counter) Execute(op []byte, nd types.NonDet) []byte {
	s := string(op)
	switch {
	case s == "inc":
		c.value++
	case s == "get":
		// fall through to reply
	case strings.HasPrefix(s, "add "):
		n, err := strconv.ParseInt(strings.TrimPrefix(s, "add "), 10, 64)
		if err != nil {
			return []byte("ERR")
		}
		c.value += n
	default:
		return []byte("ERR")
	}
	return []byte(fmt.Sprintf("%d", c.value))
}

// Query implements sm.Querier: "get" is the counter's only read-only
// operation.
func (c *Counter) Query(op []byte) ([]byte, bool) {
	if string(op) != "get" {
		return nil, false
	}
	return []byte(fmt.Sprintf("%d", c.value)), true
}

// Checkpoint implements sm.StateMachine.
func (c *Counter) Checkpoint() []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(c.value))
	return b[:]
}

// Restore implements sm.StateMachine.
func (c *Counter) Restore(data []byte) error {
	if len(data) != 8 {
		return fmt.Errorf("counter: malformed checkpoint (%d bytes)", len(data))
	}
	c.value = int64(binary.BigEndian.Uint64(data))
	return nil
}
