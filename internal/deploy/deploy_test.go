package deploy

import (
	"net"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"repro/internal/apps/kv"
	"repro/internal/types"
)

// freePorts reserves n distinct loopback ports by binding and releasing.
func freePorts(t *testing.T, n int) []int {
	t.Helper()
	ports := make([]int, 0, n)
	listeners := make([]net.Listener, 0, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners = append(listeners, ln)
		ports = append(ports, ln.Addr().(*net.TCPAddr).Port)
	}
	for _, ln := range listeners {
		ln.Close()
	}
	return ports
}

func testConfig(t *testing.T, mode string) *Config {
	t.Helper()
	cfg, err := Default(mode, "kv", 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ThresholdBits = 512 // keep key dealing fast in tests
	ports := freePorts(t, len(cfg.Addrs))
	i := 0
	for k := range cfg.Addrs {
		cfg.Addrs[k] = "127.0.0.1:" + strconv.Itoa(ports[i])
		i++
	}
	return cfg
}

func TestConfigSaveLoadRoundTrip(t *testing.T) {
	cfg := testConfig(t, "separate")
	path := filepath.Join(t.TempDir(), "cluster.json")
	if err := cfg.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Seed != cfg.Seed || loaded.Mode != cfg.Mode || len(loaded.Addrs) != len(cfg.Addrs) {
		t.Errorf("round trip mismatch: %+v vs %+v", loaded, cfg)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("Load of missing file succeeded")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Default("bogus", "kv", 0); err == nil {
		t.Error("Default accepted unknown mode")
	}
	cfg := &Config{Mode: "separate", App: "bogus"}
	if _, err := cfg.AppFactory(); err == nil {
		t.Error("AppFactory accepted unknown app")
	}
	cfg = &Config{Mode: "separate", ReplyMode: "bogus"}
	if _, err := cfg.Options(); err == nil {
		t.Error("Options accepted unknown reply mode")
	}
}

// startAll launches every non-client node of the config.
func startAll(t *testing.T, cfg *Config) []*RunningNode {
	t.Helper()
	opts, err := cfg.Options()
	if err != nil {
		t.Fatal(err)
	}
	_ = opts
	var nodes []*RunningNode
	for k := range cfg.Addrs {
		idInt, _ := strconv.Atoi(k)
		id := types.NodeID(idInt)
		if id >= 1000 { // clients are driven separately
			continue
		}
		n, err := StartNode(cfg, id)
		if err != nil {
			t.Fatalf("starting node %v: %v", id, err)
		}
		n.Net.SetLogf(func(string, ...interface{}) {})
		nodes = append(nodes, n)
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Close()
		}
	})
	return nodes
}

func TestTCPClusterEndToEndSeparate(t *testing.T) {
	cfg := testConfig(t, "separate")
	startAll(t, cfg)

	client, err := NewTCPClient(cfg, 1000)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	reply, err := client.Call(kv.Put("hello", []byte("world")), 10*time.Second)
	if err != nil {
		t.Fatalf("put over TCP: %v", err)
	}
	if string(reply) != "OK" {
		t.Fatalf("put reply = %q", reply)
	}
	reply, err = client.Call(kv.GetOp("hello"), 10*time.Second)
	if err != nil {
		t.Fatalf("get over TCP: %v", err)
	}
	if string(reply) != "world" {
		t.Fatalf("get reply = %q", reply)
	}
}

func TestTCPClusterFirewall(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP firewall cluster in -short mode")
	}
	cfg := testConfig(t, "firewall")
	startAll(t, cfg)

	client, err := NewTCPClient(cfg, 1000)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	reply, err := client.Call(kv.Put("k", []byte("v")), 20*time.Second)
	if err != nil {
		t.Fatalf("put through firewall over TCP: %v", err)
	}
	if string(reply) != "OK" {
		t.Fatalf("put reply = %q", reply)
	}
}

func TestStartNodeRejectsUnknownID(t *testing.T) {
	cfg := testConfig(t, "separate")
	if _, err := StartNode(cfg, 9999); err == nil {
		t.Error("StartNode accepted an identity outside the topology")
	}
	if _, err := StartNode(cfg, 1000); err == nil {
		t.Error("StartNode accepted a client identity")
	}
	if _, err := NewTCPClient(cfg, 0); err == nil {
		t.Error("NewTCPClient accepted a replica identity")
	}
}
