// Package deploy runs deployments where every node is its own OS process
// communicating over TCP — the paper's physical-separation model, scaled to
// one box (or several; addresses are arbitrary host:port strings).
//
// A deployment is described by a JSON config file shared by all processes.
// Key material is derived deterministically from the config's seed, standing
// in for the trusted dealer a production system would use: every process
// derives exactly the material its role needs. (Treat the config file as the
// dealer's secret: whoever holds it holds every key.)
package deploy

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/apps/registry"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/replycert"
	"repro/internal/sm"
	"repro/internal/transport"
	"repro/internal/types"
)

// Config is the on-disk deployment descriptor.
type Config struct {
	Seed        string `json:"seed"`
	Mode        string `json:"mode"` // "base", "separate", "firewall"
	App         string `json:"app"`  // "kv", "counter", "nfs", "null"
	F           int    `json:"f"`
	G           int    `json:"g"`
	H           int    `json:"h"`
	Clients     int    `json:"clients"`
	ReplyMode   string `json:"replyMode"` // "quorum", "threshold"
	MACRequests bool   `json:"macRequests"`
	MACOrders   bool   `json:"macOrders"`
	// Crypto selects agreement-vote authentication: "ed25519" (or empty,
	// the default) signs every vote; "mac" uses pairwise-MAC authenticator
	// vectors for pre-prepare/prepare/commit. View-change, new-view, and
	// checkpoint certificates stay Ed25519 either way. Shared config: all
	// agreement replicas must agree on it.
	Crypto        string            `json:"crypto,omitempty"`
	BatchSize     int               `json:"batchSize"`
	ThresholdBits int               `json:"thresholdBits"`
	Addrs         map[string]string `json:"addrs"` // NodeID (decimal) → host:port
	TLS           *TLSSettings      `json:"tls,omitempty"`

	// baseDir is the directory the config was loaded from; relative TLS
	// paths resolve against it so a config file can travel with its certs.
	baseDir string
}

// TLSSettings names the deployment's mutual-TLS material. Paths are
// relative to the config file's directory (or absolute). CertDir holds one
// node-<id>.pem / node-<id>-key.pem pair per identity, clients included.
type TLSSettings struct {
	CA      string `json:"ca"`
	CertDir string `json:"certDir"`
}

// Default returns a one-box deployment descriptor with sequential loopback
// ports starting at basePort.
func Default(mode, app string, basePort int) (*Config, error) {
	cfg := &Config{
		Seed:          "saebft-demo",
		Mode:          mode,
		App:           app,
		F:             1,
		G:             1,
		H:             1,
		Clients:       2,
		ReplyMode:     "quorum",
		ThresholdBits: 1024,
		BatchSize:     8,
		Addrs:         make(map[string]string),
	}
	if mode == "firewall" {
		cfg.ReplyMode = "threshold"
	}
	m, err := cfg.CoreMode()
	if err != nil {
		return nil, err
	}
	top := core.BuildTopology(cfg.F, cfg.G, cfg.H, cfg.Clients, m)
	port := basePort
	for _, id := range top.AllNodes() {
		cfg.Addrs[strconv.Itoa(int(id))] = fmt.Sprintf("127.0.0.1:%d", port)
		port++
	}
	return cfg, nil
}

// Load reads a config file.
func Load(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("deploy: parsing %s: %w", path, err)
	}
	cfg.baseDir = filepath.Dir(path)
	return &cfg, nil
}

// ResolvePath resolves a config-relative path against the directory the
// config was loaded from. Absolute paths and configs never loaded from disk
// pass through unchanged.
func (c *Config) ResolvePath(p string) string {
	if p == "" || filepath.IsAbs(p) || c.baseDir == "" {
		return p
	}
	return filepath.Join(c.baseDir, p)
}

// TLSPaths returns the CA certificate and identity cert/key paths for id,
// resolved against the config location; ok is false when the deployment is
// plaintext.
func (c *Config) TLSPaths(id types.NodeID) (ca, cert, key string, ok bool) {
	if c.TLS == nil {
		return "", "", "", false
	}
	dir := c.ResolvePath(c.TLS.CertDir)
	return c.ResolvePath(c.TLS.CA),
		filepath.Join(dir, fmt.Sprintf("node-%d.pem", id)),
		filepath.Join(dir, fmt.Sprintf("node-%d-key.pem", id)),
		true
}

// GenerateTLS mints a fresh cluster CA plus one leaf certificate pair per
// given identity, writes the PEM files under writeDir (created if needed),
// and records recordDir's paths in the config. Callers that know where the
// config file will live pass recordDir relative to it and writeDir resolved
// against that location, so the config and its certs travel together; the
// simple case is writeDir == recordDir. The CA key (ca-key.pem) is written
// alongside for minting future certificates; nodes never need it.
func (c *Config) GenerateTLS(ids []types.NodeID, writeDir, recordDir string) error {
	dir := writeDir
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return err
	}
	ca, err := transport.NewCA("saebft cluster CA (" + c.Seed + ")")
	if err != nil {
		return err
	}
	caKey, err := ca.KeyPEM()
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "ca.pem"), ca.CertPEM(), 0o644); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "ca-key.pem"), caKey, 0o600); err != nil {
		return err
	}
	for _, id := range ids {
		certPEM, keyPEM, err := ca.IssuePEM(id)
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("node-%d.pem", id)), certPEM, 0o644); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("node-%d-key.pem", id)), keyPEM, 0o600); err != nil {
			return err
		}
	}
	c.TLS = &TLSSettings{CA: filepath.Join(recordDir, "ca.pem"), CertDir: recordDir}
	return nil
}

// Security loads identity id's TLS material per the config; nil when the
// deployment is plaintext.
func (c *Config) Security(id types.NodeID) (*transport.Security, error) {
	ca, cert, key, ok := c.TLSPaths(id)
	if !ok {
		return nil, nil
	}
	sec, err := transport.LoadSecurity(id, ca, cert, key)
	if err != nil {
		return nil, fmt.Errorf("deploy: TLS material for node %v: %w", id, err)
	}
	return sec, nil
}

// Save writes the config file.
func (c *Config) Save(path string) error {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o600)
}

// CoreMode parses the mode field.
func (c *Config) CoreMode() (core.Mode, error) {
	switch c.Mode {
	case "base":
		return core.ModeBASE, nil
	case "separate", "":
		return core.ModeSeparate, nil
	case "firewall":
		return core.ModeFirewall, nil
	default:
		return 0, fmt.Errorf("deploy: unknown mode %q", c.Mode)
	}
}

// AppFactory resolves the application name through the shared registry, so
// deployment configs and the public saebft API agree on what names mean.
func (c *Config) AppFactory() (func() sm.StateMachine, error) {
	f, err := registry.Factory(c.App)
	if err != nil {
		return nil, fmt.Errorf("deploy: %w", err)
	}
	return f, nil
}

// Options converts the config into core options.
func (c *Config) Options() (core.Options, error) {
	mode, err := c.CoreMode()
	if err != nil {
		return core.Options{}, err
	}
	app, err := c.AppFactory()
	if err != nil {
		return core.Options{}, err
	}
	opts := core.Options{
		F:             c.F,
		G:             c.G,
		H:             c.H,
		Clients:       c.Clients,
		Mode:          mode,
		MACRequests:   c.MACRequests,
		MACOrders:     c.MACOrders,
		BatchSize:     c.BatchSize,
		ThresholdBits: c.ThresholdBits,
		Seed:          c.Seed,
		App:           app,
	}
	switch c.ReplyMode {
	case "threshold":
		opts.ReplyMode = replycert.ModeThreshold
	case "quorum", "":
		opts.ReplyMode = replycert.ModeQuorum
	default:
		return core.Options{}, fmt.Errorf("deploy: unknown reply mode %q", c.ReplyMode)
	}
	switch c.Crypto {
	case "mac":
		opts.MACAgreement = true
	case "ed25519", "":
	default:
		return core.Options{}, fmt.Errorf("deploy: unknown crypto mode %q", c.Crypto)
	}
	return opts, nil
}

// addrMap converts the JSON address table to NodeID keys.
func (c *Config) addrMap() (map[types.NodeID]string, error) {
	out := make(map[types.NodeID]string, len(c.Addrs))
	for k, v := range c.Addrs {
		n, err := strconv.Atoi(k)
		if err != nil {
			return nil, fmt.Errorf("deploy: bad node id %q in addrs", k)
		}
		out[types.NodeID(n)] = v
	}
	return out, nil
}

// RunningNode is one live TCP-backed node.
type RunningNode struct {
	ID      types.NodeID
	Role    types.Role
	Net     *transport.TCPNet
	node    transport.Node
	runtime *transport.Runtime
}

// Inspect runs fn on the node's runtime goroutine with the protocol node,
// serialized against message delivery (debugging and tests only).
func (n *RunningNode) Inspect(fn func(node transport.Node)) {
	n.runtime.Do(func(types.Time) { fn(n.node) })
}

// Close shuts the node down gracefully: the durable store (if any) is
// flushed and closed on the runtime goroutine — serialized against message
// delivery, so no record is torn mid-write — before the transports stop.
func (n *RunningNode) Close() {
	n.runtime.Do(func(types.Time) {
		if s, ok := n.node.(interface{ Shutdown() }); ok {
			s.Shutdown()
		}
	})
	n.runtime.Close()
	n.Net.Close()
}

// Kill tears the node down without flushing its store, simulating a crash
// (kill -9): buffered WAL appends are discarded and the data-dir lock
// released, as process death would. Recovery tests use it; everything else
// should Close.
func (n *RunningNode) Kill() {
	n.runtime.Close()
	if cs, ok := n.node.(interface{ CrashStop() }); ok {
		cs.CrashStop()
	}
	n.Net.Close()
}

// NodeOptions carries per-process settings that are not part of the shared
// deployment config.
type NodeOptions struct {
	// DataDir is the durable-storage root shared by the deployment's
	// processes on this filesystem; the node persists under
	// <DataDir>/node-<id>. Empty runs the node in-memory.
	DataDir string
	// VolatileVotes disables agreement-side voting-state durability
	// (core.Options.VolatileVotes); committed batches and checkpoints
	// stay durable. Benchmark use.
	VolatileVotes bool
	// TLSCA, TLSCert, TLSKey override the config's TLS material for this
	// process (all three together). When the config has no TLS section,
	// setting them enables TLS for this node.
	TLSCA, TLSCert, TLSKey string
	// DisableTLS forces plaintext links even when the config has a TLS
	// section (loopback debugging only).
	DisableTLS bool
	// VerifyWorkers sizes this process's bounded certificate-verification
	// pool (core.Options.VerifyWorkers). Per-process tuning, not protocol
	// surface: peers need not agree on it. 0 or 1 verifies inline.
	VerifyWorkers int
	// Obs, when non-nil, is the process-wide metrics registry every layer
	// of this node records into (core.Options.Obs); Trace is the bounded
	// per-operation lifecycle ring. Both are optional.
	Obs   *obs.Registry
	Trace *obs.Tracer
}

// security resolves the node's link security from the per-process overrides
// and the shared config, in that order.
func (n NodeOptions) security(cfg *Config, id types.NodeID) (*transport.Security, error) {
	if n.DisableTLS {
		return nil, nil
	}
	if n.TLSCert != "" || n.TLSKey != "" || n.TLSCA != "" {
		if n.TLSCA == "" || n.TLSCert == "" || n.TLSKey == "" {
			return nil, fmt.Errorf("deploy: TLS override needs all of CA, cert, and key")
		}
		sec, err := transport.LoadSecurity(id, n.TLSCA, n.TLSCert, n.TLSKey)
		if err != nil {
			return nil, fmt.Errorf("deploy: TLS material for node %v: %w", id, err)
		}
		return sec, nil
	}
	return cfg.Security(id)
}

// StartNode builds and runs the node with the given identity over TCP. It
// returns once the node is listening; the node runs until Close.
func StartNode(cfg *Config, id types.NodeID) (*RunningNode, error) {
	return StartNodeOpts(cfg, id, NodeOptions{})
}

// StartNodeOpts is StartNode with per-process options (durable storage).
func StartNodeOpts(cfg *Config, id types.NodeID, nopts NodeOptions) (*RunningNode, error) {
	opts, err := cfg.Options()
	if err != nil {
		return nil, err
	}
	opts.DataDir = nopts.DataDir
	opts.VolatileVotes = nopts.VolatileVotes
	opts.VerifyWorkers = nopts.VerifyWorkers
	opts.Obs = nopts.Obs
	opts.Trace = nopts.Trace
	b, err := core.NewBuilder(opts)
	if err != nil {
		return nil, err
	}
	addrs, err := cfg.addrMap()
	if err != nil {
		return nil, err
	}
	sec, err := nopts.security(cfg, id)
	if err != nil {
		return nil, err
	}
	return StartBuilderNodeOpts(b, addrs, id, transport.TCPOptions{Security: sec})
}

// StartBuilderNode runs one node of an already-prepared builder over
// plaintext TCP with default link tuning; see StartBuilderNodeOpts.
func StartBuilderNode(b *core.Builder, addrs map[types.NodeID]string, id types.NodeID) (*RunningNode, error) {
	return StartBuilderNodeOpts(b, addrs, id, transport.TCPOptions{})
}

// StartBuilderNodeOpts runs one node of an already-prepared builder over
// TCP with explicit link options (mutual TLS, timeouts, queue bounds). The
// public saebft API uses it to run clusters built from programmatic options
// (including custom application factories that no config file could name);
// StartNode is the config-file path to the same wiring.
func StartBuilderNodeOpts(b *core.Builder, addrs map[types.NodeID]string, id types.NodeID, topts transport.TCPOptions) (*RunningNode, error) {
	role, _, ok := b.Top.RoleOf(id)
	if !ok {
		return nil, fmt.Errorf("deploy: node %v is not part of the topology", id)
	}

	// Link metrics land in the same registry as the protocol layers unless
	// the caller wired the transport explicitly.
	if topts.Obs == nil {
		topts.Obs = b.Opts.Obs
	}
	if topts.Obs != nil && topts.ObsNode == "" {
		topts.ObsNode = strconv.Itoa(int(id))
	}

	// The TCP handler is installed after construction; an atomic
	// indirection breaks the circular dependency between node and net.
	// Messages arriving before installation are dropped, which the
	// protocols tolerate (peers retransmit).
	var runtimeHandler atomic.Pointer[func(from types.NodeID, data []byte)]
	tcp, err := transport.NewTCPNetOpts(id, addrs, func(from types.NodeID, data []byte) {
		if h := runtimeHandler.Load(); h != nil {
			(*h)(from, data)
		}
	}, topts)
	if err != nil {
		return nil, err
	}

	var node transport.Node
	switch role {
	case types.RoleAgreement:
		node, _, _, err = b.AgreementNode(id, tcp.Send)
	case types.RoleExecution:
		node, _, err = b.ExecNode(id, tcp.Send)
	case types.RoleFilter:
		node, err = b.FilterNode(id, tcp.Send)
	default:
		err = fmt.Errorf("deploy: StartNode does not run clients; use NewTCPClient")
	}
	if err != nil {
		tcp.Close()
		return nil, err
	}
	rt, handler := transport.NewRuntime(node, tcp.Now, time.Millisecond)
	runtimeHandler.Store(&handler)
	return &RunningNode{ID: id, Role: role, Net: tcp, node: node, runtime: rt}, nil
}

// TCPClient is a synchronous client over TCP.
type TCPClient struct {
	ID     types.NodeID
	client *core.Client
	net    *transport.TCPNet
	rt     *transport.Runtime
	mu     chan struct{} // serializes Call against the runtime goroutine
}

// NewTCPClient connects a client identity from the config, with the link
// security the config prescribes.
func NewTCPClient(cfg *Config, id types.NodeID) (*TCPClient, error) {
	opts, err := cfg.Options()
	if err != nil {
		return nil, err
	}
	b, err := core.NewBuilder(opts)
	if err != nil {
		return nil, err
	}
	if role, _, ok := b.Top.RoleOf(id); !ok || role != types.RoleClient {
		return nil, fmt.Errorf("deploy: %v is not a client in this topology", id)
	}
	addrs, err := cfg.addrMap()
	if err != nil {
		return nil, err
	}
	sec, err := cfg.Security(id)
	if err != nil {
		return nil, err
	}
	var runtimeHandler atomic.Pointer[func(from types.NodeID, data []byte)]
	tcp, err := transport.NewTCPNetOpts(id, addrs, func(from types.NodeID, data []byte) {
		if h := runtimeHandler.Load(); h != nil {
			(*h)(from, data)
		}
	}, transport.TCPOptions{Security: sec})
	if err != nil {
		return nil, err
	}
	cl, err := b.ClientNode(id, tcp.Send)
	if err != nil {
		tcp.Close()
		return nil, err
	}
	// Start above any previous process's timestamps for this identity, or
	// the executors' exactly-once reply table would answer the first
	// request from cache.
	cl.SetTimestamp(types.Timestamp(time.Now().UnixNano()))
	tc := &TCPClient{ID: id, client: cl, net: tcp, mu: make(chan struct{}, 1)}
	tc.mu <- struct{}{}
	rt, handler := transport.NewRuntime(&clientNode{cl}, tcp.Now, time.Millisecond)
	runtimeHandler.Store(&handler)
	tc.rt = rt
	return tc, nil
}

// clientNode adapts Client to transport.Node for the runtime (Client already
// implements the interface; the wrapper only exists to keep the runtime from
// being confused with the synchronous Call path below).
type clientNode struct{ c *core.Client }

func (n *clientNode) Deliver(from types.NodeID, data []byte, now types.Time) {
	n.c.Deliver(from, data, now)
}

func (n *clientNode) Tick(now types.Time) { n.c.Tick(now) }

// Call submits one operation and blocks until the certified reply arrives or
// the timeout expires. Safe for use from one goroutine at a time.
func (c *TCPClient) Call(op []byte, timeout time.Duration) ([]byte, error) {
	<-c.mu
	defer func() { c.mu <- struct{}{} }()
	// The runtime goroutine owns the client state; Submit and result
	// polling run on it via Runtime.Do so the protocol core stays
	// single-threaded.
	errc := make(chan error, 1)
	c.rt.Do(func(now types.Time) {
		if err := c.client.Submit(op, now); err != nil {
			errc <- err
		}
	})
	deadline := time.Now().Add(timeout)
	for {
		select {
		case err := <-errc:
			return nil, err
		default:
		}
		var result []byte
		var ok bool
		c.rt.Do(func(now types.Time) {
			if c.client.HasResult() {
				result, ok = c.client.Result()
			}
		})
		if ok {
			return result, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("deploy: request timed out after %v", timeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// SetQuiet silences transport logging.
func (c *TCPClient) SetQuiet() {
	c.net.SetLogf(func(string, ...interface{}) {})
}

// Close disconnects the client.
func (c *TCPClient) Close() {
	c.rt.Close()
	c.net.Close()
}
