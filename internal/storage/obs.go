package storage

import (
	"repro/internal/obs"
)

// walMetrics holds the store's registered instruments. Storage sits outside
// the deterministic cores, so latencies here are wall-clock (the fsync
// really took that long). Instruments are nil without a registry and no-op
// on nil.
type walMetrics struct {
	appendLat *obs.Histogram
	fsyncLat  *obs.Histogram
	syncBatch *obs.Histogram // appends made durable by one fsync
	segments  *obs.Gauge
}

func newWALMetrics(reg *obs.Registry, node string) walMetrics {
	l := obs.L("node", node)
	return walMetrics{
		appendLat: reg.Histogram("saebft_wal_append_seconds",
			"WAL record append latency (buffered write, wall clock)", obs.LatencyBuckets, l),
		fsyncLat: reg.Histogram("saebft_wal_fsync_seconds",
			"WAL sync latency (flush + fsync, wall clock)", obs.LatencyBuckets, l),
		syncBatch: reg.Histogram("saebft_wal_sync_batch_records",
			"records made durable by one sync (group-commit batch size)", obs.CountBuckets, l),
		segments: reg.Gauge("saebft_wal_segments",
			"WAL segments on disk", l),
	}
}
