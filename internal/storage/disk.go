package storage

import (
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/types"
)

// DiskStore is the on-disk Store: a segmented WAL under <dir>/wal and an
// atomic checkpoint store under <dir>/ckpt. One DiskStore belongs to one
// protocol node; calls are serialized internally so the shutdown path can
// flush concurrently with the node's runtime goroutine.
type DiskStore struct {
	dir string

	mu      sync.Mutex
	lock    *os.File // exclusive flock on <dir>/LOCK (unix)
	wal     *wal
	ckpts   *ckptStore
	closed  bool
	om      walMetrics
	pending int // appends not yet covered by a sync (under mu)
}

// Open creates or reopens a node's store rooted at dir, truncating any torn
// WAL tail left by a crash. The directory is flock-guarded: a second Open
// (another process, a double-started node) fails loudly instead of
// interleaving two WAL writers into the same segments.
func Open(dir string, opts Options) (*DiskStore, error) {
	opts.fillDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	lock, err := acquireDirLock(dir)
	if err != nil {
		return nil, err
	}
	w, err := openWAL(filepath.Join(dir, "wal"), opts)
	if err != nil {
		releaseDirLock(lock)
		return nil, err
	}
	c, err := openCkptStore(filepath.Join(dir, "ckpt"), opts)
	if err != nil {
		w.close()
		releaseDirLock(lock)
		return nil, err
	}
	s := &DiskStore{dir: dir, lock: lock, wal: w, ckpts: c, om: newWALMetrics(opts.Obs, opts.ObsNode)}
	s.om.segments.Set(int64(len(w.segs)))
	return s, nil
}

// Dir returns the store's root directory.
func (s *DiskStore) Dir() string { return s.dir }

// Append implements Store.
func (s *DiskStore) Append(kind RecordKind, seq types.SeqNum, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errClosed
	}
	start := time.Now()
	err := s.wal.append(kind, seq, payload)
	s.om.appendLat.Observe(time.Since(start).Seconds())
	s.om.segments.Set(int64(len(s.wal.segs)))
	if err == nil {
		s.pending++
	}
	return err
}

// Sync implements Store.
func (s *DiskStore) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errClosed
	}
	start := time.Now()
	//lint:allow lockdiscipline s.mu is the store's designated durability serialization point: append/sync ordering under concurrent close is exactly what this mutex exists to provide
	err := s.wal.sync()
	if s.pending > 0 {
		s.om.fsyncLat.Observe(time.Since(start).Seconds())
		s.om.syncBatch.Observe(float64(s.pending))
		s.pending = 0
	}
	return err
}

// SaveCheckpoint implements Store.
func (s *DiskStore) SaveCheckpoint(ck Checkpoint) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errClosed
	}
	return s.ckpts.save(ck)
}

// Checkpoints implements Store.
func (s *DiskStore) Checkpoints() ([]Checkpoint, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errClosed
	}
	return s.ckpts.list()
}

// Replay implements Store.
func (s *DiskStore) Replay(from types.SeqNum, fn func(kind RecordKind, seq types.SeqNum, payload []byte) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errClosed
	}
	return s.wal.replay(from, fn)
}

// Prune implements Store.
func (s *DiskStore) Prune(stable types.SeqNum) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errClosed
	}
	err := s.wal.prune(stable)
	s.om.segments.Set(int64(len(s.wal.segs)))
	return err
}

// Close implements Store: flushes the WAL and releases file handles.
func (s *DiskStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.wal.close()
	releaseDirLock(s.lock)
	s.lock = nil
	return err
}

// Abandon simulates process death: buffered appends are discarded, file
// handles closed, and the directory lock released without any flush —
// exactly what kill -9 leaves behind. Crash-recovery tests reach it via
// type assertion; it is deliberately not part of the Store interface.
func (s *DiskStore) Abandon() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	if s.wal.f != nil {
		_ = s.wal.f.Close() // unflushed bufio contents die with us
		s.wal.f = nil
	}
	releaseDirLock(s.lock)
	s.lock = nil
}

type storageError string

func (e storageError) Error() string { return string(e) }

const errClosed = storageError("storage: store is closed")
