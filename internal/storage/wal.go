package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/types"
)

// WAL record framing, per record:
//
//	u32 big-endian length L of the body (kind + seq + payload)
//	u32 big-endian CRC-32C over the body
//	body: u8 kind | u64 big-endian seq | payload (L-9 bytes)
//
// A record is valid only if the full frame is present and the CRC matches.
// The first invalid record marks the end of the log: everything from it on
// (including any later segments) is a torn tail from an interrupted write
// and is truncated on open.
const (
	recHeaderBytes = 8
	recBodyMin     = 9 // kind + seq
	// maxRecordBytes bounds a single record so a corrupted length prefix
	// cannot drive a huge allocation.
	maxRecordBytes = 64 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

const segSuffix = ".seg"

// segment is one WAL file. Only the highest-indexed segment is appended to;
// lower ones are sealed and eligible for GC once a stable checkpoint covers
// their highest sequence number.
type segment struct {
	index  int
	path   string
	maxSeq types.SeqNum
	size   int64
}

// wal is the segmented append-only log half of a DiskStore.
type wal struct {
	dir  string
	opts Options

	segs  []*segment // ascending index; last is active
	f     *os.File   // active segment
	w     *bufio.Writer
	dirty bool
}

func segPath(dir string, index int) string {
	return filepath.Join(dir, fmt.Sprintf("%08d%s", index, segSuffix))
}

// openWAL scans every segment in order, truncates the log at the first
// invalid record (torn tail), and opens the last segment for append.
func openWAL(dir string, opts Options) (*wal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	w := &wal{dir: dir, opts: opts}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var indices []int
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		idx, err := strconv.Atoi(strings.TrimSuffix(name, segSuffix))
		if err != nil {
			continue
		}
		indices = append(indices, idx)
	}
	sort.Ints(indices)
	torn := false
	for _, idx := range indices {
		path := segPath(dir, idx)
		if torn {
			// Everything after a tear is unreachable in append order;
			// remove it so a future segment index cannot collide.
			if err := os.Remove(path); err != nil {
				return nil, err
			}
			continue
		}
		seg := &segment{index: idx, path: path}
		validSize, clean, err := scanSegment(path, 0, func(kind RecordKind, seq types.SeqNum, payload []byte) error {
			if seq > seg.maxSeq {
				seg.maxSeq = seq
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		if !clean {
			if err := os.Truncate(path, validSize); err != nil {
				return nil, err
			}
			torn = true
		}
		seg.size = validSize
		w.segs = append(w.segs, seg)
	}
	if len(w.segs) == 0 {
		w.segs = append(w.segs, &segment{index: 1, path: segPath(dir, 1)})
	}
	if err := w.openActive(); err != nil {
		return nil, err
	}
	return w, nil
}

// scanSegment validates the whole file from byte 0, invoking fn for each
// valid record whose sequence number exceeds from (a protocol seq filter,
// not a byte offset). It returns the byte offset of the first invalid
// record and whether the whole file was clean.
func scanSegment(path string, from types.SeqNum, fn func(kind RecordKind, seq types.SeqNum, payload []byte) error) (validSize int64, clean bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, false, err
	}
	off := 0
	for {
		if len(data)-off < recHeaderBytes {
			return int64(off), len(data)-off == 0, nil
		}
		length := int(binary.BigEndian.Uint32(data[off:]))
		crc := binary.BigEndian.Uint32(data[off+4:])
		if length < recBodyMin || length > maxRecordBytes || len(data)-off-recHeaderBytes < length {
			return int64(off), false, nil
		}
		body := data[off+recHeaderBytes : off+recHeaderBytes+length]
		if crc32.Checksum(body, crcTable) != crc {
			return int64(off), false, nil
		}
		kind := RecordKind(body[0])
		seq := types.SeqNum(binary.BigEndian.Uint64(body[1:]))
		if seq > from {
			if err := fn(kind, seq, body[recBodyMin:]); err != nil {
				return int64(off), true, err
			}
		}
		off += recHeaderBytes + length
	}
}

func (w *wal) openActive() error {
	seg := w.active()
	f, err := os.OpenFile(seg.path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	w.f = f
	w.w = bufio.NewWriterSize(f, 64<<10)
	return nil
}

func (w *wal) active() *segment { return w.segs[len(w.segs)-1] }

func (w *wal) append(kind RecordKind, seq types.SeqNum, payload []byte) error {
	if len(payload)+recBodyMin > maxRecordBytes {
		return fmt.Errorf("storage: record of %d bytes exceeds the %d-byte limit", len(payload), maxRecordBytes)
	}
	seg := w.active()
	frame := int64(recHeaderBytes + recBodyMin + len(payload))
	if seg.size > 0 && seg.size+frame > int64(w.opts.SegmentBytes) {
		if err := w.rotate(); err != nil {
			return err
		}
		seg = w.active()
	}
	var hdr [recHeaderBytes + recBodyMin]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(recBodyMin+len(payload)))
	hdr[8] = byte(kind)
	binary.BigEndian.PutUint64(hdr[9:], uint64(seq))
	crc := crc32.Checksum(hdr[8:], crcTable)
	crc = crc32.Update(crc, crcTable, payload)
	binary.BigEndian.PutUint32(hdr[4:], crc)
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(payload); err != nil {
		return err
	}
	seg.size += frame
	if seq > seg.maxSeq {
		seg.maxSeq = seq
	}
	w.dirty = true
	if w.opts.Fsync == FsyncAlways {
		return w.sync()
	}
	return nil
}

// sync flushes buffered appends and, unless fsync is disabled, forces them
// to stable media. One call covers every append since the last — the group
// commit.
func (w *wal) sync() error {
	if !w.dirty {
		return nil
	}
	if err := w.w.Flush(); err != nil {
		return err
	}
	if w.opts.Fsync != FsyncNever {
		if err := w.f.Sync(); err != nil {
			return err
		}
	}
	w.dirty = false
	return nil
}

// rotate seals the active segment and starts the next one.
func (w *wal) rotate() error {
	w.dirty = true // force the flush+fsync even if the caller just synced
	if err := w.sync(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	next := &segment{index: w.active().index + 1}
	next.path = segPath(w.dir, next.index)
	w.segs = append(w.segs, next)
	if err := w.openActive(); err != nil {
		return err
	}
	syncDir(w.dir)
	return nil
}

// replay streams records with seq > from in append order across segments.
func (w *wal) replay(from types.SeqNum, fn func(kind RecordKind, seq types.SeqNum, payload []byte) error) error {
	// Buffered appends must be visible to the file reads below.
	if w.dirty {
		if err := w.w.Flush(); err != nil {
			return err
		}
	}
	for _, seg := range w.segs {
		if seg.size == 0 {
			continue
		}
		if seg.maxSeq <= from {
			continue
		}
		if _, _, err := scanSegment(seg.path, from, fn); err != nil {
			return err
		}
	}
	return nil
}

// prune deletes sealed segments whose records are all covered by a stable
// checkpoint at the given sequence number. The segment list is rebuilt into
// a fresh slice and every segment whose removal did not succeed is kept, so
// a mid-prune I/O failure leaves the in-memory list consistent with disk
// and the prune retryable.
func (w *wal) prune(stable types.SeqNum) error {
	kept := make([]*segment, 0, len(w.segs))
	var firstErr error
	for i, seg := range w.segs {
		if firstErr == nil && i != len(w.segs)-1 && seg.maxSeq <= stable {
			err := os.Remove(seg.path)
			if err == nil || os.IsNotExist(err) {
				continue
			}
			firstErr = err
		}
		kept = append(kept, seg)
	}
	w.segs = kept
	return firstErr
}

func (w *wal) close() error {
	if w.f == nil {
		return nil
	}
	err := w.sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// syncDir fsyncs a directory so renames and creations survive power loss.
// Best-effort: some platforms and filesystems reject directory fsync.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}
