// Package storage is the durable persistence subsystem: a per-node
// segmented, CRC-framed, fsync-batched write-ahead log plus an atomic
// checkpoint store.
//
// Protocol nodes append self-contained, independently verifiable protocol
// records (agreement commit certificates, execution order certificates) to
// the WAL and persist stable checkpoints — payload plus the quorum of signed
// attestations proving stability — through the checkpoint store. On restart
// a node restores the newest checkpoint whose proof verifies, replays the
// WAL tail through its normal verify-and-execute path, and rejoins the
// cluster's ordinary catch-up protocol for anything newer. Nothing in this
// package understands the protocol: records and checkpoints are opaque
// bytes, and all verification happens in the consumers, so a corrupted disk
// can degrade a replica into a slow one but never into a lying one.
//
// Durability discipline: consumers call Append as records become known and
// Sync before externalizing their effects (sending replies). Append batches
// writes in memory; one Sync covers every record appended since the last,
// which is the group commit that makes fsync cost amortize over whole
// delivery bursts.
package storage

import (
	"repro/internal/obs"
	"repro/internal/types"
)

// RecordKind discriminates WAL record payloads.
type RecordKind uint8

// WAL record kinds. Payloads are wire-encoded protocol messages that carry
// their own proofs, so replay can run them through the normal untrusted
// message paths.
const (
	// RecCommit is an agreement-side committed batch: a wire.CommitProof
	// (pre-prepare plus 2f+1 commit attestations).
	RecCommit RecordKind = 1
	// RecOrder is an execution-side applied batch: a wire.OrderProof
	// (request batch plus 2f+1 order attestations).
	RecOrder RecordKind = 2
	// RecVote is an agreement replica's own vote marker for one slot
	// (wire.VoteRecord): a proposed/accepted pre-prepare, a sent prepare,
	// or a sent commit. Appended and synced before the vote message is
	// externalized, so a recovered replica refuses to send a conflicting
	// vote for any slot it already voted on. seq is the slot, so vote
	// records are garbage-collected with the segments a stable checkpoint
	// supersedes.
	RecVote RecordKind = 3
	// RecPrepared is the prepared certificate for one slot
	// (wire.PreparedEntry via wire.EncodePreparedRecord): the primary's
	// pre-prepare evidence plus 2f prepare attestations. It survives a
	// crash so the replica's next VIEW-CHANGE still carries the evidence —
	// without it a recovered replica would count against f until rejoined.
	RecPrepared RecordKind = 4
	// RecView is a view transition (wire.ViewRecord): entering a
	// view-change campaign or installing a new view. Logged with
	// seq = stable watermark + 1 (and re-logged above each new stable
	// checkpoint) so the latest view survives both the replay cursor's
	// seq > stable filter and segment GC.
	RecView RecordKind = 5
	// RecNewView is the NEW-VIEW message this replica installed
	// (wire.Marshal'd wire.NewView), logged at stable watermark + 1 like
	// view records (and re-logged above each new stable checkpoint) so a
	// restarted replica keeps re-serving the proof that the view advanced
	// to peers stuck in older views.
	RecNewView RecordKind = 6
)

// FsyncMode selects when appended WAL records reach stable media.
type FsyncMode int

const (
	// FsyncBatch (the default) flushes and fsyncs on Sync: one fsync per
	// delivery burst, the group-commit sweet spot.
	FsyncBatch FsyncMode = iota
	// FsyncAlways fsyncs on every Append — maximum durability, one fsync
	// per record.
	FsyncAlways
	// FsyncNever flushes to the OS on Sync but never forces media writes;
	// survives process crashes but not power loss. Benchmark use.
	FsyncNever
)

// Options tunes a DiskStore. The zero value gives sensible defaults.
type Options struct {
	// SegmentBytes rotates the active WAL segment once it exceeds this
	// size. Default 4 MiB.
	SegmentBytes int
	// RetainCheckpoints keeps the newest K stable checkpoints; older ones
	// are deleted when a new one is saved. Default 2 (the newest plus one
	// fallback in case the newest fails verification on recovery).
	RetainCheckpoints int
	// Fsync selects the media-write policy. Default FsyncBatch.
	Fsync FsyncMode
	// Obs, when non-nil, receives WAL metrics (append/fsync latency,
	// sync-batch size, segment count); ObsNode is the "node" label value
	// for the series.
	Obs     *obs.Registry
	ObsNode string
}

func (o *Options) fillDefaults() {
	if o.SegmentBytes == 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.RetainCheckpoints == 0 {
		o.RetainCheckpoints = 2
	}
}

// Checkpoint is one persisted stable checkpoint: the serialized state at
// Seq, its digest, and the consumer's encoding of the quorum attestations
// proving stability. The store never interprets Proof or Payload; consumers
// re-verify both on recovery.
type Checkpoint struct {
	Seq     types.SeqNum
	Digest  types.Digest
	Proof   []byte
	Payload []byte
}

// Store is the persistence interface protocol nodes program against. A nil
// Store means in-memory operation (the seed behavior; the simulator's
// default).
//
// Implementations must tolerate torn or corrupted tails: Open-time recovery
// truncates the WAL at the first invalid record rather than failing, and
// Checkpoints skips unreadable files, so a node with a damaged disk comes
// back empty-handed and catches up from peers instead of crashing.
type Store interface {
	// Append adds one record to the WAL. seq is the record's protocol
	// sequence number, used only for replay filtering and segment GC.
	Append(kind RecordKind, seq types.SeqNum, payload []byte) error

	// Sync makes every appended record durable per the fsync policy.
	// No-op when nothing is pending.
	Sync() error

	// SaveCheckpoint atomically persists a stable checkpoint
	// (write-temp + rename) and drops checkpoints beyond the retention
	// limit.
	SaveCheckpoint(ck Checkpoint) error

	// Checkpoints returns the stored checkpoints newest-first, skipping
	// any that fail the store's integrity framing. Consumers verify the
	// digest and stability proof and take the first that passes.
	Checkpoints() ([]Checkpoint, error)

	// Replay streams WAL records with seq > from, in append order.
	// Returning an error from fn stops the replay and surfaces the error.
	Replay(from types.SeqNum, fn func(kind RecordKind, seq types.SeqNum, payload []byte) error) error

	// Prune discards WAL segments whose records all have seq <= stable;
	// the data they held is superseded by a stable checkpoint.
	Prune(stable types.SeqNum) error

	// Close flushes and releases the store. Idempotent.
	Close() error
}

// Factory builds one node's store; the composition layer calls it once per
// node identity when durable storage is configured.
type Factory func(id types.NodeID) (Store, error)
