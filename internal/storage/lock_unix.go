//go:build unix

package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// acquireDirLock takes an exclusive advisory flock on <dir>/LOCK so two
// processes (an orphaned predecessor, a supervisor restart race, a
// double-started node) can never run two WAL writers over the same files —
// interleaved O_APPEND frames would read as a torn tail and truncate
// acknowledged history. The lock dies with the process, so a kill -9
// never blocks the restart that recovery exists for.
func acquireDirLock(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: %s is locked by another process: %w", dir, err)
	}
	return f, nil
}

func releaseDirLock(f *os.File) {
	if f != nil {
		_ = syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		_ = f.Close()
	}
}
