//go:build !unix

package storage

import "os"

// Non-unix platforms have no flock; stores open without cross-process
// exclusion there (single-writer discipline is on the operator).
func acquireDirLock(dir string) (*os.File, error) { return nil, nil }

func releaseDirLock(f *os.File) {}
