package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/types"
)

// Checkpoint file layout (one file per stable checkpoint, named by sequence
// number so lexical order is recovery order):
//
//	magic "SAEC" | u8 version | u64 seq | 32-byte digest
//	u32 proof length | proof | u32 payload length | payload
//	u32 CRC-32C over everything above
//
// Files are written to a temp name and renamed into place, so a checkpoint
// either exists completely or not at all; a crash mid-write leaves only a
// temp file that the next open sweeps away.
const (
	ckptMagic   = "SAEC"
	ckptVersion = 1
	ckptSuffix  = ".ck"
	tmpPrefix   = ".tmp-"
)

// ckptStore is the atomic checkpoint half of a DiskStore.
type ckptStore struct {
	dir  string
	opts Options
	seqs []types.SeqNum // ascending, mirrors the files on disk
}

func ckptPath(dir string, seq types.SeqNum) string {
	return filepath.Join(dir, fmt.Sprintf("%020d%s", seq, ckptSuffix))
}

func openCkptStore(dir string, opts Options) (*ckptStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &ckptStore{dir: dir, opts: opts}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		if strings.HasPrefix(name, tmpPrefix) {
			// Leftover from a crash mid-save; the rename never happened.
			_ = os.Remove(filepath.Join(dir, name))
			continue
		}
		if !strings.HasSuffix(name, ckptSuffix) {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(name, ckptSuffix), 10, 64)
		if err != nil {
			continue
		}
		s.seqs = append(s.seqs, types.SeqNum(seq))
	}
	sort.Slice(s.seqs, func(i, j int) bool { return s.seqs[i] < s.seqs[j] })
	return s, nil
}

func encodeCheckpoint(ck Checkpoint) []byte {
	n := 4 + 1 + 8 + types.DigestSize + 4 + len(ck.Proof) + 4 + len(ck.Payload) + 4
	buf := make([]byte, 0, n)
	buf = append(buf, ckptMagic...)
	buf = append(buf, ckptVersion)
	buf = binary.BigEndian.AppendUint64(buf, uint64(ck.Seq))
	buf = append(buf, ck.Digest[:]...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(ck.Proof)))
	buf = append(buf, ck.Proof...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(ck.Payload)))
	buf = append(buf, ck.Payload...)
	return binary.BigEndian.AppendUint32(buf, crc32.Checksum(buf, crcTable))
}

func decodeCheckpoint(data []byte) (Checkpoint, error) {
	var ck Checkpoint
	minLen := 4 + 1 + 8 + types.DigestSize + 4 + 4 + 4
	if len(data) < minLen || string(data[:4]) != ckptMagic || data[4] != ckptVersion {
		return ck, fmt.Errorf("storage: malformed checkpoint header")
	}
	if crc32.Checksum(data[:len(data)-4], crcTable) != binary.BigEndian.Uint32(data[len(data)-4:]) {
		return ck, fmt.Errorf("storage: checkpoint CRC mismatch")
	}
	off := 5
	ck.Seq = types.SeqNum(binary.BigEndian.Uint64(data[off:]))
	off += 8
	copy(ck.Digest[:], data[off:off+types.DigestSize])
	off += types.DigestSize
	take := func() ([]byte, error) {
		if len(data)-off < 4 {
			return nil, fmt.Errorf("storage: truncated checkpoint")
		}
		n := int(binary.BigEndian.Uint32(data[off:]))
		off += 4
		if n < 0 || len(data)-off-4 < n {
			return nil, fmt.Errorf("storage: truncated checkpoint")
		}
		out := data[off : off+n]
		off += n
		return out, nil
	}
	var err error
	if ck.Proof, err = take(); err != nil {
		return ck, err
	}
	if ck.Payload, err = take(); err != nil {
		return ck, err
	}
	if len(data)-off != 4 {
		return ck, fmt.Errorf("storage: trailing bytes in checkpoint")
	}
	return ck, nil
}

// save persists one checkpoint atomically and enforces retention.
func (s *ckptStore) save(ck Checkpoint) error {
	present := false
	for _, have := range s.seqs {
		if have == ck.Seq {
			// Dedup (recovery re-stabilizing) only if the on-disk file
			// actually decodes: a corrupt checkpoint must be repaired by
			// the rewrite below, not skipped — the caller's Prune is about
			// to delete the WAL segments this checkpoint supersedes.
			if data, err := os.ReadFile(ckptPath(s.dir, ck.Seq)); err == nil {
				if _, derr := decodeCheckpoint(data); derr == nil {
					return nil
				}
			}
			present = true
			break
		}
	}
	tmp := filepath.Join(s.dir, fmt.Sprintf("%s%d", tmpPrefix, ck.Seq))
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(encodeCheckpoint(ck)); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if s.opts.Fsync != FsyncNever {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, ckptPath(s.dir, ck.Seq)); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(s.dir)
	if !present {
		s.seqs = append(s.seqs, ck.Seq)
		sort.Slice(s.seqs, func(i, j int) bool { return s.seqs[i] < s.seqs[j] })
	}
	for len(s.seqs) > s.opts.RetainCheckpoints {
		// An already-absent file (out-of-band cleanup) is the desired end
		// state, not a save failure — the new checkpoint is durable either
		// way, and escalating here would fail-stop the replica for nothing.
		if err := os.Remove(ckptPath(s.dir, s.seqs[0])); err != nil && !os.IsNotExist(err) {
			return err
		}
		s.seqs = s.seqs[1:]
	}
	return nil
}

// list loads the stored checkpoints newest-first, skipping unreadable or
// corrupt files: recovery verifies proofs anyway, and a damaged checkpoint
// should degrade recovery, not abort it.
func (s *ckptStore) list() ([]Checkpoint, error) {
	out := make([]Checkpoint, 0, len(s.seqs))
	for i := len(s.seqs) - 1; i >= 0; i-- {
		data, err := os.ReadFile(ckptPath(s.dir, s.seqs[i]))
		if err != nil {
			continue
		}
		ck, err := decodeCheckpoint(data)
		if err != nil || ck.Seq != s.seqs[i] {
			continue
		}
		out = append(out, ck)
	}
	return out, nil
}
