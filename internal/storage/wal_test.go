package storage

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/types"
)

type rec struct {
	kind    RecordKind
	seq     types.SeqNum
	payload []byte
}

func collect(t *testing.T, s Store, from types.SeqNum) []rec {
	t.Helper()
	var out []rec
	err := s.Replay(from, func(kind RecordKind, seq types.SeqNum, payload []byte) error {
		cp := append([]byte(nil), payload...)
		out = append(out, rec{kind, seq, cp})
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []rec{
		{RecCommit, 1, []byte("alpha")},
		{RecOrder, 2, []byte("beta")},
		{RecCommit, 3, bytes.Repeat([]byte{0xab}, 1000)},
	}
	for _, r := range want {
		if err := s.Append(r.kind, r.seq, r.payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	got := collect(t, s, 0)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].kind != want[i].kind || got[i].seq != want[i].seq || !bytes.Equal(got[i].payload, want[i].payload) {
			t.Fatalf("record %d mismatch: %+v != %+v", i, got[i], want[i])
		}
	}
	// Replay filtering.
	if got := collect(t, s, 2); len(got) != 1 || got[0].seq != 3 {
		t.Fatalf("replay from 2: got %+v", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: everything still there, and appends continue.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := s2.Append(RecOrder, 4, []byte("gamma")); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, s2, 0); len(got) != 4 || got[3].seq != 4 {
		t.Fatalf("after reopen+append: got %d records", len(got))
	}
}

func TestWALSegmentRotationAndPrune(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 1; i <= 40; i++ {
		if err := s.Append(RecOrder, types.SeqNum(i), bytes.Repeat([]byte{byte(i)}, 50)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	segsBefore := countSegments(t, dir)
	if segsBefore < 5 {
		t.Fatalf("expected rotation to produce several segments, got %d", segsBefore)
	}
	if got := collect(t, s, 0); len(got) != 40 {
		t.Fatalf("replayed %d records across segments, want 40", len(got))
	}
	if err := s.Prune(30); err != nil {
		t.Fatal(err)
	}
	if segsAfter := countSegments(t, dir); segsAfter >= segsBefore {
		t.Fatalf("prune removed nothing: %d -> %d segments", segsBefore, segsAfter)
	}
	// Records above the watermark survive pruning.
	got := collect(t, s, 30)
	if len(got) != 10 || got[0].seq != 31 {
		t.Fatalf("after prune: got %d records starting at %d", len(got), got[0].seq)
	}
}

func countSegments(t *testing.T, dir string) int {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join(dir, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	return len(entries)
}

// TestWALTornTail covers the crash cases: a record cut mid-frame, trailing
// garbage, and a flipped payload byte. All must truncate to the last intact
// record instead of failing.
func TestWALTornTail(t *testing.T) {
	cases := []struct {
		name string
		want int // records surviving out of 5
		harm func(path string, cleanSize int64) error
	}{
		{"truncated-mid-record", 4, func(path string, cleanSize int64) error {
			return os.Truncate(path, cleanSize-3)
		}},
		// Trailing garbage costs nothing: every intact record survives.
		{"garbage-appended", 5, func(path string, cleanSize int64) error {
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				return err
			}
			defer f.Close()
			_, err = f.Write([]byte{0xde, 0xad, 0xbe})
			return err
		}},
		{"corrupted-last-payload", 4, func(path string, cleanSize int64) error {
			f, err := os.OpenFile(path, os.O_WRONLY, 0)
			if err != nil {
				return err
			}
			defer f.Close()
			_, err = f.WriteAt([]byte{0xff}, cleanSize-1)
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i <= 5; i++ {
				if err := s.Append(RecCommit, types.SeqNum(i), []byte(fmt.Sprintf("record-%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			path := segPath(filepath.Join(dir, "wal"), 1)
			info, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := tc.harm(path, info.Size()); err != nil {
				t.Fatal(err)
			}
			s2, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("open after %s: %v", tc.name, err)
			}
			defer s2.Close()
			got := collect(t, s2, 0)
			if len(got) != tc.want {
				t.Fatalf("after %s: replayed %d records, want %d (torn tail dropped)", tc.name, len(got), tc.want)
			}
			// The log must accept appends after truncation.
			if err := s2.Append(RecCommit, 6, []byte("post-recovery")); err != nil {
				t.Fatal(err)
			}
			if err := s2.Sync(); err != nil {
				t.Fatal(err)
			}
			got = collect(t, s2, 0)
			if len(got) != tc.want+1 || string(got[len(got)-1].payload) != "post-recovery" {
				t.Fatalf("append after truncation: got %d records", len(got))
			}
		})
	}
}

// TestWALTornTailDropsLaterSegments: a tear in an earlier segment makes all
// later segments unreachable (append order is authoritative), so open must
// remove them.
func TestWALTornTailDropsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 20; i++ {
		if err := s.Append(RecOrder, types.SeqNum(i), bytes.Repeat([]byte{byte(i)}, 40)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if countSegments(t, dir) < 3 {
		t.Fatalf("need at least 3 segments, got %d", countSegments(t, dir))
	}
	// Corrupt the first record of segment 2.
	path := segPath(filepath.Join(dir, "wal"), 2)
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xff, 0xff, 0xff, 0xff}, 4); err != nil {
		t.Fatal(err)
	}
	f.Close()
	s2, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := collect(t, s2, 0)
	for _, r := range got {
		if r.seq > 2 { // segment 1 holds seqs 1..2 with 40-byte payloads
			t.Fatalf("record %d survived beyond the torn segment", r.seq)
		}
	}
	if countSegments(t, dir) != 2 { // truncated segment 2 + fresh active 2? no: seg2 truncated to 0 and kept, later removed
		// Segment 2 is truncated to its valid prefix (zero bytes) and
		// remains the active segment; segments 3+ are deleted.
		t.Fatalf("later segments not removed: %d segment files", countSegments(t, dir))
	}
}

func TestWALAppendVisibleBeforeSync(t *testing.T) {
	// Replay must see buffered appends (it flushes first): recovery-time
	// consumers never observe a store that hides acknowledged appends.
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Append(RecCommit, 1, []byte("unsynced")); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, s, 0); len(got) != 1 {
		t.Fatalf("buffered append invisible to replay: %d records", len(got))
	}
}
