//go:build unix

package storage

import "testing"

// TestOpenLocksDirectory: a second Open over a live store must fail loudly
// (two WAL writers would interleave frames into the same segment and read
// back as a torn tail), while both the graceful Close and the crash-style
// Abandon release the lock for the next incarnation.
func TestOpenLocksDirectory(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("second Open over a live store succeeded")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	if err := s2.Append(RecCommit, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	s2.Abandon()
	s3, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after Abandon: %v", err)
	}
	defer s3.Close()
	// The abandoned store's buffered append died unflushed, like a crash.
	if got := collect(t, s3, 0); len(got) != 0 {
		t.Fatalf("abandoned (unsynced) append survived: %d records", len(got))
	}
}
