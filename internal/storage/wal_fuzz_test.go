package storage

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/types"
)

// WAL-framing fuzz targets for the vote-record WAL: whatever an
// interrupted write or a scribbling disk leaves at the tail, reopening the
// log must never panic, must recover exactly the durable record prefix, and
// must never fabricate a record that was not written (a phantom vote).

// fuzzWriteWAL fills a fresh WAL with n deterministic vote-sized records
// across small segments and closes it cleanly, returning what was written.
func fuzzWriteWAL(t *testing.T, dir string, n int) []rec {
	t.Helper()
	w, err := openWAL(dir, Options{SegmentBytes: 256, RetainCheckpoints: 2})
	if err != nil {
		t.Fatal(err)
	}
	var want []rec
	for i := 1; i <= n; i++ {
		payload := []byte(fmt.Sprintf("vote-%02d-%s", i, bytes.Repeat([]byte{byte(i)}, 49)))
		kind := RecVote
		if i%3 == 0 {
			kind = RecView
		}
		if err := w.append(kind, types.SeqNum(i), payload); err != nil {
			t.Fatal(err)
		}
		want = append(want, rec{kind, types.SeqNum(i), payload})
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	return want
}

func newestSeg(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range entries {
		if !e.IsDir() {
			segs = append(segs, e.Name())
		}
	}
	if len(segs) == 0 {
		t.Fatal("no segments")
	}
	sort.Strings(segs)
	return filepath.Join(dir, segs[len(segs)-1])
}

func replayAll(t *testing.T, dir string) []rec {
	t.Helper()
	w, err := openWAL(dir, Options{SegmentBytes: 256, RetainCheckpoints: 2})
	if err != nil {
		t.Fatalf("reopen after corruption: %v", err)
	}
	defer w.close()
	var got []rec
	err = w.replay(0, func(kind RecordKind, seq types.SeqNum, payload []byte) error {
		got = append(got, rec{kind, seq, append([]byte(nil), payload...)})
		return nil
	})
	if err != nil {
		t.Fatalf("replay after corruption: %v", err)
	}
	return got
}

// FuzzWALTornTail chops an arbitrary number of bytes off the newest segment
// and smears a run of a single filler byte over the cut — the shapes an
// interrupted write leaves behind. Reopening must yield exactly a prefix of
// the written records: nothing phantom, nothing out of order, and the log
// must stay appendable.
func FuzzWALTornTail(f *testing.F) {
	f.Add(uint16(0), byte(0), uint16(0))
	f.Add(uint16(1), byte(0xba), uint16(5))
	f.Add(uint16(37), byte(0xff), uint16(64))
	f.Add(uint16(300), byte(0x01), uint16(500))
	f.Fuzz(func(t *testing.T, cut uint16, fill byte, fillLen uint16) {
		dir := t.TempDir()
		want := fuzzWriteWAL(t, dir, 8)

		seg := newestSeg(t, dir)
		info, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		n := int64(cut) % (info.Size() + 1)
		if err := os.Truncate(seg, info.Size()-n); err != nil {
			t.Fatal(err)
		}
		if fillLen > 0 {
			fh, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			// A repeated filler byte can never complete a valid frame
			// within its own length, so the recovered log must be a
			// strict prefix of what was written.
			if _, err := fh.Write(bytes.Repeat([]byte{fill}, int(fillLen)%512)); err != nil {
				t.Fatal(err)
			}
			fh.Close()
		}

		got := replayAll(t, dir)
		if len(got) > len(want) {
			t.Fatalf("phantom records: replayed %d, wrote %d", len(got), len(want))
		}
		for i := range got {
			if got[i].kind != want[i].kind || got[i].seq != want[i].seq || !bytes.Equal(got[i].payload, want[i].payload) {
				t.Fatalf("record %d corrupted: %+v != %+v", i, got[i], want[i])
			}
		}

		// The truncated log must accept and retain new appends.
		w, err := openWAL(dir, Options{SegmentBytes: 256, RetainCheckpoints: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.append(RecVote, 99, []byte("after-tear")); err != nil {
			t.Fatal(err)
		}
		if err := w.close(); err != nil {
			t.Fatal(err)
		}
		final := replayAll(t, dir)
		if len(final) != len(got)+1 || !bytes.Equal(final[len(final)-1].payload, []byte("after-tear")) {
			t.Fatal("log not appendable after tear recovery")
		}
	})
}

// FuzzWALGarbageTail appends arbitrary attacker-chosen bytes after the last
// intact record. Every written record must survive, and the only admissible
// extras are byte strings the garbage itself frames as CRC-valid records —
// which the scan of the garbage alone predicts exactly. Anything else is a
// phantom.
func FuzzWALGarbageTail(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xde, 0xad, 0xbe, 0xef})
	f.Add(bytes.Repeat([]byte{0}, 40))
	f.Fuzz(func(t *testing.T, garbage []byte) {
		dir := t.TempDir()
		want := fuzzWriteWAL(t, dir, 5)

		// Predict which records (if any) the garbage itself would frame
		// when scanned from a record boundary.
		gfile := filepath.Join(t.TempDir(), "garbage")
		if err := os.WriteFile(gfile, garbage, 0o644); err != nil {
			t.Fatal(err)
		}
		var extras []rec
		if _, _, err := scanSegment(gfile, 0, func(kind RecordKind, seq types.SeqNum, payload []byte) error {
			extras = append(extras, rec{kind, seq, append([]byte(nil), payload...)})
			return nil
		}); err != nil {
			t.Fatal(err)
		}

		seg := newestSeg(t, dir)
		fh, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fh.Write(garbage); err != nil {
			t.Fatal(err)
		}
		fh.Close()

		got := replayAll(t, dir)
		wantAll := append(append([]rec(nil), want...), extras...)
		if len(got) != len(wantAll) {
			t.Fatalf("replayed %d records, want %d written + %d garbage-framed", len(got), len(want), len(extras))
		}
		for i := range got {
			if got[i].kind != wantAll[i].kind || got[i].seq != wantAll[i].seq || !bytes.Equal(got[i].payload, wantAll[i].payload) {
				t.Fatalf("record %d mismatch after garbage tail", i)
			}
		}
	})
}
