package storage

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/types"
)

func mkCkpt(seq types.SeqNum) Checkpoint {
	payload := []byte(fmt.Sprintf("state-at-%d", seq))
	return Checkpoint{
		Seq:     seq,
		Digest:  types.DigestBytes(payload),
		Proof:   []byte(fmt.Sprintf("proof-%d", seq)),
		Payload: payload,
	}
}

func TestCheckpointSaveLoadRetention(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{RetainCheckpoints: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, seq := range []types.SeqNum{64, 128, 192} {
		if err := s.SaveCheckpoint(mkCkpt(seq)); err != nil {
			t.Fatal(err)
		}
	}
	cks, err := s.Checkpoints()
	if err != nil {
		t.Fatal(err)
	}
	if len(cks) != 2 || cks[0].Seq != 192 || cks[1].Seq != 128 {
		t.Fatalf("retention: got %d checkpoints, newest %d", len(cks), cks[0].Seq)
	}
	want := mkCkpt(192)
	if cks[0].Digest != want.Digest || !bytes.Equal(cks[0].Proof, want.Proof) || !bytes.Equal(cks[0].Payload, want.Payload) {
		t.Fatalf("checkpoint 192 did not round-trip: %+v", cks[0])
	}
	s.Close()

	// Reopen sees the same set.
	s2, err := Open(dir, Options{RetainCheckpoints: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	cks, err = s2.Checkpoints()
	if err != nil {
		t.Fatal(err)
	}
	if len(cks) != 2 || cks[0].Seq != 192 {
		t.Fatalf("after reopen: got %d checkpoints, newest %d", len(cks), cks[0].Seq)
	}
	// Saving an already-stored sequence number is a no-op, not an error
	// (recovery re-stabilizes replayed checkpoints).
	if err := s2.SaveCheckpoint(mkCkpt(192)); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointCorruptNewestSkipped(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveCheckpoint(mkCkpt(64)); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveCheckpoint(mkCkpt(128)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Flip a byte in the newest checkpoint's payload region.
	path := ckptPath(filepath.Join(dir, "ckpt"), 128)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-8] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	cks, err := s2.Checkpoints()
	if err != nil {
		t.Fatal(err)
	}
	if len(cks) != 1 || cks[0].Seq != 64 {
		t.Fatalf("corrupt newest not skipped: got %d checkpoints, first %d", len(cks), cks[0].Seq)
	}
}

func TestCheckpointTempLeftoverSweep(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveCheckpoint(mkCkpt(64)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Simulate a crash mid-save: a temp file that never got renamed.
	tmp := filepath.Join(dir, "ckpt", tmpPrefix+"128")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("temp leftover not swept: %v", err)
	}
	cks, err := s2.Checkpoints()
	if err != nil {
		t.Fatal(err)
	}
	if len(cks) != 1 || cks[0].Seq != 64 {
		t.Fatalf("got %d checkpoints after sweep", len(cks))
	}
}
