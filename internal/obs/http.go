package obs

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// OpsServer is the operator HTTP endpoint: /metrics (Prometheus text),
// /debug/trace (the span ring as JSON), and the standard /debug/pprof
// handlers on a private mux — deliberately not http.DefaultServeMux, so
// embedding processes cannot leak the endpoint onto other servers.
//
// Close shuts the listener down and waits for the serve goroutine and all
// in-flight handlers, so a stopped node leaks nothing (the goroutine-leak
// test in saebft pins this).
type OpsServer struct {
	ln  net.Listener
	srv *http.Server

	mu     sync.Mutex
	done   chan struct{}
	closed bool
}

// ServeOps binds addr (host:port; ":0" picks a free port) and serves the
// registry and tracer until Close. Either may be nil (the endpoint then
// serves empty output for it).
func ServeOps(addr string, reg *Registry, tr *Tracer) (*OpsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			Total uint64 `json:"total"`
			Spans []Span `json:"spans"`
		}{Total: tr.Total(), Spans: tr.Dump()})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &OpsServer{
		ln:   ln,
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second},
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		s.srv.Serve(ln) // returns on Close
	}()
	return s, nil
}

// Addr returns the bound listen address.
func (s *OpsServer) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops listening, closes every connection, and waits for the serve
// goroutine. Idempotent; nil-safe.
func (s *OpsServer) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	// Close (not Shutdown): the pprof profile handler can legitimately hold
	// a connection open for its full profiling window, and a stopping node
	// must not wait on it.
	err := s.srv.Close()
	<-s.done
	return err
}

// Drain is the graceful counterpart to Close: it stops listening, lets
// in-flight handlers finish — including a pprof profiling window — and then
// waits for the serve goroutine. For short-lived processes (saebft-bench)
// whose whole point of serving the endpoint is a profile capture that may
// outlast the workload. Idempotent; nil-safe.
func (s *OpsServer) Drain() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.srv.Shutdown(context.Background())
	<-s.done
	return err
}
