package obs

import "sync"

// Span stages through the request lifecycle, in protocol order. One request
// leaves a trail: submit at the primary, the batch it was cut into, that
// batch's agreement phases, its execution, and the reply (or, on the read
// path, the certified read served). Stage strings are part of the
// /debug/trace output contract; docs/ARCHITECTURE.md diagrams them.
const (
	StageSubmit     = "submit"      // request accepted into the primary's queue
	StageBatchCut   = "batch_cut"   // primary cut a batch and proposed it
	StagePrePrepare = "pre_prepare" // replica accepted a pre-prepare
	StagePrepared   = "prepared"    // 2f matching prepares collected
	StageCommitted  = "committed"   // 2f+1 matching commits collected
	StageExecuted   = "executed"    // agreement-side execution (certificate released)
	StageApply      = "apply"       // execution replica applied the batch
	StageReply      = "reply"       // reply shares emitted toward the certifiers
	StageReadServe  = "read_serve"  // execution replica answered a certified read
	StageViewChange = "view_change" // replica abandoned its view
	StageNewView    = "new_view"    // replica installed a new view
	StageCheckpoint = "checkpoint"  // stable checkpoint formed
)

// Span is one lifecycle record. At is in the recording component's clock
// units (nanoseconds): virtual time under the simulator — so traces are
// deterministic across runs — and monotonic-since-start under TCP.
type Span struct {
	At    int64  `json:"at_ns"`
	Node  int    `json:"node"`
	Stage string `json:"stage"`
	Seq   uint64 `json:"seq,omitempty"`
	View  uint64 `json:"view,omitempty"`
	// Note carries stage-specific detail: "client=5 ts=12" on submit,
	// "reqs=8" on batch_cut, the refusal reason on reads, and so on.
	Note string `json:"note,omitempty"`
}

// Tracer keeps the newest spans in a fixed ring. Recording is cheap (one
// mutex, no allocation beyond the slot) and never blocks on readers; when
// the ring wraps, the oldest spans are overwritten. All methods no-op (or
// return zero values) on a nil receiver.
type Tracer struct {
	mu    sync.Mutex
	ring  []Span
	next  int
	total uint64
}

// DefaultTraceCap is the span capacity used when none is given: enough to
// hold the full lifecycle of several hundred recent operations.
const DefaultTraceCap = 4096

// NewTracer returns a tracer holding the newest capacity spans (<=0 takes
// DefaultTraceCap).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Tracer{ring: make([]Span, capacity)}
}

// Record appends one span, overwriting the oldest once the ring is full.
func (t *Tracer) Record(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.ring[t.next] = s
	t.next = (t.next + 1) % len(t.ring)
	t.total++
	t.mu.Unlock()
}

// Dump returns the retained spans, oldest first. Not for consensus code
// (the trace plane is write-only there).
func (t *Tracer) Dump() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := len(t.ring)
	if t.total < uint64(n) {
		out := make([]Span, t.next)
		copy(out, t.ring[:t.next])
		return out
	}
	out := make([]Span, 0, n)
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Total reports how many spans were ever recorded (including overwritten
// ones). Not for consensus code.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}
