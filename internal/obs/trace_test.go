package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestTracerRing(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 3; i++ {
		tr.Record(Span{At: int64(i), Stage: StageSubmit})
	}
	got := tr.Dump()
	if len(got) != 3 || got[0].At != 0 || got[2].At != 2 {
		t.Fatalf("partial ring dump = %+v", got)
	}
	for i := 3; i < 10; i++ {
		tr.Record(Span{At: int64(i), Stage: StageBatchCut})
	}
	got = tr.Dump()
	if len(got) != 4 {
		t.Fatalf("full ring holds %d spans, want 4", len(got))
	}
	// Oldest-first: the newest 4 of 10 records are 6..9.
	for i, s := range got {
		if want := int64(6 + i); s.At != want {
			t.Fatalf("dump[%d].At = %d, want %d", i, s.At, want)
		}
	}
	if tr.Total() != 10 {
		t.Fatalf("total = %d, want 10", tr.Total())
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(128)
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				tr.Record(Span{At: int64(i), Node: w, Stage: StageApply})
			}
		}(w)
	}
	for i := 0; i < 20; i++ {
		tr.Dump()
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	if tr.Total() != 4000 {
		t.Fatalf("total = %d, want 4000", tr.Total())
	}
}

// TestOpsServer drives the three endpoint families end to end and then
// checks Close leaks no goroutines — the ops-server half of the issue's
// shutdown-leak guard (the node-level half lives in the saebft tests).
func TestOpsServer(t *testing.T) {
	before := runtime.NumGoroutine()

	reg := NewRegistry()
	reg.Counter("saebft_test_total", "t", L("node", "9")).Add(41)
	tr := NewTracer(16)
	tr.Record(Span{At: 5, Node: 9, Stage: StageExecuted, Seq: 3})
	s, err := ServeOps("127.0.0.1:0", reg, tr)
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + s.Addr()

	body := httpGet(t, base+"/metrics")
	if !strings.Contains(body, `saebft_test_total{node="9"} 41`) {
		t.Fatalf("/metrics missing series:\n%s", body)
	}
	if _, err := parsePrometheusText(body); err != nil {
		t.Fatalf("/metrics not parseable: %v", err)
	}

	var dump struct {
		Total uint64 `json:"total"`
		Spans []Span `json:"spans"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, base+"/debug/trace")), &dump); err != nil {
		t.Fatalf("/debug/trace JSON: %v", err)
	}
	if dump.Total != 1 || len(dump.Spans) != 1 || dump.Spans[0].Stage != StageExecuted {
		t.Fatalf("/debug/trace = %+v", dump)
	}

	if body := httpGet(t, base+"/debug/pprof/cmdline"); body == "" {
		t.Fatal("/debug/pprof/cmdline empty")
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	// The serve goroutine and every handler must be gone.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutines leaked after Close: %d > %d\n%s", n, before, buf[:runtime.Stack(buf, true)])
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func ExampleRegistry_WritePrometheus() {
	r := NewRegistry()
	r.Counter("example_total", "an example counter", L("node", "0")).Add(2)
	var sb strings.Builder
	r.WritePrometheus(&sb)
	fmt.Print(sb.String())
	// Output:
	// # HELP example_total an example counter
	// # TYPE example_total counter
	// example_total{node="0"} 2
}
