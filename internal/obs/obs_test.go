package obs

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops", L("node", "0"))
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("test_ops_total", "ops", L("node", "0")); again != c {
		t.Fatalf("get-or-create returned a different counter")
	}
	g := r.Gauge("test_depth", "depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	h := r.Histogram("test_lat_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("histogram count = %d, want 5", got)
	}
	if got, want := h.Sum(), 0.005+0.01+0.05+0.5+5; math.Abs(got-want) > 1e-12 {
		t.Fatalf("histogram sum = %v, want %v", got, want)
	}
	// Cumulative buckets: le=0.01 has 2 (0.005, 0.01 — bounds are
	// inclusive), le=0.1 has 3, le=1 has 4, +Inf has 5.
	var buckets []float64
	for _, s := range r.Snapshot() {
		if s.Name == "test_lat_seconds_bucket" {
			buckets = append(buckets, s.Value)
		}
	}
	want := []float64{2, 3, 4, 5}
	if fmt.Sprint(buckets) != fmt.Sprint(want) {
		t.Fatalf("cumulative buckets = %v, want %v", buckets, want)
	}
}

// TestRegistryConcurrent drives every instrument type from many goroutines
// while scraping; run under -race this is the registry's thread-safety
// proof.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, iters = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			node := L("node", strconv.Itoa(w%3))
			for i := 0; i < iters; i++ {
				r.Counter("cc_total", "c", node).Inc()
				r.Gauge("cg", "g", node).Set(int64(i))
				r.Histogram("ch_seconds", "h", LatencyBuckets, node).Observe(float64(i%100) / 1000)
				if i%64 == 0 {
					r.GaugeFunc("cf", "f", func() float64 { return 1 }, node)
				}
			}
		}(w)
	}
	// Concurrent scrapers.
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var sb strings.Builder
				if err := r.WritePrometheus(&sb); err != nil {
					t.Errorf("WritePrometheus: %v", err)
				}
				r.Snapshot()
			}
		}()
	}
	wg.Wait()
	var total uint64
	for n := 0; n < 3; n++ {
		total += r.Counter("cc_total", "c", L("node", strconv.Itoa(n))).Value()
	}
	if want := uint64(workers * iters); total != want {
		t.Fatalf("summed counters = %d, want %d", total, want)
	}
}

// TestPrometheusExposition pins the exact text format for a fixed registry
// and then runs the output through a strict text-format parser — the
// "golden test that a Prometheus text parser accepts" from the issue.
func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("saebft_pbft_batches_total", "batches ordered", L("node", "0")).Add(3)
	r.Counter("saebft_pbft_batches_total", "batches ordered", L("node", "1")).Add(2)
	r.Gauge("saebft_exec_queue_depth", "pending order certificates", L("node", "100")).Set(4)
	h := r.Histogram("saebft_wal_fsync_seconds", "fsync latency", []float64{0.001, 0.01}, L("node", "0"))
	h.Observe(0.0005)
	h.Observe(0.5)
	r.GaugeFunc("saebft_link_peer_queue_depth", "outbound frames queued",
		func() float64 { return 7 }, L("node", "0"), L("peer", "2"))

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := `# HELP saebft_exec_queue_depth pending order certificates
# TYPE saebft_exec_queue_depth gauge
saebft_exec_queue_depth{node="100"} 4
# HELP saebft_link_peer_queue_depth outbound frames queued
# TYPE saebft_link_peer_queue_depth gauge
saebft_link_peer_queue_depth{node="0",peer="2"} 7
# HELP saebft_pbft_batches_total batches ordered
# TYPE saebft_pbft_batches_total counter
saebft_pbft_batches_total{node="0"} 3
saebft_pbft_batches_total{node="1"} 2
# HELP saebft_wal_fsync_seconds fsync latency
# TYPE saebft_wal_fsync_seconds histogram
saebft_wal_fsync_seconds_bucket{le="0.001",node="0"} 1
saebft_wal_fsync_seconds_bucket{le="0.01",node="0"} 1
saebft_wal_fsync_seconds_bucket{le="+Inf",node="0"} 2
saebft_wal_fsync_seconds_sum{node="0"} 0.5005
saebft_wal_fsync_seconds_count{node="0"} 2
`
	if got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if _, err := parsePrometheusText(got); err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
}

// TestExpositionAlwaysParses feeds a registry with awkward values (label
// escaping, huge and fractional numbers) and checks the parser still
// accepts the output.
func TestExpositionAlwaysParses(t *testing.T) {
	r := NewRegistry()
	r.Gauge("g1", `help with \ backslash and "quotes"`, L("k", `va"l\ue`+"\nnl")).Set(-12)
	r.Counter("big_total", "big").Add(1 << 62)
	r.Histogram("h_seconds", "h", LatencyBuckets).Observe(0.000123)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	samples, err := parsePrometheusText(sb.String())
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, sb.String())
	}
	if samples == 0 {
		t.Fatal("parser saw no samples")
	}
}

func TestUnregister(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("peer_depth", "d", func() float64 { return 1 }, L("peer", "1"))
	r.GaugeFunc("peer_depth", "d", func() float64 { return 2 }, L("peer", "2"))
	r.Unregister("peer_depth", L("peer", "1"))
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	if strings.Contains(out, `peer="1"`) {
		t.Fatalf("unregistered series still exposed:\n%s", out)
	}
	if !strings.Contains(out, `peer="2"`) {
		t.Fatalf("surviving series missing:\n%s", out)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "x")
	g := r.Gauge("y", "y")
	h := r.Histogram("z", "z", CountBuckets)
	var tr *Tracer
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	tr.Record(Span{Stage: StageSubmit})
	r.CounterFunc("f_total", "f", func() uint64 { return 1 })
	r.GaugeFunc("fg", "f", func() float64 { return 1 })
	r.Unregister("x_total")
	if r.Snapshot() != nil || tr.Dump() != nil || tr.Total() != 0 {
		t.Fatal("nil registry/tracer returned non-zero data")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	var s *OpsServer
	if s.Addr() != "" || s.Close() != nil {
		t.Fatal("nil ops server misbehaved")
	}
}

// parsePrometheusText is a strict parser for the text exposition format
// v0.0.4: it validates comment lines, metric-name and label grammar, value
// syntax, and that every sample line belongs to a # TYPE-declared family.
// Returns the number of samples parsed.
func parsePrometheusText(text string) (int, error) {
	types := map[string]string{}
	samples := 0
	validName := func(s string) bool {
		for i, r := range s {
			ok := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (i > 0 && r >= '0' && r <= '9')
			if !ok {
				return false
			}
		}
		return len(s) > 0
	}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, _ := strings.Cut(rest, " ")
			if !validName(name) {
				return 0, fmt.Errorf("line %d: bad HELP metric name %q", ln+1, name)
			}
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 || !validName(fields[0]) {
				return 0, fmt.Errorf("line %d: bad TYPE line %q", ln+1, line)
			}
			switch fields[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return 0, fmt.Errorf("line %d: unknown type %q", ln+1, fields[1])
			}
			types[fields[0]] = fields[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			return 0, fmt.Errorf("line %d: unknown comment %q", ln+1, line)
		}
		// Sample line: name[{labels}] value
		name := line
		rest := ""
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name, rest = line[:i], line[i:]
		}
		if !validName(name) {
			return 0, fmt.Errorf("line %d: bad metric name %q", ln+1, name)
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if b, ok := strings.CutSuffix(name, suffix); ok && types[b] == "histogram" {
				base = b
			}
		}
		if _, ok := types[base]; !ok {
			return 0, fmt.Errorf("line %d: sample %q precedes its TYPE declaration", ln+1, name)
		}
		if strings.HasPrefix(rest, "{") {
			end := strings.Index(rest, "} ")
			if end < 0 {
				return 0, fmt.Errorf("line %d: unterminated label set", ln+1)
			}
			labels := rest[1:end]
			rest = rest[end+1:]
			for _, pair := range splitLabels(labels) {
				k, v, ok := strings.Cut(pair, "=")
				if !ok || !validName(k) || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
					return 0, fmt.Errorf("line %d: bad label pair %q", ln+1, pair)
				}
			}
		}
		val := strings.TrimSpace(rest)
		if val != "+Inf" && val != "-Inf" && val != "NaN" {
			if _, err := strconv.ParseFloat(val, 64); err != nil {
				return 0, fmt.Errorf("line %d: bad value %q: %v", ln+1, val, err)
			}
		}
		samples++
	}
	if samples == 0 {
		return 0, fmt.Errorf("no samples")
	}
	return samples, nil
}

// splitLabels splits k1="v1",k2="v2" at commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
