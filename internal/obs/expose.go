package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one exposed time series value. Histograms expand into their
// cumulative <name>_bucket{le=...}, <name>_sum, and <name>_count samples,
// so a Snapshot is exactly what the text exposition serializes.
type Sample struct {
	Name   string
	Labels []Label
	Value  float64
}

// snapshotSeries expands one series into samples. Histogram bucket counts
// are read bucket-by-bucket without a lock; the slight skew between buckets
// of a moving histogram is inherent to lock-free collection and harmless
// for monitoring.
func (f *family) snapshotSeries(s *series) []Sample {
	switch {
	case s.c != nil:
		return []Sample{{Name: f.name, Labels: s.labels, Value: float64(s.c.Value())}}
	case s.cFn != nil:
		return []Sample{{Name: f.name, Labels: s.labels, Value: float64(s.cFn())}}
	case s.g != nil:
		return []Sample{{Name: f.name, Labels: s.labels, Value: float64(s.g.Value())}}
	case s.gFn != nil:
		return []Sample{{Name: f.name, Labels: s.labels, Value: s.gFn()}}
	case s.h != nil:
		h := s.h
		out := make([]Sample, 0, len(h.bounds)+3)
		withLE := func(le string) []Label {
			ls := append(append([]Label{}, s.labels...), Label{"le", le})
			sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
			return ls
		}
		var cum uint64
		for i, ub := range h.bounds {
			cum += h.counts[i].Load()
			out = append(out, Sample{Name: f.name + "_bucket", Labels: withLE(formatFloat(ub)), Value: float64(cum)})
		}
		cum += h.counts[len(h.bounds)].Load()
		out = append(out,
			Sample{Name: f.name + "_bucket", Labels: withLE("+Inf"), Value: float64(cum)},
			Sample{Name: f.name + "_sum", Labels: s.labels, Value: h.Sum()},
			Sample{Name: f.name + "_count", Labels: s.labels, Value: float64(h.count.Load())},
		)
		return out
	}
	return nil
}

// orderedFamilies returns the families sorted by name, and each family's
// series sorted by label signature — a stable exposition order.
func (r *Registry) orderedFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

func (f *family) orderedSeries() []*series {
	f.mu.Lock()
	out := make([]*series, 0, len(f.series))
	for _, s := range f.series {
		out = append(out, s)
	}
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].sig < out[j].sig })
	return out
}

// Snapshot returns every sample in exposition order. Safe to call
// concurrently with updates; nil registries return nil.
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	var out []Sample
	for _, f := range r.orderedFamilies() {
		for _, s := range f.orderedSeries() {
			out = append(out, f.snapshotSeries(s)...)
		}
	}
	return out
}

// WritePrometheus serializes the registry in Prometheus text exposition
// format version 0.0.4 (# HELP / # TYPE headers, one sample per line).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	var b strings.Builder
	for _, f := range r.orderedFamilies() {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.k)
		for _, s := range f.orderedSeries() {
			for _, smp := range f.snapshotSeries(s) {
				writeSample(&b, smp)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeSample(b *strings.Builder, s Sample) {
	b.WriteString(s.Name)
	if len(s.Labels) > 0 {
		b.WriteByte('{')
		for i, l := range s.Labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l.Key)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(l.Value))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(s.Value))
	b.WriteByte('\n')
}

// formatFloat renders a sample value: integral values without an exponent
// or trailing zeros (counters read naturally), the rest in shortest form.
func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	return strings.NewReplacer(`\`, `\\`, "\n", `\n`).Replace(s)
}

func escapeLabel(s string) string {
	return strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(s)
}
