// Package obs is the cluster's observability plane: a dependency-free
// metrics registry (counters, gauges, fixed-bucket histograms, exposed in
// Prometheus text format) plus a bounded per-operation trace ring.
//
// Two disciplines shape the API, both enforced by saebft-lint:
//
//   - Write-only from consensus code. The deterministic protocol cores
//     (pbft, execnode) may increment, set, observe, and record — they may
//     never read a metric back, so no observability value can leak into a
//     digest, an encoded message, or a WAL record and re-introduce the
//     nondeterminism the simulator exists to exclude. The simdeterminism
//     analyzer rejects any read-side call from those packages.
//
//   - Timestamps are the caller's. Nothing in this package reads a clock;
//     latency observations and span timestamps arrive as values the caller
//     derived from its own time source — the protocol clock (virtual under
//     the simulator, monotonic under TCP) inside the deterministic cores,
//     the wall clock in the I/O layers (storage, transport) that sit
//     outside the determinism contract.
//
// Every instrument and the registry itself are nil-receiver safe: a
// component built without observability calls the same methods against nil
// and they no-op, so the instrumented code paths carry no conditionals.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension, e.g. {"node", "0"} or {"phase", "commit"}.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Default bucket layouts. Latencies are observed in seconds (Prometheus
// convention); sizes in natural units of the series.
var (
	// LatencyBuckets spans 100µs..10s — sub-millisecond loopback rounds
	// through WAN view changes.
	LatencyBuckets = []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
	// CountBuckets covers batch/record counts (powers of two up to 1024).
	CountBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
	// ByteBuckets covers payload sizes (256 B .. 16 MiB).
	ByteBuckets = []float64{256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20}
)

// Seconds converts a duration in nanoseconds (the protocol clock's unit) to
// the seconds Histogram observations use.
func Seconds(ns int64) float64 { return float64(ns) / 1e9 }

// Counter is a monotonically increasing uint64. Safe for concurrent use;
// all methods no-op on a nil receiver.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value reads the current count. Not for consensus code (write-only there).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64. Safe for concurrent use; all methods no-op on
// a nil receiver.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by d (negative to decrease).
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Value reads the gauge. Not for consensus code (write-only there).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram: counts per upper bound plus a
// +Inf bucket, a sum, and a total count. Safe for concurrent use; Observe
// no-ops on a nil receiver.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomicFloat
	count  atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.sum.add(v)
	h.count.Add(1)
}

// Count reads the total number of observations. Not for consensus code.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reads the sum of all observations. Not for consensus code.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.load()
}

// atomicFloat is a float64 updated via CAS on its bit pattern.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// kind discriminates what a family's series hold.
type kind uint8

const (
	kindCounter kind = iota + 1
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is one (family, label set) time series.
type series struct {
	labels []Label
	sig    string // canonical label signature, sorted by key

	c   *Counter
	g   *Gauge
	h   *Histogram
	cFn func() uint64  // func-backed counter (folds external atomics in)
	gFn func() float64 // func-backed gauge
}

// family groups every series sharing one metric name.
type family struct {
	name, help string
	k          kind

	mu     sync.Mutex
	series map[string]*series
}

// Registry holds metric families and hands out get-or-create instruments.
// All methods are safe for concurrent use and no-op (returning nil
// instruments) on a nil receiver, so "observability off" needs no
// conditionals at instrumentation sites.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{fams: make(map[string]*family)} }

// sig canonicalizes a label set; the labels slice is sorted in place.
func sig(labels []Label) string {
	sort.Slice(labels, func(i, j int) bool { return labels[i].Key < labels[j].Key })
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte(',')
	}
	return b.String()
}

// fam returns (creating if needed) the family, panicking on a kind clash —
// that is a programming error on the level of registering two variables
// with one name.
func (r *Registry) fam(name, help string, k kind) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, k: k, series: make(map[string]*series)}
		r.fams[name] = f
		return f
	}
	if f.k != k {
		panic(fmt.Sprintf("obs: metric %q registered as both %v and %v", name, f.k, k))
	}
	return f
}

// get returns (creating via mk if needed) the series for the label set.
func (f *family) get(labels []Label, mk func() *series) *series {
	key := sig(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s := f.series[key]; s != nil {
		return s
	}
	s := mk()
	s.labels = labels
	s.sig = key
	f.series[key] = s
	return s
}

// Counter returns the counter for (name, labels), creating it at zero on
// first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.fam(name, help, kindCounter).get(labels, func() *series { return &series{c: &Counter{}} }).c
}

// Gauge returns the gauge for (name, labels), creating it at zero on first
// use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.fam(name, help, kindGauge).get(labels, func() *series { return &series{g: &Gauge{}} }).g
}

// Histogram returns the histogram for (name, labels) with the given upper
// bounds (strictly increasing; +Inf implicit), creating it on first use.
// Later calls reuse the first bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.fam(name, help, kindHistogram).get(labels, func() *series {
		b := make([]float64, len(bounds))
		copy(b, bounds)
		return &series{h: &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}}
	}).h
}

// CounterFunc registers a counter whose value is read from fn at collection
// time — the bridge for subsystems that already keep their own atomic
// counters (transport link stats). fn must be safe for concurrent use.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	if r == nil {
		return
	}
	f := r.fam(name, help, kindCounter)
	s := f.get(labels, func() *series { return &series{cFn: fn} })
	if s.cFn == nil && s.c == nil {
		s.cFn = fn
	}
}

// GaugeFunc registers a gauge whose value is read from fn at collection
// time. fn must be safe for concurrent use (e.g. len of a channel, an
// atomic load).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	f := r.fam(name, help, kindGauge)
	s := f.get(labels, func() *series { return &series{gFn: fn} })
	if s.gFn == nil && s.g == nil {
		s.gFn = fn
	}
}

// Unregister removes one series (per-peer gauges die with their peer on
// transport Close). Removing the last series keeps the family registered so
// the name stays in the exposition with no samples.
func (r *Registry) Unregister(name string, labels ...Label) {
	if r == nil {
		return
	}
	r.mu.Lock()
	f := r.fams[name]
	r.mu.Unlock()
	if f == nil {
		return
	}
	key := sig(labels)
	f.mu.Lock()
	delete(f.series, key)
	f.mu.Unlock()
}
