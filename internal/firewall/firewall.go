// Package firewall implements the privacy firewall of §4: an (h+1)×(h+1)
// grid of filter nodes between the agreement and execution clusters that
// tolerates up to h Byzantine filters while guaranteeing both availability
// (one all-correct column always remains as a path) and confidentiality (one
// all-correct row — the "correct cut" — always filters what flows down).
//
// Filters pass request/agreement certificates up and reply certificates
// down. The per-sequence state table (null → seen → reply) ensures a filter
// multicasts at most one reply per request received from below, removing the
// reply-count covert channel; threshold signatures assembled at the top row
// make reply certificates byte-deterministic regardless of which correct
// executors answered, removing the membership-set covert channel (§4.2.2).
// Filters never see request or reply bodies in the clear: bodies are sealed
// between client and executors (§4.2.3).
package firewall

import (
	"fmt"

	"repro/internal/replycert"
	"repro/internal/transport"
	"repro/internal/types"
	"repro/internal/wire"
)

// Config parameterizes one filter node.
type Config struct {
	ID       types.NodeID
	Topology *types.Topology

	// Row is this filter's grid row: 0 is adjacent to the agreement
	// cluster, h (top) is adjacent to the execution cluster.
	Row int

	// UpTargets receives certificates flowing up: the same-column filter
	// one row above (the paper's unicast optimization), or every
	// execution replica for the top row.
	UpTargets []types.NodeID
	// DownTargets receives reply certificates flowing down: every filter
	// one row below, or every agreement replica for row 0.
	DownTargets []types.NodeID

	// Verifier validates reply certificates (and, at the top row,
	// executor shares). Must be threshold-mode for the full covert-channel
	// guarantees; quorum mode is supported for experiments.
	Verifier *replycert.Verifier
	// TopRow filters assemble executor shares into certificates.
	TopRow bool

	// Pipeline bounds the state table: entries below maxN−P are dropped,
	// matching the agreement cluster's pipeline depth P (§4.1).
	Pipeline int

	// OrderedRelease enables the §4.3 covert-channel restriction: replies
	// are forwarded down in sequence-number order, so a compromised node
	// above the correct cut cannot signal by inducing gaps or reorderings
	// in the reply stream. Because legitimate gaps exist (null batches
	// from view changes produce no reply), a held reply is released
	// unconditionally after HoldMax — the paper notes such restrictions
	// approximate, but cannot fully achieve, determinism on an
	// asynchronous network.
	OrderedRelease bool
	HoldMax        types.Time
}

func (c *Config) fillDefaults() {
	if c.Pipeline == 0 {
		c.Pipeline = 32
	}
	if c.HoldMax == 0 {
		c.HoldMax = types.Millisecond(50)
	}
}

// seqState is one state_n entry.
type seqState struct {
	seen  bool
	reply *wire.ReplyCert
}

// Filter is one privacy-firewall node.
type Filter struct {
	cfg       Config
	send      transport.Sender
	maxN      types.SeqNum
	state     map[types.SeqNum]*seqState
	assembler *replycert.Assembler // top row only

	// ordered-release state (§4.3 restriction)
	lastReleased types.SeqNum
	held         map[types.SeqNum]*heldReply

	// Metrics counts externally observable filter activity.
	Metrics Metrics
}

type heldReply struct {
	cert *wire.ReplyCert
	at   types.Time
}

// Metrics aggregates counters exposed for tests and benchmarks.
type Metrics struct {
	ForwardedUp     uint64
	ForwardedDown   uint64
	RepliesStored   uint64
	SharesRejected  uint64
	CertsCombined   uint64
	DroppedOld      uint64
	DuplicatesDrops uint64
	HeldForOrder    uint64
	TimeoutReleases uint64
}

// New constructs a filter node.
func New(cfg Config, send transport.Sender) (*Filter, error) {
	cfg.fillDefaults()
	if cfg.Topology == nil {
		return nil, fmt.Errorf("firewall: nil topology")
	}
	if len(cfg.UpTargets) == 0 || len(cfg.DownTargets) == 0 {
		return nil, fmt.Errorf("firewall: filter %v has no up or down targets", cfg.ID)
	}
	f := &Filter{
		cfg:   cfg,
		send:  send,
		state: make(map[types.SeqNum]*seqState),
		held:  make(map[types.SeqNum]*heldReply),
	}
	if cfg.TopRow {
		f.assembler = replycert.NewAssembler(cfg.Verifier)
	}
	return f, nil
}

// MaxN returns the highest sequence number observed.
func (f *Filter) MaxN() types.SeqNum { return f.maxN }

// Deliver implements transport.Node.
func (f *Filter) Deliver(from types.NodeID, data []byte, now types.Time) {
	msg, err := wire.Unmarshal(data)
	if err != nil {
		return
	}
	f.Receive(from, msg, now)
}

// Receive dispatches one decoded message.
func (f *Filter) Receive(from types.NodeID, msg wire.Message, now types.Time) {
	switch m := msg.(type) {
	case *wire.Order:
		f.onOrder(m, now)
	case *wire.ExecReply:
		f.onExecReply(m, now)
	case *wire.ReplyCert:
		f.onReplyCert(m, now)
	}
}

// Tick implements transport.Node. Under ordered release it also frees
// replies held past HoldMax (legitimate sequence gaps must not stall the
// stream forever).
func (f *Filter) Tick(now types.Time) {
	if !f.cfg.OrderedRelease || len(f.held) == 0 {
		return
	}
	// Find the oldest held reply; if overdue, skip the gap up to it.
	var oldestSeq types.SeqNum
	var oldestAt types.Time
	for n, h := range f.held {
		if oldestSeq == 0 || n < oldestSeq {
			oldestSeq = n
			oldestAt = h.at
		}
	}
	if now-oldestAt >= f.cfg.HoldMax {
		f.lastReleased = oldestSeq - 1
		f.Metrics.TimeoutReleases++
		f.releaseReady()
	}
}

// releaseReady flushes consecutive held replies starting at lastReleased+1.
func (f *Filter) releaseReady() {
	for {
		h, ok := f.held[f.lastReleased+1]
		if !ok {
			return
		}
		delete(f.held, f.lastReleased+1)
		f.lastReleased++
		f.forwardDown(h.cert)
	}
}

func (f *Filter) entry(n types.SeqNum) *seqState {
	st := f.state[n]
	if st == nil {
		st = &seqState{}
		f.state[n] = st
	}
	return st
}

func (f *Filter) gc() {
	if f.maxN < types.SeqNum(f.cfg.Pipeline) {
		return
	}
	floor := f.maxN - types.SeqNum(f.cfg.Pipeline)
	for n := range f.state {
		if n < floor {
			delete(f.state, n)
		}
	}
	if f.assembler != nil {
		f.assembler.GC(floor)
	}
}

// tooOld implements the maxN−P admission rule.
func (f *Filter) tooOld(n types.SeqNum) bool {
	return f.maxN > types.SeqNum(f.cfg.Pipeline) && n < f.maxN-types.SeqNum(f.cfg.Pipeline)
}

// onOrder handles a request+agreement certificate flowing up (§4.1).
func (f *Filter) onOrder(m *wire.Order, now types.Time) {
	if f.tooOld(m.Seq) {
		f.Metrics.DroppedOld++
		return
	}
	if m.Seq > f.maxN {
		f.maxN = m.Seq
		f.gc()
	}
	st := f.entry(m.Seq)
	if st.reply != nil {
		// The reply is already known: answer from the state table
		// instead of disturbing the execution cluster.
		f.sendDown(st.reply, now)
		return
	}
	st.seen = true
	data := wire.Marshal(m)
	for _, t := range f.cfg.UpTargets {
		f.send(t, data)
	}
	f.Metrics.ForwardedUp++
}

// onExecReply handles an executor's share at the top row: verify the share
// (discarding fabrications from Byzantine executors), combine g+1 into a
// certificate.
func (f *Filter) onExecReply(m *wire.ExecReply, now types.Time) {
	if f.assembler == nil {
		return // only the top row accepts raw shares
	}
	if len(m.Entries) > 0 && f.tooOld(m.Entries[0].Seq) {
		f.Metrics.DroppedOld++
		return
	}
	cert, err := f.assembler.Add(m)
	if err != nil {
		f.Metrics.SharesRejected++
		return
	}
	if cert == nil {
		return
	}
	f.Metrics.CertsCombined++
	f.acceptReply(cert, now)
}

// onReplyCert handles a complete certificate flowing down from the row
// above. Every filter re-verifies it: a Byzantine filter above the correct
// cut cannot push an unvouched-for byte past a correct filter.
func (f *Filter) onReplyCert(m *wire.ReplyCert, now types.Time) {
	if f.cfg.Verifier.VerifyCert(m) != nil {
		f.Metrics.SharesRejected++
		return
	}
	f.acceptReply(m, now)
}

// acceptReply applies the state-table transition rules of §4.1: forward down
// exactly once, and only if the request has been seen from below.
func (f *Filter) acceptReply(cert *wire.ReplyCert, now types.Time) {
	n := cert.MaxSeq()
	if f.tooOld(n) {
		f.Metrics.DroppedOld++
		return
	}
	st := f.entry(n)
	switch {
	case st.reply != nil:
		// Already have it: store only (dedup — at most one multicast per
		// request seen, §4.2.2).
		f.Metrics.DuplicatesDrops++
	case st.seen:
		st.reply = cert
		f.Metrics.RepliesStored++
		f.sendDown(cert, now)
	default:
		// Reply before any request: store, do not volunteer it. An
		// unsolicited reply from above must not create downward traffic.
		st.reply = cert
		f.Metrics.RepliesStored++
	}
}

// sendDown forwards a certificate toward the clients, in sequence order when
// the §4.3 restriction is enabled.
func (f *Filter) sendDown(cert *wire.ReplyCert, now types.Time) {
	if !f.cfg.OrderedRelease {
		f.forwardDown(cert)
		return
	}
	n := cert.MaxSeq()
	if n <= f.lastReleased {
		f.forwardDown(cert) // re-answer for an already-released sequence
		return
	}
	if _, dup := f.held[n]; dup {
		return
	}
	f.held[n] = &heldReply{cert: cert, at: now}
	f.Metrics.HeldForOrder++
	f.releaseReady()
}

func (f *Filter) forwardDown(cert *wire.ReplyCert) {
	data := wire.Marshal(cert)
	for _, t := range f.cfg.DownTargets {
		f.send(t, data)
	}
	f.Metrics.ForwardedDown++
}
