package firewall

import (
	"sync"
	"testing"

	"repro/internal/replycert"
	"repro/internal/threshold"
	"repro/internal/types"
	"repro/internal/wire"
)

var top = &types.Topology{
	Agreement: []types.NodeID{0, 1, 2, 3},
	Execution: []types.NodeID{100, 101, 102},
	Filters:   [][]types.NodeID{{200, 201}, {210, 211}},
	Clients:   []types.NodeID{1000},
}

var (
	thOnce   sync.Once
	thPub    *threshold.PublicKey
	thShares []*threshold.KeyShare
)

func thresholdWorld(t *testing.T) (*threshold.PublicKey, []*threshold.KeyShare) {
	t.Helper()
	thOnce.Do(func() {
		var err error
		thPub, thShares, err = threshold.Deal(threshold.NewSeededReader("fw"), 512, 2, 3)
		if err != nil {
			t.Fatalf("deal: %v", err)
		}
	})
	return thPub, thShares
}

type sentMsg struct {
	to  types.NodeID
	msg wire.Message
}

type capture struct{ sent []sentMsg }

func (c *capture) sender() func(types.NodeID, []byte) {
	return func(to types.NodeID, data []byte) {
		m, err := wire.Unmarshal(data)
		if err != nil {
			panic(err)
		}
		c.sent = append(c.sent, sentMsg{to, m})
	}
}

func (c *capture) count(mt wire.MsgType, to types.NodeID) int {
	n := 0
	for _, s := range c.sent {
		if s.msg.Type() == mt && (to == types.NoNode || s.to == to) {
			n++
		}
	}
	return n
}

// topFilter builds a top-row filter (adjacent to executors).
func topFilter(t *testing.T, cap *capture) *Filter {
	t.Helper()
	pub, _ := thresholdWorld(t)
	f, err := New(Config{
		ID:          210,
		Topology:    top,
		Row:         1,
		UpTargets:   top.Execution,
		DownTargets: top.Filters[0],
		Verifier:    replycert.NewVerifier(replycert.ModeThreshold, top, nil, pub),
		TopRow:      true,
		Pipeline:    8,
	}, cap.sender())
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// bottomFilter builds a row-0 filter (adjacent to agreement).
func bottomFilter(t *testing.T, cap *capture) *Filter {
	t.Helper()
	pub, _ := thresholdWorld(t)
	f, err := New(Config{
		ID:          200,
		Topology:    top,
		Row:         0,
		UpTargets:   []types.NodeID{210},
		DownTargets: top.Agreement,
		Verifier:    replycert.NewVerifier(replycert.ModeThreshold, top, nil, pub),
		Pipeline:    8,
	}, cap.sender())
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func order(n types.SeqNum) *wire.Order {
	return &wire.Order{View: 0, Seq: n, Replica: 0,
		Requests: []wire.Request{{Client: 1000, Timestamp: types.Timestamp(n), Op: []byte("x")}}}
}

func entries(n types.SeqNum) []wire.Reply {
	return []wire.Reply{{Seq: n, Client: 1000, Timestamp: types.Timestamp(n), Body: []byte("r")}}
}

func share(t *testing.T, idx int, es []wire.Reply) *wire.ExecReply {
	t.Helper()
	_, shares := thresholdWorld(t)
	sh, err := shares[idx].Sign(threshold.NewSeededReader("fw-share"), wire.BundleDigest(es))
	if err != nil {
		t.Fatal(err)
	}
	return &wire.ExecReply{Entries: es, Executor: top.Execution[idx], Share: sh.Marshal()}
}

func cert(t *testing.T, es []wire.Reply) *wire.ReplyCert {
	t.Helper()
	pub, _ := thresholdWorld(t)
	digest := wire.BundleDigest(es)
	s0, _ := thShares[0].Sign(threshold.NewSeededReader("c0"), digest)
	s1, _ := thShares[1].Sign(threshold.NewSeededReader("c1"), digest)
	sig, err := pub.Combine(digest, []*threshold.SigShare{s0, s1})
	if err != nil {
		t.Fatal(err)
	}
	return &wire.ReplyCert{Entries: es, ThresholdSig: sig}
}

func TestOrdersForwardUp(t *testing.T) {
	cap := &capture{}
	f := bottomFilter(t, cap)
	f.Receive(0, order(1), 0)
	if cap.count(wire.TOrder, 210) != 1 {
		t.Fatal("order not forwarded to the filter above")
	}
	// Each agreement replica's piece is forwarded (no dedup on the way
	// up: executors need 2f+1 distinct pieces).
	o2 := order(1)
	o2.Replica = 1
	f.Receive(1, o2, 0)
	if cap.count(wire.TOrder, 210) != 2 {
		t.Error("second order piece suppressed; agreement certificate cannot assemble")
	}
	// The top row multicasts to every executor.
	capTop := &capture{}
	ft := topFilter(t, capTop)
	ft.Receive(200, order(1), 0)
	for _, e := range top.Execution {
		if capTop.count(wire.TOrder, e) != 1 {
			t.Errorf("executor %v did not receive the order", e)
		}
	}
}

func TestTopRowCombinesShares(t *testing.T) {
	cap := &capture{}
	f := topFilter(t, cap)
	es := entries(1)
	f.Receive(200, order(1), 0) // request seen from below
	f.Receive(100, share(t, 0, es), 0)
	if cap.count(wire.TReplyCert, types.NoNode) != 0 {
		t.Fatal("combined below the share quorum")
	}
	f.Receive(101, share(t, 1, es), 0)
	// One multicast down: one cert per row-0 filter.
	for _, d := range top.Filters[0] {
		if cap.count(wire.TReplyCert, d) != 1 {
			t.Errorf("row-0 filter %v did not receive the certificate", d)
		}
	}
	if f.Metrics.CertsCombined != 1 {
		t.Errorf("combined = %d", f.Metrics.CertsCombined)
	}
	// A third share must not cause a second multicast (dedup, §4.2.2).
	f.Receive(102, share(t, 2, es), 0)
	if cap.count(wire.TReplyCert, top.Filters[0][0]) != 1 {
		t.Error("extra share caused a duplicate downward multicast")
	}
}

func TestForgedSharesRejected(t *testing.T) {
	cap := &capture{}
	f := topFilter(t, cap)
	f.Receive(200, order(1), 0)
	es := entries(1)
	// Garbage share bytes.
	f.Receive(100, &wire.ExecReply{Entries: es, Executor: 100, Share: []byte("junk")}, 0)
	// Share from a non-executor identity.
	s := share(t, 0, es)
	s.Executor = 0
	f.Receive(0, s, 0)
	// Share index not matching executor.
	s2 := share(t, 0, es)
	s2.Executor = top.Execution[1]
	f.Receive(101, s2, 0)
	if f.Metrics.SharesRejected != 3 {
		t.Errorf("rejected = %d, want 3", f.Metrics.SharesRejected)
	}
	if cap.count(wire.TReplyCert, types.NoNode) != 0 {
		t.Error("forged shares produced a certificate")
	}
}

func TestReplyBeforeRequestIsHeld(t *testing.T) {
	// An unsolicited reply from above must not create downward traffic
	// until a request for that sequence number arrives from below (§4.1).
	cap := &capture{}
	f := bottomFilter(t, cap)
	c := cert(t, entries(1))
	f.Receive(210, c, 0)
	if cap.count(wire.TReplyCert, types.NoNode) != 0 {
		t.Fatal("unsolicited reply forwarded down")
	}
	if f.Metrics.RepliesStored != 1 {
		t.Fatal("reply not stored")
	}
	// The request arrives: answer from the state table.
	f.Receive(0, order(1), 0)
	for _, a := range top.Agreement {
		if cap.count(wire.TReplyCert, a) != 1 {
			t.Errorf("agreement %v did not receive the stored reply", a)
		}
	}
	// And the request was NOT forwarded up (the answer is known).
	if cap.count(wire.TOrder, 210) != 0 {
		t.Error("request forwarded up although the reply was cached")
	}
}

func TestDuplicateRepliesDropped(t *testing.T) {
	cap := &capture{}
	f := bottomFilter(t, cap)
	f.Receive(0, order(1), 0)
	c := cert(t, entries(1))
	f.Receive(210, c, 0)
	f.Receive(211, c, 0) // same certificate from the other column
	if got := cap.count(wire.TReplyCert, top.Agreement[0]); got != 1 {
		t.Errorf("agreement 0 received %d copies, want 1 (dedup)", got)
	}
	if f.Metrics.DuplicatesDrops != 1 {
		t.Errorf("duplicate drops = %d", f.Metrics.DuplicatesDrops)
	}
}

func TestInvalidCertificateNeverPassesDown(t *testing.T) {
	// The core confidentiality property: a filter below the correct cut
	// re-verifies; a fabricated certificate cannot descend.
	cap := &capture{}
	f := bottomFilter(t, cap)
	f.Receive(0, order(1), 0)
	bad := cert(t, entries(1))
	bad.ThresholdSig[0] ^= 1
	f.Receive(210, bad, 0)
	if cap.count(wire.TReplyCert, types.NoNode) != 0 {
		t.Fatal("corrupted certificate passed a correct filter")
	}
	forged := &wire.ReplyCert{Entries: []wire.Reply{{Seq: 1, Client: 1000, Body: []byte("LEAK")}}, ThresholdSig: []byte("x")}
	f.Receive(210, forged, 0)
	if cap.count(wire.TReplyCert, types.NoNode) != 0 {
		t.Fatal("forged certificate passed a correct filter")
	}
	if f.Metrics.SharesRejected != 2 {
		t.Errorf("rejected = %d", f.Metrics.SharesRejected)
	}
}

func TestNonTopRowIgnoresRawShares(t *testing.T) {
	cap := &capture{}
	f := bottomFilter(t, cap)
	f.Receive(210, share(t, 0, entries(1)), 0)
	if len(cap.sent) != 0 {
		t.Error("bottom-row filter acted on a raw executor share")
	}
}

func TestStateTableGC(t *testing.T) {
	cap := &capture{}
	f := bottomFilter(t, cap) // Pipeline = 8
	for n := types.SeqNum(1); n <= 20; n++ {
		f.Receive(0, order(n), 0)
	}
	if len(f.state) > 9 {
		t.Errorf("state table holds %d entries; GC bound is P+1", len(f.state))
	}
	// Entries below maxN-P are rejected as too old.
	f.Receive(0, order(2), 0)
	if f.Metrics.DroppedOld == 0 {
		t.Error("ancient sequence number not dropped")
	}
}

func TestRepeatedRequestAnswersFromStateTable(t *testing.T) {
	cap := &capture{}
	f := bottomFilter(t, cap)
	f.Receive(0, order(1), 0)
	f.Receive(210, cert(t, entries(1)), 0)
	base := cap.count(wire.TReplyCert, top.Agreement[0])
	// A retransmitted request is answered locally, once per request.
	f.Receive(0, order(1), 0)
	f.Receive(0, order(1), 0)
	if got := cap.count(wire.TReplyCert, top.Agreement[0]); got != base+2 {
		t.Errorf("retransmissions answered %d times, want 2", got-base)
	}
	// No additional upward traffic for answered requests.
	if got := cap.count(wire.TOrder, 210); got != 1 {
		t.Errorf("answered request forwarded up %d times, want 1", got)
	}
}

func TestConfigValidation(t *testing.T) {
	send := func(types.NodeID, []byte) {}
	if _, err := New(Config{Topology: top, ID: 200}, send); err == nil {
		t.Error("accepted filter without targets")
	}
	if _, err := New(Config{ID: 200, UpTargets: []types.NodeID{1}, DownTargets: []types.NodeID{2}}, send); err == nil {
		t.Error("accepted filter without topology")
	}
}

// orderedFilter builds a bottom-row filter with the §4.3 ordered-release
// restriction enabled.
func orderedFilter(t *testing.T, cap *capture, holdMax types.Time) *Filter {
	t.Helper()
	pub, _ := thresholdWorld(t)
	f, err := New(Config{
		ID:             200,
		Topology:       top,
		Row:            0,
		UpTargets:      []types.NodeID{210},
		DownTargets:    top.Agreement,
		Verifier:       replycert.NewVerifier(replycert.ModeThreshold, top, nil, pub),
		Pipeline:       8,
		OrderedRelease: true,
		HoldMax:        holdMax,
	}, cap.sender())
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestOrderedReleaseReordersReplies(t *testing.T) {
	cap := &capture{}
	f := orderedFilter(t, cap, types.Millisecond(50))
	f.Receive(0, order(1), 0)
	f.Receive(0, order(2), 0)
	// Reply 2 arrives first: it must be held, not forwarded.
	f.Receive(210, cert(t, entries(2)), 0)
	if cap.count(wire.TReplyCert, top.Agreement[0]) != 0 {
		t.Fatal("out-of-order reply escaped the ordered-release hold")
	}
	if f.Metrics.HeldForOrder != 1 {
		t.Errorf("held = %d", f.Metrics.HeldForOrder)
	}
	// Reply 1 arrives: both flush, in order.
	f.Receive(210, cert(t, entries(1)), 0)
	certs := 0
	var seqs []types.SeqNum
	for _, s := range cap.sent {
		if m, ok := s.msg.(*wire.ReplyCert); ok && s.to == top.Agreement[0] {
			certs++
			seqs = append(seqs, m.MaxSeq())
		}
	}
	if certs != 2 || seqs[0] != 1 || seqs[1] != 2 {
		t.Fatalf("release order: %v", seqs)
	}
}

func TestOrderedReleaseTimesOutGaps(t *testing.T) {
	cap := &capture{}
	f := orderedFilter(t, cap, types.Millisecond(20))
	f.Receive(0, order(5), 0)
	// Sequence 1-4 will never produce replies (e.g. null batches); reply 5
	// is held...
	f.Receive(210, cert(t, entries(5)), types.Millisecond(1))
	if cap.count(wire.TReplyCert, top.Agreement[0]) != 0 {
		t.Fatal("gap reply released immediately")
	}
	f.Tick(types.Millisecond(10)) // not yet overdue
	if cap.count(wire.TReplyCert, top.Agreement[0]) != 0 {
		t.Fatal("gap reply released before HoldMax")
	}
	// ...until the hold expires, preserving liveness.
	f.Tick(types.Millisecond(25))
	if cap.count(wire.TReplyCert, top.Agreement[0]) != 1 {
		t.Fatal("overdue reply never released; ordered release breaks liveness")
	}
	if f.Metrics.TimeoutReleases != 1 {
		t.Errorf("timeout releases = %d", f.Metrics.TimeoutReleases)
	}
}
