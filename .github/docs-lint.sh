#!/usr/bin/env bash
# docs-lint: greps docs/*.md and README.md against the Go source so the
# walkthroughs cannot silently rot. Three rules:
#
#   1. every -flag on a line invoking a saebft-* binary, and every
#      backticked `-flag`, must be declared by some cmd/ tool;
#   2. every `saebft.X` identifier must exist in the saebft package;
#   3. every backticked `Type.Method` reference must exist in the source.
#
# Deliberately simple (grep, no Go parsing): it catches renames and
# removals, which is what kills deployment docs in practice.
set -euo pipefail
cd "$(dirname "$0")/.."

docs=(docs/*.md README.md)
fail=0

# --- 1. tool flags ---------------------------------------------------------
invocation_flags=$(grep -hoE '(^|[ /])saebft-(keygen|node|client|bench)[^|#]*' "${docs[@]}" |
	grep -oE '[ ]-[a-z][a-z-]*' | sed 's/^ -//' | sort -u)
backtick_flags=$(grep -hoE '`-[a-z][a-z-]*' "${docs[@]}" | sed 's/^`-//' | sort -u)
declared=$(grep -rhoE 'flag\.[A-Za-z]+\("[a-z-]+"' cmd | sed -e 's/.*("//' -e 's/"$//' | sort -u)
# Go toolchain flags the docs may mention outside a saebft-* invocation.
go_flags='race bench benchmem short run count v o'
for f in $(printf '%s\n%s\n' "$invocation_flags" "$backtick_flags" | sort -u); do
	if grep -qw "$f" <<<"$go_flags"; then
		continue
	fi
	if ! grep -qx "$f" <<<"$declared"; then
		echo "docs-lint: flag -$f is referenced in the docs but no cmd/ tool declares it"
		fail=1
	fi
done

# --- 2. saebft.* identifiers ----------------------------------------------
idents=$(grep -hoE 'saebft\.[A-Z][A-Za-z]*' "${docs[@]}" | sed 's/saebft\.//' | sort -u)
for id in $idents; do
	if ! grep -qrw --include='*.go' --exclude='*_test.go' "$id" saebft/; then
		echo "docs-lint: identifier saebft.$id is referenced in the docs but not defined in the saebft package"
		fail=1
	fi
done

# --- 3. backticked Type.Method references ----------------------------------
methods=$(grep -hoE '`[A-Z][A-Za-z]*\.[A-Z][A-Za-z]*(\(\)|\(\.\.\.\))?`' "${docs[@]}" |
	tr -d '`' | sed -E 's/\(.*\)//' | cut -d. -f2 | sort -u)
for m in $methods; do
	if ! grep -qrw --include='*.go' --exclude='*_test.go' "$m" saebft/ internal/ cmd/; then
		echo "docs-lint: method/field $m (referenced in the docs) not found in the source tree"
		fail=1
	fi
done

if [ "$fail" -ne 0 ]; then
	echo "docs-lint: FAILED — update the docs or restore the renamed identifiers"
	exit 1
fi
nflags=$(wc -w <<<"$invocation_flags $backtick_flags")
echo "docs-lint: OK ($nflags flag refs, $(wc -w <<<"$idents") saebft identifiers, $(wc -w <<<"$methods") method refs checked)"
