package saebft

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/transport"
	"repro/internal/types"
	"repro/internal/wire"
)

// simTransport builds clusters on the deterministic in-process simulator.
type simTransport struct {
	cfg SimConfig
}

func (t *simTransport) start(b *core.Builder, o *options) (clusterRuntime, error) {
	// Shallow-copy the builder to adjust the network config without
	// mutating the caller's; topology and key material (the expensive
	// part) are reused as-is.
	nb := *b
	if t.cfg.Seed != 0 {
		nb.Opts.Net.Seed = t.cfg.Seed
	}
	if t.cfg.Drop != 0 || t.cfg.MinDelay != 0 || t.cfg.MaxDelay != 0 {
		link := transport.DefaultLinkOpts()
		link.Drop = t.cfg.Drop
		if t.cfg.MinDelay != 0 {
			link.MinDelay = types.Time(t.cfg.MinDelay.Nanoseconds())
		}
		if t.cfg.MaxDelay != 0 {
			link.MaxDelay = types.Time(t.cfg.MaxDelay.Nanoseconds())
		}
		nb.Opts.Net.DefaultLink = link
	}
	nb.Opts.Net.MeasureCompute = t.cfg.MeasureCompute
	c, err := core.BuildSimFrom(&nb)
	if err != nil {
		return nil, err
	}
	if o.storage.DataDir != "" {
		// Durable deployments outlive the process, so client identities may
		// be reused across incarnations. Wall-clock timestamps keep this
		// incarnation's requests above any predecessor's in the recovered
		// exactly-once reply tables (mirrors the TCP endpoints).
		now := types.Timestamp(time.Now().UnixNano())
		for _, cl := range c.Clients {
			cl.SetTimestamp(now)
		}
	}
	r := &simRuntime{
		c:       c,
		submits: make(chan *simCall, 4*len(c.Clients)+16),
		calls:   make(chan func()),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go r.loop()
	return r, nil
}

// simCall is one in-flight invocation or certified-read probe inside the
// driver.
type simCall struct {
	ctx      context.Context
	idx      int
	op       []byte
	read     bool         // certified-read probe instead of an invocation
	floor    types.SeqNum // read-only: session floor the answer must meet
	timeout  types.Time
	deadline types.Time // virtual; set at admission
	done     chan simDone
}

// simDone is the driver's completion record for one simCall.
type simDone struct {
	res  invokeResult // writes
	read readAttempt  // reads
	err  error
}

// simKey identifies one in-flight call: a logical client holds at most one
// request and one read concurrently, so (idx, read) is unique.
type simKey struct {
	idx  int
	read bool
}

// simRuntime drives the simulated cluster from a single goroutine that owns
// the virtual clock: it admits submissions, steps the network while any
// request is in flight, and parks when idle. All cluster state — protocol
// nodes, fault injection, stats — is touched only on that goroutine, which
// preserves the deterministic single-threaded discipline of the simulator
// while presenting a concurrent, context-aware API to callers.
type simRuntime struct {
	c       *core.Cluster
	submits chan *simCall
	calls   chan func()
	quit    chan struct{}
	done    chan struct{}
	once    sync.Once

	// holdStepping parks the driver without blocking admission; tests use
	// it to observe a deterministic number of in-flight requests.
	holdStepping atomic.Bool
}

func (r *simRuntime) loop() {
	defer close(r.done)
	pending := make(map[simKey]*simCall)
	admit := func(call *simCall) {
		cl := r.c.Clients[call.idx]
		var err error
		if call.read {
			err = cl.SubmitRead(call.op, call.floor, r.c.Net.Now())
		} else {
			err = cl.Submit(call.op, r.c.Net.Now())
		}
		if err != nil {
			call.done <- simDone{err: err}
			return
		}
		call.deadline = r.c.Net.Now() + call.timeout
		pending[simKey{call.idx, call.read}] = call
	}
	cancel := func(call *simCall) {
		cl := r.c.Clients[call.idx]
		if call.read {
			cl.CancelRead()
		} else {
			cl.Cancel()
		}
	}
	for {
		if len(pending) == 0 {
			// Idle: park until there is work. The virtual clock does
			// not advance while nothing is in flight.
			select {
			case <-r.quit:
				return
			case fn := <-r.calls:
				fn()
			case call := <-r.submits:
				admit(call)
			}
			continue
		}
		// Busy: drain control work without blocking, then advance the
		// simulation one event.
		for draining := true; draining; {
			select {
			case <-r.quit:
				for _, call := range pending {
					call.done <- simDone{err: ErrClosed}
				}
				return
			case fn := <-r.calls:
				fn()
			case call := <-r.submits:
				admit(call)
			default:
				draining = false
			}
		}
		if r.holdStepping.Load() {
			time.Sleep(100 * time.Microsecond)
			continue
		}
		stepped := r.c.Net.Step()
		now := r.c.Net.Now()
		for key, call := range pending {
			cl := r.c.Clients[key.idx]
			switch {
			case call.ctx.Err() != nil:
				cancel(call)
				call.done <- simDone{err: call.ctx.Err()}
				delete(pending, key)
			case call.read && cl.ReadDone():
				out, _ := cl.TakeReadOutcome()
				call.done <- simDone{read: readAttemptFrom(out)}
				delete(pending, key)
			case !call.read && cl.HasResult():
				body, seq, _ := cl.ResultSeq()
				call.done <- simDone{res: invokeResult{body: body, seq: uint64(seq)}}
				delete(pending, key)
			case now > call.deadline || !stepped:
				// !stepped means the event queue ran dry, which can
				// only happen with no live nodes: time would stand
				// still forever, so fail fast rather than spin.
				cancel(call)
				call.done <- simDone{err: fmt.Errorf("%w after %v (virtual)", ErrTimeout, time.Duration(call.timeout))}
				delete(pending, key)
			}
		}
	}
}

func (r *simRuntime) submit(call *simCall) (simDone, error) {
	select {
	case r.submits <- call:
	case <-call.ctx.Done():
		return simDone{}, call.ctx.Err()
	case <-r.quit:
		return simDone{}, ErrClosed
	}
	// The driver checks ctx on every iteration, so it — not this select —
	// resolves cancellation; that keeps the logical client leased until
	// its protocol state is actually quiesced.
	select {
	case res := <-call.done:
		return res, res.err
	case <-r.done:
		return simDone{}, ErrClosed
	}
}

func (r *simRuntime) invoke(ctx context.Context, idx int, op []byte, timeout time.Duration) (invokeResult, error) {
	if idx < 0 || idx >= len(r.c.Clients) {
		return invokeResult{}, fmt.Errorf("saebft: logical client %d out of range", idx)
	}
	res, err := r.submit(&simCall{
		ctx:     ctx,
		idx:     idx,
		op:      op,
		timeout: types.Time(timeout.Nanoseconds()),
		done:    make(chan simDone, 1),
	})
	return res.res, err
}

func (r *simRuntime) readCertified(ctx context.Context, idx int, op []byte, floor uint64, timeout time.Duration) (readAttempt, error) {
	if idx < 0 || idx >= len(r.c.Clients) {
		return readAttempt{}, fmt.Errorf("saebft: logical client %d out of range", idx)
	}
	res, err := r.submit(&simCall{
		ctx:     ctx,
		idx:     idx,
		op:      op,
		read:    true,
		floor:   types.SeqNum(floor),
		timeout: types.Time(timeout.Nanoseconds()),
		done:    make(chan simDone, 1),
	})
	return res.read, err
}

// do runs fn on the driver goroutine, serialized against all protocol
// activity.
func (r *simRuntime) do(fn func()) error {
	ran := make(chan struct{})
	wrapped := func() { fn(); close(ran) }
	select {
	case r.calls <- wrapped:
	case <-r.done:
		return ErrClosed
	}
	select {
	case <-ran:
		return nil
	case <-r.done:
		return ErrClosed
	}
}

func (r *simRuntime) stats() (Stats, error) {
	var s Stats
	err := r.do(func() {
		for _, cl := range r.c.Clients {
			s.Requests += cl.Metrics.Requests
			s.Retransmits += cl.Metrics.Retransmits
			s.Replies += cl.Metrics.Replies
			s.BadReplies += cl.Metrics.BadReplies
			s.Reads += cl.Metrics.Reads
			s.ReadsCertified += cl.Metrics.ReadsCertified
			s.ReadMismatches += cl.Metrics.ReadMismatches
			s.BadReadReplies += cl.Metrics.BadReadReplies
		}
		for _, ex := range r.c.Execs {
			s.ReadsServed += ex.Metrics.ReadsServed
			s.ReadsRefused += ex.Metrics.ReadsRefused
		}
		for _, f := range r.c.Filters {
			s.SharesRejected += f.Metrics.SharesRejected
		}
		for _, e := range r.c.Engines {
			if e.StorageErr() != nil {
				s.StorageFailures++
			}
		}
		for _, ex := range r.c.Execs {
			if ex.StorageErr() != nil {
				s.StorageFailures++
			}
		}
		s.MessagesDelivered = r.c.Net.Stats.Delivered
		s.MessagesDropped = r.c.Net.Stats.Dropped
	})
	return s, err
}

func (r *simRuntime) close() error {
	r.once.Do(func() {
		close(r.quit)
		<-r.done
		// The driver goroutine is gone; nodes are quiesced. Flush and
		// close durable stores (no-op for in-memory clusters).
		r.c.Shutdown()
	})
	return nil
}

// kill tears the runtime down without flushing durable stores, simulating a
// whole-process crash (recovery tests only): buffered appends are
// discarded and data-dir locks released, as process death would do.
func (r *simRuntime) kill() {
	r.once.Do(func() {
		close(r.quit)
		<-r.done
		r.c.Kill()
	})
}

// crash marks one node as crashed. kindRole is a types.Role.
func (r *simRuntime) crash(id types.NodeID) error {
	return r.do(func() { r.c.Net.Crash(id) })
}

func (r *simRuntime) revive(id types.NodeID) error {
	return r.do(func() { r.c.Net.Revive(id) })
}

func (r *simRuntime) tap(fn func(from, to int, payload []byte)) error {
	return r.do(func() {
		r.c.Net.Tap(func(from, to types.NodeID, data []byte) {
			fn(int(from), int(to), data)
		})
	})
}

// byzantine replaces execution replica i with an active adversary that
// floods its upstream neighbors with forged reply shares (claiming bogus
// results for the first client) and raw garbage, instead of executing
// anything. The correct protocol must mask it: filters/queues reject the
// forgeries and g+1 correct executors still certify real replies.
func (r *simRuntime) byzantine(i int) error {
	top := r.c.Top
	if len(top.Execution) == 0 {
		return fmt.Errorf("saebft: mode has no execution replicas to compromise")
	}
	if i < 0 || i >= len(top.Execution) {
		return fmt.Errorf("saebft: execution replica %d out of range", i)
	}
	evil := top.Execution[i]
	var targets []types.NodeID
	if top.HasFirewall() {
		targets = top.Filters[top.H()]
	} else {
		targets = top.Agreement
	}
	return r.do(func() {
		send := r.c.Net.Bind(evil)
		r.c.Net.Swap(evil, transport.NodeFunc{
			OnDeliver: func(from types.NodeID, data []byte, now types.Time) {
				for _, t := range targets {
					forged := &wire.ExecReply{
						Entries: []wire.Reply{{
							Seq: 1, Client: top.Clients[0], Timestamp: 1,
							Body: []byte("FORGED"),
						}},
						Executor: evil,
						Share:    []byte("not a valid threshold share"),
					}
					send(t, wire.Marshal(forged))
					send(t, []byte("garbage"))
				}
			},
		})
	})
}
