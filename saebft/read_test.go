package saebft

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
)

func TestReadCertifiedReadYourWrites(t *testing.T) {
	c := startSim(t, WithApp("kv"))
	ctx := context.Background()
	cl := c.Client()

	put, _ := EncodeOp("kv", "put", "paper", "sosp2003")
	if _, err := cl.Invoke(ctx, put); err != nil {
		t.Fatal(err)
	}
	get, _ := EncodeOp("kv", "get", "paper")
	got, err := cl.ReadCertified(ctx, get)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "sosp2003" {
		t.Fatalf("certified read = %q, want sosp2003", got)
	}

	cs := cl.ClientStats()
	if cs.Reads != 1 || cs.ReadsCertified != 1 || cs.ReadFallbacks != 0 {
		t.Fatalf("read counters = %+v, want one read served entirely on the fast path", cs)
	}
	if cs.Watermark == 0 {
		t.Fatal("implicit session watermark did not advance past the write")
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.ReadsServed < 2 {
		t.Fatalf("executors served %d read replies, want >= g+1", st.ReadsServed)
	}
	if st.Reads != 1 || st.ReadsCertified != 1 {
		t.Fatalf("cluster-side read counters = Reads %d / Certified %d, want 1/1", st.Reads, st.ReadsCertified)
	}
}

func TestReadCertifiedFallsBackForMutatingOp(t *testing.T) {
	c := startSim(t, WithApp("counter"))
	ctx := context.Background()
	cl := c.Client()

	// "inc" mutates, so the executors certify a refusal and the call serves
	// the operation through full agreement instead — same answer as Invoke.
	got, err := cl.ReadCertified(ctx, []byte("inc"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "1" {
		t.Fatalf("fallback reply = %q, want 1", got)
	}
	cs := cl.ClientStats()
	if cs.ReadFallbacks != 1 || cs.ReadsCertified != 0 {
		t.Fatalf("counters = %+v, want exactly one fallback and no fast-path certificate", cs)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.ReadsRefused < 2 {
		t.Fatalf("executors refused %d probes, want >= g+1", st.ReadsRefused)
	}
	// The mutation applied exactly once despite the refused probe.
	if got, err := cl.ReadCertified(ctx, []byte("get")); err != nil || string(got) != "1" {
		t.Fatalf("get = %q (%v), want 1", got, err)
	}
}

func TestReadCertifiedFallsBackWhenSessionAhead(t *testing.T) {
	c := startSim(t, WithApp("counter"))
	ctx := context.Background()
	cl := c.Client()
	if _, err := cl.Invoke(ctx, []byte("inc")); err != nil {
		t.Fatal(err)
	}

	// A session floor no replica can meet (more than g executors behind is
	// indistinguishable to the client): probes mismatch with no usable hint,
	// and the read serves through agreement rather than blocking.
	s := cl.Session()
	s.AdvanceTo(1_000_000)
	got, err := s.ReadCertified(ctx, []byte("get"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "1" {
		t.Fatalf("fallback read = %q, want 1", got)
	}
	if cs := cl.ClientStats(); cs.ReadFallbacks != 1 {
		t.Fatalf("ReadFallbacks = %d, want 1", cs.ReadFallbacks)
	}
	if s.Watermark() < 1_000_000 {
		t.Fatal("session watermark regressed below AdvanceTo")
	}
}

func TestReadCertifiedMasksByzantineExecutor(t *testing.T) {
	c := startSim(t, WithApp("kv"), WithClients(1))
	if err := c.ByzantineExec(0); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cl := c.Client()
	put, _ := EncodeOp("kv", "put", "k", "honest")
	if _, err := cl.Invoke(ctx, put); err != nil {
		t.Fatal(err)
	}
	get, _ := EncodeOp("kv", "get", "k")
	got, err := cl.ReadCertified(ctx, get)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "honest" {
		t.Fatalf("certified read = %q despite Byzantine executor, want honest", got)
	}
	if cs := cl.ClientStats(); cs.ReadsCertified != 1 {
		t.Fatalf("read did not certify on the fast path: %+v", cs)
	}
}

func TestReadWatermarkMonotonicAcrossViewChange(t *testing.T) {
	c := startSim(t, WithApp("counter"))
	ctx := context.Background()
	cl := c.Client()

	if _, err := cl.Invoke(ctx, []byte("inc")); err != nil {
		t.Fatal(err)
	}
	if got, err := cl.ReadCertified(ctx, []byte("get")); err != nil || string(got) != "1" {
		t.Fatalf("pre-view-change read = %q (%v), want 1", got, err)
	}
	w1 := cl.ClientStats().Watermark

	// Crash the agreement primary; the next write rides the view change and
	// certifies at a higher sequence number, and reads keep observing it.
	if err := c.CrashAgreement(0); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Invoke(ctx, []byte("inc")); err != nil {
		t.Fatal(err)
	}
	w2 := cl.ClientStats().Watermark
	if w2 <= w1 {
		t.Fatalf("watermark did not advance across the view change: %d -> %d", w1, w2)
	}
	if got, err := cl.ReadCertified(ctx, []byte("get")); err != nil || string(got) != "2" {
		t.Fatalf("post-view-change read = %q (%v), want 2", got, err)
	}
	if w3 := cl.ClientStats().Watermark; w3 < w2 {
		t.Fatalf("watermark regressed after a certified read: %d -> %d", w2, w3)
	}
}

func TestSessionsIsolateReadFloors(t *testing.T) {
	c := startSim(t, WithApp("kv"), WithClients(2))
	ctx := context.Background()
	cl := c.Client()

	a, b := cl.Session(), cl.Session()
	put, _ := EncodeOp("kv", "put", "mine", "A")
	if _, err := a.Invoke(ctx, put); err != nil {
		t.Fatal(err)
	}
	if a.Watermark() == 0 {
		t.Fatal("session A watermark did not advance past its write")
	}
	// B never wrote: its floor stays where the handle was when it was
	// derived, unaffected by A's progress.
	if b.Watermark() != 0 {
		t.Fatalf("session B watermark = %d, want 0 (no writes of its own)", b.Watermark())
	}
	get, _ := EncodeOp("kv", "get", "mine")
	got, err := a.ReadCertified(ctx, get)
	if err != nil || string(got) != "A" {
		t.Fatalf("session A read = %q (%v), want A", got, err)
	}
}

// scriptedRuntime fakes a clusterRuntime so the Session retry policy can be
// exercised deterministically, attempt by attempt.
type scriptedRuntime struct {
	reads   []func(floor uint64) (readAttempt, error)
	floors  []uint64
	invokes int
}

func (r *scriptedRuntime) invoke(ctx context.Context, idx int, op []byte, timeout time.Duration) (invokeResult, error) {
	r.invokes++
	return invokeResult{body: []byte("fallback"), seq: 99}, nil
}

func (r *scriptedRuntime) readCertified(ctx context.Context, idx int, op []byte, floor uint64, timeout time.Duration) (readAttempt, error) {
	if len(r.reads) == 0 {
		return readAttempt{}, fmt.Errorf("unexpected read attempt at floor %d", floor)
	}
	r.floors = append(r.floors, floor)
	next := r.reads[0]
	r.reads = r.reads[1:]
	return next(floor)
}

func (r *scriptedRuntime) stats() (Stats, error) { return Stats{}, nil }
func (r *scriptedRuntime) close() error          { return nil }
func (r *scriptedRuntime) kill()                 {}

func scriptedClient(rt clusterRuntime) *Client {
	return newDialedClient(rt, 1, time.Second, 0)
}

func TestSessionRetriesMismatchAtHint(t *testing.T) {
	rt := &scriptedRuntime{reads: []func(uint64) (readAttempt, error){
		func(uint64) (readAttempt, error) { return readAttempt{mismatch: true, hint: 7}, nil },
		func(uint64) (readAttempt, error) { return readAttempt{body: []byte("v"), seq: 9}, nil },
	}}
	cl := scriptedClient(rt)
	got, err := cl.ReadCertified(context.Background(), []byte("get"))
	if err != nil || string(got) != "v" {
		t.Fatalf("read = %q (%v), want v", got, err)
	}
	if len(rt.floors) != 2 || rt.floors[0] != 0 || rt.floors[1] != 7 {
		t.Fatalf("probe floors = %v, want [0 7] (retry at the hint)", rt.floors)
	}
	cs := cl.ClientStats()
	if cs.ReadRetries != 1 || cs.ReadFallbacks != 0 || cs.ReadsCertified != 1 {
		t.Fatalf("counters = %+v, want one retry, no fallback", cs)
	}
	if cs.Watermark != 9 {
		t.Fatalf("watermark = %d, want the certified 9", cs.Watermark)
	}
	if rt.invokes != 0 {
		t.Fatal("fast-path success still invoked through agreement")
	}
}

func TestSessionFallsBackWhenHintOffersNoProgress(t *testing.T) {
	rt := &scriptedRuntime{reads: []func(uint64) (readAttempt, error){
		func(floor uint64) (readAttempt, error) { return readAttempt{mismatch: true, hint: floor}, nil },
	}}
	cl := scriptedClient(rt)
	got, err := cl.ReadCertified(context.Background(), []byte("get"))
	if err != nil || string(got) != "fallback" {
		t.Fatalf("read = %q (%v), want the agreement fallback", got, err)
	}
	if rt.invokes != 1 || len(rt.floors) != 1 {
		t.Fatalf("probes=%d invokes=%d, want exactly one of each", len(rt.floors), rt.invokes)
	}
	if cs := cl.ClientStats(); cs.ReadFallbacks != 1 || cs.ReadRetries != 0 {
		t.Fatalf("counters = %+v, want a fallback without retries", cs)
	}
}

func TestSessionBoundsRetriesThenFallsBack(t *testing.T) {
	mismatch := func(floor uint64) (readAttempt, error) {
		return readAttempt{mismatch: true, hint: floor + 10}, nil
	}
	rt := &scriptedRuntime{reads: []func(uint64) (readAttempt, error){mismatch, mismatch, mismatch}}
	cl := scriptedClient(rt)
	got, err := cl.ReadCertified(context.Background(), []byte("get"))
	if err != nil || string(got) != "fallback" {
		t.Fatalf("read = %q (%v), want the agreement fallback", got, err)
	}
	if len(rt.floors) != maxReadAttempts {
		t.Fatalf("probe floors = %v, want exactly %d attempts", rt.floors, maxReadAttempts)
	}
	if cs := cl.ClientStats(); cs.ReadRetries != maxReadAttempts-1 || cs.ReadFallbacks != 1 {
		t.Fatalf("counters = %+v", cs)
	}
}

func TestSessionFallsBackOnRefusalAndNoReadPath(t *testing.T) {
	for name, script := range map[string]func(uint64) (readAttempt, error){
		"refused":    func(uint64) (readAttempt, error) { return readAttempt{refused: true, body: []byte("nope")}, nil },
		"noReadPath": func(uint64) (readAttempt, error) { return readAttempt{}, core.ErrNoReadPath },
		"timeout":    func(uint64) (readAttempt, error) { return readAttempt{}, fmt.Errorf("wrapped: %w", ErrTimeout) },
	} {
		t.Run(name, func(t *testing.T) {
			rt := &scriptedRuntime{reads: []func(uint64) (readAttempt, error){script}}
			cl := scriptedClient(rt)
			got, err := cl.ReadCertified(context.Background(), []byte("get"))
			if err != nil || string(got) != "fallback" {
				t.Fatalf("read = %q (%v), want the agreement fallback", got, err)
			}
			if rt.invokes != 1 {
				t.Fatalf("invokes = %d, want 1", rt.invokes)
			}
		})
	}
}

func TestTCPReadPath(t *testing.T) {
	c, err := NewCluster(
		WithApp("kv"),
		WithTransport(TCPTransport()),
		WithClients(2),
		WithThresholdBits(512),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	cl := c.Client()

	put, _ := EncodeOp("kv", "put", "transport", "tcp")
	if _, err := cl.Invoke(ctx, put); err != nil {
		t.Fatal(err)
	}
	get, _ := EncodeOp("kv", "get", "transport")
	got, err := cl.ReadCertified(ctx, get)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "tcp" {
		t.Fatalf("certified read over TCP = %q, want tcp", got)
	}
	// A mutating op still falls back over TCP.
	put2, _ := EncodeOp("kv", "put", "transport", "tcp2")
	if got, err := cl.ReadCertified(ctx, put2); err != nil || string(got) != "OK" {
		t.Fatalf("fallback put over TCP = %q (%v), want OK", got, err)
	}
	cs := cl.ClientStats()
	if cs.ReadsCertified != 1 || cs.ReadFallbacks != 1 {
		t.Fatalf("counters = %+v, want one certified read and one fallback", cs)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.ReadsServed < 2 {
		t.Fatalf("executors served %d read replies, want >= g+1", st.ReadsServed)
	}
}
