package saebft

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/types"
)

// Node is one replica of a multi-process deployment — agreement, execution,
// or firewall filter — run in this process and communicating over TCP with
// the rest of the deployment described by its Config. The saebft-node
// command is a thin wrapper around it.
type Node struct {
	cfg           *Config
	id            types.NodeID
	role          types.Role
	logf          func(string, ...interface{})
	dataDir       string
	volatileVotes bool
	tlsCA         string
	tlsCert       string
	tlsKey        string
	noTLS         bool
	metricsAddr   string
	verifyWorkers int
	obsReg        *obs.Registry
	obsTrace      *obs.Tracer

	mu        sync.Mutex
	running   *deploy.RunningNode
	ops       *obs.OpsServer
	watchStop chan struct{}
	closed    bool
}

// NodeOption configures NewNode.
type NodeOption func(*Node)

// NodeDataDir enables durable storage for the node: its write-ahead log and
// stable checkpoints live under <path>/node-<id>, Start recovers from them,
// and Close flushes them — so a deployment whose every process is killed
// and restarted over the same directories resumes without losing an
// acknowledged operation. The path is per-process state and deliberately
// not part of the shared config file.
func NodeDataDir(path string) NodeOption {
	return func(n *Node) { n.dataDir = path }
}

// NodeVolatileVotes disables agreement-side voting-state durability for a
// durable node, with the same semantics (and the same caveat) as
// StorageConfig.VolatileVotes: fewer WAL syncs, but this replica counts
// against f while it recovers under a Byzantine primary. No effect without
// NodeDataDir.
func NodeVolatileVotes() NodeOption {
	return func(n *Node) { n.volatileVotes = true }
}

// NodeTLS overrides where this node reads its mutual-TLS material from:
// the cluster CA certificate plus this identity's certificate and key, all
// PEM. Without this option a config carrying a TLS section (saebft-keygen
// -tls / Config.GenerateTLS) is used automatically; with it, TLS is enabled
// even if the config has no TLS section.
func NodeTLS(caFile, certFile, keyFile string) NodeOption {
	return func(n *Node) { n.tlsCA, n.tlsCert, n.tlsKey = caFile, certFile, keyFile }
}

// NodeInsecure forces plaintext links even when the config prescribes TLS.
// Loopback debugging only: a plaintext node cannot talk to TLS peers.
func NodeInsecure() NodeOption {
	return func(n *Node) { n.noTLS = true }
}

// NodeVerifyWorkers sizes this process's bounded certificate-verification
// pool, the deployment-side analogue of CryptoConfig.VerifyWorkers: batch
// certificate checks (client requests in a pre-prepare, order and commit
// certificates) fan out across n workers and join before any protocol state
// advances. Per-process tuning, not protocol surface — peers need not
// agree. 0 or 1 verifies inline.
func NodeVerifyWorkers(n int) NodeOption {
	return func(nd *Node) { nd.verifyWorkers = n }
}

// NodeMetricsAddr serves the node's ops HTTP endpoint on addr once Start
// succeeds: Prometheus text on /metrics, the per-operation trace ring on
// /debug/trace, and the standard pprof handlers under /debug/pprof/. Pass
// "127.0.0.1:0" to let the kernel pick a port (Node.OpsAddr reports it).
// The endpoint is operational surface, not protocol surface — bind it to
// an address the deployment's operators can reach, never the public one.
func NodeMetricsAddr(addr string) NodeOption {
	return func(n *Node) { n.metricsAddr = addr }
}

// LinkStats snapshots the node's cumulative transport link counters
// (zero value before Start). docs/DEPLOYMENT.md's troubleshooting section
// is keyed to these.
func (n *Node) LinkStats() LinkStats {
	n.mu.Lock()
	rn := n.running
	n.mu.Unlock()
	var s LinkStats
	if rn != nil {
		s.add(rn.Net.Stats())
	}
	return s
}

// Secure reports whether the node's links run over mutual TLS (false before
// Start).
func (n *Node) Secure() bool {
	n.mu.Lock()
	rn := n.running
	n.mu.Unlock()
	return rn != nil && rn.Net.Secure()
}

// NewNode validates that id names a non-client identity in the config's
// topology and prepares the node. It does not listen until Start.
func NewNode(cfg *Config, id int, opts ...NodeOption) (*Node, error) {
	top, err := cfg.topology()
	if err != nil {
		return nil, err
	}
	role, _, ok := top.RoleOf(types.NodeID(id))
	if !ok {
		return nil, fmt.Errorf("saebft: node %d is not part of the topology", id)
	}
	if role == types.RoleClient {
		return nil, fmt.Errorf("saebft: identity %d is a client; use Dial", id)
	}
	n := &Node{
		cfg: cfg, id: types.NodeID(id), role: role,
		obsReg:   obs.NewRegistry(),
		obsTrace: obs.NewTracer(obs.DefaultTraceCap),
	}
	for _, fn := range opts {
		fn(n)
	}
	return n, nil
}

// SetLogf installs a transport-level log function. By default connection
// events are silenced; call before Start.
func (n *Node) SetLogf(f func(string, ...interface{})) { n.logf = f }

// Start brings the node up: it derives its share of the key material,
// binds its listener, and begins serving. If ctx is cancelable, its
// cancellation closes the node.
func (n *Node) Start(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return ErrClosed
	}
	if n.running != nil {
		return errors.New("saebft: node already started")
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	rn, err := deploy.StartNodeOpts(n.cfg.d, n.id, deploy.NodeOptions{
		DataDir:       n.dataDir,
		VolatileVotes: n.volatileVotes,
		VerifyWorkers: n.verifyWorkers,
		TLSCA:         n.tlsCA,
		TLSCert:       n.tlsCert,
		TLSKey:        n.tlsKey,
		DisableTLS:    n.noTLS,
		Obs:           n.obsReg,
		Trace:         n.obsTrace,
	})
	if err != nil {
		return err
	}
	if n.metricsAddr != "" {
		srv, err := obs.ServeOps(n.metricsAddr, n.obsReg, n.obsTrace)
		if err != nil {
			rn.Close()
			return fmt.Errorf("saebft: ops endpoint: %w", err)
		}
		n.ops = srv
	}
	rn.Net.SetLogf(logfOrSilent(n.logf))
	n.running = rn
	if ctx.Done() != nil {
		stop := make(chan struct{})
		n.watchStop = stop
		go func() {
			select {
			case <-ctx.Done():
				n.Close()
			case <-stop:
			}
		}()
	}
	return nil
}

// Close shuts the node down. Idempotent.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	rn := n.running
	ops := n.ops
	n.ops = nil
	stop := n.watchStop
	n.mu.Unlock()
	if stop != nil {
		close(stop)
	}
	ops.Close() // nil-safe; stops serving before the node goes away
	if rn != nil {
		rn.Close()
	}
	return nil
}

// ID returns the node's identity.
func (n *Node) ID() int { return int(n.id) }

// Role returns "agreement", "execution", or "filter".
func (n *Node) Role() string { return n.role.String() }

// Addr returns the node's bound listen address once started.
func (n *Node) Addr() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.running == nil {
		return ""
	}
	return n.running.Net.Addr()
}

// StorageErr reports the node's first durable-storage failure, if any. A
// replica whose store fails stops executing (fail-stop) while keeping its
// sockets open; operators should poll this (saebft-node does) and treat
// non-nil as the node being down.
func (n *Node) StorageErr() error {
	n.mu.Lock()
	rn := n.running
	n.mu.Unlock()
	if rn == nil {
		return nil
	}
	var err error
	rn.Inspect(func(node transport.Node) {
		if se, ok := node.(interface{ StorageErr() error }); ok {
			err = se.StorageErr()
		}
	})
	return err
}

// DialOption configures Dial.
type DialOption func(*dialConfig)

type dialConfig struct {
	ids         []int
	timeout     time.Duration
	readTimeout time.Duration
	logf        func(string, ...interface{})
	batch       clientBatching
	tlsCA       string
	tlsCert     string
	tlsKey      string
	noTLS       bool
}

// DialClients restricts the handle to specific client identities from the
// config (default: all of them, giving the widest pipeline).
func DialClients(ids ...int) DialOption {
	return func(d *dialConfig) { d.ids = ids }
}

// DialTimeout sets the default per-request timeout (default 30s).
func DialTimeout(t time.Duration) DialOption {
	return func(d *dialConfig) { d.timeout = t }
}

// DialReadTimeout bounds each certified-read probe made by ReadCertified
// before it falls back to full agreement, mirroring WithReadTimeout (zero
// defaults to a quarter of the request timeout).
func DialReadTimeout(t time.Duration) DialOption {
	return func(d *dialConfig) { d.readTimeout = t }
}

// DialLogf installs a transport-level log function (default: silent).
func DialLogf(f func(string, ...interface{})) DialOption {
	return func(d *dialConfig) { d.logf = f }
}

// DialBatching enables client-side operation batching on the dialed
// handle, with the same semantics and defaults as WithClientBatching.
func DialBatching(maxOps, maxBytes int, flushInterval time.Duration) DialOption {
	return func(d *dialConfig) {
		d.batch.enabled = true
		d.batch.maxOps = maxOps
		d.batch.maxBytes = maxBytes
		d.batch.flush = flushInterval
	}
}

// DialAdaptivePipeline toggles the latency-driven dispatch-width
// controller on a batching dialed handle (default on), mirroring
// WithAdaptivePipeline.
func DialAdaptivePipeline(on bool) DialOption {
	return func(d *dialConfig) {
		d.batch.adaptive = on
		d.batch.adaptSet = true
	}
}

// DialTLS overrides where the handle reads its mutual-TLS material from:
// the cluster CA certificate plus one client identity's certificate and
// key, all PEM. Valid only together with DialClients naming that single
// identity; multi-identity handles read per-identity pairs from the
// config's certDir automatically, which is the default whenever the config
// carries a TLS section.
func DialTLS(caFile, certFile, keyFile string) DialOption {
	return func(d *dialConfig) { d.tlsCA, d.tlsCert, d.tlsKey = caFile, certFile, keyFile }
}

// DialInsecure forces plaintext links even when the config prescribes TLS.
// Loopback debugging only: a plaintext client cannot talk to TLS nodes.
func DialInsecure() DialOption {
	return func(d *dialConfig) { d.noTLS = true }
}

// Dial connects a client handle to a running multi-process deployment
// described by the config file at target — the one surface every tool and
// embedder dials through. The handle pipelines one in-flight request per
// client identity it owns; use DialClients to pick identities when several
// handles share a config. Use DialConfig when the deployment descriptor is
// already loaded (or built in memory).
func Dial(target string, optfns ...DialOption) (*Client, error) {
	cfg, err := LoadConfig(target)
	if err != nil {
		return nil, err
	}
	return DialConfig(cfg, optfns...)
}

// DialConfig is Dial for an already-loaded deployment config.
func DialConfig(cfg *Config, optfns ...DialOption) (*Client, error) {
	var dc dialConfig
	for _, fn := range optfns {
		fn(&dc)
	}
	if dc.timeout == 0 {
		dc.timeout = 30 * time.Second
	}
	opts, err := cfg.d.Options()
	if err != nil {
		return nil, err
	}
	b, err := core.NewBuilder(opts)
	if err != nil {
		return nil, err
	}
	addrs, err := cfg.addrMap()
	if err != nil {
		return nil, err
	}
	ids := dc.ids
	if len(ids) == 0 {
		for _, cid := range b.Top.Clients {
			ids = append(ids, int(cid))
		}
	}
	if dc.tlsCert != "" && len(ids) != 1 {
		return nil, fmt.Errorf("saebft: DialTLS names one identity's certificate; use DialClients to pick that identity (handle owns %d)", len(ids))
	}
	security := func(id types.NodeID) (*transport.Security, error) {
		switch {
		case dc.noTLS:
			return nil, nil
		case dc.tlsCert != "":
			return transport.LoadSecurity(id, dc.tlsCA, dc.tlsCert, dc.tlsKey)
		default:
			return cfg.d.Security(id)
		}
	}
	// The handle gets its own registry: client-side pipeline/read counters
	// plus each endpoint's link series, mirroring what a cluster-owned
	// handle sees (minus the server-side layers, which live in other
	// processes and serve their own /metrics).
	reg := obs.NewRegistry()
	rt := &tcpRuntime{quit: make(chan struct{})}
	for _, id := range ids {
		role, _, ok := b.Top.RoleOf(types.NodeID(id))
		if !ok || role != types.RoleClient {
			rt.close()
			return nil, fmt.Errorf("saebft: %d is not a client identity in this topology", id)
		}
		sec, err := security(types.NodeID(id))
		if err != nil {
			rt.close()
			return nil, fmt.Errorf("saebft: TLS material for client %d: %w", id, err)
		}
		ep, err := newTCPEndpoint(b, addrs, types.NodeID(id), dc.logf, transport.TCPOptions{
			Security: sec, Obs: reg, ObsNode: strconv.Itoa(id),
		})
		if err != nil {
			rt.close()
			return nil, fmt.Errorf("saebft: connecting client %d: %w", id, err)
		}
		rt.eps = append(rt.eps, ep)
	}
	h := newDialedClient(rt, len(rt.eps), dc.timeout, dc.readTimeout)
	h.reg = reg
	h.registerClientObs(reg)
	if dc.batch.enabled {
		h.startBatching(dc.batch)
	}
	return h, nil
}
