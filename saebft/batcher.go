package saebft

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/replycert"
	"repro/internal/wire"
)

// ClientBatchingDefaults are applied when WithClientBatching /
// DialBatching receive zero values.
const (
	DefaultBatchMaxOps   = 16
	DefaultBatchMaxBytes = 1 << 20
	DefaultBatchFlush    = 200 * time.Microsecond
)

// clientBatching is the validated batching configuration carried by options.
type clientBatching struct {
	enabled  bool
	maxOps   int
	maxBytes int
	flush    time.Duration
	adaptive bool
	adaptSet bool
}

func (c *clientBatching) fillDefaults() {
	if c.maxOps <= 0 {
		c.maxOps = DefaultBatchMaxOps
	}
	if c.maxBytes <= 0 {
		c.maxBytes = DefaultBatchMaxBytes
	}
	if c.flush <= 0 {
		c.flush = DefaultBatchFlush
	}
	if !c.adaptSet {
		c.adaptive = true
	}
}

// pendingOp is one operation waiting in the coalescing queue.
type pendingOp struct {
	ctx     context.Context
	op      []byte
	ch      chan Result
	settled atomic.Bool
}

// deliver resolves the op exactly once; later deliveries are dropped. A
// context-cancellation watcher and the batch completion path can race to
// settle the same op, and the result channel holds only one Result.
func (p *pendingOp) deliver(res Result) {
	if !p.settled.Swap(true) {
		p.ch <- res
	}
}

// batcher coalesces concurrent Invoke/InvokeAsync operations into multi-op
// requests. One dispatcher goroutine cuts batches from a FIFO queue —
// waiting up to the flush interval for a fuller batch, capped at maxOps
// operations or maxBytes of bodies — and hands each batch to a dispatch
// goroutine that runs it through one leased logical client. The width
// controller bounds how many dispatches are in flight at once, so under
// light load ops go out almost immediately while under heavy load the
// queue drains in large amortized envelopes.
type batcher struct {
	h        *Client
	maxOps   int
	maxBytes int
	flush    time.Duration
	ctrl     *widthController

	mu     sync.Mutex
	queue  []*pendingOp
	closed bool
	wake   chan struct{} // capacity 1: dispatcher nudge
	done   chan struct{} // dispatcher exited
}

func newBatcher(h *Client, cfg clientBatching) *batcher {
	b := &batcher{
		h:        h,
		maxOps:   cfg.maxOps,
		maxBytes: cfg.maxBytes,
		flush:    cfg.flush,
		ctrl:     newWidthController(h.width, cfg.adaptive),
		wake:     make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
	go b.run()
	return b
}

// enqueue adds one operation to the coalescing queue and returns its result
// channel (buffered; receives exactly one Result).
func (b *batcher) enqueue(ctx context.Context, op []byte) <-chan Result {
	ch := make(chan Result, 1)
	if err := ctx.Err(); err != nil {
		ch <- Result{Err: err}
		return ch
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		ch <- Result{Err: ErrClosed}
		return ch
	}
	b.queue = append(b.queue, &pendingOp{ctx: ctx, op: op, ch: ch})
	b.mu.Unlock()
	b.nudge()
	return ch
}

func (b *batcher) nudge() {
	select {
	case b.wake <- struct{}{}:
	default:
	}
}

// stop terminally closes the batcher: queued operations are drained and
// failed with ErrClosed, and the dispatcher exits. Operations already
// dispatched resolve through the runtime's own shutdown path. Idempotent.
func (b *batcher) stop() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	drained := b.queue
	b.queue = nil
	b.mu.Unlock()
	b.ctrl.close()
	b.nudge()
	for _, p := range drained {
		p.deliver(Result{Err: ErrClosed})
	}
	<-b.done
}

// run is the dispatcher loop.
func (b *batcher) run() {
	defer close(b.done)
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		// Park until there is at least one queued op (or shutdown).
		b.mu.Lock()
		for len(b.queue) == 0 && !b.closed {
			b.mu.Unlock()
			<-b.wake
			b.mu.Lock()
		}
		if b.closed {
			b.failLocked(ErrClosed)
			b.mu.Unlock()
			return
		}
		b.mu.Unlock()

		// Give the batch the flush interval to fill, unless it is already
		// at capacity.
		timer.Reset(b.flush)
		for {
			b.mu.Lock()
			full := len(b.queue) >= b.maxOps || b.queueBytesLocked() >= b.maxBytes
			closed := b.closed
			b.mu.Unlock()
			if full || closed {
				if !timer.Stop() {
					select {
					case <-timer.C:
					default:
					}
				}
				break
			}
			expired := false
			select {
			case <-timer.C:
				expired = true
			case <-b.wake:
			}
			if expired {
				break
			}
		}

		// Wait for a dispatch slot. While all slots are busy further ops
		// keep coalescing into the queue — this is where batches grow
		// under load.
		if err := b.ctrl.acquire(); err != nil {
			b.mu.Lock()
			b.failLocked(err)
			b.mu.Unlock()
			return
		}
		batch := b.cut()
		if len(batch) == 0 {
			b.ctrl.release()
			continue
		}
		go b.dispatch(batch)
	}
}

// queueBytesLocked sums the queued op bodies. Queues are short (maxOps is
// tens, not thousands), so a linear walk beats bookkeeping.
func (b *batcher) queueBytesLocked() int {
	n := 0
	for _, p := range b.queue {
		n += len(p.op)
	}
	return n
}

// failLocked fails every queued op; the caller holds b.mu.
func (b *batcher) failLocked(err error) {
	for _, p := range b.queue {
		p.deliver(Result{Err: err})
	}
	b.queue = nil
}

// cut pops the next batch off the queue: up to maxOps operations or
// maxBytes of bodies, whichever comes first. A single operation larger
// than maxBytes still ships (alone — it passes through effectively
// unbatched). Operations whose context is already canceled are resolved
// here instead of wasting a slot in the envelope.
func (b *batcher) cut() []*pendingOp {
	b.mu.Lock()
	defer b.mu.Unlock()
	batch := make([]*pendingOp, 0, b.maxOps)
	bytes := 0
	i := 0
	for ; i < len(b.queue) && len(batch) < b.maxOps; i++ {
		p := b.queue[i]
		if err := p.ctx.Err(); err != nil {
			p.deliver(Result{Err: err})
			continue
		}
		if len(batch) > 0 && bytes+len(p.op) > b.maxBytes {
			break
		}
		bytes += len(p.op)
		batch = append(batch, p)
	}
	b.queue = append(b.queue[:0], b.queue[i:]...)
	if len(b.queue) > 0 {
		b.nudge()
	}
	return batch
}

// dispatch runs one batch through a leased logical client and demultiplexes
// the certified reply envelope back to the callers. Each op's context keeps
// its contract: cancellation settles that op with ctx.Err() immediately
// (the operation may still execute as part of the batch, mirroring the
// unbatched abandon path), and the earliest deadline in the batch bounds
// the request timeout.
func (b *batcher) dispatch(batch []*pendingOp) {
	fail := func(err error) {
		for _, p := range batch {
			p.deliver(Result{Err: err})
		}
	}
	h := b.h
	rt, err := h.runtime()
	if err != nil {
		b.ctrl.release()
		fail(err)
		return
	}
	idx, err := h.lease(context.Background())
	if err != nil {
		b.ctrl.release()
		fail(err)
		return
	}
	h.admitN(len(batch))

	// A lone op goes out raw — byte-identical to an unbatched client —
	// unless its body would be mistaken for an envelope, in which case it
	// is escaped into a one-op envelope.
	wrapped := len(batch) > 1 || wire.IsMultiOp(batch[0].op)
	payload := batch[0].op
	if wrapped {
		ops := make([][]byte, len(batch))
		for i, p := range batch {
			ops[i] = p.op
		}
		payload = wire.PackOps(ops)
	}

	// Per-op cancellation watchers settle their op without waiting for the
	// batch; the once-guard in deliver drops the batch's late result.
	timeout := h.timeout
	batchDone := make(chan struct{})
	for _, p := range batch {
		if t := h.effectiveTimeout(p.ctx); t < timeout {
			timeout = t
		}
		if p.ctx.Done() == nil {
			continue
		}
		go func(p *pendingOp) {
			select {
			case <-p.ctx.Done():
				p.deliver(Result{Err: p.ctx.Err()})
			case <-batchDone:
			}
		}(p)
	}

	start := time.Now()
	res, err := rt.invoke(context.Background(), idx, payload, timeout)
	lat := time.Since(start)
	close(batchDone)

	h.releaseN(idx, len(batch))
	if err != nil {
		b.ctrl.release()
		fail(err)
		return
	}
	b.ctrl.releaseObserved(lat)
	h.batches.Add(1)
	h.batchedOps.Add(uint64(len(batch)))
	h.noteWrite(Result{Seq: res.seq})

	// Every operation in the batch certified at the batch's sequence
	// number; the per-op Results carry it so sessions can adopt it.
	if !wrapped {
		batch[0].deliver(Result{Reply: res.body, Seq: res.seq})
		return
	}
	bodies, err := replycert.SplitOpReplies(res.body, len(batch))
	if err != nil {
		fail(err)
		return
	}
	for i, p := range batch {
		p.deliver(Result{Reply: bodies[i], Seq: res.seq})
	}
}

// widthController adaptively bounds how many batch dispatches may be in
// flight concurrently, between 1 and the handle's pipeline width. It is an
// AIMD controller keyed on completion latency: the fastest completion seen
// so far approximates the uncontended round trip, and the smoothed recent
// latency is compared against it — rising latency means batches are
// queuing behind the cluster (narrow the window and let the coalescing
// queue amortize harder), flat latency means there is headroom (widen and
// pipeline more slots). With adaptation off it is a plain semaphore at
// full width.
type widthController struct {
	mu       sync.Mutex
	cond     *sync.Cond
	adaptive bool
	max      int
	target   int
	inUse    int
	closed   bool

	minLat time.Duration // fastest completion observed (baseline RTT)
	smooth time.Duration // EWMA of completion latency
}

func newWidthController(max int, adaptive bool) *widthController {
	if max < 1 {
		max = 1
	}
	w := &widthController{adaptive: adaptive, max: max, target: max}
	if adaptive && max > 2 {
		// Start narrow and earn width: the first completions establish the
		// baseline RTT before the window opens up.
		w.target = 2
	}
	w.cond = sync.NewCond(&w.mu)
	return w
}

// acquire blocks until a dispatch slot is free, or the controller closes.
func (w *widthController) acquire() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.inUse >= w.target && !w.closed {
		w.cond.Wait()
	}
	if w.closed {
		return ErrClosed
	}
	w.inUse++
	return nil
}

// release returns a slot without a latency observation (failed dispatch).
func (w *widthController) release() {
	w.mu.Lock()
	w.inUse--
	w.cond.Broadcast()
	w.mu.Unlock()
}

// releaseObserved returns a slot and feeds the completion latency to the
// adaptation loop.
func (w *widthController) releaseObserved(lat time.Duration) {
	w.mu.Lock()
	w.inUse--
	if w.adaptive && lat > 0 {
		if w.minLat == 0 || lat < w.minLat {
			w.minLat = lat
		}
		if w.smooth == 0 {
			w.smooth = lat
		} else {
			w.smooth = (3*w.smooth + lat) / 4
		}
		switch {
		case w.smooth > 2*w.minLat && w.target > 1:
			w.target--
		case w.smooth < w.minLat*3/2 && w.target < w.max:
			w.target++
		}
	}
	w.cond.Broadcast()
	w.mu.Unlock()
}

// width reports the current dispatch window.
func (w *widthController) width() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.target
}

// close unblocks all acquirers with ErrClosed. Idempotent.
func (w *widthController) close() {
	w.mu.Lock()
	w.closed = true
	w.cond.Broadcast()
	w.mu.Unlock()
}
