package saebft

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/apps/registry"
	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/types"
)

// Config describes a multi-process deployment: topology sizes, application,
// authentication choices, the key-material seed, and every node's address.
// It round-trips through the same JSON file the saebft-* command-line tools
// share. Key material is derived deterministically from the seed, so the
// file stands in for a trusted dealer: distribute it only to machines that
// run nodes, and treat it as secret.
type Config struct {
	d *deploy.Config
}

// DeployParams parameterizes GenerateConfig. Zero values take defaults:
// mode separate, app "kv", f=g=h=1, 2 clients, batch 8, 1024-bit threshold
// keys, host 127.0.0.1.
type DeployParams struct {
	Mode          Mode
	App           string
	Seed          string
	F, G, H       int
	Clients       int
	ReplyMode     ReplyMode
	MACRequests   bool
	MACOrders     bool
	BatchSize     int
	ThresholdBits int

	// Crypto selects the agreement-vote authenticator scheme: "ed25519"
	// (or empty) for transferable signatures, "mac" for pairwise MAC
	// vectors on pre-prepare/prepare/commit traffic. View changes, new
	// views, and checkpoint certificates stay Ed25519 either way — they
	// are shown beyond their original destination, which MAC vectors
	// cannot support. Shared protocol surface: every agreement replica
	// follows this field.
	Crypto string

	// BasePort assigns consecutive ports starting here; Host defaults to
	// 127.0.0.1. Edit the saved file for multi-machine layouts.
	BasePort int
	Host     string

	// TLSDir, when set, mints a cluster CA plus per-identity certificates
	// under this directory and records the paths in the config, exactly
	// like Config.GenerateTLS — so the emitted deployment runs every link
	// over mutual TLS. Keep it relative to where the config file will be
	// saved.
	TLSDir string
}

// GenerateConfig builds a deployment descriptor, assigning an address to
// every identity in the topology (including all client identities).
func GenerateConfig(p DeployParams) (*Config, error) {
	if p.App == "" {
		p.App = "kv"
	}
	if _, ok := registry.Lookup(p.App); !ok {
		return nil, fmt.Errorf("saebft: unknown app %q (have %v)", p.App, registry.Names())
	}
	if p.F == 0 {
		p.F = 1
	}
	if p.G == 0 {
		p.G = 1
	}
	if p.H == 0 {
		p.H = 1
	}
	if p.Clients == 0 {
		p.Clients = 2
	}
	if p.BatchSize == 0 {
		p.BatchSize = 8
	}
	if p.ThresholdBits == 0 {
		p.ThresholdBits = 1024
	}
	if p.Seed == "" {
		p.Seed = "saebft-demo"
	}
	if p.Host == "" {
		p.Host = "127.0.0.1"
	}
	if p.BasePort == 0 {
		p.BasePort = 7000
	}
	if p.Mode == ModeFirewall {
		p.ReplyMode = ReplyThreshold
	}
	switch p.Crypto {
	case "", "ed25519", "mac":
	default:
		return nil, fmt.Errorf("saebft: unknown crypto mode %q (want \"ed25519\" or \"mac\")", p.Crypto)
	}
	d := &deploy.Config{
		Seed:          p.Seed,
		Mode:          p.Mode.String(),
		App:           p.App,
		F:             p.F,
		G:             p.G,
		H:             p.H,
		Clients:       p.Clients,
		ReplyMode:     p.ReplyMode.String(),
		MACRequests:   p.MACRequests,
		MACOrders:     p.MACOrders,
		Crypto:        p.Crypto,
		BatchSize:     p.BatchSize,
		ThresholdBits: p.ThresholdBits,
		Addrs:         make(map[string]string),
	}
	top := core.BuildTopology(p.F, p.G, p.H, p.Clients, p.Mode.coreMode())
	if err := top.Validate(); err != nil {
		return nil, err
	}
	port := p.BasePort
	for _, id := range top.AllNodes() {
		d.Addrs[strconv.Itoa(int(id))] = fmt.Sprintf("%s:%d", p.Host, port)
		port++
	}
	cfg := &Config{d: d}
	if p.TLSDir != "" {
		if err := cfg.GenerateTLS(p.TLSDir); err != nil {
			return nil, err
		}
	}
	return cfg, nil
}

// LoadConfig reads a deployment descriptor from disk and validates its
// mode, reply mode, and application names.
func LoadConfig(path string) (*Config, error) {
	d, err := deploy.Load(path)
	if err != nil {
		return nil, err
	}
	c := &Config{d: d}
	if _, err := ParseMode(d.Mode); err != nil {
		return nil, err
	}
	if _, err := ParseReplyMode(d.ReplyMode); err != nil {
		return nil, err
	}
	switch d.Crypto {
	case "", "ed25519", "mac":
	default:
		return nil, fmt.Errorf("saebft: config names unknown crypto mode %q (want \"ed25519\" or \"mac\")", d.Crypto)
	}
	if _, ok := registry.Lookup(d.App); !ok {
		return nil, fmt.Errorf("saebft: config names unknown app %q (have %v)", d.App, registry.Names())
	}
	if _, err := c.topology(); err != nil {
		return nil, err
	}
	return c, nil
}

// Save writes the descriptor to disk (mode 0600 — it holds the key seed).
func (c *Config) Save(path string) error { return c.d.Save(path) }

// Mode returns the deployment's architecture.
func (c *Config) Mode() Mode {
	m, _ := ParseMode(c.d.Mode)
	return m
}

// App returns the deployment's application name ("" means "kv").
func (c *Config) App() string {
	if c.d.App == "" {
		return "kv"
	}
	return c.d.App
}

// Seed returns the key-material seed.
func (c *Config) Seed() string { return c.d.Seed }

// Effective fault thresholds and client count — zero config fields default
// the same way node construction defaults them.

// F returns the tolerated agreement faults (3F+1 replicas).
func (c *Config) F() int { return defaultOne(c.d.F) }

// G returns the tolerated execution faults (2G+1 replicas).
func (c *Config) G() int { return defaultOne(c.d.G) }

// H returns the tolerated per-row filter faults ((H+1)² filters).
func (c *Config) H() int { return defaultOne(c.d.H) }

// Clients returns the number of client identities.
func (c *Config) Clients() int { return defaultOne(c.d.Clients) }

func defaultOne(n int) int {
	if n == 0 {
		return 1
	}
	return n
}

// topology lays out the config's node identities, applying the same
// defaults the node-construction path does.
func (c *Config) topology() (*types.Topology, error) {
	m, err := ParseMode(c.d.Mode)
	if err != nil {
		return nil, err
	}
	top := core.BuildTopology(c.F(), c.G(), c.H(), c.Clients(), m.coreMode())
	if err := top.Validate(); err != nil {
		return nil, err
	}
	return top, nil
}

// NodeInfo describes one identity in a deployment.
type NodeInfo struct {
	ID   int
	Role string // "agreement", "execution", "filter", "client"
	Addr string
}

// Nodes lists every identity in the deployment in id order.
func (c *Config) Nodes() ([]NodeInfo, error) {
	top, err := c.topology()
	if err != nil {
		return nil, err
	}
	out := make([]NodeInfo, 0, len(c.d.Addrs))
	for _, id := range top.AllNodes() {
		role, _, _ := top.RoleOf(id)
		// BASE mode builds no execution replicas; don't list identities
		// an operator could never start.
		if role == types.RoleExecution && c.Mode() == ModeBase {
			continue
		}
		out = append(out, NodeInfo{
			ID:   int(id),
			Role: role.String(),
			Addr: c.d.Addrs[strconv.Itoa(int(id))],
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// ClientIDs lists the deployment's client identities in id order.
func (c *Config) ClientIDs() ([]int, error) {
	top, err := c.topology()
	if err != nil {
		return nil, err
	}
	out := make([]int, 0, len(top.Clients))
	for _, id := range top.Clients {
		out = append(out, int(id))
	}
	sort.Ints(out)
	return out, nil
}

// SetAddr overrides one identity's address — for multi-machine layouts or
// tests that need kernel-assigned free ports.
func (c *Config) SetAddr(id int, addr string) error {
	top, err := c.topology()
	if err != nil {
		return err
	}
	if _, _, ok := top.RoleOf(types.NodeID(id)); !ok {
		return fmt.Errorf("saebft: node %d is not part of the topology", id)
	}
	c.d.Addrs[strconv.Itoa(id)] = addr
	return nil
}

// addrMap converts the JSON address table to NodeID keys.
func (c *Config) addrMap() (map[types.NodeID]string, error) {
	out := make(map[types.NodeID]string, len(c.d.Addrs))
	for k, v := range c.d.Addrs {
		n, err := strconv.Atoi(k)
		if err != nil {
			return nil, fmt.Errorf("saebft: bad node id %q in addrs", k)
		}
		out[types.NodeID(n)] = v
	}
	return out, nil
}
