package saebft

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// BatchBenchConfig parameterizes RunBatchingBench, the reproducible
// client-batching/pipeline-width sweep. Zero-value fields take defaults;
// Short selects a CI-smoke grid small enough to finish in seconds.
type BatchBenchConfig struct {
	Transports []string // subset of {"sim", "tcp"}; default both
	BatchOps   []int    // WithClientBatching maxOps values; 0 = batching off
	Pipelines  []int    // WithClients widths to sweep
	Ops        int      // operations per point (all issued concurrently)
	OpSize     int      // request payload bytes
	Repeat     int      // samples per point; the best is reported
	Short      bool     // CI smoke sizing (overrides the grid fields)
	TLS        bool     // run TCP points over ephemeral mutual TLS (sim points are unaffected)
}

func (c *BatchBenchConfig) fillDefaults() {
	if c.Repeat == 0 {
		c.Repeat = 1
		if c.Short {
			// The smoke grid is cheap, and batch formation depends on
			// wall-clock goroutine scheduling; best-of-3 smooths scheduler
			// noise on shared CI machines before the regression gate.
			c.Repeat = 3
		}
	}
	if c.Short {
		c.Transports = []string{"sim", "tcp"}
		c.BatchOps = []int{0, 16}
		c.Pipelines = []int{8}
		c.Ops = 64
		c.OpSize = 128
		return
	}
	if len(c.Transports) == 0 {
		c.Transports = []string{"sim", "tcp"}
	}
	if len(c.BatchOps) == 0 {
		c.BatchOps = []int{0, 8, 32}
	}
	if len(c.Pipelines) == 0 {
		c.Pipelines = []int{1, 4, 8}
	}
	if c.Ops == 0 {
		c.Ops = 256
	}
	if c.OpSize == 0 {
		c.OpSize = 128
	}
}

// BenchPoint is one measured configuration of the batching sweep.
//
// On the simulated transport Throughput is computed over virtual time —
// far more stable across machines than wall clock, though batch formation
// still depends on real goroutine scheduling, which is why the regression
// gate keys on these points with a generous floor. On TCP it is computed
// over wall time (machine-dependent, reported for trend-watching only).
// The crypto comparison pair (`/crypto=...` keys) is the exception among
// sim points: it is measured over wall time too, because the compared cost
// is sign/verify CPU, which the virtual clock never sees.
type BenchPoint struct {
	Transport  string  `json:"transport"`
	Pipeline   int     `json:"pipeline"`
	BatchOps   int     `json:"batch_ops"`         // 0 = client batching off
	Storage    bool    `json:"storage,omitempty"` // fsync-batched WAL + checkpoint store enabled
	TLS        bool    `json:"tls,omitempty"`     // links over mutual TLS (TCP only)
	Obs        string  `json:"obs,omitempty"`     // "off" = observability disabled; "" = on (the default everywhere else)
	Read       string  `json:"read,omitempty"`    // read sweep: "certified" or "invoke"
	Crypto     string  `json:"crypto,omitempty"`  // crypto sweep: "mac" or "ed25519"; "" = the default scheme (ed25519), used by the gated grid points
	Ops        int     `json:"ops"`
	OpSize     int     `json:"op_size"`
	WallMs     float64 `json:"wall_ms"`
	VirtualMs  float64 `json:"virtual_ms,omitempty"` // sim only
	Throughput float64 `json:"throughput_ops_per_s"`
	MeanLatMs  float64 `json:"mean_latency_ms"` // wall clock, submission to reply
	Batches    uint64  `json:"batches"`
	FinalWidth int     `json:"final_width"`
}

// key identifies a point for baseline comparison.
func (p *BenchPoint) key() string {
	k := fmt.Sprintf("%s/p%d/b%d/n%d/s%d", p.Transport, p.Pipeline, p.BatchOps, p.Ops, p.OpSize)
	if p.Storage {
		k += "/durable"
	}
	if p.TLS {
		k += "/tls"
	}
	if p.Obs != "" {
		k += "/obs=" + p.Obs
	}
	if p.Read != "" {
		k += "/read=" + p.Read
	}
	if p.Crypto != "" {
		k += "/crypto=" + p.Crypto
	}
	return k
}

// BenchReport is the machine-readable output of RunBatchingBench; CI
// uploads it as the BENCH_batching.json artifact and gates merges on it.
type BenchReport struct {
	Name          string       `json:"name"`
	SchemaVersion int          `json:"schema_version"`
	GoVersion     string       `json:"go_version"`
	Short         bool         `json:"short"`
	CreatedUnix   int64        `json:"created_unix"`
	Points        []BenchPoint `json:"points"`
}

// RunBatchingBench sweeps client-side batch size × pipeline width over the
// selected transports and returns one point per configuration. Every point
// issues cfg.Ops concurrent operations against a fresh cluster and
// measures completion throughput and latency — the benchmark the
// ROADMAP's scaling work is tracked against.
func RunBatchingBench(cfg BatchBenchConfig) (*BenchReport, error) {
	cfg.fillDefaults()
	rep := &BenchReport{
		Name:          "client-batching",
		SchemaVersion: 1,
		GoVersion:     runtime.Version(),
		Short:         cfg.Short,
		CreatedUnix:   time.Now().Unix(),
	}
	for _, tr := range cfg.Transports {
		for _, pipe := range cfg.Pipelines {
			for _, bops := range cfg.BatchOps {
				var best BenchPoint
				for try := 0; try < cfg.Repeat; try++ {
					pt, err := runBatchPoint(tr, pipe, bops, cfg.Ops, cfg.OpSize, false, cfg.TLS, false, "")
					if err != nil {
						return nil, fmt.Errorf("saebft: bench point %s/p%d/b%d: %w", tr, pipe, bops, err)
					}
					if try == 0 || pt.Throughput > best.Throughput {
						best = pt
					}
				}
				rep.Points = append(rep.Points, best)
			}
		}
	}
	// One durable datapoint per transport: batched throughput with the
	// fsync-batched WAL + checkpoint store enabled, at the widest batch ×
	// pipeline of the grid. Records what persistence costs relative to the
	// in-memory points above; not part of the regression gate (the
	// baseline carries no durable points) since fsync latency is hardware-
	// dependent.
	maxPipe, maxBops := 0, 0
	for _, p := range cfg.Pipelines {
		if p > maxPipe {
			maxPipe = p
		}
	}
	for _, b := range cfg.BatchOps {
		if b > maxBops {
			maxBops = b
		}
	}
	for _, tr := range cfg.Transports {
		var best BenchPoint
		for try := 0; try < cfg.Repeat; try++ {
			pt, err := runBatchPoint(tr, maxPipe, maxBops, cfg.Ops, cfg.OpSize, true, cfg.TLS, false, "")
			if err != nil {
				return nil, fmt.Errorf("saebft: durable bench point %s/p%d/b%d: %w", tr, maxPipe, maxBops, err)
			}
			if try == 0 || pt.Throughput > best.Throughput {
				best = pt
			}
		}
		rep.Points = append(rep.Points, best)
	}
	// One observability-off datapoint on the simulated transport, at the
	// same widest configuration: its pair is the matching sim grid point
	// above, which runs with the registry and trace ring on (the default).
	// Keeping both in the report makes the instrumentation overhead a number
	// CI records every run. Not part of the regression gate (the baseline
	// carries no obs=off point); the grid points themselves ARE gated, so
	// instrumentation cost past the 30% floor still fails the build.
	for _, tr := range cfg.Transports {
		if tr != "sim" {
			continue
		}
		var best BenchPoint
		for try := 0; try < cfg.Repeat; try++ {
			pt, err := runBatchPoint(tr, maxPipe, maxBops, cfg.Ops, cfg.OpSize, false, cfg.TLS, true, "")
			if err != nil {
				return nil, fmt.Errorf("saebft: obs-off bench point %s/p%d/b%d: %w", tr, maxPipe, maxBops, err)
			}
			if try == 0 || pt.Throughput > best.Throughput {
				best = pt
			}
		}
		rep.Points = append(rep.Points, best)
	}
	hasSim := false
	for _, tr := range cfg.Transports {
		hasSim = hasSim || tr == "sim"
	}
	// The agreement-crypto pair: one sim point per scheme at the widest
	// configuration, explicitly labeled crypto=ed25519 and crypto=mac so the
	// report carries a same-run comparison of transferable signatures vs
	// pairwise-MAC authenticator vectors on the vote hot path. Not part of
	// the regression gate (the gated grid points run the unlabeled default);
	// the MAC point is the paper's fast path and should show the gain.
	for _, scheme := range []string{"ed25519", "mac"} {
		if !hasSim {
			break
		}
		var best BenchPoint
		for try := 0; try < cfg.Repeat; try++ {
			pt, err := runBatchPoint("sim", maxPipe, maxBops, cfg.Ops, cfg.OpSize, false, cfg.TLS, false, scheme)
			if err != nil {
				return nil, fmt.Errorf("saebft: crypto bench point sim/p%d/b%d/crypto=%s: %w", maxPipe, maxBops, scheme, err)
			}
			if try == 0 || pt.Throughput > best.Throughput {
				best = pt
			}
		}
		rep.Points = append(rep.Points, best)
	}
	return rep, nil
}

func runBatchPoint(transport string, pipeline, batchOps, ops, opSize int, durable, secure, obsOff bool, crypto string) (BenchPoint, error) {
	secure = secure && transport == "tcp" // the simulator has no links to secure
	pt := BenchPoint{
		Transport: transport, Pipeline: pipeline, BatchOps: batchOps,
		Storage: durable, Ops: ops, OpSize: opSize, TLS: secure, Crypto: crypto,
	}
	opts := []Option{
		WithApp("null"),
		WithClients(pipeline),
		WithSeed("bench-batching"),
		WithInvokeTimeout(2 * time.Minute),
	}
	if obsOff {
		pt.Obs = "off"
		opts = append(opts, WithObservability(false))
	}
	if crypto == "mac" {
		opts = append(opts, WithCrypto(CryptoConfig{Mode: CryptoMAC}))
	}
	if durable {
		dir, err := os.MkdirTemp("", "saebft-bench-storage-")
		if err != nil {
			return pt, err
		}
		defer os.RemoveAll(dir)
		opts = append(opts, WithStorage(StorageConfig{DataDir: dir, Fsync: FsyncBatched}))
	}
	switch transport {
	case "sim":
		opts = append(opts, WithTransport(SimTransport()))
	case "tcp":
		opts = append(opts, WithTransport(TCPTransport()))
		if secure {
			opts = append(opts, WithTLS(TLSConfig{Ephemeral: true}))
		}
	default:
		return pt, fmt.Errorf("unknown transport %q", transport)
	}
	if batchOps > 0 {
		opts = append(opts, WithClientBatching(batchOps, 0, 100*time.Microsecond))
	}
	c, err := NewCluster(opts...)
	if err != nil {
		return pt, err
	}
	if err := c.Start(context.Background()); err != nil {
		return pt, err
	}
	defer c.Close()
	cl := c.Client()
	ctx := context.Background()
	op := make([]byte, opSize)
	for i := range op {
		op[i] = byte(i)
	}
	// One warm-up round trip settles connections and the view before the
	// measured window; its counters are excluded from the report.
	if _, err := cl.Invoke(ctx, op); err != nil {
		return pt, err
	}
	warmBatches := cl.Batches()
	virtStart, _ := c.VirtualTime()
	wallStart := time.Now()
	// One collector per op records its latency the moment its reply lands
	// (all ops are submitted together, so sojourn ≈ now - wallStart);
	// draining sequentially would charge each op the slowest predecessor.
	var latSum atomic.Int64
	var wg sync.WaitGroup
	errc := make(chan error, ops)
	for i := 0; i < ops; i++ {
		ch := cl.InvokeAsync(ctx, op)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res := <-ch
			if res.Err != nil {
				errc <- fmt.Errorf("op %d: %w", i, res.Err)
				return
			}
			latSum.Add(int64(time.Since(wallStart)))
		}(i)
	}
	wg.Wait()
	wall := time.Since(wallStart)
	select {
	case err := <-errc:
		return pt, err
	default:
	}
	pt.WallMs = float64(wall) / 1e6
	pt.MeanLatMs = float64(latSum.Load()) / float64(ops) / 1e6
	pt.Batches = cl.Batches() - warmBatches
	pt.FinalWidth = cl.PipelineWidth()
	elapsed := wall
	if transport == "sim" && crypto == "" {
		// Crypto-sweep points stay on wall clock even over the simulated
		// transport: the cost they compare — sign/verify CPU on the
		// delivery path — is invisible to the virtual clock, which only
		// advances on modeled link delays. They are never gated, so the
		// machine-dependence is acceptable; the gated grid points keep
		// stable virtual-time throughput.
		virtEnd, err := c.VirtualTime()
		if err != nil {
			return pt, err
		}
		virt := virtEnd - virtStart
		pt.VirtualMs = float64(virt) / 1e6
		elapsed = virt
	}
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}
	pt.Throughput = float64(ops) / elapsed.Seconds()
	return pt, nil
}

// WriteFile writes the report as indented JSON.
func (r *BenchReport) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadBenchReport reads a report written by WriteFile.
func LoadBenchReport(path string) (*BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r BenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("saebft: parsing bench report %s: %w", path, err)
	}
	return &r, nil
}

// CompareBenchReports gates current against baseline: every simulated-
// transport baseline point must be matched by a current point whose
// virtual-time throughput is within maxRegress (e.g. 0.30 for 30%) of the
// baseline's. Wall-clock (TCP) points are machine-dependent and are not
// gated. Returns an error describing every regression, or nil.
func CompareBenchReports(current, baseline *BenchReport, maxRegress float64) error {
	cur := make(map[string]BenchPoint, len(current.Points))
	for _, p := range current.Points {
		cur[p.key()] = p
	}
	var failures []string
	for _, base := range baseline.Points {
		if base.Transport != "sim" {
			continue
		}
		now, ok := cur[base.key()]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from current run", base.key()))
			continue
		}
		floor := base.Throughput * (1 - maxRegress)
		if now.Throughput < floor {
			failures = append(failures,
				fmt.Sprintf("%s: %.0f ops/s < %.0f (baseline %.0f ops/s - %.0f%%)",
					base.key(), now.Throughput, floor, base.Throughput, maxRegress*100))
		}
	}
	if len(failures) > 0 {
		msg := "saebft: bench regression:"
		for _, f := range failures {
			msg += "\n  " + f
		}
		return fmt.Errorf("%s", msg)
	}
	return nil
}
