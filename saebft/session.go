package saebft

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/replycert"
	"repro/internal/wire"
)

// maxReadAttempts bounds how many fast-path probes one ReadCertified call
// makes before falling back to full agreement: the initial probe plus
// retries at the raised floor a mismatch hints at.
const maxReadAttempts = 3

// Session orders a sequence of operations for read-your-writes: every
// Invoke through the session advances its watermark to the sequence number
// the reply certified at, and every ReadCertified demands answers computed
// at or above that watermark — so a session's reads always observe its own
// completed writes, without paying for an agreement round per read.
//
// Obtain one from Client.Session. The client handle itself carries an
// implicit session spanning all its invocations, which is what
// Client.ReadCertified reads against. A Session is safe for concurrent use;
// its watermark only advances.
type Session struct {
	h     *Client
	floor atomic.Uint64
}

// Watermark reports the session's current read floor: the highest sequence
// number any of its writes certified at (or AdvanceTo raised it to).
func (s *Session) Watermark() uint64 { return s.floor.Load() }

// AdvanceTo raises the session's read floor to at least seq; lower values
// are ignored (the watermark is monotonic). Use it to transfer a watermark
// between sessions — e.g. resuming a client's session from a cookie, or
// forcing the next read to wait for another client's write whose Result.Seq
// was shared out of band.
func (s *Session) AdvanceTo(seq uint64) {
	for {
		cur := s.floor.Load()
		if seq <= cur || s.floor.CompareAndSwap(cur, seq) {
			return
		}
	}
}

// Invoke submits one operation through the session's handle and advances
// the session watermark past it on success.
func (s *Session) Invoke(ctx context.Context, op []byte) ([]byte, error) {
	res := s.h.invokeFull(ctx, op)
	if res.Err == nil {
		s.AdvanceTo(res.Seq)
	}
	return res.Reply, res.Err
}

// ReadCertified serves one read-only operation through the certified fast
// read path at this session's watermark; see Client.ReadCertified for the
// fast-path/fallback contract.
func (s *Session) ReadCertified(ctx context.Context, op []byte) ([]byte, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	h := s.h
	rt, err := h.runtime()
	if err != nil {
		return nil, err
	}
	idx, err := h.lease(ctx)
	if err != nil {
		return nil, err
	}
	h.admit()
	defer h.release(idx)
	h.reads.Add(1)

	// Bodies that look like multi-op envelopes are escaped exactly as the
	// write path escapes them, so the executors' envelope unpacking reads
	// the operation the caller wrote.
	wrapped := wire.IsMultiOp(op)
	probeOp := op
	if wrapped {
		probeOp = wire.PackOps([][]byte{op})
	}

	floor := s.Watermark()
	for attempt := 0; attempt < maxReadAttempts; attempt++ {
		att, err := rt.readCertified(ctx, idx, probeOp, floor, h.readAttemptTimeout(ctx))
		switch {
		case errors.Is(err, core.ErrNoReadPath), errors.Is(err, ErrTimeout):
			// No read path in this deployment, or the probe could not
			// complete in time (crashed or partitioned executors): serve
			// through agreement.
			return s.fallback(ctx, rt, idx, op)
		case err != nil:
			return nil, err
		case att.mismatch:
			if att.hint > floor && attempt < maxReadAttempts-1 {
				// Executors disagree at this floor; retry where a correct
				// majority can meet (the hint is the (g+1)'th-highest
				// watermark seen, so it never chases a Byzantine claim).
				floor = att.hint
				s.h.readRetries.Add(1)
				continue
			}
			return s.fallback(ctx, rt, idx, op)
		case att.refused:
			// g+1 matching refusals certify that this operation must go
			// through full agreement (not read-only, no query support).
			return s.fallback(ctx, rt, idx, op)
		}
		s.AdvanceTo(att.seq)
		h.readsCertified.Add(1)
		if !wrapped {
			return att.body, nil
		}
		bodies, err := replycert.SplitOpReplies(att.body, 1)
		if err != nil {
			return nil, err
		}
		return bodies[0], nil
	}
	return s.fallback(ctx, rt, idx, op)
}

// fallback serves a read through full agreement on the already-leased
// logical client, advancing the session like any other write.
func (s *Session) fallback(ctx context.Context, rt clusterRuntime, idx int, op []byte) ([]byte, error) {
	s.h.readFallbacks.Add(1)
	body, seq, err := s.h.invokeSingle(ctx, rt, idx, op)
	if err == nil {
		res := Result{Reply: body, Seq: seq}
		s.AdvanceTo(seq)
		s.h.noteWrite(res)
	}
	return body, err
}

// readAttemptTimeout bounds one fast-path probe: the configured read
// timeout (WithReadTimeout / DialReadTimeout), defaulting to a fraction of
// the invoke timeout — a probe is one round trip to the execution replicas,
// so waiting the full agreement timeout before falling back would forfeit
// the fast path's latency advantage — and never beyond the context
// deadline.
func (h *Client) readAttemptTimeout(ctx context.Context) time.Duration {
	t := h.readTimeout
	if t == 0 {
		t = h.timeout / 4
		if t == 0 {
			t = time.Second
		}
	}
	if dl, ok := ctx.Deadline(); ok {
		if d := time.Until(dl); d < t {
			t = d
		}
	}
	return t
}
