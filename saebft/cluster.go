package saebft

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// Cluster is a full deployment — agreement replicas, execution replicas,
// filters, and logical clients — owned by this process and wired over the
// configured Transport.
//
// Lifecycle: NewCluster validates options and derives topology and key
// material; Start brings every node up; Close tears everything down. If the
// context given to Start is cancelable, cancellation closes the cluster.
type Cluster struct {
	o       options
	builder *core.Builder
	handle  *Client

	mu        sync.Mutex
	rt        clusterRuntime
	ops       *obs.OpsServer
	watchStop chan struct{}
	closed    bool
}

// NewCluster validates the options and derives the cluster's topology and
// deterministic key material. No node runs until Start.
func NewCluster(optfns ...Option) (*Cluster, error) {
	var o options
	for _, fn := range optfns {
		fn(&o)
	}
	o.fillDefaults()
	if o.tls.enabled() {
		if _, ok := o.transport.(*tcpTransport); !ok {
			return nil, errors.New("saebft: WithTLS requires WithTransport(TCPTransport(...)); the simulated transport has no links to secure")
		}
		if o.tls.Dir != "" && o.tls.Ephemeral {
			return nil, errors.New("saebft: TLSConfig sets both Dir and Ephemeral")
		}
	}
	copts, err := o.coreOptions()
	if err != nil {
		return nil, err
	}
	b, err := core.NewBuilder(copts)
	if err != nil {
		return nil, err
	}
	c := &Cluster{o: o, builder: b}
	c.handle = newClusterClient(c, o.clients, o.invokeTimeout, o.readTimeout)
	c.handle.registerClientObs(o.obsReg)
	if o.clientBatch.enabled {
		c.handle.startBatching(o.clientBatch)
	}
	return c, nil
}

// Start brings every node of the cluster up on the configured transport.
// If ctx is cancelable, its cancellation closes the cluster.
func (c *Cluster) Start(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if c.rt != nil {
		return errors.New("saebft: cluster already started")
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	rt, err := c.o.transport.start(c.builder, &c.o)
	if err != nil {
		return err
	}
	if c.o.metricsAddr != "" {
		srv, err := obs.ServeOps(c.o.metricsAddr, c.o.obsReg, c.o.obsTrace)
		if err != nil {
			rt.close()
			return fmt.Errorf("saebft: ops endpoint: %w", err)
		}
		c.ops = srv
	}
	c.rt = rt
	if ctx.Done() != nil {
		stop := make(chan struct{})
		c.watchStop = stop
		go func() {
			select {
			case <-ctx.Done():
				c.Close()
			case <-stop:
			}
		}()
	}
	return nil
}

// Close shuts the cluster down and releases every node. Idempotent.
func (c *Cluster) Close() error {
	rt, done := c.teardown()
	if done || rt == nil {
		return nil
	}
	return rt.close()
}

// teardown performs the shared shutdown preamble (mark closed, stop the
// context watcher, drain the client handle) and hands back the runtime for
// the caller to close or kill. done reports an earlier teardown already ran.
func (c *Cluster) teardown() (rt clusterRuntime, done bool) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, true
	}
	c.closed = true
	rt = c.rt
	ops := c.ops
	c.ops = nil
	stop := c.watchStop
	c.mu.Unlock()
	if stop != nil {
		close(stop)
	}
	ops.Close() // nil-safe; stops serving before the nodes go away
	// Drain the handle first: queued (not yet dispatched) operations fail
	// with ErrClosed immediately, then closing the runtime resolves the
	// in-flight ones.
	c.handle.shutdown()
	return rt, false
}

// kill tears the cluster down abruptly, skipping the durable-store flush —
// the in-process equivalent of kill -9 on every node at once. Recovery
// tests use it to exercise crash restarts; everything else should Close.
func (c *Cluster) kill() {
	rt, done := c.teardown()
	if done || rt == nil {
		return
	}
	rt.kill()
}

// runtime returns the live runtime, or the lifecycle error explaining why
// there is none.
func (c *Cluster) runtime() (clusterRuntime, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	if c.rt == nil {
		return nil, ErrNotStarted
	}
	return c.rt, nil
}

// Client returns the cluster's client handle. The same handle is returned
// on every call; it is safe for concurrent use and pipelines up to
// WithClients concurrent invocations. It becomes usable after Start.
func (c *Cluster) Client() *Client { return c.handle }

// Info describes the built topology.
func (c *Cluster) Info() Info {
	top := c.builder.Top
	info := Info{
		Mode:      c.o.mode,
		F:         top.F(),
		Agreement: len(top.Agreement),
		Clients:   len(top.Clients),
	}
	// BASE couples execution into the agreement replicas; the topology
	// still lays out executor identities, but none is ever built.
	if c.o.mode != ModeBase {
		info.Execution = len(top.Execution)
		info.G = top.G()
	}
	if top.HasFirewall() {
		info.H = top.H()
		info.FilterRows = len(top.Filters)
		for _, row := range top.Filters {
			info.Filters += len(row)
		}
	}
	return info
}

// Stats snapshots aggregate counters from the running cluster.
func (c *Cluster) Stats() (Stats, error) {
	rt, err := c.runtime()
	if err != nil {
		return Stats{}, err
	}
	return rt.stats()
}

// sim returns the simulated runtime, or ErrSimOnly on other transports.
func (c *Cluster) sim() (*simRuntime, error) {
	rt, err := c.runtime()
	if err != nil {
		return nil, err
	}
	sr, ok := rt.(*simRuntime)
	if !ok {
		return nil, ErrSimOnly
	}
	return sr, nil
}

// VirtualTime reports the simulated transport's current virtual clock
// (simulated transport only). Benchmarks measure deterministic virtual-time
// throughput with it: the clock advances only with simulated network and
// (optionally) compute activity, never with host wall time.
func (c *Cluster) VirtualTime() (time.Duration, error) {
	sr, err := c.sim()
	if err != nil {
		return 0, err
	}
	var now time.Duration
	if err := sr.do(func() { now = time.Duration(sr.c.Net.Now()) }); err != nil {
		return 0, err
	}
	return now, nil
}

// CrashAgreement crashes agreement replica i (simulated transport only).
// Crashing the current primary exercises the view change.
func (c *Cluster) CrashAgreement(i int) error {
	sr, err := c.sim()
	if err != nil {
		return err
	}
	top := c.builder.Top
	if i < 0 || i >= len(top.Agreement) {
		return fmt.Errorf("saebft: agreement replica %d out of range", i)
	}
	return sr.crash(top.Agreement[i])
}

// CrashExec crashes execution replica i (simulated transport only).
func (c *Cluster) CrashExec(i int) error {
	sr, err := c.sim()
	if err != nil {
		return err
	}
	top := c.builder.Top
	if i < 0 || i >= len(top.Execution) {
		return fmt.Errorf("saebft: execution replica %d out of range", i)
	}
	return sr.crash(top.Execution[i])
}

// CrashFilter crashes the firewall filter at (row, col) (simulated
// transport, firewall mode only).
func (c *Cluster) CrashFilter(row, col int) error {
	sr, err := c.sim()
	if err != nil {
		return err
	}
	top := c.builder.Top
	if row < 0 || row >= len(top.Filters) || col < 0 || col >= len(top.Filters[row]) {
		return fmt.Errorf("saebft: filter (%d,%d) out of range", row, col)
	}
	return sr.crash(top.Filters[row][col])
}

// ByzantineExec replaces execution replica i with an active adversary that
// floods the cluster with forged reply shares and garbage instead of
// executing operations (simulated transport only). The service must keep
// returning correct certified results despite it — that is the paper's
// claim, and tests assert it.
func (c *Cluster) ByzantineExec(i int) error {
	sr, err := c.sim()
	if err != nil {
		return err
	}
	return sr.byzantine(i)
}

// Tap observes every delivered message (simulated transport only): fn runs
// on the simulation goroutine for each delivery and must not call back into
// the cluster. Examples use it to verify that sealed request/reply bodies
// never cross the network in plaintext.
func (c *Cluster) Tap(fn func(from, to int, payload []byte)) error {
	sr, err := c.sim()
	if err != nil {
		return err
	}
	return sr.tap(fn)
}
