package saebft

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Client is a pipelined, context-aware handle onto a replicated service.
//
// The paper's client model keeps exactly one request outstanding (§2). A
// handle multiplexes many such logical clients behind one surface: each
// Invoke/InvokeAsync leases a free logical client, runs the operation
// through it, and returns it to the pool — so up to Pipeline() invocations
// proceed concurrently and further calls queue for the next free slot.
//
// A handle is safe for concurrent use by any number of goroutines.
type Client struct {
	cluster *Cluster       // non-nil when owned by an in-process Cluster
	rt      clusterRuntime // non-nil when dialed against a deployment

	free    chan int
	width   int
	timeout time.Duration

	inFlight    atomic.Int64
	maxInFlight atomic.Int64

	closeOnce sync.Once
	closed    atomic.Bool
}

func newHandle(width int, timeout time.Duration) *Client {
	h := &Client{free: make(chan int, width), width: width, timeout: timeout}
	for i := 0; i < width; i++ {
		h.free <- i
	}
	return h
}

func newClusterClient(c *Cluster, width int, timeout time.Duration) *Client {
	h := newHandle(width, timeout)
	h.cluster = c
	return h
}

func newDialedClient(rt clusterRuntime, width int, timeout time.Duration) *Client {
	h := newHandle(width, timeout)
	h.rt = rt
	return h
}

// runtime resolves the live backend for this handle.
func (h *Client) runtime() (clusterRuntime, error) {
	if h.cluster != nil {
		return h.cluster.runtime()
	}
	if h.closed.Load() {
		return nil, ErrClosed
	}
	return h.rt, nil
}

// Pipeline reports how many invocations the handle can keep in flight
// concurrently (the number of logical clients backing it).
func (h *Client) Pipeline() int { return h.width }

// InFlight reports how many invocations are currently admitted.
func (h *Client) InFlight() int { return int(h.inFlight.Load()) }

// MaxInFlight reports the high-water mark of concurrently admitted
// invocations over the handle's lifetime.
func (h *Client) MaxInFlight() int { return int(h.maxInFlight.Load()) }

func (h *Client) lease(ctx context.Context) (int, error) {
	select {
	case idx := <-h.free:
		return idx, nil
	default:
	}
	select {
	case idx := <-h.free:
		return idx, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

func (h *Client) admit() {
	n := h.inFlight.Add(1)
	for {
		max := h.maxInFlight.Load()
		if n <= max || h.maxInFlight.CompareAndSwap(max, n) {
			return
		}
	}
}

func (h *Client) release(idx int) {
	h.inFlight.Add(-1)
	h.free <- idx
}

// effectiveTimeout bounds the per-request timeout by the context deadline.
func (h *Client) effectiveTimeout(ctx context.Context) time.Duration {
	timeout := h.timeout
	if dl, ok := ctx.Deadline(); ok {
		if d := time.Until(dl); d < timeout {
			timeout = d
		}
	}
	return timeout
}

// Invoke submits one operation and blocks until its certified reply, an
// error, context cancellation, or the handle's timeout. The reply is
// vouched for by the deployment's reply-certificate scheme (g+1 matching
// replies or a valid threshold signature) before it is returned.
func (h *Client) Invoke(ctx context.Context, op []byte) ([]byte, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	rt, err := h.runtime()
	if err != nil {
		return nil, err
	}
	idx, err := h.lease(ctx)
	if err != nil {
		return nil, err
	}
	h.admit()
	defer h.release(idx)
	return rt.invoke(ctx, idx, op, h.effectiveTimeout(ctx))
}

// InvokeAsync submits one operation without blocking and returns a channel
// that receives exactly one Result. Up to Pipeline() invocations run
// concurrently; beyond that, calls wait (off the caller's goroutine) for a
// free slot. A canceled context resolves the invocation with ctx.Err() once
// its logical client has quiesced.
func (h *Client) InvokeAsync(ctx context.Context, op []byte) <-chan Result {
	ch := make(chan Result, 1)
	if ctx == nil {
		ctx = context.Background()
	}
	rt, err := h.runtime()
	if err != nil {
		ch <- Result{Err: err}
		return ch
	}
	// Lease synchronously when a slot is free: the invocation is then
	// admitted (visible in InFlight) before InvokeAsync returns.
	select {
	case idx := <-h.free:
		h.admit()
		go h.finish(ctx, rt, idx, op, ch)
	default:
		go func() {
			idx, err := h.lease(ctx)
			if err != nil {
				ch <- Result{Err: err}
				return
			}
			h.admit()
			h.finish(ctx, rt, idx, op, ch)
		}()
	}
	return ch
}

func (h *Client) finish(ctx context.Context, rt clusterRuntime, idx int, op []byte, ch chan Result) {
	reply, err := rt.invoke(ctx, idx, op, h.effectiveTimeout(ctx))
	h.release(idx)
	ch <- Result{Reply: reply, Err: err}
}

// Close releases a handle obtained from Dial, disconnecting its endpoints.
// On a handle owned by a Cluster it is a no-op — close the Cluster instead.
func (h *Client) Close() error {
	if h.cluster != nil {
		return nil
	}
	h.closeOnce.Do(func() {
		h.closed.Store(true)
		if h.rt != nil {
			h.rt.close()
		}
	})
	return nil
}
