package saebft

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/replycert"
	"repro/internal/wire"
)

// Client is a pipelined, context-aware handle onto a replicated service.
//
// The paper's client model keeps exactly one request outstanding (§2). A
// handle multiplexes many such logical clients behind one surface: each
// Invoke/InvokeAsync leases a free logical client, runs the operation
// through it, and returns it to the pool — so up to Pipeline() invocations
// proceed concurrently and further calls queue for the next free slot.
//
// With client-side batching enabled (WithClientBatching / DialBatching),
// operations are instead coalesced into multi-op requests: concurrent
// Invoke/InvokeAsync calls share logical clients, one agreement slot
// amortizes over a whole envelope of operations, and an adaptive
// controller widens or narrows the number of concurrently dispatched
// batches based on observed completion latency.
//
// A handle is safe for concurrent use by any number of goroutines.
type Client struct {
	cluster *Cluster       // non-nil when owned by an in-process Cluster
	rt      clusterRuntime // non-nil when dialed against a deployment

	free    chan int
	width   int
	timeout time.Duration
	quit    chan struct{} // closed on terminal shutdown
	bat     *batcher      // non-nil when client-side batching is enabled

	inFlight    atomic.Int64
	maxInFlight atomic.Int64
	batches     atomic.Uint64
	batchedOps  atomic.Uint64

	closeOnce sync.Once
	closed    atomic.Bool
}

func newHandle(width int, timeout time.Duration) *Client {
	h := &Client{
		free:    make(chan int, width),
		width:   width,
		timeout: timeout,
		quit:    make(chan struct{}),
	}
	for i := 0; i < width; i++ {
		h.free <- i
	}
	return h
}

func newClusterClient(c *Cluster, width int, timeout time.Duration) *Client {
	h := newHandle(width, timeout)
	h.cluster = c
	return h
}

func newDialedClient(rt clusterRuntime, width int, timeout time.Duration) *Client {
	h := newHandle(width, timeout)
	h.rt = rt
	return h
}

// startBatching attaches a coalescing batcher; called once at construction,
// before the handle is visible to any other goroutine.
func (h *Client) startBatching(cfg clientBatching) {
	cfg.fillDefaults()
	h.bat = newBatcher(h, cfg)
}

// runtime resolves the live backend for this handle.
func (h *Client) runtime() (clusterRuntime, error) {
	if h.cluster != nil {
		return h.cluster.runtime()
	}
	if h.closed.Load() {
		return nil, ErrClosed
	}
	return h.rt, nil
}

// Stats snapshots aggregate counters from the handle's backend: for a
// cluster handle the whole cluster (same as Cluster.Stats), for a dialed
// handle this process's client endpoints — including their TCP link
// counters, which is what an operator debugging a WAN deployment wants.
func (h *Client) Stats() (Stats, error) {
	rt, err := h.runtime()
	if err != nil {
		return Stats{}, err
	}
	return rt.stats()
}

// Pipeline reports how many invocations the handle can keep in flight
// concurrently (the number of logical clients backing it).
func (h *Client) Pipeline() int { return h.width }

// PipelineWidth reports how many batch dispatches the adaptive controller
// currently allows in flight. Without batching it equals Pipeline().
func (h *Client) PipelineWidth() int {
	if h.bat == nil {
		return h.width
	}
	return h.bat.ctrl.width()
}

// Batches reports how many (multi-op or pass-through) requests the
// batching path has completed successfully.
func (h *Client) Batches() uint64 { return h.batches.Load() }

// BatchedOps reports how many operations completed through the batching
// path; BatchedOps()/Batches() is the achieved amortization factor.
func (h *Client) BatchedOps() uint64 { return h.batchedOps.Load() }

// InFlight reports how many invocations are currently admitted.
func (h *Client) InFlight() int { return int(h.inFlight.Load()) }

// MaxInFlight reports the high-water mark of concurrently admitted
// invocations over the handle's lifetime.
func (h *Client) MaxInFlight() int { return int(h.maxInFlight.Load()) }

func (h *Client) lease(ctx context.Context) (int, error) {
	select {
	case idx := <-h.free:
		return idx, nil
	default:
	}
	select {
	case idx := <-h.free:
		return idx, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	case <-h.quit:
		return 0, ErrClosed
	}
}

func (h *Client) admit() { h.admitN(1) }

func (h *Client) admitN(k int) {
	n := h.inFlight.Add(int64(k))
	for {
		max := h.maxInFlight.Load()
		if n <= max || h.maxInFlight.CompareAndSwap(max, n) {
			return
		}
	}
}

func (h *Client) release(idx int) { h.releaseN(idx, 1) }

func (h *Client) releaseN(idx, k int) {
	h.inFlight.Add(int64(-k))
	h.free <- idx
}

// effectiveTimeout bounds the per-request timeout by the context deadline.
func (h *Client) effectiveTimeout(ctx context.Context) time.Duration {
	timeout := h.timeout
	if dl, ok := ctx.Deadline(); ok {
		if d := time.Until(dl); d < timeout {
			timeout = d
		}
	}
	return timeout
}

// Invoke submits one operation and blocks until its certified reply, an
// error, context cancellation, or the handle's timeout. The reply is
// vouched for by the deployment's reply-certificate scheme (g+1 matching
// replies or a valid threshold signature) before it is returned.
func (h *Client) Invoke(ctx context.Context, op []byte) ([]byte, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if h.bat != nil {
		select {
		case res := <-h.bat.enqueue(ctx, op):
			return res.Reply, res.Err
		case <-ctx.Done():
			// The batch resolves on its own; the buffered result channel
			// absorbs the late delivery.
			return nil, ctx.Err()
		}
	}
	rt, err := h.runtime()
	if err != nil {
		return nil, err
	}
	idx, err := h.lease(ctx)
	if err != nil {
		return nil, err
	}
	h.admit()
	defer h.release(idx)
	return h.invokeSingle(ctx, rt, idx, op)
}

// invokeSingle runs one unbatched operation, escaping bodies that would be
// mistaken for multi-op envelopes by the execution cluster.
func (h *Client) invokeSingle(ctx context.Context, rt clusterRuntime, idx int, op []byte) ([]byte, error) {
	wrapped := wire.IsMultiOp(op)
	if wrapped {
		op = wire.PackOps([][]byte{op})
	}
	reply, err := rt.invoke(ctx, idx, op, h.effectiveTimeout(ctx))
	if err != nil || !wrapped {
		return reply, err
	}
	bodies, err := replycert.SplitOpReplies(reply, 1)
	if err != nil {
		return nil, err
	}
	return bodies[0], nil
}

// InvokeAsync submits one operation without blocking and returns a channel
// that receives exactly one Result. Up to Pipeline() invocations run
// concurrently; beyond that, calls wait (off the caller's goroutine) for a
// free slot. A canceled context resolves the invocation with ctx.Err() —
// promptly on the batching path (the operation may still execute as part
// of its batch), or once its logical client has quiesced on the unbatched
// path. Closing the owning cluster (or the dialed handle) drains queued
// invocations with ErrClosed.
func (h *Client) InvokeAsync(ctx context.Context, op []byte) <-chan Result {
	if ctx == nil {
		ctx = context.Background()
	}
	if h.bat != nil {
		return h.bat.enqueue(ctx, op)
	}
	ch := make(chan Result, 1)
	rt, err := h.runtime()
	if err != nil {
		ch <- Result{Err: err}
		return ch
	}
	// Lease synchronously when a slot is free: the invocation is then
	// admitted (visible in InFlight) before InvokeAsync returns.
	select {
	case idx := <-h.free:
		h.admit()
		go h.finish(ctx, rt, idx, op, ch)
	default:
		go func() {
			idx, err := h.lease(ctx)
			if err != nil {
				ch <- Result{Err: err}
				return
			}
			h.admit()
			h.finish(ctx, rt, idx, op, ch)
		}()
	}
	return ch
}

func (h *Client) finish(ctx context.Context, rt clusterRuntime, idx int, op []byte, ch chan Result) {
	reply, err := h.invokeSingle(ctx, rt, idx, op)
	h.release(idx)
	ch <- Result{Reply: reply, Err: err}
}

// shutdown terminally closes the handle: queued batched operations are
// drained and failed with ErrClosed, waiters for a free logical client are
// unblocked, and — on a dialed handle — the runtime's endpoints disconnect.
// Idempotent; invoked by Close on dialed handles and by Cluster.Close on
// owned ones.
func (h *Client) shutdown() {
	h.closeOnce.Do(func() {
		h.closed.Store(true)
		close(h.quit)
		if h.bat != nil {
			h.bat.stop()
		}
		if h.rt != nil {
			h.rt.close()
		}
	})
}

// Close releases a handle obtained from Dial, disconnecting its endpoints
// and failing any still-queued operations with ErrClosed. On a handle
// owned by a Cluster it is a no-op — close the Cluster instead.
func (h *Client) Close() error {
	if h.cluster != nil {
		return nil
	}
	h.shutdown()
	return nil
}
