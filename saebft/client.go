package saebft

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/replycert"
	"repro/internal/wire"
)

// Client is a pipelined, context-aware handle onto a replicated service.
//
// The paper's client model keeps exactly one request outstanding (§2). A
// handle multiplexes many such logical clients behind one surface: each
// Invoke/InvokeAsync leases a free logical client, runs the operation
// through it, and returns it to the pool — so up to Pipeline() invocations
// proceed concurrently and further calls queue for the next free slot.
//
// With client-side batching enabled (WithClientBatching / DialBatching),
// operations are instead coalesced into multi-op requests: concurrent
// Invoke/InvokeAsync calls share logical clients, one agreement slot
// amortizes over a whole envelope of operations, and an adaptive
// controller widens or narrows the number of concurrently dispatched
// batches based on observed completion latency.
//
// A handle is safe for concurrent use by any number of goroutines.
type Client struct {
	cluster *Cluster       // non-nil when owned by an in-process Cluster
	rt      clusterRuntime // non-nil when dialed against a deployment

	free        chan int
	width       int
	timeout     time.Duration
	readTimeout time.Duration // per read attempt; zero falls back to timeout
	quit        chan struct{} // closed on terminal shutdown
	bat         *batcher      // non-nil when client-side batching is enabled
	session     *Session      // the handle's implicit session
	reg         *obs.Registry // backing registry for Metrics (may be nil)

	inFlight    atomic.Int64
	maxInFlight atomic.Int64
	batches     atomic.Uint64
	batchedOps  atomic.Uint64

	reads          atomic.Uint64
	readsCertified atomic.Uint64
	readRetries    atomic.Uint64
	readFallbacks  atomic.Uint64

	closeOnce sync.Once
	closed    atomic.Bool
}

func newHandle(width int, timeout, readTimeout time.Duration) *Client {
	h := &Client{
		free:        make(chan int, width),
		width:       width,
		timeout:     timeout,
		readTimeout: readTimeout,
		quit:        make(chan struct{}),
	}
	h.session = &Session{h: h}
	for i := 0; i < width; i++ {
		h.free <- i
	}
	return h
}

func newClusterClient(c *Cluster, width int, timeout, readTimeout time.Duration) *Client {
	h := newHandle(width, timeout, readTimeout)
	h.cluster = c
	h.reg = c.o.obsReg
	return h
}

func newDialedClient(rt clusterRuntime, width int, timeout, readTimeout time.Duration) *Client {
	h := newHandle(width, timeout, readTimeout)
	h.rt = rt
	return h
}

// startBatching attaches a coalescing batcher; called once at construction,
// before the handle is visible to any other goroutine.
func (h *Client) startBatching(cfg clientBatching) {
	cfg.fillDefaults()
	h.bat = newBatcher(h, cfg)
}

// runtime resolves the live backend for this handle.
func (h *Client) runtime() (clusterRuntime, error) {
	if h.cluster != nil {
		return h.cluster.runtime()
	}
	if h.closed.Load() {
		return nil, ErrClosed
	}
	return h.rt, nil
}

// Stats snapshots aggregate counters from the handle's backend: for a
// cluster handle the whole cluster (same as Cluster.Stats), for a dialed
// handle this process's client endpoints — including their TCP link
// counters, which is what an operator debugging a WAN deployment wants.
func (h *Client) Stats() (Stats, error) {
	rt, err := h.runtime()
	if err != nil {
		return Stats{}, err
	}
	return rt.stats()
}

// ClientStats snapshots the handle's local counters: pipelining, batching,
// and the certified read path. It complements Stats, which aggregates
// cluster-side protocol counters; both are filled from the same underlying
// counters on every call, so the two surfaces cannot drift.
type ClientStats struct {
	// Pipeline is how many invocations the handle can keep in flight
	// concurrently (the number of logical clients backing it).
	Pipeline int
	// PipelineWidth is how many batch dispatches the adaptive controller
	// currently allows in flight; equals Pipeline without batching.
	PipelineWidth int
	// InFlight is how many invocations are currently admitted.
	InFlight int
	// MaxInFlight is the lifetime high-water mark of InFlight.
	MaxInFlight int
	// Batches counts (multi-op or pass-through) requests the batching path
	// completed; BatchedOps/Batches is the achieved amortization factor.
	Batches    uint64
	BatchedOps uint64

	// Reads counts certified-read calls admitted (ReadCertified on the
	// handle or any of its sessions).
	Reads uint64
	// ReadsCertified counts reads answered entirely on the fast path.
	ReadsCertified uint64
	// ReadRetries counts re-probes at a raised floor after a quorum
	// mismatch.
	ReadRetries uint64
	// ReadFallbacks counts reads that went through full agreement instead
	// (mismatch persisted, executors refused, timeout, or no read path).
	ReadFallbacks uint64
	// Watermark is the handle's implicit-session floor: the highest
	// sequence number any Invoke through this handle certified at.
	Watermark uint64
}

// ClientStats snapshots the handle's local counters.
func (h *Client) ClientStats() ClientStats {
	return ClientStats{
		Pipeline:       h.width,
		PipelineWidth:  h.pipelineWidth(),
		InFlight:       int(h.inFlight.Load()),
		MaxInFlight:    int(h.maxInFlight.Load()),
		Batches:        h.batches.Load(),
		BatchedOps:     h.batchedOps.Load(),
		Reads:          h.reads.Load(),
		ReadsCertified: h.readsCertified.Load(),
		ReadRetries:    h.readRetries.Load(),
		ReadFallbacks:  h.readFallbacks.Load(),
		Watermark:      h.session.Watermark(),
	}
}

func (h *Client) pipelineWidth() int {
	if h.bat == nil {
		return h.width
	}
	return h.bat.ctrl.width()
}

// Pipeline reports the handle's maximum pipelining depth.
//
// Deprecated: use ClientStats().Pipeline.
func (h *Client) Pipeline() int { return h.width }

// PipelineWidth reports the adaptive controller's current dispatch width.
//
// Deprecated: use ClientStats().PipelineWidth.
func (h *Client) PipelineWidth() int { return h.pipelineWidth() }

// Batches reports how many batched requests completed successfully.
//
// Deprecated: use ClientStats().Batches.
func (h *Client) Batches() uint64 { return h.batches.Load() }

// BatchedOps reports how many operations completed through batching.
//
// Deprecated: use ClientStats().BatchedOps.
func (h *Client) BatchedOps() uint64 { return h.batchedOps.Load() }

// InFlight reports how many invocations are currently admitted.
//
// Deprecated: use ClientStats().InFlight.
func (h *Client) InFlight() int { return int(h.inFlight.Load()) }

// MaxInFlight reports the high-water mark of admitted invocations.
//
// Deprecated: use ClientStats().MaxInFlight.
func (h *Client) MaxInFlight() int { return int(h.maxInFlight.Load()) }

func (h *Client) lease(ctx context.Context) (int, error) {
	select {
	case idx := <-h.free:
		return idx, nil
	default:
	}
	select {
	case idx := <-h.free:
		return idx, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	case <-h.quit:
		return 0, ErrClosed
	}
}

func (h *Client) admit() { h.admitN(1) }

func (h *Client) admitN(k int) {
	n := h.inFlight.Add(int64(k))
	for {
		max := h.maxInFlight.Load()
		if n <= max || h.maxInFlight.CompareAndSwap(max, n) {
			return
		}
	}
}

func (h *Client) release(idx int) { h.releaseN(idx, 1) }

func (h *Client) releaseN(idx, k int) {
	h.inFlight.Add(int64(-k))
	h.free <- idx
}

// effectiveTimeout bounds the per-request timeout by the context deadline.
func (h *Client) effectiveTimeout(ctx context.Context) time.Duration {
	timeout := h.timeout
	if dl, ok := ctx.Deadline(); ok {
		if d := time.Until(dl); d < timeout {
			timeout = d
		}
	}
	return timeout
}

// Invoke submits one operation and blocks until its certified reply, an
// error, context cancellation, or the handle's timeout. The reply is
// vouched for by the deployment's reply-certificate scheme (g+1 matching
// replies or a valid threshold signature) before it is returned.
func (h *Client) Invoke(ctx context.Context, op []byte) ([]byte, error) {
	res := h.invokeFull(ctx, op)
	return res.Reply, res.Err
}

// invokeFull is Invoke returning the whole Result (body plus certified
// sequence number); every successful completion advances the handle's
// implicit session watermark.
func (h *Client) invokeFull(ctx context.Context, op []byte) Result {
	if ctx == nil {
		ctx = context.Background()
	}
	if h.bat != nil {
		select {
		case res := <-h.bat.enqueue(ctx, op):
			h.noteWrite(res)
			return res
		case <-ctx.Done():
			// The batch resolves on its own; the buffered result channel
			// absorbs the late delivery.
			return Result{Err: ctx.Err()}
		}
	}
	rt, err := h.runtime()
	if err != nil {
		return Result{Err: err}
	}
	idx, err := h.lease(ctx)
	if err != nil {
		return Result{Err: err}
	}
	h.admit()
	defer h.release(idx)
	body, seq, err := h.invokeSingle(ctx, rt, idx, op)
	res := Result{Reply: body, Seq: seq, Err: err}
	h.noteWrite(res)
	return res
}

// noteWrite advances the implicit session past a completed invocation, so a
// subsequent ReadCertified on the handle observes the write.
func (h *Client) noteWrite(res Result) {
	if res.Err == nil {
		h.session.AdvanceTo(res.Seq)
	}
}

// invokeSingle runs one unbatched operation, escaping bodies that would be
// mistaken for multi-op envelopes by the execution cluster. It returns the
// reply body plus the sequence number it certified at.
func (h *Client) invokeSingle(ctx context.Context, rt clusterRuntime, idx int, op []byte) ([]byte, uint64, error) {
	wrapped := wire.IsMultiOp(op)
	if wrapped {
		op = wire.PackOps([][]byte{op})
	}
	res, err := rt.invoke(ctx, idx, op, h.effectiveTimeout(ctx))
	if err != nil || !wrapped {
		return res.body, res.seq, err
	}
	bodies, err := replycert.SplitOpReplies(res.body, 1)
	if err != nil {
		return nil, 0, err
	}
	return bodies[0], res.seq, nil
}

// ReadCertified serves one read-only operation through the certified fast
// read path: the execution replicas answer directly from applied state — no
// agreement round — and the reply is accepted once g+1 of them sign
// byte-identical answers computed at or above the handle's watermark, so
// every Invoke previously completed through this handle is observed
// (read-your-writes). When the fast path cannot certify — the replicas'
// answers diverge beyond the retry budget, the operation is not read-only,
// the application cannot answer queries, or the deployment has no read path
// (ModeBase, ModeFirewall) — the operation transparently falls back to full
// agreement, so ReadCertified is safe for any operation and never weaker
// than Invoke.
func (h *Client) ReadCertified(ctx context.Context, op []byte) ([]byte, error) {
	return h.session.ReadCertified(ctx, op)
}

// Session derives an independent read-your-writes session seeded at the
// handle's current watermark. Writes and certified reads issued through the
// session order only against each other (and against writes the handle
// completed before the session began), so concurrent sessions do not
// needlessly raise each other's read floors.
func (h *Client) Session() *Session {
	s := &Session{h: h}
	s.AdvanceTo(h.session.Watermark())
	return s
}

// InvokeAsync submits one operation without blocking and returns a channel
// that receives exactly one Result. Up to Pipeline() invocations run
// concurrently; beyond that, calls wait (off the caller's goroutine) for a
// free slot. A canceled context resolves the invocation with ctx.Err() —
// promptly on the batching path (the operation may still execute as part
// of its batch), or once its logical client has quiesced on the unbatched
// path. Closing the owning cluster (or the dialed handle) drains queued
// invocations with ErrClosed.
func (h *Client) InvokeAsync(ctx context.Context, op []byte) <-chan Result {
	if ctx == nil {
		ctx = context.Background()
	}
	if h.bat != nil {
		return h.bat.enqueue(ctx, op)
	}
	ch := make(chan Result, 1)
	rt, err := h.runtime()
	if err != nil {
		ch <- Result{Err: err}
		return ch
	}
	// Lease synchronously when a slot is free: the invocation is then
	// admitted (visible in InFlight) before InvokeAsync returns.
	select {
	case idx := <-h.free:
		h.admit()
		go h.finish(ctx, rt, idx, op, ch)
	default:
		go func() {
			idx, err := h.lease(ctx)
			if err != nil {
				ch <- Result{Err: err}
				return
			}
			h.admit()
			h.finish(ctx, rt, idx, op, ch)
		}()
	}
	return ch
}

func (h *Client) finish(ctx context.Context, rt clusterRuntime, idx int, op []byte, ch chan Result) {
	reply, seq, err := h.invokeSingle(ctx, rt, idx, op)
	h.release(idx)
	res := Result{Reply: reply, Seq: seq, Err: err}
	h.noteWrite(res)
	ch <- res
}

// shutdown terminally closes the handle: queued batched operations are
// drained and failed with ErrClosed, waiters for a free logical client are
// unblocked, and — on a dialed handle — the runtime's endpoints disconnect.
// Idempotent; invoked by Close on dialed handles and by Cluster.Close on
// owned ones.
func (h *Client) shutdown() {
	h.closeOnce.Do(func() {
		h.closed.Store(true)
		close(h.quit)
		if h.bat != nil {
			h.bat.stop()
		}
		if h.rt != nil {
			h.rt.close()
		}
	})
}

// Close releases a handle obtained from Dial, disconnecting its endpoints
// and failing any still-queued operations with ErrClosed. On a handle
// owned by a Cluster it is a no-op — close the Cluster instead.
func (h *Client) Close() error {
	if h.cluster != nil {
		return nil
	}
	h.shutdown()
	return nil
}
