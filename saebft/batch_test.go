package saebft

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

// echoApp returns a factory for a state machine that echoes each op back
// with a prefix, making per-op reply demultiplexing observable.
func echoApp() func() StateMachine {
	return func() StateMachine {
		return StateMachineFunc(func(op []byte, nd NonDet) []byte {
			return append([]byte("echo:"), op...)
		})
	}
}

func TestClientBatchingSmoke(t *testing.T) {
	c := startSim(t,
		WithApp("counter"),
		WithClients(4),
		WithClientBatching(8, 0, 0),
	)
	cl := c.Client()
	ctx := context.Background()
	const n = 24
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				if _, err := cl.Invoke(ctx, []byte("inc")); err != nil {
					errs <- err
				}
				return
			}
			if res := <-cl.InvokeAsync(ctx, []byte("inc")); res.Err != nil {
				errs <- res.Err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	reply, err := cl.Invoke(ctx, []byte("get"))
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != fmt.Sprint(n) {
		t.Fatalf("counter = %q after %d batched incs", reply, n)
	}
	if got := cl.BatchedOps(); got < n {
		t.Fatalf("BatchedOps = %d, want >= %d", got, n)
	}
	if b := cl.Batches(); b == 0 || b > cl.BatchedOps() {
		t.Fatalf("Batches = %d inconsistent with BatchedOps = %d", b, cl.BatchedOps())
	}
}

// TestBatchRepliesDemux proves that replies demultiplex to the correct
// caller when many distinct ops share envelopes, on both transports. CI
// runs it under -race.
func TestBatchRepliesDemux(t *testing.T) {
	for _, tr := range []struct {
		name string
		opts []Option
	}{
		{"sim", nil},
		{"tcp", []Option{WithTransport(TCPTransport())}},
	} {
		t.Run(tr.name, func(t *testing.T) {
			n := 64
			if tr.name == "tcp" {
				n = 24 // real sockets; keep the point cheap
			}
			opts := append([]Option{
				WithAppFactory(echoApp()),
				WithClients(4),
				WithClientBatching(8, 0, 500*time.Microsecond),
			}, tr.opts...)
			c := startSim(t, opts...)
			cl := c.Client()
			ctx := context.Background()
			var wg sync.WaitGroup
			errs := make(chan error, n)
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					op := []byte(fmt.Sprintf("op-%03d", i))
					reply, err := cl.Invoke(ctx, op)
					if err != nil {
						errs <- fmt.Errorf("op %d: %w", i, err)
						return
					}
					if want := "echo:" + string(op); string(reply) != want {
						errs <- fmt.Errorf("op %d got %q, want %q", i, reply, want)
					}
				}(i)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			if got := cl.BatchedOps(); got != uint64(n) {
				t.Fatalf("BatchedOps = %d, want %d", got, n)
			}
		})
	}
}

// TestBatchFlushPartialBatch proves the flush interval dispatches a batch
// that never fills: three ops against maxOps=64 must still complete.
func TestBatchFlushPartialBatch(t *testing.T) {
	c := startSim(t,
		WithAppFactory(echoApp()),
		WithClients(2),
		WithClientBatching(64, 0, time.Millisecond),
	)
	cl := c.Client()
	ctx := context.Background()
	chans := make([]<-chan Result, 3)
	for i := range chans {
		chans[i] = cl.InvokeAsync(ctx, []byte(fmt.Sprintf("partial-%d", i)))
	}
	for i, ch := range chans {
		select {
		case res := <-ch:
			if res.Err != nil {
				t.Fatalf("op %d: %v", i, res.Err)
			}
			if want := fmt.Sprintf("echo:partial-%d", i); string(res.Reply) != want {
				t.Fatalf("op %d reply = %q, want %q", i, res.Reply, want)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("op %d never flushed", i)
		}
	}
}

// TestOversizeOpPassesThrough proves a single op larger than maxBytes is
// not held hostage by the byte budget: it ships alone, effectively
// unbatched, while small ops keep coalescing around it.
func TestOversizeOpPassesThrough(t *testing.T) {
	c := startSim(t,
		WithAppFactory(echoApp()),
		WithClients(2),
		WithClientBatching(8, 128, time.Millisecond),
	)
	cl := c.Client()
	ctx := context.Background()
	big := bytes.Repeat([]byte("B"), 1024) // 8x the 128-byte budget
	small := []byte("small")
	bigCh := cl.InvokeAsync(ctx, big)
	smallCh := cl.InvokeAsync(ctx, small)
	if res := <-bigCh; res.Err != nil {
		t.Fatalf("oversize op: %v", res.Err)
	} else if !bytes.Equal(res.Reply, append([]byte("echo:"), big...)) {
		t.Fatalf("oversize reply = %d bytes %q...", len(res.Reply), res.Reply[:16])
	}
	if res := <-smallCh; res.Err != nil {
		t.Fatalf("small op: %v", res.Err)
	} else if string(res.Reply) != "echo:small" {
		t.Fatalf("small reply = %q", res.Reply)
	}
}

// TestMagicPrefixedOp proves ops that look like multi-op envelopes survive
// both the batched and unbatched paths (they are escaped end to end).
func TestMagicPrefixedOp(t *testing.T) {
	for _, batched := range []bool{false, true} {
		t.Run(fmt.Sprintf("batched=%v", batched), func(t *testing.T) {
			opts := []Option{WithAppFactory(echoApp()), WithClients(2)}
			if batched {
				opts = append(opts, WithClientBatching(4, 0, time.Millisecond))
			}
			c := startSim(t, opts...)
			op := wire.PackOps([][]byte{[]byte("looks-like-envelope")})
			reply, err := c.Client().Invoke(context.Background(), op)
			if err != nil {
				t.Fatal(err)
			}
			if want := append([]byte("echo:"), op...); !bytes.Equal(reply, want) {
				t.Fatalf("reply = %q, want the raw op echoed back", reply)
			}
		})
	}
}

// TestShutdownFailsQueuedOps proves the satellite fix: closing the cluster
// with ops still queued (batcher queue and in-flight) resolves every
// result channel with a terminal error instead of leaving callers hanging.
func TestShutdownFailsQueuedOps(t *testing.T) {
	c := startSim(t,
		WithApp("counter"),
		WithClients(1),
		WithClientBatching(1, 0, time.Millisecond), // one op per batch, width 1
	)
	sr, err := c.sim()
	if err != nil {
		t.Fatal(err)
	}
	// Park the driver: the first op is admitted and stuck in flight, the
	// rest pile up behind the single logical client.
	sr.holdStepping.Store(true)
	ctx := context.Background()
	cl := c.Client()
	const n = 6
	chans := make([]<-chan Result, n)
	for i := 0; i < n; i++ {
		chans[i] = cl.InvokeAsync(ctx, []byte("inc"))
	}
	time.Sleep(20 * time.Millisecond) // let the first dispatch reach the driver
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	for i, ch := range chans {
		select {
		case res := <-ch:
			if res.Err == nil {
				t.Fatalf("op %d: completed after Close; want terminal error", i)
			}
			if !errors.Is(res.Err, ErrClosed) && !errors.Is(res.Err, context.Canceled) {
				t.Fatalf("op %d: err = %v, want ErrClosed", i, res.Err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("op %d: result channel never resolved after Close", i)
		}
	}
	// A fresh call after close fails immediately.
	if _, err := cl.Invoke(ctx, []byte("inc")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Invoke after Close: err = %v, want ErrClosed", err)
	}
}

// TestBatchedCancellationResolvesPromptly proves a canceled context
// settles its op with ctx.Err() even while the op's batch is stuck in
// flight (the driver is parked), without waiting for the batch timeout.
func TestBatchedCancellationResolvesPromptly(t *testing.T) {
	c := startSim(t,
		WithApp("counter"),
		WithClients(1),
		WithClientBatching(4, 0, 100*time.Microsecond),
	)
	sr, err := c.sim()
	if err != nil {
		t.Fatal(err)
	}
	sr.holdStepping.Store(true)
	defer sr.holdStepping.Store(false)
	ctx, cancel := context.WithCancel(context.Background())
	ch := c.Client().InvokeAsync(ctx, []byte("inc"))
	time.Sleep(10 * time.Millisecond) // let the batch dispatch and stall
	cancel()
	select {
	case res := <-ch:
		if !errors.Is(res.Err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", res.Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled op did not resolve while its batch was in flight")
	}
}

// TestAdaptiveWidthStaysBounded sanity-checks the controller: under load
// the dispatch width stays within [1, Pipeline] and ops all complete.
func TestAdaptiveWidthStaysBounded(t *testing.T) {
	const width = 8
	c := startSim(t,
		WithAppFactory(echoApp()),
		WithClients(width),
		WithClientBatching(4, 0, 200*time.Microsecond),
	)
	cl := c.Client()
	ctx := context.Background()
	const n = 96
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := cl.Invoke(ctx, []byte(fmt.Sprintf("w-%d", i))); err != nil {
				errs <- err
			}
		}(i)
		if w := cl.PipelineWidth(); w < 1 || w > width {
			t.Errorf("PipelineWidth = %d outside [1,%d]", w, width)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if w := cl.PipelineWidth(); w < 1 || w > width {
		t.Fatalf("final PipelineWidth = %d outside [1,%d]", w, width)
	}
}
