package saebft

import (
	"os"
	"path/filepath"
	"testing"
)

// TestBatchingThroughputGain is the acceptance benchmark: at 64 concurrent
// ops on the simulated transport, client-side batching must deliver at
// least 2x the virtual-time throughput of unbatched pipelining. (Measured
// headroom is ~16x; 2x leaves room for scheduler noise.)
func TestBatchingThroughputGain(t *testing.T) {
	rep, err := RunBatchingBench(BatchBenchConfig{
		Transports: []string{"sim"},
		BatchOps:   []int{0, 16},
		Pipelines:  []int{8},
		Ops:        64,
		OpSize:     128,
	})
	if err != nil {
		t.Fatal(err)
	}
	var unbatched, batched *BenchPoint
	for i := range rep.Points {
		p := &rep.Points[i]
		if p.Crypto != "" {
			// The sweep appends the wall-clock crypto comparison pair;
			// this test is about the virtual-time batching grid.
			continue
		}
		switch p.BatchOps {
		case 0:
			unbatched = p
		case 16:
			batched = p
		}
	}
	if unbatched == nil || batched == nil {
		t.Fatalf("sweep missing points: %+v", rep.Points)
	}
	if unbatched.Throughput <= 0 || batched.Throughput <= 0 {
		t.Fatalf("non-positive throughput: unbatched=%v batched=%v", unbatched.Throughput, batched.Throughput)
	}
	speedup := batched.Throughput / unbatched.Throughput
	t.Logf("unbatched %.0f ops/s, batched %.0f ops/s, speedup %.1fx (batches=%d, final width=%d)",
		unbatched.Throughput, batched.Throughput, speedup, batched.Batches, batched.FinalWidth)
	if speedup < 2 {
		t.Fatalf("client batching speedup = %.2fx, want >= 2x", speedup)
	}
	if batched.Batches == 0 || batched.Batches >= uint64(batched.Ops) {
		t.Fatalf("batches = %d for %d ops; coalescing did not happen", batched.Batches, batched.Ops)
	}
}

// TestBenchReportRoundTripAndGate exercises the JSON artifact and the CI
// regression gate logic.
func TestBenchReportRoundTripAndGate(t *testing.T) {
	rep := &BenchReport{
		Name: "client-batching", SchemaVersion: 1,
		Points: []BenchPoint{
			{Transport: "sim", Pipeline: 8, BatchOps: 16, Ops: 64, OpSize: 128, Throughput: 5000},
			{Transport: "tcp", Pipeline: 8, BatchOps: 16, Ops: 64, OpSize: 128, Throughput: 3000},
		},
	}
	path := filepath.Join(t.TempDir(), "BENCH_batching.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBenchReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Points) != 2 || loaded.Points[0].Throughput != 5000 {
		t.Fatalf("round trip lost data: %+v", loaded.Points)
	}

	// Identical reports pass the gate.
	if err := CompareBenchReports(loaded, rep, 0.30); err != nil {
		t.Fatalf("identical reports flagged: %v", err)
	}
	// A 50% sim regression fails a 30% gate.
	bad := *rep
	bad.Points = append([]BenchPoint(nil), rep.Points...)
	bad.Points[0].Throughput = 2500
	if err := CompareBenchReports(&bad, rep, 0.30); err == nil {
		t.Fatal("50%% sim regression passed a 30%% gate")
	}
	// TCP points are wall-clock and never gated.
	bad.Points[0].Throughput = 5000
	bad.Points[1].Throughput = 100
	if err := CompareBenchReports(&bad, rep, 0.30); err != nil {
		t.Fatalf("tcp regression was gated: %v", err)
	}
	// A missing sim point fails the gate.
	missing := *rep
	missing.Points = rep.Points[1:]
	if err := CompareBenchReports(&missing, rep, 0.30); err == nil {
		t.Fatal("missing sim point passed the gate")
	}
	if _, err := LoadBenchReport(filepath.Join(t.TempDir(), "nope.json")); !os.IsNotExist(err) {
		t.Fatalf("missing file err = %v", err)
	}
}

// TestCertifiedReadThroughputGain is the read-path acceptance benchmark: at
// 64 concurrent read-only ops on the simulated transport, the certified fast
// read path must deliver at least 2x the virtual-time throughput of serving
// the same reads through full agreement. (A certified read is one round trip
// to the execution replicas; an agreement read pays the whole three-phase
// protocol first.)
func TestCertifiedReadThroughputGain(t *testing.T) {
	rep, err := RunReadBench(ReadBenchConfig{
		Transports: []string{"sim"},
		Pipelines:  []int{8},
		Ops:        64,
		OpSize:     128,
	})
	if err != nil {
		t.Fatal(err)
	}
	var certified, invoked *BenchPoint
	for i := range rep.Points {
		p := &rep.Points[i]
		switch p.Read {
		case "certified":
			certified = p
		case "invoke":
			invoked = p
		}
	}
	if certified == nil || invoked == nil {
		t.Fatalf("sweep missing points: %+v", rep.Points)
	}
	if certified.Throughput <= 0 || invoked.Throughput <= 0 {
		t.Fatalf("non-positive throughput: certified=%v invoke=%v", certified.Throughput, invoked.Throughput)
	}
	speedup := certified.Throughput / invoked.Throughput
	t.Logf("invoke %.0f reads/s, certified %.0f reads/s, speedup %.1fx",
		invoked.Throughput, certified.Throughput, speedup)
	if speedup < 2 {
		t.Fatalf("certified read speedup = %.2fx, want >= 2x", speedup)
	}
}
