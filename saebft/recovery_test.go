package saebft

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// startDurable builds and starts a cluster persisting under dir. TCP
// clusters pick free ports by listen-then-close, which can race other
// sockets on a busy machine; bind collisions get a fresh attempt.
func startDurable(t *testing.T, dir string, extra ...Option) *Cluster {
	t.Helper()
	opts := append([]Option{
		WithApp("counter"),
		WithSeed("recovery-test"),
		WithDataDir(dir),
		WithCheckpointInterval(8),
		WithInvokeTimeout(time.Minute),
	}, extra...)
	var lastErr error
	for attempt := 0; attempt < 5; attempt++ {
		c, err := NewCluster(opts...)
		if err != nil {
			t.Fatal(err)
		}
		err = c.Start(context.Background())
		if err == nil {
			return c
		}
		c.Close()
		lastErr = err
		if !strings.Contains(err.Error(), "address already in use") {
			break
		}
	}
	t.Fatal(lastErr)
	return nil
}

func invokeString(t *testing.T, c *Cluster, op string) string {
	t.Helper()
	reply, err := c.Client().Invoke(context.Background(), []byte(op))
	if err != nil {
		t.Fatalf("invoke %q: %v", op, err)
	}
	return string(reply)
}

// TestRecoverySequentialCounter is the headline crash-recovery property on
// both transports: every acknowledged operation survives kill -9 of every
// node at once, and none is re-executed. The counter makes both failure
// modes visible — a lost increment or a replayed one both break the final
// value. The run crosses several checkpoint boundaries (interval 8) so the
// restart restores a stable checkpoint and replays a WAL tail.
func TestRecoverySequentialCounter(t *testing.T) {
	cases := map[string]func() []Option{
		"sim": func() []Option { return []Option{WithTransport(SimTransport())} },
		"tcp": func() []Option { return []Option{WithTransport(TCPTransport())} },
		// The coupled baseline persists too: the engine's WAL + checkpoint
		// wrap the directApp's state instead of the message queue's.
		"base-sim": func() []Option {
			return []Option{WithTransport(SimTransport()), WithMode(ModeBase)}
		},
	}
	for name, opts := range cases {
		t.Run(name, func(t *testing.T) {
			dir := recoveryDir(t, "seq-"+name)
			const before, after = 21, 12

			c1 := startDurable(t, dir, opts()...)
			for i := 0; i < before; i++ {
				if got := invokeString(t, c1, "inc"); got != fmt.Sprint(i+1) {
					t.Fatalf("pre-crash inc %d: got %q", i, got)
				}
			}
			c1.kill() // abrupt: no store flush, like kill -9 on every process

			c2 := startDurable(t, dir, opts()...)
			defer c2.Close()
			for i := 0; i < after; i++ {
				got := invokeString(t, c2, "inc")
				want := fmt.Sprint(before + i + 1)
				if got != want {
					t.Fatalf("post-restart inc %d: got %q, want %q (lost or re-executed ops)", i, got, want)
				}
			}
			if got := invokeString(t, c2, "get"); got != fmt.Sprint(before+after) {
				t.Fatalf("final value %q, want %d", got, before+after)
			}
		})
	}
}

// TestRecoveryRandomKillKV kills the cluster at pseudo-random points with
// concurrent batched writes in flight — mid-batch, before and after
// checkpoint boundaries — then restarts, idempotently re-issues every
// write, and asserts the state matches an uninterrupted run. Acknowledged
// writes must never be lost; unacknowledged ones may or may not have
// executed, which idempotent re-issue absorbs.
func TestRecoveryRandomKillKV(t *testing.T) {
	const keys = 36
	for _, ackBeforeKill := range []int{0, 5, 19, 33} {
		t.Run(fmt.Sprintf("kill-after-%d-acks", ackBeforeKill), func(t *testing.T) {
			dir := recoveryDir(t, fmt.Sprintf("kv-%d", ackBeforeKill))
			opt := func() []Option {
				return []Option{
					WithApp("kv"),
					WithClients(8),
					WithClientBatching(8, 0, 100*time.Microsecond),
				}
			}
			c1 := startDurable(t, dir, opt()...)
			ctx := context.Background()
			acked := make(chan int, keys)
			var wg sync.WaitGroup
			for i := 0; i < keys; i++ {
				op, err := EncodeOp("kv", "put", fmt.Sprintf("key-%d", i), fmt.Sprintf("value-%d", i))
				if err != nil {
					t.Fatal(err)
				}
				ch := c1.Client().InvokeAsync(ctx, op)
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					if res := <-ch; res.Err == nil {
						acked <- i
					}
				}(i)
			}
			for n := 0; n < ackBeforeKill; n++ {
				select {
				case <-acked:
				case <-time.After(time.Minute):
					t.Fatalf("timed out waiting for ack %d", n)
				}
			}
			c1.kill()
			wg.Wait() // the rest resolve with errors; none may hang

			c2 := startDurable(t, dir, opt()...)
			defer c2.Close()
			// Idempotent re-issue of the full write set.
			var wg2 sync.WaitGroup
			errc := make(chan error, keys)
			for i := 0; i < keys; i++ {
				op, err := EncodeOp("kv", "put", fmt.Sprintf("key-%d", i), fmt.Sprintf("value-%d", i))
				if err != nil {
					t.Fatal(err)
				}
				ch := c2.Client().InvokeAsync(ctx, op)
				wg2.Add(1)
				go func(i int) {
					defer wg2.Done()
					if res := <-ch; res.Err != nil {
						errc <- fmt.Errorf("re-issue key-%d: %w", i, res.Err)
					}
				}(i)
			}
			wg2.Wait()
			select {
			case err := <-errc:
				t.Fatal(err)
			default:
			}
			// Final state must equal the uninterrupted run's.
			for i := 0; i < keys; i++ {
				op, err := EncodeOp("kv", "get", fmt.Sprintf("key-%d", i))
				if err != nil {
					t.Fatal(err)
				}
				reply, err := c2.Client().Invoke(ctx, op)
				if err != nil {
					t.Fatalf("get key-%d: %v", i, err)
				}
				if got, want := string(reply), fmt.Sprintf("value-%d", i); got != want {
					t.Fatalf("key-%d: got %q, want %q", i, got, want)
				}
			}
		})
	}
}

// TestRecoveryRandomKillAgreementOrdering extends the random-kill property
// runs beyond execution state: an agreement replica (a backup in one
// variant, the view-0 primary — forcing a mid-load view change — in the
// other) is crashed while per-key sequential write streams are in flight,
// more writes are acknowledged in the degraded cluster, and then every node
// is killed at once and restarted over the same directories. Each key's
// stream awaits the ack of version j before issuing j+1, so agreement-level
// loss or reordering is directly observable: after the restart every key
// must hold exactly its last acknowledged version or the single in-flight
// successor — never less (a lost acknowledged op) and never more (a
// re-executed or re-ordered one).
func TestRecoveryRandomKillAgreementOrdering(t *testing.T) {
	const keys, versions = 10, 4
	val := func(j int) string { return fmt.Sprintf("v%03d", j) }
	for name, victim := range map[string]int{"backup": 3, "primary": 0} {
		t.Run(name, func(t *testing.T) {
			dir := recoveryDir(t, "agree-"+name)
			opt := func() []Option { return []Option{WithApp("kv"), WithClients(8)} }
			c1 := startDurable(t, dir, opt()...)
			ctx := context.Background()

			acked := make([]atomic.Int32, keys)
			issued := make([]atomic.Int32, keys)
			var totalAcks atomic.Int32
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for i := 0; i < keys; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					for j := 1; j <= versions; j++ {
						select {
						case <-stop:
							return
						default:
						}
						op, err := EncodeOp("kv", "put", fmt.Sprintf("key-%d", i), val(j))
						if err != nil {
							t.Error(err)
							return
						}
						issued[i].Store(int32(j))
						if _, err := c1.Client().Invoke(ctx, op); err != nil {
							return // killed mid-stream; j stays in flight
						}
						acked[i].Store(int32(j))
						totalAcks.Add(1)
					}
				}(i)
			}
			// waitAcks deadlines on progress, not total elapsed time. The
			// cluster paces itself in virtual time, so on a loaded 1-CPU
			// -race machine the wall clock needed for n acks grows without
			// bound while the run stays perfectly healthy; a fixed total
			// deadline here conflated that slowness with a stall and made
			// the test flake under parallel package load. A genuine
			// liveness failure still fails: a full minute with no new ack.
			waitAcks := func(n int32) {
				last := totalAcks.Load()
				stall := time.Now()
				for {
					cur := totalAcks.Load()
					if cur >= n {
						return
					}
					if cur != last {
						last, stall = cur, time.Now()
					}
					if time.Since(stall) > time.Minute {
						t.Fatalf("acks stalled at %d/%d for a minute", cur, n)
					}
					time.Sleep(time.Millisecond)
				}
			}
			// Crash one agreement replica under load, then require the
			// degraded cluster (and, for the primary variant, the new
			// view) to acknowledge more writes before the full kill.
			waitAcks(5)
			if err := c1.CrashAgreement(victim); err != nil {
				t.Fatal(err)
			}
			waitAcks(2 * keys)
			close(stop)
			c1.kill()
			wg.Wait()

			// Restart everything — including the long-crashed agreement
			// replica, whose WAL is a stale but valid prefix.
			c2 := startDurable(t, dir, opt()...)
			defer c2.Close()
			for i := 0; i < keys; i++ {
				getOp, err := EncodeOp("kv", "get", fmt.Sprintf("key-%d", i))
				if err != nil {
					t.Fatal(err)
				}
				reply, err := c2.Client().Invoke(ctx, getOp)
				if err != nil {
					t.Fatalf("get key-%d: %v", i, err)
				}
				final := 0
				if len(reply) > 0 {
					if _, err := fmt.Sscanf(string(reply), "v%03d", &final); err != nil {
						t.Fatalf("key-%d holds foreign value %q", i, reply)
					}
				}
				a, is := int(acked[i].Load()), int(issued[i].Load())
				if final < a {
					t.Fatalf("key-%d: acknowledged version %d lost (found %d)", i, a, final)
				}
				if final > is {
					t.Fatalf("key-%d: version %d appeared but only %d were issued (re-ordered or re-executed)", i, final, is)
				}
				// Drive the stream to completion; the cluster must accept
				// the remaining versions in order.
				for j := final + 1; j <= versions; j++ {
					op, err := EncodeOp("kv", "put", fmt.Sprintf("key-%d", i), val(j))
					if err != nil {
						t.Fatal(err)
					}
					if _, err := c2.Client().Invoke(ctx, op); err != nil {
						t.Fatalf("re-issue key-%d v%d: %v", i, j, err)
					}
				}
				reply, err = c2.Client().Invoke(ctx, getOp)
				if err != nil {
					t.Fatal(err)
				}
				if got, want := string(reply), val(versions); got != want {
					t.Fatalf("key-%d: final %q, want %q", i, got, want)
				}
			}
		})
	}
}

// TestRecoveryTornWALTail corrupts the WAL tail of one agreement and one
// execution replica after the crash (a torn final record and raw garbage —
// what an interrupted write leaves behind). Both nodes must truncate the
// tail and catch up from peers instead of crashing or diverging, and the
// cluster must keep its acknowledged state.
func TestRecoveryTornWALTail(t *testing.T) {
	dir := recoveryDir(t, "torn")
	const before, after = 13, 9

	c1 := startDurable(t, dir)
	for i := 0; i < before; i++ {
		invokeString(t, c1, "inc")
	}
	c1.kill()

	// node-0 is an agreement replica, node-100 an execution replica (one
	// of each role stays within the fault thresholds even if truncation
	// costs them their tails).
	tearWALTail(t, filepath.Join(dir, "node-0", "wal"), 5)
	tearWALTail(t, filepath.Join(dir, "node-100", "wal"), 5)
	appendGarbage(t, filepath.Join(dir, "node-100", "wal"))

	c2 := startDurable(t, dir)
	defer c2.Close()
	for i := 0; i < after; i++ {
		got := invokeString(t, c2, "inc")
		if want := fmt.Sprint(before + i + 1); got != want {
			t.Fatalf("post-torn inc %d: got %q, want %q", i, got, want)
		}
	}
}

// TestGracefulRestartFlushesWithoutFsync proves the Close path flushes
// buffered state even under FsyncNone: a graceful shutdown plus restart
// resumes exactly, because Close drains the WAL buffers to the OS.
func TestGracefulRestartFlushesWithoutFsync(t *testing.T) {
	dir := recoveryDir(t, "graceful")
	cfg := StorageConfig{DataDir: dir, Fsync: FsyncNone}
	const before, after = 10, 5

	c1 := startDurable(t, dir, WithStorage(cfg))
	for i := 0; i < before; i++ {
		invokeString(t, c1, "inc")
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}
	c2 := startDurable(t, dir, WithStorage(cfg))
	defer c2.Close()
	if got := invokeString(t, c2, "get"); got != fmt.Sprint(before) {
		t.Fatalf("after graceful restart: counter %q, want %d", got, before)
	}
	for i := 0; i < after; i++ {
		invokeString(t, c2, "inc")
	}
	if got := invokeString(t, c2, "get"); got != fmt.Sprint(before+after) {
		t.Fatalf("final value %q, want %d", got, before+after)
	}
}

// recoveryDir places data under SAEBFT_RECOVERY_DIR when set (CI uploads it
// as a debugging artifact on failure), else under the test temp dir.
func recoveryDir(t *testing.T, name string) string {
	t.Helper()
	if root := os.Getenv("SAEBFT_RECOVERY_DIR"); root != "" {
		dir := filepath.Join(root, t.Name(), name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	return filepath.Join(t.TempDir(), name)
}

// tearWALTail chops n bytes off a node's newest WAL segment, leaving a
// record cut mid-frame.
func tearWALTail(t *testing.T, walDir string, n int64) {
	t.Helper()
	seg := newestSegment(t, walDir)
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() <= n {
		t.Fatalf("segment %s too small to tear (%d bytes)", seg, info.Size())
	}
	if err := os.Truncate(seg, info.Size()-n); err != nil {
		t.Fatal(err)
	}
}

func appendGarbage(t *testing.T, walDir string) {
	t.Helper()
	f, err := os.OpenFile(newestSegment(t, walDir), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte{0xba, 0xdb, 0xad, 0xba, 0xdb}); err != nil {
		t.Fatal(err)
	}
}

func newestSegment(t *testing.T, walDir string) string {
	t.Helper()
	entries, err := os.ReadDir(walDir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range entries {
		if !e.IsDir() {
			segs = append(segs, e.Name())
		}
	}
	if len(segs) == 0 {
		t.Fatalf("no WAL segments in %s", walDir)
	}
	sort.Strings(segs)
	return filepath.Join(walDir, segs[len(segs)-1])
}
