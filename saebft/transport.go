package saebft

import (
	"context"
	"time"

	"repro/internal/core"
)

// Transport selects how a cluster's nodes communicate. The two
// implementations — SimTransport and TCPTransport — are constructed here;
// the interface is sealed (its method is unexported) so the set of
// transports can evolve without breaking embedders.
type Transport interface {
	start(b *core.Builder, opts *options) (clusterRuntime, error)
}

// invokeResult is the runtime-level completion of one invocation: the
// certified reply body plus the agreement sequence number it certified at —
// the watermark a session adopts for read-your-writes reads.
type invokeResult struct {
	body []byte
	seq  uint64
}

// readAttempt is the runtime-level completion of one certified-read probe.
// Exactly one of two shapes: a certified answer (mismatch false; body,
// refused, and the certified watermark seq are valid) or a definite quorum
// mismatch (mismatch true; hint suggests the floor to retry at).
type readAttempt struct {
	body     []byte
	refused  bool
	seq      uint64
	mismatch bool
	hint     uint64
}

// readAttemptFrom maps a protocol-core read outcome onto the runtime shape.
func readAttemptFrom(out core.ReadOutcome) readAttempt {
	if out.Err != nil {
		return readAttempt{mismatch: true, hint: uint64(out.Hint)}
	}
	return readAttempt{
		body:    out.Result.Body,
		refused: out.Result.Refused,
		seq:     uint64(out.Result.Seq),
	}
}

// clusterRuntime is the running form of a cluster behind a transport: it
// executes operations on behalf of logical clients and owns every node's
// lifetime.
type clusterRuntime interface {
	// invoke runs op through logical client idx and blocks until a
	// certified reply, an error, ctx cancellation, or the timeout. The
	// caller guarantees at most one invoke per idx at a time.
	invoke(ctx context.Context, idx int, op []byte, timeout time.Duration) (invokeResult, error)

	// readCertified probes the execution replicas through logical client
	// idx for a read certified at or above floor, and blocks until the
	// attempt completes (certified or definite mismatch), an error, ctx
	// cancellation, or the timeout. core.ErrNoReadPath reports a
	// configuration without the read path (BASE, firewall); callers fall
	// back to invoke. The caller guarantees at most one readCertified per
	// idx at a time (invoke and readCertified on the same idx may overlap:
	// a logical client holds one request and one read concurrently).
	readCertified(ctx context.Context, idx int, op []byte, floor uint64, timeout time.Duration) (readAttempt, error)

	// stats snapshots aggregate counters; it errors when the runtime has
	// already shut down rather than returning misleading zeros.
	stats() (Stats, error)

	// close tears the cluster down gracefully, flushing durable stores.
	// Idempotent.
	close() error

	// kill tears the cluster down abruptly — durable stores are abandoned
	// unflushed, the in-process equivalent of kill -9 on every node.
	// Recovery tests depend on this NOT flushing; a runtime without real
	// crash semantics must not silently fall back to close.
	kill()
}

// SimConfig tunes the simulated transport.
type SimConfig struct {
	// Seed fixes the network schedule (loss, delays, ordering); runs with
	// the same seed and workload are bit-for-bit deterministic. Zero
	// falls back to the cluster's WithNetSeed / key seed.
	Seed int64

	// Drop is the per-message loss probability on every link.
	Drop float64

	// MinDelay and MaxDelay bound the uniform per-message delivery delay.
	// Zero values keep the default fast-LAN model (50–200µs).
	MinDelay, MaxDelay time.Duration

	// MeasureCompute charges each node's real handler compute time to the
	// virtual clock, so cryptographic costs surface in virtual-time
	// measurements (benchmarks use this; correctness tests leave it off).
	MeasureCompute bool
}

// SimTransport runs every node in-process on a deterministic simulated
// network with a virtual clock — the default transport, and the only one
// offering fault injection (crashes, taps, Byzantine nodes).
func SimTransport(cfg ...SimConfig) Transport {
	t := &simTransport{}
	if len(cfg) > 0 {
		t.cfg = cfg[0]
	}
	return t
}

// TCPConfig tunes the TCP transport.
type TCPConfig struct {
	// BasePort assigns consecutive loopback ports starting here. Zero
	// picks free ports automatically.
	BasePort int

	// Logf receives transport-level connection events; nil silences them.
	Logf func(format string, args ...interface{})
}

// TCPTransport runs every node in-process but communicating over real
// loopback TCP sockets with length-prefixed frames — the same wiring the
// multi-process deployment tools use, collapsed into one process.
func TCPTransport(cfg ...TCPConfig) Transport {
	t := &tcpTransport{}
	if len(cfg) > 0 {
		t.cfg = cfg[0]
	}
	return t
}
