package saebft

import (
	"io"

	"repro/internal/obs"
)

// Observability surface. Every layer of a cluster or node — agreement,
// execution, durable storage, transport links, and the client read/write
// path — records into one process-wide metrics registry plus a bounded
// per-operation trace ring. The same data is reachable two ways:
//
//   - programmatically, via Cluster.Metrics / Node.Metrics /
//     Client.Metrics (and the matching Trace accessors), for tests and
//     embedders;
//   - over HTTP, via WithMetricsAddr / NodeMetricsAddr, which serve
//     Prometheus text on /metrics, the trace ring on /debug/trace, and the
//     standard pprof handlers under /debug/pprof/.
//
// On the simulated transport the trace timestamps are virtual time — the
// deterministic protocol clock — so two runs with the same seed produce
// identical span streams.

// Metric is one sample from a metrics registry: a counter or gauge value,
// or one expanded histogram sample (<name>_bucket with an "le" label,
// <name>_sum, <name>_count). docs/ARCHITECTURE.md catalogs the series.
type Metric struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// TraceSpan is one per-operation lifecycle event from the trace ring:
// request submission, batch cut, agreement phase transitions, execution,
// reply emission, certified-read service, view changes, and checkpoints.
type TraceSpan struct {
	// At is the event time in nanoseconds: virtual time on the simulated
	// transport, wall time (monotonic since start) over TCP.
	At int64
	// Node is the recording node's identity.
	Node int
	// Stage names the lifecycle point (e.g. "submit", "pre_prepare",
	// "prepared", "committed", "executed", "apply", "reply", "read_serve",
	// "view_change", "new_view", "checkpoint", "batch_cut").
	Stage string
	// Seq is the protocol sequence number, when the stage has one.
	Seq uint64
	// View is the agreement view, for agreement-side stages.
	View uint64
	// Note carries stage-specific detail ("reqs=3", "refused", ...).
	Note string
}

// OpsEndpoint is a standalone ops HTTP server for processes that have no
// Cluster or Node to hang one on (saebft-bench serves its pprof handlers
// through it). Close stops it gracefully: in-flight handlers — including a
// pprof profiling window that outlasts the workload — finish first, so a
// profile capture racing process exit still completes.
type OpsEndpoint struct{ srv *obs.OpsServer }

// ServeOps binds addr ("host:port"; ":0" picks a free port) and serves the
// process-level ops endpoint: the standard pprof handlers under
// /debug/pprof/, plus empty /metrics and /debug/trace documents (those are
// populated on Cluster- and Node-owned endpoints, which carry a registry).
func ServeOps(addr string) (*OpsEndpoint, error) {
	srv, err := obs.ServeOps(addr, nil, nil)
	if err != nil {
		return nil, err
	}
	return &OpsEndpoint{srv: srv}, nil
}

// Addr returns the bound listen address.
func (e *OpsEndpoint) Addr() string { return e.srv.Addr() }

// Close stops the endpoint, letting in-flight handlers finish. Idempotent.
func (e *OpsEndpoint) Close() error { return e.srv.Drain() }

// lowerSamples converts registry samples to the public Metric type.
func lowerSamples(samples []obs.Sample) []Metric {
	out := make([]Metric, 0, len(samples))
	for _, s := range samples {
		m := Metric{Name: s.Name, Value: s.Value}
		if len(s.Labels) > 0 {
			m.Labels = make(map[string]string, len(s.Labels))
			for _, l := range s.Labels {
				m.Labels[l.Key] = l.Value
			}
		}
		out = append(out, m)
	}
	return out
}

// lowerSpans converts trace-ring spans to the public TraceSpan type.
func lowerSpans(spans []obs.Span) []TraceSpan {
	out := make([]TraceSpan, 0, len(spans))
	for _, s := range spans {
		out = append(out, TraceSpan{
			At: s.At, Node: s.Node, Stage: s.Stage,
			Seq: s.Seq, View: s.View, Note: s.Note,
		})
	}
	return out
}

// registerClientObs folds the handle's atomic counters into a registry as
// func-backed series, so /metrics and ClientStats read the same values.
func (h *Client) registerClientObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("saebft_client_pipeline_width",
		"batch dispatches the adaptive controller currently allows in flight",
		func() float64 { return float64(h.pipelineWidth()) })
	reg.GaugeFunc("saebft_client_in_flight",
		"invocations currently admitted by the handle",
		func() float64 { return float64(h.inFlight.Load()) })
	reg.CounterFunc("saebft_client_batches_total",
		"batched (multi-op or pass-through) requests completed", h.batches.Load)
	reg.CounterFunc("saebft_client_batched_ops_total",
		"operations completed through the batching path", h.batchedOps.Load)
	reg.CounterFunc("saebft_client_reads_total",
		"certified-read calls admitted", h.reads.Load)
	reg.CounterFunc("saebft_client_reads_certified_total",
		"reads answered entirely on the certified fast path", h.readsCertified.Load)
	reg.CounterFunc("saebft_client_read_retries_total",
		"certified-read re-probes at a raised floor", h.readRetries.Load)
	reg.CounterFunc("saebft_client_read_fallbacks_total",
		"reads that fell back to full agreement", h.readFallbacks.Load)
}

// Metrics snapshots the handle's metrics registry: for a cluster-owned
// handle the whole cluster's registry (same as Cluster.Metrics), for a
// dialed handle this process's client-side series — the pipeline, batching,
// and certified-read counters plus each endpoint's link series. Nil when
// observability is disabled.
func (h *Client) Metrics() []Metric {
	if h.cluster != nil {
		return h.cluster.Metrics()
	}
	if h.reg == nil {
		return nil
	}
	return lowerSamples(h.reg.Snapshot())
}

// Metrics snapshots every series the cluster's layers have recorded:
// agreement (saebft_pbft_*), execution (saebft_exec_*), durable storage
// (saebft_wal_*), transport links (saebft_link_*, TCP transport only), and
// the client path (saebft_client_*). Series carry a node="<id>" label where
// they are per-node. Works on any transport — the registry is plain shared
// memory — and returns nil when observability is disabled
// (WithObservability(false)).
func (c *Cluster) Metrics() []Metric {
	if c.o.obsReg == nil {
		return nil
	}
	return lowerSamples(c.o.obsReg.Snapshot())
}

// WriteMetrics writes the cluster's registry in Prometheus text exposition
// format (version 0.0.4) — the same bytes WithMetricsAddr serves on
// /metrics. No-op when observability is disabled.
func (c *Cluster) WriteMetrics(w io.Writer) error {
	if c.o.obsReg == nil {
		return nil
	}
	return c.o.obsReg.WritePrometheus(w)
}

// Trace dumps the cluster's per-operation trace ring, oldest span first.
// The ring is bounded (the newest DefaultTraceCap spans are kept), so this
// is a tail, not a full history. Nil when observability is disabled.
func (c *Cluster) Trace() []TraceSpan {
	if c.o.obsTrace == nil {
		return nil
	}
	return lowerSpans(c.o.obsTrace.Dump())
}

// OpsAddr returns the bound address of the cluster's ops HTTP endpoint
// (WithMetricsAddr), empty before Start or without one.
func (c *Cluster) OpsAddr() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ops == nil {
		return ""
	}
	return c.ops.Addr()
}

// Metrics snapshots every series this node's layers have recorded —
// protocol (agreement or execution, by role), durable storage, and
// transport links. Empty before Start.
func (n *Node) Metrics() []Metric {
	return lowerSamples(n.obsReg.Snapshot())
}

// WriteMetrics writes the node's registry in Prometheus text exposition
// format (version 0.0.4) — the same bytes NodeMetricsAddr serves on
// /metrics.
func (n *Node) WriteMetrics(w io.Writer) error {
	return n.obsReg.WritePrometheus(w)
}

// Trace dumps the node's per-operation trace ring, oldest span first.
func (n *Node) Trace() []TraceSpan {
	return lowerSpans(n.obsTrace.Dump())
}

// OpsAddr returns the bound address of the node's ops HTTP endpoint
// (NodeMetricsAddr), empty before Start or without one.
func (n *Node) OpsAddr() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.ops == nil {
		return ""
	}
	return n.ops.Addr()
}
