package saebft

import (
	"bytes"
	"context"
	"net"
	"path/filepath"
	"testing"
	"time"
)

// TestTCPLoopbackRoundTrip runs a full separated deployment over real
// loopback TCP sockets and drives a put/get round trip through the public
// handle.
func TestTCPLoopbackRoundTrip(t *testing.T) {
	c, err := NewCluster(
		WithMode(ModeSeparate),
		WithApp("kv"),
		WithClients(2),
		WithTransport(TCPTransport()),
		WithThresholdBits(512),
		WithInvokeTimeout(20*time.Second),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx := context.Background()
	cl := c.Client()
	put, err := EncodeOp("kv", "put", "transport", "tcp")
	if err != nil {
		t.Fatal(err)
	}
	if reply, err := cl.Invoke(ctx, put); err != nil {
		t.Fatalf("put over TCP: %v", err)
	} else if string(reply) != "OK" {
		t.Fatalf("put reply = %q", reply)
	}
	get, _ := EncodeOp("kv", "get", "transport")
	reply, err := cl.Invoke(ctx, get)
	if err != nil {
		t.Fatalf("get over TCP: %v", err)
	}
	if !bytes.Equal(reply, []byte("tcp")) {
		t.Fatalf("get reply = %q, want tcp", reply)
	}

	// Pipelined async invocations work over TCP too.
	a := cl.InvokeAsync(ctx, put)
	b := cl.InvokeAsync(ctx, get)
	if res := <-a; res.Err != nil {
		t.Fatalf("async put: %v", res.Err)
	}
	if res := <-b; res.Err != nil {
		t.Fatalf("async get: %v", res.Err)
	}
}

// TestTCPFirewallRoundTrip runs the full privacy-firewall topology —
// agreement, filter grid, execution — over loopback TCP sockets.
func TestTCPFirewallRoundTrip(t *testing.T) {
	c, err := NewCluster(
		WithMode(ModeFirewall),
		WithApp("kv"),
		WithClients(1),
		WithTransport(TCPTransport()),
		WithThresholdBits(512),
		WithInvokeTimeout(30*time.Second),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	put, _ := EncodeOp("kv", "put", "sealed", "body")
	if reply, err := c.Client().Invoke(ctx, put); err != nil || string(reply) != "OK" {
		t.Fatalf("put through firewall over TCP: %q, %v", reply, err)
	}
	get, _ := EncodeOp("kv", "get", "sealed")
	reply, err := c.Client().Invoke(ctx, get)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reply, []byte("body")) {
		t.Fatalf("get reply = %q, want body", reply)
	}
	if _, err := c.Stats(); err != nil {
		t.Fatal(err)
	}
}

// TestMultiProcessConfigDeployment exercises the config → StartNode → Dial
// path that the saebft-node / saebft-client commands wrap: every replica
// runs on its own listener (here in one process) and a dialed handle talks
// to them over TCP.
func TestMultiProcessConfigDeployment(t *testing.T) {
	cfg, err := GenerateConfig(DeployParams{
		Mode:          ModeSeparate,
		App:           "counter",
		Seed:          "saebft-test-seed",
		ThresholdBits: 512,
		BasePort:      0, // overwritten below with free ports
	})
	if err != nil {
		t.Fatal(err)
	}
	// Replace the static port plan with kernel-assigned free ports so
	// parallel test runs cannot collide.
	for k := range cfg.d.Addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		cfg.d.Addrs[k] = ln.Addr().String()
		ln.Close()
	}

	// The config round-trips through disk like a real deployment's.
	path := filepath.Join(t.TempDir(), "cluster.json")
	if err := cfg.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.App() != "counter" || loaded.Mode() != ModeSeparate {
		t.Fatalf("loaded config disagrees: app=%q mode=%v", loaded.App(), loaded.Mode())
	}

	roundTrip(t, loaded)
}

func roundTrip(t *testing.T, cfg *Config) {
	t.Helper()
	ctx := context.Background()
	nodes, err := cfg.Nodes()
	if err != nil {
		t.Fatal(err)
	}
	var running []*Node
	defer func() {
		for _, n := range running {
			n.Close()
		}
	}()
	for _, ni := range nodes {
		if ni.Role == "client" {
			continue
		}
		n, err := NewNode(cfg, ni.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Start(ctx); err != nil {
			t.Fatalf("starting %s node %d: %v", ni.Role, ni.ID, err)
		}
		running = append(running, n)
	}

	cl, err := DialConfig(cfg, DialTimeout(20*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if reply, err := cl.Invoke(ctx, []byte("inc")); err != nil {
		t.Fatalf("inc: %v", err)
	} else if string(reply) != "1" {
		t.Fatalf("inc reply = %q, want 1", reply)
	}
	op, err := EncodeOp("counter", "add", "41")
	if err != nil {
		t.Fatal(err)
	}
	if reply, err := cl.Invoke(ctx, op); err != nil {
		t.Fatalf("add: %v", err)
	} else if string(reply) != "42" {
		t.Fatalf("add reply = %q, want 42", reply)
	}
}
